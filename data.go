package pufferfish

import (
	"math/rand/v2"

	"pufferfish/internal/activity"
	"pufferfish/internal/flu"
	"pufferfish/internal/power"
)

// Flu substrate (Example 2): flu status over a union of cliques.

// FluClique is one fully-connected component with a distribution over
// its infected count.
type FluClique = flu.Clique

// FluModel is one generating distribution θ for the flu example.
type FluModel = flu.Model

// FluInstance adapts a class of flu models to the Wasserstein
// Mechanism.
type FluInstance = flu.Instance

// NewFluClique builds a clique from the probabilities of 0..size
// infected members.
func NewFluClique(probs []float64) (FluClique, error) { return flu.FromProbs(probs) }

// NewFluCliqueExponential builds the P(N=j) ∝ e^{λj} clique of
// Section 2.2.
func NewFluCliqueExponential(size int, lambda float64) (FluClique, error) {
	return flu.Exponential(size, lambda)
}

// NewFluModel assembles cliques into a model.
func NewFluModel(cliques []FluClique) (*FluModel, error) { return flu.NewModel(cliques) }

// Physical-activity substrate (Section 5.3.1).

// ActivityGroup identifies a cohort (cyclists, older women, overweight
// women).
type ActivityGroup = activity.Group

// ActivityGroups lists the cohorts in table order.
var ActivityGroups = activity.Groups

// ActivityProfile is a cohort's ground-truth and wear parameters.
type ActivityProfile = activity.Profile

// ActivityDataset is a simulated cohort.
type ActivityDataset = activity.Dataset

// DefaultActivityProfile returns the calibrated parameters for a
// cohort.
func DefaultActivityProfile(g ActivityGroup) ActivityProfile { return activity.DefaultProfile(g) }

// GenerateActivity simulates a cohort.
func GenerateActivity(p ActivityProfile, rng *rand.Rand) (*ActivityDataset, error) {
	return activity.Generate(p, rng)
}

// Electricity substrate (Section 5.3.2).

// PowerHouse is a household load model.
type PowerHouse = power.House

// PowerNumBins and PowerBinWatts are the paper's discretization: 51
// intervals of 200 W.
const (
	PowerNumBins  = power.NumBins
	PowerBinWatts = power.BinWatts
)

// DefaultPowerHouse returns the calibrated household model.
func DefaultPowerHouse() PowerHouse { return power.DefaultHouse() }

// SimulatePower produces T per-minute binned readings.
func SimulatePower(h PowerHouse, T int, rng *rand.Rand) ([]int, error) { return h.Simulate(T, rng) }
