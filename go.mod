module pufferfish

go 1.24
