// Integration tests exercising the public API end to end, the way a
// downstream user would.
package pufferfish_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"pufferfish"
)

func TestFacadeChainPipeline(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	const T = 300
	truth := pufferfish.BinaryChain(0.5, 0.9, 0.8)
	data := truth.Sample(T, rng)

	class, err := pufferfish.NewFinite([]pufferfish.Chain{truth}, T)
	if err != nil {
		t.Fatal(err)
	}
	q := pufferfish.StateFrequency{State: 1, N: T}

	rel, score, err := pufferfish.MQMExact(data, q, class, 1, pufferfish.ExactOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Mechanism != "MQMExact" || score.Sigma <= 0 {
		t.Errorf("release %+v score %+v", rel, score)
	}
	relA, scoreA, err := pufferfish.MQMApprox(data, q, class, 1, pufferfish.ApproxOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if scoreA.Sigma < score.Sigma {
		t.Errorf("approx σ %v below exact σ %v", scoreA.Sigma, score.Sigma)
	}
	if len(relA.Values) != 1 {
		t.Error("bad release shape")
	}

	// The exact σ passes the public privacy verifier.
	grid := make([]float64, 0, 50)
	for v := -5.0; v <= float64(T)/3; v += 5 {
		grid = append(grid, v)
	}
	small, err := pufferfish.NewFinite([]pufferfish.Chain{truth}, 6)
	if err != nil {
		t.Fatal(err)
	}
	smallScore, err := pufferfish.ExactScore(small, 1, pufferfish.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pufferfish.VerifyChainPufferfish(small, []int{0, 1}, smallScore.Sigma, 1, 1e-6, grid); err != nil {
		t.Errorf("public verifier rejected MQMExact scale: %v", err)
	}
}

func TestFacadeEstimation(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 64))
	truth := pufferfish.BinaryChain(0.3, 0.85, 0.75)
	seqs := [][]int{truth.Sample(5000, rng), truth.Sample(5000, rng)}
	chain, err := pufferfish.EstimateStationaryChain(seqs, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(chain.P.At(0, 0)-0.85) > 0.03 {
		t.Errorf("estimate drifted: %v", chain.P.At(0, 0))
	}
}

func TestFacadeWassersteinAndDiscrete(t *testing.T) {
	mu, err := pufferfish.NewDiscrete([]float64{0, 1}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	nu, err := pufferfish.NewDiscrete([]float64{2, 3}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := pufferfish.WassersteinInf(mu, nu); got != 2 {
		t.Errorf("W∞ = %v, want 2", got)
	}
	if got := pufferfish.MaxDivergence(mu, mu); got != 0 {
		t.Errorf("D∞ = %v, want 0", got)
	}
}

func TestFacadeGenericQuiltMechanism(t *testing.T) {
	// The Figure 2 diamond network through the public API.
	nw, err := pufferfish.NewNetwork([]pufferfish.NetworkNode{
		{Name: "X1", Card: 2, CPT: []float64{0.6, 0.4}},
		{Name: "X2", Card: 2, Parents: []int{0}, CPT: []float64{0.7, 0.3, 0.2, 0.8}},
		{Name: "X3", Card: 2, Parents: []int{0}, CPT: []float64{0.5, 0.5, 0.9, 0.1}},
		{Name: "X4", Card: 2, Parents: []int{1, 2}, CPT: []float64{0.9, 0.1, 0.4, 0.6, 0.3, 0.7, 0.1, 0.9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst := &pufferfish.BayesInstantiation{Networks: []*pufferfish.Network{nw}}
	detail, err := pufferfish.QuiltScoreBayes(inst, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !(detail.Sigma > 0) || math.IsInf(detail.Sigma, 1) {
		t.Errorf("σ = %v", detail.Sigma)
	}
	rng := rand.New(rand.NewPCG(65, 66))
	rel, _, err := pufferfish.MarkovQuiltMechanism([]float64{2}, 1, inst, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Values) != 1 {
		t.Error("bad release")
	}
}

func TestFacadeFluPipeline(t *testing.T) {
	clique, err := pufferfish.NewFluClique([]float64{0.1, 0.15, 0.5, 0.15, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	model, err := pufferfish.NewFluModel([]pufferfish.FluClique{clique})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(67, 68))
	data := model.Sample(rng)
	var count float64
	for _, x := range data {
		count += float64(x)
	}
	rel, err := pufferfish.Wasserstein(count, pufferfish.FluInstance{Models: []*pufferfish.FluModel{model}}, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Sigma != 2 { // the Section 3.1 worked example
		t.Errorf("W = %v, want 2", rel.Sigma)
	}
}

func TestFacadeActivityAndPower(t *testing.T) {
	rng := rand.New(rand.NewPCG(69, 70))
	profile := pufferfish.DefaultActivityProfile(pufferfish.ActivityGroups[0])
	profile.Participants = 2
	profile.SessionsPerPerson = 4
	ds, err := pufferfish.GenerateActivity(profile, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.People) != 2 {
		t.Error("population wrong")
	}
	series, err := pufferfish.SimulatePower(pufferfish.DefaultPowerHouse(), 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5000 {
		t.Error("series wrong")
	}
}

func TestFacadeComposition(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	const T = 100
	truth := pufferfish.BinaryChain(0.5, 0.8, 0.8)
	class, err := pufferfish.NewFinite([]pufferfish.Chain{truth}, T)
	if err != nil {
		t.Fatal(err)
	}
	comp := pufferfish.NewApproxComposition(class)
	data := truth.Sample(T, rng)
	q := pufferfish.StateFrequency{State: 1, N: T}
	for i := 0; i < 2; i++ {
		if _, err := comp.Release(data, q, 2, rng); err != nil {
			t.Fatal(err)
		}
	}
	if comp.TotalEpsilon() != 4 {
		t.Errorf("TotalEpsilon = %v", comp.TotalEpsilon())
	}
}

func TestFacadeUtilityBoundAndRobustness(t *testing.T) {
	class, err := pufferfish.NewBinaryInterval(0.3, 0.7, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	minT, err := pufferfish.UtilityBound(class, 1)
	if err != nil {
		t.Fatal(err)
	}
	if minT <= 0 || minT > 10_000 {
		t.Errorf("UtilityBound = %d", minT)
	}
	if pufferfish.EffectiveEpsilon(1, 0.5) != 2 {
		t.Error("EffectiveEpsilon wrong")
	}
	if len(pufferfish.AllValuePairs(3, 2)) != 3 {
		t.Error("AllValuePairs wrong")
	}
}

func TestFacadeMultiBatchScoring(t *testing.T) {
	chain, err := pufferfish.BinaryChain(0.5, 0.9, 0.85).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	class, err := pufferfish.NewFinite([]pufferfish.Chain{chain}, 30)
	if err != nil {
		t.Fatal(err)
	}
	specs := []pufferfish.MultiSpec{
		{Class: class, Lengths: []int{5, 12, 30}},
		{Class: class, Lengths: []int{5, 12, 30}}, // duplicate dedupes
		{Class: class, Lengths: []int{30}},
	}
	cache := pufferfish.NewScoreCache()
	exact, err := pufferfish.ExactScoreMultiBatch(cache, specs, 1, pufferfish.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != 3 || exact[0] != exact[1] || exact[0].Sigma <= 0 {
		t.Errorf("batch scores %+v", exact)
	}
	approx, err := pufferfish.ApproxScoreMultiBatch(cache, specs, 1, pufferfish.ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(approx) != 3 || approx[0].Sigma < exact[0].Sigma {
		t.Errorf("approx σ %v below exact σ %v", approx[0].Sigma, exact[0].Sigma)
	}
	if stats := cache.Stats(); stats.Misses == 0 {
		t.Errorf("cache untouched: %+v", stats)
	}
}

func TestFacadeKantorovichSubsystem(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	truth := pufferfish.BinaryChain(0.5, 0.85, 0.8)
	class, err := pufferfish.NewFinite([]pufferfish.Chain{truth}, 8)
	if err != nil {
		t.Fatal(err)
	}

	cache := pufferfish.NewScoreCache()
	score, err := pufferfish.KantorovichScore(cache, class, 1, pufferfish.KantorovichOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if score.Sigma <= 0 || score.Node < 0 || score.Node >= 2 {
		t.Fatalf("degenerate score %+v", score)
	}
	profile, err := pufferfish.KantorovichCellProfile(cache, class, score.Node, pufferfish.KantorovichOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if profile.W1 > profile.WInf || profile.WInf <= 0 {
		t.Fatalf("profile out of order: %+v", profile)
	}
	if got := 2 * profile.WInf / 1; math.Abs(got-score.Sigma) > 1e-12*score.Sigma {
		t.Errorf("σ = %v, want k·W∞/ε = %v", score.Sigma, got)
	}
	// The facade's W1 matches the subsystem's convention.
	mu, err := pufferfish.NewDiscrete([]float64{0, 3}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	nu, err := pufferfish.NewDiscrete([]float64{0}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if w := pufferfish.Wasserstein1(mu, nu); math.Abs(w-1.5) > 1e-12 {
		t.Errorf("W1 = %v, want 1.5", w)
	}

	// Multi-length + batch through the facade agree.
	lengths := []int{3, 8}
	multi, err := pufferfish.KantorovichScoreMulti(nil, class, 1, pufferfish.KantorovichOptions{}, lengths)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := pufferfish.KantorovichScoreBatch(nil, []pufferfish.MultiSpec{{Class: class, Lengths: lengths}}, 1, pufferfish.KantorovichOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || batch[0] != multi {
		t.Errorf("batch %+v != multi %+v", batch, multi)
	}

	// Exponential mechanism and the additive noise backends.
	m, err := pufferfish.NewExpMech([]float64{0, 1, 2, 3}, profile.WInf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if y := m.Sample(1.2, rng); y < 0 || y > 3 {
		t.Errorf("exponential mechanism left its grid: %v", y)
	}
	lap, err := pufferfish.NewAdditiveNoise("laplace", profile.WInf, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lap.Scale() != profile.WInf {
		t.Errorf("laplace scale %v, want W∞/ε = %v", lap.Scale(), profile.WInf)
	}
	gauss, err := pufferfish.NewAdditiveNoise("gaussian", profile.WInf, 1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if gauss.Name() != "gaussian" || gauss.Scale() <= lap.Scale() {
		t.Errorf("gaussian backend: %q scale %v", gauss.Name(), gauss.Scale())
	}
}
