// Package pufferfish is a from-scratch Go implementation of
// "Pufferfish Privacy Mechanisms for Correlated Data" (Song, Wang,
// Chaudhuri; SIGMOD 2017): the Wasserstein Mechanism — the first
// mechanism applicable to any Pufferfish instantiation — and the
// Markov Quilt Mechanism for Bayesian networks, with its efficient
// Markov-chain variants MQMExact and MQMApprox, plus the robustness
// and composition theory and the baselines the paper evaluates
// against.
//
// This root package is the public API: a thin facade over the
// internal packages, organized as
//
//   - mechanisms (this file): Wasserstein, MQMExact, MQMApprox, the
//     Kantorovich/exponential-mechanism subsystem (per-cell transport
//     profiles, exponential mechanism, Laplace/Gaussian additive
//     noise), the Rényi accounting ledger and pluggable composition
//     accountants, the generic Bayesian-network mechanism,
//     composition, robustness, baselines, and the analytic privacy
//     verifier;
//   - chain.go: Markov chains and distribution classes Θ;
//   - query.go: L1-Lipschitz queries;
//   - data.go: the flu / physical-activity / electricity substrates
//     used by the paper's experiments.
//
// See README.md for a tour and examples/ for runnable programs.
package pufferfish

import (
	"math/rand/v2"

	"pufferfish/internal/accounting"
	"pufferfish/internal/bayes"
	"pufferfish/internal/core"
	"pufferfish/internal/dist"
	"pufferfish/internal/kantorovich"
	"pufferfish/internal/noise"
)

// Release is a mechanism output: noisy values plus the noise
// accounting.
type Release = core.Release

// Secret identifies the event "record Index has value Value".
type Secret = core.Secret

// SecretPair is one indistinguishability requirement from Q.
type SecretPair = core.SecretPair

// AllValuePairs returns the Section 4.1 secret-pair set for n records
// over k values.
func AllValuePairs(n, k int) []SecretPair { return core.AllValuePairs(n, k) }

// Discrete is a finitely-supported distribution on ℝ.
type Discrete = dist.Discrete

// NewDiscrete builds a distribution from support points and masses.
func NewDiscrete(xs, ps []float64) (Discrete, error) { return dist.New(xs, ps) }

// WassersteinInf returns the ∞-Wasserstein distance W∞(µ, ν)
// (Definition 3.1).
func WassersteinInf(mu, nu Discrete) float64 { return dist.WassersteinInf(mu, nu) }

// Wasserstein1 returns the 1-Wasserstein (Kantorovich) distance
// W₁(µ, ν) — the average-case transport cost, always ≤ W∞.
func Wasserstein1(mu, nu Discrete) float64 { return dist.Wasserstein1(mu, nu) }

// MaxDivergence returns D∞(p‖q) (Definition 2.3).
func MaxDivergence(p, q Discrete) float64 { return dist.MaxDivergence(p, q) }

// DistributionPair is one pair of conditional query distributions fed
// to the Wasserstein Mechanism.
type DistributionPair = core.DistributionPair

// WassersteinInstance enumerates the conditional distribution pairs of
// a Pufferfish instantiation for a scalar query.
type WassersteinInstance = core.WassersteinInstance

// WassersteinOptions tunes the Wasserstein scale computation (worker
// count; the supremum is identical at every parallelism level).
type WassersteinOptions = core.WassersteinOptions

// WassersteinScale computes the Algorithm 1 noise parameter W using
// every CPU.
func WassersteinScale(inst WassersteinInstance) (w float64, worst DistributionPair, err error) {
	return core.WassersteinScale(inst)
}

// WassersteinScaleOpt is WassersteinScale with an explicit worker
// bound for the pair sweep. Instances that parallelize their own pair
// enumeration (ChainCountInstance) have their own Parallelism field;
// set both for a strict bound.
func WassersteinScaleOpt(inst WassersteinInstance, opt WassersteinOptions) (w float64, worst DistributionPair, err error) {
	return core.WassersteinScaleOpt(inst, opt)
}

// Wasserstein releases a scalar query value with ε-Pufferfish privacy
// via Algorithm 1 (Theorem 3.2).
func Wasserstein(value float64, inst WassersteinInstance, eps float64, rng *rand.Rand) (Release, error) {
	return core.Wasserstein(value, inst, eps, rng)
}

// ChainCountInstance is a ready-made WassersteinInstance for chain
// classes with the query F = Σ W[X_t].
type ChainCountInstance = core.ChainCountInstance

// ChainQuilt identifies a Markov quilt from the Lemma 4.6 family.
type ChainQuilt = core.ChainQuilt

// ChainScore is the result of a quilt-mechanism noise computation.
type ChainScore = core.ChainScore

// ExactOptions tunes MQMExact (Algorithm 3).
type ExactOptions = core.ExactOptions

// ApproxOptions tunes MQMApprox (Algorithm 4).
type ApproxOptions = core.ApproxOptions

// ExactScore computes MQMExact's σ_max for a chain class.
func ExactScore(class Class, eps float64, opt ExactOptions) (ChainScore, error) {
	return core.ExactScore(class, eps, opt)
}

// ApproxScore computes MQMApprox's σ_max for a chain class.
func ApproxScore(class Class, eps float64, opt ApproxOptions) (ChainScore, error) {
	return core.ApproxScore(class, eps, opt)
}

// MQMExact releases a query over chain data via Algorithm 3.
func MQMExact(data []int, q Query, class Class, eps float64, opt ExactOptions, rng *rand.Rand) (Release, ChainScore, error) {
	return core.MQMExact(data, q, class, eps, opt, rng)
}

// MQMApprox releases a query over chain data via Algorithm 4.
func MQMApprox(data []int, q Query, class Class, eps float64, opt ApproxOptions, rng *rand.Rand) (Release, ChainScore, error) {
	return core.MQMApprox(data, q, class, eps, opt, rng)
}

// Fingerprint is the canonical 128-bit identity of a class: a hash of
// everything a ChainScore depends on besides (ε, options). Classes
// with equal fingerprints score identically.
type Fingerprint = core.Fingerprint

// ClassFingerprint computes the canonical fingerprint of a class.
func ClassFingerprint(class Class) Fingerprint { return core.ClassFingerprint(class) }

// ScoreCache memoizes ChainScore results by (class fingerprint, ε,
// options), so composition-heavy workloads pay each scoring sweep
// once. A nil *ScoreCache disables memoization everywhere one is
// accepted.
type ScoreCache = core.ScoreCache

// CacheStats reports a ScoreCache's hit/miss counters.
type CacheStats = core.CacheStats

// TableCacheStats reports the per-transition-matrix influence-table
// layer beneath a ScoreCache: hits/misses of the shared table lookup,
// the number of distinct matrices held, and the total cached power
// rows across them. Read it with (*ScoreCache).TableStats.
type TableCacheStats = core.TableCacheStats

// NewScoreCache returns an empty score cache.
func NewScoreCache() *ScoreCache { return core.NewScoreCache() }

// ScoreBatch computes ExactScore for every class through one worker-
// pool invocation, deduplicating identical fingerprints (O(unique)
// scoring work) and sharing power tables across θ with equal
// transition matrices. cache may be nil. Results align with classes
// and are bit-identical to per-class ExactScore calls.
func ScoreBatch(cache *ScoreCache, classes []Class, eps float64, opt ExactOptions) ([]ChainScore, error) {
	return core.ScoreBatch(cache, classes, eps, opt)
}

// ApproxScoreBatch is ScoreBatch for MQMApprox.
func ApproxScoreBatch(cache *ScoreCache, classes []Class, eps float64, opt ApproxOptions) ([]ChainScore, error) {
	return core.ApproxScoreBatch(cache, classes, eps, opt)
}

// MultiSpec is one multi-length scoring request for the batched
// multi-length scorers: a class plus the chain-length multiset of a
// database of independent chains (the class's own T is ignored).
type MultiSpec = core.MultiSpec

// ExactScoreMultiBatch computes the multi-length MQMExact score of
// every spec through shared batched engine passes, so identical fitted
// models at identical lengths — across specs, not just within one —
// are scored once. cache may be nil; results align with specs and are
// bit-identical to per-spec sequential scoring. This is the scoring
// path of the serving layer's batch endpoint.
func ExactScoreMultiBatch(cache *ScoreCache, specs []MultiSpec, eps float64, opt ExactOptions) ([]ChainScore, error) {
	return core.ExactScoreMultiBatch(cache, specs, eps, opt)
}

// ApproxScoreMultiBatch is ExactScoreMultiBatch for MQMApprox.
func ApproxScoreMultiBatch(cache *ScoreCache, specs []MultiSpec, eps float64, opt ApproxOptions) ([]ChainScore, error) {
	return core.ApproxScoreMultiBatch(cache, specs, eps, opt)
}

// ExactScoreMulti computes MQMExact's σ_max for a database of
// independent chains of the given lengths (e.g. the gap-split wear
// sessions of the activity experiments), all governed by the same
// class.
func ExactScoreMulti(class Class, eps float64, opt ExactOptions, lengths []int) (ChainScore, error) {
	return core.ExactScoreMulti(class, eps, opt, lengths)
}

// ApproxScoreMulti is ExactScoreMulti for MQMApprox.
func ApproxScoreMulti(class Class, eps float64, opt ApproxOptions, lengths []int) (ChainScore, error) {
	return core.ApproxScoreMulti(class, eps, opt, lengths)
}

// UtilityBound returns the Theorem 4.10 sufficient chain length beyond
// which MQMApprox noise stops growing with T.
func UtilityBound(class Class, eps float64) (int, error) { return core.UtilityBound(class, eps) }

// KantorovichOptions tunes the Kantorovich subsystem's transport
// sweeps (worker count; profiles are bit-identical at every setting).
type KantorovichOptions = kantorovich.Options

// KantorovichProfile is one histogram cell's transport profile: the
// suprema of W∞ (which calibrates the noise) and of the Kantorovich
// distance W₁ (the average-case diagnostic) over every admissible
// secret pair and θ.
type KantorovichProfile = core.CellScore

// KantorovichCellProfile computes (and memoizes, when cache is
// non-nil) the transport profile of one histogram cell of a chain
// class.
func KantorovichCellProfile(cache *ScoreCache, class Class, cell int, opt KantorovichOptions) (KantorovichProfile, error) {
	return kantorovich.CellProfile(cache, class, cell, opt)
}

// KantorovichProfileInstance computes the transport profile of any
// Pufferfish instantiation exposed as a WassersteinInstance.
func KantorovichProfileInstance(inst WassersteinInstance, opt KantorovichOptions) (KantorovichProfile, error) {
	return kantorovich.ProfileInstance(inst, opt)
}

// KantorovichScore computes the Kantorovich mechanism's ChainScore
// for a class: σ = k·max_a W∞(a)/ε so the histogram release spends
// ε/k per cell. In the result, Node is the 0-based worst cell and
// Influence carries its W₁ supremum.
func KantorovichScore(cache *ScoreCache, class Class, eps float64, opt KantorovichOptions) (ChainScore, error) {
	return kantorovich.Score(cache, class, eps, opt)
}

// KantorovichScoreMulti is KantorovichScore for a database of
// independent chains with the given session lengths.
func KantorovichScoreMulti(cache *ScoreCache, class Class, eps float64, opt KantorovichOptions, lengths []int) (ChainScore, error) {
	return kantorovich.ScoreMulti(cache, class, eps, opt, lengths)
}

// KantorovichScoreBatch scores many multi-length specs through one
// worker-pool invocation, deduplicating identical (class, length)
// sweeps across specs. Results align with specs and are bit-identical
// to per-spec KantorovichScoreMulti calls.
func KantorovichScoreBatch(cache *ScoreCache, specs []MultiSpec, eps float64, opt KantorovichOptions) ([]ChainScore, error) {
	return kantorovich.ScoreBatch(cache, specs, eps, opt)
}

// ExpMech is the discrete exponential mechanism over a fixed output
// grid, calibrated to a W∞ transport bound (scale 2W∞/ε absorbs the
// per-input normalizers; the release is ε-Pufferfish private).
type ExpMech = kantorovich.ExpMech

// NewExpMech validates and builds an exponential mechanism.
func NewExpMech(grid []float64, wInf, eps float64) (*ExpMech, error) {
	return kantorovich.NewExpMech(grid, wInf, eps)
}

// AdditiveNoise is a zero-mean additive noise distribution (Laplace
// or Gaussian) behind one interface.
type AdditiveNoise = noise.Additive

// NewAdditiveNoise calibrates an additive noise backend to a W∞
// transport bound: kind "laplace" gives b = W∞/ε (ε-Pufferfish; delta
// is ignored), kind "gaussian" gives σ = W∞·√(2·ln(1.25/δ))/ε (the
// (ε, δ) general additive-noise route, valid for ε ∈ (0, 1] and
// δ ∈ (0, 1) — the analytic calibration does not extend to ε > 1).
func NewAdditiveNoise(kind string, wInf, eps, delta float64) (AdditiveNoise, error) {
	return kantorovich.AdditiveNoise(kind, wInf, eps, delta)
}

// Network is a discrete Bayesian network.
type Network = bayes.Network

// NetworkNode is one variable of a Bayesian network.
type NetworkNode = bayes.Node

// NewNetwork validates and builds a Bayesian network.
func NewNetwork(nodes []NetworkNode) (*Network, error) { return bayes.New(nodes) }

// NetworkFromChain converts a chain into the equivalent network
// X_1 → … → X_T.
func NetworkFromChain(c Chain, T int) (*Network, error) { return bayes.FromChain(c, T) }

// NetworkNodeJSON is the JSON wire form of one network node
// ({"name", "card", "parents", "cpt"}).
type NetworkNodeJSON = bayes.NodeJSON

// ParseNetworkJSON builds a validated network from its JSON node list
// — the format of pufferd's "network" request field and privrelease's
// -network file.
func ParseNetworkJSON(data []byte) (*Network, error) { return bayes.ParseJSON(data) }

// Substrate is the correlation model underneath a Pufferfish
// instantiation for count queries: the seam between the scoring
// pipeline (Wasserstein sweeps, Kantorovich cell profiles, the
// fingerprint-keyed ScoreCache) and the model family. Chain classes
// and polytree Bayesian networks are the built-in implementations.
type Substrate = core.Substrate

// Substrate kind tags (Substrate.Kind): they domain-separate
// fingerprints so different model families can never share a cache
// entry.
const (
	SubstrateChain   = core.SubstrateChain
	SubstrateNetwork = core.SubstrateNetwork
)

// ClassSubstrate adapts a chain class to the Substrate interface.
type ClassSubstrate = core.ClassSubstrate

// NewClassSubstrate wraps a chain class as a Substrate; scoring it is
// bit-identical to the class-based entry points.
func NewClassSubstrate(class Class) *ClassSubstrate { return core.NewClassSubstrate(class) }

// NetworkSubstrate is the Substrate over one or more polytree Bayesian
// networks (the class Θ) with uniform node cardinality, computing
// exact conditional count distributions by message passing.
type NetworkSubstrate = core.NetworkSubstrate

// NewNetworkSubstrate validates the networks (same shape, uniform
// cardinality ≥ 2, polytree structure) and builds the substrate.
func NewNetworkSubstrate(nets []*Network) (*NetworkSubstrate, error) {
	return core.NewNetworkSubstrate(nets)
}

// SubstrateFingerprint computes the canonical kind-tagged fingerprint
// of a substrate. For chain substrates it equals ClassFingerprint of
// the wrapped class.
func SubstrateFingerprint(s Substrate) Fingerprint { return core.SubstrateFingerprint(s) }

// CountInstance is the generic WassersteinInstance of a substrate with
// the count query F = Σ W[X_pos].
type CountInstance = core.CountInstance

// KantorovichScoreSubstrate is KantorovichScore for any Substrate —
// the entry point that releases Bayesian-network secrets through the
// same transport pipeline and cache as chains.
func KantorovichScoreSubstrate(cache *ScoreCache, sub Substrate, eps float64, opt KantorovichOptions) (ChainScore, error) {
	return kantorovich.ScoreSubstrate(cache, sub, eps, opt)
}

// KantorovichCellProfileSubstrate is KantorovichCellProfile for any
// Substrate.
func KantorovichCellProfileSubstrate(cache *ScoreCache, sub Substrate, cell int, opt KantorovichOptions) (KantorovichProfile, error) {
	return kantorovich.CellProfileSubstrate(cache, sub, cell, opt)
}

// Quilt is a Markov quilt of a Bayesian network (Definition 4.2).
type Quilt = bayes.Quilt

// BayesInstantiation is the generic Algorithm 2 instantiation.
type BayesInstantiation = core.BayesInstantiation

// QuiltScoreDetail reports Algorithm 2's σ_max and active quilt.
type QuiltScoreDetail = core.QuiltScoreDetail

// QuiltScoreBayes computes Algorithm 2's noise score.
func QuiltScoreBayes(inst *BayesInstantiation, eps float64) (QuiltScoreDetail, error) {
	return core.QuiltScoreBayes(inst, eps)
}

// MarkovQuiltMechanism releases an L-Lipschitz query via Algorithm 2
// (Theorem 4.3).
func MarkovQuiltMechanism(exact []float64, lipschitz float64, inst *BayesInstantiation, eps float64, rng *rand.Rand) (Release, QuiltScoreDetail, error) {
	return core.MarkovQuiltMechanism(exact, lipschitz, inst, eps, rng)
}

// Composition tracks repeated quilt releases under Theorem 4.4.
type Composition = core.Composition

// NewExactComposition returns a composition manager using MQMExact.
func NewExactComposition(class Class, opt ExactOptions) *Composition {
	return core.NewExactComposition(class, opt)
}

// NewApproxComposition returns a composition manager using MQMApprox.
func NewApproxComposition(class Class) *Composition { return core.NewApproxComposition(class) }

// Accountant tracks the cumulative privacy loss of a composition: the
// pluggable policy behind Composition.TotalEpsilon.
type Accountant = core.Accountant

// LinearAccountant is the Theorem 4.4 accountant (K·max_k ε_k),
// Composition's default.
type LinearAccountant = core.LinearAccountant

// Ledger is the Rényi/zCDP privacy ledger (Pierquin et al., "Rényi
// Pufferfish Privacy"): per-release Rényi curves composed additively
// in α-divergence and converted to an (ε, δ) statement on demand —
// quadratically tighter than linear accounting over many Gaussian
// releases, and never worse than the applicable linear bound. It
// satisfies Accountant, so it plugs into Composition.WithAccountant.
type Ledger = accounting.Ledger

// LedgerEntry is one recorded release of a Ledger.
type LedgerEntry = accounting.Entry

// CurvePoint is one (α, ε_α) sample of a Rényi curve.
type CurvePoint = accounting.CurvePoint

// LedgerSnapshot is the JSON image of a Ledger for persistence.
type LedgerSnapshot = accounting.Snapshot

// DefaultAccountingDelta is the δ ledgers report at when unconfigured.
const DefaultAccountingDelta = accounting.DefaultDelta

// NewLedger returns an empty accounting ledger whose headline
// TotalEpsilon reports ε at the given δ (δ <= 0 selects
// DefaultAccountingDelta).
func NewLedger(delta float64) *Ledger { return accounting.NewLedger(delta) }

// RestoreLedger rebuilds a ledger from a snapshot, re-validating every
// entry.
func RestoreLedger(s LedgerSnapshot) (*Ledger, error) { return accounting.Restore(s) }

// ErrCeilingExceeded marks a charge refused because it would push a
// ledger past its hard (ε, δ) ceiling (Ledger.SetCeiling). The ledger
// is left untouched; callers can surface the refusal as a distinct
// budget-exhausted condition rather than a generic failure.
var ErrCeilingExceeded = accounting.ErrCeilingExceeded

// ErrLedgerJournal marks a charge aborted because its write-ahead
// journal append failed: nothing was released and nothing was charged.
var ErrLedgerJournal = accounting.ErrJournal

// LedgerJournal is the write-ahead hook a Ledger calls *before*
// mutating on Add, so a crash can only ever over-count spend, never
// under-count it. The accounting/wal package provides the durable
// CRC-framed implementation pufferd uses.
type LedgerJournal = accounting.Journal

// GaussianRho is the per-coordinate zCDP parameter ρ = W∞²/(2σ²) of a
// Gaussian release under the shift-reduction bound — what a release
// feeds the Ledger.
func GaussianRho(wInf, sigma float64) (float64, error) { return noise.GaussianRho(wInf, sigma) }

// BeliefInstance feeds Theorem 2.4's robustness computation.
type BeliefInstance = core.BeliefInstance

// RobustnessDelta computes Δ from Theorem 2.4.
func RobustnessDelta(inst BeliefInstance) (float64, error) { return core.RobustnessDelta(inst) }

// EffectiveEpsilon returns ε + 2Δ (Theorem 2.4).
func EffectiveEpsilon(eps, delta float64) float64 { return core.EffectiveEpsilon(eps, delta) }

// LaplaceDP is the ε-differential-privacy Laplace baseline.
func LaplaceDP(data []int, q Query, eps float64, rng *rand.Rand) (Release, error) {
	return core.LaplaceDP(data, q, eps, rng)
}

// GroupDP is the group-differential-privacy baseline (Definition 2.2).
func GroupDP(data []int, q Query, maxGroupSize int, eps float64, rng *rand.Rand) (Release, error) {
	return core.GroupDP(data, q, maxGroupSize, eps, rng)
}

// GK16Score reports the reconstructed GK16 baseline's computation.
type GK16Score = core.GK16Score

// GK16Release runs the reconstructed GK16 baseline.
func GK16Release(data []int, q Query, class Class, eps float64, rng *rand.Rand) (Release, GK16Score, error) {
	return core.GK16Release(data, q, class, eps, rng)
}

// GK16Sigma computes the GK16 baseline's noise multiplier for a class,
// or an error when its spectral-norm condition fails (the paper's N/A
// entries).
func GK16Sigma(class Class, eps float64) (GK16Score, error) {
	return core.GK16SigmaClass(class, eps)
}

// VerifyChainPufferfish analytically checks Definition 2.1 for an
// additive-Laplace count release on a small chain class.
func VerifyChainPufferfish(class Class, w []int, scale, eps, slack float64, grid []float64) error {
	return core.VerifyChainPufferfish(class, w, scale, eps, slack, grid)
}
