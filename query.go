package pufferfish

import "pufferfish/internal/query"

// Query is a vector-valued, L1-Lipschitz function of a record
// sequence (Definition 2.5).
type Query = query.Query

// Histogram counts occurrences of each of K states (2-Lipschitz).
type Histogram = query.Histogram

// RelFreqHistogram reports per-state fractions over N records
// ((2/N)-Lipschitz) — the query released throughout Section 5.
type RelFreqHistogram = query.RelFreqHistogram

// StateFrequency is the scalar fraction of records equal to State
// ((1/N)-Lipschitz).
type StateFrequency = query.StateFrequency

// SumQuery releases Σ Values[xᵢ] (range-Lipschitz).
type SumQuery = query.Sum

// MeanQuery releases the average of Values[xᵢ].
type MeanQuery = query.Mean
