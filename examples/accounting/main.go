// Accounting: track the cumulative privacy budget of repeated
// releases with the Rényi/zCDP ledger — the quadratic improvement
// over Theorem 4.4's linear K·max ε for Gaussian releases, the exact
// linear degenerate case for a single pure release, and the pluggable
// accountant on Composition.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"pufferfish"
)

func main() {
	// A Gaussian release's Rényi curve is ε_α = α·ρ with
	// ρ = W∞²/(2σ²); curves compose additively, so K repeated releases
	// cost ~K·ρ + 2√(K·ρ·ln(1/δ)) instead of K·ε.
	const eps, delta = 1.0, 1e-5
	wInf := 2.0
	noise, err := pufferfish.NewAdditiveNoise("gaussian", wInf, eps, delta)
	if err != nil {
		log.Fatal(err)
	}
	rho, err := pufferfish.GaussianRho(wInf, noise.Scale())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gaussian backend: σ = %.3f for (ε=%g, δ=%g) at W∞ = %g  →  ρ = %.4f\n\n",
		noise.Scale(), eps, delta, wInf, rho)

	ledger := pufferfish.NewLedger(delta)
	fmt.Println("  K   linear K·maxε   RDP ε(δ=1e-5)   tighter by")
	for k := 1; k <= 16; k++ {
		if err := ledger.AddGaussian("example", rho, eps, delta); err != nil {
			log.Fatal(err)
		}
		rdp, err := ledger.Epsilon(delta)
		if err != nil {
			log.Fatal(err)
		}
		linear := ledger.LinearEpsilon()
		if k == 1 || k == 2 || k == 4 || k == 8 || k == 16 {
			fmt.Printf("%3d %15.2f %15.3f %11.2fx\n", k, linear, rdp, linear/rdp)
		}
	}

	// A single pure release is the exact linear degenerate case.
	single := pufferfish.NewLedger(delta)
	if err := single.AddPure("mqm-exact", 0.7); err != nil {
		log.Fatal(err)
	}
	one, err := single.Epsilon(delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle pure release at ε = 0.7 reports ε(δ) = %g (exactly ε: %v)\n\n",
		one, one == 0.7) //privlint:allow floatcompare the demo shows the single-entry curve is exactly ε

	// The same ledger plugs into Composition as its accountant: the
	// released values are bit-identical to the default linear
	// accountant — only the reported budget tightens.
	const T = 60
	truth := pufferfish.BinaryChain(0.5, 0.9, 0.85)
	class, err := pufferfish.NewFinite([]pufferfish.Chain{truth}, T)
	if err != nil {
		log.Fatal(err)
	}
	data := truth.Sample(T, rand.New(rand.NewPCG(1, 2)))
	q := pufferfish.RelFreqHistogram{K: 2, N: T}

	compLedger := pufferfish.NewLedger(delta)
	comp := pufferfish.NewExactComposition(class, pufferfish.ExactOptions{}).
		WithAccountant(compLedger)
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 8; i++ {
		if _, err := comp.Release(data, q, 0.5, rng); err != nil {
			log.Fatal(err)
		}
	}
	linear := &pufferfish.LinearAccountant{}
	for i := 0; i < comp.Count(); i++ {
		linear.RecordPure(0.5)
	}
	fmt.Printf("composition of %d quilt releases at ε = 0.5:\n", comp.Count())
	fmt.Printf("  linear accountant (Theorem 4.4): %.2f\n", linear.TotalEpsilon())
	fmt.Printf("  Rényi ledger at δ = %g:          %.3f\n", delta, comp.TotalEpsilon())
	if comp.TotalEpsilon() > linear.TotalEpsilon()+1e-12 || math.IsNaN(comp.TotalEpsilon()) {
		log.Fatal("ledger exceeded the linear bound")
	}
}
