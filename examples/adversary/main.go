// Adversary demo (the Section 1 motivation, made executable): on
// correlated data, an entry-DP release leaks — there is an output at
// which the likelihood ratio between "X_t = a" and "X_t = b" exceeds
// e^ε — while the Markov Quilt Mechanism's release does not. The check
// is analytic (exact conditional distributions and Laplace densities),
// not a simulation.
package main

import (
	"fmt"
	"log"

	"pufferfish"
)

func main() {
	// A strongly correlated binary chain: knowing the neighborhood
	// almost determines each record.
	const T = 6
	theta := pufferfish.BinaryChain(0.5, 0.95, 0.95)
	class, err := pufferfish.NewFinite([]pufferfish.Chain{theta}, T)
	if err != nil {
		log.Fatal(err)
	}
	eps := 1.0
	w := []int{0, 1} // release the count of ones

	grid := make([]float64, 0, 120)
	for v := -6.0; v <= float64(T)+6; v += 0.1 {
		grid = append(grid, v)
	}

	// Entry-DP noise: scale 1/ε — calibrated to one record's
	// *participation*, blind to correlation.
	dpScale := 1.0 / eps
	if err := pufferfish.VerifyChainPufferfish(class, w, dpScale, eps, 1e-6, grid); err != nil {
		fmt.Printf("entry-DP  (scale %.2f): LEAKS — %v\n\n", dpScale, err)
	} else {
		fmt.Printf("entry-DP  (scale %.2f): unexpectedly private on this chain\n\n", dpScale)
	}

	// MQMExact's scale: calibrated to the correlation structure.
	score, err := pufferfish.ExactScore(class, eps, pufferfish.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := pufferfish.VerifyChainPufferfish(class, w, score.Sigma, eps, 1e-6, grid); err != nil {
		fmt.Printf("MQMExact (scale %.2f): VIOLATION (bug!) — %v\n", score.Sigma, err)
	} else {
		fmt.Printf("MQMExact (scale %.2f): every output keeps the adversary's\n", score.Sigma)
		fmt.Printf("posterior-odds shift within e^±%g for every record — ε-Pufferfish holds.\n", eps)
	}
}
