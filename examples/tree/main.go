// Tree: release infection counts over household trees — a Bayesian-
// network substrate (epidemic spread from an index case down a
// polytree of household contacts) scored through the same Kantorovich
// transport pipeline, score cache, and noise calibration as the
// Markov-chain substrates.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"pufferfish"
)

func main() {
	// A seven-person household tree: the index case p0 infects contacts
	// p1/p2; p1's children p3/p4 and p2's child p5 catch it next, and
	// p5 rooms with p6. States: 0 = healthy, 1 = infected. A healthy
	// parent rarely passes anything on (0.1 background rate); an
	// infected one spreads with probability 0.65.
	spread := []float64{0.9, 0.1, 0.35, 0.65}
	household, err := pufferfish.NewNetwork([]pufferfish.NetworkNode{
		{Name: "p0", Card: 2, CPT: []float64{0.8, 0.2}},
		{Name: "p1", Card: 2, Parents: []int{0}, CPT: spread},
		{Name: "p2", Card: 2, Parents: []int{0}, CPT: spread},
		{Name: "p3", Card: 2, Parents: []int{1}, CPT: spread},
		{Name: "p4", Card: 2, Parents: []int{1}, CPT: spread},
		{Name: "p5", Card: 2, Parents: []int{2}, CPT: spread},
		{Name: "p6", Card: 2, Parents: []int{5}, CPT: spread},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Exact marginal infection risk per person, by message passing.
	margs, err := household.MarginalsMP()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("marginal infection risk:")
	for i, m := range margs {
		fmt.Printf("  %s: %.3f\n", household.Name(i), m[1])
	}

	// The Pufferfish substrate: the secrets are every person's
	// infection status, the query the household's infection histogram.
	sub, err := pufferfish.NewNetworkSubstrate([]*pufferfish.Network{household})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubstrate: kind=%s k=%d len=%d fingerprint=%v\n",
		sub.Kind(), sub.K(), sub.Len(), pufferfish.SubstrateFingerprint(sub))

	// Per-cell transport profiles through the shared score cache: W∞
	// calibrates the noise, W₁ diagnoses the calibration's slack.
	eps := 1.0
	cache := pufferfish.NewScoreCache()
	fmt.Println("per-cell transport profiles:")
	for cell := 0; cell < sub.K(); cell++ {
		p, err := pufferfish.KantorovichCellProfileSubstrate(cache, sub, cell, pufferfish.KantorovichOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cell %d: W∞ = %.3f  W₁ = %.3f  (worst pair %s, %d pairs)\n",
			cell, p.WInf, p.W1, p.Label, p.Pairs)
	}
	score, err := pufferfish.KantorovichScoreSubstrate(cache, sub, eps, pufferfish.KantorovichOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count-level noise scale σ = k·W∞/ε = %.3f (worst cell %d)\n", score.Sigma, score.Node)

	// The observed outbreak, released as a noisy infection histogram.
	observed := []int{1, 1, 0, 0, 1, 0, 0}
	counts := make([]float64, sub.K())
	for _, v := range observed {
		counts[v]++
	}
	wInf := score.Sigma * eps / float64(sub.K())
	lap, err := pufferfish.NewAdditiveNoise("laplace", wInf*float64(sub.K()), eps, 0)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 13))
	fmt.Println("released histogram (healthy, infected):")
	for cell, c := range counts {
		fmt.Printf("  cell %d: exact %.0f  released %.2f\n", cell, c, c+lap.Sample(rng))
	}

	// Scoring the same substrate again is fully cache-served.
	if _, err := pufferfish.KantorovichScoreSubstrate(cache, sub, eps, pufferfish.KantorovichOptions{}); err != nil {
		log.Fatal(err)
	}
	st := cache.Stats()
	fmt.Printf("cache traffic: %d hits, %d misses\n", st.Hits, st.Misses)
}
