// Flu status over a social network (Example 2 / Section 3.1): release
// the number of infected people with the Wasserstein Mechanism while
// hiding every individual's status against an adversary who knows the
// contagion model.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"pufferfish"
)

func main() {
	rng := rand.New(rand.NewPCG(3, 4))

	// The paper's worked example: a 4-person clique (say a shared
	// office) where the infected count follows
	// P(N = j) = [0.1, 0.15, 0.5, 0.15, 0.1].
	office, err := pufferfish.NewFluClique([]float64{0.1, 0.15, 0.5, 0.15, 0.1})
	if err != nil {
		log.Fatal(err)
	}
	// Two more cliques with the Section 2.2 exponential contagion
	// P(N = j) ∝ e^{2j}.
	school, err := pufferfish.NewFluCliqueExponential(6, 2)
	if err != nil {
		log.Fatal(err)
	}
	club, err := pufferfish.NewFluCliqueExponential(3, 2)
	if err != nil {
		log.Fatal(err)
	}
	model, err := pufferfish.NewFluModel([]pufferfish.FluClique{office, school, club})
	if err != nil {
		log.Fatal(err)
	}

	// Draw one database and count infections.
	data := model.Sample(rng)
	var infected float64
	for _, x := range data {
		infected += float64(x)
	}
	fmt.Printf("population %d, truly infected: %.0f\n\n", model.N(), infected)

	// The Wasserstein Mechanism (Algorithm 1): noise scales with the
	// worst-case ∞-Wasserstein distance between the conditional count
	// distributions, not with the clique size.
	inst := pufferfish.FluInstance{Models: []*pufferfish.FluModel{model}}
	eps := 1.0
	w, worst, err := pufferfish.WassersteinScale(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Wasserstein parameter W = %.3f (worst pair: %s)\n", w, worst.Label)
	fmt.Printf("GroupDP would instead use the largest clique: %d\n\n", model.LargestClique())

	rel, err := pufferfish.Wasserstein(infected, inst, eps, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ε = %g release: %.2f infected (Laplace scale %.3f)\n", eps, rel.Values[0], rel.NoiseScale)
}
