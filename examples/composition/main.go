// Sequential composition (Theorem 4.4): Pufferfish privacy does not
// compose in general, but repeated Markov Quilt releases with shared
// quilt sets degrade gracefully — K releases at ε cost K·ε.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"pufferfish"
)

func main() {
	rng := rand.New(rand.NewPCG(9, 10))

	const T = 500
	truth := pufferfish.BinaryChain(0.5, 0.9, 0.85)
	data := truth.Sample(T, rng)
	class, err := pufferfish.NewFinite([]pufferfish.Chain{truth}, T)
	if err != nil {
		log.Fatal(err)
	}

	// A shared score cache: every composition over this class pays the
	// quilt-scoring sweep once; later sessions hit the memoized score
	// (releases are bit-identical with or without it).
	cache := pufferfish.NewScoreCache()

	comp := pufferfish.NewExactComposition(class, pufferfish.ExactOptions{}).WithCache(cache)
	freq := pufferfish.StateFrequency{State: 1, N: T}
	hist := pufferfish.RelFreqHistogram{K: 2, N: T}

	// A weekly release cadence: same data, same quilt sets, varying
	// queries.
	queries := []pufferfish.Query{freq, hist, freq, hist}
	for week, q := range queries {
		rel, err := comp.Release(data, q, 0.5, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("week %d: released %v (per-release ε = %.2g)\n", week+1, trim(rel.Values), rel.Epsilon)
	}
	fmt.Printf("\nafter %d releases the cumulative guarantee is %.2g-Pufferfish (K·max ε, Theorem 4.4)\n",
		comp.Count(), comp.TotalEpsilon())

	// A second season of releases: fresh accounting, cached score.
	comp2 := pufferfish.NewExactComposition(class, pufferfish.ExactOptions{}).WithCache(cache)
	if _, err := comp2.Release(data, freq, 0.5, rng); err != nil {
		log.Fatal(err)
	}
	stats := cache.Stats()
	fmt.Printf("score cache across both seasons: %d miss (one sweep), %d hits\n", stats.Misses, stats.Hits)
}

func trim(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*1e4)) / 1e4
	}
	return out
}
