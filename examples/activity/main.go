// Physical activity monitoring (Example 1 / Section 5.3.1): publish a
// person's activity histogram without revealing what they were doing
// at any specific moment, despite strong temporal correlation.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"pufferfish"
)

func main() {
	rng := rand.New(rand.NewPCG(5, 6))

	// Simulate a small cohort of cyclists wearing activity trackers.
	profile := pufferfish.DefaultActivityProfile(pufferfish.ActivityGroups[0])
	profile.Participants = 6
	ds, err := pufferfish.GenerateActivity(profile, rng)
	if err != nil {
		log.Fatal(err)
	}

	// The model class: the empirical chain estimated from the cohort,
	// started at stationarity (the paper's Θ = {(q_θ, P_θ)}).
	chain, err := ds.EmpiricalChain(0.5)
	if err != nil {
		log.Fatal(err)
	}
	longest := ds.LongestSession()
	class, err := pufferfish.NewSingleton(chain, longest)
	if err != nil {
		log.Fatal(err)
	}

	eps := 1.0
	// One participant's personal histogram, privately.
	person := ds.People[0]
	data := person.Flatten()
	q := pufferfish.RelFreqHistogram{K: 4, N: len(data)}
	exact, err := q.Evaluate(data)
	if err != nil {
		log.Fatal(err)
	}

	rel, score, err := pufferfish.MQMExact(data, q, class, eps, pufferfish.ExactOptions{}, rng)
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"active", "stand still", "stand moving", "sedentary"}
	fmt.Printf("participant with %d observations (%d sessions, longest %d)\n",
		person.Observations(), len(person.Sessions), person.LongestSession())
	fmt.Printf("MQMExact σ = %.1f, per-bin Laplace scale %.5f (ε = %g)\n\n",
		score.Sigma, rel.NoiseScale, eps)
	fmt.Printf("%-14s %8s %8s\n", "activity", "exact", "private")
	for s := range names {
		fmt.Printf("%-14s %8.4f %8.4f\n", names[s], exact[s], rel.Values[s])
	}

	// What GroupDP would have cost: every session fully correlated.
	gdp, err := pufferfish.GroupDP(data, q, person.LongestSession(), eps, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGroupDP per-bin scale would be %.4f (%.0f× more noise)\n",
		gdp.NoiseScale, gdp.NoiseScale/rel.NoiseScale)
}
