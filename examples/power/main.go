// Household electricity release (Section 5.3.2): publish the
// distribution of a home's per-minute power consumption over months of
// readings while hiding what was running at any given minute.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"pufferfish"
)

func main() {
	rng := rand.New(rand.NewPCG(7, 8))

	// Three months of per-minute readings from the appliance model.
	const T = 3 * 30 * 24 * 60
	house := pufferfish.DefaultPowerHouse()
	series, err := pufferfish.SimulatePower(house, T, rng)
	if err != nil {
		log.Fatal(err)
	}

	chain, err := pufferfish.EstimateStationaryChain([][]int{series}, pufferfish.PowerNumBins, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	class, err := pufferfish.NewSingleton(chain, T)
	if err != nil {
		log.Fatal(err)
	}

	eps := 1.0
	q := pufferfish.RelFreqHistogram{K: pufferfish.PowerNumBins, N: T}
	exact, err := q.Evaluate(series)
	if err != nil {
		log.Fatal(err)
	}

	relA, scoreA, err := pufferfish.MQMApprox(series, q, class, eps, pufferfish.ApproxOptions{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	relE, scoreE, err := pufferfish.MQMExact(series, q, class, eps, pufferfish.ExactOptions{}, rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("T = %d minutes, 51 bins of %d W, ε = %g\n", T, pufferfish.PowerBinWatts, eps)
	fmt.Printf("MQMApprox σ = %.1f   MQMExact σ = %.1f\n\n", scoreA.Sigma, scoreE.Sigma)

	fmt.Printf("%-12s %9s %9s %9s\n", "power", "exact", "approx", "exact-mqm")
	for b := 0; b < pufferfish.PowerNumBins; b++ {
		if exact[b] < 0.01 {
			continue // print only the visibly occupied bins
		}
		fmt.Printf("%4d-%4d W  %9.4f %9.4f %9.4f\n",
			b*pufferfish.PowerBinWatts, (b+1)*pufferfish.PowerBinWatts,
			exact[b], relA.Values[b], relE.Values[b])
	}

	var l1A, l1E float64
	for b := range exact {
		l1A += abs(relA.Values[b] - exact[b])
		l1E += abs(relE.Values[b] - exact[b])
	}
	fmt.Printf("\nL1 error: MQMApprox %.5f, MQMExact %.5f (GroupDP would be ≈ %.0f)\n",
		l1A, l1E, 2.0*float64(pufferfish.PowerNumBins)/eps)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
