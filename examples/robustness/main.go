// Robustness against close adversaries (Theorem 2.4): quantify how
// much privacy survives when the adversary's belief lies outside the
// class Θ the mechanism was configured with.
package main

import (
	"fmt"
	"log"

	"pufferfish"
)

func main() {
	// Databases take three values; the class Θ holds two beliefs about
	// their distribution conditioned on the single secret "record 1 is
	// 0" vs "record 1 is 1".
	mk := func(ps ...float64) pufferfish.Discrete {
		d, err := pufferfish.NewDiscrete([]float64{1, 2, 3}, ps)
		if err != nil {
			log.Fatal(err)
		}
		return d
	}
	secrets := []pufferfish.Secret{{Index: 1, Value: 0}, {Index: 1, Value: 1}}
	theta1 := []pufferfish.Discrete{mk(0.5, 0.3, 0.2), mk(0.2, 0.3, 0.5)}
	theta2 := []pufferfish.Discrete{mk(0.6, 0.25, 0.15), mk(0.15, 0.25, 0.6)}

	// An adversary whose belief drifts progressively farther from Θ.
	for _, drift := range []float64{0, 0.05, 0.15, 0.3} {
		belief := []pufferfish.Discrete{
			mk(0.5+drift/2, 0.3, 0.2-drift/2),
			mk(0.2-drift/2, 0.3, 0.5+drift/2),
		}
		delta, err := pufferfish.RobustnessDelta(pufferfish.BeliefInstance{
			Secrets:            secrets,
			ClassConditionals:  [][]pufferfish.Discrete{theta1, theta2},
			BeliefConditionals: belief,
		})
		if err != nil {
			log.Fatal(err)
		}
		eps := 1.0
		fmt.Printf("belief drift %.2f: Δ = %.4f → a %.0g-Pufferfish mechanism still gives ε' = %.4f\n",
			drift, delta, eps, pufferfish.EffectiveEpsilon(eps, delta))
	}
	fmt.Println("\nΔ = 0 when the belief is inside Θ; the guarantee degrades continuously, not abruptly.")
}
