// Kantorovich: score a correlated binary series with the
// exponential-mechanism/Kantorovich subsystem — per-cell transport
// profiles (W∞ and the Kantorovich distance W₁), the calibrated
// histogram release, a draw from the discrete exponential mechanism,
// and the Laplace/Gaussian additive-noise backends behind one
// interface.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"pufferfish"
)

func main() {
	rng := rand.New(rand.NewPCG(7, 8))

	// A correlated binary series split into wear sessions.
	const sessionLen = 60
	truth := pufferfish.BinaryChain(0.5, 0.9, 0.85)
	var sessions [][]int
	var flat []int
	for i := 0; i < 3; i++ {
		s := truth.Sample(sessionLen, rng)
		sessions = append(sessions, s)
		flat = append(flat, s...)
	}
	class, err := pufferfish.NewFinite([]pufferfish.Chain{truth}, sessionLen)
	if err != nil {
		log.Fatal(err)
	}
	eps := 1.0

	// Per-cell transport profiles: W∞ calibrates the noise; W₁ (the
	// Kantorovich distance) shows how much slack the worst-case
	// calibration leaves on this model.
	cache := pufferfish.NewScoreCache()
	fmt.Println("per-cell transport profiles:")
	for cell := 0; cell < 2; cell++ {
		p, err := pufferfish.KantorovichCellProfile(cache, class, cell, pufferfish.KantorovichOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cell %d: W∞ = %.3f  W₁ = %.3f  (ratio %.2f, worst pair %s, %d pairs)\n",
			cell, p.WInf, p.W1, p.W1/p.WInf, p.Label, p.Pairs)
	}

	// The mechanism's score: σ = k·max W∞/ε, spending ε/k per cell.
	score, err := pufferfish.KantorovichScoreMulti(cache, class, eps,
		pufferfish.KantorovichOptions{}, []int{sessionLen, sessionLen, sessionLen})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nKantorovich score: σ = %.2f (worst cell %d)\n", score.Sigma, score.Node)

	// Release the relative-frequency histogram. Each of the k = 2
	// cells spends ε/k, so the per-cell Laplace scale is
	// W∞/(ε/k) = σ at the count level — divided by n alongside the
	// frequencies.
	q := pufferfish.RelFreqHistogram{K: 2, N: len(flat)}
	exact, err := q.Evaluate(flat)
	if err != nil {
		log.Fatal(err)
	}
	wInf := score.Sigma * eps / 2 // per-cell W∞, recovered from σ = k·W∞/ε
	epsCell := eps / 2
	lap, err := pufferfish.NewAdditiveNoise("laplace", wInf, epsCell, 0)
	if err != nil {
		log.Fatal(err)
	}
	n := float64(len(flat))
	fmt.Printf("exact frequencies:    [%.4f %.4f]\n", exact[0], exact[1])
	fmt.Printf("released (laplace):   [%.4f %.4f]  (per-cell scale σ/n = %.4f)\n",
		exact[0]+lap.Sample(rng)/n, exact[1]+lap.Sample(rng)/n, lap.Scale()/n)

	// The same W∞ bound calibrates a Gaussian backend (the general
	// additive-noise route) at the same per-cell budget ...
	gauss, err := pufferfish.NewAdditiveNoise("gaussian", wInf, epsCell, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gaussian alternative: σ_noise = %.2f per cell for (ε/2, δ=1e-6)\n", gauss.Scale())

	// ... and the discrete exponential mechanism over the feasible
	// count range, which never releases an impossible value (one
	// cell's count at the ε/2 per-cell budget).
	count := exact[1] * n
	grid := make([]float64, len(flat)+1)
	for i := range grid {
		grid[i] = float64(i)
	}
	m, err := pufferfish.NewExpMech(grid, wInf, epsCell)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exponential mechanism: exact count %d -> released %v (always on the grid)\n",
		int(count), m.Sample(count, rng))
}
