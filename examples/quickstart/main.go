// Quickstart: release the fraction of time a correlated binary
// time-series spends in state 1 with ε-Pufferfish privacy, and compare
// what differential privacy and group differential privacy would do
// (the Section 1 motivation).
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"pufferfish"
)

func main() {
	rng := rand.New(rand.NewPCG(1, 2))

	// A slowly-changing binary activity series (e.g. resting/active
	// every 12 seconds): strongly correlated adjacent records.
	const T = 2000
	truth := pufferfish.BinaryChain(0.5, 0.95, 0.9)
	data := truth.Sample(T, rng)

	// The adversary's plausible models Θ: a small set around the
	// truth (the data curator rarely knows θ exactly).
	class, err := pufferfish.NewFinite([]pufferfish.Chain{
		pufferfish.BinaryChain(0.5, 0.95, 0.90),
		pufferfish.BinaryChain(0.5, 0.93, 0.92),
		pufferfish.BinaryChain(0.5, 0.96, 0.88),
	}, T)
	if err != nil {
		log.Fatal(err)
	}

	q := pufferfish.StateFrequency{State: 1, N: T}
	exact, err := q.Evaluate(data)
	if err != nil {
		log.Fatal(err)
	}
	eps := 1.0

	fmt.Printf("exact frequency of state 1: %.4f\n\n", exact[0])

	rel, score, err := pufferfish.MQMExact(data, q, class, eps, pufferfish.ExactOptions{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MQMExact:   released %.4f (σ = %.1f, active quilt %v at node %d)\n",
		rel.Values[0], score.Sigma, score.Quilt, score.Node)

	relA, scoreA, err := pufferfish.MQMApprox(data, q, class, eps, pufferfish.ApproxOptions{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MQMApprox:  released %.4f (σ = %.1f)\n", relA.Values[0], scoreA.Sigma)

	// Baselines: entry-DP under-protects (it ignores correlation);
	// GroupDP treats the whole series as one record and over-noises.
	dp, err := pufferfish.LaplaceDP(data, q, eps, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entry-DP:   released %.4f (scale %.5f — NOT Pufferfish-private here)\n",
		dp.Values[0], dp.NoiseScale)
	gdp, err := pufferfish.GroupDP(data, q, T, eps, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GroupDP:    released %.4f (scale %.2f — destroys utility)\n",
		gdp.Values[0], gdp.NoiseScale)

	fmt.Printf("\nMQM noise scale %.5f sits between them: correlation-aware privacy with utility.\n",
		rel.NoiseScale)
}
