package pufferfish

import (
	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
)

// Chain is a finite-state time-homogeneous Markov chain: initial
// distribution plus row-stochastic transition matrix.
type Chain = markov.Chain

// Class is a distribution class Θ of Markov chains (the third
// component of a Pufferfish instantiation in the Section 4.4 setting).
type Class = markov.Class

// SingletonClass is Θ = {θ}.
type SingletonClass = markov.Singleton

// FiniteClass is an explicit finite Θ.
type FiniteClass = markov.Finite

// BinaryIntervalClass is the synthetic-experiment class Θ = [α, β]
// of Section 5.2.
type BinaryIntervalClass = markov.BinaryInterval

// NewChain validates and builds a chain from an initial distribution
// and transition rows.
func NewChain(init []float64, rows [][]float64) (Chain, error) {
	return markov.NewFromRows(init, rows)
}

// NewChainMatrix builds a chain from an existing matrix.
func NewChainMatrix(init []float64, p *matrix.Dense) (Chain, error) {
	return markov.New(init, p)
}

// BinaryChain returns a two-state chain with stay probabilities
// (p0, p1) and initial P(X₁ = 0) = q0.
func BinaryChain(q0, p0, p1 float64) Chain { return markov.BinaryChain(q0, p0, p1) }

// NewSingleton wraps one chain of length T as a class.
func NewSingleton(c Chain, T int) (*SingletonClass, error) { return markov.NewSingleton(c, T) }

// NewFinite wraps an explicit chain set of length T as a class.
func NewFinite(cs []Chain, T int) (*FiniteClass, error) { return markov.NewFinite(cs, T) }

// NewBinaryInterval builds the Section 5.2 class of binary chains with
// transition parameters in [alpha, beta] and all initial
// distributions.
func NewBinaryInterval(alpha, beta float64, T int) (*BinaryIntervalClass, error) {
	return markov.NewBinaryInterval(alpha, beta, T)
}

// EstimateChain fits a chain to observed sequences by smoothed maximum
// likelihood.
func EstimateChain(seqs [][]int, k int, smoothing float64) (Chain, error) {
	return markov.Estimate(seqs, k, smoothing)
}

// EstimateStationaryChain fits a chain and starts it from its
// stationary distribution — the paper's choice for real data.
func EstimateStationaryChain(seqs [][]int, k int, smoothing float64) (Chain, error) {
	return markov.EstimateStationary(seqs, k, smoothing)
}
