// Command privrelease publishes a Pufferfish-private relative-
// frequency histogram of a discrete time series.
//
// Input: integer states (whitespace- or comma-separated) on stdin or
// from -in FILE; a blank line starts a new independent session (e.g. a
// sensor gap). Output: a JSON report with the released histogram, the
// noise accounting, and (for the quilt mechanisms) the fitted model.
//
// Example:
//
//	privrelease -eps 1 -mech mqm-exact -in activity.txt > release.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"pufferfish/internal/accounting"
	"pufferfish/internal/bayes"
	"pufferfish/internal/release"
)

func main() {
	eps := flag.Float64("eps", 1.0, "privacy parameter ε")
	mech := flag.String("mech", release.MechMQMExact, "mechanism: mqm-exact|mqm-approx|kantorovich|group-dp|dp")
	noiseKind := flag.String("noise", "", "additive backend for -mech kantorovich: laplace (default) or gaussian (needs -delta)")
	delta := flag.Float64("delta", 0, "δ of the (ε, δ) guarantee (-noise gaussian only)")
	account := flag.Bool("account", false, "attach a Rényi accounting ledger; the report gains an accounting block (release identical either way)")
	accountDelta := flag.Float64("account-delta", 0, "δ at which the ledger reports its headline ε (0 = 1e-5)")
	k := flag.Int("k", 0, "number of states (0 = infer from data)")
	smoothing := flag.Float64("smoothing", 0.5, "additive smoothing for the empirical chain")
	seed := flag.Uint64("seed", 0, "noise seed (0 = nondeterministic is NOT offered; 0 is a valid fixed seed)")
	in := flag.String("in", "", "input file (default stdin)")
	substrate := flag.String("substrate", "", "secret model kind: chain (default; fits an empirical Markov chain) or network (needs -network)")
	networkFile := flag.String("network", "", "JSON file with a polytree Bayesian network ([{\"name\", \"card\", \"parents\", \"cpt\"}, ...]); the input must be one session with one observation per node")
	parallel := flag.Int("parallel", 0, "scoring-engine workers (0 = all CPUs, 1 = serial; release identical either way)")
	cacheFlag := flag.Bool("cache", false, "memoize quilt scores by (model fingerprint, ε); release identical either way, report gains a cache stats block")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	sessions, err := release.ParseSeries(src)
	if err != nil {
		fatal(err)
	}
	var cache *release.ScoreCache
	if *cacheFlag {
		cache = release.NewScoreCache()
	}
	var ledger *accounting.Ledger
	if *account {
		ledger = accounting.NewLedger(*accountDelta)
	}
	var network *bayes.Network
	if *networkFile != "" {
		blob, err := os.ReadFile(*networkFile)
		if err != nil {
			fatal(err)
		}
		if network, err = bayes.ParseJSON(blob); err != nil {
			fatal(err)
		}
	}
	report, err := release.Run(sessions, release.Config{
		Epsilon:     *eps,
		Delta:       *delta,
		K:           *k,
		Mechanism:   *mech,
		Noise:       *noiseKind,
		Substrate:   *substrate,
		Network:     network,
		Smoothing:   *smoothing,
		Seed:        *seed,
		Parallelism: *parallel,
		Cache:       cache,
		Accountant:  ledger,
	})
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "privrelease:", err)
	os.Exit(1)
}
