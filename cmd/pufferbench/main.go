// Command pufferbench regenerates the paper's tables and figures.
//
// Usage:
//
//	pufferbench examples                  # worked examples vs paper
//	pufferbench fig4top  [flags]          # Figure 4 upper row
//	pufferbench fig4bottom [flags]        # Figure 4 lower row
//	pufferbench table1   [flags]          # Table 1
//	pufferbench table2   [flags]          # Table 2
//	pufferbench table3   [flags]          # Table 3
//	pufferbench all      [flags]          # everything above
//	pufferbench bench    [flags]          # scoring-engine micro-benchmarks → BENCH_5.json
//	pufferbench compare OLD NEW [-tol F]  # fail on ns/op regressions between two reports
//	pufferbench checkparallel REPORT      # fail unless a report shows real multi-core speedup
//	pufferbench serve    [flags]          # serving-layer load smoke (in-process pufferd)
//	pufferbench chaos -pufferd PATH       # crash-recovery smoke (kill -9 a real pufferd)
//
// Every table/figure command accepts -quick for a reduced-size run
// (minutes → seconds) that exercises identical code paths, -seed for
// reproducibility, and -parallel to bound the scoring engine's worker
// count (0 = all CPUs, 1 = serial; results are identical either way).
// The activity commands additionally accept -cache to memoize quilt
// scores across the run (results identical either way). The bench
// command accepts -quick, -o, and -procs: it always measures each
// workload at both parallelism 1 and all-CPUs, so -parallel does not
// apply, but -procs pins GOMAXPROCS for the whole run (recorded in the
// report; a GOMAXPROCS=1 run is marked parallel_measurement_valid:
// false because its serial/parallel pairs cannot show real speedup).
// compare exits non-zero when any benchmark present in both reports
// regressed in ns/op by more than -tol (default 0.15); corrupt reports
// (non-positive or non-finite ns/op on a shared benchmark) are an
// explicit error, never a silent pass. checkparallel is the CI
// multi-core gate: it fails unless the report was taken with
// GOMAXPROCS > 1 and at least one sweep workload's speedup_vs_serial
// meets -min (default 1.05). serve starts an in-process
// release server, drives concurrent warm-cache traffic over one
// model (-parallel bounds the server's global worker budget), and
// fails unless every response is bit-identical to release.Run and the
// shared cache reports hits. chaos runs a real pufferd binary
// (-pufferd PATH) with an accounting WAL, repeatedly kill -9s it
// mid-traffic, and fails unless every restart recovers a privacy
// budget at least as large as the spend of the releases actually
// delivered, with the warm cache intact (-quick shrinks the rounds).
package main

import (
	"flag"
	"fmt"
	"os"

	"pufferfish/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced-size run (same code paths, much faster)")
	seed := fs.Uint64("seed", 1, "RNG seed")
	trials := fs.Int("trials", 0, "override trial count (0 = default)")
	csv := fs.Bool("csv", false, "plot-ready CSV output (fig4top only)")
	parallel := fs.Int("parallel", 0, "scoring-engine workers (0 = all CPUs, 1 = serial)")
	useCache := fs.Bool("cache", false, "memoize quilt scores across the run (activity commands; results identical either way)")
	benchOut := fs.String("o", "BENCH_5.json", "output path (bench only)")
	procs := fs.Int("procs", 0, "pin GOMAXPROCS for the run (bench only; 0 = runtime default)")
	tol := fs.Float64("tol", 0.15, "allowed ns/op regression fraction (compare only)")
	minSpeedup := fs.Float64("min", 1.05, "required best speedup_vs_serial (checkparallel only)")
	pufferdBin := fs.String("pufferd", "", "path to a built pufferd binary (chaos only)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	var cache *experiments.ScoreCache
	if *useCache {
		cache = experiments.NewScoreCache()
	}

	var err error
	switch cmd {
	case "examples":
		err = runExamples()
	case "fig4top":
		err = runFig4Top(*quick, *seed, *trials, *csv, *parallel)
	case "fig4bottom":
		err = runActivity(*quick, *seed, *trials, true, false, *parallel, cache)
	case "table1":
		err = runActivity(*quick, *seed, *trials, false, true, *parallel, cache)
	case "table2":
		err = runTable2(*quick, *seed, *parallel)
	case "table3":
		err = runTable3(*quick, *seed, *trials, *parallel)
	case "all":
		err = runAll(*quick, *seed, *trials, *parallel, cache)
	case "bench":
		err = runBench(*quick, *benchOut, *procs)
	case "serve":
		err = runServe(*quick, *seed, *parallel)
	case "chaos":
		err = runChaos(*quick, *pufferdBin)
	case "compare":
		args := fs.Args()
		if len(args) != 2 {
			usage()
			os.Exit(2)
		}
		err = runCompare(args[0], args[1], *tol)
	case "checkparallel":
		args := fs.Args()
		if len(args) != 1 {
			usage()
			os.Exit(2)
		}
		err = runCheckParallel(args[0], *minSpeedup)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pufferbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pufferbench <examples|fig4top|fig4bottom|table1|table2|table3|all> [-quick] [-seed N] [-trials N] [-parallel N] [-cache]
       pufferbench bench [-quick] [-o FILE] [-procs N]
       pufferbench compare [-tol F] OLD.json NEW.json
       pufferbench checkparallel [-min F] REPORT.json
       pufferbench serve [-quick] [-seed N] [-parallel N]
       pufferbench chaos -pufferd PATH [-quick]`)
}

func runExamples() error {
	examples, err := experiments.RunWorkedExamples()
	if err != nil {
		return err
	}
	experiments.RenderWorkedExamples(examples).Render(os.Stdout)
	if ok, bad := experiments.AllMatch(examples); !ok {
		return fmt.Errorf("worked examples diverge from the paper: %s", bad)
	}
	return nil
}

func runFig4Top(quick bool, seed uint64, trials int, csv bool, parallel int) error {
	cfg := experiments.DefaultFig4TopConfig()
	cfg.Seed = seed
	cfg.Parallelism = parallel
	if quick {
		cfg.Trials = 50
		cfg.GridN = 5
	}
	if trials > 0 {
		cfg.Trials = trials
	}
	results, err := experiments.Fig4Top(cfg)
	if err != nil {
		return err
	}
	for _, r := range results {
		if csv {
			fmt.Print(r.CSV())
		} else {
			r.Render().Render(os.Stdout)
		}
		fmt.Println()
	}
	return nil
}

func runActivity(quick bool, seed uint64, trials int, fig, table bool, parallel int, cache *experiments.ScoreCache) error {
	cfg := experiments.DefaultActivityConfig()
	cfg.Seed = seed
	cfg.Parallelism = parallel
	cfg.Cache = cache
	if quick {
		cfg.PopulationScale = 0.2
		cfg.Trials = 5
	}
	if trials > 0 {
		cfg.Trials = trials
	}
	results, err := experiments.ActivityExperiment(cfg)
	if err != nil {
		return err
	}
	if fig {
		for _, r := range results {
			experiments.RenderFig4Bottom(r, cfg.Eps).Render(os.Stdout)
			fmt.Println()
		}
	}
	if table {
		experiments.RenderTable1(results, cfg.Eps).Render(os.Stdout)
		fmt.Println()
		for _, r := range results {
			fmt.Printf("%s: people=%d observations=%d σ_approx=%.1f σ_exact=%.1f\n",
				r.Group, r.People, r.Observations,
				r.Sigmas[experiments.MechApprox], r.Sigmas[experiments.MechExact])
		}
	}
	return nil
}

func runTable2(quick bool, seed uint64, parallel int) error {
	cfg := experiments.DefaultTimingConfig()
	cfg.Seed = seed
	cfg.Parallelism = parallel
	if quick {
		cfg.SyntheticGridStep = 0.2
		cfg.PowerT = 100_000
		cfg.PopulationScale = 0.2
		cfg.Repeats = 2
	}
	res, err := experiments.TimingExperiment(cfg)
	if err != nil {
		return err
	}
	res.Render().Render(os.Stdout)
	return nil
}

func runTable3(quick bool, seed uint64, trials int, parallel int) error {
	cfg := experiments.DefaultPowerConfig()
	cfg.Seed = seed
	cfg.Parallelism = parallel
	if quick {
		cfg.T = 100_000
		cfg.Trials = 5
	}
	if trials > 0 {
		cfg.Trials = trials
	}
	res, err := experiments.PowerExperiment(cfg)
	if err != nil {
		return err
	}
	res.Render().Render(os.Stdout)
	fmt.Println()
	for _, c := range res.Cells {
		fmt.Printf("ε=%g: σ_approx=%.1f σ_exact=%.1f\n", c.Eps, c.SigmaApprox, c.SigmaExact)
	}
	return nil
}

func runAll(quick bool, seed uint64, trials int, parallel int, cache *experiments.ScoreCache) error {
	if err := runExamples(); err != nil {
		return err
	}
	fmt.Println()
	if err := runFig4Top(quick, seed, trials, false, parallel); err != nil {
		return err
	}
	if err := runActivity(quick, seed, trials, true, true, parallel, cache); err != nil {
		return err
	}
	fmt.Println()
	if err := runTable3(quick, seed, trials, parallel); err != nil {
		return err
	}
	fmt.Println()
	return runTable2(quick, seed, parallel)
}
