package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
	"pufferfish/internal/release"
	"pufferfish/internal/server"
)

// runServe is the serving-layer load smoke: it starts an in-process
// pufferd (internal/server) instance, drives concurrent release
// traffic over one stable model — the warmed-cache regime the server
// exists for — and fails unless every response is bit-identical to the
// equivalent one-shot release.Run and the shared cache reports hits.
// It finishes with a batch call exercising the deduped scoring path
// and prints throughput plus the /v1/stats counters.
func runServe(quick bool, seed uint64, parallel int) error {
	nSessions, sessionLen, requests := 6, 400, 32
	if quick {
		nSessions, sessionLen, requests = 3, 150, 8
	}
	rng := rand.New(rand.NewPCG(seed, 0x5e21))
	truth := markov.BinaryChain(0.5, 0.9, 0.85)
	sessions := make([][]int, nSessions)
	for i := range sessions {
		sessions[i] = truth.Sample(sessionLen, rng)
	}

	s := server.New(server.Config{Workers: parallel})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mechanisms := release.Mechanisms()
	golden := make(map[string]*release.Report, len(mechanisms))
	for _, mech := range mechanisms {
		rep, err := release.Run(sessions, release.Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: seed})
		if err != nil {
			return err
		}
		golden[mech] = rep
	}

	post := func(path string, body any) ([]byte, error) {
		blob, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(blob))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("serve: %s: status %d: %s", path, resp.StatusCode, out)
		}
		return out, nil
	}
	checkReport := func(blob []byte, mech string) error {
		var got release.Report
		if err := json.Unmarshal(blob, &got); err != nil {
			return fmt.Errorf("serve: bad report %s: %w", blob, err)
		}
		want := golden[mech]
		if !floats.EqSlices(got.Histogram, want.Histogram, 0) || got.Sigma != want.Sigma || got.NoiseScale != want.NoiseScale {
			return fmt.Errorf("serve: %s response diverges from release.Run (σ %v vs %v)", mech, got.Sigma, want.Sigma)
		}
		return nil
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mech := mechanisms[i%len(mechanisms)]
			blob, err := post("/v1/release", server.ReleaseRequest{
				Sessions: sessions, Epsilon: 1, Mechanism: mech, Smoothing: 0.5,
				Seed: seed, Parallelism: 1 + i%4,
			})
			if err == nil {
				err = checkReport(blob, mech)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// One batch over the same model: every quilt score must come from
	// dedupe or the now-warm cache.
	preBatch := s.Cache().Stats()
	batch := server.BatchRequest{Requests: make([]server.ReleaseRequest, len(mechanisms))}
	for i, mech := range mechanisms {
		batch.Requests[i] = server.ReleaseRequest{Sessions: sessions, Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: seed}
	}
	blob, err := post("/v1/release/batch", batch)
	if err != nil {
		return err
	}
	var batchResp server.BatchResponse
	if err := json.Unmarshal(blob, &batchResp); err != nil {
		return err
	}
	for i, rep := range batchResp.Reports {
		reBlob, err := json.Marshal(rep)
		if err != nil {
			return err
		}
		if err := checkReport(reBlob, mechanisms[i]); err != nil {
			return fmt.Errorf("batch: %w", err)
		}
	}
	if misses := s.Cache().Stats().Misses; misses != preBatch.Misses {
		return fmt.Errorf("serve: warm batch re-scored the model (misses %d -> %d)", preBatch.Misses, misses)
	}

	st := s.Stats()
	if st.Cache.Hits == 0 {
		return fmt.Errorf("serve: repeated releases over one model produced no cache hits: %+v", st.Cache)
	}
	// Traffic-mix assertion: the per-mechanism counters must account
	// for exactly the requests this smoke drove (round-robin singles
	// plus one batch member each).
	for i, mech := range mechanisms {
		want := int64(requests/len(mechanisms) + 1) // +1 from the batch
		if i < requests%len(mechanisms) {
			want++
		}
		if got := st.ReleasesByMechanism[mech]; got != want {
			return fmt.Errorf("serve: stats report %d %s releases, drove %d", got, mech, want)
		}
	}
	fmt.Printf("serve: %d releases over %d sessions × %d obs in %v (%.0f rel/s)\n",
		st.ReleasesTotal, nSessions, sessionLen, elapsed.Round(time.Millisecond),
		float64(requests)/elapsed.Seconds())
	fmt.Printf("serve: all responses bit-identical to release.Run; cache %d hits / %d misses (%d entries), worker budget %d\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Entries, st.Workers.Budget)
	return nil
}
