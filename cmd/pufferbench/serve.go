package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
	"pufferfish/internal/obs"
	"pufferfish/internal/release"
	"pufferfish/internal/server"
)

// fmtSec renders a latency in seconds as a rounded duration for the
// percentile report.
func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// shedRetries counts the load client's encounters with 429 load
// shedding: sheds is responses refused with a full queue, retries is
// the follow-up attempts made after honoring Retry-After.
type shedRetries struct {
	sheds   atomic.Int64
	retries atomic.Int64
}

// postRetry posts body and, on a 429 shed, backs off and retries: it
// honors the server's Retry-After header as the floor wait and adds
// a random jitter that grows with the attempt, so a herd of shed
// clients does not return in lockstep and re-shed each other.
func postRetry(client *http.Client, url string, body any, sr *shedRetries) ([]byte, error) {
	blob, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	const maxAttempts = 10
	for attempt := 1; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(blob))
		if err != nil {
			return nil, err
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < maxAttempts {
			sr.sheds.Add(1)
			sr.retries.Add(1)
			floor := 50 * time.Millisecond
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
				floor = time.Duration(secs) * time.Second
			}
			jitter := time.Duration(rand.Int64N(int64(50*time.Millisecond) * int64(attempt)))
			time.Sleep(floor + jitter)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("serve: %s: status %d: %s", url, resp.StatusCode, out)
		}
		return out, nil
	}
}

// runServe is the serving-layer load smoke: it starts an in-process
// pufferd (internal/server) instance, drives concurrent release
// traffic over one stable model — the warmed-cache regime the server
// exists for — and fails unless every response is bit-identical to the
// equivalent one-shot release.Run and the shared cache reports hits.
// The server runs with a bounded scoring queue and the load client
// retries shed (429) requests with jittered backoff, so the smoke also
// exercises the load-shedding path end to end; a dedicated one-worker
// burst asserts sheds actually occur and every shed request still
// completes. It finishes with a batch call exercising the deduped
// scoring path and prints throughput plus the /v1/stats counters.
func runServe(quick bool, seed uint64, parallel int) error {
	nSessions, sessionLen, requests := 6, 400, 32
	if quick {
		nSessions, sessionLen, requests = 3, 150, 8
	}
	rng := rand.New(rand.NewPCG(seed, 0x5e21))
	truth := markov.BinaryChain(0.5, 0.9, 0.85)
	sessions := make([][]int, nSessions)
	for i := range sessions {
		sessions[i] = truth.Sample(sessionLen, rng)
	}

	// A bounded queue makes the smoke exercise real load shedding on
	// small worker budgets; the retrying client below absorbs it.
	s := server.New(server.Config{Workers: parallel, MaxQueue: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var sr shedRetries

	mechanisms := release.Mechanisms()
	golden := make(map[string]*release.Report, len(mechanisms))
	for _, mech := range mechanisms {
		rep, err := release.Run(sessions, release.Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: seed})
		if err != nil {
			return err
		}
		golden[mech] = rep
	}

	post := func(path string, body any) ([]byte, error) {
		return postRetry(ts.Client(), ts.URL+path, body, &sr)
	}
	checkReport := func(blob []byte, mech string) error {
		var got release.Report
		if err := json.Unmarshal(blob, &got); err != nil {
			return fmt.Errorf("serve: bad report %s: %w", blob, err)
		}
		want := golden[mech]
		//privlint:allow floatcompare smoke check asserts bit-identity with release.Run by contract
		if !floats.EqSlices(got.Histogram, want.Histogram, 0) || got.Sigma != want.Sigma || got.NoiseScale != want.NoiseScale {
			return fmt.Errorf("serve: %s response diverges from release.Run (σ %v vs %v)", mech, got.Sigma, want.Sigma)
		}
		return nil
	}

	// Per-mechanism client-side latency, measured with the same
	// histogram type the server's /metrics exposes, so the bench's
	// percentile math and pufferd's dashboards can never disagree on
	// bucket semantics.
	latency := make(map[string]*obs.Histogram, len(mechanisms))
	for _, mech := range mechanisms {
		latency[mech] = obs.NewHistogram(nil)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mech := mechanisms[i%len(mechanisms)]
			reqStart := time.Now()
			blob, err := post("/v1/release", server.ReleaseRequest{
				Sessions: sessions, Epsilon: 1, Mechanism: mech, Smoothing: 0.5,
				Seed: seed, Parallelism: 1 + i%4,
			})
			if err == nil {
				latency[mech].Observe(time.Since(reqStart).Seconds())
				err = checkReport(blob, mech)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// One batch over the same model: every quilt score must come from
	// dedupe or the now-warm cache.
	preBatch := s.Cache().Stats()
	batch := server.BatchRequest{Requests: make([]server.ReleaseRequest, len(mechanisms))}
	for i, mech := range mechanisms {
		batch.Requests[i] = server.ReleaseRequest{Sessions: sessions, Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: seed}
	}
	blob, err := post("/v1/release/batch", batch)
	if err != nil {
		return err
	}
	var batchResp server.BatchResponse
	if err := json.Unmarshal(blob, &batchResp); err != nil {
		return err
	}
	for i, rep := range batchResp.Reports {
		reBlob, err := json.Marshal(rep)
		if err != nil {
			return err
		}
		if err := checkReport(reBlob, mechanisms[i]); err != nil {
			return fmt.Errorf("batch: %w", err)
		}
	}
	if misses := s.Cache().Stats().Misses; misses != preBatch.Misses {
		return fmt.Errorf("serve: warm batch re-scored the model (misses %d -> %d)", preBatch.Misses, misses)
	}

	// Shed-retry check: the scoring engine is fast enough that organic
	// queue overflow cannot be forced deterministically, so a shedding
	// front deterministically 429s the first two attempts (the first
	// advertising Retry-After: 1). The retrying client must wait out
	// the advertised second, come back, and land the release.
	var fronted atomic.Int64
	shedFront := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/release" {
			switch fronted.Add(1) {
			case 1:
				w.Header().Set("Retry-After", "1")
				http.Error(w, "shed", http.StatusTooManyRequests)
				return
			case 2:
				w.Header().Set("Retry-After", "0")
				http.Error(w, "shed", http.StatusTooManyRequests)
				return
			}
		}
		s.Handler().ServeHTTP(w, r)
	}))
	defer shedFront.Close()
	var burstSR shedRetries
	shedStart := time.Now()
	blob, err = postRetry(shedFront.Client(), shedFront.URL+"/v1/release", server.ReleaseRequest{
		Sessions: sessions, Epsilon: 1, Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: seed,
	}, &burstSR)
	if err != nil {
		return fmt.Errorf("serve: shed retry: %w", err)
	}
	if err := checkReport(blob, release.MechMQMExact); err != nil {
		return fmt.Errorf("serve: shed retry: %w", err)
	}
	if got := burstSR.sheds.Load(); got != 2 {
		return fmt.Errorf("serve: shed front refused 2 attempts, client saw %d", got)
	}
	if waited := time.Since(shedStart); waited < time.Second {
		return fmt.Errorf("serve: client ignored Retry-After: 1 (came back after %v)", waited)
	}

	st := s.Stats()
	if st.Cache.Hits == 0 {
		return fmt.Errorf("serve: repeated releases over one model produced no cache hits: %+v", st.Cache)
	}
	// Traffic-mix assertion: the per-mechanism counters must account
	// for exactly the requests this smoke drove (round-robin singles,
	// one batch member each, one mqm-exact through the shed front).
	for i, mech := range mechanisms {
		want := int64(requests/len(mechanisms) + 1) // +1 from the batch
		if i < requests%len(mechanisms) {
			want++
		}
		if mech == release.MechMQMExact {
			want++ // the shed-retry release above
		}
		if got := st.ReleasesByMechanism[mech]; got != want {
			return fmt.Errorf("serve: stats report %d %s releases, drove %d", got, mech, want)
		}
	}
	fmt.Printf("serve: %d releases over %d sessions × %d obs in %v (%.0f rel/s)\n",
		st.ReleasesTotal, nSessions, sessionLen, elapsed.Round(time.Millisecond),
		float64(requests)/elapsed.Seconds())
	fmt.Printf("serve: all responses bit-identical to release.Run; cache %d hits / %d misses (%d entries), worker budget %d\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Entries, st.Workers.Budget)
	fmt.Printf("serve: load shedding — main traffic %d shed / %d retried (server shed_total %d); shed front %d shed / %d retried, release landed after honoring Retry-After\n",
		sr.sheds.Load(), sr.retries.Load(), st.ShedTotal, burstSR.sheds.Load(), burstSR.retries.Load())
	for _, mech := range mechanisms {
		snap := latency[mech].Snapshot()
		fmt.Printf("serve: latency %-12s p50=%s p90=%s p99=%s max=%s (n=%d)\n",
			mech, fmtSec(snap.Quantile(0.5)), fmtSec(snap.Quantile(0.9)),
			fmtSec(snap.Quantile(0.99)), fmtSec(snap.Max), snap.Count)
	}
	return nil
}
