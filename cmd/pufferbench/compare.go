package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// runCompare loads two bench reports (e.g. BENCH_1.json from the
// previous PR and BENCH_2.json from this one) and fails when any
// benchmark present in both regressed in ns/op by more than tol
// (fractional, e.g. 0.15 = 15%). Benchmarks only present on one side
// are listed but never fail the comparison, so reports can gain and
// lose workloads across PRs.
func runCompare(oldPath, newPath string, tol float64) error {
	oldRep, err := readBenchReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := readBenchReport(newPath)
	if err != nil {
		return err
	}
	oldByName := make(map[string]benchEntry, len(oldRep.Benchmarks))
	for _, e := range oldRep.Benchmarks {
		oldByName[e.Name] = e
	}
	shared := 0
	var regressions []string
	for _, ne := range newRep.Benchmarks {
		oe, ok := oldByName[ne.Name]
		if !ok {
			fmt.Printf("%-36s %31s (new benchmark)\n", ne.Name, "-")
			continue
		}
		// A corrupt report (zero, negative, NaN, or Inf ns/op) must be an
		// explicit failure: the delta below would be NaN/Inf, and NaN > tol
		// is false, so a regression gate fed garbage would silently pass.
		if err := checkNsPerOp(oldPath, ne.Name, oe.NsPerOp); err != nil {
			return err
		}
		if err := checkNsPerOp(newPath, ne.Name, ne.NsPerOp); err != nil {
			return err
		}
		shared++
		delta := ne.NsPerOp/oe.NsPerOp - 1
		status := "ok"
		if delta > tol {
			status = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s %+.1f%%", ne.Name, delta*100))
		}
		fmt.Printf("%-36s %12.0f -> %12.0f ns/op  %+7.1f%%  %s\n",
			ne.Name, oe.NsPerOp, ne.NsPerOp, delta*100, status)
	}
	if shared == 0 {
		return fmt.Errorf("compare: no shared benchmarks between %s and %s", oldPath, newPath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("compare: %d ns/op regression(s) beyond %.0f%%: %v",
			len(regressions), tol*100, regressions)
	}
	fmt.Printf("compare: %d shared benchmarks within %.0f%% ns/op tolerance\n", shared, tol*100)
	return nil
}

// runCheckParallel is the CI multi-core gate. It loads a bench report
// and fails unless (a) the run was taken with more than one effective
// CPU — parallel_measurement_valid — and (b) the best speedup_vs_serial
// across the serial/parallel pairs reaches min. Single-core hosts must
// never pass: their "speedups" are scheduler noise, and a gate that
// accepted them would certify parallelism that was never measured.
func runCheckParallel(path string, min float64) error {
	rep, err := readBenchReport(path)
	if err != nil {
		return err
	}
	if !rep.ParallelMeasurementValid {
		return fmt.Errorf("checkparallel: %s: parallel_measurement_valid=false (go_max_procs=%d) — rerun with -procs > 1 on a multi-core host",
			path, rep.GoMaxProcs)
	}
	best, bestName, pairs := 0.0, "", 0
	for _, e := range rep.Benchmarks {
		//privlint:allow floatcompare zero is the exact not-measured sentinel in the report
		if e.SpeedupVsSerial == 0 {
			continue
		}
		if err := checkNsPerOp(path, e.Name, e.NsPerOp); err != nil {
			return err
		}
		pairs++
		if e.SpeedupVsSerial > best {
			best, bestName = e.SpeedupVsSerial, e.Name
		}
		fmt.Printf("%-36s %6.2fx vs serial\n", e.Name, e.SpeedupVsSerial)
	}
	if pairs == 0 {
		return fmt.Errorf("checkparallel: %s: no serial/parallel pairs in report", path)
	}
	if best < min {
		return fmt.Errorf("checkparallel: %s: best speedup_vs_serial %.2fx (%s) below required %.2fx",
			path, best, bestName, min)
	}
	fmt.Printf("checkparallel: ok — %s reaches %.2fx (≥ %.2fx) at GOMAXPROCS=%d\n", bestName, best, min, rep.GoMaxProcs)
	return nil
}

// checkNsPerOp rejects measurements no real benchmark produces.
func checkNsPerOp(path, name string, ns float64) error {
	if !(ns > 0) || math.IsInf(ns, 1) {
		return fmt.Errorf("compare: %s: %s has invalid ns/op %v (corrupt report?)", path, name, ns)
	}
	return nil
}

func readBenchReport(path string) (benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchReport{}, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return benchReport{}, fmt.Errorf("compare: %s: %w", path, err)
	}
	return rep, nil
}
