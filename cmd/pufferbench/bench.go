package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"testing"

	"pufferfish/internal/accounting"
	"pufferfish/internal/bayes"
	"pufferfish/internal/core"
	"pufferfish/internal/kantorovich"
	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
	"pufferfish/internal/power"
	"pufferfish/internal/query"
	"pufferfish/internal/release"
)

// benchEntry is one row of the BENCH_N.json report: the standard Go
// benchmark metrics plus the wall-clock speedup of the parallel
// variant over its serial twin (".../parallel" rows) or of an
// optimized variant over its ablation baseline (".../cached",
// ".../batch" rows).
type benchEntry struct {
	Name              string  `json:"name"`
	NsPerOp           float64 `json:"ns_per_op"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
	Iterations        int     `json:"iterations"`
	SpeedupVsSerial   float64 `json:"speedup_vs_serial,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// benchReport is the machine-readable perf snapshot tracked across PRs.
type benchReport struct {
	GoMaxProcs int `json:"go_max_procs"`
	// RequestedProcs echoes the -procs flag (0 = runtime default); CI
	// lanes pin it so a report says which configuration produced it.
	RequestedProcs int  `json:"requested_procs,omitempty"`
	Quick          bool `json:"quick"`
	// ParallelMeasurementValid is false when the run had a single
	// effective CPU: the serial/parallel pairs then measure scheduler
	// overhead, not parallel speedup, and speedup_vs_serial must not be
	// read as a parallelism result. The checkparallel gate refuses such
	// reports.
	ParallelMeasurementValid bool         `json:"parallel_measurement_valid"`
	Benchmarks               []benchEntry `json:"benchmarks"`
	// Accounting records the privacy-budget outcome of the repeated
	// Gaussian-release workload: the Rényi ledger's (ε, δ) next to the
	// linear Theorem 4.4 bound it tightens. The bench fails when the
	// RDP bound is not strictly below linear, so a committed BENCH
	// snapshot doubles as the budget gate.
	Accounting *accountingSummary `json:"accounting,omitempty"`
}

// accountingSummary is benchReport.Accounting.
type accountingSummary struct {
	Workload       string  `json:"workload"`
	Releases       int     `json:"releases"`
	Delta          float64 `json:"delta"`
	LinearEpsilon  float64 `json:"linear_epsilon"`
	RDPEpsilon     float64 `json:"rdp_epsilon"`
	SavingsFactor  float64 `json:"savings_vs_linear"`
	AccumulatedRho float64 `json:"rho"`
}

// runBench measures the scoring engine's hot paths serial vs parallel,
// the score cache's composition and batch workloads, and writes the
// BENCH_N.json report. The workloads mirror bench_test.go's
// sub-benchmarks so `go test -bench` and this command track the same
// quantities; the serial/parallel workload names are shared with
// BENCH_1.json so `pufferbench compare` can track the trajectory.
func runBench(quick bool, out string, procs int) error {
	if procs > 0 {
		runtime.GOMAXPROCS(procs)
	}
	exactT, approxT, wassT, powT := 2000, 2000, 36, 50_000
	compT, compReleases, batchT := 2000, 100, 500
	kantT, kantReleases := 100, 12
	treeN, treeReleases := 24, 8
	if quick {
		exactT, approxT, wassT, powT = 500, 500, 18, 10_000
		compT, batchT = 500, 200
		kantT, kantReleases = 50, 6
		treeN, treeReleases = 12, 4
	}

	chain, err := markov.BinaryChain(0.5, 0.9, 0.85).StationaryChain()
	if err != nil {
		return err
	}
	exactClass, err := markov.NewFinite([]markov.Chain{chain}, exactT)
	if err != nil {
		return err
	}
	approxClass, err := markov.NewFinite([]markov.Chain{chain}, approxT)
	if err != nil {
		return err
	}
	wassClass, err := markov.NewFinite([]markov.Chain{markov.BinaryChain(0.5, 0.8, 0.7)}, wassT)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewPCG(41, 42))
	series, err := power.DefaultHouse().Simulate(powT, rng)
	if err != nil {
		return err
	}
	powChain, err := power.EmpiricalChain(series, 0.5)
	if err != nil {
		return err
	}
	powClass, err := markov.NewSingleton(powChain, powT)
	if err != nil {
		return err
	}
	powClassT1, err := markov.NewSingleton(powChain, powT+1)
	if err != nil {
		return err
	}

	kantClass, err := markov.NewFinite([]markov.Chain{markov.BinaryChain(0.5, 0.85, 0.8)}, kantT)
	if err != nil {
		return err
	}

	// Each case runs once with Parallelism 1 and once with 0 (all
	// CPUs); any returned error aborts the whole run.
	cases := []struct {
		name string
		run  func(parallelism int) error
	}{
		{"ExactScoreSweep", func(p int) error {
			_, err := core.ExactScore(exactClass, 1, core.ExactOptions{ForceFullSweep: true, Parallelism: p})
			return err
		}},
		{"ApproxScoreSweep", func(p int) error {
			_, err := core.ApproxScore(approxClass, 1, core.ApproxOptions{ForceFullSweep: true, Parallelism: p})
			return err
		}},
		{"WassersteinChain", func(p int) error {
			inst := core.ChainCountInstance{Class: wassClass, W: []int{0, 1}, Parallelism: p}
			_, _, err := core.WassersteinScaleOpt(inst, core.WassersteinOptions{Parallelism: p})
			return err
		}},
		{"ExactScorePower51", func(p int) error {
			_, err := core.ExactScore(powClass, 1, core.ExactOptions{Parallelism: p})
			return err
		}},
		{"KantorovichProfileSweep", func(p int) error {
			_, err := kantorovich.Score(nil, kantClass, 1, kantorovich.Options{Parallelism: p})
			return err
		}},
	}

	report := benchReport{
		GoMaxProcs:               runtime.GOMAXPROCS(0),
		RequestedProcs:           procs,
		Quick:                    quick,
		ParallelMeasurementValid: runtime.GOMAXPROCS(0) > 1,
	}
	if !report.ParallelMeasurementValid {
		fmt.Println("warning: GOMAXPROCS=1 — serial/parallel pairs measure scheduler overhead, not speedup; parallel_measurement_valid=false")
	}
	for _, c := range cases {
		var runErr error
		measure := func(parallelism int) testing.BenchmarkResult {
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := c.run(parallelism); err != nil {
						runErr = err
						b.FailNow()
					}
				}
			})
		}
		serial := measure(1)
		parallel := measure(0)
		if runErr != nil {
			return fmt.Errorf("bench %s: %w", c.name, runErr)
		}
		serialNs := float64(serial.NsPerOp())
		parallelNs := float64(parallel.NsPerOp())
		report.Benchmarks = append(report.Benchmarks,
			benchEntry{
				Name:        c.name + "/serial",
				NsPerOp:     serialNs,
				AllocsPerOp: serial.AllocsPerOp(),
				BytesPerOp:  serial.AllocedBytesPerOp(),
				Iterations:  serial.N,
			},
			benchEntry{
				Name:            c.name + "/parallel",
				NsPerOp:         parallelNs,
				AllocsPerOp:     parallel.AllocsPerOp(),
				BytesPerOp:      parallel.AllocedBytesPerOp(),
				Iterations:      parallel.N,
				SpeedupVsSerial: serialNs / parallelNs,
			})
		fmt.Printf("%-28s %12.0f ns/op %8d allocs/op\n", c.name+"/serial", serialNs, serial.AllocsPerOp())
		fmt.Printf("%-28s %12.0f ns/op %8d allocs/op   %.2fx\n", c.name+"/parallel", parallelNs, parallel.AllocsPerOp(), serialNs/parallelNs)
	}

	// Cache/batch workloads: an optimized variant against its ablation
	// baseline (cache disabled, per-class scoring). Each pair reports
	// speedup_vs_baseline on the optimized row.
	compChain, err := markov.BinaryChain(0.5, 0.9, 0.85).StationaryChain()
	if err != nil {
		return err
	}
	compClass, err := markov.NewFinite([]markov.Chain{compChain}, compT)
	if err != nil {
		return err
	}
	compRng := rand.New(rand.NewPCG(101, 102))
	compData := compChain.Sample(compT, compRng)
	compQuery := query.RelFreqHistogram{K: 2, N: len(compData)}
	// compositionLoop is the Theorem 4.4 regime: many sessions over one
	// unchanged class, each with its own accounting, optionally sharing
	// a score cache.
	compositionLoop := func(cache *core.ScoreCache) error {
		rng := rand.New(rand.NewPCG(103, 104))
		for i := 0; i < compReleases; i++ {
			comp := core.NewExactComposition(compClass, core.ExactOptions{}).WithCache(cache)
			if _, err := comp.Release(compData, compQuery, 1, rng); err != nil {
				return err
			}
		}
		return nil
	}

	batchChains := []markov.Chain{
		markov.BinaryChain(0.5, 0.9, 0.85),
		markov.BinaryChain(0.5, 0.8, 0.7),
	}
	batchClasses := make([]markov.Class, 8)
	for i := range batchClasses {
		class, err := markov.NewFinite([]markov.Chain{batchChains[i%len(batchChains)]}, batchT)
		if err != nil {
			return err
		}
		batchClasses[i] = class
	}

	// kantorovichLoop is the pufferd regime for the new mechanism:
	// repeated MechKantorovich releases over one stable fitted model,
	// optionally sharing the score cache's cell-profile table.
	kantRng := rand.New(rand.NewPCG(105, 106))
	kantChain := markov.BinaryChain(0.5, 0.85, 0.8)
	kantSessions := [][]int{kantChain.Sample(kantT, kantRng), kantChain.Sample(kantT, kantRng)}
	kantorovichLoop := func(cache *core.ScoreCache) error {
		for i := 0; i < kantReleases; i++ {
			_, err := release.Run(kantSessions, release.Config{
				Epsilon: 1, Mechanism: release.MechKantorovich, Smoothing: 0.5,
				Seed: uint64(i), Cache: cache,
			})
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Tree-substrate workload: repeated Bayesian-network releases over
	// one stable household polytree (node i's parent is (i−1)/2),
	// cold vs sharing the score cache's cell-profile table — the
	// pufferd regime for network-substrate requests.
	treeNodes := make([]bayes.Node, treeN)
	treeNodes[0] = bayes.Node{Card: 2, CPT: []float64{0.8, 0.2}}
	for i := 1; i < treeN; i++ {
		treeNodes[i] = bayes.Node{
			Card: 2, Parents: []int{(i - 1) / 2},
			CPT: []float64{0.9, 0.1, 0.35, 0.65},
		}
	}
	treeNet, err := bayes.New(treeNodes)
	if err != nil {
		return err
	}
	treeSession := make([]int, treeN)
	for i := range treeSession {
		treeSession[i] = i % 2
	}
	treeLoop := func(cache *core.ScoreCache) error {
		for i := 0; i < treeReleases; i++ {
			_, err := release.Run([][]int{treeSession}, release.Config{
				Epsilon: 1, Mechanism: release.MechKantorovich,
				Substrate: release.SubstrateNetwork, Network: treeNet,
				Seed: uint64(i), Cache: cache,
			})
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Rényi-accounting workload: the repeated-release regime with the
	// Gaussian backend over one stable model, accounted vs not. The
	// pair measures the ledger's release-time overhead (it must be in
	// the noise — accounting is observational); the summary block
	// below records the budget it buys. A shared pre-warmed cache
	// keeps the pair measuring accounting, not scoring.
	const gaussReleases, gaussDelta = 12, 1e-5
	gaussRng := rand.New(rand.NewPCG(107, 108))
	gaussSessions := [][]int{kantChain.Sample(kantT, gaussRng), kantChain.Sample(kantT, gaussRng)}
	gaussCache := core.NewScoreCache()
	gaussLoop := func(led *accounting.Ledger) error {
		for i := 0; i < gaussReleases; i++ {
			_, err := release.Run(gaussSessions, release.Config{
				Epsilon: 1, Delta: gaussDelta, Mechanism: release.MechKantorovich,
				Noise: release.NoiseGaussian, Smoothing: 0.5,
				Seed: uint64(i), Cache: gaussCache, Accountant: led,
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := gaussLoop(nil); err != nil { // pre-warm the shared cache
		return err
	}

	// Incremental-length workload: the streaming regime where a model
	// already scored at length T is re-scored at T+1 as an observation
	// arrives. The cold baseline rebuilds every influence table from
	// scratch; the incremental variant scores against a cache warmed at
	// length T, so only table rows the longer chain newly needs are
	// computed. Per-iteration ε jitter (≤ 1 part in 10⁹) keeps the
	// score-level fingerprint memo from short-circuiting the scorer, so
	// the pair measures the table layer, not the memo.
	incCache := core.NewScoreCache()
	if _, err := incCache.ExactScore(powClass, 1, core.ExactOptions{Parallelism: 1}); err != nil {
		return err
	}
	incIter := 0

	pairs := []struct {
		name              string
		baseline, variant string
		runBase, runVar   func() error
	}{
		{"AccountedGaussianRelease", "unaccounted", "accounted",
			func() error { return gaussLoop(nil) },
			func() error { return gaussLoop(accounting.NewLedger(gaussDelta)) },
		},
		{"KantorovichRepeatedRelease", "uncached", "cached",
			func() error { return kantorovichLoop(nil) },
			func() error { return kantorovichLoop(core.NewScoreCache()) },
		},
		{"KantorovichTreeSubstrate", "cold", "cached",
			func() error { return treeLoop(nil) },
			func() error { return treeLoop(core.NewScoreCache()) },
		},
		{"CompositionRepeatedRelease", "uncached", "cached",
			func() error { return compositionLoop(nil) },
			func() error { return compositionLoop(core.NewScoreCache()) },
		},
		{"ExactScoreIncremental", "cold", "extend",
			func() error {
				_, err := core.ExactScore(powClassT1, 1, core.ExactOptions{Parallelism: 1})
				return err
			},
			func() error {
				incIter++
				eps := 1 + float64(incIter%1024)*1e-12
				_, err := incCache.ExactScore(powClassT1, eps, core.ExactOptions{Parallelism: 1})
				return err
			},
		},
		{"ScoreBatchDup8", "individual", "batch",
			func() error {
				for _, class := range batchClasses {
					if _, err := core.ExactScore(class, 1, core.ExactOptions{}); err != nil {
						return err
					}
				}
				return nil
			},
			func() error {
				_, err := core.ScoreBatch(nil, batchClasses, 1, core.ExactOptions{})
				return err
			},
		},
	}
	for _, p := range pairs {
		var runErr error
		measure := func(run func() error) testing.BenchmarkResult {
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := run(); err != nil {
						runErr = err
						b.FailNow()
					}
				}
			})
		}
		base := measure(p.runBase)
		variant := measure(p.runVar)
		if runErr != nil {
			return fmt.Errorf("bench %s: %w", p.name, runErr)
		}
		baseNs := float64(base.NsPerOp())
		varNs := float64(variant.NsPerOp())
		report.Benchmarks = append(report.Benchmarks,
			benchEntry{
				Name:        p.name + "/" + p.baseline,
				NsPerOp:     baseNs,
				AllocsPerOp: base.AllocsPerOp(),
				BytesPerOp:  base.AllocedBytesPerOp(),
				Iterations:  base.N,
			},
			benchEntry{
				Name:              p.name + "/" + p.variant,
				NsPerOp:           varNs,
				AllocsPerOp:       variant.AllocsPerOp(),
				BytesPerOp:        variant.AllocedBytesPerOp(),
				Iterations:        variant.N,
				SpeedupVsBaseline: baseNs / varNs,
			})
		fmt.Printf("%-36s %12.0f ns/op %8d allocs/op\n", p.name+"/"+p.baseline, baseNs, base.AllocsPerOp())
		fmt.Printf("%-36s %12.0f ns/op %8d allocs/op   %.2fx\n", p.name+"/"+p.variant, varNs, variant.AllocsPerOp(), baseNs/varNs)
	}

	// Allocation benchmark for the slab-backed power table (no
	// serial/parallel split; the win is allocs/op).
	powTable := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pc := matrix.NewPowerCache(powChain.P)
			pc.Grow(64)
		}
	})
	report.Benchmarks = append(report.Benchmarks, benchEntry{
		Name:        "PowerCacheGrow64_k51",
		NsPerOp:     float64(powTable.NsPerOp()),
		AllocsPerOp: powTable.AllocsPerOp(),
		BytesPerOp:  powTable.AllocedBytesPerOp(),
		Iterations:  powTable.N,
	})
	fmt.Printf("%-28s %12d ns/op %8d allocs/op\n", "PowerCacheGrow64_k51", powTable.NsPerOp(), powTable.AllocsPerOp())

	// Budget gate: run the accounted workload once more against a
	// fresh ledger and record the tightened (ε, δ). The bench fails
	// unless the Rényi bound is strictly below the linear one — the
	// committed snapshot proves the accountant earns its keep.
	led := accounting.NewLedger(gaussDelta)
	if err := gaussLoop(led); err != nil {
		return err
	}
	rdp, err := led.Epsilon(gaussDelta)
	if err != nil {
		return err
	}
	linear := led.LinearEpsilon()
	if !(rdp < linear) {
		return fmt.Errorf("accounting gate: RDP ε %v not strictly below linear %v after %d gaussian releases",
			rdp, linear, gaussReleases)
	}
	report.Accounting = &accountingSummary{
		Workload:       "AccountedGaussianRelease",
		Releases:       gaussReleases,
		Delta:          gaussDelta,
		LinearEpsilon:  linear,
		RDPEpsilon:     rdp,
		SavingsFactor:  linear / rdp,
		AccumulatedRho: led.Rho(),
	}
	fmt.Printf("%-36s K=%d gaussian releases: RDP ε(δ=%g) = %.3f vs linear %.0f (%.1fx tighter)\n",
		"AccountingBudget", gaussReleases, gaussDelta, rdp, linear, linear/rdp)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
