package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"pufferfish/internal/release"
	"pufferfish/internal/server"
)

// chaosSeries is the observation stream every chaos release uses; the
// warm-cache assertion depends on all rounds sharing one model.
const chaosSeries = "0 1 0 1 1 0 1 0 0 1 1 0 1 0 1 1 0 0 1 0"

// runChaos is the crash-recovery smoke: it runs a real pufferd binary
// with a WAL, drives accountant traffic, kills the process with
// SIGKILL mid-traffic, restarts it, and asserts the recovered budget
// accounting dominates the spend of every release whose response was
// actually received — the charge-ahead invariant, end to end through
// a real filesystem and a real dead process. It also asserts the warm
// cache survives each restart and finishes with a clean SIGTERM cycle.
func runChaos(quick bool, pufferdPath string) error {
	if pufferdPath == "" {
		return errors.New("chaos: -pufferd PATH to a built pufferd binary is required")
	}
	if _, err := exec.LookPath(pufferdPath); err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	dir, err := os.MkdirTemp("", "pufferchaos")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "snapshot.json")
	wal := filepath.Join(dir, "accounting.wal")
	killRounds, perRound := 3, 24
	if quick {
		killRounds, perRound = 1, 10
	}

	// delivered tracks, per session, how many releases and how much ε
	// this client actually received a 200 for. The invariant under
	// test: after any crash, pufferd's accounted state is ≥ this.
	delivered := map[string]int{}
	spentEps := map[string]float64{}

	// Cycle 0 (clean): seed the snapshot — one scoring release warms
	// the cache, a couple of accountant charges seed the ledgers.
	proc, base, err := startPufferd(pufferdPath, snap, wal)
	if err != nil {
		return err
	}
	warm := server.ReleaseRequest{
		Series: chaosSeries, Epsilon: 1, Mechanism: release.MechMQMExact,
		Smoothing: 0.5, Seed: 7, Accountant: "chaos-a",
	}
	if _, err := chaosPost(base, warm); err != nil {
		proc.Process.Kill() //nolint:errcheck // already failing
		return fmt.Errorf("chaos: warm release: %w", err)
	}
	delivered["chaos-a"]++
	spentEps["chaos-a"] += 1
	if err := stopPufferd(proc); err != nil {
		return fmt.Errorf("chaos: clean shutdown of the warm cycle: %w", err)
	}

	// Kill rounds: boot (asserting recovery dominates everything
	// delivered so far), drive releases, SIGKILL mid-traffic.
	for round := 1; round <= killRounds; round++ {
		proc, base, err = startPufferd(pufferdPath, snap, wal)
		if err != nil {
			return fmt.Errorf("chaos: round %d restart: %w", round, err)
		}
		if err := assertRecovered(base, delivered, spentEps); err != nil {
			proc.Process.Kill() //nolint:errcheck // already failing
			return fmt.Errorf("chaos: round %d: %w", round, err)
		}

		// Drive traffic from a goroutine; the main goroutine SIGKILLs
		// the server after half the round's releases have landed, so
		// the kill genuinely races in-flight requests.
		landed := make(chan struct{}, perRound)
		trafficDone := make(chan struct{})
		go func() {
			defer close(trafficDone)
			for i := 0; i < perRound; i++ {
				sess := "chaos-a"
				eps := 0.5
				if i%2 == 1 {
					sess, eps = "chaos-b", 0.25
				}
				req := server.ReleaseRequest{
					Series: chaosSeries, Epsilon: eps, Mechanism: release.MechDP,
					Seed: uint64(round*1000 + i), Accountant: sess,
				}
				if _, err := chaosPost(base, req); err != nil {
					return // the kill landed; undelivered by definition
				}
				delivered[sess]++
				spentEps[sess] += eps
				landed <- struct{}{}
			}
		}()
		for got := 0; got < perRound/2; {
			select {
			case <-landed:
				got++
			case <-trafficDone:
				got = perRound // whole round landed before the kill
			}
		}
		if err := proc.Process.Kill(); err != nil {
			return fmt.Errorf("chaos: round %d kill: %w", round, err)
		}
		<-trafficDone
		if err := proc.Wait(); err == nil {
			return fmt.Errorf("chaos: round %d: pufferd exited cleanly despite SIGKILL", round)
		}
	}

	// Final cycle: recovery after the last kill, then a clean SIGTERM
	// exit proving the checkpoint path still works on the journal the
	// kills left behind.
	proc, base, err = startPufferd(pufferdPath, snap, wal)
	if err != nil {
		return fmt.Errorf("chaos: final restart: %w", err)
	}
	if err := assertRecovered(base, delivered, spentEps); err != nil {
		proc.Process.Kill() //nolint:errcheck // already failing
		return fmt.Errorf("chaos: final: %w", err)
	}
	if err := stopPufferd(proc); err != nil {
		return fmt.Errorf("chaos: final clean shutdown: %w", err)
	}

	total, totalEps := 0, 0.0
	for sess, n := range delivered {
		total += n
		totalEps += spentEps[sess]
	}
	fmt.Printf("chaos: %d kill -9 rounds survived; %d delivered releases (Σε = %g) all accounted after every recovery; warm cache intact\n",
		killRounds, total, totalEps)
	return nil
}

// startPufferd launches the binary with a WAL on a fresh port and
// waits until /v1/stats answers.
func startPufferd(path, snap, wal string) (*exec.Cmd, string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	addr := l.Addr().String()
	l.Close()
	cmd := exec.Command(path, "-addr", addr, "-cache-file", snap, "-wal", wal, "-drain", "10s")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/stats")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base, nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	cmd.Process.Kill() //nolint:errcheck // already failing
	return nil, "", fmt.Errorf("chaos: pufferd at %s never became ready", addr)
}

// stopPufferd sends SIGTERM and requires a clean (exit 0) drain.
func stopPufferd(cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	return cmd.Wait()
}

// chaosPost posts one release and returns the body only for a fully
// received 200 — the definition of "noise actually delivered".
func chaosPost(base string, req server.ReleaseRequest) ([]byte, error) {
	blob, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/v1/release", "application/json", bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, out)
	}
	return out, nil
}

// assertRecovered checks a freshly restarted pufferd against the
// client's view: every session must account at least the releases and
// ε the client actually received, and the warm cache must have loaded
// (zero cache-restore errors — a restore failure aborts pufferd's
// boot, so reaching /v1/stats with entries is the proof).
func assertRecovered(base string, delivered map[string]int, spentEps map[string]float64) error {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var st server.Stats
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("parse /v1/stats: %w", err)
	}
	if st.Cache.Entries == 0 {
		return errors.New("warm cache did not survive the restart")
	}
	if st.WAL == nil {
		return errors.New("stats report no WAL on a -wal boot")
	}
	for sess, n := range delivered {
		acct, ok := st.Accountants[sess]
		if !ok {
			return fmt.Errorf("session %q (%d delivered releases) lost in recovery", sess, n)
		}
		if acct.Releases < n {
			return fmt.Errorf("session %q under-accounted: %d releases recovered, %d delivered",
				sess, acct.Releases, n)
		}
		// For these pure-DP charges the linear bound K·max ε is exact
		// composition, so it must dominate the ε actually spent.
		if acct.LinearEpsilon < spentEps[sess] {
			return fmt.Errorf("session %q under-accounted: ε %g recovered, %g spent",
				sess, acct.LinearEpsilon, spentEps[sess])
		}
	}
	return nil
}
