package main

import (
	"math/rand/v2"
	"testing"

	"pufferfish/internal/accounting"
	"pufferfish/internal/core"
	"pufferfish/internal/markov"
	"pufferfish/internal/query"
	"pufferfish/internal/release"
)

// TestAccountingGoldenOnBenchWorkloads is the golden budget gate over
// every repeated-release workload the bench command measures: on each
// one, the RDP accountant's (ε, δ) must never exceed the linear
// K·max ε bound at any prefix, must equal it exactly at K = 1 for the
// pure workloads (the Theorem 4.4 degenerate case), and must be
// strictly below it by the workload's end for the Gaussian one.
func TestAccountingGoldenOnBenchWorkloads(t *testing.T) {
	const delta = 1e-5
	chain, err := markov.BinaryChain(0.5, 0.9, 0.85).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	compClass, err := markov.NewFinite([]markov.Chain{chain}, 200)
	if err != nil {
		t.Fatal(err)
	}
	compRng := rand.New(rand.NewPCG(101, 102))
	compData := chain.Sample(200, compRng)
	compQuery := query.RelFreqHistogram{K: 2, N: len(compData)}

	kantChain := markov.BinaryChain(0.5, 0.85, 0.8)
	kantRng := rand.New(rand.NewPCG(105, 106))
	kantSessions := [][]int{kantChain.Sample(40, kantRng), kantChain.Sample(40, kantRng)}

	// Each workload records one release into led and returns; the gate
	// drives it K times, checking the invariants after every release.
	cache := core.NewScoreCache()
	workloads := []struct {
		name     string
		pure     bool
		releases int
		step     func(led *accounting.Ledger, i int) error
	}{
		{"CompositionRepeatedRelease", true, 12, func() func(*accounting.Ledger, int) error {
			var comp *core.Composition
			rng := rand.New(rand.NewPCG(103, 104))
			return func(led *accounting.Ledger, i int) error {
				if comp == nil {
					comp = core.NewExactComposition(compClass, core.ExactOptions{}).
						WithCache(cache).WithAccountant(led)
				}
				_, err := comp.Release(compData, compQuery, 1, rng)
				return err
			}
		}()},
		{"KantorovichRepeatedRelease", true, 12, func(led *accounting.Ledger, i int) error {
			_, err := release.Run(kantSessions, release.Config{
				Epsilon: 1, Mechanism: release.MechKantorovich, Smoothing: 0.5,
				Seed: uint64(i), Cache: cache, Accountant: led,
			})
			return err
		}},
		{"AccountedGaussianRelease", false, 12, func(led *accounting.Ledger, i int) error {
			_, err := release.Run(kantSessions, release.Config{
				Epsilon: 1, Delta: delta, Mechanism: release.MechKantorovich,
				Noise: release.NoiseGaussian, Smoothing: 0.5,
				Seed: uint64(i), Cache: cache, Accountant: led,
			})
			return err
		}},
	}

	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			led := accounting.NewLedger(delta)
			for i := 0; i < w.releases; i++ {
				if err := w.step(led, i); err != nil {
					t.Fatalf("release %d: %v", i, err)
				}
				rdp, err := led.Epsilon(delta)
				if err != nil {
					t.Fatal(err)
				}
				linear := led.LinearEpsilon()
				if w.pure || led.DeltaSum() <= delta {
					if rdp > linear {
						t.Fatalf("K = %d: RDP ε %v above linear %v", i+1, rdp, linear)
					}
				}
				if i == 0 && w.pure && rdp != linear {
					t.Fatalf("K = 1: RDP ε %v != linear %v (degenerate case broken)", rdp, linear)
				}
			}
			if !w.pure {
				rdp, _ := led.Epsilon(delta)
				if linear := led.LinearEpsilon(); !(rdp < linear) {
					t.Fatalf("gaussian workload: RDP ε %v not strictly below linear %v", rdp, linear)
				}
			}
		})
	}
}
