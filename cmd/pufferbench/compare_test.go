package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, entries []benchEntry) string {
	t.Helper()
	path := filepath.Join(dir, name)
	blob, err := json.Marshal(benchReport{GoMaxProcs: 1, Benchmarks: entries})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []benchEntry{{Name: "A", NsPerOp: 100}, {Name: "B", NsPerOp: 200}})
	newP := writeReport(t, dir, "new.json", []benchEntry{{Name: "A", NsPerOp: 110}, {Name: "B", NsPerOp: 150}, {Name: "C", NsPerOp: 1}})
	if err := runCompare(oldP, newP, 0.15); err != nil {
		t.Errorf("10%% slower within 15%% tolerance failed: %v", err)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []benchEntry{{Name: "A", NsPerOp: 100}})
	newP := writeReport(t, dir, "new.json", []benchEntry{{Name: "A", NsPerOp: 130}})
	err := runCompare(oldP, newP, 0.15)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("30%% regression passed a 15%% gate: %v", err)
	}
}

func TestCompareNoSharedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []benchEntry{{Name: "A", NsPerOp: 100}})
	newP := writeReport(t, dir, "new.json", []benchEntry{{Name: "B", NsPerOp: 100}})
	if err := runCompare(oldP, newP, 0.15); err == nil {
		t.Error("disjoint reports compared successfully")
	}
}

// TestCompareRejectsCorruptNsPerOp pins the NaN hole: a zero, negative,
// NaN, or Inf ns/op on either side used to make delta NaN/Inf, and
// `NaN > tol` is false — so a corrupt baseline let any regression pass
// silently. Each must now be an explicit error. The JSON-representable
// corruptions (a truncated report's missing field decodes to 0, a
// mangled one to a negative) run through runCompare end to end; the
// non-finite values, which only arise in-process, hit the guard
// directly.
func TestCompareRejectsCorruptNsPerOp(t *testing.T) {
	cases := map[string]struct{ old, new float64 }{
		"zero old":     {0, 100},
		"negative old": {-5, 100},
		"zero new":     {100, 0},
		"negative new": {100, -1},
	}
	for name, c := range cases {
		dir := t.TempDir()
		oldP := writeReport(t, dir, "old.json", []benchEntry{{Name: "A", NsPerOp: c.old}})
		newP := writeReport(t, dir, "new.json", []benchEntry{{Name: "A", NsPerOp: c.new}})
		err := runCompare(oldP, newP, 0.15)
		if err == nil || !strings.Contains(err.Error(), "invalid ns/op") {
			t.Errorf("%s: corrupt report not rejected: %v", name, err)
		}
	}
	for name, v := range map[string]float64{"NaN": math.NaN(), "+Inf": math.Inf(1), "-Inf": math.Inf(-1)} {
		if err := checkNsPerOp("x.json", "A", v); err == nil {
			t.Errorf("checkNsPerOp accepted %s", name)
		}
	}
	if err := checkNsPerOp("x.json", "A", 100); err != nil {
		t.Errorf("checkNsPerOp rejected a valid measurement: %v", err)
	}
	// Corrupt entries only present on one side never block: unmatched
	// benchmarks are informational by design.
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", []benchEntry{{Name: "A", NsPerOp: 100}})
	newP := writeReport(t, dir, "new.json", []benchEntry{{Name: "A", NsPerOp: 100}, {Name: "B", NsPerOp: 0}})
	if err := runCompare(oldP, newP, 0.15); err != nil {
		t.Errorf("unmatched corrupt entry blocked the comparison: %v", err)
	}
}
