package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"pufferfish/internal/analysis/privlint"
)

// vetConfig mirrors the JSON the go command writes for each vet unit
// (the unitchecker protocol). Fields we do not consume are listed so
// the decoder documents the full contract.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func isVetConfig(arg string) bool {
	return strings.HasSuffix(arg, ".cfg")
}

// runVetUnit analyzes one build unit handed over by go vet: parse the
// unit's files, type-check against the export data the build already
// produced, run the suite. Facts are not used by this suite, but the
// protocol requires the vetx output file to exist for caching, so an
// empty one is always written.
func runVetUnit(cfgPath string, analyzers []*privlint.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privlint:", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "privlint: parsing %s: %v\n", cfgPath, err)
		return 3
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "privlint:", err)
			return 3
		}
	}
	if cfg.VetxOnly {
		// Dependency unit: only facts were wanted, and we keep none.
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "privlint:", err)
			return 3
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		// The go command resolves each import to the export file of the
		// exact build the unit was compiled against.
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tcfg := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compiler, runtime.GOARCH),
	}
	if v, _, ok := strings.Cut(cfg.GoVersion, " "); ok || cfg.GoVersion != "" {
		if strings.HasPrefix(v, "go") {
			tcfg.GoVersion = v
		}
	}
	tpkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "privlint:", err)
		return 3
	}

	pkg := privlint.NewPackage(cfg.ImportPath, fset, files, tpkg, info)
	diags, err := privlint.RunPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privlint:", err)
		return 3
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
