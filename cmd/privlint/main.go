// Command privlint machine-checks the repo's privacy and concurrency
// invariants (see internal/analysis/privlint). It runs two ways:
//
// Standalone, loading and type-checking packages from source:
//
//	privlint ./...
//	privlint -floatcompare=false ./internal/release
//
// As a go vet tool, driven by the build system with export data (the
// unitchecker protocol), which is how CI runs it over every package
// including test variants:
//
//	go vet -vettool=$(pwd)/bin/privlint ./...
//
// Exit status: 0 clean, 1 findings (standalone), 2 findings (vet
// protocol, matching cmd/vet), 3 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"pufferfish/internal/analysis/privlint"
)

const version = "v1.0.0"

func main() {
	// The go command probes its vet tool before use: -V=full for the
	// cache key, -flags for the analyzer flag set, then one run per
	// package with a *.cfg argument. Handle the probes before normal
	// flag parsing so their exact output stays under our control.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			fmt.Printf("privlint version %s\n", version)
			return
		case "-flags", "--flags":
			printFlagsJSON()
			return
		}
	}

	enabled := map[string]*bool{}
	for _, a := range privlint.All() {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: privlint [flags] [package patterns]\n")
		fmt.Fprintf(flag.CommandLine.Output(), "       privlint <unit>.cfg  (go vet -vettool protocol)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	// Analyzer selection follows vet semantics: naming any analyzer
	// flag explicitly true runs only the named ones; explicit false
	// subtracts from the full suite.
	explicitTrue := false
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) {
		if _, ok := enabled[f.Name]; ok {
			explicit[f.Name] = true
			if *enabled[f.Name] {
				explicitTrue = true
			}
		}
	})
	var analyzers []*privlint.Analyzer
	for _, a := range privlint.All() {
		switch {
		case explicitTrue && explicit[a.Name] && *enabled[a.Name]:
			analyzers = append(analyzers, a)
		case !explicitTrue && *enabled[a.Name]:
			analyzers = append(analyzers, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && isVetConfig(args[0]) {
		os.Exit(runVetUnit(args[0], analyzers))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, analyzers))
}

func runStandalone(patterns []string, analyzers []*privlint.Analyzer) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "privlint:", err)
		return 3
	}
	loader, err := privlint.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privlint:", err)
		return 3
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "privlint:", err)
		return 3
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := privlint.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "privlint:", err)
			return 3
		}
		for _, d := range diags {
			found = true
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if found {
		return 1
	}
	return 0
}

// printFlagsJSON answers the go command's -flags probe: the JSON list
// of flags it may forward from the go vet command line.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range privlint.All() {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	fmt.Print("[")
	for i, f := range out {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Printf("{%q:%q,%q:%v,%q:%q}", "Name", f.Name, "Bool", f.Bool, "Usage", f.Usage)
	}
	fmt.Println("]")
}
