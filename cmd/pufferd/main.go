// Command pufferd is the long-lived release server: a warmed score
// cache shared across every request, a global scoring-worker budget,
// and the internal/server HTTP surface.
//
//	pufferd -addr :8080 -workers 0 -drain 30s -cache-file cache.json
//
//	POST /v1/release        one release (privrelease semantics)
//	POST /v1/release/batch  many releases, batched scoring
//	GET  /v1/stats          cache traffic, per-mechanism release
//	                        counters, worker budget, uptime
//
// SIGINT/SIGTERM triggers graceful shutdown: listeners close
// immediately, in-flight releases drain (bounded by -drain), and the
// process exits 0 on a clean drain. With -cache-file the score cache
// (quilt scores and Kantorovich transport profiles alike) and the
// named Rényi accountant sessions are restored from the file at
// startup and snapshotted back after the drain, so a restart serves
// its first requests warm and resumes every cumulative privacy budget
// where it left off.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pufferfish/internal/accounting"
	"pufferfish/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "global scoring-worker budget shared by all requests (0 = all CPUs)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout for in-flight releases")
	cacheFile := flag.String("cache-file", "", "score-cache snapshot: pre-warm at startup, save after the shutdown drain")
	flag.Parse()

	var cache *server.Cache
	var accountants map[string]*accounting.Ledger
	if *cacheFile != "" {
		var err error
		cache, accountants, err = server.LoadSnapshotFile(*cacheFile)
		if err != nil {
			fatal(err)
		}
		log.Printf("pufferd: cache file %s restored (%d entries, %d accountant sessions)",
			*cacheFile, cache.Len(), len(accountants))
	}
	s := server.New(server.Config{Workers: *workers, Cache: cache, Accountants: accountants})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// ReadTimeout bounds the whole request read so a client
		// trickling a body can't pin a handler goroutine (and the
		// SIGTERM drain) forever. No WriteTimeout: a large exact
		// scoring sweep can legitimately outlive any fixed write
		// budget, and shutdown is already bounded by -drain.
		ReadTimeout: 2 * time.Minute,
		IdleTimeout: 2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("pufferd: listening on %s (workers=%d)", *addr, s.Stats().Workers.Budget)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("pufferd: shutting down, draining in-flight releases (up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := srv.Shutdown(shutdownCtx)
	// Save the snapshot even on a drain timeout: every memoized entry
	// is deterministic and valid regardless of how the drain ended,
	// and discarding a warm cache exactly when the server was busiest
	// would defeat the persistence feature.
	if *cacheFile != "" {
		if err := server.SaveSnapshotFile(*cacheFile, s.Cache(), s.AccountantSnapshots()); err != nil {
			if drainErr != nil {
				log.Printf("pufferd: drain: %v", drainErr)
			}
			fatal(err)
		}
		log.Printf("pufferd: cache snapshot saved to %s (%d entries, %d accountant sessions)",
			*cacheFile, s.Cache().Len(), len(s.AccountantSnapshots()))
	}
	if drainErr != nil {
		fatal(fmt.Errorf("drain: %w", drainErr))
	}
	st := s.Stats()
	log.Printf("pufferd: clean exit after %.1fs — %d requests, %d releases, cache %d hits / %d misses",
		st.UptimeSeconds, st.RequestsTotal, st.ReleasesTotal, st.Cache.Hits, st.Cache.Misses)
}

func fatal(err error) {
	if err == nil || errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "pufferd:", err)
	os.Exit(1)
}
