// Command pufferd is the long-lived release server: a warmed score
// cache shared across every request, a global scoring-worker budget,
// and the internal/server HTTP surface.
//
//	pufferd -addr :8080 -workers 0 -drain 30s -cache-file cache.json \
//	        -wal cache.wal -ceiling-eps 10 -ceiling-delta 1e-6 \
//	        -request-timeout 30s -max-accountants 1024 -max-queue 64
//
//	POST /v1/release        one release (privrelease semantics)
//	POST /v1/release/batch  many releases, batched scoring
//	GET  /v1/stats          cache traffic, per-mechanism release
//	                        counters, worker budget, uptime
//	GET  /metrics           Prometheus text-format exposition
//	GET  /v1/traces/recent  newest request traces with per-stage spans
//
// Observability flags: -log-format selects text or json structured
// logs (log/slog) with request-scoped attributes; -slow-request logs
// requests over the threshold at Warn with per-stage timings;
// -pprof-addr serves net/http/pprof on a separate listener so the
// profiling surface is never exposed on the public address.
//
// SIGINT/SIGTERM triggers graceful shutdown: listeners close
// immediately, in-flight releases drain (bounded by -drain), and the
// process exits 0 on a clean drain. With -cache-file the score cache
// (quilt scores and Kantorovich transport profiles alike) and the
// named Rényi accountant sessions are restored from the file at
// startup and snapshotted back after the drain, so a restart serves
// its first requests warm and resumes every cumulative privacy budget
// where it left off.
//
// Durability and budget enforcement:
//
//   - -wal FILE (requires -cache-file) journals every accountant charge
//     to an fsync'd write-ahead log *before* the noisy histogram leaves
//     the process. After any crash — kill -9 included — the next boot
//     replays the journal over the snapshot, so the recovered budget is
//     never less than the privacy actually spent. Shutdown checkpoints
//     the snapshot and truncates the journal behind it.
//   - -ceiling-eps/-ceiling-delta install a hard (ε, δ) ceiling on
//     every accountant session; a release that would push a session
//     past it is refused with 403 before any scoring work runs.
//   - -request-timeout bounds each request end to end; -max-queue
//     sheds excess queued scoring work with 429 + Retry-After; and
//     -max-accountants caps the session map with 403 past the limit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pufferfish/internal/accounting"
	"pufferfish/internal/faultfs"
	"pufferfish/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "global scoring-worker budget shared by all requests (0 = all CPUs)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout for in-flight releases")
	cacheFile := flag.String("cache-file", "", "score-cache snapshot: pre-warm at startup, save after the shutdown drain")
	walFile := flag.String("wal", "", "accounting write-ahead journal: every charge is fsync'd before its noise is released, and replayed over the snapshot at boot (requires -cache-file)")
	ceilingEps := flag.Float64("ceiling-eps", 0, "hard per-session ε budget ceiling; releases that would breach it are refused with 403 (0 = no ceiling)")
	ceilingDelta := flag.Float64("ceiling-delta", 0, "δ at which -ceiling-eps is enforced (0 = the ledger's headline δ)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline propagated through prepare/score/finish; expiry answers 503 (0 = none)")
	maxAccountants := flag.Int("max-accountants", 0, "cap on distinct accountant sessions; requests minting more are refused with 403 (0 = default 1024)")
	maxQueue := flag.Int("max-queue", 0, "bound on requests queued for scoring workers; excess is shed with 429 + Retry-After (0 = unbounded)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	slowRequest := flag.Duration("slow-request", 0, "log requests slower than this at Warn with per-stage timings (0 = disabled)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate listener, e.g. localhost:6060 (empty = disabled)")
	flag.Parse()

	var logHandler slog.Handler
	switch *logFormat {
	case "text":
		logHandler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		logHandler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fatal(fmt.Errorf("-log-format must be text or json, got %q", *logFormat))
	}
	logger := slog.New(logHandler)

	if *walFile != "" && *cacheFile == "" {
		fatal(errors.New("-wal requires -cache-file (the journal is truncated against the snapshot)"))
	}
	//privlint:allow floatcompare zero is the exact unset sentinel for the ceiling flags
	if *ceilingDelta != 0 && *ceilingEps == 0 {
		fatal(errors.New("-ceiling-delta without -ceiling-eps: set the ε ceiling the δ applies to"))
	}

	cfg := server.Config{
		Workers:        *workers,
		CeilingEps:     *ceilingEps,
		CeilingDelta:   *ceilingDelta,
		RequestTimeout: *requestTimeout,
		MaxAccountants: *maxAccountants,
		MaxQueue:       *maxQueue,
		Logger:         logger,
		SlowRequest:    *slowRequest,
	}
	switch {
	case *walFile != "":
		st, err := server.OpenDurable(faultfs.OS, faultfs.WallClock{}, *cacheFile, *walFile)
		if err != nil {
			fatal(err)
		}
		cfg.Cache, cfg.Accountants, cfg.WAL = st.Cache, st.Accountants, st.WAL
		logger.Info("durable state restored",
			slog.String("cache_file", *cacheFile),
			slog.Int("cache_entries", st.Cache.Len()),
			slog.String("wal", *walFile),
			slog.Int("wal_replayed", st.Replayed),
			slog.Bool("wal_torn_tail", st.Torn),
			slog.Int("accountant_sessions", len(st.Accountants)))
	case *cacheFile != "":
		var err error
		var accountants map[string]*accounting.Ledger
		cfg.Cache, accountants, err = server.LoadSnapshotFile(*cacheFile)
		if err != nil {
			fatal(err)
		}
		cfg.Accountants = accountants
		logger.Info("cache file restored",
			slog.String("cache_file", *cacheFile),
			slog.Int("cache_entries", cfg.Cache.Len()),
			slog.Int("accountant_sessions", len(accountants)))
	}
	s := server.New(cfg)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// ReadTimeout bounds the whole request read so a client
		// trickling a body can't pin a handler goroutine (and the
		// SIGTERM drain) forever. No WriteTimeout: a large exact
		// scoring sweep can legitimately outlive any fixed write
		// budget, and shutdown is already bounded by -drain.
		ReadTimeout: 2 * time.Minute,
		IdleTimeout: 2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener: the profiling
		// surface is opt-in and never mounted on the public address.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", slog.String("addr", *pprofAddr))
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				logger.Error("pprof listener failed", slog.String("error", err.Error()))
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening",
			slog.String("addr", *addr),
			slog.Int("workers", s.Stats().Workers.Budget))
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down, draining in-flight releases", slog.Duration("drain", *drain))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := srv.Shutdown(shutdownCtx)
	// Save the snapshot even on a drain timeout: every memoized entry
	// is deterministic and valid regardless of how the drain ended,
	// and discarding a warm cache exactly when the server was busiest
	// would defeat the persistence feature. With a WAL the save is a
	// checkpoint: snapshot first, then truncate the journal behind it.
	if *cacheFile != "" {
		var err error
		if *walFile != "" {
			err = server.Checkpoint(faultfs.OS, *cacheFile, s, cfg.WAL)
			if cerr := cfg.WAL.Close(); err == nil {
				err = cerr
			}
		} else {
			err = server.SaveSnapshotFile(*cacheFile, s.Cache(), s.AccountantSnapshots())
		}
		if err != nil {
			if drainErr != nil {
				logger.Error("drain failed", slog.String("error", drainErr.Error()))
			}
			fatal(err)
		}
		logger.Info("cache snapshot saved",
			slog.String("cache_file", *cacheFile),
			slog.Int("cache_entries", s.Cache().Len()),
			slog.Int("accountant_sessions", len(s.AccountantSnapshots())))
	}
	if drainErr != nil {
		fatal(fmt.Errorf("drain: %w", drainErr))
	}
	st := s.Stats()
	logger.Info("clean exit",
		slog.Float64("uptime_seconds", st.UptimeSeconds),
		slog.Int64("requests", st.RequestsTotal),
		slog.Int64("releases", st.ReleasesTotal),
		slog.Int64("cache_hits", st.Cache.Hits),
		slog.Int64("cache_misses", st.Cache.Misses))
}

func fatal(err error) {
	if err == nil || errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "pufferd:", err)
	os.Exit(1)
}
