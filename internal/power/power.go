// Package power simulates the household-electricity substrate of
// Section 5.3.2.
//
// The paper uses the Makonin et al. recording of one Vancouver-area
// house: one reading per minute for about two years (T ≈ 1,000,000),
// discretized into 51 intervals of 200 W. That recording is not
// redistributable, so this package generates a household load from an
// appliance model — a steady base load plus independent two-state
// (on/off) Markov appliances with realistic wattages and duty cycles,
// plus measurement jitter — sampled per minute and discretized into
// the same 51 bins. The downstream pipeline is identical to the
// paper's: estimate the empirical 51-state chain from the binned
// series, take Θ = {empirical chain started at stationarity}, and
// release the relative-frequency histogram. See DESIGN.md §2.2.
package power

import (
	"fmt"
	"math/rand/v2"

	"pufferfish/internal/markov"
)

// Discretization constants from the paper: 51 intervals of 200 W.
const (
	NumBins  = 51
	BinWatts = 200
)

// Appliance is a two-state (off/on) Markov load.
type Appliance struct {
	Name  string
	Watts float64
	// OnToOff and OffToOn are the per-minute switching probabilities;
	// mean on-time is 1/OnToOff minutes.
	OnToOff, OffToOn float64
}

// House is a complete load model.
type House struct {
	// BaseWatts is the always-on load (electronics, standby).
	BaseWatts float64
	// JitterWatts is the half-width of the uniform measurement jitter.
	JitterWatts float64
	Appliances  []Appliance
}

// DefaultHouse returns the calibrated model: duty cycles give minute-
// resolution dynamics with multi-minute dwell times, so the binned
// series mixes at a rate comparable to the paper's household data.
func DefaultHouse() House {
	return House{
		BaseWatts:   240,
		JitterWatts: 90,
		Appliances: []Appliance{
			{Name: "fridge", Watts: 150, OnToOff: 1.0 / 12, OffToOn: 1.0 / 25},
			{Name: "heating", Watts: 1600, OnToOff: 1.0 / 18, OffToOn: 1.0 / 45},
			{Name: "lights", Watts: 350, OnToOff: 1.0 / 180, OffToOn: 1.0 / 400},
			{Name: "stove", Watts: 2200, OnToOff: 1.0 / 22, OffToOn: 1.0 / 700},
			{Name: "dryer", Watts: 3000, OnToOff: 1.0 / 50, OffToOn: 1.0 / 2500},
			{Name: "washer", Watts: 600, OnToOff: 1.0 / 40, OffToOn: 1.0 / 1800},
		},
	}
}

// Validate checks the model stays inside the 51-bin range and has
// proper switching probabilities.
func (h House) Validate() error {
	total := h.BaseWatts + h.JitterWatts
	for _, a := range h.Appliances {
		if !(a.OnToOff > 0 && a.OnToOff <= 1 && a.OffToOn > 0 && a.OffToOn <= 1) {
			return fmt.Errorf("power: appliance %s has invalid switching probabilities", a.Name)
		}
		if a.Watts < 0 {
			return fmt.Errorf("power: appliance %s has negative wattage", a.Name)
		}
		total += a.Watts
	}
	if total >= NumBins*BinWatts {
		return fmt.Errorf("power: peak load %.0f W exceeds the %d-bin range", total, NumBins)
	}
	if h.BaseWatts < h.JitterWatts {
		return fmt.Errorf("power: jitter %v exceeds base load %v", h.JitterWatts, h.BaseWatts)
	}
	return nil
}

// Bin discretizes a wattage into its 200 W interval, clamped to the
// 51-bin range.
func Bin(watts float64) int {
	b := int(watts / BinWatts)
	if b < 0 {
		return 0
	}
	if b >= NumBins {
		return NumBins - 1
	}
	return b
}

// Simulate produces T per-minute binned readings. Appliance states
// start from their stationary on-probabilities, so the series is in
// steady state from the first sample (matching the paper's
// steady-state household assumption).
func (h House) Simulate(T int, rng *rand.Rand) ([]int, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if T < 1 {
		return nil, fmt.Errorf("power: invalid length %d", T)
	}
	on := make([]bool, len(h.Appliances))
	for i, a := range h.Appliances {
		pOn := a.OffToOn / (a.OffToOn + a.OnToOff)
		on[i] = rng.Float64() < pOn
	}
	out := make([]int, T)
	for t := 0; t < T; t++ {
		watts := h.BaseWatts + (rng.Float64()*2-1)*h.JitterWatts
		for i, a := range h.Appliances {
			if on[i] {
				watts += a.Watts
				if rng.Float64() < a.OnToOff {
					on[i] = false
				}
			} else if rng.Float64() < a.OffToOn {
				on[i] = true
			}
		}
		out[t] = Bin(watts)
	}
	return out, nil
}

// EmpiricalChain estimates the 51-state chain from a binned series,
// started from its stationary distribution — the paper's singleton
// class for the electricity experiment. Additive smoothing keeps
// never-visited bins from breaking irreducibility.
func EmpiricalChain(series []int, smoothing float64) (markov.Chain, error) {
	return markov.EstimateStationary([][]int{series}, NumBins, smoothing)
}
