package power

import (
	"math/rand/v2"
	"testing"

	"pufferfish/internal/floats"
)

func TestBin(t *testing.T) {
	cases := []struct {
		watts float64
		want  int
	}{
		{0, 0}, {199, 0}, {200, 1}, {1234, 6}, {10199, 50}, {99999, 50}, {-5, 0},
	}
	for _, c := range cases {
		if got := Bin(c.watts); got != c.want {
			t.Errorf("Bin(%v) = %d, want %d", c.watts, got, c.want)
		}
	}
}

func TestDefaultHouseValid(t *testing.T) {
	if err := DefaultHouse().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	h := DefaultHouse()
	h.Appliances[0].OnToOff = 0
	if h.Validate() == nil {
		t.Error("zero switching probability accepted")
	}
	h = DefaultHouse()
	h.Appliances = append(h.Appliances, Appliance{Name: "smelter", Watts: 50000, OnToOff: 0.5, OffToOn: 0.5})
	if h.Validate() == nil {
		t.Error("peak load beyond bin range accepted")
	}
	h = DefaultHouse()
	h.JitterWatts = h.BaseWatts + 1
	if h.Validate() == nil {
		t.Error("jitter exceeding base load accepted")
	}
	h = DefaultHouse()
	h.Appliances[0].Watts = -1
	if h.Validate() == nil {
		t.Error("negative wattage accepted")
	}
}

func TestSimulateShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	series, err := DefaultHouse().Simulate(50000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 50000 {
		t.Fatalf("length %d", len(series))
	}
	seen := map[int]bool{}
	for _, s := range series {
		if s < 0 || s >= NumBins {
			t.Fatalf("state %d out of range", s)
		}
		seen[s] = true
	}
	// A realistic household hits many distinct power levels.
	if len(seen) < 10 {
		t.Errorf("only %d distinct bins; model too static", len(seen))
	}
	// Consecutive readings are strongly correlated: the chain must be
	// sticky (this is what makes GroupDP hopeless and MQM useful).
	same := 0
	for i := 1; i < len(series); i++ {
		if series[i] == series[i-1] {
			same++
		}
	}
	if frac := float64(same) / float64(len(series)-1); frac < 0.5 {
		t.Errorf("self-transition fraction %v; expected sticky dynamics", frac)
	}
	if _, err := DefaultHouse().Simulate(0, rng); err == nil {
		t.Error("T=0 accepted")
	}
}

func TestEmpiricalChainPipeline(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 44))
	series, err := DefaultHouse().Simulate(200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := EmpiricalChain(series, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if chain.K() != NumBins {
		t.Fatalf("k = %d", chain.K())
	}
	if !chain.Irreducible() {
		t.Error("smoothed empirical chain must be irreducible")
	}
	pi, err := chain.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(chain.Init, pi, 1e-9) {
		t.Error("chain not started at stationarity")
	}
	piMin, err := chain.PiMin()
	if err != nil {
		t.Fatal(err)
	}
	if !(piMin > 0) {
		t.Errorf("π^min = %v", piMin)
	}
	gap, err := chain.Eigengap()
	if err != nil {
		t.Fatal(err)
	}
	if !(gap > 0 && gap < 1) {
		t.Errorf("eigengap = %v; expected a slow-but-mixing chain", gap)
	}
	// Empirical mean power should sit in a plausible household range
	// (a few hundred watts to ~2 kW on average).
	var mean float64
	for _, s := range series {
		mean += float64(s) * BinWatts
	}
	mean /= float64(len(series))
	if mean < 200 || mean > 4000 {
		t.Errorf("mean simulated power %v W implausible", mean)
	}
}

func TestSimulateDeterministicWithSeed(t *testing.T) {
	a, err := DefaultHouse().Simulate(1000, rand.New(rand.NewPCG(7, 9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultHouse().Simulate(1000, rand.New(rand.NewPCG(7, 9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should reproduce the series")
		}
	}
}
