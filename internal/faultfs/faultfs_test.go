package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"testing"
)

func write(t *testing.T, c *CrashFS, name string, blob []byte, sync bool) {
	t.Helper()
	f, err := c.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(blob); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashDropsUnsyncedData: written-but-unsynced bytes do not
// survive a crash; synced bytes do (given a durable directory entry).
func TestCrashDropsUnsyncedData(t *testing.T) {
	c := NewCrashFS()
	write(t, c, "/d/a", []byte("synced"), true)
	if err := c.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	f, err := c.OpenFile("/d/a", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" and not")); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	c.Restart()
	got, err := c.ReadFile("/d/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "synced" {
		t.Fatalf("after crash: %q", got)
	}
	// The pre-crash handle is dead even after restart.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle write: %v", err)
	}
}

// TestCrashDropsUndurableDirEntries: a synced file whose directory
// entry was never synced vanishes; a rename without SyncDir rolls
// back to the temp name — the exact failure the snapshot writer's
// parent-directory fsync exists to prevent.
func TestCrashDropsUndurableDirEntries(t *testing.T) {
	c := NewCrashFS()
	write(t, c, "/d/a.tmp", []byte("v1"), true)
	c.Crash()
	c.Restart()
	if _, err := c.ReadFile("/d/a.tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("undurable entry survived: %v", err)
	}

	// Now: synced temp with a durable entry + rename, no SyncDir →
	// crash rolls the namespace back: the file reappears under the
	// temp name, nothing at the target.
	write(t, c, "/d/c.tmp", []byte("v3"), true)
	if err := c.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/d/c.tmp", "/d/c"); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	c.Restart()
	if _, err := c.ReadFile("/d/c"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("unsynced rename survived: %v", err)
	}
	got, err := c.ReadFile("/d/c.tmp")
	if err != nil || string(got) != "v3" {
		t.Fatalf("temp file after rollback: %q, %v", got, err)
	}

	// With SyncDir after the rename, the target survives.
	write(t, c, "/d/e.tmp", []byte("v4"), true)
	if err := c.Rename("/d/e.tmp", "/d/e"); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	c.Restart()
	got, err = c.ReadFile("/d/e")
	if err != nil || string(got) != "v4" {
		t.Fatalf("durable rename lost: %q, %v", got, err)
	}
}

// TestTornWrite: a ModeTorn fault applies a strict prefix and fails;
// ModeCrash makes the torn prefix durable (worst-case writeback).
func TestTornWrite(t *testing.T) {
	c := NewCrashFS()
	write(t, c, "/d/a", []byte("base|"), true)
	if err := c.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	c.FailAt(OpWrite, 1, ModeTorn)
	f, err := c.OpenFile("/d/a", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) || n != 4 {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	got, _ := c.ReadFile("/d/a")
	if string(got) != "base|abcd" {
		t.Fatalf("visible after torn write: %q", got)
	}

	c2 := NewCrashFS()
	write(t, c2, "/d/a", []byte("base|"), true)
	if err := c2.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	c2.FailAt(OpWrite, 1, ModeCrash)
	f2, err := c2.OpenFile("/d/a", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("abcdefgh")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash write: %v", err)
	}
	c2.Restart()
	got, err = c2.ReadFile("/d/a")
	if err != nil || string(got) != "base|abcd" {
		t.Fatalf("durable torn prefix: %q, %v", got, err)
	}
}

// TestCrashAtOpSweep: the op counter is stable across identical
// scenario replays, so CrashAtOp(n) for n = 1..Ops() visits every
// crash point exactly once.
func TestCrashAtOpSweep(t *testing.T) {
	scenario := func(c *CrashFS) error {
		f, err := c.OpenFile("/d/x", os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("hello")); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return c.SyncDir("/d")
	}
	clean := NewCrashFS()
	if err := scenario(clean); err != nil {
		t.Fatal(err)
	}
	total := clean.Ops()
	if total != 5 {
		t.Fatalf("scenario ops = %d, want 5", total)
	}
	for n := 1; n <= total; n++ {
		c := NewCrashFS()
		c.CrashAtOp(n)
		if err := scenario(c); !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash point %d not hit: %v", n, err)
		}
		c.Restart()
		// Invariant at every crash point: the file either does not
		// exist or holds a prefix of the written data.
		got, err := c.ReadFile("/d/x")
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("crash point %d: %v", n, err)
		}
		if err == nil && string(got) != "hello"[:len(got)] {
			t.Fatalf("crash point %d: non-prefix content %q", n, got)
		}
	}
}

// TestFixedClock: deterministic, monotonic.
func TestFixedClock(t *testing.T) {
	c := &FixedClock{Step: 1}
	t0, t1 := c.Now(), c.Now()
	if !t1.After(t0) {
		t.Fatalf("clock not advancing: %v, %v", t0, t1)
	}
}
