// Package faultfs is the filesystem and clock seam beneath the
// durability-critical code (the accounting WAL and the pufferd
// snapshot writer). Production code goes through the FS interface so
// tests can substitute CrashFS, an in-memory filesystem with *crash
// semantics*: data written but not fsynced is lost on a simulated
// crash, a created or renamed directory entry is lost unless its
// parent directory was fsynced, and any operation can be scripted to
// fail, tear, or crash the "machine" mid-way. That is exactly the
// failure model a privacy ledger must survive without ever
// under-counting spend, and it cannot be exercised against a real
// disk from a unit test.
package faultfs

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// File is the handle surface the WAL and snapshot writers need.
type File interface {
	Write(p []byte) (int, error)
	// Sync flushes written data to stable storage (fsync). Without it,
	// a crash may lose any or all bytes written since the last Sync.
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations durability code performs.
// Implementations: OS (the real filesystem) and CrashFS (in-memory,
// crash-semantics, fault-injectable).
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the flag
	// subset the callers use (O_CREATE|O_TRUNC|O_WRONLY and
	// O_CREATE|O_APPEND|O_WRONLY).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making its entries (file
	// creations, renames, removals) durable. A rename without a
	// following SyncDir can roll back on crash.
	SyncDir(dir string) error
	Stat(name string) (fs.FileInfo, error)
}

// Clock is the time seam next to FS: WAL records carry an audit
// timestamp, and tests want it deterministic.
type Clock interface {
	Now() time.Time
}

// WallClock is the real clock.
type WallClock struct{}

// Now returns time.Now().
func (WallClock) Now() time.Time { return time.Now() }

// FixedClock is a test clock advancing by Step per Now call.
type FixedClock struct {
	mu   sync.Mutex
	At   time.Time
	Step time.Duration
}

// Now returns the current fake time and advances it by Step.
func (c *FixedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.At
	c.At = c.At.Add(c.Step)
	return t
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) Rename(o, n string) error             { return os.Rename(o, n) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error) {
	return os.Stat(name)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Some filesystems refuse fsync on directories; that is not a
	// durability hole we can fix, so only real sync failures surface.
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Op identifies an operation class for fault scripting.
type Op int

const (
	OpOpen Op = iota
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpSyncDir
	OpRead
	// OpAny matches every operation; used with CrashFS.CrashAtOp to
	// sweep crash points exhaustively.
	OpAny
)

var opNames = map[Op]string{
	OpOpen: "open", OpWrite: "write", OpSync: "sync", OpClose: "close",
	OpRename: "rename", OpRemove: "remove", OpSyncDir: "syncdir",
	OpRead: "read", OpAny: "any",
}

func (o Op) String() string { return opNames[o] }

// Mode selects what happens when a scripted fault fires.
type Mode int

const (
	// ModeErr fails the operation with no effect.
	ModeErr Mode = iota
	// ModeTorn applies the first half of a write (rounded down, at
	// least one byte when the write is non-empty) and then fails —
	// a torn sector. Non-write operations degrade to ModeErr.
	ModeTorn
	// ModeCrash applies the torn partial effect and then crashes the
	// filesystem: unsynced data is dropped and every subsequent
	// operation fails with ErrCrashed.
	ModeCrash
)

// ErrCrashed is returned by every operation on a crashed CrashFS.
var ErrCrashed = fmt.Errorf("faultfs: filesystem crashed")

// ErrInjected is the scripted failure error.
var ErrInjected = fmt.Errorf("faultfs: injected fault")

// inode models one file: its current (page-cache) content and the
// content known durable via Sync.
type inode struct {
	visible []byte
	durable []byte
	synced  bool // Sync was called at least once
}

// CrashFS is an in-memory FS with crash semantics. The zero value is
// not usable; construct with NewCrashFS.
//
// Durability model (deliberately the strict POSIX reading):
//   - File contents become durable only at Sync; a crash reverts a
//     file to its last-synced bytes.
//   - Directory entries (creation, rename, removal) become durable
//     only at SyncDir of the parent; a crash reverts the namespace to
//     its last-SyncDir state, while inode contents keep whatever Sync
//     made durable — so a synced temp file renamed without SyncDir
//     reappears under its temp name after a crash.
type CrashFS struct {
	mu sync.Mutex
	// visible is the live namespace; durableDir the namespace image a
	// crash reverts to. Both map full path → inode (shared pointers:
	// rename moves the inode, contents durability stays per-inode).
	visible    map[string]*inode
	durableDir map[string]*inode
	crashed    bool
	gen        int // bumped on every crash; stale handles check it

	ops     int // total operation count, for CrashAtOp sweeps
	faults  []*fault
	opCount map[Op]int
}

type fault struct {
	op    Op
	at    int // fires when opCount[op] reaches this value
	mode  Mode
	fired bool
}

// NewCrashFS returns an empty crash-semantics filesystem.
func NewCrashFS() *CrashFS {
	return &CrashFS{
		visible:    map[string]*inode{},
		durableDir: map[string]*inode{},
		opCount:    map[Op]int{},
	}
}

// FailAt schedules the n-th operation of class op (1-based, counted
// from the moment of arming) to fail with the given mode. Multiple
// faults may be armed; each fires once.
func (c *CrashFS) FailAt(op Op, n int, mode Mode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults = append(c.faults, &fault{op: op, at: c.opCount[op] + n, mode: mode})
}

// CrashAtOp arms a ModeCrash fault at the n-th operation of any
// class — the exhaustive-sweep hook: run a scenario once to count ops,
// then re-run it crashing at every 1..N.
func (c *CrashFS) CrashAtOp(n int) { c.FailAt(OpAny, n, ModeCrash) }

// Ops returns the number of operations performed so far.
func (c *CrashFS) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Crash simulates power loss: unsynced file data and undurable
// directory entries are dropped, and every subsequent operation on
// this FS or its open handles fails with ErrCrashed until Restart.
func (c *CrashFS) Crash() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashLocked()
}

func (c *CrashFS) crashLocked() {
	c.crashed = true
	c.gen++
	next := make(map[string]*inode, len(c.durableDir))
	for name, ino := range c.durableDir {
		if !ino.synced {
			// Created, never synced, but its dir entry was synced: the
			// file exists with indeterminate content; model the loss
			// case (empty) — the one recovery must tolerate.
			next[name] = &inode{}
			continue
		}
		next[name] = &inode{
			visible: append([]byte(nil), ino.durable...),
			durable: append([]byte(nil), ino.durable...),
			synced:  true,
		}
	}
	c.visible = next
	c.durableDir = map[string]*inode{}
	for name, ino := range next {
		c.durableDir[name] = ino
	}
}

// Restart clears the crashed flag so "the next boot" can read the
// surviving state. Open handles from before the crash stay dead.
func (c *CrashFS) Restart() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = false
}

// Files lists the visible file names, sorted (test helper).
func (c *CrashFS) Files() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.visible))
	for name := range c.visible {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// step charges one operation, returning the fired fault mode if a
// scripted fault matches (nil otherwise) — called with mu held.
func (c *CrashFS) step(op Op) (*fault, error) {
	if c.crashed {
		return nil, ErrCrashed
	}
	c.ops++
	c.opCount[op]++
	c.opCount[OpAny]++
	for _, f := range c.faults {
		if f.fired {
			continue
		}
		if (f.op == op || f.op == OpAny) && c.opCount[f.op] == f.at {
			f.fired = true
			return f, nil
		}
	}
	return nil, nil
}

type crashFile struct {
	fs     *CrashFS
	name   string
	ino    *inode
	gen    int // CrashFS generation at open; a crash orphans the handle
	closed bool
}

// stale reports whether the handle predates a crash — called with
// fs.mu held. A stale handle fails every operation with ErrCrashed
// even after Restart, like a real fd into a lost page cache.
func (f *crashFile) stale() bool { return f.gen != f.fs.gen }

// OpenFile supports the create/truncate and create/append flag
// combinations the durability code uses.
func (c *CrashFS) OpenFile(name string, flag int, _ fs.FileMode) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, err := c.step(OpOpen)
	if err != nil {
		return nil, err
	}
	if f != nil {
		if f.mode == ModeCrash {
			c.crashLocked()
			return nil, ErrCrashed
		}
		return nil, fmt.Errorf("%w: open %s", ErrInjected, name)
	}
	ino, ok := c.visible[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case !ok:
		ino = &inode{}
		c.visible[name] = ino
	case flag&os.O_TRUNC != 0:
		ino.visible = nil
	}
	return &crashFile{fs: c, name: name, ino: ino, gen: c.gen}, nil
}

func (f *crashFile) Write(p []byte) (int, error) {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if f.stale() {
		return 0, ErrCrashed
	}
	if f.closed {
		return 0, fs.ErrClosed
	}
	ft, err := c.step(OpWrite)
	if err != nil {
		return 0, err
	}
	if ft != nil {
		switch ft.mode {
		case ModeErr:
			return 0, fmt.Errorf("%w: write %s", ErrInjected, f.name)
		case ModeTorn, ModeCrash:
			n := len(p) / 2
			if n == 0 && len(p) > 0 {
				n = 1
			}
			f.ino.visible = append(f.ino.visible, p[:n]...)
			if ft.mode == ModeCrash {
				// A crash mid-write may persist the torn prefix even
				// without a Sync (the page was being written back):
				// surface the worst case for recovery code by making
				// the torn prefix durable.
				f.ino.durable = append([]byte(nil), f.ino.visible...)
				f.ino.synced = true
				c.crashLocked()
				return n, ErrCrashed
			}
			return n, fmt.Errorf("%w: torn write %s", ErrInjected, f.name)
		}
	}
	f.ino.visible = append(f.ino.visible, p...)
	return len(p), nil
}

func (f *crashFile) Sync() error {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if f.stale() {
		return ErrCrashed
	}
	if f.closed {
		return fs.ErrClosed
	}
	ft, err := c.step(OpSync)
	if err != nil {
		return err
	}
	if ft != nil {
		if ft.mode == ModeCrash {
			c.crashLocked()
			return ErrCrashed
		}
		return fmt.Errorf("%w: sync %s", ErrInjected, f.name)
	}
	f.ino.durable = append([]byte(nil), f.ino.visible...)
	f.ino.synced = true
	return nil
}

func (f *crashFile) Close() error {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if f.stale() {
		return ErrCrashed
	}
	if f.closed {
		return fs.ErrClosed
	}
	f.closed = true
	ft, err := c.step(OpClose)
	if err != nil {
		return err
	}
	if ft != nil {
		if ft.mode == ModeCrash {
			c.crashLocked()
			return ErrCrashed
		}
		return fmt.Errorf("%w: close %s", ErrInjected, f.name)
	}
	return nil
}

func (c *CrashFS) ReadFile(name string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ft, err := c.step(OpRead)
	if err != nil {
		return nil, err
	}
	if ft != nil {
		if ft.mode == ModeCrash {
			c.crashLocked()
			return nil, ErrCrashed
		}
		return nil, fmt.Errorf("%w: read %s", ErrInjected, name)
	}
	ino, ok := c.visible[name]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), ino.visible...), nil
}

func (c *CrashFS) Rename(oldpath, newpath string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ft, err := c.step(OpRename)
	if err != nil {
		return err
	}
	if ft != nil {
		if ft.mode == ModeCrash {
			c.crashLocked()
			return ErrCrashed
		}
		return fmt.Errorf("%w: rename %s", ErrInjected, oldpath)
	}
	ino, ok := c.visible[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(c.visible, oldpath)
	c.visible[newpath] = ino
	return nil
}

func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ft, err := c.step(OpRemove)
	if err != nil {
		return err
	}
	if ft != nil {
		if ft.mode == ModeCrash {
			c.crashLocked()
			return ErrCrashed
		}
		return fmt.Errorf("%w: remove %s", ErrInjected, name)
	}
	if _, ok := c.visible[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(c.visible, name)
	return nil
}

// SyncDir makes the current directory entries under dir durable: the
// crash image's namespace for that directory becomes the visible one.
func (c *CrashFS) SyncDir(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ft, err := c.step(OpSyncDir)
	if err != nil {
		return err
	}
	if ft != nil {
		if ft.mode == ModeCrash {
			c.crashLocked()
			return ErrCrashed
		}
		return fmt.Errorf("%w: syncdir %s", ErrInjected, dir)
	}
	dir = filepath.Clean(dir)
	for name := range c.durableDir {
		if filepath.Dir(name) == dir {
			delete(c.durableDir, name)
		}
	}
	for name, ino := range c.visible {
		if filepath.Dir(name) == dir {
			c.durableDir[name] = ino
		}
	}
	return nil
}

func (c *CrashFS) Stat(name string) (fs.FileInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	ino, ok := c.visible[name]
	if !ok {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
	}
	return memInfo{name: filepath.Base(name), size: int64(len(ino.visible))}, nil
}

type memInfo struct {
	name string
	size int64
}

func (m memInfo) Name() string       { return m.name }
func (m memInfo) Size() int64        { return m.size }
func (m memInfo) Mode() fs.FileMode  { return 0o644 }
func (m memInfo) ModTime() time.Time { return time.Time{} }
func (m memInfo) IsDir() bool        { return false }
func (m memInfo) Sys() any           { return nil }
