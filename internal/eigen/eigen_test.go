package eigen

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pufferfish/internal/floats"
	"pufferfish/internal/matrix"
)

func TestSymmetricEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := matrix.FromRows([][]float64{{2, 1}, {1, 2}})
	vals, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(vals, []float64{1, 3}, 1e-10) {
		t.Errorf("eigenvalues = %v, want [1 3]", vals)
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	a := matrix.FromRows([][]float64{{5, 0, 0}, {0, -2, 0}, {0, 0, 1}})
	vals, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(vals, []float64{-2, 1, 5}, 1e-12) {
		t.Errorf("eigenvalues = %v", vals)
	}
}

func TestSymmetricEigenRejectsAsymmetric(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := SymmetricEigen(a); err == nil {
		t.Error("expected ErrNotSymmetric")
	}
}

// Property: trace = Σλ and Frobenius² = Σλ² for random symmetric
// matrices.
func TestSymmetricEigenInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 11))
		n := 2 + r.IntN(6)
		a := matrix.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.Float64()*4 - 2
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, err := SymmetricEigen(a)
		if err != nil {
			return false
		}
		var trace, sumSq float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		var sumVals float64
		for _, v := range vals {
			sumVals += v
			sumSq += v * v
		}
		frob := a.NormFrob()
		return floats.Eq(trace, sumVals, 1e-8) && floats.Eq(frob*frob, sumSq, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSpectralNormKnown(t *testing.T) {
	// Diagonal matrix: spectral norm is max |entry|.
	a := matrix.FromRows([][]float64{{3, 0}, {0, -7}})
	got, err := SpectralNorm(a)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(got, 7, 1e-9) {
		t.Errorf("SpectralNorm = %v, want 7", got)
	}
}

func TestSpectralNormVsJacobi(t *testing.T) {
	// For symmetric a, ‖a‖₂ = max |eigenvalue|.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 13))
		n := 2 + r.IntN(5)
		a := matrix.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.Float64()*2 - 1
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, err := SymmetricEigen(a)
		if err != nil {
			return false
		}
		want := math.Max(math.Abs(vals[0]), math.Abs(vals[len(vals)-1]))
		got, err := SpectralNorm(a)
		if err != nil {
			return false
		}
		return floats.Eq(got, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSpectralNormZeroMatrix(t *testing.T) {
	a := matrix.NewDense(3, 3)
	got, err := SpectralNorm(a)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("SpectralNorm(0) = %v", got)
	}
}

func TestSpectralNormTridiagonalToeplitz(t *testing.T) {
	// Symmetric tridiagonal Toeplitz with off-diagonal c has spectral
	// norm 2c·cos(π/(n+1)).
	n, c := 40, 0.3
	a := matrix.NewDense(n, n)
	for i := 0; i < n-1; i++ {
		a.Set(i, i+1, c)
		a.Set(i+1, i, c)
	}
	want := 2 * c * math.Cos(math.Pi/float64(n+1))
	got, err := SpectralNorm(a)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(got, want, 1e-8) {
		t.Errorf("SpectralNorm = %v, want %v", got, want)
	}
}

func TestSecondLargestAbs(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 0, 0}, {0, 0.5, 0}, {0, 0, -0.25}})
	lam, ok, err := SecondLargestAbs(a, 1e-9)
	if err != nil || !ok {
		t.Fatalf("err=%v ok=%v", err, ok)
	}
	if !floats.Eq(lam, 0.5, 1e-12) {
		t.Errorf("second largest = %v, want 0.5", lam)
	}
	// All-unit spectrum: identity has no gap.
	_, ok, err = SecondLargestAbs(matrix.Identity(3), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("identity should report no spectral gap")
	}
}
