// Package eigen provides the two eigenvalue computations the paper
// needs and the standard library lacks:
//
//   - a cyclic Jacobi eigensolver for symmetric matrices, used to
//     compute the eigengap g_Θ of P·P* (eq 7) and of reversible P
//     (eq 14) after similarity-symmetrization, and
//   - a power-iteration spectral norm, used for the GK16 baseline's
//     applicability condition ‖Γ‖₂ < 1.
//
// State spaces in this reproduction are at most ~51, so the O(k³)
// Jacobi sweeps are more than fast enough and numerically robust.
package eigen

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pufferfish/internal/matrix"
)

// ErrNotSymmetric is returned when SymmetricEigen is handed a matrix
// that is not symmetric at the working tolerance.
var ErrNotSymmetric = errors.New("eigen: matrix is not symmetric")

// ErrNoConvergence is returned when an iteration fails to converge in
// the allotted sweeps.
var ErrNoConvergence = errors.New("eigen: iteration did not converge")

// SymmetricEigen returns all eigenvalues of the symmetric matrix a in
// ascending order, using cyclic Jacobi rotations. a is not modified.
func SymmetricEigen(a *matrix.Dense) ([]float64, error) {
	r, c := a.Dims()
	if r != c {
		return nil, fmt.Errorf("eigen: need square matrix, got %d×%d", r, c)
	}
	if !a.IsSymmetric(1e-8 * math.Max(1, a.MaxAbs())) {
		return nil, ErrNotSymmetric
	}
	n := r
	w := a.Clone()
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < 1e-13*math.Max(1, w.MaxAbs()) {
			vals := make([]float64, n)
			for i := 0; i < n; i++ {
				vals[i] = w.At(i, i)
			}
			sort.Float64s(vals)
			return vals, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				cth := 1 / math.Sqrt(1+t*t)
				sth := t * cth
				rotate(w, p, q, cth, sth)
			}
		}
	}
	return nil, ErrNoConvergence
}

// rotate applies the two-sided Jacobi rotation J(p,q,θ)ᵀ·W·J(p,q,θ)
// in place, keeping W symmetric.
func rotate(w *matrix.Dense, p, q int, c, s float64) {
	n, _ := w.Dims()
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for i := 0; i < n; i++ {
		wpi, wqi := w.At(p, i), w.At(q, i)
		w.Set(p, i, c*wpi-s*wqi)
		w.Set(q, i, s*wpi+c*wqi)
	}
}

func offDiagNorm(w *matrix.Dense) float64 {
	n, _ := w.Dims()
	var s float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s += w.At(i, j) * w.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

// SpectralNorm returns ‖a‖₂, the largest singular value, via power
// iteration on aᵀa. The iteration starts from a deterministic dense
// vector so results are reproducible; convergence is declared when the
// Rayleigh quotient stabilizes to 12 digits.
func SpectralNorm(a *matrix.Dense) (float64, error) {
	r, c := a.Dims()
	if r == 0 || c == 0 {
		return 0, fmt.Errorf("eigen: empty matrix")
	}
	// x ← deterministic pseudo-random start (varying signs avoids
	// starting orthogonal to the top singular vector for structured
	// matrices such as tridiagonal Toeplitz).
	x := make([]float64, c)
	for i := range x {
		x[i] = 1 + 0.37*math.Sin(float64(3*i+1))
	}
	normalizeVec(x)
	at := a.T()
	prev := 0.0
	const maxIter = 10000
	for iter := 0; iter < maxIter; iter++ {
		// y = aᵀ(a x)
		y := at.MulVec(a.MulVec(x))
		lambda := math.Sqrt(math.Abs(dot(x, y)))
		n := normalizeVec(y)
		//privlint:allow floatcompare exact-zero norm only for the all-zero vector
		if n == 0 {
			return 0, nil // a x = 0 for all iterates: zero matrix
		}
		x = y
		if iter > 3 && math.Abs(lambda-prev) <= 1e-12*math.Max(1, lambda) {
			return lambda, nil
		}
		prev = lambda
	}
	return prev, ErrNoConvergence
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func normalizeVec(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	n := math.Sqrt(s)
	//privlint:allow floatcompare exact-zero norm only for the all-zero vector
	if n == 0 {
		return 0
	}
	for i := range x {
		x[i] /= n
	}
	return n
}

// SecondLargestAbs returns max{|λ| : λ eigenvalue of a, |λ| < 1−tol}
// for a symmetric matrix whose spectrum lies in [−1, 1] (a symmetrized
// stochastic kernel). Eigenvalues within tol of ±1 are treated as the
// unit eigenvalue(s) and skipped. If every eigenvalue is within tol of
// 1 in absolute value (no spectral gap), it returns ok=false.
func SecondLargestAbs(a *matrix.Dense, tol float64) (lambda float64, ok bool, err error) {
	vals, err := SymmetricEigen(a)
	if err != nil {
		return 0, false, err
	}
	best := -1.0
	for _, v := range vals {
		av := math.Abs(v)
		if av >= 1-tol {
			continue
		}
		if av > best {
			best = av
		}
	}
	if best < 0 {
		return 0, false, nil
	}
	return best, true, nil
}
