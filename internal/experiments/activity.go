package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pufferfish/internal/activity"
	"pufferfish/internal/core"
	"pufferfish/internal/floats"
	"pufferfish/internal/laplace"
	"pufferfish/internal/markov"
)

// ScoreCache re-exports the engine's score cache type for CLI callers.
type ScoreCache = core.ScoreCache

// NewScoreCache re-exports the engine's score cache so CLI callers can
// thread one through experiment configs without importing
// internal/core. Reused across repeated runs of a deterministic config
// (same seeds ⇒ same empirical chains ⇒ same fingerprints), it
// eliminates all but the first scoring sweep; results are bit-identical
// either way.
func NewScoreCache() *core.ScoreCache { return core.NewScoreCache() }

// Mechanism labels shared by the activity and power experiments.
const (
	MechDP      = "DP"
	MechGroupDP = "GroupDP"
	MechGK16    = "GK16"
	MechApprox  = "MQMApprox"
	MechExact   = "MQMExact"
)

// ActivityConfig parameterizes the Section 5.3.1 experiments (Table 1
// and Figure 4's lower row).
type ActivityConfig struct {
	// Eps is the privacy parameter (paper: 1).
	Eps float64
	// Trials is the number of noise draws averaged (paper: 20).
	Trials int
	// Smoothing is the additive smoothing of the empirical chain.
	Smoothing float64
	// PopulationScale shrinks the cohorts for quick runs (1 = paper
	// scale; 0.2 keeps every code path but ~25× faster).
	PopulationScale float64
	Seed            uint64
	// Parallelism bounds each score computation's worker count
	// (0 = all CPUs, 1 = serial); results are identical either way.
	Parallelism int
	// Cache optionally memoizes quilt scores across runs sharing the
	// config (e.g. `pufferbench all -cache` runs the activity
	// experiment for both Figure 4 and Table 1); results are
	// bit-identical either way.
	Cache *core.ScoreCache
}

// DefaultActivityConfig returns the paper's parameters.
func DefaultActivityConfig() ActivityConfig {
	return ActivityConfig{Eps: 1, Trials: 20, Smoothing: 0.5, PopulationScale: 1, Seed: 2}
}

// ActivityResult is one cohort's measurements.
type ActivityResult struct {
	Group activity.Group
	// People / Observations describe the simulated cohort.
	People       int
	Observations int
	// ExactAggHist is the true aggregated relative-frequency histogram
	// (the black bars of Figure 4's lower row).
	ExactAggHist []float64
	// MeanPrivateHists[mech] is the trial-averaged released histogram
	// (the coloured bars of Figure 4's lower row).
	MeanPrivateHists map[string][]float64
	// AggErrors / IndiErrors are the Table 1 columns: mean L1 error of
	// the aggregate histogram and mean (over people) L1 error of the
	// per-person histograms. NaN = N/A.
	AggErrors  map[string]float64
	IndiErrors map[string]float64
	// Sigmas records the computed noise scores for the quilt
	// mechanisms.
	Sigmas map[string]float64
}

// ActivityExperiment simulates the three cohorts and measures every
// mechanism on both tasks. The model class handed to the mechanisms is
// the singleton empirical chain estimated from the cohort's data with
// stationary initial distribution, exactly as in the paper.
func ActivityExperiment(cfg ActivityConfig) ([]ActivityResult, error) {
	if cfg.Eps <= 0 || cfg.Trials < 1 {
		return nil, fmt.Errorf("experiments: invalid config %+v", cfg)
	}
	if cfg.PopulationScale <= 0 || cfg.PopulationScale > 1 {
		return nil, fmt.Errorf("experiments: invalid population scale %v", cfg.PopulationScale)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x51ed2701))
	var out []ActivityResult
	for _, g := range activity.Groups {
		res, err := activityGroup(cfg, g, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

func activityGroup(cfg ActivityConfig, g activity.Group, rng *rand.Rand) (ActivityResult, error) {
	profile := activity.DefaultProfile(g)
	if cfg.PopulationScale < 1 {
		profile.Participants = maxInt(2, int(float64(profile.Participants)*cfg.PopulationScale))
		profile.SessionsPerPerson = maxInt(3, int(float64(profile.SessionsPerPerson)*cfg.PopulationScale*2))
	}
	ds, err := activity.Generate(profile, rng)
	if err != nil {
		return ActivityResult{}, err
	}
	chain, err := ds.EmpiricalChain(cfg.Smoothing)
	if err != nil {
		return ActivityResult{}, err
	}
	class, err := markov.NewSingleton(chain, ds.LongestSession())
	if err != nil {
		return ActivityResult{}, err
	}
	// The database is a set of independent gap-split chains of many
	// lengths; σ is the max over distinct lengths.
	var lengths []int
	for _, p := range ds.People {
		for _, s := range p.Sessions {
			lengths = append(lengths, len(s))
		}
	}

	res := ActivityResult{
		Group:            g,
		People:           len(ds.People),
		Observations:     ds.TotalObservations(),
		MeanPrivateHists: map[string][]float64{},
		AggErrors:        map[string]float64{},
		IndiErrors:       map[string]float64{},
		Sigmas:           map[string]float64{},
	}

	// Quilt-mechanism scores over every distinct session length
	// (cfg.Cache's methods degrade to the direct scorers when nil).
	approx, err := cfg.Cache.ApproxScoreMulti(class, cfg.Eps, core.ApproxOptions{Parallelism: cfg.Parallelism}, lengths)
	if err != nil {
		return ActivityResult{}, err
	}
	exact, err := cfg.Cache.ExactScoreMulti(class, cfg.Eps, core.ExactOptions{Parallelism: cfg.Parallelism}, lengths)
	if err != nil {
		return ActivityResult{}, err
	}
	res.Sigmas[MechApprox] = approx.Sigma
	res.Sigmas[MechExact] = exact.Sigma
	if gk, err := core.GK16SigmaClass(class, cfg.Eps); err == nil {
		res.Sigmas[MechGK16] = gk.Sigma
	} else {
		res.Sigmas[MechGK16] = math.NaN()
	}

	k := activity.NumActivities
	nTotal := float64(ds.TotalObservations())
	nPeople := float64(len(ds.People))

	// Exact aggregate histogram (pooled over all observations).
	agg := make([]float64, k)
	for _, p := range ds.People {
		for _, s := range p.Sessions {
			for _, x := range s {
				agg[x]++
			}
		}
	}
	for i := range agg {
		agg[i] /= nTotal
	}
	res.ExactAggHist = agg

	// Aggregate-task per-bin noise scales.
	worstPersonShare := 0.0 // max_p N_p / N_total (person-level DP)
	worstSessionShare := 0.0
	for _, p := range ds.People {
		if share := float64(p.Observations()) / nTotal; share > worstPersonShare {
			worstPersonShare = share
		}
		if share := float64(p.LongestSession()) / nTotal; share > worstSessionShare {
			worstSessionShare = share
		}
	}
	aggScale := map[string]float64{
		MechDP:      2 * worstPersonShare / cfg.Eps,
		MechGroupDP: 2 * worstSessionShare / cfg.Eps,
		MechApprox:  2 * approx.Sigma / nTotal,
		MechExact:   2 * exact.Sigma / nTotal,
		MechGK16:    math.NaN(),
	}
	if !math.IsNaN(res.Sigmas[MechGK16]) {
		aggScale[MechGK16] = 2 * res.Sigmas[MechGK16] / nTotal
	}

	// Aggregate task: Trials noisy releases per mechanism. Iterate in
	// fixed order — ranging over the map consumes the shared rng in a
	// per-run random order, breaking the package's determinism contract
	// (and making the statistical assertions flaky).
	for _, mech := range []string{MechDP, MechGroupDP, MechApprox, MechExact, MechGK16} {
		scale := aggScale[mech]
		var sum float64
		var hist []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			noisy, errv := noisyHist(agg, scale, rng)
			sum += errv
			if hist == nil {
				hist = make([]float64, k)
			}
			for i := range hist {
				hist[i] += noisy[i] / float64(cfg.Trials)
			}
		}
		if math.IsNaN(scale) {
			res.AggErrors[mech] = math.NaN()
			continue
		}
		res.AggErrors[mech] = sum / float64(cfg.Trials)
		if mech != MechDP && mech != MechGK16 {
			res.MeanPrivateHists[mech] = hist
		}
	}

	// Individual task: per person, release their own relative
	// frequency histogram; report the cohort-mean L1 error.
	indiSum := map[string]float64{}
	for _, p := range ds.People {
		n := float64(p.Observations())
		m := float64(p.LongestSession())
		ph := make([]float64, k)
		for _, s := range p.Sessions {
			for _, x := range s {
				ph[x]++
			}
		}
		for i := range ph {
			ph[i] /= n
		}
		scales := map[string]float64{
			MechGroupDP: 2 * m / (n * cfg.Eps),
			MechApprox:  2 * approx.Sigma / n,
			MechExact:   2 * exact.Sigma / n,
		}
		// Fixed order for the same determinism reason as the aggregate
		// task above.
		for _, mech := range []string{MechGroupDP, MechApprox, MechExact} {
			scale := scales[mech]
			var sum float64
			for trial := 0; trial < cfg.Trials; trial++ {
				_, errv := noisyHist(ph, scale, rng)
				sum += errv
			}
			indiSum[mech] += sum / float64(cfg.Trials)
		}
	}
	for mech, sum := range indiSum {
		res.IndiErrors[mech] = sum / nPeople
	}
	res.IndiErrors[MechDP] = math.NaN()   // no meaningful person-level DP for one person's series
	res.IndiErrors[MechGK16] = math.NaN() // inapplicable (spectral condition)
	return res, nil
}

// noisyHist adds Lap(scale) per bin and returns the noisy histogram
// and its L1 error. NaN scale returns NaN error.
func noisyHist(exact []float64, scale float64, rng *rand.Rand) ([]float64, float64) {
	if math.IsNaN(scale) || math.IsInf(scale, 1) {
		return append([]float64{}, exact...), math.NaN()
	}
	noisy := laplace.AddNoise(exact, scale, rng)
	return noisy, floats.L1Dist(noisy, exact)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RenderTable1 formats the Table 1 layout: per cohort, aggregate and
// individual errors for every mechanism.
func RenderTable1(results []ActivityResult, eps float64) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table 1: physical activity, L1 errors (ε = %g)", eps),
		Header: []string{"Algorithm"},
	}
	for _, r := range results {
		t.Header = append(t.Header, r.Group.String()+" Agg", r.Group.String()+" Indi")
	}
	for _, mech := range []string{MechDP, MechGroupDP, MechGK16, MechApprox, MechExact} {
		row := []string{mech}
		for _, r := range results {
			row = append(row, Fmt(r.AggErrors[mech], 4), Fmt(r.IndiErrors[mech], 4))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RenderFig4Bottom formats one cohort's Figure 4 lower-row panel:
// exact aggregated histogram next to the mean private histograms.
func RenderFig4Bottom(r ActivityResult, eps float64) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 4 (bottom): %s aggregate, ε = %g", r.Group, eps),
		Header: []string{"Activity", "Exact", MechGroupDP, MechApprox, MechExact},
	}
	for s := 0; s < activity.NumActivities; s++ {
		row := []string{activity.ActivityName(s), Fmt(r.ExactAggHist[s], 4)}
		for _, mech := range []string{MechGroupDP, MechApprox, MechExact} {
			h := r.MeanPrivateHists[mech]
			if h == nil {
				row = append(row, "N/A")
			} else {
				row = append(row, Fmt(h[s], 4))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
