package experiments

import (
	"math"
	"strings"

	"pufferfish/internal/core"
	"pufferfish/internal/dist"
	"pufferfish/internal/flu"
	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
)

// WorkedExamples recomputes every numeric example printed in the
// paper's prose (Sections 2.3, 3.1, 4.3, 4.4) and reports each
// computed value next to the paper's. It doubles as an executable
// cross-check of the library against the paper.
type WorkedExample struct {
	Name     string
	Computed float64
	Paper    float64
}

// RunWorkedExamples computes all of them.
func RunWorkedExamples() ([]WorkedExample, error) {
	var out []WorkedExample

	// Definition 2.3 example: D∞(p‖q) = log 2.
	p := dist.MustNew([]float64{1, 2, 3}, []float64{1.0 / 3, 0.5, 1.0 / 6})
	q := dist.MustNew([]float64{1, 2, 3}, []float64{0.5, 0.25, 0.25})
	out = append(out, WorkedExample{"D∞(p‖q) (Def 2.3 example)", dist.MaxDivergence(p, q), math.Log(2)})

	// Section 3.1 flu example: W = 2 vs GroupDP sensitivity 4.
	clique, err := flu.FromProbs([]float64{0.1, 0.15, 0.5, 0.15, 0.1})
	if err != nil {
		return nil, err
	}
	model, err := flu.NewModel([]flu.Clique{clique})
	if err != nil {
		return nil, err
	}
	w, _, err := core.WassersteinScale(flu.Instance{Models: []*flu.Model{model}})
	if err != nil {
		return nil, err
	}
	out = append(out, WorkedExample{"flu clique W (Sec 3.1)", w, 2})
	out = append(out, WorkedExample{"flu clique GroupDP sensitivity", float64(model.LargestClique()), 4})

	// Section 4.3 example: quilt scores for X2 on the T = 3 chain.
	chain43 := markov.MustNew([]float64{0.8, 0.2}, matrix.FromRows([][]float64{{0.9, 0.1}, {0.4, 0.6}}))
	class43, err := markov.NewFinite([]markov.Chain{chain43}, 3)
	if err != nil {
		return nil, err
	}
	s43, err := core.ExactScore(class43, 10, core.ExactOptions{MaxWidth: 3})
	if err != nil {
		return nil, err
	}
	out = append(out, WorkedExample{"active quilt score, T=3 chain (Sec 4.3)", s43.Sigma, 0.1558})
	out = append(out, WorkedExample{"active quilt influence (log 36)", s43.Influence, math.Log(36)})

	// Section 4.4 running example.
	theta1 := markov.MustNew([]float64{1, 0}, matrix.FromRows([][]float64{{0.9, 0.1}, {0.4, 0.6}}))
	theta2 := markov.MustNew([]float64{0.9, 0.1}, matrix.FromRows([][]float64{{0.8, 0.2}, {0.3, 0.7}}))
	c1, err := markov.NewFinite([]markov.Chain{theta1}, 100)
	if err != nil {
		return nil, err
	}
	s1, err := core.ExactScore(c1, 1, core.ExactOptions{MaxWidth: 100})
	if err != nil {
		return nil, err
	}
	out = append(out, WorkedExample{"MQMExact σ for θ1 (Sec 4.4)", s1.Sigma, 13.0219})
	c2, err := markov.NewFinite([]markov.Chain{theta2}, 100)
	if err != nil {
		return nil, err
	}
	s2, err := core.ExactScore(c2, 1, core.ExactOptions{MaxWidth: 100})
	if err != nil {
		return nil, err
	}
	out = append(out, WorkedExample{"MQMExact σ for θ2 (Sec 4.4)", s2.Sigma, 10.6402})

	// Section 4.4.2 chain-theory quantities.
	pm1, err := theta1.PiMin()
	if err != nil {
		return nil, err
	}
	out = append(out, WorkedExample{"π^min(θ1)", pm1, 0.2})
	pm2, err := theta2.PiMin()
	if err != nil {
		return nil, err
	}
	out = append(out, WorkedExample{"π^min(θ2)", pm2, 0.4})
	g1, err := theta1.EigengapMultiplicative()
	if err != nil {
		return nil, err
	}
	out = append(out, WorkedExample{"eigengap of P·P* (θ1)", g1, 0.75})
	g2, err := theta2.EigengapMultiplicative()
	if err != nil {
		return nil, err
	}
	out = append(out, WorkedExample{"eigengap of P·P* (θ2)", g2, 0.75})

	return out, nil
}

// RenderWorkedExamples formats the cross-check table.
func RenderWorkedExamples(examples []WorkedExample) *Table {
	t := &Table{
		Title:  "Worked examples: computed vs paper",
		Header: []string{"Quantity", "Computed", "Paper", "Match"},
	}
	for _, e := range examples {
		match := "yes"
		if relDiff(e.Computed, e.Paper) > 1e-3 {
			match = "NO"
		}
		t.Rows = append(t.Rows, []string{e.Name, FmtG(e.Computed), FmtG(e.Paper), match})
	}
	return t
}

func relDiff(a, b float64) float64 {
	//privlint:allow floatcompare exact-zero denominator switches to absolute difference
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// AllMatch reports whether every worked example reproduces the paper
// value within 0.1% (used by tests and the CLI exit code).
func AllMatch(examples []WorkedExample) (bool, string) {
	var bad []string
	for _, e := range examples {
		if relDiff(e.Computed, e.Paper) > 1e-3 {
			bad = append(bad, e.Name)
		}
	}
	return len(bad) == 0, strings.Join(bad, "; ")
}
