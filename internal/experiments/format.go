// Package experiments reproduces the paper's evaluation (Section 5):
// the synthetic sweep of Figure 4's upper row, the physical-activity
// histograms and error tables of Figure 4's lower row and Table 1, the
// timing comparison of Table 2, the electricity errors of Table 3, and
// the worked examples scattered through Sections 2–4. Each runner is
// deterministic given its seed and returns a structured result that
// the CLI renders and the benchmarks/tests assert on.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple fixed-width text table in the style of the paper's
// result tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if n := w - len([]rune(s)); n > 0 {
		return s + strings.Repeat(" ", n)
	}
	return s
}

// Fmt formats a value for a table cell, rendering NaN as the paper's
// "N/A".
func Fmt(v float64, prec int) string {
	if math.IsNaN(v) {
		return "N/A"
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// FmtG is Fmt with %g formatting for quantities spanning magnitudes
// (timings, large errors).
func FmtG(v float64) string {
	if math.IsNaN(v) {
		return "N/A"
	}
	return fmt.Sprintf("%.4g", v)
}
