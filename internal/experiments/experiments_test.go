package experiments

import (
	"math"
	"strings"
	"testing"

	"pufferfish/internal/floats"
)

// quickFig4Config is a reduced sweep that exercises every code path in
// seconds.
func quickFig4Config() Fig4TopConfig {
	return Fig4TopConfig{
		Epsilons: []float64{1},
		Alphas:   []float64{0.15, 0.35},
		T:        60,
		Trials:   40,
		GridN:    4,
		Seed:     11,
	}
}

func TestFig4TopShape(t *testing.T) {
	results, err := Fig4Top(quickFig4Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(results[0].Cells) != 2 {
		t.Fatalf("unexpected result shape %+v", results)
	}
	strong := results[0].Cells[0] // α = 0.15: strong correlation allowed
	weak := results[0].Cells[1]   // α = 0.35: weak correlation

	// GK16 is inapplicable at α=0.15 and applicable at α=0.35 (the
	// dashed line of Figure 4).
	if !math.IsNaN(strong.GK16) {
		t.Errorf("GK16 should be N/A at α=0.15, got %v", strong.GK16)
	}
	if math.IsNaN(weak.GK16) {
		t.Error("GK16 should apply at α=0.35")
	}
	// Errors shrink as the class narrows (α grows).
	if !(weak.Approx < strong.Approx) || !(weak.Exact < strong.Exact) {
		t.Errorf("errors should shrink with α: %+v vs %+v", strong, weak)
	}
	// Exact dominates approx (smaller σ), both beat GroupDP's 1/ε at
	// the weak-correlation end.
	if weak.SigmaExact > weak.SigmaApprox+1e-9 {
		t.Errorf("σ_exact %v > σ_approx %v", weak.SigmaExact, weak.SigmaApprox)
	}
	if !(weak.Exact < weak.GroupDP) {
		t.Errorf("MQMExact %v should beat GroupDP %v at α=0.35", weak.Exact, weak.GroupDP)
	}
	// Render smoke test.
	table := results[0].Render().String()
	if !strings.Contains(table, "alpha") || !strings.Contains(table, "N/A") {
		t.Errorf("table rendering wrong:\n%s", table)
	}
}

func quickActivityConfig() ActivityConfig {
	return ActivityConfig{Eps: 1, Trials: 5, Smoothing: 0.5, PopulationScale: 0.15, Seed: 12}
}

func TestActivityExperimentShape(t *testing.T) {
	results, err := ActivityExperiment(quickActivityConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("want 3 cohorts, got %d", len(results))
	}
	for _, r := range results {
		if !floats.Eq(floats.Sum(r.ExactAggHist), 1, 1e-9) {
			t.Errorf("%v: aggregate histogram sums to %v", r.Group, floats.Sum(r.ExactAggHist))
		}
		// GK16 must be N/A on the empirical activity chains.
		if !math.IsNaN(r.AggErrors[MechGK16]) {
			t.Errorf("%v: GK16 should be N/A", r.Group)
		}
		// Table 1 orderings: aggregate ≪ individual for each quilt
		// mechanism; MQMExact ≤ MQMApprox; MQM beats GroupDP on the
		// individual task.
		for _, mech := range []string{MechGroupDP, MechApprox, MechExact} {
			if !(r.AggErrors[mech] < r.IndiErrors[mech]) {
				t.Errorf("%v %s: agg %v not below indi %v", r.Group, mech, r.AggErrors[mech], r.IndiErrors[mech])
			}
		}
		if r.Sigmas[MechExact] > r.Sigmas[MechApprox]+1e-9 {
			t.Errorf("%v: σ_exact %v > σ_approx %v", r.Group, r.Sigmas[MechExact], r.Sigmas[MechApprox])
		}
		if !(r.IndiErrors[MechExact] < r.IndiErrors[MechGroupDP]) {
			t.Errorf("%v: MQMExact indi %v not below GroupDP %v", r.Group, r.IndiErrors[MechExact], r.IndiErrors[MechGroupDP])
		}
	}
	// Figure 4 lower row qualitative shape: cyclists most active,
	// overweight women most sedentary, visible in the exact aggregate.
	if !(results[0].ExactAggHist[0] > results[2].ExactAggHist[0]) {
		t.Error("cyclists should be more active than overweight women")
	}
	if !(results[2].ExactAggHist[3] > results[0].ExactAggHist[3]) {
		t.Error("overweight women should be more sedentary than cyclists")
	}
	// Renderers.
	t1 := RenderTable1(results, 1).String()
	if !strings.Contains(t1, "cyclist Agg") {
		t.Errorf("Table 1 rendering wrong:\n%s", t1)
	}
	fb := RenderFig4Bottom(results[0], 1).String()
	if !strings.Contains(fb, "Sedentary") {
		t.Errorf("Fig 4 bottom rendering wrong:\n%s", fb)
	}
}

func quickPowerConfig() PowerConfig {
	return PowerConfig{T: 30000, Epsilons: []float64{0.2, 1}, Trials: 4, Smoothing: 0.5, Seed: 13}
}

func TestPowerExperimentShape(t *testing.T) {
	res, err := PowerExperiment(quickPowerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("want 2 cells, got %d", len(res.Cells))
	}
	if !floats.Eq(floats.Sum(res.ExactHist), 1, 1e-9) {
		t.Error("exact histogram not normalized")
	}
	for i, c := range res.Cells {
		// GK16 N/A on the empirical 51-state chain.
		if !math.IsNaN(c.GK16) {
			t.Errorf("GK16 should be N/A, got %v", c.GK16)
		}
		// GroupDP expected error ≈ 2·51/ε (the paper's 516/103/20
		// pattern); allow sampling slack.
		want := 102.0 / c.Eps
		if math.Abs(c.GroupDP-want) > want/2 {
			t.Errorf("GroupDP error %v, expected ≈ %v", c.GroupDP, want)
		}
		// MQM must beat GroupDP by orders of magnitude.
		if !(c.Exact < c.GroupDP/50) || !(c.Approx < c.GroupDP/10) {
			t.Errorf("MQM errors not far below GroupDP: %+v", c)
		}
		if c.SigmaExact > c.SigmaApprox+1e-9 {
			t.Errorf("σ_exact %v > σ_approx %v", c.SigmaExact, c.SigmaApprox)
		}
		// Errors decrease with ε.
		if i > 0 && !(c.Exact < res.Cells[i-1].Exact) {
			t.Error("errors should decrease with ε")
		}
	}
	table := res.Render().String()
	if !strings.Contains(table, "Table 3") || !strings.Contains(table, "N/A") {
		t.Errorf("Table 3 rendering wrong:\n%s", table)
	}
}

func TestTimingExperimentShape(t *testing.T) {
	cfg := TimingConfig{
		Eps:               1,
		Repeats:           1,
		SyntheticT:        40,
		SyntheticGridStep: 0.4,
		PowerT:            20000,
		PopulationScale:   0.1,
		Smoothing:         0.5,
		Seed:              14,
	}
	res, err := TimingExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 5 { // synthetic + 3 cohorts + electricity
		t.Fatalf("datasets = %v", res.Datasets)
	}
	for i, name := range res.Datasets {
		ap := res.Seconds[MechApprox][i]
		ex := res.Seconds[MechExact][i]
		if math.IsNaN(ap) || math.IsNaN(ex) || ap < 0 || ex < 0 {
			t.Errorf("%s: invalid timings approx=%v exact=%v", name, ap, ex)
		}
	}
	// GK16 is N/A on the real-data columns (empirical chains).
	for i := 1; i < 5; i++ {
		if !math.IsNaN(res.Seconds[MechGK16][i]) {
			t.Errorf("%s: GK16 timing should be N/A", res.Datasets[i])
		}
	}
	table := res.Render().String()
	if !strings.Contains(table, "electricity") {
		t.Errorf("Table 2 rendering wrong:\n%s", table)
	}
}

func TestWorkedExamplesAllMatch(t *testing.T) {
	examples, err := RunWorkedExamples()
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) < 10 {
		t.Fatalf("only %d worked examples", len(examples))
	}
	ok, bad := AllMatch(examples)
	if !ok {
		t.Errorf("worked examples diverge from the paper: %s", bad)
	}
	table := RenderWorkedExamples(examples).String()
	if strings.Contains(table, "NO") {
		t.Errorf("rendered mismatches:\n%s", table)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"x", "1"}, {"longer-cell", "2"}},
	}
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "longer-cell") {
		t.Errorf("render:\n%s", s)
	}
	if Fmt(math.NaN(), 3) != "N/A" || FmtG(math.NaN()) != "N/A" {
		t.Error("NaN formatting wrong")
	}
	if Fmt(1.23456, 2) != "1.23" {
		t.Error("Fmt precision wrong")
	}
}
