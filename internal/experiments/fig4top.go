package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"strings"
	"sync"

	"pufferfish/internal/core"
	"pufferfish/internal/laplace"
	"pufferfish/internal/markov"
)

// Fig4TopConfig parameterizes the synthetic binary-chain sweep of
// Figure 4's upper row (Section 5.2).
type Fig4TopConfig struct {
	// Epsilons are the privacy regimes; the paper uses 0.2, 1, 5.
	Epsilons []float64
	// Alphas index the classes Θ = [α, 1−α]; the paper sweeps 0.1–0.4.
	Alphas []float64
	// T is the chain length (paper: 100).
	T int
	// Trials is the number of random (θ, X) draws per point
	// (paper: 500).
	Trials int
	// GridN is the per-parameter grid resolution used when the exact
	// mechanisms take the sup over the continuum class.
	GridN int
	// Seed makes the sweep reproducible.
	Seed uint64
	// Parallelism bounds each score computation's worker count
	// (0 = all CPUs, 1 = serial); results are identical either way.
	Parallelism int
}

// DefaultFig4TopConfig returns the paper's parameters.
func DefaultFig4TopConfig() Fig4TopConfig {
	return Fig4TopConfig{
		Epsilons: []float64{0.2, 1, 5},
		// 0.275 sits just right of GK16's applicability threshold
		// α = 1/(1+e) ≈ 0.269, exhibiting the crossover the paper
		// reports (GK16 worse than MQM near the dashed line, better
		// far from it).
		Alphas: []float64{0.1, 0.15, 0.2, 0.25, 0.275, 0.3, 0.35, 0.4},
		T:      100,
		Trials: 500,
		GridN:  9,
		Seed:   1,
	}
}

// Fig4TopCell is one (ε, α) measurement: mean L1 error of the released
// frequency of state 1. NaN marks N/A (GK16's spectral condition).
type Fig4TopCell struct {
	Alpha                        float64
	GK16, Approx, Exact, GroupDP float64
	SigmaGK16                    float64
	SigmaApprox, SigmaExact      float64
}

// Fig4TopResult is one panel (one ε) of the figure.
type Fig4TopResult struct {
	Eps   float64
	Cells []Fig4TopCell
}

// Fig4Top runs the sweep. For each (ε, α) it computes each mechanism's
// noise scale once for the class (the scale is data independent), then
// averages the released-value error over Trials fresh draws of
// θ ∈ Θ = [α, 1−α] (transition parameters uniform in the interval,
// initial distribution uniform on the simplex) and X ~ θ.
//
// Cells are independent, so they run in parallel; each derives its own
// PCG stream from (Seed, ε-index, α-index), keeping the sweep
// bit-for-bit reproducible regardless of scheduling.
func Fig4Top(cfg Fig4TopConfig) ([]Fig4TopResult, error) {
	if cfg.T < 2 || cfg.Trials < 1 {
		return nil, fmt.Errorf("experiments: invalid config %+v", cfg)
	}
	out := make([]Fig4TopResult, len(cfg.Epsilons))
	errs := make([]error, len(cfg.Epsilons)*len(cfg.Alphas))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for ei, eps := range cfg.Epsilons {
		out[ei] = Fig4TopResult{Eps: eps, Cells: make([]Fig4TopCell, len(cfg.Alphas))}
		for ai, alpha := range cfg.Alphas {
			wg.Add(1)
			go func(ei, ai int, eps, alpha float64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				rng := rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b9^uint64(ei)<<32^uint64(ai)))
				cell, err := fig4TopCell(cfg, eps, alpha, rng)
				out[ei].Cells[ai] = cell
				errs[ei*len(cfg.Alphas)+ai] = err
			}(ei, ai, eps, alpha)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func fig4TopCell(cfg Fig4TopConfig, eps, alpha float64, rng *rand.Rand) (Fig4TopCell, error) {
	class, err := markov.NewBinaryInterval(alpha, 1-alpha, cfg.T)
	if err != nil {
		return Fig4TopCell{}, err
	}
	class.GridN = cfg.GridN

	cell := Fig4TopCell{Alpha: alpha}
	T := float64(cfg.T)

	// Noise scales (per release of the 1/T-Lipschitz frequency query).
	approx, err := core.ApproxScore(class, eps, core.ApproxOptions{Parallelism: cfg.Parallelism})
	if err != nil {
		return Fig4TopCell{}, err
	}
	cell.SigmaApprox = approx.Sigma
	exact, err := core.ExactScore(class, eps, core.ExactOptions{Parallelism: cfg.Parallelism})
	if err != nil {
		return Fig4TopCell{}, err
	}
	cell.SigmaExact = exact.Sigma

	gk16Scale := math.NaN()
	if gk, err := core.GK16SigmaClass(class, eps); err == nil {
		cell.SigmaGK16 = gk.Sigma
		gk16Scale = gk.Sigma / T
	} else {
		cell.SigmaGK16 = math.NaN()
	}

	approxScale := scaleOrNaN(approx.Sigma / T)
	exactScale := scaleOrNaN(exact.Sigma / T)
	groupScale := 1 / eps // whole-chain change moves the frequency by 1

	// Trial loop: draw θ ∈ Θ, X ~ θ, release, measure |error|.
	var sumGK, sumA, sumE, sumG float64
	for trial := 0; trial < cfg.Trials; trial++ {
		p0 := alpha + (1-2*alpha)*rng.Float64()
		p1 := alpha + (1-2*alpha)*rng.Float64()
		q0 := rng.Float64()
		theta := markov.BinaryChain(q0, p0, p1)
		data := theta.Sample(cfg.T, rng)
		// The exact value cancels in the error, but run the release
		// end to end anyway.
		var freq float64
		for _, x := range data {
			freq += float64(x)
		}
		freq /= T
		sumA += releaseError(freq, approxScale, rng)
		sumE += releaseError(freq, exactScale, rng)
		sumG += releaseError(freq, groupScale, rng)
		if !math.IsNaN(gk16Scale) {
			sumGK += releaseError(freq, gk16Scale, rng)
		}
	}
	n := float64(cfg.Trials)
	cell.Approx = sumA / n
	cell.Exact = sumE / n
	cell.GroupDP = sumG / n
	if math.IsNaN(gk16Scale) {
		cell.GK16 = math.NaN()
	} else {
		cell.GK16 = sumGK / n
	}
	return cell, nil
}

func scaleOrNaN(s float64) float64 {
	if math.IsInf(s, 1) {
		return math.NaN()
	}
	return s
}

// releaseError performs one noisy release at the given scale and
// returns |released − exact|; NaN scales yield NaN.
func releaseError(exact, scale float64, rng *rand.Rand) float64 {
	if math.IsNaN(scale) {
		return math.NaN()
	}
	//privlint:allow floatcompare zero scale is the exact degenerate-noise sentinel
	if scale == 0 {
		return 0
	}
	return math.Abs(laplace.New(scale).Sample(rng))
}

// CSV renders one panel as plot-ready CSV (α, then one column per
// mechanism; empty cells for N/A).
func (r Fig4TopResult) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "alpha,gk16,mqm_approx,mqm_exact,group_dp,eps=%g\n", r.Eps)
	cell := func(v float64) string {
		if math.IsNaN(v) {
			return ""
		}
		return fmt.Sprintf("%.6f", v)
	}
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%.3f,%s,%s,%s,%s\n",
			c.Alpha, cell(c.GK16), cell(c.Approx), cell(c.Exact), cell(c.GroupDP))
	}
	return b.String()
}

// Render formats one panel like the paper's plot data: one row per α.
func (r Fig4TopResult) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 4 (top): synthetic binary chain, L1 error of freq(state 1), ε = %g", r.Eps),
		Header: []string{"alpha", "GK16", "MQMApprox", "MQMExact", "GroupDP"},
	}
	for _, c := range r.Cells {
		t.Rows = append(t.Rows, []string{
			Fmt(c.Alpha, 2), Fmt(c.GK16, 4), Fmt(c.Approx, 4), Fmt(c.Exact, 4), Fmt(c.GroupDP, 4),
		})
	}
	return t
}
