package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"pufferfish/internal/activity"
	"pufferfish/internal/core"
	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
	"pufferfish/internal/power"
)

// TimingConfig parameterizes the Table 2 reproduction: wall-clock time
// of the procedure that computes each mechanism's noise scale.
type TimingConfig struct {
	Eps float64
	// Repeats is how many times each computation is averaged
	// (paper: 5).
	Repeats int
	// SyntheticT and SyntheticGridStep control the synthetic column:
	// the per-θ scale computation averaged over singleton classes with
	// p0, p1 on a grid (the paper uses {0.1, 0.11, …, 0.9}; coarser
	// grids give the same averages faster).
	SyntheticT        int
	SyntheticGridStep float64
	// PowerT is the electricity series length.
	PowerT int
	// PopulationScale shrinks the activity cohorts for quick runs.
	PopulationScale float64
	Smoothing       float64
	Seed            uint64
	// Parallelism bounds each timed score computation's worker count
	// (0 = all CPUs, 1 = serial) — the knob Table 2 uses to report
	// serial vs parallel wall-clock.
	Parallelism int
}

// DefaultTimingConfig returns paper-scale parameters (with a coarser
// synthetic grid; see SyntheticGridStep).
func DefaultTimingConfig() TimingConfig {
	return TimingConfig{
		Eps:               1,
		Repeats:           5,
		SyntheticT:        100,
		SyntheticGridStep: 0.1,
		PowerT:            1_000_000,
		PopulationScale:   1,
		Smoothing:         0.5,
		Seed:              4,
	}
}

// TimingResult is Table 2: seconds to compute the Laplace scale
// parameter, per mechanism per dataset. NaN = N/A.
type TimingResult struct {
	Datasets []string
	Seconds  map[string][]float64 // mechanism → per-dataset seconds
}

// TimingExperiment measures the scale-parameter computations.
func TimingExperiment(cfg TimingConfig) (TimingResult, error) {
	if cfg.Repeats < 1 {
		return TimingResult{}, fmt.Errorf("experiments: invalid repeats %d", cfg.Repeats)
	}
	res := TimingResult{Seconds: map[string][]float64{
		MechGK16: {}, MechApprox: {}, MechExact: {},
	}}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xb5297a4d))

	appendCol := func(name string, gk, ap, ex float64) {
		res.Datasets = append(res.Datasets, name)
		res.Seconds[MechGK16] = append(res.Seconds[MechGK16], gk)
		res.Seconds[MechApprox] = append(res.Seconds[MechApprox], ap)
		res.Seconds[MechExact] = append(res.Seconds[MechExact], ex)
	}

	// Synthetic column: average per-θ time over the grid.
	gk, ap, ex, err := syntheticTimings(cfg)
	if err != nil {
		return TimingResult{}, err
	}
	appendCol("synthetic", gk, ap, ex)

	// Activity cohorts.
	for _, g := range activity.Groups {
		profile := activity.DefaultProfile(g)
		if cfg.PopulationScale < 1 && cfg.PopulationScale > 0 {
			profile.Participants = maxInt(2, int(float64(profile.Participants)*cfg.PopulationScale))
			profile.SessionsPerPerson = maxInt(3, int(float64(profile.SessionsPerPerson)*cfg.PopulationScale*2))
		}
		ds, err := activity.Generate(profile, rng)
		if err != nil {
			return TimingResult{}, err
		}
		chain, err := ds.EmpiricalChain(cfg.Smoothing)
		if err != nil {
			return TimingResult{}, err
		}
		class, err := markov.NewSingleton(chain, ds.LongestSession())
		if err != nil {
			return TimingResult{}, err
		}
		gk, ap, ex := classTimings(class, cfg.Eps, cfg.Repeats, cfg.Parallelism)
		appendCol(g.String(), gk, ap, ex)
	}

	// Electricity.
	series, err := power.DefaultHouse().Simulate(cfg.PowerT, rng)
	if err != nil {
		return TimingResult{}, err
	}
	chain, err := power.EmpiricalChain(series, cfg.Smoothing)
	if err != nil {
		return TimingResult{}, err
	}
	class, err := markov.NewSingleton(chain, cfg.PowerT)
	if err != nil {
		return TimingResult{}, err
	}
	gk, ap, ex = classTimings(class, cfg.Eps, cfg.Repeats, cfg.Parallelism)
	appendCol("electricity", gk, ap, ex)

	return res, nil
}

func syntheticTimings(cfg TimingConfig) (gk, ap, ex float64, err error) {
	var ps []float64
	for p := 0.1; p <= 0.9+1e-9; p += cfg.SyntheticGridStep {
		ps = append(ps, p)
	}
	var nGK, nAll int
	for _, p0 := range ps {
		for _, p1 := range ps {
			theta, errS := markov.BinaryChain(0.5, p0, p1).StationaryChain()
			if errS != nil {
				return 0, 0, 0, errS
			}
			class, errC := markov.NewFinite([]markov.Chain{theta}, cfg.SyntheticT)
			if errC != nil {
				return 0, 0, 0, errC
			}
			g, a, e := classTimings(class, cfg.Eps, cfg.Repeats, cfg.Parallelism)
			if !math.IsNaN(g) {
				gk += g
				nGK++
			}
			ap += a
			ex += e
			nAll++
		}
	}
	if nGK > 0 {
		gk /= float64(nGK)
	} else {
		gk = math.NaN()
	}
	return gk, ap / float64(nAll), ex / float64(nAll), nil
}

// classTimings times the three scale computations on one class,
// averaged over cfg repeats. GK16 returns NaN when inapplicable.
func classTimings(class markov.Class, eps float64, repeats, parallelism int) (gk, ap, ex float64) {
	var gkTimes, apTimes, exTimes []float64
	gkOK := true
	for r := 0; r < repeats; r++ {
		start := time.Now()
		_, err := core.GK16SigmaClass(class, eps)
		gkTimes = append(gkTimes, time.Since(start).Seconds())
		if err != nil {
			gkOK = false
		}

		start = time.Now()
		if _, err := core.ApproxScore(class, eps, core.ApproxOptions{Parallelism: parallelism}); err != nil {
			return math.NaN(), math.NaN(), math.NaN()
		}
		apTimes = append(apTimes, time.Since(start).Seconds())

		start = time.Now()
		if _, err := core.ExactScore(class, eps, core.ExactOptions{Parallelism: parallelism}); err != nil {
			return math.NaN(), math.NaN(), math.NaN()
		}
		exTimes = append(exTimes, time.Since(start).Seconds())
	}
	gk = floats.Mean(gkTimes)
	if !gkOK {
		gk = math.NaN()
	}
	return gk, floats.Mean(apTimes), floats.Mean(exTimes)
}

// Render formats Table 2.
func (r TimingResult) Render() *Table {
	t := &Table{
		Title:  "Table 2: seconds to compute the Laplace scale parameter (ε = 1)",
		Header: append([]string{"Algorithm"}, r.Datasets...),
	}
	for _, mech := range []string{MechGK16, MechApprox, MechExact} {
		row := []string{mech}
		for _, s := range r.Seconds[mech] {
			row = append(row, FmtG(s))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
