package experiments

import (
	"math"
	"strings"
	"testing"
)

// TestFig4TopDeterministic: the parallel sweep must be bit-for-bit
// reproducible for a fixed seed, regardless of goroutine scheduling.
func TestFig4TopDeterministic(t *testing.T) {
	cfg := Fig4TopConfig{
		Epsilons: []float64{0.5, 2},
		Alphas:   []float64{0.2, 0.3, 0.4},
		T:        40,
		Trials:   20,
		GridN:    3,
		Seed:     77,
	}
	a, err := Fig4Top(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4Top(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Cells {
			ca, cb := a[i].Cells[j], b[i].Cells[j]
			if ca != cb && !(math.IsNaN(ca.GK16) && math.IsNaN(cb.GK16) &&
				ca.Approx == cb.Approx && ca.Exact == cb.Exact && ca.GroupDP == cb.GroupDP) {
				t.Errorf("cell (%d,%d) differs: %+v vs %+v", i, j, ca, cb)
			}
		}
	}
}

func TestFig4TopCSV(t *testing.T) {
	r := Fig4TopResult{
		Eps: 1,
		Cells: []Fig4TopCell{
			{Alpha: 0.1, GK16: math.NaN(), Approx: 0.5, Exact: 0.25, GroupDP: 1},
			{Alpha: 0.3, GK16: 0.02, Approx: 0.1, Exact: 0.05, GroupDP: 1},
		},
	}
	csv := r.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "alpha,gk16,") {
		t.Errorf("header = %q", lines[0])
	}
	// N/A renders as an empty field.
	if !strings.HasPrefix(lines[1], "0.100,,0.500000,") {
		t.Errorf("NaN row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "0.300,0.020000,") {
		t.Errorf("value row = %q", lines[2])
	}
}
