package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pufferfish/internal/core"
	"pufferfish/internal/markov"
	"pufferfish/internal/power"
)

// PowerConfig parameterizes the Section 5.3.2 electricity experiment
// (Table 3).
type PowerConfig struct {
	// T is the series length (paper: ≈1,000,000 minutes).
	T int
	// Epsilons are the privacy regimes of Table 3.
	Epsilons []float64
	// Trials is the number of noise draws averaged (paper: 20).
	Trials int
	// Smoothing is the additive smoothing of the 51-state empirical
	// chain.
	Smoothing float64
	Seed      uint64
	// Parallelism bounds each score computation's worker count
	// (0 = all CPUs, 1 = serial); results are identical either way.
	Parallelism int
}

// DefaultPowerConfig returns the paper's parameters.
func DefaultPowerConfig() PowerConfig {
	return PowerConfig{
		T:         1_000_000,
		Epsilons:  []float64{0.2, 1, 5},
		Trials:    20,
		Smoothing: 0.5,
		Seed:      3,
	}
}

// PowerCell is one ε row of Table 3.
type PowerCell struct {
	Eps                          float64
	GroupDP, GK16, Approx, Exact float64 // mean L1 errors; NaN = N/A
	SigmaApprox, SigmaExact      float64
}

// PowerResult is the whole experiment.
type PowerResult struct {
	T     int
	Cells []PowerCell
	// ExactHist is the true 51-bin relative-frequency histogram.
	ExactHist []float64
}

// PowerExperiment simulates the household series once, estimates the
// empirical 51-state chain, and measures every mechanism's histogram
// error at each ε.
func PowerExperiment(cfg PowerConfig) (PowerResult, error) {
	if cfg.T < 1000 || cfg.Trials < 1 {
		return PowerResult{}, fmt.Errorf("experiments: invalid config %+v", cfg)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x2545f491))
	series, err := power.DefaultHouse().Simulate(cfg.T, rng)
	if err != nil {
		return PowerResult{}, err
	}
	chain, err := power.EmpiricalChain(series, cfg.Smoothing)
	if err != nil {
		return PowerResult{}, err
	}
	class, err := markov.NewSingleton(chain, cfg.T)
	if err != nil {
		return PowerResult{}, err
	}

	k := power.NumBins
	n := float64(cfg.T)
	hist := make([]float64, k)
	for _, s := range series {
		hist[s]++
	}
	for i := range hist {
		hist[i] /= n
	}
	res := PowerResult{T: cfg.T, ExactHist: hist}

	for _, eps := range cfg.Epsilons {
		cell := PowerCell{Eps: eps}
		approx, err := core.ApproxScore(class, eps, core.ApproxOptions{Parallelism: cfg.Parallelism})
		if err != nil {
			return PowerResult{}, err
		}
		exact, err := core.ExactScore(class, eps, core.ExactOptions{Parallelism: cfg.Parallelism})
		if err != nil {
			return PowerResult{}, err
		}
		cell.SigmaApprox = approx.Sigma
		cell.SigmaExact = exact.Sigma

		gk16Scale := math.NaN()
		if gk, err := core.GK16SigmaClass(class, eps); err == nil {
			gk16Scale = 2 * gk.Sigma / n
		}
		scales := map[string]float64{
			// The whole series is one connected chain: the GroupDP
			// group is everything, so the per-bin scale is 2/ε.
			MechGroupDP: 2 / eps,
			MechGK16:    gk16Scale,
			MechApprox:  2 * approx.Sigma / n,
			MechExact:   2 * exact.Sigma / n,
		}
		errs := map[string]float64{}
		for mech, scale := range scales {
			var sum float64
			for trial := 0; trial < cfg.Trials; trial++ {
				_, errv := noisyHist(hist, scale, rng)
				sum += errv
			}
			if math.IsNaN(scale) {
				errs[mech] = math.NaN()
			} else {
				errs[mech] = sum / float64(cfg.Trials)
			}
		}
		cell.GroupDP = errs[MechGroupDP]
		cell.GK16 = errs[MechGK16]
		cell.Approx = errs[MechApprox]
		cell.Exact = errs[MechExact]
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// Render formats Table 3.
func (r PowerResult) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table 3: electricity consumption (T = %d), L1 error of 51-bin histogram", r.T),
		Header: []string{"Algorithm"},
	}
	for _, c := range r.Cells {
		t.Header = append(t.Header, fmt.Sprintf("ε = %g", c.Eps))
	}
	rows := map[string][]string{
		MechGroupDP: {MechGroupDP},
		MechGK16:    {MechGK16},
		MechApprox:  {MechApprox},
		MechExact:   {MechExact},
	}
	for _, c := range r.Cells {
		rows[MechGroupDP] = append(rows[MechGroupDP], FmtG(c.GroupDP))
		rows[MechGK16] = append(rows[MechGK16], FmtG(c.GK16))
		rows[MechApprox] = append(rows[MechApprox], FmtG(c.Approx))
		rows[MechExact] = append(rows[MechExact], FmtG(c.Exact))
	}
	for _, mech := range []string{MechGroupDP, MechGK16, MechApprox, MechExact} {
		t.Rows = append(t.Rows, rows[mech])
	}
	return t
}
