package core

import (
	"math/rand/v2"
	"testing"

	"pufferfish/internal/markov"
	"pufferfish/internal/query"
)

func cacheTestClass(t testing.TB, p0 float64, T int) markov.Class {
	t.Helper()
	chain, err := markov.BinaryChain(0.5, p0, 0.85).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	class, err := markov.NewFinite([]markov.Chain{chain}, T)
	if err != nil {
		t.Fatal(err)
	}
	return class
}

// TestScoreCacheHitMissCounters runs a composition loop — fresh
// Composition per release, shared cache — and asserts the cache does
// exactly one scoring pass and the counters record it.
func TestScoreCacheHitMissCounters(t *testing.T) {
	class := cacheTestClass(t, 0.9, 120)
	cache := NewScoreCache()
	rng := rand.New(rand.NewPCG(5, 6))
	data := make([]int, 120)
	q := query.RelFreqHistogram{K: 2, N: len(data)}

	const releases = 10
	for i := 0; i < releases; i++ {
		comp := NewExactComposition(class, ExactOptions{}).WithCache(cache)
		if _, err := comp.Release(data, q, 1, rng); err != nil {
			t.Fatal(err)
		}
	}
	stats := cache.Stats()
	if stats.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (one scoring pass for %d releases)", stats.Misses, releases)
	}
	if stats.Hits != releases-1 {
		t.Fatalf("hits = %d, want %d", stats.Hits, releases-1)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", cache.Len())
	}

	// A different ε is a different key.
	comp := NewExactComposition(class, ExactOptions{}).WithCache(cache)
	if _, err := comp.Release(data, q, 2, rng); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got != 2 {
		t.Fatalf("misses after new ε = %d, want 2", got)
	}
	// Different options are a different key too.
	if _, err := cache.ExactScore(class, 1, ExactOptions{MaxWidth: 7}); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got != 3 {
		t.Fatalf("misses after new MaxWidth = %d, want 3", got)
	}
	// Parallelism is NOT part of the key: the engine is bit-identical
	// across worker counts, so this must hit.
	if _, err := cache.ExactScore(class, 1, ExactOptions{Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got != 3 {
		t.Fatalf("parallelism changed the cache key: misses = %d, want 3", got)
	}
}

// TestScoreCacheBitIdentical pins that cached results equal direct
// scoring exactly, for both mechanisms.
func TestScoreCacheBitIdentical(t *testing.T) {
	class := cacheTestClass(t, 0.85, 150)
	cache := NewScoreCache()
	for _, eps := range []float64{0.5, 1, 2} {
		direct, err := ExactScore(class, eps, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ { // miss then hit
			cached, err := cache.ExactScore(class, eps, ExactOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if cached != direct {
				t.Fatalf("eps=%v pass %d: cached %+v != direct %+v", eps, i, cached, direct)
			}
		}
		directA, err := ApproxScore(class, eps, ApproxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cachedA, err := cache.ApproxScore(class, eps, ApproxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if cachedA != directA {
			t.Fatalf("eps=%v: cached approx %+v != direct %+v", eps, cachedA, directA)
		}
	}
}

// TestScoreBatchDedup feeds N classes with only two distinct
// fingerprints and asserts O(unique) scoring work plus per-class
// results bit-identical to individual scoring.
func TestScoreBatchDedup(t *testing.T) {
	const n = 8
	classes := make([]markov.Class, n)
	for i := range classes {
		// Alternate two parameterizations, each built independently so
		// deduplication must go through the fingerprint, not pointer
		// identity.
		if i%2 == 0 {
			classes[i] = cacheTestClass(t, 0.9, 130)
		} else {
			classes[i] = cacheTestClass(t, 0.8, 130)
		}
	}
	cache := NewScoreCache()
	scores, err := ScoreBatch(cache, classes, 1, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != n {
		t.Fatalf("got %d scores, want %d", len(scores), n)
	}
	stats := cache.Stats()
	if stats.Misses != 2 {
		t.Fatalf("batch of %d classes with 2 unique fingerprints did %d scoring passes", n, stats.Misses)
	}
	for i, class := range classes {
		direct, err := ExactScore(class, 1, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if scores[i] != direct {
			t.Fatalf("class %d: batch %+v != direct %+v", i, scores[i], direct)
		}
	}
	// A second batch over the same classes is all hits.
	if _, err := ScoreBatch(cache, classes, 1, ExactOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got != 2 {
		t.Fatalf("re-batch re-scored: misses = %d, want 2", got)
	}

	// Approx batch: same dedup contract.
	acache := NewScoreCache()
	ascores, err := ApproxScoreBatch(acache, classes, 1, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := acache.Stats().Misses; got != 2 {
		t.Fatalf("approx batch misses = %d, want 2", got)
	}
	for i, class := range classes {
		direct, err := ApproxScore(class, 1, ApproxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ascores[i] != direct {
			t.Fatalf("class %d: approx batch %+v != direct %+v", i, ascores[i], direct)
		}
	}
}

// TestScoreBatchParallelGolden checks batch results are bit-identical
// at every parallelism level, with and without a cache.
func TestScoreBatchParallelGolden(t *testing.T) {
	classes := []markov.Class{
		cacheTestClass(t, 0.9, 90),
		cacheTestClass(t, 0.8, 110),
		cacheTestClass(t, 0.9, 90), // duplicate fingerprint
		cacheTestClass(t, 0.7, 70),
	}
	serial, err := ScoreBatch(nil, classes, 1, ExactOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 2, 3} {
		got, err := ScoreBatch(NewScoreCache(), classes, 1, ExactOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("parallelism %d class %d: %+v != serial %+v", par, i, got[i], serial[i])
			}
		}
	}
}

// TestScoreBatchSharedMatrix checks batching classes whose chains
// share a transition matrix (the per-user empirical chain regime with
// differing initial distributions) still matches individual scoring —
// the shared power-cache path must not change results.
func TestScoreBatchSharedMatrix(t *testing.T) {
	base := markov.BinaryChain(0.5, 0.85, 0.75)
	inits := [][]float64{{0.5, 0.5}, {0.2, 0.8}, {0.9, 0.1}}
	var classes []markov.Class
	for _, init := range inits {
		chain, err := base.WithInit(init)
		if err != nil {
			t.Fatal(err)
		}
		class, err := markov.NewFinite([]markov.Chain{chain}, 80)
		if err != nil {
			t.Fatal(err)
		}
		classes = append(classes, class)
	}
	got, err := ScoreBatch(nil, classes, 1, ExactOptions{ForceFullSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, class := range classes {
		direct, err := ExactScore(class, 1, ExactOptions{ForceFullSweep: true})
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != direct {
			t.Fatalf("class %d: batch %+v != direct %+v", i, got[i], direct)
		}
	}
}

// TestScoreBatchEmptyAndNil covers the degenerate inputs.
func TestScoreBatchEmptyAndNil(t *testing.T) {
	if out, err := ScoreBatch(nil, nil, 1, ExactOptions{}); err != nil || out != nil {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
	if _, err := ScoreBatch(nil, []markov.Class{nil}, 1, ExactOptions{}); err == nil {
		t.Fatal("nil class accepted")
	}
}
