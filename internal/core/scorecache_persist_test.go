package core

import (
	"encoding/json"
	"errors"
	"math"
	"testing"

	"pufferfish/internal/markov"
)

// TestCacheSnapshotRoundTrip: a populated cache must survive
// Snapshot → JSON → Restore with every entry bit-identical, covering
// both the quilt-score table and the Kantorovich cell-profile table.
func TestCacheSnapshotRoundTrip(t *testing.T) {
	chain, err := markov.BinaryChain(0.5, 0.9, 0.85).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	class, err := markov.NewFinite([]markov.Chain{chain}, 20)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache()
	eps := []float64{0.5, 1, 2.25}
	want := make([]ChainScore, len(eps))
	for i, e := range eps {
		s, err := cache.ExactScore(class, e, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = s
	}
	fp := ClassFingerprint(class)
	cellProfiles := []CellScore{
		{WInf: 3, W1: 1.25, Label: "X3: 0 vs 1 @ θ1", Pairs: 40},
		{WInf: 1.5, W1: 1.5, Pairs: 7},
	}
	for cell, p := range cellProfiles {
		cache.StoreCell(fp, cell, p)
	}

	blob, err := json.Marshal(cache.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	restored := NewScoreCache()
	var snap CacheSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != cache.Len() {
		t.Fatalf("restored %d entries, want %d", restored.Len(), cache.Len())
	}

	// Every quilt score must be a pure hit with bit-identical values.
	for i, e := range eps {
		s, err := restored.ExactScore(class, e, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if s != want[i] {
			t.Errorf("ε = %v: restored score %+v != original %+v", e, s, want[i])
		}
	}
	if stats := restored.Stats(); stats.Misses != 0 || stats.Hits != int64(len(eps)) {
		t.Errorf("restored cache was not warm: %+v", stats)
	}
	for cell, p := range cellProfiles {
		got, ok := restored.LookupCell(fp, cell)
		if !ok || got != p {
			t.Errorf("cell %d: restored profile (%+v, %v) != original %+v", cell, got, ok, p)
		}
	}
}

// TestCacheSnapshotRestoreRejectsBadInput: version mismatches and
// entries the engine could never have produced must not be merged.
func TestCacheSnapshotRestoreRejectsBadInput(t *testing.T) {
	good := CacheSnapshot{Version: snapshotVersion}
	if err := NewScoreCache().Restore(good); err != nil {
		t.Fatalf("empty snapshot rejected: %v", err)
	}
	cases := map[string]CacheSnapshot{
		"version": {Version: snapshotVersion + 1},
		"sigma": {Version: snapshotVersion, Scores: []ScoreEntry{
			{Eps: 1, Sigma: 0},
		}},
		"inf sigma": {Version: snapshotVersion, Scores: []ScoreEntry{
			{Eps: 1, Sigma: math.Inf(1)},
		}},
		"eps": {Version: snapshotVersion, Scores: []ScoreEntry{
			{Eps: -1, Sigma: 2},
		}},
		"nan influence": {Version: snapshotVersion, Scores: []ScoreEntry{
			{Eps: 1, Sigma: 2, Node: 1, Influence: math.NaN()},
		}},
		"negative influence": {Version: snapshotVersion, Scores: []ScoreEntry{
			{Eps: 1, Sigma: 2, Node: 1, Influence: -0.25},
		}},
		"influence at eps": {Version: snapshotVersion, Scores: []ScoreEntry{
			{Eps: 1, Sigma: 2, Node: 1, Influence: 1},
		}},
		"zero node": {Version: snapshotVersion, Scores: []ScoreEntry{
			{Eps: 1, Sigma: 2, Node: 0, Influence: 0.5},
		}},
		"negative node": {Version: snapshotVersion, Scores: []ScoreEntry{
			{Eps: 1, Sigma: 2, Node: -3, Influence: 0.5},
		}},
		"negative quilt A": {Version: snapshotVersion, Scores: []ScoreEntry{
			{Eps: 1, Sigma: 2, Node: 1, QuiltA: -1, Influence: 0.5},
		}},
		"negative quilt B": {Version: snapshotVersion, Scores: []ScoreEntry{
			{Eps: 1, Sigma: 2, Node: 1, QuiltB: -2, Influence: 0.5},
		}},
		"negative ell": {Version: snapshotVersion, Scores: []ScoreEntry{
			{Eps: 1, Sigma: 2, Node: 1, Influence: 0.5, Ell: -1},
		}},
		"cell winf": {Version: snapshotVersion, Cells: []CellScoreEntry{
			{Profile: CellScore{WInf: math.Inf(1)}},
		}},
		"cell order": {Version: snapshotVersion, Cells: []CellScoreEntry{
			{Profile: CellScore{WInf: 1, W1: 2}},
		}},
		"negative cell index": {Version: snapshotVersion, Cells: []CellScoreEntry{
			{Cell: -1, Profile: CellScore{WInf: 1, W1: 0.5}},
		}},
		"negative pairs": {Version: snapshotVersion, Cells: []CellScoreEntry{
			{Cell: 0, Profile: CellScore{WInf: 1, W1: 0.5, Pairs: -4}},
		}},
	}
	for name, snap := range cases {
		if err := NewScoreCache().Restore(snap); err == nil {
			t.Errorf("%s: bad snapshot accepted", name)
		}
	}
	var nilCache *ScoreCache
	if err := nilCache.Restore(good); err == nil {
		t.Error("restore into nil cache accepted")
	}
	if snap := nilCache.Snapshot(); len(snap.Scores) != 0 || len(snap.Cells) != 0 {
		t.Error("nil cache snapshot not empty")
	}
}

// TestCacheSnapshotLegacyVersion: a version-1 snapshot (pre kind-tag
// fingerprint domain) is refused with ErrLegacySnapshot — even when
// its entries are individually well-formed — so loaders can detect the
// expected across-upgrade case and restart cold, while a snapshot from
// a future version fails with a non-legacy error.
func TestCacheSnapshotLegacyVersion(t *testing.T) {
	legacy := CacheSnapshot{
		Version: 1,
		Scores: []ScoreEntry{
			{FpHi: 7, FpLo: 9, Eps: 1, Sigma: 2, Node: 1, Influence: 0.5},
		},
		Cells: []CellScoreEntry{
			{FpHi: 7, FpLo: 9, Cell: 0, Profile: CellScore{WInf: 1, W1: 0.5, Pairs: 3}},
		},
	}
	cache := NewScoreCache()
	err := cache.Restore(legacy)
	if !errors.Is(err, ErrLegacySnapshot) {
		t.Fatalf("legacy restore error = %v, want ErrLegacySnapshot", err)
	}
	if cache.Len() != 0 {
		t.Errorf("legacy entries merged: %d resident", cache.Len())
	}
	future := CacheSnapshot{Version: snapshotVersion + 1}
	if err := NewScoreCache().Restore(future); err == nil || errors.Is(err, ErrLegacySnapshot) {
		t.Errorf("future version error = %v, want a non-legacy rejection", err)
	}
}
