package core

import (
	"fmt"
	"strconv"

	"pufferfish/internal/dist"
	"pufferfish/internal/markov"
	"pufferfish/internal/sched"
)

// Substrate kind tags. The tag domain-separates fingerprints: a chain
// and a network that happened to serialize to identical canonical
// bytes can never share a ScoreCache entry.
const (
	SubstrateChain   = "chain"
	SubstrateNetwork = "network"
)

// Substrate is the correlation model underneath a Pufferfish
// instantiation (S, Q, Θ) for count queries over positions 1…Len():
// the secrets are all position values, the pairs all same-position
// value pairs with positive probability, and the scalar query is
// F(X) = Σ_pos w[X_pos] with integer per-value weights.
//
// It is the seam between the scoring pipeline and the model family:
// the Wasserstein sweep, the Kantorovich cell profiles, and the
// fingerprint-keyed ScoreCache all consume this interface, so a new
// correlation structure plugs into caching, accounting, and serving by
// implementing it. markov.Class chains (ClassSubstrate) and
// tree/polytree bayes.Network classes (NetworkSubstrate) are the two
// implementations.
type Substrate interface {
	// Kind is the substrate's domain-separation tag, one of the
	// Substrate* constants. SubstrateFingerprint mixes it into the
	// fingerprint before any canonical bytes.
	Kind() string
	// K is the per-position cardinality: values live in {0, …, K−1}
	// and the histogram query has K cells.
	K() int
	// Len is the number of positions (chain nodes, network nodes).
	Len() int
	// SecretPairs enumerates the admissible secret pairs in canonical
	// order (θ-major, then position, then value pair) — the order is
	// part of the contract: sweeps keep first maximizers, so it
	// determines which pair a diagnostic label names.
	SecretPairs() ([]SecretSpec, error)
	// CountDistGiven returns the exact conditional distribution of
	// F(X) = Σ_pos w[X_pos] given X_pos = val under distribution
	// theta (an index into the substrate's Θ). pos is 1-based; pos = 0
	// means no conditioning. It errors when the conditioning event has
	// probability zero.
	CountDistGiven(theta int, w []int, pos, val int) (dist.Discrete, error)
	// WriteFingerprint streams the substrate's canonical fingerprint
	// bytes — everything scores depend on besides (ε, options) — into
	// w. Implementations must not write the kind tag;
	// SubstrateFingerprint prepends it.
	WriteFingerprint(w FingerprintWriter)
}

// SecretSpec is one admissible secret pair of a substrate: under the
// Theta-th distribution, position Pos (1-based) takes value A or value
// B (A < B), both with positive marginal probability.
type SecretSpec struct {
	Theta, Pos, A, B int
}

// label renders the pair's diagnostic label ("X3: 0 vs 1 @ θ2", θ
// 1-based) with a single allocation (fmt.Sprintf boxes every argument,
// which dominated the pair sweep's allocation count).
func (sp SecretSpec) label() string {
	var arr [40]byte
	b := arr[:0]
	b = append(b, 'X')
	b = strconv.AppendInt(b, int64(sp.Pos), 10)
	b = append(b, ": "...)
	b = strconv.AppendInt(b, int64(sp.A), 10)
	b = append(b, " vs "...)
	b = strconv.AppendInt(b, int64(sp.B), 10)
	b = append(b, " @ θ"...)
	b = strconv.AppendInt(b, int64(sp.Theta+1), 10)
	return string(b)
}

// CountInstance is the generic WassersteinInstance of a substrate: it
// makes Algorithm 1 (and the Kantorovich cell profiles) runnable on
// anything implementing Substrate, with the same enumeration order,
// labels, and parallel fan as the historical chain-only path — scores
// through it are bit-identical to the pre-Substrate pipeline.
type CountInstance struct {
	Substrate Substrate
	// W are per-value integer weights; the indicator of a value makes
	// F that value's occupancy count.
	W []int
	// Parallelism bounds the worker count of the conditional-
	// distribution fan: 0 uses every CPU, 1 runs strictly serial. The
	// pair list is identical (same order, same distributions) at every
	// setting.
	Parallelism int
}

// ConditionalPairs implements WassersteinInstance. Secret values with
// zero probability are skipped per Definition 2.1 (the substrate's
// SecretPairs contract); the O(expensive) conditional distribution
// computations — the dominant cost — fan across the pool, each job
// writing its own slot, so the resulting list is deterministic.
func (c CountInstance) ConditionalPairs() ([]DistributionPair, error) {
	if len(c.W) != c.Substrate.K() {
		return nil, fmt.Errorf("core: weight vector has length %d, want %d", len(c.W), c.Substrate.K())
	}
	specs, err := c.Substrate.SecretPairs()
	if err != nil {
		return nil, err
	}
	pairs := make([]DistributionPair, len(specs))
	errs := make([]error, len(specs))
	sched.New(c.Parallelism).ForEach(len(specs), func(j int) {
		sp := specs[j]
		mu, err := c.Substrate.CountDistGiven(sp.Theta, c.W, sp.Pos, sp.A)
		if err != nil {
			errs[j] = err
			return
		}
		nu, err := c.Substrate.CountDistGiven(sp.Theta, c.W, sp.Pos, sp.B)
		if err != nil {
			errs[j] = err
			return
		}
		pairs[j] = DistributionPair{Mu: mu, Nu: nu, Label: sp.label()}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pairs, nil
}

// ClassSubstrate adapts a markov.Class to the Substrate interface —
// the historical chain pipeline expressed through the generic seam.
// Chains() is snapshotted at construction so grid classes do not
// rebuild their grid per conditional distribution.
type ClassSubstrate struct {
	class  markov.Class
	chains []markov.Chain
}

// NewClassSubstrate wraps a chain class as a Substrate.
func NewClassSubstrate(class markov.Class) *ClassSubstrate {
	return &ClassSubstrate{class: class, chains: class.Chains()}
}

// Kind implements Substrate.
func (s *ClassSubstrate) Kind() string { return SubstrateChain }

// K implements Substrate.
func (s *ClassSubstrate) K() int { return s.class.K() }

// Len implements Substrate: the chain length T.
func (s *ClassSubstrate) Len() int { return s.class.T() }

// Class returns the wrapped chain class.
func (s *ClassSubstrate) Class() markov.Class { return s.class }

// SecretPairs implements Substrate: all (θ, node, a, b) with both
// marginals positive, enumerated θ-major in Chains() order. Two passes
// over the (cheap) marginal admissibility checks: the first counts so
// the spec list is allocated exactly once.
func (s *ClassSubstrate) SecretPairs() ([]SecretSpec, error) {
	T := s.class.T()
	k := s.class.K()
	margs := make([][][]float64, len(s.chains))
	nSpecs := 0
	for ti, theta := range s.chains {
		marg := theta.Marginals(T)
		margs[ti] = marg
		for i := 1; i <= T; i++ {
			for a := 0; a < k; a++ {
				if marg[i-1][a] <= 0 {
					continue
				}
				for b := a + 1; b < k; b++ {
					if marg[i-1][b] > 0 {
						nSpecs++
					}
				}
			}
		}
	}
	specs := make([]SecretSpec, 0, nSpecs)
	for ti := range s.chains {
		marg := margs[ti]
		for i := 1; i <= T; i++ {
			for a := 0; a < k; a++ {
				if marg[i-1][a] <= 0 {
					continue
				}
				for b := a + 1; b < k; b++ {
					if marg[i-1][b] <= 0 {
						continue
					}
					specs = append(specs, SecretSpec{Theta: ti, Pos: i, A: a, B: b})
				}
			}
		}
	}
	return specs, nil
}

// CountDistGiven implements Substrate via the chain's forward dynamic
// program.
func (s *ClassSubstrate) CountDistGiven(theta int, w []int, pos, val int) (dist.Discrete, error) {
	if theta < 0 || theta >= len(s.chains) {
		return dist.Discrete{}, fmt.Errorf("core: θ index %d outside [0,%d)", theta, len(s.chains))
	}
	return s.chains[theta].CountDistGiven(s.class.T(), w, pos, val)
}

// WriteFingerprint implements Substrate: the chain length T, the state
// count, the AllInitialDistributions flag, and every representative
// chain's initial distribution and transition matrix, in Chains()
// order (order matters: the scorer's first-maximizer tie-breaking is
// order dependent).
func (s *ClassSubstrate) WriteFingerprint(w FingerprintWriter) {
	w.Word(uint64(s.class.K()))
	w.Word(uint64(s.class.T()))
	if s.class.AllInitialDistributions() {
		w.Word(1)
	} else {
		w.Word(0)
	}
	w.Word(uint64(len(s.chains)))
	for _, c := range s.chains {
		writeChain(w, c)
	}
}
