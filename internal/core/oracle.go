package core

import (
	"fmt"

	"pufferfish/internal/markov"
	"pufferfish/internal/sched"
)

// ChainCountInstance is a ready-made WassersteinInstance for the
// Section 4.1 chain instantiation with the scalar query
// F(X) = Σ_t W[X_t] (integer per-state weights): the secrets are all
// node values, the pairs all same-node value pairs, and the
// conditional distributions of F are computed exactly by dynamic
// programming.
//
// It makes Algorithm 1 runnable on any (small) chain class and powers
// the Theorem 3.3 comparison against group differential privacy.
type ChainCountInstance struct {
	Class markov.Class
	// W are per-state integer weights; the indicator of a state makes
	// F that state's occupancy count.
	W []int
	// Parallelism bounds the worker count of the conditional-DP fan:
	// 0 uses every CPU, 1 runs strictly serial. The pair list is
	// identical (same order, same distributions) at every setting.
	Parallelism int
}

// pairJob is one admissible (θ, node, a, b) secret pair whose two
// conditional distributions remain to be computed.
type pairJob struct {
	theta   markov.Chain
	ti      int
	i, a, b int
}

// ConditionalPairs implements WassersteinInstance. Secret values with
// zero probability under a θ are skipped per Definition 2.1.
//
// The admissible pairs are enumerated serially (marginal checks are
// cheap), then the O(T·k²·range) conditional dynamic programs — the
// dominant cost — fan across the pool, each job writing its own slot,
// so the resulting list is deterministic.
func (c ChainCountInstance) ConditionalPairs() ([]DistributionPair, error) {
	T := c.Class.T()
	k := c.Class.K()
	if len(c.W) != k {
		return nil, fmt.Errorf("core: weight vector has length %d, want %d", len(c.W), k)
	}
	var jobs []pairJob
	for ti, theta := range c.Class.Chains() {
		marg := theta.Marginals(T)
		for i := 1; i <= T; i++ {
			for a := 0; a < k; a++ {
				if marg[i-1][a] <= 0 {
					continue
				}
				for b := a + 1; b < k; b++ {
					if marg[i-1][b] <= 0 {
						continue
					}
					jobs = append(jobs, pairJob{theta: theta, ti: ti, i: i, a: a, b: b})
				}
			}
		}
	}
	pairs := make([]DistributionPair, len(jobs))
	errs := make([]error, len(jobs))
	sched.New(c.Parallelism).ForEach(len(jobs), func(j int) {
		job := jobs[j]
		mu, err := job.theta.CountDistGiven(T, c.W, job.i, job.a)
		if err != nil {
			errs[j] = err
			return
		}
		nu, err := job.theta.CountDistGiven(T, c.W, job.i, job.b)
		if err != nil {
			errs[j] = err
			return
		}
		pairs[j] = DistributionPair{
			Mu:    mu,
			Nu:    nu,
			Label: fmt.Sprintf("X%d: %d vs %d @ θ%d", job.i, job.a, job.b, job.ti+1),
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pairs, nil
}
