package core

import (
	"fmt"

	"pufferfish/internal/markov"
)

// ChainCountInstance is a ready-made WassersteinInstance for the
// Section 4.1 chain instantiation with the scalar query
// F(X) = Σ_t W[X_t] (integer per-state weights): the secrets are all
// node values, the pairs all same-node value pairs, and the
// conditional distributions of F are computed exactly by dynamic
// programming.
//
// It makes Algorithm 1 runnable on any (small) chain class and powers
// the Theorem 3.3 comparison against group differential privacy.
type ChainCountInstance struct {
	Class markov.Class
	// W are per-state integer weights; the indicator of a state makes
	// F that state's occupancy count.
	W []int
}

// ConditionalPairs implements WassersteinInstance. Secret values with
// zero probability under a θ are skipped per Definition 2.1.
func (c ChainCountInstance) ConditionalPairs() ([]DistributionPair, error) {
	T := c.Class.T()
	k := c.Class.K()
	if len(c.W) != k {
		return nil, fmt.Errorf("core: weight vector has length %d, want %d", len(c.W), k)
	}
	var pairs []DistributionPair
	for ti, theta := range c.Class.Chains() {
		marg := theta.Marginals(T)
		for i := 1; i <= T; i++ {
			for a := 0; a < k; a++ {
				if marg[i-1][a] <= 0 {
					continue
				}
				for b := a + 1; b < k; b++ {
					if marg[i-1][b] <= 0 {
						continue
					}
					mu, err := theta.CountDistGiven(T, c.W, i, a)
					if err != nil {
						return nil, err
					}
					nu, err := theta.CountDistGiven(T, c.W, i, b)
					if err != nil {
						return nil, err
					}
					pairs = append(pairs, DistributionPair{
						Mu:    mu,
						Nu:    nu,
						Label: fmt.Sprintf("X%d: %d vs %d @ θ%d", i, a, b, ti+1),
					})
				}
			}
		}
	}
	return pairs, nil
}
