package core

import (
	"pufferfish/internal/markov"
)

// ChainCountInstance is a ready-made WassersteinInstance for the
// Section 4.1 chain instantiation with the scalar query
// F(X) = Σ_t W[X_t] (integer per-state weights): the secrets are all
// node values, the pairs all same-node value pairs, and the
// conditional distributions of F are computed exactly by dynamic
// programming.
//
// It makes Algorithm 1 runnable on any (small) chain class and powers
// the Theorem 3.3 comparison against group differential privacy. It is
// the chain-shaped view of the generic CountInstance: the pair list is
// bit-identical to CountInstance over NewClassSubstrate(Class).
type ChainCountInstance struct {
	Class markov.Class
	// W are per-state integer weights; the indicator of a state makes
	// F that state's occupancy count.
	W []int
	// Parallelism bounds the worker count of the conditional-DP fan:
	// 0 uses every CPU, 1 runs strictly serial. The pair list is
	// identical (same order, same distributions) at every setting.
	Parallelism int
}

// ConditionalPairs implements WassersteinInstance by delegating to the
// generic substrate path. Secret values with zero probability under a
// θ are skipped per Definition 2.1.
func (c ChainCountInstance) ConditionalPairs() ([]DistributionPair, error) {
	return CountInstance{
		Substrate:   NewClassSubstrate(c.Class),
		W:           c.W,
		Parallelism: c.Parallelism,
	}.ConditionalPairs()
}
