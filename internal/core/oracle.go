package core

import (
	"fmt"
	"strconv"

	"pufferfish/internal/markov"
	"pufferfish/internal/sched"
)

// ChainCountInstance is a ready-made WassersteinInstance for the
// Section 4.1 chain instantiation with the scalar query
// F(X) = Σ_t W[X_t] (integer per-state weights): the secrets are all
// node values, the pairs all same-node value pairs, and the
// conditional distributions of F are computed exactly by dynamic
// programming.
//
// It makes Algorithm 1 runnable on any (small) chain class and powers
// the Theorem 3.3 comparison against group differential privacy.
type ChainCountInstance struct {
	Class markov.Class
	// W are per-state integer weights; the indicator of a state makes
	// F that state's occupancy count.
	W []int
	// Parallelism bounds the worker count of the conditional-DP fan:
	// 0 uses every CPU, 1 runs strictly serial. The pair list is
	// identical (same order, same distributions) at every setting.
	Parallelism int
}

// pairJob is one admissible (θ, node, a, b) secret pair whose two
// conditional distributions remain to be computed.
type pairJob struct {
	theta   markov.Chain
	ti      int
	i, a, b int
}

// label renders the pair's diagnostic label with a single allocation
// (fmt.Sprintf boxes every argument, which dominated the pair sweep's
// allocation count).
func (j pairJob) label() string {
	var arr [40]byte
	b := arr[:0]
	b = append(b, 'X')
	b = strconv.AppendInt(b, int64(j.i), 10)
	b = append(b, ": "...)
	b = strconv.AppendInt(b, int64(j.a), 10)
	b = append(b, " vs "...)
	b = strconv.AppendInt(b, int64(j.b), 10)
	b = append(b, " @ θ"...)
	b = strconv.AppendInt(b, int64(j.ti+1), 10)
	return string(b)
}

// ConditionalPairs implements WassersteinInstance. Secret values with
// zero probability under a θ are skipped per Definition 2.1.
//
// The admissible pairs are enumerated serially (marginal checks are
// cheap), then the O(T·k²·range) conditional dynamic programs — the
// dominant cost — fan across the pool, each job writing its own slot,
// so the resulting list is deterministic.
func (c ChainCountInstance) ConditionalPairs() ([]DistributionPair, error) {
	T := c.Class.T()
	k := c.Class.K()
	if len(c.W) != k {
		return nil, fmt.Errorf("core: weight vector has length %d, want %d", len(c.W), k)
	}
	// Two passes over the (cheap) marginal admissibility checks: the
	// first counts so the job list is allocated exactly once.
	chains := c.Class.Chains()
	margs := make([][][]float64, len(chains))
	nJobs := 0
	for ti, theta := range chains {
		marg := theta.Marginals(T)
		margs[ti] = marg
		for i := 1; i <= T; i++ {
			for a := 0; a < k; a++ {
				if marg[i-1][a] <= 0 {
					continue
				}
				for b := a + 1; b < k; b++ {
					if marg[i-1][b] > 0 {
						nJobs++
					}
				}
			}
		}
	}
	jobs := make([]pairJob, 0, nJobs)
	for ti, theta := range chains {
		marg := margs[ti]
		for i := 1; i <= T; i++ {
			for a := 0; a < k; a++ {
				if marg[i-1][a] <= 0 {
					continue
				}
				for b := a + 1; b < k; b++ {
					if marg[i-1][b] <= 0 {
						continue
					}
					jobs = append(jobs, pairJob{theta: theta, ti: ti, i: i, a: a, b: b})
				}
			}
		}
	}
	pairs := make([]DistributionPair, len(jobs))
	errs := make([]error, len(jobs))
	sched.New(c.Parallelism).ForEach(len(jobs), func(j int) {
		job := jobs[j]
		mu, err := job.theta.CountDistGiven(T, c.W, job.i, job.a)
		if err != nil {
			errs[j] = err
			return
		}
		nu, err := job.theta.CountDistGiven(T, c.W, job.i, job.b)
		if err != nil {
			errs[j] = err
			return
		}
		pairs[j] = DistributionPair{Mu: mu, Nu: nu, Label: job.label()}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pairs, nil
}
