package core

import (
	"fmt"
	"sort"

	"pufferfish/internal/markov"
)

// The activity datasets are collections of independent chains (one per
// wear session) of different lengths. The Section 4.1 instantiation
// protects every node of every chain, so the database's noise score is
//
//	σ_max = max over distinct session lengths T of σ_max(T).
//
// σ(T) is not monotone in T in general — small T is capped by the
// trivial quilt's T/ε, while large T unlocks wider (better) quilts —
// so scoring only the longest chain is not sound in corner cases.
// ExactScoreMulti and ApproxScoreMulti evaluate every distinct length
// below the quilt-width plateau and one representative above it: once
// T ≥ 2ℓ+1, the middle node's quilt family no longer depends on T and
// one-sided/trivial scores only grow, so σ(T) is constant beyond the
// plateau whenever the active quilt there is an interior two-sided
// quilt (the Lemma C.4 situation); if it is not, lengths are evaluated
// individually.

// lengthClass reuses a class's chains with a different chain length.
type lengthClass struct {
	markov.Class
	t int
}

func (lc lengthClass) T() int { return lc.t }

// WithLength returns a view of class whose chain length is t, leaving
// everything else (chains, π^min, gap) untouched. It is the building
// block of every multi-length scorer, exported for the Kantorovich
// subsystem, whose per-length sweeps need the same view.
func WithLength(class markov.Class, t int) markov.Class {
	return lengthClass{Class: class, t: t}
}

// distinctScoringLengths reduces a length multiset to the lengths that
// can yield distinct scores: everything below the plateau, plus the
// maximum.
func distinctScoringLengths(lengths []int, plateau int) ([]int, error) {
	if len(lengths) == 0 {
		return nil, fmt.Errorf("core: no chain lengths")
	}
	seen := map[int]bool{}
	maxLen := 0
	var out []int
	for _, l := range lengths {
		if l < 1 {
			return nil, fmt.Errorf("core: invalid chain length %d", l)
		}
		if l > maxLen {
			maxLen = l
		}
		if l < plateau && !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	if maxLen >= plateau {
		out = append(out, maxLen)
	}
	sort.Ints(out)
	return out, nil
}

// ExactScoreMulti computes Algorithm 3's σ_max for a database of
// independent chains with the given lengths, all governed by the same
// class (whose own T is ignored).
func ExactScoreMulti(class markov.Class, eps float64, opt ExactOptions, lengths []int) (ChainScore, error) {
	return multiScore(class, lengths, func(lc markov.Class) (ChainScore, error) {
		return ExactScore(lc, eps, opt)
	})
}

// ApproxScoreMulti is ExactScoreMulti for Algorithm 4.
func ApproxScoreMulti(class markov.Class, eps float64, opt ApproxOptions, lengths []int) (ChainScore, error) {
	return multiScore(class, lengths, func(lc markov.Class) (ChainScore, error) {
		return ApproxScore(lc, eps, opt)
	})
}

func multiScore(class markov.Class, lengths []int, score func(markov.Class) (ChainScore, error)) (ChainScore, error) {
	if len(lengths) == 0 {
		return ChainScore{}, fmt.Errorf("core: no chain lengths")
	}
	// First pass on the maximum length fixes ℓ and hence the plateau.
	maxLen := lengths[0]
	for _, l := range lengths[1:] {
		if l > maxLen {
			maxLen = l
		}
	}
	top, err := score(lengthClass{Class: class, t: maxLen})
	if err != nil {
		return ChainScore{}, err
	}
	plateau := 2*top.Ell + 1
	if !(top.Quilt.A > 0 && top.Quilt.B > 0) {
		// The max-length active quilt is not interior two-sided, so
		// the constant-beyond-plateau argument does not apply; score
		// every distinct length.
		plateau = maxLen + 1
	}
	distinct, err := distinctScoringLengths(lengths, plateau)
	if err != nil {
		return ChainScore{}, err
	}
	best := top
	for _, l := range distinct {
		if l == maxLen {
			continue // already scored
		}
		sc, err := score(lengthClass{Class: class, t: l})
		if err != nil {
			return ChainScore{}, err
		}
		if sc.Sigma > best.Sigma {
			best = sc
		}
	}
	return best, nil
}
