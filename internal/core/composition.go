package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"pufferfish/internal/markov"
	"pufferfish/internal/query"
)

// Composition tracks repeated Markov Quilt releases over the same
// database and accounts for the cumulative privacy loss per
// Theorem 4.4 (sequential composition): K releases at parameters
// ε_1 … ε_K, made with the same quilt sets S_{Q,i}, satisfy
// K·max_k ε_k Pufferfish privacy.
//
// Pufferfish in general does not compose (Section 4.3) — the theorem
// hinges on every release using the same active quilts, which holds
// when ε and the quilt sets are shared. Composition enforces the
// shared-quilt-set discipline by pinning the class, options, and the
// score computed on first use.
type Composition struct {
	class    markov.Class
	exactOpt ExactOptions
	useExact bool
	score    *ChainScore
	// scoreEps is the ε the pinned score was computed at. It is
	// tracked separately from the release history so a release that
	// fails after scoring (bad data, overflowing scale) cannot leave a
	// later release at a different ε running on σ(scoreEps) unrescaled.
	scoreEps   float64
	cache      *ScoreCache
	accountant Accountant
}

// NewExactComposition returns a composition manager whose releases use
// MQMExact with the given options.
func NewExactComposition(class markov.Class, opt ExactOptions) *Composition {
	return &Composition{class: class, exactOpt: opt, useExact: true}
}

// NewApproxComposition returns a composition manager whose releases
// use MQMApprox with automatic options.
func NewApproxComposition(class markov.Class) *Composition {
	return &Composition{class: class}
}

// WithCache attaches a shared ScoreCache and returns the composition
// for chaining. The first Release then consults the cache before
// scoring, so composition-heavy workloads — many sessions over the
// same class, each with its own accounting — pay the scoring sweep
// once across all of them. A nil cache is a no-op. The cached and
// uncached paths produce bit-identical scores (and hence, for a fixed
// seed, bit-identical releases): the cache stores the engine's
// deterministic output verbatim.
func (c *Composition) WithCache(cache *ScoreCache) *Composition {
	c.cache = cache
	return c
}

// WithAccountant replaces the composition's privacy accountant and
// returns the composition for chaining. The default is a
// LinearAccountant (Theorem 4.4's K·max ε); an accounting.Ledger
// substitutes Rényi accounting. Swapping accountants never changes the
// released values — only how the cumulative loss is reported. A nil
// accountant restores the default. Swapping after releases have been
// recorded would silently discard privacy history — the unsafe
// direction for an accountant — so it panics; choose the accountant
// before the first Release.
func (c *Composition) WithAccountant(a Accountant) *Composition {
	if c.accountant != nil && c.accountant.Count() > 0 {
		panic("core: WithAccountant after releases were recorded would discard privacy history")
	}
	c.accountant = a
	return c
}

// Accountant returns the composition's accountant, constructing the
// default LinearAccountant on first use.
func (c *Composition) Accountant() Accountant {
	if c.accountant == nil {
		c.accountant = &LinearAccountant{}
	}
	return c.accountant
}

// Release publishes one more query at privacy parameter eps. All
// releases share the Markov quilt sets (same ℓ, same class), so
// Theorem 4.4 applies. The first call fixes the score; subsequent
// calls at different ε rescale the same active quilt's score rather
// than re-searching, preserving the shared-active-quilt condition of
// Definition 4.5.
func (c *Composition) Release(data []int, q query.Query, eps float64, rng *rand.Rand) (Release, error) {
	if err := checkEpsilon(eps); err != nil {
		return Release{}, err
	}
	if c.class == nil {
		return Release{}, errors.New("core: composition has no class")
	}
	if c.score == nil {
		var score ChainScore
		var err error
		// c.cache.ExactScore/ApproxScore degrade to the direct scorers
		// when no cache is attached (nil receiver).
		if c.useExact {
			score, err = c.cache.ExactScore(c.class, eps, c.exactOpt)
		} else {
			score, err = c.cache.ApproxScore(c.class, eps, ApproxOptions{})
		}
		if err != nil {
			return Release{}, err
		}
		if math.IsInf(score.Sigma, 1) {
			return Release{}, fmt.Errorf("core: composition inapplicable: σ = ∞")
		}
		c.score = &score
		c.scoreEps = eps
	}
	score := *c.score
	//privlint:allow floatcompare compares against the exact eps the score was computed at
	if eps != c.scoreEps {
		// Re-score the pinned active quilt at the new ε (Theorem 4.4's
		// K·max ε_k accounting permits varying ε with fixed quilts).
		// The guard compares against the ε the score was computed at —
		// not the first *successful* release's ε — so a first release
		// that failed after scoring still forces the rescale here.
		sigma := quiltScore(score.Quilt.CardN(score.Node, c.class.T()), score.Influence, eps)
		if math.IsInf(sigma, 1) {
			return Release{}, fmt.Errorf("core: pinned quilt has influence %.4f ≥ ε = %v", score.Influence, eps)
		}
		score.Sigma = sigma
	}
	rel, err := releaseWithScore(data, q, score, eps, "MQM(composed)", rng)
	if err != nil {
		return Release{}, err
	}
	c.Accountant().RecordPure(eps)
	return rel, nil
}

// Count returns the number of releases made so far.
func (c *Composition) Count() int { return c.Accountant().Count() }

// TotalEpsilon returns the accountant's cumulative privacy parameter
// for the releases made so far (0 before any release): K·max_k ε_k
// under the default Theorem 4.4 LinearAccountant.
func (c *Composition) TotalEpsilon() float64 { return c.Accountant().TotalEpsilon() }

func floatsMax(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
