package core

import (
	"math/rand/v2"
	"testing"

	"pufferfish/internal/query"
)

// TestCompositionCachedBitIdentical is the accounting interaction
// test: a release sequence through a cached composition must produce
// bit-identical noise scales, released values (same seed), and ε
// accounting as the uncached sequence — the cache must be observable
// only through speed.
func TestCompositionCachedBitIdentical(t *testing.T) {
	class := cacheTestClass(t, 0.9, 100)
	data := make([]int, 100)
	for i := range data {
		data[i] = i % 2
	}
	q := query.RelFreqHistogram{K: 2, N: len(data)}
	epsSeq := []float64{1, 1, 0.5, 2, 1} // exercises the re-score-at-new-ε path

	type outcome struct {
		values     []float64
		noiseScale float64
		sigma      float64
		total      float64
		count      int
	}
	run := func(cache *ScoreCache, exact bool) []outcome {
		rng := rand.New(rand.NewPCG(7, 8))
		var comp *Composition
		if exact {
			comp = NewExactComposition(class, ExactOptions{})
		} else {
			comp = NewApproxComposition(class)
		}
		comp.WithCache(cache)
		var out []outcome
		for _, eps := range epsSeq {
			rel, err := comp.Release(data, q, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, outcome{
				values:     rel.Values,
				noiseScale: rel.NoiseScale,
				sigma:      rel.Sigma,
				total:      comp.TotalEpsilon(),
				count:      comp.Count(),
			})
		}
		return out
	}

	for _, exact := range []bool{true, false} {
		uncached := run(nil, exact)
		cache := NewScoreCache()
		cached := run(cache, exact)
		// Warm cache: a second cached composition must also agree.
		rewarmed := run(cache, exact)
		for name, got := range map[string][]outcome{"cold cache": cached, "warm cache": rewarmed} {
			for i := range uncached {
				w, g := uncached[i], got[i]
				if g.noiseScale != w.noiseScale || g.sigma != w.sigma {
					t.Fatalf("exact=%v %s release %d: scale (%v, %v) != uncached (%v, %v)",
						exact, name, i, g.noiseScale, g.sigma, w.noiseScale, w.sigma)
				}
				if g.total != w.total || g.count != w.count {
					t.Fatalf("exact=%v %s release %d: accounting (%v, %d) != uncached (%v, %d)",
						exact, name, i, g.total, g.count, w.total, w.count)
				}
				for j := range w.values {
					if g.values[j] != w.values[j] {
						t.Fatalf("exact=%v %s release %d value %d: %v != %v",
							exact, name, i, j, g.values[j], w.values[j])
					}
				}
			}
		}
	}
}

// TestCompositionCacheSharedAcrossInstances checks the Theorem 4.4
// accounting stays per-composition while the score is shared: two
// compositions over the same class share one scoring pass but track
// their own K·max ε.
func TestCompositionCacheSharedAcrossInstances(t *testing.T) {
	class := cacheTestClass(t, 0.85, 100)
	data := make([]int, 100)
	q := query.RelFreqHistogram{K: 2, N: len(data)}
	cache := NewScoreCache()
	rng := rand.New(rand.NewPCG(9, 10))

	a := NewExactComposition(class, ExactOptions{}).WithCache(cache)
	b := NewExactComposition(class, ExactOptions{}).WithCache(cache)
	for i := 0; i < 3; i++ {
		if _, err := a.Release(data, q, 1, rng); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Release(data, q, 2, rng); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got != 2 {
		// a's first release misses at ε=1; b's first at ε=2 is a
		// different key (the pinned-quilt rescale happens inside a
		// composition, not across them).
		t.Fatalf("misses = %d, want 2", got)
	}
	if a.TotalEpsilon() != 3 || a.Count() != 3 {
		t.Fatalf("a accounting: total %v count %d, want 3, 3", a.TotalEpsilon(), a.Count())
	}
	if b.TotalEpsilon() != 2 || b.Count() != 1 {
		t.Fatalf("b accounting: total %v count %d, want 2, 1", b.TotalEpsilon(), b.Count())
	}
}
