package core

import (
	"math"
	"strings"
	"testing"

	"pufferfish/internal/bayes"
	"pufferfish/internal/markov"
)

// TestNetworkSubstrateMatchesChain: a chain recast as a Bayesian
// network through bayes.FromChain, wrapped in NetworkSubstrate, must
// agree with the chain's own ClassSubstrate — same secret pairs, same
// conditional count distributions, same Wasserstein scale and worst
// pair through the generic CountInstance.
func TestNetworkSubstrateMatchesChain(t *testing.T) {
	const T = 9
	chain := markov.BinaryChain(0.25, 0.75, 0.55)
	class, err := markov.NewSingleton(chain, T)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := bayes.FromChain(chain, T)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewClassSubstrate(class)
	ns, err := NewNetworkSubstrate([]*bayes.Network{nw})
	if err != nil {
		t.Fatal(err)
	}
	if ns.K() != cs.K() || ns.Len() != cs.Len() {
		t.Fatalf("shape mismatch: network (%d, %d) vs chain (%d, %d)", ns.K(), ns.Len(), cs.K(), cs.Len())
	}

	cp, err := cs.SecretPairs()
	if err != nil {
		t.Fatal(err)
	}
	np, err := ns.SecretPairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cp) != len(np) {
		t.Fatalf("%d network pairs vs %d chain pairs", len(np), len(cp))
	}
	for i := range cp {
		if cp[i] != np[i] {
			t.Fatalf("pair %d: network %+v vs chain %+v", i, np[i], cp[i])
		}
	}

	w := []int{0, 1}
	for pos := 0; pos <= T; pos++ {
		for val := 0; val < 2; val++ {
			if pos == 0 && val > 0 {
				continue
			}
			dc, err := cs.CountDistGiven(0, w, pos, val)
			if err != nil {
				t.Fatalf("chain pos=%d val=%d: %v", pos, val, err)
			}
			dn, err := ns.CountDistGiven(0, w, pos, val)
			if err != nil {
				t.Fatalf("network pos=%d val=%d: %v", pos, val, err)
			}
			if dc.Len() != dn.Len() {
				t.Fatalf("pos=%d val=%d: %d vs %d atoms", pos, val, dn.Len(), dc.Len())
			}
			for i := 0; i < dc.Len(); i++ {
				xc, pc := dc.Atom(i)
				xn, pn := dn.Atom(i)
				if xc != xn || math.Abs(pc-pn) > 1e-12 {
					t.Errorf("pos=%d val=%d atom %d: network (%v, %v) vs chain (%v, %v)", pos, val, i, xn, pn, xc, pc)
				}
			}
		}
	}

	for _, par := range []int{1, 0} {
		wc, worstC, err := WassersteinScaleOpt(CountInstance{Substrate: cs, W: w, Parallelism: par}, WassersteinOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		wn, worstN, err := WassersteinScaleOpt(CountInstance{Substrate: ns, W: w, Parallelism: par}, WassersteinOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if wc != wn || worstC.Label != worstN.Label {
			t.Errorf("p=%d: network scale (%v, %q) vs chain (%v, %q)", par, wn, worstN.Label, wc, worstC.Label)
		}
	}
}

// TestSubstrateFingerprintDomainSeparation: the kind tag keeps a chain
// and its equivalent network from ever sharing a cache entry, and the
// network fingerprint is sensitive to parameters and structure.
func TestSubstrateFingerprintDomainSeparation(t *testing.T) {
	const T = 5
	chain := markov.BinaryChain(0.3, 0.8, 0.6)
	class, err := markov.NewSingleton(chain, T)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := bayes.FromChain(chain, T)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := NewNetworkSubstrate([]*bayes.Network{nw})
	if err != nil {
		t.Fatal(err)
	}
	fpChain := SubstrateFingerprint(NewClassSubstrate(class))
	fpNet := SubstrateFingerprint(ns)
	if fpChain == fpNet {
		t.Error("chain and equivalent network share a fingerprint; kind tag not separating")
	}
	if got := ClassFingerprint(class); got != fpChain {
		t.Errorf("ClassFingerprint %v != SubstrateFingerprint of ClassSubstrate %v", got, fpChain)
	}
	nw2, err := bayes.FromChain(markov.BinaryChain(0.3, 0.8, 0.61), T)
	if err != nil {
		t.Fatal(err)
	}
	ns2, err := NewNetworkSubstrate([]*bayes.Network{nw2})
	if err != nil {
		t.Fatal(err)
	}
	if SubstrateFingerprint(ns2) == fpNet {
		t.Error("perturbed CPT left the network fingerprint unchanged")
	}
}

// TestNewNetworkSubstrateValidation: the constructor refuses empty
// classes, shape mismatches, and non-polytrees.
func TestNewNetworkSubstrateValidation(t *testing.T) {
	if _, err := NewNetworkSubstrate(nil); err == nil {
		t.Error("empty class accepted")
	}
	a := bayes.MustNew([]bayes.Node{{Name: "A", Card: 2, CPT: []float64{0.5, 0.5}}})
	b := bayes.MustNew([]bayes.Node{
		{Name: "A", Card: 2, CPT: []float64{0.5, 0.5}},
		{Name: "B", Card: 2, Parents: []int{0}, CPT: []float64{0.7, 0.3, 0.2, 0.8}},
	})
	if _, err := NewNetworkSubstrate([]*bayes.Network{a, b}); err == nil || !strings.Contains(err.Error(), "nodes") {
		t.Errorf("node-count mismatch: err = %v", err)
	}
	mixed := bayes.MustNew([]bayes.Node{
		{Name: "A", Card: 2, CPT: []float64{0.5, 0.5}},
		{Name: "B", Card: 3, Parents: []int{0}, CPT: []float64{0.2, 0.3, 0.5, 0.4, 0.4, 0.2}},
	})
	if _, err := NewNetworkSubstrate([]*bayes.Network{mixed}); err == nil || !strings.Contains(err.Error(), "cardinality") {
		t.Errorf("mixed cardinality: err = %v", err)
	}
	diamond := bayes.MustNew([]bayes.Node{
		{Name: "A", Card: 2, CPT: []float64{0.4, 0.6}},
		{Name: "B", Card: 2, Parents: []int{0}, CPT: []float64{0.7, 0.3, 0.2, 0.8}},
		{Name: "C", Card: 2, Parents: []int{0}, CPT: []float64{0.6, 0.4, 0.1, 0.9}},
		{Name: "D", Card: 2, Parents: []int{1, 2}, CPT: []float64{
			0.5, 0.5, 0.3, 0.7, 0.8, 0.2, 0.25, 0.75,
		}},
	})
	if _, err := NewNetworkSubstrate([]*bayes.Network{diamond}); err == nil || !strings.Contains(err.Error(), "polytree") {
		t.Errorf("non-polytree: err = %v", err)
	}
}
