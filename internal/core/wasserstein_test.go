package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pufferfish/internal/dist"
	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
)

// pairsInstance is a literal WassersteinInstance for tests.
type pairsInstance struct {
	pairs []DistributionPair
	err   error
}

func (p pairsInstance) ConditionalPairs() ([]DistributionPair, error) { return p.pairs, p.err }

func TestWassersteinScaleFluExample(t *testing.T) {
	// The Section 3.1 flu worked example: W = 2.
	mu := dist.MustNew([]float64{0, 1, 2, 3}, []float64{0.2, 0.225, 0.5, 0.075})
	nu := dist.MustNew([]float64{1, 2, 3, 4}, []float64{0.075, 0.5, 0.225, 0.2})
	w, worst, err := WassersteinScale(pairsInstance{pairs: []DistributionPair{{Mu: mu, Nu: nu, Label: "flu"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(w, 2, 1e-9) {
		t.Errorf("W = %v, want 2", w)
	}
	if worst.Label != "flu" {
		t.Errorf("worst pair label = %q", worst.Label)
	}
}

func TestWassersteinRelease(t *testing.T) {
	mu := dist.MustNew([]float64{0, 1}, []float64{0.5, 0.5})
	nu := dist.MustNew([]float64{1, 2}, []float64{0.5, 0.5})
	inst := pairsInstance{pairs: []DistributionPair{{Mu: mu, Nu: nu}}}
	rng := rand.New(rand.NewPCG(3, 4))
	rel, err := Wasserstein(7.5, inst, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Sigma != 1 || rel.NoiseScale != 0.5 {
		t.Errorf("Sigma=%v NoiseScale=%v", rel.Sigma, rel.NoiseScale)
	}
	if len(rel.Values) != 1 {
		t.Fatal("bad release")
	}
	// Degenerate: identical conditionals → W = 0 → exact release.
	same := pairsInstance{pairs: []DistributionPair{{Mu: mu, Nu: mu}}}
	rel, err = Wasserstein(7.5, same, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Values[0] != 7.5 {
		t.Errorf("W=0 should release exactly, got %v", rel.Values[0])
	}
	// No pairs → error.
	if _, err := Wasserstein(0, pairsInstance{}, 1, rng); err == nil {
		t.Error("empty instantiation accepted")
	}
	// Invalid ε.
	if _, err := Wasserstein(0, inst, 0, rng); err == nil {
		t.Error("ε=0 accepted")
	}
}

// TestWassersteinUtilityTheorem33 checks Theorem 3.3 as a property:
// for chain instantiations, the Wasserstein noise parameter W never
// exceeds the group-DP global sensitivity (all records correlated →
// the whole chain is one group, sensitivity T·range(w)).
func TestWassersteinUtilityTheorem33(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 113))
		T := 3 + r.IntN(5)
		p0 := 0.1 + 0.8*r.Float64()
		p1 := 0.1 + 0.8*r.Float64()
		q0 := 0.1 + 0.8*r.Float64()
		class, err := markov.NewFinite([]markov.Chain{markov.BinaryChain(q0, p0, p1)}, T)
		if err != nil {
			return false
		}
		w, _, err := WassersteinScale(ChainCountInstance{Class: class, W: []int{0, 1}})
		if err != nil {
			return false
		}
		groupSensitivity := float64(T) // range(w)=1 × T records
		return w <= groupSensitivity+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestWassersteinReducesToLaplace: with independent records (Pufferfish
// reduces to DP), W equals the per-record sensitivity of the count
// query (1), so Algorithm 1 reduces to the Laplace mechanism.
func TestWassersteinReducesToLaplace(t *testing.T) {
	// Independent Bernoulli records: a chain with identical rows.
	c := markov.BinaryChain(0.3, 0.7, 0.3) // P(next=0)=0.7 regardless of state
	class, err := markov.NewFinite([]markov.Chain{c}, 6)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := WassersteinScale(ChainCountInstance{Class: class, W: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(w, 1, 1e-9) {
		t.Errorf("independent-records W = %v, want 1 (Laplace sensitivity)", w)
	}
}

// TestWassersteinPrivacyVerified: the Wasserstein Mechanism's scale
// passes the analytic end-to-end privacy check (Theorem 3.2), and a
// quarter of it fails on a strongly correlated chain (the verifier has
// teeth).
func TestWassersteinPrivacyVerified(t *testing.T) {
	chain := markov.BinaryChain(0.5, 0.9, 0.9)
	T := 5
	class, err := markov.NewFinite([]markov.Chain{chain}, T)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1.0
	w, _, err := WassersteinScale(ChainCountInstance{Class: class, W: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	grid := floats.Linspace(-6, float64(T)+6, 120)
	if err := VerifyChainPufferfish(class, []int{0, 1}, w/eps, eps, 1e-6, grid); err != nil {
		t.Errorf("Wasserstein scale fails privacy check: %v", err)
	}
	if err := VerifyChainPufferfish(class, []int{0, 1}, w/eps/4, eps, 1e-6, grid); err == nil {
		t.Error("quarter scale should violate ε-Pufferfish on a correlated chain")
	}
}

// TestWassersteinScaleMonotoneInCorrelation: more correlation moves
// more conditional mass, so W grows from ~1 (independent) toward T.
func TestWassersteinScaleMonotoneInCorrelation(t *testing.T) {
	T := 8
	var prev float64
	for i, stay := range []float64{0.5, 0.7, 0.9, 0.99} {
		class, err := markov.NewFinite([]markov.Chain{markov.BinaryChain(0.5, stay, stay)}, T)
		if err != nil {
			t.Fatal(err)
		}
		w, _, err := WassersteinScale(ChainCountInstance{Class: class, W: []int{0, 1}})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && w < prev-1e-9 {
			t.Errorf("W decreased with correlation: %v after %v", w, prev)
		}
		prev = w
	}
	if prev < float64(T)/2 {
		t.Errorf("near-deterministic chain W = %v, expected a large fraction of T=%d", prev, T)
	}
}

func TestWassersteinInfiniteDistance(t *testing.T) {
	// Disjoint supports at unbounded distance still give finite W∞ for
	// finite supports; construct an explicitly infinite W via a pair
	// whose distributions are point masses far apart is finite, so use
	// an instance error instead.
	inst := pairsInstance{err: errFake}
	if _, _, err := WassersteinScale(inst); err == nil {
		t.Error("oracle error not propagated")
	}
}

var errFake = errorString("fake")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestChainCountInstanceSkipsZeroProbSecrets(t *testing.T) {
	// θ1 starts surely at 0: node 1 contributes no pairs.
	class, err := markov.NewFinite([]markov.Chain{theta1Chain()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := ChainCountInstance{Class: class, W: []int{0, 1}}.ConditionalPairs()
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 2 and 3 each contribute one (a,b) pair; node 1 none.
	if len(pairs) != 2 {
		t.Errorf("got %d pairs, want 2", len(pairs))
	}
	for _, p := range pairs {
		if math.IsNaN(p.Mu.Mean()) || math.IsNaN(p.Nu.Mean()) {
			t.Error("invalid conditional distribution")
		}
	}
}
