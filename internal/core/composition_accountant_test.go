package core

import (
	"math/rand/v2"
	"testing"

	"pufferfish/internal/query"
)

// TestCompositionFailedFirstReleaseRescales is the regression test for
// the pinned-ε bug: a first Release that fails *after* scoring (bad
// data) used to pin c.score without any release history, so a second
// Release at a different ε skipped the rescale guard and went out with
// σ computed for the failed call's ε — under-noised whenever ε₂ > ε₁.
// The second release must get σ(ε₂), exactly what a fresh composition
// at ε₂ releases with.
func TestCompositionFailedFirstReleaseRescales(t *testing.T) {
	class := cacheTestClass(t, 0.9, 60)
	good := make([]int, 60)
	for i := range good {
		good[i] = i % 2
	}
	bad := append([]int{}, good...)
	bad[10] = 7 // outside K=2: Evaluate fails after the score is pinned
	q := query.RelFreqHistogram{K: 2, N: len(good)}
	// ε₂ < ε₁ is the dangerous direction: σ(ε₁) < σ(ε₂), so skipping
	// the rescale released with too little noise for ε₂. ε₂ stays
	// above the pinned quilt's influence so the rescale is feasible.
	const eps1, eps2 = 2.0, 1.0

	newComp := func(exact bool) *Composition {
		if exact {
			return NewExactComposition(class, ExactOptions{})
		}
		return NewApproxComposition(class)
	}
	for _, exact := range []bool{true, false} {
		comp := newComp(exact)
		rng := rand.New(rand.NewPCG(1, 2))
		if _, err := comp.Release(bad, q, eps1, rng); err == nil {
			t.Fatal("release of out-of-range data succeeded")
		}
		if comp.Count() != 0 {
			t.Fatalf("failed release was counted: %d", comp.Count())
		}
		rel, err := comp.Release(good, q, eps2, rng)
		if err != nil {
			t.Fatal(err)
		}

		// The oracle is a composition whose first release *succeeded*
		// at ε₁ and then rescaled its pinned quilt to ε₂ — the exact
		// semantics the failed first release must not change. (Noise
		// values differ — the oracle's rng drew for two releases — so
		// only the deterministic σ and scale are compared.)
		oracle := newComp(exact)
		first, err := oracle.Release(good, q, eps1, rand.New(rand.NewPCG(1, 2)))
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.Release(good, q, eps2, rand.New(rand.NewPCG(1, 2)))
		if err != nil {
			t.Fatal(err)
		}
		if rel.Sigma != want.Sigma || rel.NoiseScale != want.NoiseScale {
			t.Errorf("exact=%v: after failed first release σ = %v (scale %v), want σ(ε₂) = %v (scale %v)",
				exact, rel.Sigma, rel.NoiseScale, want.Sigma, want.NoiseScale)
		}
		// And σ(ε₂) really is bigger than the σ(ε₁) the bug leaked.
		if rel.Sigma <= first.Sigma {
			t.Errorf("exact=%v: σ(ε₂) = %v not above the failed call's σ(ε₁) = %v",
				exact, rel.Sigma, first.Sigma)
		}
		if comp.Count() != 1 || comp.TotalEpsilon() != eps2 {
			t.Errorf("exact=%v: accounting (K=%d, total=%v), want (1, %v)",
				exact, comp.Count(), comp.TotalEpsilon(), eps2)
		}
	}
}

// TestCompositionAccountantPluggable: the default accountant is the
// Theorem 4.4 linear one (pre-accountant TotalEpsilon bit-identical),
// a custom accountant sees exactly the successful releases, and
// swapping accountants never changes the released values.
func TestCompositionAccountantPluggable(t *testing.T) {
	class := cacheTestClass(t, 0.9, 60)
	data := make([]int, 60)
	for i := range data {
		data[i] = i % 2
	}
	q := query.RelFreqHistogram{K: 2, N: len(data)}
	epsSeq := []float64{1, 0.5, 2}

	run := func(a Accountant) ([][]float64, *Composition) {
		comp := NewExactComposition(class, ExactOptions{}).WithAccountant(a)
		rng := rand.New(rand.NewPCG(3, 4))
		var values [][]float64
		for _, eps := range epsSeq {
			rel, err := comp.Release(data, q, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			values = append(values, rel.Values)
		}
		return values, comp
	}

	defValues, defComp := run(nil) // nil restores the default
	if got, want := defComp.TotalEpsilon(), 3*2.0; got != want {
		t.Errorf("default accountant total = %v, want %v", got, want)
	}
	if _, ok := defComp.Accountant().(*LinearAccountant); !ok {
		t.Errorf("default accountant is %T, want *LinearAccountant", defComp.Accountant())
	}

	// Swapping the accountant after releases would discard history —
	// it must refuse loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("WithAccountant after releases did not panic")
			}
		}()
		defComp.WithAccountant(&LinearAccountant{})
	}()

	lin := &LinearAccountant{}
	linValues, linComp := run(lin)
	if lin.Count() != len(epsSeq) || lin.TotalEpsilon() != 6 {
		t.Errorf("custom linear accountant recorded (K=%d, total=%v)", lin.Count(), lin.TotalEpsilon())
	}
	if got := lin.Epsilons(); len(got) != 3 || got[0] != 1 || got[1] != 0.5 || got[2] != 2 {
		t.Errorf("recorded epsilons = %v", got)
	}
	if linComp.Count() != 3 {
		t.Errorf("composition count = %d", linComp.Count())
	}
	for i := range defValues {
		for j := range defValues[i] {
			if defValues[i][j] != linValues[i][j] {
				t.Fatalf("release %d differs across accountants", i)
			}
		}
	}
}
