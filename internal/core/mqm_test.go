package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pufferfish/internal/bayes"
	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
)

func theta1Chain() markov.Chain {
	return markov.MustNew([]float64{1, 0}, matrix.FromRows([][]float64{{0.9, 0.1}, {0.4, 0.6}}))
}

func theta2Chain() markov.Chain {
	return markov.MustNew([]float64{0.9, 0.1}, matrix.FromRows([][]float64{{0.8, 0.2}, {0.3, 0.7}}))
}

// TestSection43QuiltScores reproduces the Section 4.3 worked example:
// T = 3, q = [0.8, 0.2], P = [[0.9,0.1],[0.4,0.6]], ε = 10. The quilts
// of X2 have scores 0.3, 0.2437, 0.2437, 0.1558, the active quilt is
// {X1, X3}, and (checking X1 and X3 too) σ_max = 0.1558… at X2.
func TestSection43QuiltScores(t *testing.T) {
	chain := markov.MustNew([]float64{0.8, 0.2}, matrix.FromRows([][]float64{{0.9, 0.1}, {0.4, 0.6}}))
	class, err := markov.NewFinite([]markov.Chain{chain}, 3)
	if err != nil {
		t.Fatal(err)
	}
	eps := 10.0
	for _, force := range []bool{false, true} {
		score, err := ExactScore(class, eps, ExactOptions{MaxWidth: 3, ForceFullSweep: force})
		if err != nil {
			t.Fatal(err)
		}
		wantSigma := 1 / (eps - math.Log(36))
		if !floats.Eq(score.Sigma, wantSigma, 1e-9) {
			t.Errorf("force=%v: σ_max = %v, want %v", force, score.Sigma, wantSigma)
		}
		if score.Node != 2 || score.Quilt.A != 1 || score.Quilt.B != 1 {
			t.Errorf("force=%v: active = node %d quilt %v, want node 2 {X1,X3}", force, score.Node, score.Quilt)
		}
		if !floats.Eq(score.Influence, math.Log(36), 1e-9) {
			t.Errorf("force=%v: influence = %v, want log 36", force, score.Influence)
		}
		// The paper's printed per-quilt scores for X2.
		if !floats.Eq(1/(eps-math.Log(36)), 0.1558, 1e-3) ||
			!floats.Eq(2/(eps-math.Log(6)), 0.2437, 1e-3) ||
			!floats.Eq(3/eps, 0.3, 1e-12) {
			t.Error("printed score values drifted")
		}
	}
}

// TestRunningExampleMQMExact reproduces the Section 4.4.1 running
// example: T = 100, ε = 1, ℓ = T. For θ1 the worst node is X8 with
// quilt {X3, X13} and score 13.0219; for θ2 it is X6 with quilt {X10}
// and score 10.6402. The class score is the maximum, 13.0219.
func TestRunningExampleMQMExact(t *testing.T) {
	eps := 1.0
	class1, _ := markov.NewFinite([]markov.Chain{theta1Chain()}, 100)
	s1, err := ExactScore(class1, eps, ExactOptions{MaxWidth: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(s1.Sigma, 13.0219, 1e-3) {
		t.Errorf("θ1 σ = %v, want 13.0219", s1.Sigma)
	}
	if s1.Node != 8 || s1.Quilt.A != 5 || s1.Quilt.B != 5 {
		t.Errorf("θ1 active = node %d quilt %+v, want node 8 {X3,X13}", s1.Node, s1.Quilt)
	}

	class2, _ := markov.NewFinite([]markov.Chain{theta2Chain()}, 100)
	s2, err := ExactScore(class2, eps, ExactOptions{MaxWidth: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(s2.Sigma, 10.6402, 1e-3) {
		t.Errorf("θ2 σ = %v, want 10.6402", s2.Sigma)
	}
	if s2.Node != 6 || s2.Quilt.A != 0 || s2.Quilt.B != 4 {
		t.Errorf("θ2 active = node %d quilt %+v, want node 6 {X10}", s2.Node, s2.Quilt)
	}

	both, _ := markov.NewFinite([]markov.Chain{theta1Chain(), theta2Chain()}, 100)
	sb, err := ExactScore(both, eps, ExactOptions{MaxWidth: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(sb.Sigma, 13.0219, 1e-3) {
		t.Errorf("class σ = %v, want 13.0219", sb.Sigma)
	}
}

// TestExactMatchesGenericBayes cross-validates Algorithm 3 against the
// generic Algorithm 2 run on the chain-as-Bayesian-network with
// exhaustive quilt sets, on random small chains (Lemma 4.6 says the
// contiguous family is sufficient, so the σ_max must agree).
func TestExactMatchesGenericBayes(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 101))
		T := 3 + r.IntN(3) // 3..5
		p0 := 0.15 + 0.7*r.Float64()
		p1 := 0.15 + 0.7*r.Float64()
		q0 := 0.1 + 0.8*r.Float64()
		chain := markov.BinaryChain(q0, p0, p1)
		eps := 2 + 8*r.Float64()

		class, err := markov.NewFinite([]markov.Chain{chain}, T)
		if err != nil {
			return false
		}
		exact, err := ExactScore(class, eps, ExactOptions{MaxWidth: T, ForceFullSweep: true})
		if err != nil {
			return false
		}
		nw, err := bayes.FromChain(chain, T)
		if err != nil {
			return false
		}
		inst := &BayesInstantiation{Networks: []*bayes.Network{nw}}
		generic, err := QuiltScoreBayes(inst, eps)
		if err != nil {
			return false
		}
		return floats.Eq(exact.Sigma, generic.Sigma, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestStationaryShortcutMatchesFullSweep verifies the Section 4.4.1
// observation used for the large-data experiments: with a stationary
// initial distribution, scoring only the middle node equals the full
// sweep.
func TestStationaryShortcutMatchesFullSweep(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 103))
		p0 := 0.2 + 0.6*r.Float64()
		p1 := 0.2 + 0.6*r.Float64()
		base := markov.BinaryChain(0.5, p0, p1)
		chain, err := base.StationaryChain()
		if err != nil {
			return false
		}
		T := 20 + r.IntN(40)
		eps := 0.5 + 2*r.Float64()
		class, err := markov.NewFinite([]markov.Chain{chain}, T)
		if err != nil {
			return false
		}
		fast, err := ExactScore(class, eps, ExactOptions{MaxWidth: T})
		if err != nil {
			return false
		}
		slow, err := ExactScore(class, eps, ExactOptions{MaxWidth: T, ForceFullSweep: true})
		if err != nil {
			return false
		}
		return floats.Eq(fast.Sigma, slow.Sigma, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestApproxUpperBoundsExact: MQMApprox uses upper bounds on the
// max-influence, so for the same ℓ its σ must never be smaller than
// MQMExact's on singleton stationary classes.
func TestApproxUpperBoundsExact(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 107))
		p0 := 0.25 + 0.5*r.Float64()
		p1 := 0.25 + 0.5*r.Float64()
		chain, err := markov.BinaryChain(0.5, p0, p1).StationaryChain()
		if err != nil {
			return false
		}
		T := 200
		eps := 1.0
		class, err := markov.NewFinite([]markov.Chain{chain}, T)
		if err != nil {
			return false
		}
		approx, err := ApproxScore(class, eps, ApproxOptions{})
		if err != nil {
			return false
		}
		exact, err := ExactScore(class, eps, ExactOptions{MaxWidth: approx.Ell})
		if err != nil {
			return false
		}
		return exact.Sigma <= approx.Sigma+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestApproxFastPathMatchesFullSweep checks Lemma 4.9/C.4: when
// T ≥ 8a*, the middle-node-only computation equals the full sweep.
func TestApproxFastPathMatchesFullSweep(t *testing.T) {
	chain, err := markov.BinaryChain(0.5, 0.7, 0.6).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.5, 1, 5} {
		class, _ := markov.NewFinite([]markov.Chain{chain}, 2000)
		fast, err := ApproxScore(class, eps, ApproxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := ApproxScore(class, eps, ApproxOptions{MaxWidth: fast.Ell, ForceFullSweep: true})
		if err != nil {
			t.Fatal(err)
		}
		if !floats.Eq(fast.Sigma, slow.Sigma, 1e-9) {
			t.Errorf("ε=%v: fast %v vs sweep %v", eps, fast.Sigma, slow.Sigma)
		}
		if fast.Quilt.A == 0 || fast.Quilt.B == 0 {
			t.Errorf("ε=%v: fast-path active quilt %+v not two-sided", eps, fast.Quilt)
		}
	}
}

// TestApproxNoiseIndependentOfT checks Theorem 4.10: beyond the
// sufficient length, σ stops growing with T.
func TestApproxNoiseIndependentOfT(t *testing.T) {
	chain, err := markov.BinaryChain(0.5, 0.8, 0.75).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	eps := 1.0
	classA, _ := markov.NewFinite([]markov.Chain{chain}, 5000)
	minT, err := UtilityBound(classA, eps)
	if err != nil {
		t.Fatal(err)
	}
	if 5000 < minT {
		t.Skipf("test chain mixes too slowly: need T ≥ %d", minT)
	}
	a, err := ApproxScore(classA, eps, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	classB, _ := markov.NewFinite([]markov.Chain{chain}, 50000)
	b, err := ApproxScore(classB, eps, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(a.Sigma, b.Sigma, 1e-9) {
		t.Errorf("σ grew with T: %v vs %v", a.Sigma, b.Sigma)
	}
}

// TestApproxRequiresMixing: a periodic (non-mixing) chain must be
// rejected, per the Lemma 4.8 hypotheses.
func TestApproxRequiresMixing(t *testing.T) {
	per := markov.MustNew([]float64{0.5, 0.5}, matrix.FromRows([][]float64{{0, 1}, {1, 0}}))
	class, err := markov.NewFinite([]markov.Chain{per}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApproxScore(class, 1, ApproxOptions{}); err == nil {
		t.Error("periodic chain accepted by MQMApprox")
	}
}

// TestExactSkipsZeroProbabilitySecrets: θ1 starts at state 0 surely,
// so node 1 has no admissible secret pair and must not dominate the
// score even for tiny ε where every non-trivial quilt is ruled out.
func TestExactSkipsZeroProbabilitySecrets(t *testing.T) {
	class, _ := markov.NewFinite([]markov.Chain{theta1Chain()}, 5)
	score, err := ExactScore(class, 1, ExactOptions{MaxWidth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(score.Sigma, 1) || score.Sigma <= 0 {
		t.Errorf("σ = %v", score.Sigma)
	}
}

func TestChainQuiltCardN(t *testing.T) {
	T := 10
	cases := []struct {
		q    ChainQuilt
		i    int
		want int
	}{
		{ChainQuilt{}, 5, 10},          // trivial
		{ChainQuilt{A: 2, B: 3}, 5, 4}, // {X3, X8}: N = {X4..X7}
		{ChainQuilt{A: 2}, 8, 4},       // {X6}: N = {X7..X10}
		{ChainQuilt{B: 3}, 2, 4},       // {X5}: N = {X1..X4}
	}
	for _, c := range cases {
		if got := c.q.CardN(c.i, T); got != c.want {
			t.Errorf("CardN(%+v, i=%d) = %d, want %d", c.q, c.i, got, c.want)
		}
	}
}

func TestMQMExactRelease(t *testing.T) {
	chain := theta2Chain()
	T := 50
	class, _ := markov.NewFinite([]markov.Chain{chain}, T)
	rng := rand.New(rand.NewPCG(1, 2))
	data := chain.Sample(T, rng)
	rel, score, err := MQMExact(data, stateFreqQuery(T), class, 1, ExactOptions{MaxWidth: T}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Values) != 1 || rel.Mechanism != "MQMExact" {
		t.Errorf("release = %+v", rel)
	}
	if !floats.Eq(rel.NoiseScale, score.Sigma/float64(T), 1e-12) {
		t.Errorf("scale = %v, want σ/T = %v", rel.NoiseScale, score.Sigma/float64(T))
	}
}

func TestInvalidEpsilonRejected(t *testing.T) {
	class, _ := markov.NewFinite([]markov.Chain{theta1Chain()}, 10)
	for _, eps := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := ExactScore(class, eps, ExactOptions{}); err == nil {
			t.Errorf("ε=%v accepted by ExactScore", eps)
		}
		if _, err := ApproxScore(class, eps, ApproxOptions{}); err == nil {
			t.Errorf("ε=%v accepted by ApproxScore", eps)
		}
	}
}
