package core

import (
	"math/rand/v2"
	"testing"

	"pufferfish/internal/activity"
	"pufferfish/internal/markov"
	"pufferfish/internal/power"
)

// fingerprintSubstrates builds one class per experimental substrate:
// the Fig4 synthetic binary-interval grids, the three activity
// cohorts' empirical chains, and the k = 51 electricity chain.
func fingerprintSubstrates(t *testing.T) map[string]markov.Class {
	t.Helper()
	out := map[string]markov.Class{}

	for _, alpha := range []float64{0.1, 0.2, 0.3, 0.4} {
		class, err := markov.NewBinaryInterval(alpha, 1-alpha, 100)
		if err != nil {
			t.Fatal(err)
		}
		class.GridN = 5
		out["fig4_alpha_"+itoa(int(alpha*100))] = class
	}
	// Same interval, different grid resolution ⇒ different representative
	// chains ⇒ must fingerprint differently.
	coarse, err := markov.NewBinaryInterval(0.1, 0.9, 100)
	if err != nil {
		t.Fatal(err)
	}
	coarse.GridN = 3
	out["fig4_alpha_10_coarse"] = coarse
	// Same chains, different length.
	longer, err := markov.NewBinaryInterval(0.1, 0.9, 101)
	if err != nil {
		t.Fatal(err)
	}
	longer.GridN = 5
	out["fig4_alpha_10_T101"] = longer

	rng := rand.New(rand.NewPCG(91, 92))
	for _, g := range activity.Groups {
		profile := activity.DefaultProfile(g)
		profile.Participants = 3
		profile.SessionsPerPerson = 3
		ds, err := activity.Generate(profile, rng)
		if err != nil {
			t.Fatal(err)
		}
		chain, err := ds.EmpiricalChain(0.5)
		if err != nil {
			t.Fatal(err)
		}
		class, err := markov.NewSingleton(chain, ds.LongestSession())
		if err != nil {
			t.Fatal(err)
		}
		out["activity_"+g.String()] = class
	}

	series, err := power.DefaultHouse().Simulate(2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	powChain, err := power.EmpiricalChain(series, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	powClass, err := markov.NewSingleton(powChain, 2000)
	if err != nil {
		t.Fatal(err)
	}
	out["power"] = powClass
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestFingerprintCollisionSanity checks distinct classes get distinct
// fingerprints across all substrates, and that rebuilding the same
// class reproduces the same fingerprint.
func TestFingerprintCollisionSanity(t *testing.T) {
	classes := fingerprintSubstrates(t)
	seen := map[Fingerprint]string{}
	for name, class := range classes {
		fp := ClassFingerprint(class)
		if prev, ok := seen[fp]; ok {
			t.Fatalf("fingerprint collision: %s and %s both hash to %s", prev, name, fp)
		}
		seen[fp] = name
		if again := ClassFingerprint(class); again != fp {
			t.Fatalf("%s: fingerprint not deterministic: %s then %s", name, fp, again)
		}
	}
}

// TestFingerprintRebuildStable checks that structurally equal classes
// built independently share a fingerprint (the property the ScoreCache
// relies on), while a one-ulp perturbation changes it.
func TestFingerprintRebuildStable(t *testing.T) {
	build := func(p0 float64) markov.Class {
		chain, err := markov.BinaryChain(0.5, p0, 0.85).StationaryChain()
		if err != nil {
			t.Fatal(err)
		}
		class, err := markov.NewFinite([]markov.Chain{chain}, 200)
		if err != nil {
			t.Fatal(err)
		}
		return class
	}
	a, b := build(0.9), build(0.9)
	if ClassFingerprint(a) != ClassFingerprint(b) {
		t.Fatal("independently built equal classes disagree on fingerprint")
	}
	c := build(0.9 + 1e-12)
	if ClassFingerprint(a) == ClassFingerprint(c) {
		t.Fatal("perturbed class shares the fingerprint")
	}
}

// TestFingerprintDistinguishesSingletonInit checks the initial
// distribution participates in the hash.
func TestFingerprintDistinguishesSingletonInit(t *testing.T) {
	base := markov.BinaryChain(0.5, 0.8, 0.7)
	other := markov.BinaryChain(0.25, 0.8, 0.7)
	ca, err := markov.NewSingleton(base, 50)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := markov.NewSingleton(other, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ClassFingerprint(ca) == ClassFingerprint(cb) {
		t.Fatal("classes differing only in initial distribution share a fingerprint")
	}
	if ChainFingerprint(base) == ChainFingerprint(other) {
		t.Fatal("chains differing only in initial distribution share a fingerprint")
	}
}
