package core

import (
	"errors"
	"fmt"
	"math"

	"pufferfish/internal/dist"
)

// BeliefInstance exposes what Theorem 2.4 needs: for each secret
// s ∈ S and each distribution (the adversary's belief θ~ or a member
// of Θ), the conditional distribution of the database given the
// secret.
//
// Databases are identified abstractly by their position in a common
// finite support; the conditional distributions must share that
// support convention.
type BeliefInstance struct {
	// Secrets lists the secret set S.
	Secrets []Secret
	// ClassConditionals[t][s] is θ_t conditioned on Secrets[s], for
	// each θ_t ∈ Θ.
	ClassConditionals [][]dist.Discrete
	// BeliefConditionals[s] is the adversary's belief θ~ conditioned
	// on Secrets[s].
	BeliefConditionals []dist.Discrete
}

// RobustnessDelta computes
//
//	Δ = inf_{θ∈Θ} max_{s_i∈S} max( D∞(θ~|s_i ‖ θ|s_i), D∞(θ|s_i ‖ θ~|s_i) )
//
// from Theorem 2.4: an ε-Pufferfish mechanism for (S, Q, Θ) gives an
// adversary with belief θ~ ∉ Θ a guarantee of ε + 2Δ.
func RobustnessDelta(inst BeliefInstance) (float64, error) {
	if len(inst.Secrets) == 0 {
		return 0, errors.New("core: no secrets")
	}
	if len(inst.BeliefConditionals) != len(inst.Secrets) {
		return 0, fmt.Errorf("core: %d belief conditionals for %d secrets",
			len(inst.BeliefConditionals), len(inst.Secrets))
	}
	if len(inst.ClassConditionals) == 0 {
		return 0, errors.New("core: empty distribution class")
	}
	delta := math.Inf(1)
	for t, theta := range inst.ClassConditionals {
		if len(theta) != len(inst.Secrets) {
			return 0, fmt.Errorf("core: θ_%d has %d conditionals for %d secrets", t, len(theta), len(inst.Secrets))
		}
		worst := 0.0
		for s := range inst.Secrets {
			d := dist.SymMaxDivergence(inst.BeliefConditionals[s], theta[s])
			if d > worst {
				worst = d
			}
		}
		if worst < delta {
			delta = worst
		}
	}
	return delta, nil
}

// EffectiveEpsilon returns the privacy parameter ε + 2Δ that an
// ε-Pufferfish mechanism provides against an out-of-class adversary
// at distance Δ (Theorem 2.4).
func EffectiveEpsilon(eps, delta float64) float64 {
	return eps + 2*delta
}
