package core

import (
	"math/rand/v2"
	"testing"

	"pufferfish/internal/activity"
	"pufferfish/internal/markov"
)

// The scoring engine promises bit-for-bit identical results at every
// parallelism level. These golden tests pin that promise on the
// paper's substrates; running them under -race also certifies the
// worker fan-outs.

// parallelLevels exercises serial, a worker count above this
// container's CPU count, and the auto (all CPUs) setting.
var parallelLevels = []int{1, 4, 0}

func scoresIdentical(t *testing.T, label string, got, want ChainScore) {
	t.Helper()
	if got != want {
		t.Errorf("%s: parallel score %+v != serial %+v", label, got, want)
	}
}

func fig4Classes(t *testing.T) map[string]markov.Class {
	t.Helper()
	// The Figure 4 synthetic classes: binary-interval continuum classes
	// (all initial distributions, Appendix C.4 path) at two α, and a
	// stationary singleton (stationary-shortcut path).
	bi1, err := markov.NewBinaryInterval(0.2, 0.8, 60)
	if err != nil {
		t.Fatal(err)
	}
	bi1.GridN = 3
	bi2, err := markov.NewBinaryInterval(0.35, 0.65, 40)
	if err != nil {
		t.Fatal(err)
	}
	bi2.GridN = 4
	stat, err := markov.BinaryChain(0.5, 0.9, 0.85).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	single, err := markov.NewFinite([]markov.Chain{stat}, 300)
	if err != nil {
		t.Fatal(err)
	}
	// A non-stationary start forces the full node sweep.
	sweep, err := markov.NewFinite([]markov.Chain{markov.BinaryChain(0.9, 0.8, 0.7)}, 120)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]markov.Class{
		"interval(0.2,0.8)":   bi1,
		"interval(0.35,0.65)": bi2,
		"stationary":          single,
		"fullsweep":           sweep,
	}
}

func TestExactScoreParallelGolden(t *testing.T) {
	for name, class := range fig4Classes(t) {
		serial, err := ExactScore(class, 1, ExactOptions{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, par := range parallelLevels[1:] {
			got, err := ExactScore(class, 1, ExactOptions{Parallelism: par})
			if err != nil {
				t.Fatalf("%s par=%d: %v", name, par, err)
			}
			scoresIdentical(t, name, got, serial)
		}
		// The forced full sweep must agree with itself across levels too.
		serialSweep, err := ExactScore(class, 1, ExactOptions{ForceFullSweep: true, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gotSweep, err := ExactScore(class, 1, ExactOptions{ForceFullSweep: true, Parallelism: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		scoresIdentical(t, name+"/forced", gotSweep, serialSweep)
	}
}

func TestApproxScoreParallelGolden(t *testing.T) {
	for name, class := range fig4Classes(t) {
		for _, force := range []bool{false, true} {
			serial, err := ApproxScore(class, 1, ApproxOptions{ForceFullSweep: force, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s force=%v: %v", name, force, err)
			}
			for _, par := range parallelLevels[1:] {
				got, err := ApproxScore(class, 1, ApproxOptions{ForceFullSweep: force, Parallelism: par})
				if err != nil {
					t.Fatalf("%s force=%v par=%d: %v", name, force, par, err)
				}
				scoresIdentical(t, name, got, serial)
			}
		}
	}
}

func TestWassersteinScaleParallelGoldenChain(t *testing.T) {
	class, err := markov.NewFinite([]markov.Chain{
		markov.BinaryChain(0.5, 0.9, 0.9),
		markov.BinaryChain(0.3, 0.7, 0.6),
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	serialInst := ChainCountInstance{Class: class, W: []int{0, 1}, Parallelism: 1}
	wSerial, worstSerial, err := WassersteinScaleOpt(serialInst, WassersteinOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range parallelLevels[1:] {
		inst := ChainCountInstance{Class: class, W: []int{0, 1}, Parallelism: par}
		w, worst, err := WassersteinScaleOpt(inst, WassersteinOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if w != wSerial || worst.Label != worstSerial.Label {
			t.Errorf("par=%d: (W=%v, worst=%q) != serial (W=%v, worst=%q)",
				par, w, worst.Label, wSerial, worstSerial.Label)
		}
	}
}

func TestExactScoreMultiParallelGoldenActivity(t *testing.T) {
	// A shrunken activity cohort: the multi-length scoring path the
	// Table 1 experiments use.
	rng := rand.New(rand.NewPCG(5, 6))
	profile := activity.DefaultProfile(activity.Active)
	profile.Participants = 3
	profile.SessionsPerPerson = 4
	ds, err := activity.Generate(profile, rng)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := ds.EmpiricalChain(0.5)
	if err != nil {
		t.Fatal(err)
	}
	class, err := markov.NewSingleton(chain, ds.LongestSession())
	if err != nil {
		t.Fatal(err)
	}
	var lengths []int
	for _, p := range ds.People {
		for _, s := range p.Sessions {
			lengths = append(lengths, len(s))
		}
	}
	serialExact, err := ExactScoreMulti(class, 1, ExactOptions{Parallelism: 1}, lengths)
	if err != nil {
		t.Fatal(err)
	}
	serialApprox, err := ApproxScoreMulti(class, 1, ApproxOptions{Parallelism: 1}, lengths)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range parallelLevels[1:] {
		gotE, err := ExactScoreMulti(class, 1, ExactOptions{Parallelism: par}, lengths)
		if err != nil {
			t.Fatal(err)
		}
		scoresIdentical(t, "activity/exact", gotE, serialExact)
		gotA, err := ApproxScoreMulti(class, 1, ApproxOptions{Parallelism: par}, lengths)
		if err != nil {
			t.Fatal(err)
		}
		scoresIdentical(t, "activity/approx", gotA, serialApprox)
	}
}

func TestConditionalPairsDeterministicOrder(t *testing.T) {
	class, err := markov.NewFinite([]markov.Chain{markov.BinaryChain(0.5, 0.8, 0.7)}, 6)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ChainCountInstance{Class: class, W: []int{0, 1}, Parallelism: 1}.ConditionalPairs()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ChainCountInstance{Class: class, W: []int{0, 1}, Parallelism: 4}.ConditionalPairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("pair counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Label != parallel[i].Label {
			t.Errorf("pair %d: %q vs %q", i, serial[i].Label, parallel[i].Label)
		}
	}
}
