package core

import (
	"errors"
	"fmt"

	"pufferfish/internal/bayes"
	"pufferfish/internal/dist"
)

// NetworkSubstrate adapts a class of tree/polytree Bayesian networks
// to the Substrate interface: Θ is the network list, the positions are
// the network's nodes, and the conditional count distributions come
// from the exact sum-augmented message passing of bayes.CountDistGiven
// — so the count-distribution → W∞ → noise pipeline, the ScoreCache,
// and the accountants all work on correlated data whose structure is a
// polytree rather than a chain.
type NetworkSubstrate struct {
	nets []*bayes.Network
	k, n int
	// margs[θ][node] is the node's marginal under network θ, computed
	// once at construction; SecretPairs uses it for the Definition 2.1
	// positive-probability filter.
	margs [][][]float64
}

// NewNetworkSubstrate validates the class — at least one network, all
// with the same node count and one shared cardinality ≥ 2, each a
// polytree — and precomputes every marginal.
func NewNetworkSubstrate(nets []*bayes.Network) (*NetworkSubstrate, error) {
	if len(nets) == 0 {
		return nil, errors.New("core: network substrate needs at least one network")
	}
	n := nets[0].N()
	k := nets[0].Card(0)
	if k < 2 {
		return nil, fmt.Errorf("core: network substrate needs cardinality ≥ 2, got %d", k)
	}
	margs := make([][][]float64, len(nets))
	for ti, nw := range nets {
		if nw.N() != n {
			return nil, fmt.Errorf("core: network %d has %d nodes, want %d", ti, nw.N(), n)
		}
		for i := 0; i < n; i++ {
			if nw.Card(i) != k {
				return nil, fmt.Errorf("core: network %d node %d has cardinality %d, want %d", ti, i, nw.Card(i), k)
			}
		}
		m, err := nw.MarginalsMP()
		if err != nil {
			return nil, fmt.Errorf("core: network %d: %w", ti, err)
		}
		margs[ti] = m
	}
	return &NetworkSubstrate{nets: nets, k: k, n: n, margs: margs}, nil
}

// Kind implements Substrate.
func (s *NetworkSubstrate) Kind() string { return SubstrateNetwork }

// K implements Substrate.
func (s *NetworkSubstrate) K() int { return s.k }

// Len implements Substrate: the node count.
func (s *NetworkSubstrate) Len() int { return s.n }

// Networks returns the wrapped network class (not a copy; treat as
// read-only).
func (s *NetworkSubstrate) Networks() []*bayes.Network { return s.nets }

// SecretPairs implements Substrate with the same canonical order as
// the chain substrate: θ-major, then position 1…n, then value pairs
// (a, b), a < b, both with positive marginal probability.
func (s *NetworkSubstrate) SecretPairs() ([]SecretSpec, error) {
	nSpecs := 0
	for ti := range s.nets {
		marg := s.margs[ti]
		for i := 1; i <= s.n; i++ {
			for a := 0; a < s.k; a++ {
				if marg[i-1][a] <= 0 {
					continue
				}
				for b := a + 1; b < s.k; b++ {
					if marg[i-1][b] > 0 {
						nSpecs++
					}
				}
			}
		}
	}
	specs := make([]SecretSpec, 0, nSpecs)
	for ti := range s.nets {
		marg := s.margs[ti]
		for i := 1; i <= s.n; i++ {
			for a := 0; a < s.k; a++ {
				if marg[i-1][a] <= 0 {
					continue
				}
				for b := a + 1; b < s.k; b++ {
					if marg[i-1][b] <= 0 {
						continue
					}
					specs = append(specs, SecretSpec{Theta: ti, Pos: i, A: a, B: b})
				}
			}
		}
	}
	return specs, nil
}

// CountDistGiven implements Substrate by the network's sum-augmented
// message passing, translating the substrate's 1-based position (0 =
// unconditioned) to the network's 0-based node index (−1 =
// unconditioned).
func (s *NetworkSubstrate) CountDistGiven(theta int, w []int, pos, val int) (dist.Discrete, error) {
	if theta < 0 || theta >= len(s.nets) {
		return dist.Discrete{}, fmt.Errorf("core: θ index %d outside [0,%d)", theta, len(s.nets))
	}
	return s.nets[theta].CountDistGiven(w, pos-1, val)
}

// WriteFingerprint implements Substrate: the shared cardinality, the
// node count, the network count, then each network's structure and
// parameters — per node the parent list and the full CPT, in node
// order. Node names are display-only and excluded; scores cannot
// depend on them.
func (s *NetworkSubstrate) WriteFingerprint(w FingerprintWriter) {
	w.Word(uint64(s.k))
	w.Word(uint64(s.n))
	w.Word(uint64(len(s.nets)))
	for _, nw := range s.nets {
		for i := 0; i < nw.N(); i++ {
			parents := nw.Parents(i)
			w.Word(uint64(len(parents)))
			for _, p := range parents {
				w.Word(uint64(p))
			}
			w.Floats(nw.CPT(i))
		}
	}
}
