package core
