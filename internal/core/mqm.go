package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pufferfish/internal/markov"
	"pufferfish/internal/query"
)

// ChainQuilt identifies a Markov quilt from the Lemma 4.6 family for a
// protected node X_i in a chain of length T:
//
//	A > 0, B > 0: X_Q = {X_{i−A}, X_{i+B}}, X_N = {X_{i−A+1} … X_{i+B−1}}
//	A > 0, B = 0: X_Q = {X_{i−A}},          X_N = {X_{i−A+1} … X_T}
//	A = 0, B > 0: X_Q = {X_{i+B}},          X_N = {X_1 … X_{i+B−1}}
//	A = B = 0:    the trivial quilt,         X_N = all of X
//
// Lemma 4.6 proves searching this family loses nothing.
type ChainQuilt struct {
	A, B int
}

// Trivial reports whether this is the empty quilt.
func (q ChainQuilt) Trivial() bool { return q.A == 0 && q.B == 0 }

// CardN returns card(X_N) for the quilt protecting node i (1-based)
// in a chain of length T.
func (q ChainQuilt) CardN(i, T int) int {
	switch {
	case q.Trivial():
		return T
	case q.A > 0 && q.B > 0:
		return q.A + q.B - 1
	case q.A > 0:
		return T - i + q.A
	default:
		return i + q.B - 1
	}
}

// String renders the quilt in the paper's notation.
func (q ChainQuilt) String() string {
	switch {
	case q.Trivial():
		return "∅"
	case q.A > 0 && q.B > 0:
		return fmt.Sprintf("{X_{i-%d}, X_{i+%d}}", q.A, q.B)
	case q.A > 0:
		return fmt.Sprintf("{X_{i-%d}}", q.A)
	default:
		return fmt.Sprintf("{X_{i+%d}}", q.B)
	}
}

// ChainScore is the outcome of a noise-scale computation for a chain
// class: the Laplace scale of the release is Lipschitz·Sigma.
type ChainScore struct {
	// Sigma is σ_max.
	Sigma float64
	// Node is the 1-based node achieving σ_max.
	Node int
	// Quilt is the active quilt (Definition 4.5) at that node.
	Quilt ChainQuilt
	// Influence is the max-influence (or its upper bound, for
	// MQMApprox) of the active quilt.
	Influence float64
	// Ell is the quilt-width limit ℓ actually used.
	Ell int
}

// quiltScore turns an influence into the Algorithm 2–4 score
// card(X_N)/(ε − e), or +Inf when e ≥ ε.
func quiltScore(cardN int, influence, eps float64) float64 {
	if influence >= eps || math.IsInf(influence, 1) || math.IsNaN(influence) {
		return math.Inf(1)
	}
	return float64(cardN) / (eps - influence)
}

// releaseWithScore evaluates q on data and adds L·σ·Lap(1) noise per
// coordinate — the shared release step of Algorithms 2–4 with the
// Section 4.2 vector-valued extension.
func releaseWithScore(data []int, q query.Query, score ChainScore, eps float64, mech string, rng *rand.Rand) (Release, error) {
	exact, err := q.Evaluate(data)
	if err != nil {
		return Release{}, err
	}
	scale := q.Lipschitz() * score.Sigma
	if err := ValidateNoiseScale(scale, score.Sigma, eps); err != nil {
		return Release{}, err
	}
	return Release{
		Values:     addLaplace(exact, scale, rng),
		NoiseScale: scale,
		Sigma:      score.Sigma,
		Epsilon:    eps,
		Mechanism:  mech,
	}, nil
}

// ValidateNoiseScale rejects a Laplace scale no release may use:
// laplace.New panics on non-positive or non-finite scales by contract
// ("always a caller bug"), so every release path — the mechanisms here
// and release.Finish — funnels through this one guard before drawing
// noise. A σ that overflowed (tiny ε on a long chain) therefore
// surfaces as an error, never a panic.
func ValidateNoiseScale(scale, sigma, eps float64) error {
	if !(scale > 0) || math.IsInf(scale, 1) {
		return fmt.Errorf("core: noise scale %v is not positive finite (σ = %v at ε = %v)", scale, sigma, eps)
	}
	return nil
}

// validateChainClass performs the shared sanity checks of the chain
// mechanisms.
func validateChainClass(class markov.Class, eps float64) error {
	if err := checkEpsilon(eps); err != nil {
		return err
	}
	if class == nil {
		return fmt.Errorf("core: nil distribution class")
	}
	if class.T() < 1 {
		return fmt.Errorf("core: chain length %d < 1", class.T())
	}
	return nil
}
