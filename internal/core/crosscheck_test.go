package core

import (
	"math"
	"testing"

	"pufferfish/internal/activity"
	"pufferfish/internal/bayes"
	"pufferfish/internal/markov"
)

// chainQuiltSets builds, for every node of a chain-shaped network, the
// explicit Lemma 4.6 candidate family the chain-specialized scorer
// sweeps: left-only quilts {X_{i−a}}, two-sided quilts
// {X_{i−a}, X_{i+b}}, and right-only quilts {X_{i+b}} (indices
// 0-based; the trivial quilt is added by the instantiation).
func chainQuiltSets(t *testing.T, nw *bayes.Network) [][]bayes.Quilt {
	t.Helper()
	T := nw.N()
	sets := make([][]bayes.Quilt, T)
	for i := 0; i < T; i++ {
		var qs []bayes.Quilt
		add := func(q []int) {
			quilt, err := nw.QuiltFor(i, q)
			if err != nil {
				t.Fatalf("QuiltFor(%d, %v): %v", i, q, err)
			}
			qs = append(qs, quilt)
		}
		for a := 1; a <= i; a++ {
			add([]int{i - a})
			for b := 1; i+b < T; b++ {
				add([]int{i - a, i + b})
			}
		}
		for b := 1; i+b < T; b++ {
			add([]int{i + b})
		}
		sets[i] = qs
	}
	return sets
}

// crossCheckClass scores one chain class both ways — the specialized
// MQMExact sweep (log-domain kernel dynamic programs) and the generic
// Algorithm 2 over the FromChain networks with the same quilt family
// (joint-enumeration max-influences) — and requires the σ_max values
// to agree to floating-point accuracy. This is the golden cross-check
// promised in bayes.FromChain's contract.
func crossCheckClass(t *testing.T, name string, class markov.Class, epsilons []float64) {
	t.Helper()
	T := class.T()
	chains := class.Chains()
	nets := make([]*bayes.Network, len(chains))
	for ti, theta := range chains {
		nw, err := bayes.FromChain(theta, T)
		if err != nil {
			t.Fatalf("%s: FromChain θ%d: %v", name, ti, err)
		}
		nets[ti] = nw
	}
	inst := &BayesInstantiation{Networks: nets, QuiltSets: chainQuiltSets(t, nets[0])}
	for _, eps := range epsilons {
		exact, err := ExactScore(class, eps, ExactOptions{MaxWidth: T, ForceFullSweep: true, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s ε=%v: ExactScore: %v", name, eps, err)
		}
		detail, err := QuiltScoreBayes(inst, eps)
		if err != nil {
			t.Fatalf("%s ε=%v: QuiltScoreBayes: %v", name, eps, err)
		}
		if rel := math.Abs(detail.Sigma-exact.Sigma) / exact.Sigma; rel > 1e-9 {
			t.Errorf("%s ε=%v: generic σ_max %v vs chain-specialized %v (rel %v)",
				name, eps, detail.Sigma, exact.Sigma, rel)
		}
		// The active quilt's nearby-set cardinality must reconstruct the
		// generic score from its own influence — a structural sanity
		// check that the agreement is not coincidental.
		if want := float64(detail.Active.CardN()) / (eps - detail.Influence); math.Abs(want-detail.Sigma) > 1e-9*detail.Sigma {
			t.Errorf("%s ε=%v: detail inconsistent: card %d, influence %v, σ %v",
				name, eps, detail.Active.CardN(), detail.Influence, detail.Sigma)
		}
	}
}

// TestGenericQuiltMatchesMQMExactFig4: the Figure 4 synthetic binary
// substrate — the gridded interval of two-state chains — scored as
// Bayesian networks through Algorithm 2 agrees with the
// chain-specialized Algorithm 3. The grid is wrapped in a Finite class
// (not BinaryInterval itself) because a network fixes its root's
// initial distribution, while BinaryInterval pairs every transition
// matrix with *all* initial distributions (Appendix C.4): the two
// scorers must see the same Θ for the σ values to be comparable.
func TestGenericQuiltMatchesMQMExactFig4(t *testing.T) {
	grid := (&markov.BinaryInterval{Alpha: 0.2, Beta: 0.8, Len: 8, GridN: 3}).Chains()
	class, err := markov.NewFinite(grid, 8)
	if err != nil {
		t.Fatal(err)
	}
	crossCheckClass(t, "fig4", class, []float64{0.5, 1, 5})
}

// TestGenericQuiltMatchesMQMExactActivity: the Section 5.3 activity
// substrate (four-state cohort chain, singleton class) agrees across
// the two scorers at a length small enough for joint enumeration.
func TestGenericQuiltMatchesMQMExactActivity(t *testing.T) {
	chain, err := activity.DefaultProfile(activity.Cyclists).TrueChain()
	if err != nil {
		t.Fatal(err)
	}
	class, err := markov.NewSingleton(chain, 5)
	if err != nil {
		t.Fatal(err)
	}
	crossCheckClass(t, "activity", class, []float64{1, 3})
}
