package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
)

// TestMultiEqualsMaxOverSingletons: the multi-length score must equal
// the brute-force max of per-length scores.
func TestMultiEqualsMaxOverSingletons(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 131))
		chain, err := markov.BinaryChain(0.5, 0.3+0.5*r.Float64(), 0.3+0.5*r.Float64()).StationaryChain()
		if err != nil {
			return false
		}
		nLens := 2 + r.IntN(4)
		lengths := make([]int, nLens)
		for i := range lengths {
			lengths[i] = 3 + r.IntN(60)
		}
		eps := 0.5 + 2*r.Float64()
		class, err := markov.NewFinite([]markov.Chain{chain}, lengths[0])
		if err != nil {
			return false
		}
		multi, err := ExactScoreMulti(class, eps, ExactOptions{}, lengths)
		if err != nil {
			return false
		}
		brute := 0.0
		for _, l := range lengths {
			lc, err := markov.NewFinite([]markov.Chain{chain}, l)
			if err != nil {
				return false
			}
			sc, err := ExactScore(lc, eps, ExactOptions{})
			if err != nil {
				return false
			}
			if sc.Sigma > brute {
				brute = sc.Sigma
			}
		}
		return floats.Eq(multi.Sigma, brute, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSigmaLengthHump documents why multi-length scoring exists: σ(T)
// need not peak at the longest chain. We assert only the safe
// direction — the multi score is at least the longest-chain score.
func TestSigmaLengthHump(t *testing.T) {
	chain, err := markov.BinaryChain(0.5, 0.9, 0.85).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	lengths := []int{5, 10, 20, 40, 80, 160, 320, 640}
	class, err := markov.NewFinite([]markov.Chain{chain}, 640)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1.0
	multi, err := ExactScoreMulti(class, eps, ExactOptions{}, lengths)
	if err != nil {
		t.Fatal(err)
	}
	longest, err := ExactScore(class, eps, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Sigma < longest.Sigma-1e-9 {
		t.Errorf("multi σ %v below longest-chain σ %v", multi.Sigma, longest.Sigma)
	}
}

// TestApproxMultiEqualsMaxOverSingletons mirrors the exact test for
// Algorithm 4.
func TestApproxMultiEqualsMaxOverSingletons(t *testing.T) {
	chain, err := markov.BinaryChain(0.5, 0.8, 0.7).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	lengths := []int{12, 25, 60, 200, 900}
	class, err := markov.NewFinite([]markov.Chain{chain}, 900)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1.0
	multi, err := ApproxScoreMulti(class, eps, ApproxOptions{}, lengths)
	if err != nil {
		t.Fatal(err)
	}
	brute := 0.0
	for _, l := range lengths {
		lc, _ := markov.NewFinite([]markov.Chain{chain}, l)
		sc, err := ApproxScore(lc, eps, ApproxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if sc.Sigma > brute {
			brute = sc.Sigma
		}
	}
	if !floats.Eq(multi.Sigma, brute, 1e-9) {
		t.Errorf("multi %v vs brute %v", multi.Sigma, brute)
	}
}

func TestMultiValidation(t *testing.T) {
	chain := markov.BinaryChain(0.5, 0.8, 0.7)
	class, _ := markov.NewFinite([]markov.Chain{chain}, 10)
	if _, err := ExactScoreMulti(class, 1, ExactOptions{}, nil); err == nil {
		t.Error("empty lengths accepted")
	}
	if _, err := ExactScoreMulti(class, 1, ExactOptions{}, []int{5, 0}); err == nil {
		t.Error("zero length accepted")
	}
}
