package core

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
	"pufferfish/internal/query"
)

func TestGK16IndependentChainIsEntryDP(t *testing.T) {
	// Identical rows ⇒ X_{t+1} independent of X_t ⇒ zero influence ⇒
	// the mechanism reduces to entry-DP: σ = 1/ε.
	c := markov.BinaryChain(0.3, 0.7, 0.3) // both rows [0.7, 0.3]
	class, err := markov.NewFinite([]markov.Chain{c}, 50)
	if err != nil {
		t.Fatal(err)
	}
	score, err := GK16SigmaClass(class, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(score.Sigma, 0.5, 1e-9) {
		t.Errorf("σ = %v, want 1/ε = 0.5", score.Sigma)
	}
	if score.ForwardInfluence > 1e-12 || score.SpectralNorm > 1e-9 {
		t.Errorf("influences should vanish: %+v", score)
	}
}

func TestGK16InapplicableWhenStronglyCorrelated(t *testing.T) {
	// γ_f = ½·log(0.95/0.05) ≈ 1.47 > 1 ⇒ ‖Γ‖₂ > 1 ⇒ N/A.
	c := markov.BinaryChain(0.5, 0.95, 0.95)
	class, _ := markov.NewFinite([]markov.Chain{c}, 100)
	_, err := GK16SigmaClass(class, 1)
	if err == nil {
		t.Fatal("strongly correlated chain accepted")
	}
	if !errors.Is(err, ErrGK16Inapplicable) {
		t.Errorf("error not wrapped as inapplicable: %v", err)
	}
}

func TestGK16InapplicableOnZeroTransitions(t *testing.T) {
	// Zero transition probability ⇒ unbounded local influence ⇒ N/A.
	// This is exactly why GK16 fails on the empirical real-data chains
	// (Tables 1 and 3).
	c := markov.MustNew([]float64{0.5, 0.5}, matrix.FromRows([][]float64{{1, 0}, {0.5, 0.5}}))
	class, _ := markov.NewFinite([]markov.Chain{c}, 100)
	if _, err := GK16SigmaClass(class, 1); !errors.Is(err, ErrGK16Inapplicable) {
		t.Errorf("want ErrGK16Inapplicable, got %v", err)
	}
}

// TestGK16ThresholdInAlpha locates the applicability threshold for the
// synthetic class Θ = [α, 1−α] (the dashed vertical line of Figure 4):
// the worst chain has γ_f = γ_b = ½·log((1−α)/α), so the Toeplitz
// spectral norm crosses 1 near α = 1/(1+e) ≈ 0.269, independently of ε.
func TestGK16ThresholdInAlpha(t *testing.T) {
	applies := func(alpha, eps float64) bool {
		b, err := markov.NewBinaryInterval(alpha, 1-alpha, 100)
		if err != nil {
			t.Fatal(err)
		}
		b.GridN = 9
		_, err = GK16SigmaClass(b, eps)
		return err == nil
	}
	for _, eps := range []float64{0.2, 1, 5} {
		if applies(0.2, eps) {
			t.Errorf("ε=%v: α=0.2 should be inapplicable", eps)
		}
		if !applies(0.35, eps) {
			t.Errorf("ε=%v: α=0.35 should be applicable", eps)
		}
	}
}

func TestGK16SigmaDecreasesWithAlpha(t *testing.T) {
	// Weaker correlation (α → 0.5) needs less noise.
	var prev float64 = math.Inf(1)
	for _, alpha := range []float64{0.3, 0.35, 0.4, 0.45} {
		b, err := markov.NewBinaryInterval(alpha, 1-alpha, 100)
		if err != nil {
			t.Fatal(err)
		}
		b.GridN = 9
		score, err := GK16SigmaClass(b, 1)
		if err != nil {
			t.Fatalf("α=%v: %v", alpha, err)
		}
		if score.Sigma > prev+1e-9 {
			t.Errorf("σ increased from %v to %v at α=%v", prev, score.Sigma, alpha)
		}
		prev = score.Sigma
	}
}

func TestGK16LargeTUsesToeplitzLimit(t *testing.T) {
	c := markov.BinaryChain(0.5, 0.6, 0.6)
	small, _ := markov.NewFinite([]markov.Chain{c}, 2000)
	big, _ := markov.NewFinite([]markov.Chain{c}, 100000)
	s1, err := GK16SigmaClass(small, 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := GK16SigmaClass(big, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The spectral norms agree to the window accuracy, and the noise
	// multiplier stabilizes with T.
	if !floats.Eq(s1.SpectralNorm, s2.SpectralNorm, 1e-4) {
		t.Errorf("spectral norms diverge: %v vs %v", s1.SpectralNorm, s2.SpectralNorm)
	}
	if !floats.Eq(s1.Sigma, s2.Sigma, 1e-3) {
		t.Errorf("σ diverges with T: %v vs %v", s1.Sigma, s2.Sigma)
	}
}

func TestGK16Release(t *testing.T) {
	c := markov.BinaryChain(0.5, 0.6, 0.55)
	T := 200
	class, _ := markov.NewFinite([]markov.Chain{c}, T)
	rng := rand.New(rand.NewPCG(11, 12))
	data := c.Sample(T, rng)
	rel, score, err := GK16Release(data, query.StateFrequency{State: 1, N: T}, class, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Mechanism != "GK16" || !floats.Eq(rel.NoiseScale, score.Sigma/float64(T), 1e-12) {
		t.Errorf("release = %+v score = %+v", rel, score)
	}
}

func TestGroupDPAndLaplaceDP(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	data := []int{0, 1, 1, 0}
	q := query.Histogram{K: 2}
	rel, err := LaplaceDP(data, q, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NoiseScale != 2 { // L/ε = 2/1
		t.Errorf("DP scale = %v, want 2", rel.NoiseScale)
	}
	grel, err := GroupDP(data, q, 4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if grel.NoiseScale != 8 { // M·L/ε
		t.Errorf("GroupDP scale = %v, want 8", grel.NoiseScale)
	}
	if _, err := GroupDP(data, q, 0, 1, rng); err == nil {
		t.Error("group size 0 accepted")
	}
	sigma, err := GroupDPSigma(10, 2)
	if err != nil || sigma != 5 {
		t.Errorf("GroupDPSigma = %v, %v", sigma, err)
	}
	// Expected-error closed form: k·scale.
	if MeanLaplaceAbsError(51, 2) != 102 {
		t.Error("MeanLaplaceAbsError wrong")
	}
}
