package core

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"pufferfish/internal/bayes"
	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
	"pufferfish/internal/query"
	"pufferfish/internal/sched"
)

func TestChainQuiltString(t *testing.T) {
	cases := map[string]ChainQuilt{
		"∅":                  {},
		"{X_{i-2}, X_{i+3}}": {A: 2, B: 3},
		"{X_{i-4}}":          {A: 4},
		"{X_{i+5}}":          {B: 5},
	}
	for want, q := range cases {
		if got := q.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", q, got, want)
		}
	}
}

func TestAllValuePairs(t *testing.T) {
	pairs := AllValuePairs(2, 3)
	// 2 records × C(3,2) = 6 pairs.
	if len(pairs) != 6 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	if pairs[0].A.Index != 1 || pairs[0].A.Value != 0 || pairs[0].B.Value != 1 {
		t.Errorf("first pair = %+v", pairs[0])
	}
}

func TestMQMApproxRelease(t *testing.T) {
	chain, err := markov.BinaryChain(0.5, 0.8, 0.75).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	T := 3000
	class, err := markov.NewFinite([]markov.Chain{chain}, T)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(91, 92))
	data := chain.Sample(T, rng)
	rel, score, err := MQMApprox(data, query.StateFrequency{State: 1, N: T}, class, 1, ApproxOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Mechanism != "MQMApprox" || !(score.Sigma > 0) {
		t.Errorf("rel=%+v score=%+v", rel, score)
	}
	// Inapplicable regime: ε so small that even the trivial quilt's
	// score is the only finite one — the release must still work
	// (trivial quilt always applies), so instead test the hard error
	// path via an unmixable class.
	per := markov.MustNew([]float64{0.5, 0.5}, chain.P)
	_ = per
}

func TestQuiltSetCustomAndValidation(t *testing.T) {
	chain := markov.BinaryChain(0.6, 0.85, 0.7)
	nw, err := bayes.FromChain(chain, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Custom quilt sets missing the trivial quilt: it must be added.
	q1, err := nw.QuiltFor(1, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	sets := make([][]bayes.Quilt, 4)
	sets[1] = []bayes.Quilt{q1}
	for i := 0; i < 4; i++ {
		if i != 1 {
			sets[i] = []bayes.Quilt{nw.TrivialQuilt(i)}
		}
	}
	inst := &BayesInstantiation{Networks: []*bayes.Network{nw}, QuiltSets: sets}
	detail, err := QuiltScoreBayes(inst, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(detail.Sigma, 1) {
		t.Error("custom quilt sets should be feasible")
	}
	// Wrong-node quilt rejected.
	bad := make([][]bayes.Quilt, 4)
	bad[0] = []bayes.Quilt{q1} // q1 protects node 1, not 0
	for i := 1; i < 4; i++ {
		bad[i] = []bayes.Quilt{nw.TrivialQuilt(i)}
	}
	if _, err := QuiltScoreBayes(&BayesInstantiation{Networks: []*bayes.Network{nw}, QuiltSets: bad}, 8); err == nil {
		t.Error("wrong-node quilt accepted")
	}
	// Mismatched quilt-set length rejected.
	if _, err := QuiltScoreBayes(&BayesInstantiation{
		Networks:  []*bayes.Network{nw},
		QuiltSets: make([][]bayes.Quilt, 2),
	}, 8); err == nil {
		t.Error("short quilt sets accepted")
	}
	// Structural mismatch across Θ rejected.
	nw3, err := bayes.FromChain(chain, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QuiltScoreBayes(&BayesInstantiation{Networks: []*bayes.Network{nw, nw3}}, 8); err == nil {
		t.Error("mismatched networks accepted")
	}
}

func TestMarkovQuiltMechanismRelease(t *testing.T) {
	chain := markov.BinaryChain(0.6, 0.85, 0.7)
	nw, err := bayes.FromChain(chain, 4)
	if err != nil {
		t.Fatal(err)
	}
	inst := &BayesInstantiation{Networks: []*bayes.Network{nw}}
	rng := rand.New(rand.NewPCG(93, 94))
	rel, detail, err := MarkovQuiltMechanism([]float64{1, 2}, 0.5, inst, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Values) != 2 || rel.Mechanism != "MarkovQuilt" {
		t.Errorf("rel = %+v", rel)
	}
	if !floats.Eq(rel.NoiseScale, 0.5*detail.Sigma, 1e-12) {
		t.Errorf("scale %v != L·σ %v", rel.NoiseScale, 0.5*detail.Sigma)
	}
	if _, _, err := MarkovQuiltMechanism([]float64{1}, 0, inst, 8, rng); err == nil {
		t.Error("zero Lipschitz accepted")
	}
}

func TestApproxCompositionInPackage(t *testing.T) {
	chain, err := markov.BinaryChain(0.5, 0.8, 0.8).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	class, err := markov.NewFinite([]markov.Chain{chain}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	comp := NewApproxComposition(class)
	rng := rand.New(rand.NewPCG(95, 96))
	data := chain.Sample(2000, rng)
	q := query.StateFrequency{State: 1, N: 2000}
	if _, err := comp.Release(data, q, 1, rng); err != nil {
		t.Fatal(err)
	}
	if comp.TotalEpsilon() != 1 || comp.Count() != 1 {
		t.Error("accounting wrong")
	}
	// Empty composition edge cases.
	empty := NewApproxComposition(class)
	if empty.TotalEpsilon() != 0 {
		t.Error("empty TotalEpsilon != 0")
	}
	if _, err := (&Composition{}).Release(data, q, 1, rng); err == nil {
		t.Error("class-less composition accepted")
	}
}

func TestLogRatioConventions(t *testing.T) {
	if !math.IsInf(logRatio(0.5, 0), 1) {
		t.Error("p>0,q=0 should be +Inf")
	}
	if !math.IsInf(logRatio(0, 0.5), -1) {
		t.Error("p=0 should be -Inf")
	}
	if !floats.Eq(logRatio(2, 1), math.Ln2, 1e-12) {
		t.Error("plain ratio wrong")
	}
}

func TestTerm1AllInitsFirstNode(t *testing.T) {
	// Under Appendix C.4 (all initial distributions), node 1's
	// marginal is the free q itself: the supremum is +Inf.
	chain := markov.BinaryChain(0.5, 0.8, 0.7)
	sc := newExactScorer(chain, 5, 2, 4, true, sched.New(1), newPowerCacheSet())
	v, ok := sc.term1(1, 0, 1)
	if !ok || !math.IsInf(v, 1) {
		t.Errorf("term1 = %v ok=%v, want +Inf true", v, ok)
	}
}

func TestGroupDPSigmaErrors(t *testing.T) {
	if _, err := GroupDPSigma(3, 0); err == nil {
		t.Error("ε=0 accepted")
	}
	if _, err := GroupDPSigma(0, 1); err == nil {
		t.Error("group size 0 accepted")
	}
}

func TestUtilityBoundErrors(t *testing.T) {
	per := markov.MustNew([]float64{0.5, 0.5}, markov.BinaryChain(0.5, 0.5, 0.5).P)
	class, err := markov.NewFinite([]markov.Chain{per}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UtilityBound(class, 0); err == nil {
		t.Error("ε=0 accepted")
	}
	if _, err := UtilityBound(nil, 1); err == nil {
		t.Error("nil class accepted")
	}
}

func TestReleaseStringFields(t *testing.T) {
	// Release is the wire format of every mechanism; ensure its quilt
	// strings render into diagnostics without surprises.
	var b strings.Builder
	b.WriteString(ChainQuilt{A: 1, B: 1}.String())
	if !strings.Contains(b.String(), "X_{i-1}") {
		t.Error("quilt rendering wrong")
	}
}
