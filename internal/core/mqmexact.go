package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
	"pufferfish/internal/query"
	"pufferfish/internal/sched"
)

// ExactOptions tunes Algorithm 3 (MQMExact).
type ExactOptions struct {
	// MaxWidth is the quilt-size limit ℓ: only quilts with
	// card(X_N) ≤ ℓ are searched (plus the trivial quilt). Zero picks
	// ℓ automatically — the full chain when T is small, otherwise the
	// optimal MQMApprox quilt width, which is the paper's choice for
	// the real-data experiments (Section 5.3).
	MaxWidth int
	// ForceFullSweep disables the stationary-initial-distribution
	// shortcut (Section 4.4.1's observation that the max-influence is
	// then independent of i) even when it applies. Used by the
	// ablation benchmarks and correctness tests.
	ForceFullSweep bool
	// Parallelism bounds the worker count of the scoring sweeps: 0
	// uses every CPU, 1 runs strictly serial, n > 1 uses up to n
	// workers. The score is bit-for-bit identical at every setting —
	// the engine only performs order-preserving max reductions.
	Parallelism int
}

// fullSweepLimit is the largest T for which the automatic ℓ falls back
// to a full-width search when the approximate width is unavailable.
const fullSweepLimit = 4096

// ExactScore computes σ_max for Algorithm 3: the exact max-influence
// of every Lemma 4.6 quilt with card(X_N) ≤ ℓ is evaluated through the
// decomposition (5), using dynamic programming over matrix powers (the
// Section 4.4.1 speed-ups), the Appendix C.4 closed form when the
// class pairs transition matrices with every initial distribution, and
// the stationary-initial shortcut when the class is started from
// stationarity.
func ExactScore(class markov.Class, eps float64, opt ExactOptions) (ChainScore, error) {
	return exactScoreWith(class, eps, opt, sched.New(opt.Parallelism), newPowerCacheSet())
}

// exactScoreWith is ExactScore with an explicit worker pool and shared
// power-cache set, so ScoreBatch can schedule many classes through one
// pool invocation and share power tables across θ with equal
// transition matrices. ExactScore itself passes a fresh set, which
// already deduplicates power tables across the θ of one class (e.g.
// initial-distribution grids over a common matrix).
func exactScoreWith(class markov.Class, eps float64, opt ExactOptions, pool sched.Pool, pcs *powerCacheSet) (ChainScore, error) {
	if err := validateChainClass(class, eps); err != nil {
		return ChainScore{}, err
	}
	T := class.T()
	ell := opt.MaxWidth
	if ell <= 0 {
		ell = autoWidth(class, eps, T, pool.Workers())
	}
	if ell > T {
		ell = T
	}
	// Per-θ scores are independent; fan them across the pool and merge
	// in class order (strict > keeps the first maximizer, exactly as
	// the serial loop would). Split keeps outer×inner concurrency
	// within the requested worker bound: many-θ classes parallelize
	// across θ, singleton classes across the inner sweeps.
	chains := class.Chains()
	// Fail fast on an invalid chain before paying for any sweep — the
	// parallel fan below runs every θ to completion regardless of
	// errors elsewhere.
	for _, theta := range chains {
		if err := theta.Validate(); err != nil {
			return ChainScore{}, err
		}
	}
	outer, inner := pool.Split(len(chains))
	allInits := class.AllInitialDistributions()
	scores := make([]ChainScore, len(chains))
	errs := make([]error, len(chains))
	outer.ForEach(len(chains), func(ci int) {
		scores[ci], errs[ci] = exactScoreTheta(chains[ci], T, ell, eps, allInits, opt.ForceFullSweep, inner, pcs)
	})
	best := ChainScore{Sigma: math.Inf(-1), Ell: ell}
	for ci := range chains {
		if errs[ci] != nil {
			return ChainScore{}, errs[ci]
		}
		if sc := scores[ci]; sc.Sigma > best.Sigma {
			sc.Ell = ell
			best = sc
		}
	}
	return best, nil
}

// autoWidth picks ℓ: the active MQMApprox quilt width when the class
// supports the closed-form bounds, otherwise the full chain (bounded
// by fullSweepLimit to keep the search honest about its cost).
func autoWidth(class markov.Class, eps float64, T, parallelism int) int {
	if approx, err := ApproxScore(class, eps, ApproxOptions{Parallelism: parallelism}); err == nil && approx.Quilt.A > 0 && approx.Quilt.B > 0 {
		return approx.Quilt.A + approx.Quilt.B
	}
	if T <= fullSweepLimit {
		return T
	}
	return fullSweepLimit
}

// exactScoreTheta computes max_i min_quilt σ for a single θ.
func exactScoreTheta(theta markov.Chain, T, ell int, eps float64, allInits, forceFull bool, pool sched.Pool, pcs *powerCacheSet) (ChainScore, error) {
	if err := theta.Validate(); err != nil {
		return ChainScore{}, err
	}
	k := theta.K()

	// Stationary shortcut applies when every node has the same
	// marginal (init = stationary) and we are not forced to sweep.
	stationary := false
	if !allInits && !forceFull {
		if pi, err := theta.Stationary(); err == nil && floats.EqSlices(pi, theta.Init, 1e-9) {
			stationary = true
		}
	}

	// Backward tables are needed up to i−1 for the Appendix C.4 closed
	// form; forward/backward up to ℓ otherwise.
	maxPow := ell
	if allInits {
		maxPow = T - 1
		if maxPow < ell {
			maxPow = ell
		}
	}
	if maxPow > T-1 {
		maxPow = T - 1
	}
	sc := newExactScorer(theta, T, k, maxPow, allInits, pool, pcs)

	if stationary {
		score, ok := sc.stationaryShortcut(ell, eps)
		if ok {
			return score, nil
		}
		// Fall through to the full sweep when the middle node's active
		// quilt is not an interior two-sided quilt.
	}

	// The per-node scores only read the scorer's tables, so the sweep
	// fans across contiguous node chunks; the chunk-ordered first-max
	// reduction reproduces the serial result exactly.
	best := sched.ReduceChunks(pool, T, ChainScore{Sigma: math.Inf(-1)},
		func(start, end int) ChainScore {
			local := ChainScore{Sigma: math.Inf(-1)}
			for i := start + 1; i <= end; i++ { // nodes are 1-based
				sigma, quilt, infl := sc.nodeScore(i, ell, eps)
				if sigma > local.Sigma {
					local = ChainScore{Sigma: sigma, Node: i, Quilt: quilt, Influence: infl}
				}
			}
			return local
		},
		maxChainScore)
	return best, nil
}

// maxChainScore is the engine's first-wins merge: strictly greater σ
// replaces the accumulator, ties keep the earlier (lower-node) score.
func maxChainScore(acc, v ChainScore) ChainScore {
	if v.Sigma > acc.Sigma {
		return v
	}
	return acc
}

// exactScorer holds the per-θ dynamic-programming tables of
// Section 4.4.1: fwd[j][x*k+x'] = max_y log P^j(x,y)/P^j(x',y) and
// bwd[j][x*k+x'] = max_y log P^j(y,x)/P^j(y,x'), plus node marginals.
// The tables are views into the persistent per-matrix
// matrix.InfluenceCache, which evaluates them in the log domain
// (log p − log q instead of log(p/q)) from an element-wise log table of
// each power — O(k²) transcendentals per power instead of O(k³).
//
// Error bound for the log-domain kernel: for finite entries both
// evaluations round the same real number log(p/q) with |p, q| > 0, and
//
//	|fl(fl(log p) − fl(log q)) − log(p/q)| ≤ u·(1 + |log p| + |log q|) + O(u²)
//
// with u = 2⁻⁵³ unit roundoff (one rounding per log, one per subtract),
// while the direct kernel satisfies |fl(log(fl(p/q))) − log(p/q)| ≤
// u·(1 + |log(p/q)|) + O(u²). Both are within B = 2u·(1 + 2·L) of the
// exact value, where L = max |log| of any positive matrix entry (or
// marginal), so the two kernels differ by at most 2B per table entry.
// An influence is a max over pairs of a sum of at most three table
// entries (t1 + bwd + fwd), the max is 1-Lipschitz in sup-norm, and
// ±Inf entries agree exactly by construction, hence
//
//	|influence_new − influence_old| ≤ 6B = 12u·(1 + 2L),
//
// a few ulps of the stored logs. The kernel-accuracy tests
// (mqmexact_kernel_test.go) pin this margin on every substrate and
// additionally assert the released influence never drops below the
// direct kernel's value by more than the margin, so the noise scale
// stays conservative up to provable rounding error.
type exactScorer struct {
	T, k           int
	allInits       bool
	fwd, bwd       [][]float64 // index j−1, views into the InfluenceCache
	fwdArg, bwdArg []int32     // per-row off-diagonal argmax (prune probes)
	marg           [][]float64 // node marginals (1-based node i → marg[i−1])
}

func newExactScorer(theta markov.Chain, T, k, maxPow int, allInits bool, pool sched.Pool, pcs *powerCacheSet) *exactScorer {
	sc := &exactScorer{T: T, k: k, allInits: allInits}
	// Derived tables come from the shared per-matrix set, so θ with
	// equal transition matrices (within a class, across a batch, or
	// across releases through a persistent ScoreCache) build each power
	// row once; scoring T+1 after T only computes the new rows. The
	// power recurrence itself is sequential; the per-power row builds
	// fan across the pool.
	tab := pcs.tables(theta.P)
	tab.ic.Grow(maxPow, pool)
	sc.fwd, sc.bwd, sc.fwdArg, sc.bwdArg = tab.ic.Tables(maxPow)
	if !allInits {
		sc.marg = tab.marginals(theta, T)
	}
	return sc
}

// logRatio returns log(p/q) with the conventions of max-influence
// computation: +Inf when p > 0 = q, −Inf when p = 0 (so it never wins
// a max unless everything is −Inf, which cannot happen for stochastic
// rows).
func logRatio(p, q float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case q <= 0:
		return math.Inf(1)
	default:
		return math.Log(p / q)
	}
}

// term1 returns t1(x, x') = log P(X_i = x')/P(X_i = x) for node i, or
// the Appendix C.4 supremum over initial distributions
// max_y log P^{i−1}(y,x')/P^{i−1}(y,x). The boolean reports whether
// the (x, x') secret pair is admissible (both secrets have positive
// probability; Definition 2.1 skips the rest).
func (sc *exactScorer) term1(i, x, xp int) (float64, bool) {
	if sc.allInits {
		if i == 1 {
			// The initial distribution itself is the marginal; the
			// supremum of log q(x')/q(x) over the open simplex is +Inf.
			return math.Inf(1), true
		}
		return sc.bwd[i-2][xp*sc.k+x], true
	}
	m := sc.marg[i-1]
	if m[x] <= 0 || m[xp] <= 0 {
		return 0, false
	}
	return math.Log(m[xp] / m[x]), true
}

// influence returns the exact max-influence e_{θ}(X_Q | X_i) of quilt
// (a, b) on node i via decomposition (5). ok=false means node i has at
// most one admissible value, hence nothing to protect.
//
// This is the reference evaluation; nodeScore runs the equivalent fused
// kernel (fillT1 + maxSum over contiguous slabs) instead. The only
// arithmetic difference is term1's log(m[x']/m[x]) versus the fused
// path's log m[x'] − log m[x], covered by the error bound documented on
// exactScorer. Tests use this form to cross-check the fused sweep.
func (sc *exactScorer) influence(i int, q ChainQuilt, eps float64) (infl float64, ok bool) {
	if q.Trivial() {
		// Still require at least two admissible secrets at node i.
		if !sc.hasPair(i) {
			return 0, false
		}
		return 0, true
	}
	k := sc.k
	worst := math.Inf(-1)
	any := false
	for x := 0; x < k; x++ {
		for xp := 0; xp < k; xp++ {
			if x == xp {
				continue
			}
			t1, admissible := sc.term1(i, x, xp)
			if !admissible {
				continue
			}
			any = true
			// Decomposition (5): the marginal ratio t1 enters through
			// the Bayes reversal of the left arm, so it appears only
			// when the quilt has a left endpoint. A right-only quilt
			// {X_{i+b}} is a pure forward kernel ratio.
			var v float64
			if q.A > 0 {
				v += t1 + sc.bwd[q.A-1][x*k+xp]
			}
			if q.B > 0 {
				v += sc.fwd[q.B-1][x*k+xp]
			}
			if v > worst {
				worst = v
			}
		}
	}
	if !any {
		return 0, false
	}
	if worst < 0 {
		// Influence is a sup of log-ratios over pairs in both orders;
		// it cannot be negative. Numerical noise only.
		worst = 0
	}
	return worst, true
}

// hasPair reports whether node i has two values of positive
// probability (i.e. at least one admissible secret pair).
func (sc *exactScorer) hasPair(i int) bool {
	if sc.allInits {
		return true
	}
	count := 0
	for _, p := range sc.marg[i-1] {
		if p > 0 {
			count++
		}
	}
	return count >= 2
}

// fillT1 builds the per-node pair slabs the fused influence kernel
// consumes: t1[x*k+x'] is the marginal log-ratio term of decomposition
// (5) — log m_i(x') − log m_i(x), or the Appendix C.4 backward
// supremum when the class pairs all initial distributions — and
// adm[x*k+x'] is 0 for admissible ordered pairs. Diagonal and
// inadmissible entries are −Inf in both, so a fused max-add sweep skips
// them for free (−Inf and NaN sums never win a `>` fold). The −Inf
// must be explicit: computing log m(x') − log m(x) at an inadmissible
// pair with m(x) = 0 < m(x') would manufacture a spurious +Inf.
func (sc *exactScorer) fillT1(i int, t1, adm []float64) {
	k := sc.k
	ninf := math.Inf(-1)
	if sc.allInits {
		for p := range adm {
			adm[p] = 0
		}
		for x := 0; x < k; x++ {
			adm[x*k+x] = ninf
		}
		if i == 1 {
			// The initial distribution itself is the marginal; the
			// supremum of log q(x')/q(x) over the open simplex is +Inf.
			// No left quilt exists at i = 1 (a ≤ i−1 = 0), so t1 is
			// never read; fill it consistently anyway.
			for p := range t1 {
				t1[p] = math.Inf(1)
			}
			for x := 0; x < k; x++ {
				t1[x*k+x] = ninf
			}
			return
		}
		row := sc.bwd[i-2] // t1(x, x') = bwd^{i−1}[x'*k+x] (transposed)
		for x := 0; x < k; x++ {
			trow := t1[x*k : (x+1)*k]
			for xp := range trow {
				trow[xp] = row[xp*k+x]
			}
			trow[x] = ninf
		}
		return
	}
	m := sc.marg[i-1]
	lm := t1[:k] // reuse the slab head as log-marginal scratch; t1 is filled below
	for x, mx := range m {
		if mx > 0 {
			lm[x] = math.Log(mx)
		} else {
			lm[x] = math.NaN()
		}
	}
	// Fill back-to-front so lm (aliased to t1[:k]) is consumed before
	// row 0 overwrites it; row x only reads lm, never earlier t1 rows.
	for x := k - 1; x >= 0; x-- {
		lx := lm[x]
		trow := t1[x*k : (x+1)*k]
		arow := adm[x*k : (x+1)*k]
		if math.IsNaN(lx) {
			for p := range trow {
				trow[p] = ninf
				arow[p] = ninf
			}
			continue
		}
		for xp := range trow {
			lxp := lm[xp]
			if math.IsNaN(lxp) {
				trow[xp] = ninf
				arow[xp] = ninf
				continue
			}
			trow[xp] = lxp - lx
			arow[xp] = 0
		}
		trow[x] = ninf
		arow[x] = ninf
	}
}

// maxSum2 returns max_p a[p]+b[p] with a `>` fold, so NaN and −Inf
// entries (inadmissible pairs, zero-probability transitions) never win.
func maxSum2(a, b []float64) float64 {
	best := math.Inf(-1)
	b = b[:len(a)]
	for p, ap := range a {
		if v := ap + b[p]; v > best {
			best = v
		}
	}
	return best
}

// maxSum3 is maxSum2 over three slabs: the full decomposition-(5) sum
// t1 + bwd + fwd, folded left-to-right exactly like the reference
// influence loop.
func maxSum3(a, b, c []float64) float64 {
	best := math.Inf(-1)
	b = b[:len(a)]
	c = c[:len(a)]
	for p, ap := range a {
		if v := ap + b[p] + c[p]; v > best {
			best = v
		}
	}
	return best
}

// prunable reports whether every quilt with the given card and
// influence ≥ lb scores at least bestSigma, so the full pair sweep can
// be skipped without changing the selected minimizer: the quilt score
// card/(ε − infl) is increasing in infl (and +Inf from ε up), influence
// is clamped at ≥ 0, and the incumbent wins ties. lb may be −Inf (no
// information — prunes on card alone) or NaN (never prunes).
func prunable(card int, lb, eps, bestSigma float64) bool {
	if lb >= eps {
		return true // score is +Inf regardless of the exact influence
	}
	if lb < 0 {
		lb = 0
	}
	return float64(card)/(eps-lb) >= bestSigma
}

// fold is a NaN-safe max accumulator for the O(1) influence
// lower-bound probes.
func fold(best, v float64) float64 {
	if v > best {
		return v
	}
	return best
}

// pairBufPool recycles the per-node t1/adm slabs across nodeScore
// calls (the sweep runs T of them, concurrently across chunks).
var pairBufPool = sync.Pool{New: func() any { return new([]float64) }}

func getPairBuf(n int) []float64 {
	bp := pairBufPool.Get().(*[]float64)
	if cap(*bp) < n {
		*bp = make([]float64, n)
	}
	return (*bp)[:n]
}

func putPairBuf(b []float64) {
	pairBufPool.Put(&b)
}

// nodeScore returns σ_i = min over the Lemma 4.6 quilts with
// card(X_N) ≤ ℓ (plus trivial) of the quilt score, with the active
// quilt and its influence. It is the fused, pruned equivalent of
// looping sc.influence over every quilt: per candidate it first tries
// two O(1) lower-bound probes (the sum at each table row's argmax pair)
// and the card/ε floor, and only runs the O(k²) max-add sweep for
// quilts that can still beat the incumbent. Pruned quilts provably
// score ≥ the running minimum, and ties keep the earlier quilt, so the
// selected (σ, quilt, influence) triple is identical to the exhaustive
// loop's.
func (sc *exactScorer) nodeScore(i, ell int, eps float64) (float64, ChainQuilt, float64) {
	T := sc.T
	if !sc.hasPair(i) {
		return 0, ChainQuilt{}, 0
	}
	if sc.k < 2 {
		// A single-state space has no ordered pair to protect: only the
		// trivial quilt has a defined influence (zero).
		return quiltScore(T, 0, eps), ChainQuilt{}, 0
	}
	k := sc.k
	kk := k * k
	buf := getPairBuf(2 * kk)
	defer putPairBuf(buf)
	t1, adm := buf[:kk], buf[kk:]
	sc.fillT1(i, t1, adm)

	// The trivial quilt (influence 0, score T/ε) seeds the minimum.
	bestSigma := quiltScore(T, 0, eps)
	bestQuilt := ChainQuilt{}
	bestInfl := 0.0
	// a is clamped to the table length min(ℓ, T−1): a left-only quilt
	// needs card = T−i+a ≤ ℓ (so a ≤ ℓ − (T−i) ≤ ℓ) and a two-sided one
	// a+b−1 ≤ ℓ, so no quilt with a longer left arm can fit — the old
	// exhaustive loop merely spun past them without evaluating.
	for a := 1; a <= i-1 && a <= len(sc.bwd); a++ {
		// Both remaining card floors grow with a: once neither the
		// left-only card (T−i+a) nor the smallest two-sided card (a, at
		// b = 1) can beat the incumbent, no larger a can either.
		if float64(a)/eps >= bestSigma && float64(T-i+a)/eps >= bestSigma {
			break
		}
		bRow := sc.bwd[a-1]
		ba := int(sc.bwdArg[a-1])
		if card := T - i + a; card <= ell { // left-only quilt {X_{i−a}}
			lb := fold(math.Inf(-1), t1[ba]+bRow[ba])
			if !prunable(card, lb, eps, bestSigma) {
				v := maxSum2(t1, bRow)
				if v < 0 {
					v = 0
				}
				if s := quiltScore(card, v, eps); s < bestSigma {
					bestSigma, bestQuilt, bestInfl = s, ChainQuilt{A: a}, v
				}
			}
		}
		for b := 1; b <= T-i && a+b-1 <= ell; b++ {
			card := a + b - 1
			if float64(card)/eps >= bestSigma {
				break // card grows with b
			}
			fRow := sc.fwd[b-1]
			fa := int(sc.fwdArg[b-1])
			lb := fold(math.Inf(-1), t1[ba]+bRow[ba]+fRow[ba])
			lb = fold(lb, t1[fa]+bRow[fa]+fRow[fa])
			if prunable(card, lb, eps, bestSigma) {
				continue
			}
			v := maxSum3(t1, bRow, fRow)
			if v < 0 {
				v = 0
			}
			if s := quiltScore(card, v, eps); s < bestSigma {
				bestSigma, bestQuilt, bestInfl = s, ChainQuilt{A: a, B: b}, v
			}
		}
		if T-i+a > ell && a+1-1 > ell {
			break // neither one-sided nor two-sided can fit anymore
		}
	}
	for b := 1; b <= T-i && i+b-1 <= ell; b++ {
		card := i + b - 1
		if float64(card)/eps >= bestSigma {
			break // card grows with b
		}
		fRow := sc.fwd[b-1]
		fa := int(sc.fwdArg[b-1])
		lb := fold(math.Inf(-1), adm[fa]+fRow[fa])
		if prunable(card, lb, eps, bestSigma) {
			continue
		}
		// Right-only quilt {X_{i+b}}: a pure forward kernel ratio over
		// admissible pairs (adm is 0 there, −Inf elsewhere).
		v := maxSum2(adm, fRow)
		if v < 0 {
			v = 0
		}
		if s := quiltScore(card, v, eps); s < bestSigma {
			bestSigma, bestQuilt, bestInfl = s, ChainQuilt{B: b}, v
		}
	}
	return bestSigma, bestQuilt, bestInfl
}

// stationaryShortcut exploits the Section 4.4.1 observation: with the
// initial distribution stationary, the max-influence of a two-sided
// quilt depends only on (a, b), so the Lemma C.4 argument gives
// σ_max = σ_{⌈T/2⌉} whenever the middle node's active quilt is an
// interior two-sided quilt. Returns ok=false when that condition
// fails and a full sweep is required.
func (sc *exactScorer) stationaryShortcut(ell int, eps float64) (ChainScore, bool) {
	mid := (sc.T + 1) / 2
	sigma, quilt, infl := sc.nodeScore(mid, ell, eps)
	if quilt.A > 0 && quilt.B > 0 && mid-quilt.A >= 1 && mid+quilt.B <= sc.T {
		return ChainScore{Sigma: sigma, Node: mid, Quilt: quilt, Influence: infl}, true
	}
	return ChainScore{}, false
}

// MQMExact runs Algorithm 3 end to end: computes σ_max with ExactScore
// and releases the query with Laplace noise of scale Lipschitz·σ_max.
func MQMExact(data []int, q query.Query, class markov.Class, eps float64, opt ExactOptions, rng *rand.Rand) (Release, ChainScore, error) {
	score, err := ExactScore(class, eps, opt)
	if err != nil {
		return Release{}, ChainScore{}, err
	}
	if math.IsInf(score.Sigma, 1) {
		return Release{}, score, fmt.Errorf("core: MQMExact inapplicable: every quilt has influence ≥ ε")
	}
	rel, err := releaseWithScore(data, q, score, eps, "MQMExact", rng)
	if err != nil {
		return Release{}, ChainScore{}, err
	}
	return rel, score, nil
}
