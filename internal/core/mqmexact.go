package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
	"pufferfish/internal/query"
	"pufferfish/internal/sched"
)

// ExactOptions tunes Algorithm 3 (MQMExact).
type ExactOptions struct {
	// MaxWidth is the quilt-size limit ℓ: only quilts with
	// card(X_N) ≤ ℓ are searched (plus the trivial quilt). Zero picks
	// ℓ automatically — the full chain when T is small, otherwise the
	// optimal MQMApprox quilt width, which is the paper's choice for
	// the real-data experiments (Section 5.3).
	MaxWidth int
	// ForceFullSweep disables the stationary-initial-distribution
	// shortcut (Section 4.4.1's observation that the max-influence is
	// then independent of i) even when it applies. Used by the
	// ablation benchmarks and correctness tests.
	ForceFullSweep bool
	// Parallelism bounds the worker count of the scoring sweeps: 0
	// uses every CPU, 1 runs strictly serial, n > 1 uses up to n
	// workers. The score is bit-for-bit identical at every setting —
	// the engine only performs order-preserving max reductions.
	Parallelism int
}

// fullSweepLimit is the largest T for which the automatic ℓ falls back
// to a full-width search when the approximate width is unavailable.
const fullSweepLimit = 4096

// ExactScore computes σ_max for Algorithm 3: the exact max-influence
// of every Lemma 4.6 quilt with card(X_N) ≤ ℓ is evaluated through the
// decomposition (5), using dynamic programming over matrix powers (the
// Section 4.4.1 speed-ups), the Appendix C.4 closed form when the
// class pairs transition matrices with every initial distribution, and
// the stationary-initial shortcut when the class is started from
// stationarity.
func ExactScore(class markov.Class, eps float64, opt ExactOptions) (ChainScore, error) {
	return exactScoreWith(class, eps, opt, sched.New(opt.Parallelism), newPowerCacheSet())
}

// exactScoreWith is ExactScore with an explicit worker pool and shared
// power-cache set, so ScoreBatch can schedule many classes through one
// pool invocation and share power tables across θ with equal
// transition matrices. ExactScore itself passes a fresh set, which
// already deduplicates power tables across the θ of one class (e.g.
// initial-distribution grids over a common matrix).
func exactScoreWith(class markov.Class, eps float64, opt ExactOptions, pool sched.Pool, pcs *powerCacheSet) (ChainScore, error) {
	if err := validateChainClass(class, eps); err != nil {
		return ChainScore{}, err
	}
	T := class.T()
	ell := opt.MaxWidth
	if ell <= 0 {
		ell = autoWidth(class, eps, T, pool.Workers())
	}
	if ell > T {
		ell = T
	}
	// Per-θ scores are independent; fan them across the pool and merge
	// in class order (strict > keeps the first maximizer, exactly as
	// the serial loop would). Split keeps outer×inner concurrency
	// within the requested worker bound: many-θ classes parallelize
	// across θ, singleton classes across the inner sweeps.
	chains := class.Chains()
	// Fail fast on an invalid chain before paying for any sweep — the
	// parallel fan below runs every θ to completion regardless of
	// errors elsewhere.
	for _, theta := range chains {
		if err := theta.Validate(); err != nil {
			return ChainScore{}, err
		}
	}
	outer, inner := pool.Split(len(chains))
	allInits := class.AllInitialDistributions()
	scores := make([]ChainScore, len(chains))
	errs := make([]error, len(chains))
	outer.ForEach(len(chains), func(ci int) {
		scores[ci], errs[ci] = exactScoreTheta(chains[ci], T, ell, eps, allInits, opt.ForceFullSweep, inner, pcs)
	})
	best := ChainScore{Sigma: math.Inf(-1), Ell: ell}
	for ci := range chains {
		if errs[ci] != nil {
			return ChainScore{}, errs[ci]
		}
		if sc := scores[ci]; sc.Sigma > best.Sigma {
			sc.Ell = ell
			best = sc
		}
	}
	return best, nil
}

// autoWidth picks ℓ: the active MQMApprox quilt width when the class
// supports the closed-form bounds, otherwise the full chain (bounded
// by fullSweepLimit to keep the search honest about its cost).
func autoWidth(class markov.Class, eps float64, T, parallelism int) int {
	if approx, err := ApproxScore(class, eps, ApproxOptions{Parallelism: parallelism}); err == nil && approx.Quilt.A > 0 && approx.Quilt.B > 0 {
		return approx.Quilt.A + approx.Quilt.B
	}
	if T <= fullSweepLimit {
		return T
	}
	return fullSweepLimit
}

// exactScoreTheta computes max_i min_quilt σ for a single θ.
func exactScoreTheta(theta markov.Chain, T, ell int, eps float64, allInits, forceFull bool, pool sched.Pool, pcs *powerCacheSet) (ChainScore, error) {
	if err := theta.Validate(); err != nil {
		return ChainScore{}, err
	}
	k := theta.K()

	// Stationary shortcut applies when every node has the same
	// marginal (init = stationary) and we are not forced to sweep.
	stationary := false
	if !allInits && !forceFull {
		if pi, err := theta.Stationary(); err == nil && floats.EqSlices(pi, theta.Init, 1e-9) {
			stationary = true
		}
	}

	// Backward tables are needed up to i−1 for the Appendix C.4 closed
	// form; forward/backward up to ℓ otherwise.
	maxPow := ell
	if allInits {
		maxPow = T - 1
		if maxPow < ell {
			maxPow = ell
		}
	}
	if maxPow > T-1 {
		maxPow = T - 1
	}
	sc := newExactScorer(theta, T, k, maxPow, allInits, pool, pcs)

	if stationary {
		score, ok := sc.stationaryShortcut(ell, eps)
		if ok {
			return score, nil
		}
		// Fall through to the full sweep when the middle node's active
		// quilt is not an interior two-sided quilt.
	}

	// The per-node scores only read the scorer's tables, so the sweep
	// fans across contiguous node chunks; the chunk-ordered first-max
	// reduction reproduces the serial result exactly.
	best := sched.ReduceChunks(pool, T, ChainScore{Sigma: math.Inf(-1)},
		func(start, end int) ChainScore {
			local := ChainScore{Sigma: math.Inf(-1)}
			for i := start + 1; i <= end; i++ { // nodes are 1-based
				sigma, quilt, infl := sc.nodeScore(i, ell, eps)
				if sigma > local.Sigma {
					local = ChainScore{Sigma: sigma, Node: i, Quilt: quilt, Influence: infl}
				}
			}
			return local
		},
		maxChainScore)
	return best, nil
}

// maxChainScore is the engine's first-wins merge: strictly greater σ
// replaces the accumulator, ties keep the earlier (lower-node) score.
func maxChainScore(acc, v ChainScore) ChainScore {
	if v.Sigma > acc.Sigma {
		return v
	}
	return acc
}

// exactScorer holds the per-θ dynamic-programming tables of
// Section 4.4.1: fwd[j][x*k+x'] = max_y log P^j(x,y)/P^j(x',y) and
// bwd[j][x*k+x'] = max_y log P^j(y,x)/P^j(y,x'), plus node marginals.
type exactScorer struct {
	T, k     int
	allInits bool
	fwd, bwd [][]float64 // index j−1
	marg     [][]float64 // node marginals (1-based node i → marg[i−1])
}

func newExactScorer(theta markov.Chain, T, k, maxPow int, allInits bool, pool sched.Pool, pcs *powerCacheSet) *exactScorer {
	sc := &exactScorer{T: T, k: k, allInits: allInits}
	// The powers P^1 … P^maxPow are a sequential recurrence, so the
	// cache builds them serially (in-place, two allocations for the
	// whole table); the per-power max-ratio extraction is embarrassingly
	// parallel and fans across the pool, each worker writing disjoint
	// slab rows. The cache comes from the shared set, so θ with equal
	// transition matrices (within a class or across a batch) build the
	// power table once.
	pc := pcs.get(theta.P)
	pc.Grow(maxPow)
	sc.fwd = make([][]float64, maxPow)
	sc.bwd = make([][]float64, maxPow)
	slab := make([]float64, 2*maxPow*k*k)
	for j := 0; j < maxPow; j++ {
		sc.fwd[j] = slab[(2*j)*k*k : (2*j+1)*k*k]
		sc.bwd[j] = slab[(2*j+1)*k*k : (2*j+2)*k*k]
	}
	pool.ForEach(maxPow, func(jm1 int) {
		pj := pc.Pow(jm1 + 1)
		f, b := sc.fwd[jm1], sc.bwd[jm1]
		for x := 0; x < k; x++ {
			for xp := 0; xp < k; xp++ {
				fbest, bbest := math.Inf(-1), math.Inf(-1)
				for y := 0; y < k; y++ {
					fbest = math.Max(fbest, logRatio(pj.At(x, y), pj.At(xp, y)))
					bbest = math.Max(bbest, logRatio(pj.At(y, x), pj.At(y, xp)))
				}
				f[x*k+xp] = fbest
				b[x*k+xp] = bbest
			}
		}
	})
	if !allInits {
		sc.marg = theta.Marginals(T)
	}
	return sc
}

// logRatio returns log(p/q) with the conventions of max-influence
// computation: +Inf when p > 0 = q, −Inf when p = 0 (so it never wins
// a max unless everything is −Inf, which cannot happen for stochastic
// rows).
func logRatio(p, q float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case q <= 0:
		return math.Inf(1)
	default:
		return math.Log(p / q)
	}
}

// term1 returns t1(x, x') = log P(X_i = x')/P(X_i = x) for node i, or
// the Appendix C.4 supremum over initial distributions
// max_y log P^{i−1}(y,x')/P^{i−1}(y,x). The boolean reports whether
// the (x, x') secret pair is admissible (both secrets have positive
// probability; Definition 2.1 skips the rest).
func (sc *exactScorer) term1(i, x, xp int) (float64, bool) {
	if sc.allInits {
		if i == 1 {
			// The initial distribution itself is the marginal; the
			// supremum of log q(x')/q(x) over the open simplex is +Inf.
			return math.Inf(1), true
		}
		return sc.bwd[i-2][xp*sc.k+x], true
	}
	m := sc.marg[i-1]
	if m[x] <= 0 || m[xp] <= 0 {
		return 0, false
	}
	return math.Log(m[xp] / m[x]), true
}

// influence returns the exact max-influence e_{θ}(X_Q | X_i) of quilt
// (a, b) on node i via decomposition (5). ok=false means node i has at
// most one admissible value, hence nothing to protect.
func (sc *exactScorer) influence(i int, q ChainQuilt, eps float64) (infl float64, ok bool) {
	if q.Trivial() {
		// Still require at least two admissible secrets at node i.
		if !sc.hasPair(i) {
			return 0, false
		}
		return 0, true
	}
	k := sc.k
	worst := math.Inf(-1)
	any := false
	for x := 0; x < k; x++ {
		for xp := 0; xp < k; xp++ {
			if x == xp {
				continue
			}
			t1, admissible := sc.term1(i, x, xp)
			if !admissible {
				continue
			}
			any = true
			// Decomposition (5): the marginal ratio t1 enters through
			// the Bayes reversal of the left arm, so it appears only
			// when the quilt has a left endpoint. A right-only quilt
			// {X_{i+b}} is a pure forward kernel ratio.
			var v float64
			if q.A > 0 {
				v += t1 + sc.bwd[q.A-1][x*k+xp]
			}
			if q.B > 0 {
				v += sc.fwd[q.B-1][x*k+xp]
			}
			if v > worst {
				worst = v
			}
		}
	}
	if !any {
		return 0, false
	}
	if worst < 0 {
		// Influence is a sup of log-ratios over pairs in both orders;
		// it cannot be negative. Numerical noise only.
		worst = 0
	}
	return worst, true
}

// hasPair reports whether node i has two values of positive
// probability (i.e. at least one admissible secret pair).
func (sc *exactScorer) hasPair(i int) bool {
	if sc.allInits {
		return true
	}
	count := 0
	for _, p := range sc.marg[i-1] {
		if p > 0 {
			count++
		}
	}
	return count >= 2
}

// nodeScore returns σ_i = min over the Lemma 4.6 quilts with
// card(X_N) ≤ ℓ (plus trivial) of the quilt score, with the active
// quilt and its influence.
func (sc *exactScorer) nodeScore(i, ell int, eps float64) (float64, ChainQuilt, float64) {
	T := sc.T
	if !sc.hasPair(i) {
		return 0, ChainQuilt{}, 0
	}
	bestSigma := math.Inf(1)
	var bestQuilt ChainQuilt
	var bestInfl float64
	consider := func(q ChainQuilt) {
		card := q.CardN(i, T)
		if !q.Trivial() && card > ell {
			return
		}
		infl, ok := sc.influence(i, q, eps)
		if !ok {
			return
		}
		if s := quiltScore(card, infl, eps); s < bestSigma {
			bestSigma = s
			bestQuilt = q
			bestInfl = infl
		}
	}
	consider(ChainQuilt{}) // trivial: score T/ε
	for a := 1; a <= i-1; a++ {
		consider(ChainQuilt{A: a}) // card T−i+a
		for b := 1; b <= T-i && a+b-1 <= ell; b++ {
			consider(ChainQuilt{A: a, B: b})
		}
		if T-i+a > ell && a+1-1 > ell {
			break // neither one-sided nor two-sided can fit anymore
		}
	}
	for b := 1; b <= T-i && i+b-1 <= ell; b++ {
		consider(ChainQuilt{B: b})
	}
	return bestSigma, bestQuilt, bestInfl
}

// stationaryShortcut exploits the Section 4.4.1 observation: with the
// initial distribution stationary, the max-influence of a two-sided
// quilt depends only on (a, b), so the Lemma C.4 argument gives
// σ_max = σ_{⌈T/2⌉} whenever the middle node's active quilt is an
// interior two-sided quilt. Returns ok=false when that condition
// fails and a full sweep is required.
func (sc *exactScorer) stationaryShortcut(ell int, eps float64) (ChainScore, bool) {
	mid := (sc.T + 1) / 2
	sigma, quilt, infl := sc.nodeScore(mid, ell, eps)
	if quilt.A > 0 && quilt.B > 0 && mid-quilt.A >= 1 && mid+quilt.B <= sc.T {
		return ChainScore{Sigma: sigma, Node: mid, Quilt: quilt, Influence: infl}, true
	}
	return ChainScore{}, false
}

// MQMExact runs Algorithm 3 end to end: computes σ_max with ExactScore
// and releases the query with Laplace noise of scale Lipschitz·σ_max.
func MQMExact(data []int, q query.Query, class markov.Class, eps float64, opt ExactOptions, rng *rand.Rand) (Release, ChainScore, error) {
	score, err := ExactScore(class, eps, opt)
	if err != nil {
		return Release{}, ChainScore{}, err
	}
	if math.IsInf(score.Sigma, 1) {
		return Release{}, score, fmt.Errorf("core: MQMExact inapplicable: every quilt has influence ≥ ε")
	}
	rel, err := releaseWithScore(data, q, score, eps, "MQMExact", rng)
	if err != nil {
		return Release{}, ChainScore{}, err
	}
	return rel, score, nil
}
