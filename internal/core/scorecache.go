package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
	"pufferfish/internal/sched"
)

// scoreKey identifies one memoizable score computation: the class
// fingerprint plus everything else the result depends on. Parallelism
// is deliberately absent — the engine's scores are bit-for-bit
// identical at every worker count, so cached results are shared across
// parallelism settings.
type scoreKey struct {
	fp        Fingerprint
	eps       float64
	exact     bool
	maxWidth  int
	forceFull bool
}

// CacheStats reports a ScoreCache's traffic counters.
type CacheStats struct {
	Hits, Misses int64
}

// CellScore is the per-cell transport profile the Kantorovich
// subsystem memoizes: the two Wasserstein suprema of one histogram
// cell's conditional count distributions over every admissible secret
// pair and θ. It is ε-independent (distances depend only on the class
// and the cell), so one entry serves every privacy budget.
type CellScore struct {
	// WInf is sup W∞ over the cell's pairs — the quantity the
	// exponential/additive mechanism calibrates to (Theorem 3.2).
	WInf float64 `json:"w_inf"`
	// W1 is sup W₁ (the Kantorovich distance) over the same pairs: the
	// average-case transport cost, reported as the conservativeness
	// diagnostic W₁/W∞.
	W1 float64 `json:"w1"`
	// Label identifies the W∞-maximizing pair for diagnostics.
	Label string `json:"label,omitempty"`
	// Pairs counts the admissible secret pairs swept.
	Pairs int `json:"pairs"`
}

// cellKey identifies one memoizable Kantorovich cell profile: the
// class fingerprint (which covers T, K, inits and transitions) plus
// the cell (state) index whose indicator count is profiled.
type cellKey struct {
	fp   Fingerprint
	cell int
}

// ScoreCache memoizes ChainScore results by (class fingerprint, ε,
// options). Composition-heavy workloads — repeated releases over an
// unchanged class, the regime of Theorem 4.4 — pay the scoring sweep
// once and hit the cache thereafter. The cache is safe for concurrent
// use and unbounded (scores are a few words each; a workload would
// need millions of distinct classes before size matters).
//
// A second side table memoizes the Kantorovich subsystem's per-cell
// transport profiles by (class fingerprint, cell); both tables share
// the hit/miss counters, so one cache object (and one Report.Cache
// block, one /v1/stats entry, one persistence snapshot) covers every
// mechanism family.
//
// A nil *ScoreCache is valid everywhere one is accepted and simply
// disables memoization, so callers thread an optional cache without
// branching.
type ScoreCache struct {
	mu           sync.RWMutex
	m            map[scoreKey]ChainScore // guarded by mu
	cells        map[cellKey]CellScore   // guarded by mu
	hits, misses atomic.Int64
	// tables holds the per-transition-matrix derived tables (powers,
	// log-domain influence rows, marginal prefixes) that survive across
	// ExactScore/ScoreBatch calls, so repeated releases and multi-length
	// profiles over the same fitted model extend tables incrementally
	// instead of rebuilding them. Not persisted: the tables are derived
	// data, rebuilt (and re-verified against the matrices) on demand.
	tables *powerCacheSet
}

// NewScoreCache returns an empty cache.
func NewScoreCache() *ScoreCache {
	return &ScoreCache{
		m:      make(map[scoreKey]ChainScore),
		cells:  make(map[cellKey]CellScore),
		tables: newPowerCacheSet(),
	}
}

// TableStats returns the influence-table cache's counters (zero for a
// nil cache).
func (sc *ScoreCache) TableStats() TableCacheStats {
	if sc == nil {
		return TableCacheStats{}
	}
	return sc.tables.stats()
}

// tableSet returns the cache's persistent table set, or a fresh
// call-scoped set when the cache is nil (so batch callers still share
// tables within the call).
func (sc *ScoreCache) tableSet() *powerCacheSet {
	if sc == nil || sc.tables == nil {
		return newPowerCacheSet()
	}
	return sc.tables
}

// Stats returns the hit/miss counters (zero for a nil cache).
//
// Consistency under concurrent traffic: the two counters are
// independent atomics read without a common lock, so a snapshot taken
// mid-lookup can be stale by the lookups that landed between the two
// loads. Both counters are monotone and every lookup increments
// exactly one of them, so the ratio Hits/(Hits+Misses) computed from
// one snapshot is always in [0, 1] and converges to the true hit rate
// as soon as traffic quiesces — good enough for the ratio math the
// stats endpoints do, without a lock on the scoring hot path.
func (sc *ScoreCache) Stats() CacheStats {
	if sc == nil {
		return CacheStats{}
	}
	return CacheStats{Hits: sc.hits.Load(), Misses: sc.misses.Load()}
}

// Len returns the number of memoized entries across both tables.
func (sc *ScoreCache) Len() int {
	if sc == nil {
		return 0
	}
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	return len(sc.m) + len(sc.cells)
}

// LookupCell returns the memoized Kantorovich profile for (fp, cell),
// counting a hit or miss. Nil caches always miss without counting.
func (sc *ScoreCache) LookupCell(fp Fingerprint, cell int) (CellScore, bool) {
	if sc == nil {
		return CellScore{}, false
	}
	sc.mu.RLock()
	s, ok := sc.cells[cellKey{fp: fp, cell: cell}]
	sc.mu.RUnlock()
	if ok {
		sc.hits.Add(1)
	} else {
		sc.misses.Add(1)
	}
	return s, ok
}

// StoreCell memoizes a Kantorovich cell profile. Nil caches drop it.
func (sc *ScoreCache) StoreCell(fp Fingerprint, cell int, s CellScore) {
	if sc == nil {
		return
	}
	sc.mu.Lock()
	sc.cells[cellKey{fp: fp, cell: cell}] = s
	sc.mu.Unlock()
}

// lookup returns the cached score for key, counting a hit or miss.
// Nil caches always miss (without counting).
func (sc *ScoreCache) lookup(key scoreKey) (ChainScore, bool) {
	if sc == nil {
		return ChainScore{}, false
	}
	sc.mu.RLock()
	s, ok := sc.m[key]
	sc.mu.RUnlock()
	if ok {
		sc.hits.Add(1)
	} else {
		sc.misses.Add(1)
	}
	return s, ok
}

// store memoizes a successful score. Nil caches drop it.
func (sc *ScoreCache) store(key scoreKey, s ChainScore) {
	if sc == nil {
		return
	}
	sc.mu.Lock()
	sc.m[key] = s
	sc.mu.Unlock()
}

func exactKey(fp Fingerprint, eps float64, opt ExactOptions) scoreKey {
	return scoreKey{fp: fp, eps: eps, exact: true, maxWidth: opt.MaxWidth, forceFull: opt.ForceFullSweep}
}

func approxKey(fp Fingerprint, eps float64, opt ApproxOptions) scoreKey {
	return scoreKey{fp: fp, eps: eps, exact: false, maxWidth: opt.MaxWidth, forceFull: opt.ForceFullSweep}
}

// ExactScore is the memoizing form of the package-level ExactScore:
// one fingerprint pass replaces the whole sweep on a hit. Errors are
// never cached.
func (sc *ScoreCache) ExactScore(class markov.Class, eps float64, opt ExactOptions) (ChainScore, error) {
	if sc == nil {
		return ExactScore(class, eps, opt)
	}
	if err := validateChainClass(class, eps); err != nil {
		return ChainScore{}, err
	}
	key := exactKey(ClassFingerprint(class), eps, opt)
	if s, ok := sc.lookup(key); ok {
		return s, nil
	}
	// Miss: score through the cache's persistent table set, so the next
	// score over the same matrix (same or grown length, different ε)
	// reuses the influence tables instead of rebuilding them.
	s, err := exactScoreWith(class, eps, opt, sched.New(opt.Parallelism), sc.tableSet())
	if err != nil {
		return s, err
	}
	sc.store(key, s)
	return s, nil
}

// ApproxScore is the memoizing form of the package-level ApproxScore.
func (sc *ScoreCache) ApproxScore(class markov.Class, eps float64, opt ApproxOptions) (ChainScore, error) {
	if sc == nil {
		return ApproxScore(class, eps, opt)
	}
	if err := validateChainClass(class, eps); err != nil {
		return ChainScore{}, err
	}
	key := approxKey(ClassFingerprint(class), eps, opt)
	if s, ok := sc.lookup(key); ok {
		return s, nil
	}
	s, err := ApproxScore(class, eps, opt)
	if err != nil {
		return s, err
	}
	sc.store(key, s)
	return s, nil
}

// ExactScoreMulti is the memoizing form of ExactScoreMulti: each
// distinct session length is keyed separately (the fingerprint covers
// T), so repeated multi-length releases hit per length.
func (sc *ScoreCache) ExactScoreMulti(class markov.Class, eps float64, opt ExactOptions, lengths []int) (ChainScore, error) {
	return multiScore(class, lengths, func(lc markov.Class) (ChainScore, error) {
		return sc.ExactScore(lc, eps, opt)
	})
}

// ApproxScoreMulti is the memoizing form of ApproxScoreMulti.
func (sc *ScoreCache) ApproxScoreMulti(class markov.Class, eps float64, opt ApproxOptions, lengths []int) (ChainScore, error) {
	return multiScore(class, lengths, func(lc markov.Class) (ChainScore, error) {
		return sc.ApproxScore(lc, eps, opt)
	})
}

// powerCacheSet shares the per-transition-matrix derived tables across
// θ (and across batch classes, and — when owned by a ScoreCache —
// across releases) with equal transition matrices: per-user empirical
// chains and init-gridded classes repeat the same P, and those tables
// are the dominant per-θ setup cost. Buckets are keyed by a 64-bit
// matrix hash but verified with full equality, so a hash collision
// costs one comparison, never a wrong table. A nil set degrades to
// private caches.
type powerCacheSet struct {
	mu      sync.Mutex
	m       map[uint64][]*matrixTables
	entries int
	// hits/misses count matrix-level lookups, ScoreCache-style: a hit
	// means the scorer found resident tables to extend or reuse instead
	// of building from scratch. Surfaced via ScoreCache.TableStats and
	// pufferd /v1/stats.
	hits, misses atomic.Int64
}

// matrixTables bundles every derived table the exact scorer keeps per
// transition matrix: the raw power cache, the log-domain influence
// tables over those powers, and per-initial-distribution marginal
// prefixes. All three grow monotonically and in place, so a persistent
// set makes repeated or length-incremented scoring (T then T+1) pay
// only for the new rows.
type matrixTables struct {
	p  *matrix.Dense
	pc *matrix.PowerCache
	ic *matrix.InfluenceCache

	mu    sync.Mutex
	margs []*margTable
}

// margTable is one cached marginal prefix: the node marginals of a
// chain (P, init) up to the longest length scored so far. Rows are
// produced by exactly the recurrence markov.Chain.Marginals runs, one
// VecMulInto per new node, so an extended table is bit-for-bit the
// table a fresh computation would build regardless of how growth was
// batched.
type margTable struct {
	init []float64
	mu   sync.Mutex
	rows [][]float64
}

const (
	// margCacheMaxFloats bounds one resident marginal prefix (T·k
	// floats ≈ 8·T·k bytes); longer chains compute marginals per call
	// instead of pinning tens of MB per initial distribution.
	margCacheMaxFloats = 1 << 22
	// maxMargInits bounds the cached initial distributions per matrix
	// (initial-distribution grids can be wide).
	maxMargInits = 64
	// maxTableMatrices bounds the number of matrices with resident
	// derived tables in one set; past it, new matrices get private
	// tables that die with the call, so a server streaming unboundedly
	// many distinct models cannot grow the cache without limit.
	maxTableMatrices = 256
)

func newMatrixTables(p *matrix.Dense) *matrixTables {
	pc := matrix.NewPowerCache(p)
	return &matrixTables{p: p, pc: pc, ic: matrix.NewInfluenceCache(pc)}
}

func newPowerCacheSet() *powerCacheSet {
	return &powerCacheSet{m: make(map[uint64][]*matrixTables)}
}

// tables returns the shared derived tables for p, creating them on
// first sight.
func (s *powerCacheSet) tables(p *matrix.Dense) *matrixTables {
	if s == nil {
		return newMatrixTables(p)
	}
	key := matrixKey(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.m[key] {
		if e.p == p || e.p.Equal(p) {
			s.hits.Add(1)
			return e
		}
	}
	s.misses.Add(1)
	e := newMatrixTables(p)
	if s.entries < maxTableMatrices {
		s.entries++
		s.m[key] = append(s.m[key], e)
	}
	return e
}

// marginals returns the node marginals of theta up to T, serving them
// from (and extending) the per-init cached prefix when the table is
// small enough to keep resident.
func (t *matrixTables) marginals(theta markov.Chain, T int) [][]float64 {
	if T*len(theta.Init) > margCacheMaxFloats {
		return theta.Marginals(T)
	}
	t.mu.Lock()
	var mt *margTable
	for _, c := range t.margs {
		if equalExactly(c.init, theta.Init) {
			mt = c
			break
		}
	}
	if mt == nil {
		if len(t.margs) >= maxMargInits {
			t.mu.Unlock()
			return theta.Marginals(T)
		}
		init := make([]float64, len(theta.Init))
		copy(init, theta.Init)
		mt = &margTable{init: init}
		t.margs = append(t.margs, mt)
	}
	t.mu.Unlock()
	return mt.grow(theta, T)
}

// grow extends the prefix to T rows and returns the first T (stable
// row views; rows are immutable once built).
func (mt *margTable) grow(theta markov.Chain, T int) [][]float64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	have := len(mt.rows)
	if have >= T {
		return mt.rows[:T:T]
	}
	k := len(mt.init)
	slab := make([]float64, (T-have)*k)
	for t := have; t < T; t++ {
		row := slab[(t-have)*k : (t-have+1)*k : (t-have+1)*k]
		if t == 0 {
			copy(row, mt.init)
		} else {
			theta.P.VecMulInto(row, mt.rows[t-1])
		}
		mt.rows = append(mt.rows, row)
	}
	return mt.rows[:T:T]
}

// equalExactly reports element-wise == equality (no tolerance — the
// cached marginal rows must be bit-identical to a fresh computation,
// so only exactly equal initial distributions may share a prefix).
func equalExactly(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		//privlint:allow floatcompare cache keys must match bit-exactly; tolerance would alias entries
		if v != b[i] {
			return false
		}
	}
	return true
}

// TableCacheStats reports the influence-table cache's traffic.
// Hits/Misses count matrix-level lookups (a hit reuses or extends
// resident tables); Matrices is the resident matrix count and Powers
// the total influence-table rows cached across them.
type TableCacheStats struct {
	Hits, Misses int64
	Matrices     int
	Powers       int
}

// stats snapshots the set's counters.
func (s *powerCacheSet) stats() TableCacheStats {
	if s == nil {
		return TableCacheStats{}
	}
	st := TableCacheStats{Hits: s.hits.Load(), Misses: s.misses.Load()}
	s.mu.Lock()
	defer s.mu.Unlock()
	st.Matrices = s.entries
	for _, bucket := range s.m {
		for _, e := range bucket {
			st.Powers += e.ic.Len()
		}
	}
	return st
}

// ScoreBatch computes ExactScore for every class through one worker-
// pool invocation. Classes with identical fingerprints are scored once
// (O(unique) scoring work), all scheduled misses share one power-cache
// set across θ with equal transition matrices, and cache (which may be
// nil) is consulted first and updated after. The returned scores align
// with classes and are bit-for-bit identical to per-class ExactScore
// calls at any parallelism.
func ScoreBatch(cache *ScoreCache, classes []markov.Class, eps float64, opt ExactOptions) ([]ChainScore, error) {
	return scoreBatch(cache, classes, opt.Parallelism,
		func(fp Fingerprint) scoreKey { return exactKey(fp, eps, opt) },
		func(class markov.Class, pool sched.Pool, pcs *powerCacheSet) (ChainScore, error) {
			return exactScoreWith(class, eps, opt, pool, pcs)
		})
}

// ApproxScoreBatch is ScoreBatch for MQMApprox. The closed-form scorer
// needs no power tables, so batching buys fingerprint deduplication
// and one pool spin-up.
func ApproxScoreBatch(cache *ScoreCache, classes []markov.Class, eps float64, opt ApproxOptions) ([]ChainScore, error) {
	return scoreBatch(cache, classes, opt.Parallelism,
		func(fp Fingerprint) scoreKey { return approxKey(fp, eps, opt) },
		func(class markov.Class, pool sched.Pool, _ *powerCacheSet) (ChainScore, error) {
			o := opt
			o.Parallelism = pool.Workers()
			return ApproxScore(class, eps, o)
		})
}

func scoreBatch(cache *ScoreCache, classes []markov.Class, parallelism int,
	key func(Fingerprint) scoreKey,
	score func(markov.Class, sched.Pool, *powerCacheSet) (ChainScore, error),
) ([]ChainScore, error) {
	if len(classes) == 0 {
		return nil, nil
	}
	groupOf := make([]int, len(classes))
	fpToGroup := make(map[Fingerprint]int, len(classes))
	var reps []int      // group → first class index with that fingerprint
	var keys []scoreKey // group → cache key
	for i, class := range classes {
		if class == nil {
			return nil, errors.New("core: nil class in ScoreBatch")
		}
		fp := ClassFingerprint(class)
		g, ok := fpToGroup[fp]
		if !ok {
			g = len(reps)
			fpToGroup[fp] = g
			reps = append(reps, i)
			keys = append(keys, key(fp))
		}
		groupOf[i] = g
	}
	res := make([]ChainScore, len(reps))
	var need []int
	for g := range reps {
		if s, ok := cache.lookup(keys[g]); ok {
			res[g] = s
			continue
		}
		need = append(need, g)
	}
	if len(need) > 0 {
		errs := make([]error, len(need))
		pcs := cache.tableSet()
		outer, inner := sched.New(parallelism).Split(len(need))
		outer.ForEach(len(need), func(i int) {
			g := need[i]
			res[g], errs[i] = score(classes[reps[g]], inner, pcs)
		})
		for i, g := range need {
			if errs[i] != nil {
				return nil, errs[i]
			}
			cache.store(keys[g], res[g])
		}
	}
	out := make([]ChainScore, len(classes))
	for i, g := range groupOf {
		out[i] = res[g]
	}
	return out, nil
}
