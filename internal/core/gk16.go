package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
	"pufferfish/internal/query"
)

// GK16 is a reconstruction of the concurrent mechanism of Ghosh &
// Kleinberg, "Inferential privacy guarantees for differentially
// private mechanisms" (arXiv:1603.01508), reference [14] of the paper,
// built from the descriptions in Sections 1.1, 5.1 and 5.4 (no
// reference implementation exists; see DESIGN.md §2.3):
//
//   - For each θ, an *influence matrix* Γ ∈ ℝ^{T×T} is computed from
//     local transitions between successive time steps (the property
//     Section 5.4 identifies as its limitation): Γ[t][t−1] is half the
//     worst-case log-ratio of the forward kernel rows,
//     γ_f = ½·max_{x,x',y} log P(y|x)/P(y|x'), and Γ[t][t+1] the same
//     for the backward (time-reversal) kernel.
//   - The mechanism applies only when ‖Γ‖₂ < 1, and then runs the
//     entry-DP Laplace mechanism at a reduced budget
//     ε′ = ε/‖(I−Γ)⁻¹‖_∞, i.e. noise scale L·‖(I−Γ)⁻¹‖_∞/ε, which
//     grows without bound as the spectral norm approaches 1 — matching
//     the qualitative behaviour reported in the paper.
//
// For a class Θ, the scale is the worst case over θ, and the mechanism
// is inapplicable if any θ fails the spectral condition.

// GK16Score holds the noise-scale computation of the GK16 baseline.
type GK16Score struct {
	// Sigma is ‖(I−Γ)⁻¹‖_∞/ε: the Laplace scale of the release is
	// Lipschitz·Sigma, making it directly comparable to ChainScore.
	Sigma float64
	// SpectralNorm is the worst ‖Γ‖₂ over the class.
	SpectralNorm float64
	// ForwardInfluence and BackwardInfluence are the worst γ_f, γ_b.
	ForwardInfluence, BackwardInfluence float64
}

// ErrGK16Inapplicable is wrapped by GK16SigmaClass when the spectral
// condition fails, mirroring the N/A entries of Tables 1–3.
var ErrGK16Inapplicable = fmt.Errorf("core: GK16 inapplicable: influence matrix has spectral norm ≥ 1")

// GK16SigmaClass computes the GK16 noise multiplier for a chain class,
// taking the worst case over Chains().
func GK16SigmaClass(class markov.Class, eps float64) (GK16Score, error) {
	if err := validateChainClass(class, eps); err != nil {
		return GK16Score{}, err
	}
	worst := GK16Score{}
	for _, theta := range class.Chains() {
		sc, err := gk16Theta(theta, class.T(), eps)
		if err != nil {
			return GK16Score{}, err
		}
		if sc.Sigma > worst.Sigma {
			worst = sc
		}
	}
	return worst, nil
}

func gk16Theta(theta markov.Chain, T int, eps float64) (GK16Score, error) {
	gammaF, err := halfMaxLogRatio(theta.P)
	if err != nil {
		return GK16Score{}, fmt.Errorf("%w (unbounded forward influence)", ErrGK16Inapplicable)
	}
	rev, err := theta.TimeReversal()
	if err != nil {
		// Reducible or zero-mass chains have no well-defined backward
		// kernel; the mechanism cannot certify anything.
		return GK16Score{}, fmt.Errorf("%w (time reversal undefined: %v)", ErrGK16Inapplicable, err)
	}
	gammaB, err := halfMaxLogRatio(rev)
	if err != nil {
		return GK16Score{}, fmt.Errorf("%w (unbounded backward influence)", ErrGK16Inapplicable)
	}

	snorm := gk16SpectralNorm(gammaF, gammaB, T)
	if snorm >= 1 {
		return GK16Score{}, fmt.Errorf("%w (‖Γ‖₂ = %.4f)", ErrGK16Inapplicable, snorm)
	}

	// Row sums of (I−Γ)⁻¹ via one tridiagonal solve (I−Γ)x = 1.
	tri := matrix.Tridiagonal{
		Sub:   make([]float64, T),
		Diag:  make([]float64, T),
		Super: make([]float64, T),
	}
	ones := make([]float64, T)
	for t := 0; t < T; t++ {
		tri.Diag[t] = 1
		if t > 0 {
			tri.Sub[t] = -gammaF
		}
		if t < T-1 {
			tri.Super[t] = -gammaB
		}
		ones[t] = 1
	}
	x, err := matrix.SolveTridiagonal(tri, ones)
	if err != nil {
		return GK16Score{}, fmt.Errorf("core: GK16 solve failed: %v", err)
	}
	mult := 0.0
	for _, v := range x {
		if math.Abs(v) > mult {
			mult = math.Abs(v)
		}
	}
	return GK16Score{
		Sigma:             mult / eps,
		SpectralNorm:      snorm,
		ForwardInfluence:  gammaF,
		BackwardInfluence: gammaB,
	}, nil
}

// halfMaxLogRatio returns ½·max_{x,x',y} log K(x,y)/K(x',y) for a
// stochastic kernel K, or an error when the ratio is unbounded (some
// transition probability is zero while another row's is not).
func halfMaxLogRatio(kernel *matrix.Dense) (float64, error) {
	k, _ := kernel.Dims()
	worst := 0.0
	for y := 0; y < k; y++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for x := 0; x < k; x++ {
			v := kernel.At(x, y)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		//privlint:allow floatcompare exact zero means the column was never touched
		if hi == 0 {
			continue // column never used
		}
		if lo <= 0 {
			return 0, fmt.Errorf("core: unbounded influence (zero transition probability)")
		}
		if r := math.Log(hi/lo) / 2; r > worst {
			worst = r
		}
	}
	return worst, nil
}

// gk16SpectralNorm returns ‖Γ‖₂ for the T×T tridiagonal influence
// matrix with constant bands γ_f (sub-diagonal) and γ_b
// (super-diagonal).
//
// For the symmetric case γ_f = γ_b = γ the norm is exactly
// 2γ·cos(π/(T+1)); in general the Schur test gives the two-sided
// bracket 2√(γ_f·γ_b)·cos(π/(T+1)) ≤ ‖Γ‖₂ ≤ γ_f + γ_b, and the norm
// converges (from below) to the bi-infinite Toeplitz-symbol value
// γ_f + γ_b as T grows. The chains in the experiments have T ≥ 100,
// where the finite-size deviation is below 0.05%, so the applicability
// rule of this reconstruction is defined by the (conservative)
// Toeplitz limit — with the exact cosine correction in the symmetric
// case.
func gk16SpectralNorm(gammaF, gammaB float64, T int) float64 {
	limit := gammaF + gammaB
	if T < 2 {
		return 0
	}
	//privlint:allow floatcompare exact symmetric case tightens the bound; inexact falls back conservatively
	if gammaF == gammaB {
		return limit * math.Cos(math.Pi/float64(T+1))
	}
	return limit
}

// GK16Release runs the reconstructed GK16 mechanism end to end.
func GK16Release(data []int, q query.Query, class markov.Class, eps float64, rng *rand.Rand) (Release, GK16Score, error) {
	score, err := GK16SigmaClass(class, eps)
	if err != nil {
		return Release{}, GK16Score{}, err
	}
	exact, err := q.Evaluate(data)
	if err != nil {
		return Release{}, GK16Score{}, err
	}
	scale := q.Lipschitz() * score.Sigma
	return Release{
		Values:     addLaplace(exact, scale, rng),
		NoiseScale: scale,
		Sigma:      score.Sigma,
		Epsilon:    eps,
		Mechanism:  "GK16",
	}, score, nil
}
