package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pufferfish/internal/markov"
	"pufferfish/internal/query"
	"pufferfish/internal/sched"
)

// ApproxOptions tunes Algorithm 4 (MQMApprox).
type ApproxOptions struct {
	// MaxWidth is the quilt-size limit ℓ. Zero picks ℓ = 4a* from
	// Lemma 4.9.
	MaxWidth int
	// ForceFullSweep disables the Lemma 4.9 fast path (middle node
	// only) even when T ≥ 8a*. Used by ablation benchmarks and tests.
	ForceFullSweep bool
	// Parallelism bounds the worker count of the node sweep: 0 uses
	// every CPU, 1 runs strictly serial. Scores are identical at every
	// setting.
	Parallelism int
}

// influenceBound holds the Lemma 4.8 / Lemma C.1 closed-form upper
// bounds on max-influence, parameterized by π^min_Θ and g_Θ.
type influenceBound struct {
	piMin, gap float64
}

// sideTerm returns log((π^min + e^{−g·t/2})/(π^min − e^{−g·t/2})),
// the per-side ingredient of Lemma 4.8, or +Inf when t is below the
// validity threshold 2·log(1/π^min)/g (equivalently when the
// denominator is non-positive).
func (ib influenceBound) sideTerm(t int) float64 {
	e := math.Exp(-ib.gap * float64(t) / 2)
	if e >= ib.piMin {
		return math.Inf(1)
	}
	return math.Log((ib.piMin + e) / (ib.piMin - e))
}

// bound returns the closed-form upper bound on e_Θ(X_Q | X_i) for the
// quilt: twoSided(a,b) = side(b) + 2·side(a); left-only {X_{i−a}} =
// 2·side(a); right-only {X_{i+b}} = side(b); trivial = 0.
func (ib influenceBound) bound(q ChainQuilt) float64 {
	switch {
	case q.Trivial():
		return 0
	case q.A > 0 && q.B > 0:
		return ib.sideTerm(q.B) + 2*ib.sideTerm(q.A)
	case q.A > 0:
		return 2 * ib.sideTerm(q.A)
	default:
		return ib.sideTerm(q.B)
	}
}

// sideTable memoizes sideTerm(t) for t = 1…ℓ. The closed-form sweep
// evaluates the same ≤ ℓ distinct side terms for every (node, quilt)
// pair, so one exp+log per distinct t replaces two transcendentals per
// candidate quilt — the bound evaluation becomes a table add.
type sideTable struct {
	side []float64 // side[t-1] = sideTerm(t)
}

func newSideTable(ib influenceBound, ell int) sideTable {
	s := make([]float64, ell)
	for t := 1; t <= ell; t++ {
		s[t-1] = ib.sideTerm(t)
	}
	return sideTable{side: s}
}

// bound is influenceBound.bound served from the table; quilt offsets
// are ≤ ℓ by the sweep's loop bounds. The addition order matches the
// direct form exactly, so the scores are bit-identical.
func (st sideTable) bound(q ChainQuilt) float64 {
	switch {
	case q.Trivial():
		return 0
	case q.A > 0 && q.B > 0:
		return st.side[q.B-1] + 2*st.side[q.A-1]
	case q.A > 0:
		return 2 * st.side[q.A-1]
	default:
		return st.side[q.B-1]
	}
}

// aStar returns a* = 2·⌈log((e^{ε/6}+1)/(e^{ε/6}−1)·(1/π^min))/g⌉
// from Lemma 4.9.
func (ib influenceBound) aStar(eps float64) int {
	r := (math.Exp(eps/6) + 1) / (math.Exp(eps/6) - 1)
	return 2 * int(math.Ceil(math.Log(r/ib.piMin)/ib.gap))
}

// classBound extracts and validates (π^min_Θ, g_Θ) from the class,
// surfacing the Lemma 4.8 irreducibility/aperiodicity hypotheses as
// errors.
func classBound(class markov.Class) (influenceBound, error) {
	piMin, err := class.PiMin()
	if err != nil {
		return influenceBound{}, fmt.Errorf("core: MQMApprox needs π^min_Θ: %w", err)
	}
	gap, err := class.Gap()
	if err != nil {
		return influenceBound{}, fmt.Errorf("core: MQMApprox needs g_Θ: %w", err)
	}
	if !(piMin > 0) {
		return influenceBound{}, fmt.Errorf("core: π^min_Θ = %v; Lemma 4.8 requires it positive", piMin)
	}
	if !(gap > 0) {
		return influenceBound{}, fmt.Errorf("core: g_Θ = %v; Lemma 4.8 requires a positive eigengap", gap)
	}
	return influenceBound{piMin: piMin, gap: gap}, nil
}

// ApproxScore computes σ_max for Algorithm 4 using the closed-form
// influence bounds. When T ≥ 8a* (Lemma 4.9) it scores only the middle
// node over quilts of width at most 4a*, which is exact for the
// approximate scores by Lemma C.4; otherwise it sweeps every node.
func ApproxScore(class markov.Class, eps float64, opt ApproxOptions) (ChainScore, error) {
	if err := validateChainClass(class, eps); err != nil {
		return ChainScore{}, err
	}
	ib, err := classBound(class)
	if err != nil {
		return ChainScore{}, err
	}
	T := class.T()
	aStar := ib.aStar(eps)

	ell := opt.MaxWidth
	if ell <= 0 {
		ell = 4 * aStar
	}
	if ell > T {
		ell = T
	}

	st := newSideTable(ib, ell)
	if !opt.ForceFullSweep {
		// Lemma 4.9 / Lemma C.4 fast path: whenever the middle node's
		// optimal quilt is an interior two-sided quilt, σ_max equals
		// σ_{⌈T/2⌉} (the closed-form bounds depend only on (a, b), so
		// Lemma C.4's replacement argument applies for any T, and
		// Lemma 4.9 guarantees the condition holds once T ≥ 8a*).
		mid := (T + 1) / 2
		sigma, quilt, infl := approxNodeScore(st, mid, T, ell, eps)
		if quilt.A > 0 && quilt.B > 0 {
			return ChainScore{Sigma: sigma, Node: mid, Quilt: quilt, Influence: infl, Ell: ell}, nil
		}
	}

	// Full sweep: per-node scores are independent closed-form
	// evaluations, so they fan across contiguous node chunks; the
	// chunk-ordered merge keeps the serial first-maximum.
	best := sched.ReduceChunks(sched.New(opt.Parallelism), T, ChainScore{Sigma: math.Inf(-1), Ell: ell},
		func(start, end int) ChainScore {
			local := ChainScore{Sigma: math.Inf(-1), Ell: ell}
			for i := start + 1; i <= end; i++ { // nodes are 1-based
				sigma, quilt, infl := approxNodeScore(st, i, T, ell, eps)
				if sigma > local.Sigma {
					local = ChainScore{Sigma: sigma, Node: i, Quilt: quilt, Influence: infl, Ell: ell}
				}
			}
			return local
		},
		maxChainScore)
	return best, nil
}

// approxNodeScore returns σ_i = min over Lemma 4.6 quilts with
// card(X_N) ≤ ℓ (plus trivial) of the bound-based score. Like the
// exact scorer it prunes on the card/ε score floor (every bound is
// ≥ 0, so a quilt scores at least card/ε): pruned quilts provably
// score ≥ the running minimum and ties keep the earlier quilt, so the
// selected triple matches the exhaustive loop's exactly.
func approxNodeScore(st sideTable, i, T, ell int, eps float64) (float64, ChainQuilt, float64) {
	// Trivial quilt (bound 0, score T/ε) seeds the minimum.
	bestSigma := quiltScore(T, 0, eps)
	bestQuilt := ChainQuilt{}
	bestInfl := 0.0
	for a := 1; a <= i-1 && a <= ell; a++ {
		// Both remaining card floors grow with a; once neither can beat
		// the incumbent, stop.
		if float64(a)/eps >= bestSigma && float64(T-i+a)/eps >= bestSigma {
			break
		}
		if card := T - i + a; card <= ell && float64(card)/eps < bestSigma {
			infl := 2 * st.side[a-1] // left-only quilt {X_{i−a}}
			if s := quiltScore(card, infl, eps); s < bestSigma {
				bestSigma, bestQuilt, bestInfl = s, ChainQuilt{A: a}, infl
			}
		}
		sa2 := 2 * st.side[a-1]
		for b := 1; b <= T-i && a+b-1 <= ell; b++ {
			card := a + b - 1
			if float64(card)/eps >= bestSigma {
				break // card grows with b
			}
			infl := st.side[b-1] + sa2
			if s := quiltScore(card, infl, eps); s < bestSigma {
				bestSigma, bestQuilt, bestInfl = s, ChainQuilt{A: a, B: b}, infl
			}
		}
	}
	for b := 1; b <= T-i && i+b-1 <= ell; b++ {
		card := i + b - 1
		if float64(card)/eps >= bestSigma {
			break // card grows with b
		}
		infl := st.side[b-1] // right-only quilt {X_{i+b}}
		if s := quiltScore(card, infl, eps); s < bestSigma {
			bestSigma, bestQuilt, bestInfl = s, ChainQuilt{B: b}, infl
		}
	}
	return bestSigma, bestQuilt, bestInfl
}

// MQMApprox runs Algorithm 4 end to end.
func MQMApprox(data []int, q query.Query, class markov.Class, eps float64, opt ApproxOptions, rng *rand.Rand) (Release, ChainScore, error) {
	score, err := ApproxScore(class, eps, opt)
	if err != nil {
		return Release{}, ChainScore{}, err
	}
	if math.IsInf(score.Sigma, 1) {
		return Release{}, score, fmt.Errorf("core: MQMApprox inapplicable: every quilt bound is ≥ ε")
	}
	rel, err := releaseWithScore(data, q, score, eps, "MQMApprox", rng)
	if err != nil {
		return Release{}, ChainScore{}, err
	}
	return rel, score, nil
}

// UtilityBound returns the Theorem 4.10 sufficient chain length and
// the guarantee that, beyond it, the MQMApprox noise scale for a
// 1-Lipschitz query is at most C/ε with C depending only on Θ:
// T ≥ 8·⌈log((e^{ε/6}+1)/(e^{ε/6}−1)·(1/π^min))/g⌉ + 3.
func UtilityBound(class markov.Class, eps float64) (minT int, err error) {
	if err := validateChainClass(class, eps); err != nil {
		return 0, err
	}
	ib, err := classBound(class)
	if err != nil {
		return 0, err
	}
	return 4*ib.aStar(eps) + 3, nil
}
