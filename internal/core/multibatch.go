package core

import (
	"fmt"

	"pufferfish/internal/markov"
)

// MultiSpec is one multi-length scoring request for the batched forms
// of ExactScoreMulti/ApproxScoreMulti: a class governing a database of
// independent chains plus that database's chain-length multiset. The
// class's own T is ignored, exactly as in the non-batched forms.
type MultiSpec struct {
	Class   markov.Class
	Lengths []int
}

// ExactScoreMultiBatch computes ExactScoreMulti for every spec through
// shared ScoreBatch invocations, so length-classes with identical
// fingerprints — the same fitted model at the same session length,
// whether within one spec or across specs — are scored once. cache may
// be nil. The returned scores align with specs and are bit-for-bit
// identical to per-spec ExactScoreMulti calls: each spec's result is
// the same max over the same per-length scores in the same order.
func ExactScoreMultiBatch(cache *ScoreCache, specs []MultiSpec, eps float64, opt ExactOptions) ([]ChainScore, error) {
	return multiScoreBatch(specs, func(classes []markov.Class) ([]ChainScore, error) {
		return ScoreBatch(cache, classes, eps, opt)
	})
}

// ApproxScoreMultiBatch is ExactScoreMultiBatch for Algorithm 4.
func ApproxScoreMultiBatch(cache *ScoreCache, specs []MultiSpec, eps float64, opt ApproxOptions) ([]ChainScore, error) {
	return multiScoreBatch(specs, func(classes []markov.Class) ([]ChainScore, error) {
		return ApproxScoreBatch(cache, classes, eps, opt)
	})
}

// multiScoreBatch runs the multiScore algorithm over many specs with
// two batched scoring phases: every spec's maximum length first (fixing
// each spec's plateau), then the remaining distinct below-plateau
// lengths of all specs together. Per spec the per-length scores and the
// strict-inequality max over them match multiScore exactly.
func multiScoreBatch(specs []MultiSpec, scoreAll func([]markov.Class) ([]ChainScore, error)) ([]ChainScore, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	maxLens := make([]int, len(specs))
	tops := make([]markov.Class, len(specs))
	for i, spec := range specs {
		if spec.Class == nil {
			return nil, fmt.Errorf("core: spec %d: nil class", i)
		}
		if len(spec.Lengths) == 0 {
			return nil, fmt.Errorf("core: spec %d: no chain lengths", i)
		}
		maxLen := spec.Lengths[0]
		for _, l := range spec.Lengths[1:] {
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen < 1 {
			return nil, fmt.Errorf("core: spec %d: invalid chain length %d", i, maxLen)
		}
		maxLens[i] = maxLen
		tops[i] = lengthClass{Class: spec.Class, t: maxLen}
	}
	topScores, err := scoreAll(tops)
	if err != nil {
		return nil, err
	}

	// Phase 2: the distinct lengths below each spec's plateau, flattened
	// across specs so equal (class, length) pairs dedupe in one batch.
	type pending struct{ spec, length int }
	var rest []pending
	var restClasses []markov.Class
	restLens := make([][]int, len(specs))
	for i, spec := range specs {
		top := topScores[i]
		plateau := 2*top.Ell + 1
		if !(top.Quilt.A > 0 && top.Quilt.B > 0) {
			plateau = maxLens[i] + 1
		}
		distinct, err := distinctScoringLengths(spec.Lengths, plateau)
		if err != nil {
			return nil, err
		}
		for _, l := range distinct {
			if l == maxLens[i] {
				continue // already scored in phase 1
			}
			restLens[i] = append(restLens[i], l)
			rest = append(rest, pending{spec: i, length: l})
			restClasses = append(restClasses, lengthClass{Class: spec.Class, t: l})
		}
	}
	restScores := map[pending]ChainScore{}
	if len(restClasses) > 0 {
		scores, err := scoreAll(restClasses)
		if err != nil {
			return nil, err
		}
		for j, p := range rest {
			restScores[p] = scores[j]
		}
	}

	out := make([]ChainScore, len(specs))
	for i := range specs {
		best := topScores[i]
		for _, l := range restLens[i] {
			if sc := restScores[pending{spec: i, length: l}]; sc.Sigma > best.Sigma {
				best = sc
			}
		}
		out[i] = best
	}
	return out, nil
}
