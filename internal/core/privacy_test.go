package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pufferfish/internal/dist"
	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
	"pufferfish/internal/query"
)

// TestMQMExactPrivacyEndToEnd: the σ chosen by Algorithm 3 passes the
// analytic Definition 2.1 check on small chains (Theorem 4.3), for
// several chains and ε values.
func TestMQMExactPrivacyEndToEnd(t *testing.T) {
	cases := []struct {
		chain markov.Chain
		T     int
		eps   float64
	}{
		{markov.BinaryChain(0.5, 0.9, 0.9), 6, 1},
		{markov.BinaryChain(0.7, 0.8, 0.6), 5, 0.5},
		{markov.BinaryChain(0.3, 0.6, 0.7), 7, 2},
	}
	w := []int{0, 1}
	for _, c := range cases {
		class, err := markov.NewFinite([]markov.Chain{c.chain}, c.T)
		if err != nil {
			t.Fatal(err)
		}
		score, err := ExactScore(class, c.eps, ExactOptions{MaxWidth: c.T})
		if err != nil {
			t.Fatal(err)
		}
		grid := floats.Linspace(-8, float64(c.T)+8, 150)
		// The count query is 1-Lipschitz per record, so the release
		// scale is σ itself.
		if err := VerifyChainPufferfish(class, w, score.Sigma, c.eps, 1e-6, grid); err != nil {
			t.Errorf("T=%d ε=%v: MQMExact scale σ=%v violates privacy: %v", c.T, c.eps, score.Sigma, err)
		}
	}
}

// TestMQMApproxPrivacyEndToEnd: MQMApprox's (larger) σ also passes.
func TestMQMApproxPrivacyEndToEnd(t *testing.T) {
	chain, err := markov.BinaryChain(0.5, 0.8, 0.7).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	T := 8
	eps := 1.0
	class, err := markov.NewFinite([]markov.Chain{chain}, T)
	if err != nil {
		t.Fatal(err)
	}
	score, err := ApproxScore(class, eps, ApproxOptions{ForceFullSweep: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(score.Sigma, 1) {
		t.Skip("approx bound vacuous at this size; exact covers the case")
	}
	grid := floats.Linspace(-8, float64(T)+8, 150)
	if err := VerifyChainPufferfish(class, []int{0, 1}, score.Sigma, eps, 1e-6, grid); err != nil {
		t.Errorf("MQMApprox scale violates privacy: %v", err)
	}
}

// TestUnderNoisingDetected: scales well below the minimal private
// scale must be rejected by the verifier.
func TestUnderNoisingDetected(t *testing.T) {
	chain := markov.BinaryChain(0.5, 0.95, 0.95)
	T := 6
	class, err := markov.NewFinite([]markov.Chain{chain}, T)
	if err != nil {
		t.Fatal(err)
	}
	grid := floats.Linspace(-6, float64(T)+6, 120)
	// Entry-DP noise (scale 1/ε) ignores correlation; on this strongly
	// correlated chain it must fail the Pufferfish check.
	if err := VerifyChainPufferfish(class, []int{0, 1}, 1.0, 1.0, 1e-6, grid); err == nil {
		t.Error("entry-DP scale passed a correlated-chain Pufferfish check")
	}
}

// TestMinimalPrivateScaleBrackets: σ_exact is an upper bound on the
// minimal private scale, and within a modest factor of it on small
// chains (sanity that the mechanism is not absurdly conservative).
func TestMinimalPrivateScaleBrackets(t *testing.T) {
	chain := markov.BinaryChain(0.5, 0.85, 0.8)
	T := 6
	eps := 1.0
	class, err := markov.NewFinite([]markov.Chain{chain}, T)
	if err != nil {
		t.Fatal(err)
	}
	grid := floats.Linspace(-8, float64(T)+8, 100)
	minScale, err := MinimalPrivateScale(class, []int{0, 1}, eps, grid)
	if err != nil {
		t.Fatal(err)
	}
	score, err := ExactScore(class, eps, ExactOptions{MaxWidth: T})
	if err != nil {
		t.Fatal(err)
	}
	if score.Sigma < minScale-1e-6 {
		t.Errorf("σ_exact %v below minimal private scale %v", score.Sigma, minScale)
	}
	if score.Sigma > 60*minScale {
		t.Errorf("σ_exact %v more than 60× the minimal scale %v", score.Sigma, minScale)
	}
}

// TestCompositionAccounting checks Theorem 4.4's K·max ε accounting
// and the pinned-active-quilt behaviour.
func TestCompositionAccounting(t *testing.T) {
	chain := theta2Chain()
	T := 40
	class, err := markov.NewFinite([]markov.Chain{chain}, T)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	data := chain.Sample(T, rng)
	comp := NewExactComposition(class, ExactOptions{MaxWidth: T})
	q := query.StateFrequency{State: 1, N: T}

	var scales []float64
	for k := 0; k < 3; k++ {
		rel, err := comp.Release(data, q, 1.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		scales = append(scales, rel.NoiseScale)
	}
	if comp.Count() != 3 {
		t.Errorf("Count = %d", comp.Count())
	}
	if !floats.Eq(comp.TotalEpsilon(), 3.0, 1e-12) {
		t.Errorf("TotalEpsilon = %v, want 3", comp.TotalEpsilon())
	}
	// Same ε → identical scales (same active quilt, Definition 4.5).
	if !floats.Eq(scales[0], scales[1], 1e-12) || !floats.Eq(scales[1], scales[2], 1e-12) {
		t.Errorf("scales differ across releases: %v", scales)
	}
	// Varying ε: K·max ε accounting.
	if _, err := comp.Release(data, q, 2.0, rng); err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(comp.TotalEpsilon(), 8.0, 1e-12) {
		t.Errorf("TotalEpsilon = %v, want 4·2 = 8", comp.TotalEpsilon())
	}
}

func TestCompositionRejectsInfeasibleEps(t *testing.T) {
	chain := theta2Chain()
	class, _ := markov.NewFinite([]markov.Chain{chain}, 40)
	rng := rand.New(rand.NewPCG(7, 8))
	data := chain.Sample(40, rng)
	comp := NewExactComposition(class, ExactOptions{MaxWidth: 40})
	q := query.StateFrequency{State: 1, N: 40}
	if _, err := comp.Release(data, q, 1.0, rng); err != nil {
		t.Fatal(err)
	}
	// The pinned quilt's influence exceeds a tiny ε: must refuse rather
	// than silently re-search (which would break Theorem 4.4).
	if _, err := comp.Release(data, q, 1e-6, rng); err == nil {
		t.Error("composition accepted an ε below the pinned quilt's influence")
	}
}

// TestRobustnessDelta reproduces the Theorem 2.4 numerology: when the
// belief is in the class Δ = 0; for the worked conditional
// distributions Δ = log(90.947…).
func TestRobustnessDelta(t *testing.T) {
	condTheta := dist.MustNew([]float64{1, 2}, []float64{0.9 / 0.95, 0.05 / 0.95})
	condTilde := dist.MustNew([]float64{1, 2}, []float64{0.01 / 0.96, 0.95 / 0.96})
	inst := BeliefInstance{
		Secrets:            []Secret{{Index: 1, Value: 0}},
		ClassConditionals:  [][]dist.Discrete{{condTheta}},
		BeliefConditionals: []dist.Discrete{condTilde},
	}
	delta, err := RobustnessDelta(inst)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(0.9 / 0.95 * 0.96 / 0.01)
	if !floats.Eq(delta, want, 1e-9) {
		t.Errorf("Δ = %v, want %v", delta, want)
	}
	if !floats.Eq(EffectiveEpsilon(1, delta), 1+2*want, 1e-9) {
		t.Error("EffectiveEpsilon wrong")
	}

	// Belief inside the class: Δ = 0.
	inst.ClassConditionals = append(inst.ClassConditionals, []dist.Discrete{condTilde})
	delta, err = RobustnessDelta(inst)
	if err != nil {
		t.Fatal(err)
	}
	if delta != 0 {
		t.Errorf("in-class Δ = %v, want 0", delta)
	}
}

func TestRobustnessDeltaValidation(t *testing.T) {
	if _, err := RobustnessDelta(BeliefInstance{}); err == nil {
		t.Error("empty instance accepted")
	}
	d := dist.PointMass(0)
	if _, err := RobustnessDelta(BeliefInstance{
		Secrets:            []Secret{{1, 0}},
		ClassConditionals:  [][]dist.Discrete{{d, d}},
		BeliefConditionals: []dist.Discrete{d},
	}); err == nil {
		t.Error("ragged conditionals accepted")
	}
}

// TestRobustnessDeltaIsMonotone: adding a distribution to Θ can only
// shrink Δ (it is an infimum over the class).
func TestRobustnessDeltaIsMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 127))
		mk := func() dist.Discrete {
			a := 0.05 + 0.9*r.Float64()
			return dist.MustNew([]float64{0, 1}, []float64{a, 1 - a})
		}
		belief := mk()
		inst := BeliefInstance{
			Secrets:            []Secret{{1, 0}},
			ClassConditionals:  [][]dist.Discrete{{mk()}},
			BeliefConditionals: []dist.Discrete{belief},
		}
		d1, err := RobustnessDelta(inst)
		if err != nil {
			return false
		}
		inst.ClassConditionals = append(inst.ClassConditionals, []dist.Discrete{mk()})
		d2, err := RobustnessDelta(inst)
		if err != nil {
			return false
		}
		return d2 <= d1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
