// Package core implements the paper's contribution: the Pufferfish
// privacy framework (Definition 2.1), the Wasserstein Mechanism
// (Algorithm 1), the Markov Quilt Mechanism for Bayesian networks
// (Algorithm 2) and its Markov-chain instantiations MQMExact
// (Algorithm 3) and MQMApprox (Algorithm 4), sequential composition
// (Theorem 4.4), the robustness guarantee against close adversaries
// (Theorem 2.4), and the baselines the paper evaluates against
// (Laplace/group differential privacy and a reconstruction of GK16).
package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pufferfish/internal/laplace"
)

// Secret identifies the event "record Index has value Value" — the
// s_i^a of Section 4.1. Index is 1-based, matching the paper's
// X_1 … X_T notation.
type Secret struct {
	Index int
	Value int
}

// SecretPair is one element of the indistinguishability set Q.
type SecretPair struct {
	A, B Secret
}

// AllValuePairs returns the Section 4.1 secret-pair set
// Q = {(s_i^a, s_i^b) : a ≠ b, i = 1..n} for n records over k values.
func AllValuePairs(n, k int) []SecretPair {
	var out []SecretPair
	for i := 1; i <= n; i++ {
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				out = append(out, SecretPair{Secret{i, a}, Secret{i, b}})
			}
		}
	}
	return out
}

// Release is the output of a privacy mechanism: the noisy values plus
// the noise parameters, so experiments can report both utility and the
// privacy accounting.
type Release struct {
	// Values are the released (noisy) query values.
	Values []float64
	// NoiseScale is the per-coordinate Laplace scale actually used.
	NoiseScale float64
	// Sigma is the mechanism's computed score σ (NoiseScale = L·σ for
	// the quilt mechanisms, W/ε for the Wasserstein Mechanism).
	Sigma float64
	// Epsilon is the privacy parameter the release satisfies.
	Epsilon float64
	// Mechanism names the algorithm for reports.
	Mechanism string
}

// addLaplace returns exact + Lap(scale) per coordinate.
func addLaplace(exact []float64, scale float64, rng *rand.Rand) []float64 {
	return laplace.AddNoise(exact, scale, rng)
}

// checkEpsilon validates a privacy parameter.
func checkEpsilon(eps float64) error {
	if !(eps > 0) || math.IsInf(eps, 1) || math.IsNaN(eps) {
		return fmt.Errorf("core: invalid privacy parameter ε = %v", eps)
	}
	return nil
}
