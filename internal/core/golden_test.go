package core

import (
	"testing"

	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
)

// The pinned values below were captured from the chain-specialized
// scorers immediately before the Substrate refactor. They freeze the
// full result — σ, active node, quilt, influence, ℓ, and the
// Wasserstein worst-pair label — at parallelism 1 and N, so any change
// to the scoring pipeline that is not bit-identical fails loudly.

func goldenGridClass() markov.Class {
	return &markov.BinaryInterval{Alpha: 0.2, Beta: 0.45, Len: 40, GridN: 3}
}

func goldenFiniteClass(t *testing.T) markov.Class {
	t.Helper()
	class, err := markov.NewFinite([]markov.Chain{
		markov.MustNew([]float64{0.5, 0.3, 0.2}, matrix.FromRows([][]float64{
			{0.7, 0.2, 0.1}, {0.15, 0.7, 0.15}, {0.1, 0.25, 0.65},
		})),
		markov.MustNew([]float64{0.25, 0.35, 0.4}, matrix.FromRows([][]float64{
			{0.6, 0.3, 0.1}, {0.2, 0.6, 0.2}, {0.05, 0.35, 0.6},
		})),
	}, 25)
	if err != nil {
		t.Fatal(err)
	}
	return class
}

func goldenSingleton(t *testing.T) markov.Class {
	t.Helper()
	class, err := markov.NewSingleton(markov.BinaryChain(0.3, 0.8, 0.6), 12)
	if err != nil {
		t.Fatal(err)
	}
	return class
}

func checkGoldenScore(t *testing.T, name string, got ChainScore, want ChainScore) {
	t.Helper()
	if got != want {
		t.Errorf("%s: score drifted from pre-refactor golden:\n got  %+v\n want %+v", name, got, want)
	}
}

func TestGoldenScoresEveryParallelism(t *testing.T) {
	grid := goldenGridClass()
	finite := goldenFiniteClass(t)
	single := goldenSingleton(t)
	for _, par := range []int{1, 0} {
		s, err := ExactScore(grid, 1.2, ExactOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("ExactScore(grid) p=%d: %v", par, err)
		}
		checkGoldenScore(t, "ExactScore(grid)", s, ChainScore{
			Sigma: 10.81303224430358, Node: 8, Quilt: ChainQuilt{A: 5, B: 5},
			Influence: 0.36767102911939475, Ell: 20,
		})

		s, err = ExactScore(finite, 0.9, ExactOptions{MaxWidth: 6, Parallelism: par})
		if err != nil {
			t.Fatalf("ExactScore(finite) p=%d: %v", par, err)
		}
		checkGoldenScore(t, "ExactScore(finite, width 6)", s, ChainScore{
			Sigma: 27.777777777777779, Node: 5, Quilt: ChainQuilt{}, Influence: 0, Ell: 6,
		})

		s, err = ExactScore(finite, 0.9, ExactOptions{ForceFullSweep: true, Parallelism: par})
		if err != nil {
			t.Fatalf("ExactScore(finite, full) p=%d: %v", par, err)
		}
		checkGoldenScore(t, "ExactScore(finite, full sweep)", s, ChainScore{
			Sigma: 17.466682011033978, Node: 17, Quilt: ChainQuilt{A: 6, B: 7},
			Influence: 0.21297770278182138, Ell: 25,
		})

		s, err = ApproxScore(grid, 1.2, ApproxOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("ApproxScore(grid) p=%d: %v", par, err)
		}
		checkGoldenScore(t, "ApproxScore(grid)", s, ChainScore{
			Sigma: 20.103989689585074, Node: 20, Quilt: ChainQuilt{A: 11, B: 9},
			Influence: 0.25491396019552265, Ell: 40,
		})

		w, worst, err := WassersteinScaleOpt(
			ChainCountInstance{Class: single, W: []int{0, 1}, Parallelism: par},
			WassersteinOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("WassersteinScaleOpt p=%d: %v", par, err)
		}
		if w != 3 || worst.Label != "X2: 0 vs 1 @ θ1" {
			t.Errorf("WassersteinScaleOpt p=%d drifted: w=%v label=%q, want w=3 label=%q",
				par, w, worst.Label, "X2: 0 vs 1 @ θ1")
		}
	}
}
