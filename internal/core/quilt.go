package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"pufferfish/internal/bayes"
)

// defaultQuiltSetSize bounds the subsets enumerated when no explicit
// quilt sets are supplied to the generic mechanism.
const defaultQuiltSetSize = 3

// BayesInstantiation is the Section 4.1 Pufferfish instantiation for
// the generic Markov Quilt Mechanism (Algorithm 2): the database is
// X = (X_1, …, X_n), correlations are described by a known Bayesian
// network structure, Θ is a finite set of networks over that
// structure, S contains every node-value event and Q every same-node
// value pair.
type BayesInstantiation struct {
	// Networks is the class Θ: networks sharing node count,
	// cardinalities and edges but with possibly different CPTs.
	Networks []*bayes.Network
	// QuiltSets[i] is the Markov-quilt candidate set S_{Q,i} for node
	// i (0-based). A nil entry enumerates all separating sets of size
	// at most defaultQuiltSetSize. The trivial quilt is always added
	// if missing — Theorem 4.3 requires it.
	QuiltSets [][]bayes.Quilt
}

// Validate checks the class is non-empty and structurally consistent.
func (b *BayesInstantiation) Validate() error {
	if len(b.Networks) == 0 {
		return errors.New("core: empty network class")
	}
	n := b.Networks[0].N()
	for t, nw := range b.Networks {
		if nw.N() != n {
			return fmt.Errorf("core: network %d has %d nodes, want %d", t, nw.N(), n)
		}
		for i := 0; i < n; i++ {
			if nw.Card(i) != b.Networks[0].Card(i) {
				return fmt.Errorf("core: network %d node %d cardinality mismatch", t, i)
			}
		}
	}
	if b.QuiltSets != nil && len(b.QuiltSets) != n {
		return fmt.Errorf("core: %d quilt sets for %d nodes", len(b.QuiltSets), n)
	}
	return nil
}

// QuiltScoreDetail reports which quilt was active (Definition 4.5)
// for the protected node achieving σ_max.
type QuiltScoreDetail struct {
	// Sigma is σ_max = max_i min_{X_Q ∈ S_{Q,i}} σ(X_Q). The Laplace
	// scale is L·σ_max.
	Sigma float64
	// Node is the 0-based protected node with the largest score.
	Node int
	// Active is that node's score-minimizing quilt.
	Active bayes.Quilt
	// Influence is the class max-influence e_Θ(X_Q | X_i) of the
	// active quilt.
	Influence float64
}

// QuiltScoreBayes runs the scoring loops of Algorithm 2: for every
// node, the score of every candidate quilt is card(X_N)/(ε −
// e_Θ(X_Q|X_i)) when the max-influence is below ε (∞ otherwise), and
// σ_max is the maximum over nodes of the per-node minimum.
func QuiltScoreBayes(inst *BayesInstantiation, eps float64) (QuiltScoreDetail, error) {
	if err := checkEpsilon(eps); err != nil {
		return QuiltScoreDetail{}, err
	}
	if err := inst.Validate(); err != nil {
		return QuiltScoreDetail{}, err
	}
	n := inst.Networks[0].N()
	best := QuiltScoreDetail{Sigma: math.Inf(-1)}
	for i := 0; i < n; i++ {
		quilts, err := inst.quiltSet(i)
		if err != nil {
			return QuiltScoreDetail{}, err
		}
		nodeSigma := math.Inf(1)
		var nodeActive bayes.Quilt
		var nodeInfluence float64
		for _, q := range quilts {
			infl, err := inst.classInfluence(q)
			if err != nil {
				return QuiltScoreDetail{}, err
			}
			score := math.Inf(1)
			if infl < eps {
				score = float64(q.CardN()) / (eps - infl)
			}
			if score < nodeSigma {
				nodeSigma = score
				nodeActive = q
				nodeInfluence = infl
			}
		}
		if nodeSigma > best.Sigma {
			best = QuiltScoreDetail{Sigma: nodeSigma, Node: i, Active: nodeActive, Influence: nodeInfluence}
		}
	}
	if math.IsInf(best.Sigma, 1) {
		return QuiltScoreDetail{}, errors.New("core: every quilt has max-influence ≥ ε; mechanism inapplicable (quilt sets must include the trivial quilt)")
	}
	return best, nil
}

// quiltSet returns S_{Q,i}, guaranteeing it contains the trivial quilt.
func (b *BayesInstantiation) quiltSet(i int) ([]bayes.Quilt, error) {
	nw := b.Networks[0]
	var quilts []bayes.Quilt
	if b.QuiltSets == nil || b.QuiltSets[i] == nil {
		quilts = nw.AllQuilts(i, defaultQuiltSetSize)
	} else {
		quilts = b.QuiltSets[i]
		hasTrivial := false
		for _, q := range quilts {
			if q.Node != i {
				return nil, fmt.Errorf("core: quilt set for node %d contains quilt for node %d", i, q.Node)
			}
			if len(q.Q) == 0 {
				hasTrivial = true
			}
		}
		if !hasTrivial {
			quilts = append(append([]bayes.Quilt{}, quilts...), nw.TrivialQuilt(i))
		}
	}
	return quilts, nil
}

// classInfluence returns e_Θ(X_Q | X_i) = sup over networks of the
// per-network max-influence (Definition 4.1).
func (b *BayesInstantiation) classInfluence(q bayes.Quilt) (float64, error) {
	var worst float64
	for _, nw := range b.Networks {
		v, err := nw.MaxInfluence(q.Q, q.Node)
		if err != nil {
			return 0, err
		}
		if v > worst {
			worst = v
		}
	}
	return worst, nil
}

// MarkovQuiltMechanism releases an L-Lipschitz (in L1) query evaluated
// to exact, adding L·σ_max·Lap(1) per coordinate (Algorithm 2 with the
// Section 4.2 vector-valued extension). Theorem 4.3 gives ε-Pufferfish
// privacy for the Section 4.1 instantiation.
func MarkovQuiltMechanism(exact []float64, lipschitz float64, inst *BayesInstantiation, eps float64, rng *rand.Rand) (Release, QuiltScoreDetail, error) {
	if lipschitz <= 0 {
		return Release{}, QuiltScoreDetail{}, fmt.Errorf("core: invalid Lipschitz constant %v", lipschitz)
	}
	detail, err := QuiltScoreBayes(inst, eps)
	if err != nil {
		return Release{}, QuiltScoreDetail{}, err
	}
	scale := lipschitz * detail.Sigma
	return Release{
		Values:     addLaplace(exact, scale, rng),
		NoiseScale: scale,
		Sigma:      detail.Sigma,
		Epsilon:    eps,
		Mechanism:  "MarkovQuilt",
	}, detail, nil
}
