package core

import "pufferfish/internal/query"

// stateFreqQuery returns the F(X) = (1/T)·Σ X_i query of the
// synthetic experiments for binary data of length T.
func stateFreqQuery(T int) query.Query {
	return query.StateFrequency{State: 1, N: T}
}
