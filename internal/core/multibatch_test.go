package core

import (
	"math/rand/v2"
	"testing"

	"pufferfish/internal/markov"
)

// TestMultiBatchGoldenVsSequential: the batched multi-length scores
// must be bit-identical to per-spec ExactScoreMulti/ApproxScoreMulti.
func TestMultiBatchGoldenVsSequential(t *testing.T) {
	r := rand.New(rand.NewPCG(17, 18))
	var specs []MultiSpec
	for i := 0; i < 5; i++ {
		chain, err := markov.BinaryChain(0.5, 0.3+0.5*r.Float64(), 0.3+0.5*r.Float64()).StationaryChain()
		if err != nil {
			t.Fatal(err)
		}
		lengths := make([]int, 2+r.IntN(4))
		for j := range lengths {
			lengths[j] = 1 + r.IntN(80)
		}
		class, err := markov.NewFinite([]markov.Chain{chain}, lengths[0])
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, MultiSpec{Class: class, Lengths: lengths})
	}
	eps := 1.3

	exactBatch, err := ExactScoreMultiBatch(nil, specs, eps, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	approxBatch, err := ApproxScoreMultiBatch(nil, specs, eps, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		ex, err := ExactScoreMulti(spec.Class, eps, ExactOptions{}, spec.Lengths)
		if err != nil {
			t.Fatal(err)
		}
		if exactBatch[i] != ex {
			t.Errorf("spec %d exact: batch %+v != sequential %+v", i, exactBatch[i], ex)
		}
		ap, err := ApproxScoreMulti(spec.Class, eps, ApproxOptions{}, spec.Lengths)
		if err != nil {
			t.Fatal(err)
		}
		if approxBatch[i] != ap {
			t.Errorf("spec %d approx: batch %+v != sequential %+v", i, approxBatch[i], ap)
		}
	}
}

// TestMultiBatchDedupAcrossSpecs: specs sharing a fitted model and
// length multiset must cost one scoring pass, not one per spec.
func TestMultiBatchDedupAcrossSpecs(t *testing.T) {
	chain, err := markov.BinaryChain(0.5, 0.9, 0.85).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	class, err := markov.NewFinite([]markov.Chain{chain}, 40)
	if err != nil {
		t.Fatal(err)
	}
	lengths := []int{7, 19, 40}
	specs := make([]MultiSpec, 6)
	for i := range specs {
		specs[i] = MultiSpec{Class: class, Lengths: lengths}
	}
	cache := NewScoreCache()
	scores, err := ExactScoreMultiBatch(cache, specs, 1, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(scores); i++ {
		if scores[i] != scores[0] {
			t.Errorf("spec %d score %+v != spec 0 %+v", i, scores[i], scores[0])
		}
	}
	// Every distinct (class, length) is counted as one miss per batch
	// phase; identical specs add lookups but no extra misses.
	stats := cache.Stats()
	if stats.Misses > int64(len(lengths)) {
		t.Errorf("misses = %d, want ≤ %d distinct length-classes", stats.Misses, len(lengths))
	}
	// A re-run over the warm cache is pure hits.
	warm, err := ExactScoreMultiBatch(cache, specs, 1, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warm[0] != scores[0] {
		t.Errorf("warm score %+v != cold %+v", warm[0], scores[0])
	}
	after := cache.Stats()
	if after.Misses != stats.Misses {
		t.Errorf("warm run added misses: %d -> %d", stats.Misses, after.Misses)
	}
	if after.Hits <= stats.Hits {
		t.Errorf("warm run added no hits: %d -> %d", stats.Hits, after.Hits)
	}
}

func TestMultiBatchValidation(t *testing.T) {
	chain := markov.BinaryChain(0.5, 0.8, 0.7)
	class, err := markov.NewFinite([]markov.Chain{chain}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := ExactScoreMultiBatch(nil, nil, 1, ExactOptions{}); err != nil || out != nil {
		t.Errorf("empty specs: (%v, %v), want (nil, nil)", out, err)
	}
	if _, err := ExactScoreMultiBatch(nil, []MultiSpec{{Class: class}}, 1, ExactOptions{}); err == nil {
		t.Error("empty lengths accepted")
	}
	if _, err := ExactScoreMultiBatch(nil, []MultiSpec{{Class: class, Lengths: []int{5, 0}}}, 1, ExactOptions{}); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := ExactScoreMultiBatch(nil, []MultiSpec{{Class: nil, Lengths: []int{5}}}, 1, ExactOptions{}); err == nil {
		t.Error("nil class accepted")
	}
}

// TestMultiBatchSingleSpec: a one-element batch must reproduce the
// non-batched multi-length scorer exactly, for both mechanisms.
func TestMultiBatchSingleSpec(t *testing.T) {
	chain, err := markov.BinaryChain(0.5, 0.85, 0.75).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	class, err := markov.NewFinite([]markov.Chain{chain}, 30)
	if err != nil {
		t.Fatal(err)
	}
	spec := MultiSpec{Class: class, Lengths: []int{4, 30, 11}}
	eps := 0.8

	exactBatch, err := ExactScoreMultiBatch(nil, []MultiSpec{spec}, eps, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exactBatch) != 1 {
		t.Fatalf("got %d scores for one spec", len(exactBatch))
	}
	exact, err := ExactScoreMulti(class, eps, ExactOptions{}, spec.Lengths)
	if err != nil {
		t.Fatal(err)
	}
	if exactBatch[0] != exact {
		t.Errorf("single-spec exact batch %+v != ExactScoreMulti %+v", exactBatch[0], exact)
	}

	approxBatch, err := ApproxScoreMultiBatch(nil, []MultiSpec{spec}, eps, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ApproxScoreMulti(class, eps, ApproxOptions{}, spec.Lengths)
	if err != nil {
		t.Fatal(err)
	}
	if approxBatch[0] != approx {
		t.Errorf("single-spec approx batch %+v != ApproxScoreMulti %+v", approxBatch[0], approx)
	}
}

// TestMultiBatchAllDuplicatesOneSweep: N specs with identical
// fingerprints and a single shared length must cost exactly one
// scoring sweep (one cache miss) no matter how large N is.
func TestMultiBatchAllDuplicatesOneSweep(t *testing.T) {
	chain, err := markov.BinaryChain(0.5, 0.9, 0.8).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]MultiSpec, 12)
	for i := range specs {
		// Distinct Class values (fresh lengthClass wrappers arise per
		// spec inside the batch) but identical fingerprints.
		dup, err := markov.NewFinite([]markov.Chain{chain}, 25)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = MultiSpec{Class: dup, Lengths: []int{25}}
	}
	cache := NewScoreCache()
	scores, err := ExactScoreMultiBatch(cache, specs, 1, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range scores {
		if scores[i] != scores[0] {
			t.Fatalf("spec %d score %+v != spec 0 %+v", i, scores[i], scores[0])
		}
	}
	if misses := cache.Stats().Misses; misses != 1 {
		t.Errorf("12 duplicate specs cost %d sweeps (cache misses), want exactly 1", misses)
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}
}
