package core

import (
	"fmt"
	"math"

	"pufferfish/internal/dist"
	"pufferfish/internal/laplace"
	"pufferfish/internal/markov"
)

// VerifyChainPufferfish analytically checks Definition 2.1 for an
// additive-Laplace release of the integer-weighted count query
// F(X) = Σ_t w[X_t] on a chain class: for every θ ∈ Θ, every secret
// pair (X_i = a, X_i = b) with both secrets of positive probability,
// and every output w on an evaluation grid, the output densities
//
//	P(M(X) = w | s, θ) = Σ_t P(F = t | s, θ) · Lap_scale(w − t)
//
// must have a log-ratio within [−ε − slack, ε + slack].
//
// It computes the conditional distributions of F exactly (dynamic
// programming, no Monte-Carlo), so it is a genuine end-to-end check of
// Theorems 3.2/4.3 for the scales the mechanisms choose. Intended for
// tests on small chains: cost is O(T²k²) per (θ, i).
func VerifyChainPufferfish(class markov.Class, w []int, scale, eps, slack float64, grid []float64) error {
	if err := checkEpsilon(eps); err != nil {
		return err
	}
	if scale <= 0 {
		return fmt.Errorf("core: invalid noise scale %v", scale)
	}
	T := class.T()
	k := class.K()
	noise := laplace.New(scale)
	for ti, theta := range class.Chains() {
		marg := theta.Marginals(T)
		for i := 1; i <= T; i++ {
			// Conditional distributions of F for each admissible value.
			conds := make([]dist.Discrete, k)
			admissible := make([]bool, k)
			for a := 0; a < k; a++ {
				if marg[i-1][a] <= 0 {
					continue
				}
				d, err := theta.CountDistGiven(T, w, i, a)
				if err != nil {
					return err
				}
				conds[a] = d
				admissible[a] = true
			}
			for a := 0; a < k; a++ {
				for b := a + 1; b < k; b++ {
					if !admissible[a] || !admissible[b] {
						continue
					}
					for _, out := range grid {
						pa := releaseDensity(conds[a], noise, out)
						pb := releaseDensity(conds[b], noise, out)
						//privlint:allow floatcompare exact-zero densities on both sides make the ratio vacuous
						if pa == 0 && pb == 0 {
							continue
						}
						logRatio := math.Log(pa / pb)
						if math.Abs(logRatio) > eps+slack {
							return fmt.Errorf(
								"core: privacy violated: θ_%d, node %d, pair (%d,%d), output %.3f: |log ratio| = %.4f > ε = %.4f",
								ti, i, a, b, out, math.Abs(logRatio), eps)
						}
					}
				}
			}
		}
	}
	return nil
}

// releaseDensity returns the density of F + Lap(scale) at out given
// the exact distribution of F.
func releaseDensity(d dist.Discrete, noise laplace.Dist, out float64) float64 {
	var p float64
	for idx := 0; idx < d.Len(); idx++ {
		x, mass := d.Atom(idx)
		p += mass * noise.PDF(out-x)
	}
	return p
}

// MinimalPrivateScale searches (by bisection) for the smallest Laplace
// scale that passes VerifyChainPufferfish on the grid — used by tests
// to confirm the mechanisms are not wildly over- or under-noising
// relative to the information-theoretic requirement on small
// instances.
func MinimalPrivateScale(class markov.Class, w []int, eps float64, grid []float64) (float64, error) {
	lo, hi := 1e-3, 1e6
	if err := VerifyChainPufferfish(class, w, hi, eps, 1e-9, grid); err != nil {
		return 0, fmt.Errorf("core: even scale %v is not private: %w", hi, err)
	}
	for iter := 0; iter < 60; iter++ {
		mid := math.Sqrt(lo * hi)
		if VerifyChainPufferfish(class, w, mid, eps, 1e-9, grid) == nil {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
