package core

import (
	"fmt"
	"math"

	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
)

// Fingerprint is a canonical 128-bit identity for a Substrate: a hash
// of the substrate's kind tag followed by everything a score depends
// on besides (ε, options) — for a chain class that is the chain length
// T, the state count, the AllInitialDistributions flag, and every
// representative chain's initial distribution and transition matrix,
// in Chains() order (order matters: the scorer's first-maximizer
// tie-breaking is order dependent). Two substrates with equal
// fingerprints score identically, so the ScoreCache and ScoreBatch key
// on it. The leading kind tag domain-separates the substrate families:
// a chain and a network whose canonical bytes coincide still hash
// apart.
//
// The two words are independent FNV-1a streams over the same canonical
// bytes, so an accidental collision needs both 64-bit hashes to
// collide at once.
type Fingerprint struct {
	Hi, Lo uint64
}

// String renders the fingerprint as 32 hex digits.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// fnvOffsetAlt seeds the second stream; any constant different
	// from fnvOffset64 decorrelates the two words.
	fnvOffsetAlt = fnvOffset64 ^ 0x9e3779b97f4a7c15
)

// fpHash is a double-stream FNV-1a accumulator.
type fpHash struct {
	hi, lo uint64
}

func newFpHash() fpHash { return fpHash{hi: fnvOffsetAlt, lo: fnvOffset64} }

func (h *fpHash) word(v uint64) {
	for s := 0; s < 64; s += 8 {
		b := uint64(byte(v >> s))
		h.lo = (h.lo ^ b) * fnvPrime64
		h.hi = (h.hi ^ b) * fnvPrime64
	}
}

func (h *fpHash) float(v float64) { h.word(math.Float64bits(v)) }

func (h *fpHash) floats(vs []float64) {
	h.word(uint64(len(vs)))
	for _, v := range vs {
		h.float(v)
	}
}

// str feeds a length-prefixed string — the substrate kind tag — into
// both streams byte by byte.
func (h *fpHash) str(s string) {
	h.word(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		b := uint64(s[i])
		h.lo = (h.lo ^ b) * fnvPrime64
		h.hi = (h.hi ^ b) * fnvPrime64
	}
}

func (h *fpHash) sum() Fingerprint { return Fingerprint{Hi: h.hi, Lo: h.lo} }

// FingerprintWriter receives a substrate's canonical fingerprint bytes
// as a stream of words, so implementations outside this package can
// fingerprint without materializing a byte slice. The writer is an
// *fpHash in practice; every value fed is mixed into both FNV streams
// in order.
type FingerprintWriter interface {
	// Word mixes one 64-bit word (counts, dimensions, flags).
	Word(v uint64)
	// Float mixes one float64 by its IEEE-754 bit pattern.
	Float(v float64)
	// Floats mixes a length-prefixed float64 slice.
	Floats(vs []float64)
}

// Word implements FingerprintWriter.
func (h *fpHash) Word(v uint64) { h.word(v) }

// Float implements FingerprintWriter.
func (h *fpHash) Float(v float64) { h.float(v) }

// Floats implements FingerprintWriter.
func (h *fpHash) Floats(vs []float64) { h.floats(vs) }

// SubstrateFingerprint computes the canonical fingerprint of any
// substrate: the kind tag first (domain separation), then the
// substrate's own canonical byte stream.
func SubstrateFingerprint(s Substrate) Fingerprint {
	h := newFpHash()
	h.str(s.Kind())
	s.WriteFingerprint(&h)
	return h.sum()
}

// ClassFingerprint computes the canonical fingerprint of a chain
// class: SubstrateFingerprint of its ClassSubstrate view. It
// enumerates Chains() once; for grid classes (BinaryInterval) the
// fingerprint therefore reflects the effective grid, exactly like the
// scorers do.
func ClassFingerprint(class markov.Class) Fingerprint {
	return SubstrateFingerprint(NewClassSubstrate(class))
}

// ChainFingerprint computes the fingerprint of a single chain (initial
// distribution plus transition matrix).
func ChainFingerprint(c markov.Chain) Fingerprint {
	h := newFpHash()
	writeChain(&h, c)
	return h.sum()
}

func writeChain(w FingerprintWriter, c markov.Chain) {
	w.Floats(c.Init)
	writeMatrix(w, c.P)
}

func writeMatrix(w FingerprintWriter, m *matrix.Dense) {
	rows, cols := m.Dims()
	w.Word(uint64(rows))
	w.Word(uint64(cols))
	for i := 0; i < rows; i++ {
		for _, v := range m.RawRow(i) {
			w.Float(v)
		}
	}
}

// matrixKey is the single-word hash used to bucket shared power
// caches; buckets verify full matrix equality, so collisions cost a
// comparison, never correctness.
func matrixKey(m *matrix.Dense) uint64 {
	h := newFpHash()
	writeMatrix(&h, m)
	return h.lo
}
