package core

import (
	"fmt"
	"math"

	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
)

// Fingerprint is a canonical 128-bit identity for a markov.Class: a
// hash of everything a ChainScore depends on besides (ε, options) —
// the chain length T, the state count, the AllInitialDistributions
// flag, and every representative chain's initial distribution and
// transition matrix, in Chains() order (order matters: the scorer's
// first-maximizer tie-breaking is order dependent). Two classes with
// equal fingerprints score identically, so the ScoreCache and
// ScoreBatch key on it.
//
// The two words are independent FNV-1a streams over the same canonical
// bytes, so an accidental collision needs both 64-bit hashes to
// collide at once.
type Fingerprint struct {
	Hi, Lo uint64
}

// String renders the fingerprint as 32 hex digits.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// fnvOffsetAlt seeds the second stream; any constant different
	// from fnvOffset64 decorrelates the two words.
	fnvOffsetAlt = fnvOffset64 ^ 0x9e3779b97f4a7c15
)

// fpHash is a double-stream FNV-1a accumulator.
type fpHash struct {
	hi, lo uint64
}

func newFpHash() fpHash { return fpHash{hi: fnvOffsetAlt, lo: fnvOffset64} }

func (h *fpHash) word(v uint64) {
	for s := 0; s < 64; s += 8 {
		b := uint64(byte(v >> s))
		h.lo = (h.lo ^ b) * fnvPrime64
		h.hi = (h.hi ^ b) * fnvPrime64
	}
}

func (h *fpHash) float(v float64) { h.word(math.Float64bits(v)) }

func (h *fpHash) floats(vs []float64) {
	h.word(uint64(len(vs)))
	for _, v := range vs {
		h.float(v)
	}
}

func (h *fpHash) sum() Fingerprint { return Fingerprint{Hi: h.hi, Lo: h.lo} }

// ClassFingerprint computes the canonical fingerprint of a class. It
// enumerates Chains() once; for grid classes (BinaryInterval) the
// fingerprint therefore reflects the effective grid, exactly like the
// scorers do.
func ClassFingerprint(class markov.Class) Fingerprint {
	h := newFpHash()
	h.word(uint64(class.K()))
	h.word(uint64(class.T()))
	if class.AllInitialDistributions() {
		h.word(1)
	} else {
		h.word(0)
	}
	chains := class.Chains()
	h.word(uint64(len(chains)))
	for _, c := range chains {
		hashChain(&h, c)
	}
	return h.sum()
}

// ChainFingerprint computes the fingerprint of a single chain (initial
// distribution plus transition matrix).
func ChainFingerprint(c markov.Chain) Fingerprint {
	h := newFpHash()
	hashChain(&h, c)
	return h.sum()
}

func hashChain(h *fpHash, c markov.Chain) {
	h.floats(c.Init)
	hashMatrix(h, c.P)
}

func hashMatrix(h *fpHash, m *matrix.Dense) {
	rows, cols := m.Dims()
	h.word(uint64(rows))
	h.word(uint64(cols))
	for i := 0; i < rows; i++ {
		for _, v := range m.RawRow(i) {
			h.float(v)
		}
	}
}

// matrixKey is the single-word hash used to bucket shared power
// caches; buckets verify full matrix equality, so collisions cost a
// comparison, never correctness.
func matrixKey(m *matrix.Dense) uint64 {
	h := newFpHash()
	hashMatrix(&h, m)
	return h.lo
}
