package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pufferfish/internal/bayes"
	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
)

// randomChain3 builds a random irreducible 3-state chain.
func randomChain3(r *rand.Rand) markov.Chain {
	rows := make([][]float64, 3)
	for i := range rows {
		rows[i] = make([]float64, 3)
		var tot float64
		for j := range rows[i] {
			rows[i][j] = r.Float64() + 0.1
			tot += rows[i][j]
		}
		for j := range rows[i] {
			rows[i][j] /= tot
		}
	}
	init := []float64{0.4, 0.35, 0.25}
	return markov.MustNew(init, matrix.FromRows(rows))
}

// TestExactMatchesGenericBayes3State extends the Algorithm 3 vs
// Algorithm 2 cross-validation to three-state chains.
func TestExactMatchesGenericBayes3State(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 137))
		chain := randomChain3(r)
		T := 3 + r.IntN(2)
		eps := 3 + 6*r.Float64()
		class, err := markov.NewFinite([]markov.Chain{chain}, T)
		if err != nil {
			return false
		}
		exact, err := ExactScore(class, eps, ExactOptions{MaxWidth: T, ForceFullSweep: true})
		if err != nil {
			return false
		}
		nw, err := bayes.FromChain(chain, T)
		if err != nil {
			return false
		}
		generic, err := QuiltScoreBayes(&BayesInstantiation{Networks: []*bayes.Network{nw}}, eps)
		if err != nil {
			return false
		}
		return floats.Eq(exact.Sigma, generic.Sigma, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestMQMExactPrivacy3State runs the analytic privacy verifier on a
// three-state chain (the activity setting in miniature).
func TestMQMExactPrivacy3State(t *testing.T) {
	chain := markov.MustNew(
		[]float64{0.5, 0.3, 0.2},
		matrix.FromRows([][]float64{
			{0.8, 0.15, 0.05},
			{0.2, 0.7, 0.1},
			{0.1, 0.2, 0.7},
		}),
	)
	T := 5
	eps := 1.0
	class, err := markov.NewFinite([]markov.Chain{chain}, T)
	if err != nil {
		t.Fatal(err)
	}
	score, err := ExactScore(class, eps, ExactOptions{MaxWidth: T})
	if err != nil {
		t.Fatal(err)
	}
	// Count of state 2: weights are the indicator, 1-Lipschitz.
	w := []int{0, 0, 1}
	grid := floats.Linspace(-6, float64(T)+6, 90)
	if err := VerifyChainPufferfish(class, w, score.Sigma, eps, 1e-6, grid); err != nil {
		t.Errorf("3-state MQMExact scale violates privacy: %v", err)
	}
}

// TestGenericQuiltOnTree runs Algorithm 2 on a star/tree network (the
// Bayesian-network generality the paper claims beyond chains): a root
// cause with four conditionally-independent children.
func TestGenericQuiltOnTree(t *testing.T) {
	leafCPT := []float64{0.85, 0.15, 0.3, 0.7}
	nodes := []bayes.Node{{Name: "root", Card: 2, CPT: []float64{0.6, 0.4}}}
	for i := 0; i < 4; i++ {
		nodes = append(nodes, bayes.Node{Name: "leaf", Card: 2, Parents: []int{0}, CPT: leafCPT})
	}
	nw := bayes.MustNew(nodes)
	inst := &BayesInstantiation{Networks: []*bayes.Network{nw}}
	eps := 4.0
	detail, err := QuiltScoreBayes(inst, eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(detail.Sigma, 1) {
		t.Fatal("tree instantiation should be feasible")
	}
	// For a leaf, the quilt {root} cuts it from the other leaves, so
	// its per-node score must beat the trivial n/ε = 5/4. The root
	// influences everything, so it anchors σ_max.
	if detail.Sigma > float64(nw.N())/eps+1e-9 {
		t.Errorf("σ = %v exceeds the trivial bound", detail.Sigma)
	}
	// Per Definition 4.2 the root's blanket is all leaves, so the root
	// has only the trivial-ish quilts; the worst node should be the
	// root with a higher score than any leaf's.
	leafInst := &BayesInstantiation{Networks: []*bayes.Network{nw}}
	leafQuilt, err := nw.QuiltFor(1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if leafQuilt.CardN() != 1 {
		t.Errorf("leaf quilt {root} should isolate the leaf, card = %d", leafQuilt.CardN())
	}
	_ = leafInst
}

// TestLemmaC1ReversibleTighter: for reversible chains the eq 14
// overload (g = 2(1−|λ2|)) is at least the multiplicative gap, so the
// Lemma C.1 bound is tighter (never more noise).
func TestLemmaC1ReversibleTighter(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 139))
		chain, err := markov.BinaryChain(0.5, 0.2+0.6*r.Float64(), 0.2+0.6*r.Float64()).StationaryChain()
		if err != nil {
			return false
		}
		gRev, err := chain.EigengapReversible()
		if err != nil {
			return false
		}
		gMult, err := chain.EigengapMultiplicative()
		if err != nil {
			return false
		}
		// g_rev = 2(1−|λ|) ≥ 1−λ² = g_mult, with equality only at |λ|=1.
		return gRev >= gMult-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestApproxSigmaDecreasesWithEps: more privacy budget, less noise.
func TestApproxSigmaDecreasesWithEps(t *testing.T) {
	chain, err := markov.BinaryChain(0.5, 0.85, 0.8).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	class, err := markov.NewFinite([]markov.Chain{chain}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, eps := range []float64{0.2, 0.5, 1, 2, 5} {
		sc, err := ApproxScore(class, eps, ApproxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if sc.Sigma > prev+1e-9 {
			t.Errorf("σ increased with ε at %v: %v > %v", eps, sc.Sigma, prev)
		}
		prev = sc.Sigma
		ex, err := ExactScore(class, eps, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ex.Sigma > sc.Sigma+1e-9 {
			t.Errorf("exact σ above approx σ at ε=%v", eps)
		}
	}
}

// TestNoiseScalesAsMixingTime connects Theorem 4.10's discussion to
// code: the MQMApprox noise is governed by (log(1/π^min))/g — slower
// mixing (smaller g) means proportionally more noise.
func TestNoiseScalesAsMixingTime(t *testing.T) {
	eps := 1.0
	var sigmas []float64
	for _, c := range []float64{0.4, 0.2, 0.1, 0.05} { // switch rates
		chain, err := markov.BinaryChain(0.5, 1-c/2, 1-c/2).StationaryChain()
		if err != nil {
			t.Fatal(err)
		}
		class, err := markov.NewFinite([]markov.Chain{chain}, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := ApproxScore(class, eps, ApproxOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sigmas = append(sigmas, sc.Sigma)
	}
	for i := 1; i < len(sigmas); i++ {
		if sigmas[i] <= sigmas[i-1] {
			t.Errorf("σ should grow as mixing slows: %v", sigmas)
		}
	}
	// Halving the eigengap should roughly double σ (a* ∝ 1/g).
	ratio := sigmas[3] / sigmas[2]
	if ratio < 1.5 || ratio > 3 {
		t.Errorf("σ ratio at half the gap = %v, want ≈2", ratio)
	}
}

// TestExactScoreHandlesTinyChains exercises T = 1 and T = 2.
func TestExactScoreHandlesTinyChains(t *testing.T) {
	chain := markov.BinaryChain(0.5, 0.8, 0.7)
	for _, T := range []int{1, 2} {
		class, err := markov.NewFinite([]markov.Chain{chain}, T)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := ExactScore(class, 1, ExactOptions{MaxWidth: T})
		if err != nil {
			t.Fatalf("T=%d: %v", T, err)
		}
		if !(sc.Sigma > 0) || sc.Sigma > float64(T)+1e-9 {
			t.Errorf("T=%d: σ = %v", T, sc.Sigma)
		}
	}
}

// TestVerifierRejectsBadInputs covers verify.go's validation.
func TestVerifierRejectsBadInputs(t *testing.T) {
	chain := markov.BinaryChain(0.5, 0.8, 0.7)
	class, _ := markov.NewFinite([]markov.Chain{chain}, 4)
	grid := []float64{0, 1}
	if err := VerifyChainPufferfish(class, []int{0, 1}, 0, 1, 0, grid); err == nil {
		t.Error("zero scale accepted")
	}
	if err := VerifyChainPufferfish(class, []int{0, 1}, 1, -1, 0, grid); err == nil {
		t.Error("negative ε accepted")
	}
	if err := VerifyChainPufferfish(class, []int{0}, 1, 1, 0, grid); err == nil {
		t.Error("short weight vector accepted")
	}
}
