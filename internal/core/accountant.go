package core

// Accountant tracks the cumulative privacy loss of a sequence of
// pure-ε quilt releases. Composition holds one and records every
// successful release into it, so the composition-theorem arithmetic is
// a pluggable policy rather than a hard-coded scalar: the default
// LinearAccountant reproduces Theorem 4.4's K·max ε exactly, and
// accounting.Ledger substitutes the Rényi curve of Pierquin et al.
// (arXiv:2312.13985) for a quadratically tighter bound over many
// releases. Swapping accountants never touches the noise path —
// releases are bit-identical under every accountant.
//
// Every implementation inherits Theorem 4.4's hypothesis: the recorded
// releases share their active quilt sets (Composition enforces this by
// pinning the score).
type Accountant interface {
	// RecordPure accounts one successful ε-Pufferfish release. Callers
	// pass only ε values that already passed release validation.
	RecordPure(eps float64)
	// TotalEpsilon is the cumulative privacy parameter under this
	// accountant's composition theorem (0 before any release). For
	// accountants with a δ (the Rényi ledger), it is the ε of their
	// headline (ε, δ) statement.
	TotalEpsilon() float64
	// Count is the number of releases recorded.
	Count() int
}

// LinearAccountant is the Theorem 4.4 accountant: K releases at
// ε_1 … ε_K compose to K·max_k ε_k. It is Composition's default and
// reproduces the pre-accountant TotalEpsilon bit for bit.
type LinearAccountant struct {
	epsilons []float64
}

// RecordPure appends one release.
func (a *LinearAccountant) RecordPure(eps float64) {
	a.epsilons = append(a.epsilons, eps)
}

// TotalEpsilon returns K·max_k ε_k (0 before any release).
func (a *LinearAccountant) TotalEpsilon() float64 {
	if len(a.epsilons) == 0 {
		return 0
	}
	return float64(len(a.epsilons)) * floatsMax(a.epsilons)
}

// Count returns the number of recorded releases.
func (a *LinearAccountant) Count() int { return len(a.epsilons) }

// Epsilons returns the recorded parameters in release order.
func (a *LinearAccountant) Epsilons() []float64 {
	out := make([]float64, len(a.epsilons))
	copy(out, a.epsilons)
	return out
}
