package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"pufferfish/internal/dist"
	"pufferfish/internal/sched"
)

// DistributionPair is one (µ_{i,θ}, µ_{j,θ}) pair from Algorithm 1:
// the conditional distributions of the scalar query F(X) given the
// two secrets of a pair under one θ ∈ Θ.
type DistributionPair struct {
	Mu, Nu dist.Discrete
	// Label identifies the pair in diagnostics (e.g. "X3: 0 vs 1 @ θ2").
	Label string
}

// WassersteinInstance exposes a Pufferfish instantiation (S, Q, Θ)
// together with a scalar query F to the Wasserstein Mechanism. The
// implementation enumerates, for every secret pair (s_i, s_j) ∈ Q and
// every θ ∈ Θ with P(s_i|θ), P(s_j|θ) > 0, the pair of conditional
// distributions of F(X). Pairs with a zero-probability secret must be
// skipped, per Definition 2.1.
type WassersteinInstance interface {
	ConditionalPairs() ([]DistributionPair, error)
}

// WassersteinOptions tunes the scale computation.
type WassersteinOptions struct {
	// Parallelism bounds the worker count of the W∞ sweep over the
	// pairs the instance returned: 0 uses every CPU, 1 runs strictly
	// serial. The supremum is identical at every setting. Note it
	// cannot reach inside ConditionalPairs — instances that fan their
	// own enumeration (e.g. ChainCountInstance) carry their own
	// Parallelism knob, which callers must set consistently.
	Parallelism int
}

// WassersteinScale computes the noise parameter
// W = sup_{(s_i,s_j)∈Q, θ∈Θ} W∞(µ_{i,θ}, µ_{j,θ}) of Algorithm 1,
// returning the worst pair for diagnostics. It uses every CPU for the
// pair sweep; use WassersteinScaleOpt to bound that worker count (the
// instance's own enumeration parallelism is the instance's knob).
func WassersteinScale(inst WassersteinInstance) (w float64, worst DistributionPair, err error) {
	return WassersteinScaleOpt(inst, WassersteinOptions{})
}

// WassersteinScaleOpt is WassersteinScale with explicit options. The
// per-pair W∞ distances are independent, so the sweep fans across
// contiguous pair chunks; each chunk keeps its first local maximum and
// the chunk-ordered merge returns exactly the pair the serial loop
// would.
func WassersteinScaleOpt(inst WassersteinInstance, opt WassersteinOptions) (w float64, worst DistributionPair, err error) {
	pairs, err := inst.ConditionalPairs()
	if err != nil {
		return 0, DistributionPair{}, err
	}
	if len(pairs) == 0 {
		return 0, DistributionPair{}, errors.New("core: instantiation produced no secret pairs")
	}
	type chunkBest struct {
		w   float64
		idx int
	}
	best := sched.ReduceChunks(sched.New(opt.Parallelism), len(pairs), chunkBest{idx: -1},
		func(start, end int) chunkBest {
			local := chunkBest{idx: -1}
			for i := start; i < end; i++ {
				if d := dist.WassersteinInf(pairs[i].Mu, pairs[i].Nu); d > local.w {
					local = chunkBest{w: d, idx: i}
				}
			}
			return local
		},
		func(acc, v chunkBest) chunkBest {
			if v.w > acc.w {
				return v
			}
			return acc
		})
	if best.idx >= 0 {
		w, worst = best.w, pairs[best.idx]
	}
	return w, worst, nil
}

// Wasserstein runs Algorithm 1: it releases value + Lap(W/ε) where
// value = F(D) is the exact scalar query value on the realized
// database. By Theorem 3.2 the release is ε-Pufferfish private in the
// instantiation; when the instantiation encodes differential privacy,
// W equals the global sensitivity and the mechanism reduces to the
// Laplace mechanism.
func Wasserstein(value float64, inst WassersteinInstance, eps float64, rng *rand.Rand) (Release, error) {
	if err := checkEpsilon(eps); err != nil {
		return Release{}, err
	}
	w, worst, err := WassersteinScale(inst)
	if err != nil {
		return Release{}, err
	}
	//privlint:allow floatcompare exact-zero Wasserstein radius licenses the exact release
	if w == 0 {
		// F(X) carries no information about any secret; release exactly.
		return Release{
			Values:    []float64{value},
			Sigma:     0,
			Epsilon:   eps,
			Mechanism: "Wasserstein",
		}, nil
	}
	if math.IsInf(w, 1) {
		return Release{}, fmt.Errorf("core: infinite ∞-Wasserstein distance (pair %q); no finite noise suffices", worst.Label)
	}
	scale := w / eps
	return Release{
		Values:     addLaplace([]float64{value}, scale, rng),
		NoiseScale: scale,
		Sigma:      w,
		Epsilon:    eps,
		Mechanism:  "Wasserstein",
	}, nil
}
