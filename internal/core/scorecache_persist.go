package core

import (
	"errors"
	"fmt"
	"math"
)

// CacheSnapshot is the JSON-serializable image of a ScoreCache's
// memoized entries (not its traffic counters): the quilt-score table
// and the Kantorovich cell-profile table. A long-lived server writes
// one on graceful shutdown and restores it at startup, so a restart
// skips the cold start (ROADMAP: cache persistence across restarts).
//
// Keys are persisted losslessly: ε and the score floats round-trip
// through JSON as exact decimal renderings of float64 (Go marshals
// float64 with the shortest representation that parses back to the
// same bits), and fingerprints as two uint64 words.
type CacheSnapshot struct {
	Version int              `json:"version"`
	Scores  []ScoreEntry     `json:"scores,omitempty"`
	Cells   []CellScoreEntry `json:"cells,omitempty"`
}

// snapshotVersion guards the format; Restore rejects snapshots written
// by an incompatible layout instead of silently mis-keying. Version 2
// introduced substrate kind tags into the fingerprint domain: every
// fingerprint changed value, so version-1 entries would never be hit
// (and a stale hit would be unsound); they are rejected as legacy.
const snapshotVersion = 2

// ErrLegacySnapshot marks a snapshot written by an older format
// version. Entries under an old fingerprint domain cannot be merged,
// but the condition is expected across upgrades, so callers holding a
// snapshot file that also carries non-cache state (the server's
// accountant ledgers) match on it with errors.Is and degrade to a cold
// score cache instead of failing the load.
var ErrLegacySnapshot = errors.New("core: cache snapshot from a previous format version")

// ScoreEntry is one (key, ChainScore) pair of the quilt-score table.
type ScoreEntry struct {
	FpHi      uint64  `json:"fp_hi"`
	FpLo      uint64  `json:"fp_lo"`
	Eps       float64 `json:"eps"`
	Exact     bool    `json:"exact"`
	MaxWidth  int     `json:"max_width,omitempty"`
	ForceFull bool    `json:"force_full,omitempty"`

	Sigma     float64 `json:"sigma"`
	Node      int     `json:"node"`
	QuiltA    int     `json:"quilt_a"`
	QuiltB    int     `json:"quilt_b"`
	Influence float64 `json:"influence"`
	Ell       int     `json:"ell"`
}

// CellScoreEntry is one (key, CellScore) pair of the Kantorovich
// cell-profile table.
type CellScoreEntry struct {
	FpHi uint64 `json:"fp_hi"`
	FpLo uint64 `json:"fp_lo"`
	Cell int    `json:"cell"`

	Profile CellScore `json:"profile"`
}

// Snapshot captures every memoized entry. Safe for concurrent use;
// entries stored while the snapshot runs may or may not be included.
// A nil cache snapshots empty.
func (sc *ScoreCache) Snapshot() CacheSnapshot {
	snap := CacheSnapshot{Version: snapshotVersion}
	if sc == nil {
		return snap
	}
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	for k, s := range sc.m {
		snap.Scores = append(snap.Scores, ScoreEntry{
			FpHi: k.fp.Hi, FpLo: k.fp.Lo, Eps: k.eps, Exact: k.exact,
			MaxWidth: k.maxWidth, ForceFull: k.forceFull,
			Sigma: s.Sigma, Node: s.Node, QuiltA: s.Quilt.A, QuiltB: s.Quilt.B,
			Influence: s.Influence, Ell: s.Ell,
		})
	}
	for k, p := range sc.cells {
		snap.Cells = append(snap.Cells, CellScoreEntry{
			FpHi: k.fp.Hi, FpLo: k.fp.Lo, Cell: k.cell, Profile: p,
		})
	}
	return snap
}

// Restore merges a snapshot's entries into the cache (existing entries
// with equal keys are overwritten; counters are untouched). It rejects
// snapshots from an unknown format version and entries that could
// never have been stored — non-finite or non-positive σ / W∞, NaN or
// negative influence, influence at or above the entry's ε (the engine
// only stores finite σ = card/(ε − infl)), negative ℓ, and
// out-of-range node/quilt indices — so a corrupted or hand-edited file
// cannot plant scores the engine would not compute (and a later
// composition rescale cannot run Quilt.CardN on garbage indices).
func (sc *ScoreCache) Restore(snap CacheSnapshot) error {
	if sc == nil {
		return fmt.Errorf("core: cannot restore into a nil ScoreCache")
	}
	if snap.Version < snapshotVersion {
		return fmt.Errorf("%w (version %d, want %d)", ErrLegacySnapshot, snap.Version, snapshotVersion)
	}
	if snap.Version > snapshotVersion {
		return fmt.Errorf("core: cache snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	for i, e := range snap.Scores {
		if !(e.Sigma > 0) || math.IsInf(e.Sigma, 1) || math.IsNaN(e.Eps) || !(e.Eps > 0) {
			return fmt.Errorf("core: cache snapshot score %d has invalid σ = %v at ε = %v", i, e.Sigma, e.Eps)
		}
		// Influence is a max-influence: finite, ≥ 0, and < ε for every
		// stored score (σ = card/(ε − e) is only finite below ε). NaN
		// fails both comparisons, so it is caught here too.
		if !(e.Influence >= 0) || !(e.Influence < e.Eps) {
			return fmt.Errorf("core: cache snapshot score %d has invalid influence %v at ε = %v", i, e.Influence, e.Eps)
		}
		// Node is 1-based and the quilt offsets / width limit are
		// non-negative by construction (ChainQuilt's Lemma 4.6 family).
		if e.Node < 1 || e.QuiltA < 0 || e.QuiltB < 0 || e.Ell < 0 {
			return fmt.Errorf("core: cache snapshot score %d has invalid quilt indices node=%d A=%d B=%d ℓ=%d",
				i, e.Node, e.QuiltA, e.QuiltB, e.Ell)
		}
	}
	for i, e := range snap.Cells {
		p := e.Profile
		if !(p.WInf >= 0) || math.IsInf(p.WInf, 1) || !(p.W1 >= 0) || p.W1 > p.WInf+1e-9 {
			return fmt.Errorf("core: cache snapshot cell %d has invalid profile W∞ = %v, W₁ = %v", i, p.WInf, p.W1)
		}
		if e.Cell < 0 || p.Pairs < 0 {
			return fmt.Errorf("core: cache snapshot cell %d has invalid cell index %d (pairs %d)", i, e.Cell, p.Pairs)
		}
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for _, e := range snap.Scores {
		key := scoreKey{
			fp: Fingerprint{Hi: e.FpHi, Lo: e.FpLo}, eps: e.Eps, exact: e.Exact,
			maxWidth: e.MaxWidth, forceFull: e.ForceFull,
		}
		sc.m[key] = ChainScore{
			Sigma: e.Sigma, Node: e.Node, Quilt: ChainQuilt{A: e.QuiltA, B: e.QuiltB},
			Influence: e.Influence, Ell: e.Ell,
		}
	}
	for _, e := range snap.Cells {
		sc.cells[cellKey{fp: Fingerprint{Hi: e.FpHi, Lo: e.FpLo}, cell: e.Cell}] = e.Profile
	}
	return nil
}
