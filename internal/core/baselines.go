package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pufferfish/internal/query"
)

// LaplaceDP is the standard ε-differential-privacy Laplace baseline:
// it adds Lap(L/ε) per coordinate, protecting a change in a single
// record (entry-DP in the paper's terminology; with the query's
// records being whole persons, it is the person-level DP row of
// Table 1).
func LaplaceDP(data []int, q query.Query, eps float64, rng *rand.Rand) (Release, error) {
	return scaledLaplace(data, q, q.Lipschitz(), eps, "DP", rng)
}

// GroupDP is the group-differential-privacy baseline (Definition 2.2):
// with every record of a maximal correlated group allowed to change
// together, the L1 sensitivity grows to maxGroupSize·L, so it adds
// Lap(maxGroupSize·L/ε) per coordinate. For a single connected chain
// the group is the whole series (the paper's GroupDP row: noise
// Lap(M/(Tε)) per relative-frequency bin with M the longest chain).
func GroupDP(data []int, q query.Query, maxGroupSize int, eps float64, rng *rand.Rand) (Release, error) {
	if maxGroupSize < 1 {
		return Release{}, fmt.Errorf("core: invalid group size %d", maxGroupSize)
	}
	return scaledLaplace(data, q, float64(maxGroupSize)*q.Lipschitz(), eps, "GroupDP", rng)
}

// GroupDPSigma returns the score-equivalent σ of the GroupDP baseline
// (noise scale = L·σ), for side-by-side reporting with the quilt
// mechanisms: σ = maxGroupSize/ε.
func GroupDPSigma(maxGroupSize int, eps float64) (float64, error) {
	if err := checkEpsilon(eps); err != nil {
		return 0, err
	}
	if maxGroupSize < 1 {
		return 0, fmt.Errorf("core: invalid group size %d", maxGroupSize)
	}
	return float64(maxGroupSize) / eps, nil
}

func scaledLaplace(data []int, q query.Query, sensitivity, eps float64, mech string, rng *rand.Rand) (Release, error) {
	if err := checkEpsilon(eps); err != nil {
		return Release{}, err
	}
	exact, err := q.Evaluate(data)
	if err != nil {
		return Release{}, err
	}
	if sensitivity <= 0 {
		return Release{}, fmt.Errorf("core: invalid sensitivity %v", sensitivity)
	}
	scale := sensitivity / eps
	if math.IsInf(scale, 1) || math.IsNaN(scale) {
		return Release{}, fmt.Errorf("core: noise scale %v/%v overflows", sensitivity, eps)
	}
	return Release{
		Values:     addLaplace(exact, scale, rng),
		NoiseScale: scale,
		Sigma:      sensitivity / q.Lipschitz() / eps,
		Epsilon:    eps,
		Mechanism:  mech,
	}, nil
}

// MeanLaplaceAbsError returns the expected L1 error k·scale of adding
// Lap(scale) noise to a k-dimensional release — the closed form behind
// the paper's quoted GroupDP errors (e.g. 2·51/ε for the electricity
// histogram).
func MeanLaplaceAbsError(dim int, scale float64) float64 {
	return float64(dim) * scale
}
