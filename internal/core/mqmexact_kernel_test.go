package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"pufferfish/internal/activity"
	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
	"pufferfish/internal/power"
	"pufferfish/internal/sched"
)

// oldKernel is the pre-log-table influence evaluation: tables built
// entry-by-entry with logRatio (one math.Log(p/q) per (x, x′, y)
// triple) and term1 with math.Log(m[x′]/m[x]), swept exhaustively over
// every quilt with no pruning. The new scorer must agree with it
// within the error bound documented on exactScorer; these tests pin
// that bound on every substrate the repo scores.
type oldKernel struct {
	T, k     int
	allInits bool
	fwd, bwd [][]float64
	marg     [][]float64
	// L is the largest |log| of any positive table ingredient seen —
	// the constant in the documented bound 12u·(1+2L).
	L float64
}

func buildOldKernel(theta markov.Chain, T int, allInits bool) *oldKernel {
	k := theta.K()
	o := &oldKernel{T: T, k: k, allInits: allInits}
	pc := matrix.NewPowerCache(theta.P)
	seeLog := func(p float64) {
		if p > 0 {
			if l := math.Abs(math.Log(p)); l > o.L {
				o.L = l
			}
		}
	}
	for j := 1; j <= T-1; j++ {
		pj := pc.Pow(j)
		f := make([]float64, k*k)
		b := make([]float64, k*k)
		for x := 0; x < k; x++ {
			for xp := 0; xp < k; xp++ {
				bf, bb := math.Inf(-1), math.Inf(-1)
				for y := 0; y < k; y++ {
					seeLog(pj.At(x, y))
					if v := logRatio(pj.At(x, y), pj.At(xp, y)); v > bf {
						bf = v
					}
					if v := logRatio(pj.At(y, x), pj.At(y, xp)); v > bb {
						bb = v
					}
				}
				f[x*k+xp], b[x*k+xp] = bf, bb
			}
		}
		o.fwd = append(o.fwd, f)
		o.bwd = append(o.bwd, b)
	}
	if !allInits {
		o.marg = theta.Marginals(T)
		for _, m := range o.marg {
			for _, p := range m {
				seeLog(p)
			}
		}
	}
	return o
}

func (o *oldKernel) term1(i, x, xp int) (float64, bool) {
	if o.allInits {
		if i == 1 {
			return math.Inf(1), true
		}
		return o.bwd[i-2][xp*o.k+x], true
	}
	m := o.marg[i-1]
	if m[x] <= 0 || m[xp] <= 0 {
		return 0, false
	}
	return math.Log(m[xp] / m[x]), true
}

func (o *oldKernel) hasPair(i int) bool {
	if o.allInits {
		return true
	}
	count := 0
	for _, p := range o.marg[i-1] {
		if p > 0 {
			count++
		}
	}
	return count >= 2
}

func (o *oldKernel) influence(i int, q ChainQuilt) (float64, bool) {
	if q.Trivial() {
		if !o.hasPair(i) {
			return 0, false
		}
		return 0, true
	}
	worst := math.Inf(-1)
	any := false
	for x := 0; x < o.k; x++ {
		for xp := 0; xp < o.k; xp++ {
			if x == xp {
				continue
			}
			t1, admissible := o.term1(i, x, xp)
			if !admissible {
				continue
			}
			any = true
			var v float64
			if q.A > 0 {
				v += t1 + o.bwd[q.A-1][x*o.k+xp]
			}
			if q.B > 0 {
				v += o.fwd[q.B-1][x*o.k+xp]
			}
			if v > worst {
				worst = v
			}
		}
	}
	if !any {
		return 0, false
	}
	if worst < 0 {
		worst = 0
	}
	return worst, true
}

// nodeScore is the exhaustive, unpruned sweep the fused path replaced.
func (o *oldKernel) nodeScore(i, ell int, eps float64) (float64, ChainQuilt, float64) {
	if !o.hasPair(i) {
		return 0, ChainQuilt{}, 0
	}
	bestSigma, bestQuilt, bestInfl := quiltScore(o.T, 0, eps), ChainQuilt{}, 0.0
	try := func(q ChainQuilt, card int) {
		if card > ell {
			return
		}
		infl, ok := o.influence(i, q)
		if !ok {
			return
		}
		if s := quiltScore(card, infl, eps); s < bestSigma {
			bestSigma, bestQuilt, bestInfl = s, q, infl
		}
	}
	for a := 1; a <= i-1; a++ {
		try(ChainQuilt{A: a}, o.T-i+a)
		for b := 1; b <= o.T-i; b++ {
			try(ChainQuilt{A: a, B: b}, a+b-1)
		}
	}
	for b := 1; b <= o.T-i; b++ {
		try(ChainQuilt{B: b}, i+b-1)
	}
	return bestSigma, bestQuilt, bestInfl
}

// kernelSubstrates: one chain per data regime the repo scores. The flu
// experiment has no Markov-chain substrate (it is clique-based), so it
// has no exact-scorer kernel to compare.
func kernelSubstrates(t *testing.T) []struct {
	name     string
	theta    markov.Chain
	T        int
	allInits bool
} {
	t.Helper()
	fig4, err := markov.BinaryChain(0.5, 0.9, 0.85).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	// A chain with structural zeros exercises the ±Inf conventions on
	// low powers (higher powers mix and become strictly positive).
	sparse, err := markov.NewFromRows([]float64{0.5, 0.5, 0},
		[][]float64{{0.5, 0.5, 0}, {0.2, 0.3, 0.5}, {0, 0.4, 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	act, err := activity.DefaultProfile(activity.Cyclists).TrueChain()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(51, 52))
	series, err := power.DefaultHouse().Simulate(2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	pow, err := power.EmpiricalChain(series, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name     string
		theta    markov.Chain
		T        int
		allInits bool
	}{
		{"fig4-binary", fig4, 30, false},
		{"sparse-zeros", sparse, 20, false},
		{"activity-k4", act, 24, false},
		{"power-k51", pow, 14, false},
		{"binary-allinits", markov.BinaryChain(0.4, 0.85, 0.75), 22, true},
	}
}

// TestLogDomainKernelWithinDocumentedBound compares the fused
// log-table scorer against the direct logRatio kernel on every
// substrate: table entries agree exactly on ±Inf and within
// 4u·(1+2L) otherwise; per-node selected influences agree within
// 12u·(1+2L); and — the conservative guard — the released influence
// never undershoots the direct kernel's value for the same quilt by
// more than that margin, so noise scales stay honest up to provable
// rounding error.
func TestLogDomainKernelWithinDocumentedBound(t *testing.T) {
	const u = 0x1p-53
	for _, sub := range kernelSubstrates(t) {
		t.Run(sub.name, func(t *testing.T) {
			old := buildOldKernel(sub.theta, sub.T, sub.allInits)
			tableMargin := 4 * u * (1 + 2*old.L)
			inflMargin := 12 * u * (1 + 2*old.L)

			sc := newExactScorer(sub.theta, sub.T, sub.theta.K(), sub.T-1, sub.allInits, sched.New(1), newPowerCacheSet())
			for j := 0; j < sub.T-1; j++ {
				for idx := range old.fwd[j] {
					for _, pair := range []struct {
						side     string
						got, ref float64
					}{
						{"fwd", sc.fwd[j][idx], old.fwd[j][idx]},
						{"bwd", sc.bwd[j][idx], old.bwd[j][idx]},
					} {
						if math.IsInf(pair.ref, 0) || math.IsInf(pair.got, 0) {
							if pair.got != pair.ref {
								t.Fatalf("%s(%d)[%d] = %v, want %v exactly", pair.side, j+1, idx, pair.got, pair.ref)
							}
							continue
						}
						if math.Abs(pair.got-pair.ref) > tableMargin {
							t.Fatalf("%s(%d)[%d] = %v, reference %v: diff %g beyond margin %g",
								pair.side, j+1, idx, pair.got, pair.ref, pair.got-pair.ref, tableMargin)
						}
					}
				}
			}

			for _, eps := range []float64{1, 3} {
				for i := 1; i <= sub.T; i++ {
					oSigma, _, _ := old.nodeScore(i, sub.T, eps)
					nSigma, nQuilt, nInfl := sc.nodeScore(i, sub.T, eps)
					if tol := 1e-9 * (1 + math.Abs(oSigma)); math.Abs(nSigma-oSigma) > tol {
						t.Fatalf("ε=%g node %d: σ %v vs reference %v", eps, i, nSigma, oSigma)
					}
					oInfl, ok := old.influence(i, nQuilt)
					if !ok {
						t.Fatalf("ε=%g node %d: selected quilt %+v inadmissible under reference", eps, i, nQuilt)
					}
					if math.Abs(nInfl-oInfl) > inflMargin {
						t.Fatalf("ε=%g node %d quilt %+v: influence %v vs reference %v, diff %g beyond margin %g",
							eps, i, nQuilt, nInfl, oInfl, nInfl-oInfl, inflMargin)
					}
					if nInfl < oInfl-inflMargin {
						t.Fatalf("ε=%g node %d quilt %+v: influence %v undershoots reference %v beyond margin",
							eps, i, nQuilt, nInfl, oInfl)
					}
				}
			}
		})
	}
}

// TestScoreCacheIncrementalLengthBitIdentical: scoring a chain at
// length T+1 through a cache warmed at length T returns exactly the
// fresh ExactScore(T+1) result — the incremental table path changes
// cost, never values — and the table layer's counters show the reuse.
func TestScoreCacheIncrementalLengthBitIdentical(t *testing.T) {
	chain, err := markov.BinaryChain(0.5, 0.9, 0.85).StationaryChain()
	if err != nil {
		t.Fatal(err)
	}
	classT, err := markov.NewSingleton(chain, 120)
	if err != nil {
		t.Fatal(err)
	}
	classT1, err := markov.NewSingleton(chain, 121)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache()
	if _, err := cache.ExactScore(classT, 1, ExactOptions{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := cache.ExactScore(classT1, 1, ExactOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExactScore(classT1, 1, ExactOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("incremental score differs from fresh:\n  warm  %+v\n  fresh %+v", got, want)
	}
	ts := cache.TableStats()
	if ts.Misses != 1 || ts.Hits < 1 || ts.Matrices != 1 || ts.Powers < 1 {
		t.Fatalf("table stats after T then T+1 over one matrix: %+v", ts)
	}
}
