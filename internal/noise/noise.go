// Package noise abstracts the additive noise source of the release
// mechanisms behind one interface, extracted from internal/laplace so
// mechanisms can be written against "an additive noise distribution"
// rather than Laplace specifically. Two backends exist:
//
//   - Laplace(scale): the workhorse of Song–Wang–Chaudhuri — scale
//     W∞/ε yields ε-Pufferfish privacy (Theorem 3.2), and it is the
//     continuous limit of the exponential mechanism with utility
//     −|y − F(x)| (Ding, "Kantorovich Mechanism for Pufferfish
//     Privacy").
//   - Gaussian(sigma): the general additive-noise route of Pierquin,
//     Bellet, Tommasi, Boussard, "Rényi Pufferfish Privacy": the same
//     W∞ transport bound calibrates any shift-reducible noise; for
//     Gaussian noise, σ = W∞·√(2·ln(1.25/δ))/ε gives the (ε, δ)
//     analogue of the Laplace guarantee.
//
// Both backends are validated at construction (no panicking paths, in
// contrast to laplace.New), so serving-layer callers can surface bad
// scales as request errors.
package noise

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pufferfish/internal/laplace"
)

// Additive is a zero-mean additive noise distribution on ℝ.
type Additive interface {
	// Scale returns the distribution's scale parameter (b for Laplace,
	// σ for Gaussian).
	Scale() float64
	// PDF returns the density at x.
	PDF(x float64) float64
	// LogPDF returns the log density at x.
	LogPDF(x float64) float64
	// MeanAbs returns E|X|, the expected absolute (L1) error a release
	// adds per coordinate.
	MeanAbs() float64
	// Variance returns Var X.
	Variance() float64
	// Sample draws one variate.
	Sample(rng *rand.Rand) float64
	// Name identifies the backend in reports ("laplace", "gaussian").
	Name() string
}

// checkScale validates a noise scale the way core.ValidateNoiseScale
// does for releases: positive and finite, never NaN.
func checkScale(scale float64, kind string) error {
	if !(scale > 0) || math.IsInf(scale, 1) {
		return fmt.Errorf("noise: invalid %s scale %v", kind, scale)
	}
	return nil
}

// Laplace returns Lap(scale) behind the Additive interface. Unlike
// laplace.New it returns an error instead of panicking, so callers on
// request paths can reject degenerate scales gracefully.
func Laplace(scale float64) (Additive, error) {
	if err := checkScale(scale, "laplace"); err != nil {
		return nil, err
	}
	return laplaceNoise{laplace.Dist{Scale: scale}}, nil
}

// laplaceNoise adapts laplace.Dist to Additive.
type laplaceNoise struct {
	d laplace.Dist
}

func (l laplaceNoise) Scale() float64                { return l.d.Scale }
func (l laplaceNoise) PDF(x float64) float64         { return l.d.PDF(x) }
func (l laplaceNoise) LogPDF(x float64) float64      { return l.d.LogPDF(x) }
func (l laplaceNoise) MeanAbs() float64              { return l.d.MeanAbs() }
func (l laplaceNoise) Variance() float64             { return l.d.Variance() }
func (l laplaceNoise) Sample(rng *rand.Rand) float64 { return l.d.Sample(rng) }
func (l laplaceNoise) Name() string                  { return "laplace" }

// Gaussian returns N(0, sigma²) behind the Additive interface.
func Gaussian(sigma float64) (Additive, error) {
	if err := checkScale(sigma, "gaussian"); err != nil {
		return nil, err
	}
	return gaussianNoise{sigma: sigma}, nil
}

type gaussianNoise struct {
	sigma float64
}

func (g gaussianNoise) Scale() float64 { return g.sigma }

func (g gaussianNoise) PDF(x float64) float64 {
	z := x / g.sigma
	return math.Exp(-z*z/2) / (g.sigma * math.Sqrt(2*math.Pi))
}

func (g gaussianNoise) LogPDF(x float64) float64 {
	z := x / g.sigma
	return -z*z/2 - math.Log(g.sigma) - 0.5*math.Log(2*math.Pi)
}

// MeanAbs returns E|X| = σ·√(2/π) for a centered Gaussian.
func (g gaussianNoise) MeanAbs() float64 { return g.sigma * math.Sqrt(2/math.Pi) }

func (g gaussianNoise) Variance() float64 { return g.sigma * g.sigma }

func (g gaussianNoise) Sample(rng *rand.Rand) float64 { return rng.NormFloat64() * g.sigma }

func (g gaussianNoise) Name() string { return "gaussian" }

// GaussianSigma calibrates the Gaussian backend to an (ε, δ) target
// for a query whose per-pair conditional distributions are within W∞
// transport distance wInf: σ = W∞·√(2·ln(1.25/δ))/ε, the analytic
// Gaussian-mechanism scale with the sensitivity replaced by the
// transport bound (Pierquin et al., shift-reduction lemma). Valid for
// ε ∈ (0, 1] and δ ∈ (0, 1).
func GaussianSigma(wInf, eps, delta float64) (float64, error) {
	if !(eps > 0 && eps <= 1) {
		return 0, fmt.Errorf("noise: gaussian calibration needs ε ∈ (0,1], got %v", eps)
	}
	if !(delta > 0 && delta < 1) {
		return 0, fmt.Errorf("noise: gaussian calibration needs δ ∈ (0,1), got %v", delta)
	}
	if !(wInf > 0) || math.IsInf(wInf, 1) {
		return 0, fmt.Errorf("noise: invalid transport bound W∞ = %v", wInf)
	}
	return wInf * math.Sqrt(2*math.Log(1.25/delta)) / eps, nil
}

// GaussianRho is the per-coordinate Rényi/zCDP parameter of a
// Gaussian release under the same W∞ shift-reduction bound that
// GaussianSigma calibrates to: a scalar released as value + N(0, σ²)
// whose conditional distributions are within W∞ transport distance
// wInf satisfies ε_α = α·ρ Rényi Pufferfish privacy at every order
// α > 1, with ρ = W∞²/(2σ²) (Pierquin et al., arXiv:2312.13985). This
// is what a release feeds the accounting ledger: unlike the (ε, δ)
// the σ was calibrated to, the curve composes additively.
func GaussianRho(wInf, sigma float64) (float64, error) {
	if !(wInf > 0) || math.IsInf(wInf, 1) {
		return 0, fmt.Errorf("noise: invalid transport bound W∞ = %v", wInf)
	}
	if err := checkScale(sigma, "gaussian"); err != nil {
		return 0, err
	}
	return wInf * wInf / (2 * sigma * sigma), nil
}

// AddVec returns values + independent noise per coordinate, leaving
// the input untouched — the vector release step shared by every
// additive mechanism.
func AddVec(values []float64, n Additive, rng *rand.Rand) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v + n.Sample(rng)
	}
	return out
}
