package noise

import (
	"math"
	"math/rand/v2"
	"testing"

	"pufferfish/internal/laplace"
)

func TestLaplaceMatchesUnderlyingDist(t *testing.T) {
	n, err := Laplace(2.5)
	if err != nil {
		t.Fatal(err)
	}
	d := laplace.New(2.5)
	for _, x := range []float64{-3, -0.5, 0, 1.25, 7} {
		if n.PDF(x) != d.PDF(x) {
			t.Errorf("PDF(%v) = %v, want %v", x, n.PDF(x), d.PDF(x))
		}
		if n.LogPDF(x) != d.LogPDF(x) {
			t.Errorf("LogPDF(%v) = %v, want %v", x, n.LogPDF(x), d.LogPDF(x))
		}
	}
	if n.MeanAbs() != d.MeanAbs() || n.Variance() != d.Variance() || n.Scale() != 2.5 {
		t.Errorf("moments diverge from laplace.Dist")
	}
	if n.Name() != "laplace" {
		t.Errorf("Name = %q", n.Name())
	}
	// Same scale, same seed → the adapter samples identical variates.
	r1 := rand.New(rand.NewPCG(1, 2))
	r2 := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 10; i++ {
		if n.Sample(r1) != d.Sample(r2) {
			t.Fatal("adapter sampling diverges from laplace.Dist")
		}
	}
}

func TestGaussianDensityAndMoments(t *testing.T) {
	g, err := Gaussian(1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Density integrates to ~1 and matches exp(LogPDF).
	var integral float64
	for x := -12.0; x <= 12; x += 1e-3 {
		p := g.PDF(x)
		integral += p * 1e-3
		if math.Abs(p-math.Exp(g.LogPDF(x))) > 1e-12 {
			t.Fatalf("PDF/LogPDF mismatch at %v", x)
		}
	}
	if math.Abs(integral-1) > 1e-3 {
		t.Errorf("density integrates to %v", integral)
	}
	if math.Abs(g.MeanAbs()-1.5*math.Sqrt(2/math.Pi)) > 1e-12 {
		t.Errorf("MeanAbs = %v", g.MeanAbs())
	}
	if g.Variance() != 2.25 || g.Name() != "gaussian" {
		t.Errorf("Variance = %v, Name = %q", g.Variance(), g.Name())
	}
	// Empirical moments from samples.
	rng := rand.New(rand.NewPCG(3, 4))
	var sum, sumSq float64
	const trials = 200_000
	for i := 0; i < trials; i++ {
		v := g.Sample(rng)
		sum += v
		sumSq += v * v
	}
	if mean := sum / trials; math.Abs(mean) > 0.02 {
		t.Errorf("sample mean = %v", mean)
	}
	if v := sumSq / trials; math.Abs(v-2.25) > 0.05 {
		t.Errorf("sample variance = %v, want 2.25", v)
	}
}

func TestInvalidScalesRejected(t *testing.T) {
	for _, s := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := Laplace(s); err == nil {
			t.Errorf("Laplace(%v): accepted", s)
		}
		if _, err := Gaussian(s); err == nil {
			t.Errorf("Gaussian(%v): accepted", s)
		}
	}
}

func TestGaussianSigmaCalibration(t *testing.T) {
	sigma, err := GaussianSigma(2, 0.5, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Sqrt(2*math.Log(1.25/1e-5)) / 0.5
	if math.Abs(sigma-want) > 1e-12 {
		t.Errorf("sigma = %v, want %v", sigma, want)
	}
	for _, c := range []struct{ w, eps, delta float64 }{
		{2, 0, 1e-5}, {2, 1.5, 1e-5}, {2, 0.5, 0}, {2, 0.5, 1}, {0, 0.5, 1e-5}, {math.Inf(1), 0.5, 1e-5},
	} {
		if _, err := GaussianSigma(c.w, c.eps, c.delta); err == nil {
			t.Errorf("GaussianSigma(%v, %v, %v): accepted", c.w, c.eps, c.delta)
		}
	}
}

func TestAddVec(t *testing.T) {
	n, err := Laplace(1)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{1, 2, 3}
	r1 := rand.New(rand.NewPCG(9, 9))
	out := AddVec(in, n, r1)
	if in[0] != 1 || in[1] != 2 || in[2] != 3 {
		t.Fatal("AddVec mutated its input")
	}
	r2 := rand.New(rand.NewPCG(9, 9))
	want := laplace.AddNoise(in, 1, r2)
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("AddVec diverges from laplace.AddNoise at %d: %v vs %v", i, out[i], want[i])
		}
	}
}
