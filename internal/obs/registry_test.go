package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden pins the Prometheus text format byte for byte:
// HELP/TYPE lines, family and series sort order, label escaping,
// histogram cumulative buckets with the le label, and the _sum/_count
// suffixes. A scraper-visible format change must show up here.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("test_requests_total", "Requests by mechanism and status.", "mechanism", "status")
	c.With("mqm-exact", "200").Add(3)
	c.With("dp", "403").Inc()

	g := r.Gauge("test_workers", "Workers in use.")
	g.With().Set(2.5)

	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 12 })

	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1}, "stage")
	hs := h.With("score")
	hs.Observe(0.05)
	hs.Observe(0.05)
	hs.Observe(0.5)
	hs.Observe(7) // +Inf bucket

	// Label values exercising every escape: backslash, quote, newline.
	e := r.Counter("test_escapes_total", "Help with a backslash \\ kept.", "session")
	e.With("we\"ird\\name\n").Inc()

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatalf("Expose: %v", err)
	}
	want := `# HELP test_escapes_total Help with a backslash \\ kept.
# TYPE test_escapes_total counter
test_escapes_total{session="we\"ird\\name\n"} 1
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{stage="score",le="0.1"} 2
test_latency_seconds_bucket{stage="score",le="1"} 3
test_latency_seconds_bucket{stage="score",le="+Inf"} 4
test_latency_seconds_sum{stage="score"} 7.6
test_latency_seconds_count{stage="score"} 4
# HELP test_requests_total Requests by mechanism and status.
# TYPE test_requests_total counter
test_requests_total{mechanism="dp",status="403"} 1
test_requests_total{mechanism="mqm-exact",status="200"} 3
# HELP test_uptime_seconds Uptime.
# TYPE test_uptime_seconds gauge
test_uptime_seconds 12
# HELP test_workers Workers in use.
# TYPE test_workers gauge
test_workers 2.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestCollectDynamicSeries(t *testing.T) {
	r := NewRegistry()
	sessions := map[string]float64{"alice": 1.5, "bob": 0.25}
	r.Collect("test_eps", "Per-session spend.", "gauge", []string{"session"},
		func(emit func([]string, float64)) {
			for name, eps := range sessions {
				emit([]string{name}, eps)
			}
		})
	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_eps Per-session spend.
# TYPE test_eps gauge
test_eps{session="alice"} 1.5
test_eps{session="bob"} 0.25
`
	if got := b.String(); got != want {
		t.Errorf("collect exposition:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The series set follows the backing state scrape to scrape.
	sessions["carol"] = 3
	b.Reset()
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `test_eps{session="carol"} 3`) {
		t.Errorf("new session missing from rescrape:\n%s", b.String())
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_one", "One.", func() float64 { return 1 })
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type %q", got)
	}
	if !strings.Contains(rec.Body.String(), "test_one 1") {
		t.Errorf("body: %s", rec.Body.String())
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "d")
	mustPanic(t, "duplicate family", func() { r.Gauge("dup", "d") })
	v := r.Counter("labeled", "l", "a", "b")
	mustPanic(t, "label arity", func() { v.With("only-one") })
	mustPanic(t, "counter decrement", func() { v.With("x", "y").Add(-1) })
	mustPanic(t, "histogram kind in Collect", func() {
		r.Collect("h", "h", "histogram", nil, func(func([]string, float64)) {})
	})
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}
