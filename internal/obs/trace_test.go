package obs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestSpansRecord(t *testing.T) {
	tr := NewTrace("release")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	_, sp := StartSpan(ctx, "prepare")
	sp.End()
	_, sp2 := StartSpan(ctx, "score")
	sp2.EndErr(errors.New("boom"))
	_, sp3 := StartSpan(ctx, "noise")
	sp3.EndErr(nil)
	sp3.End() // idempotent: a double end must not duplicate the record
	tr.Finish(time.Millisecond)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans: %+v", len(spans), spans)
	}
	if spans[0].Name != "prepare" || spans[0].Err != "" {
		t.Errorf("span 0: %+v", spans[0])
	}
	if spans[1].Name != "score" || spans[1].Err != "boom" {
		t.Errorf("span 1: %+v", spans[1])
	}
	if spans[2].Name != "noise" || spans[2].Err != "" {
		t.Errorf("span 2: %+v", spans[2])
	}
	if tr.Duration() != time.Millisecond {
		t.Errorf("duration %v", tr.Duration())
	}
}

func TestSpanNoopWithoutTrace(t *testing.T) {
	_, sp := StartSpan(context.Background(), "prepare")
	if sp != nil {
		t.Fatalf("expected nil span, got %+v", sp)
	}
	sp.End() // nil-safe
	sp.EndErr(errors.New("x"))
}

func TestTraceAttrs(t *testing.T) {
	tr := NewTrace("release")
	tr.SetAttr("mechanism", "dp")
	tr.SetAttr("status", "200")
	tr.SetAttr("status", "403") // overwrite, order preserved
	attrs := tr.Attrs()
	if len(attrs) != 2 || attrs[0] != (Attr{"mechanism", "dp"}) || attrs[1] != (Attr{"status", "403"}) {
		t.Errorf("attrs: %+v", attrs)
	}
	var nilT *Trace
	nilT.SetAttr("k", "v") // nil-safe
	if nilT.Attrs() != nil {
		t.Error("nil trace attrs")
	}
}

func TestTraceSnapshot(t *testing.T) {
	tr := NewTrace("release")
	ctx := WithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "prepare")
	sp.End()
	tr.SetAttr("mechanism", "dp")
	tr.Finish(2 * time.Millisecond)
	snap := tr.Snapshot()
	if snap.ID == "" || snap.Name != "release" {
		t.Errorf("snapshot header: %+v", snap)
	}
	if snap.DurationMS != 2 {
		t.Errorf("duration_ms %v", snap.DurationMS)
	}
	if snap.Attrs["mechanism"] != "dp" {
		t.Errorf("attrs %v", snap.Attrs)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "prepare" {
		t.Errorf("spans %+v", snap.Spans)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	if got := r.Recent(); len(got) != 0 {
		t.Fatalf("empty ring: %v", got)
	}
	for i := 0; i < 5; i++ {
		tr := NewTrace(fmt.Sprintf("req-%d", i))
		r.Add(tr)
	}
	if r.Len() != 3 {
		t.Errorf("len %d", r.Len())
	}
	got := r.Recent()
	if len(got) != 3 {
		t.Fatalf("recent: %d", len(got))
	}
	// Newest first, oldest two evicted.
	for i, want := range []string{"req-4", "req-3", "req-2"} {
		if got[i].Name != want {
			t.Errorf("recent[%d] = %s, want %s", i, got[i].Name, want)
		}
	}
	r.Add(nil) // nil-safe
	if r.Len() != 3 {
		t.Errorf("nil add changed len to %d", r.Len())
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTrace("x").ID
		if seen[id] {
			t.Fatalf("duplicate trace id %s", id)
		}
		seen[id] = true
	}
}
