package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// traceIDs numbers traces process-wide; IDs are unique per process and
// deliberately deterministic (no clock or randomness) so tests can pin
// trace output.
var traceIDs atomic.Uint64

type traceCtxKey struct{}

// Trace is one request's span collection: a flat list of timed stages
// (prepare, ceiling, wait, score, noise, finish, journal) plus
// string attributes a handler attaches as it learns them (mechanism,
// substrate, session, status). A Trace is safe for concurrent span
// recording; handlers create one per request, thread it through the
// context, and hand the finished trace to a TraceRing.
type Trace struct {
	ID    string
	Name  string
	Start time.Time

	mu    sync.Mutex
	attrs []Attr        // guarded by mu
	spans []SpanRecord  // guarded by mu
	dur   time.Duration // guarded by mu
}

// Attr is one key-value annotation on a trace, in attachment order.
type Attr struct{ Key, Value string }

// NewTrace starts a named trace.
func NewTrace(name string) *Trace {
	return &Trace{
		ID:    "t" + strconv.FormatUint(traceIDs.Add(1), 16),
		Name:  name,
		Start: time.Now(),
	}
}

// WithTrace attaches t to the context for StartSpan to find.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// SetAttr attaches (or overwrites) a key-value annotation. Nil-safe.
func (t *Trace) SetAttr(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.attrs {
		if t.attrs[i].Key == key {
			t.attrs[i].Value = value
			return
		}
	}
	t.attrs = append(t.attrs, Attr{Key: key, Value: value})
}

// Attrs returns a copy of the annotations in attachment order.
func (t *Trace) Attrs() []Attr {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Attr, len(t.attrs))
	copy(out, t.attrs)
	return out
}

// Finish records the trace's total duration.
func (t *Trace) Finish(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dur = d
	t.mu.Unlock()
}

// Duration returns the duration recorded by Finish.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dur
}

// Spans returns a copy of the recorded spans in end order.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

func (t *Trace) addSpan(r SpanRecord) {
	t.mu.Lock()
	t.spans = append(t.spans, r)
	t.mu.Unlock()
}

// SpanRecord is one completed stage of a trace.
type SpanRecord struct {
	Name  string
	Start time.Time
	Dur   time.Duration
	// Err is the stage's error text ("" on success). Failed stages stay
	// visible in the trace but are excluded from the stage-latency
	// histograms, so a histogram's _count equals the stage's successes.
	Err string
}

// Span is an in-flight stage. A nil *Span (StartSpan on a context
// without a trace) is a valid no-op, so pipeline code records stages
// unconditionally and pays nothing when unobserved.
type Span struct {
	t     *Trace
	name  string
	start time.Time
	done  bool
}

// StartSpan begins a named stage on the context's trace. The returned
// context is the input context (spans are flat); the caller must End
// or EndErr the span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TraceFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	return ctx, &Span{t: t, name: name, start: time.Now()}
}

// End records the span as successful. Safe on nil and idempotent.
func (s *Span) End() { s.finish("") }

// EndErr records the span, marking it failed when err != nil — the
// one-liner for the `sp.EndErr(err)` pattern after a fallible stage.
func (s *Span) EndErr(err error) {
	if err != nil {
		s.finish(err.Error())
		return
	}
	s.finish("")
}

func (s *Span) finish(errText string) {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.t.addSpan(SpanRecord{
		Name:  s.name,
		Start: s.start,
		Dur:   time.Since(s.start),
		Err:   errText,
	})
}

// TraceSnapshot is the JSON shape of one completed trace, as served by
// GET /v1/traces/recent.
type TraceSnapshot struct {
	ID         string            `json:"id"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Spans      []SpanSnapshot    `json:"spans"`
}

// SpanSnapshot is one stage of a TraceSnapshot.
type SpanSnapshot struct {
	Name string `json:"name"`
	// OffsetMS is the stage's start relative to the trace start.
	OffsetMS   float64 `json:"offset_ms"`
	DurationMS float64 `json:"duration_ms"`
	Error      string  `json:"error,omitempty"`
}

// Snapshot renders the trace for the recent-traces endpoint.
func (t *Trace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TraceSnapshot{
		ID:         t.ID,
		Name:       t.Name,
		Start:      t.Start,
		DurationMS: float64(t.dur) / float64(time.Millisecond),
		Spans:      make([]SpanSnapshot, len(t.spans)),
	}
	if len(t.attrs) > 0 {
		snap.Attrs = make(map[string]string, len(t.attrs))
		for _, a := range t.attrs {
			snap.Attrs[a.Key] = a.Value
		}
	}
	for i, sp := range t.spans {
		snap.Spans[i] = SpanSnapshot{
			Name:       sp.Name,
			OffsetMS:   float64(sp.Start.Sub(t.Start)) / float64(time.Millisecond),
			DurationMS: float64(sp.Dur) / float64(time.Millisecond),
			Error:      sp.Err,
		}
	}
	return snap
}

// TraceRing is a bounded ring of completed traces: the newest N
// requests' traces, served by GET /v1/traces/recent. Adding is O(1)
// and never blocks request handling on a scraper.
type TraceRing struct {
	mu  sync.Mutex
	buf []*Trace // guarded by mu
	pos int      // guarded by mu; next write index
	n   int      // guarded by mu; filled entries
}

// NewTraceRing returns a ring holding up to capacity traces.
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = 1
	}
	return &TraceRing{buf: make([]*Trace, capacity)}
}

// Add inserts a completed trace, evicting the oldest when full.
func (r *TraceRing) Add(t *Trace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.pos] = t
	r.pos = (r.pos + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns the number of traces held.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Recent returns snapshots of the held traces, newest first.
func (r *TraceRing) Recent() []TraceSnapshot {
	r.mu.Lock()
	traces := make([]*Trace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		traces = append(traces, r.buf[(r.pos-i+len(r.buf))%len(r.buf)])
	}
	r.mu.Unlock()
	out := make([]TraceSnapshot, len(traces))
	for i, t := range traces {
		out[i] = t.Snapshot()
	}
	return out
}
