package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds metric families and renders them in the Prometheus
// text exposition format (version 0.0.4). Unlike the common client
// libraries there is no process-global registry: each Registry is an
// independent value, so two servers in one test process never collide.
//
// Two collection styles coexist:
//
//   - Instrumented families (Counter/Gauge/Histogram) own their series
//     and are updated on the hot path with atomics.
//   - Collected families (CounterFunc/GaugeFunc/Collect) read external
//     state — cache counters, worker budgets, accountant ledgers — at
//     scrape time, so subsystems that already keep counters are
//     exposed without double bookkeeping.
//
// Exposition is deterministic: families sort by name, series by label
// values, so the output is golden-testable byte for byte.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name, help, kind string
	labels           []string
	buckets          []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series // guarded by mu

	// collect, when set, produces the family's samples at scrape time
	// and the series map stays empty.
	collect func(emit func(labelValues []string, value float64))
}

type series struct {
	values []string
	num    atomicFloat
	hist   *Histogram
}

func (r *Registry) register(name, help, kind string, labels []string, buckets []float64,
	collect func(emit func([]string, float64))) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic("obs: duplicate metric family " + name)
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: labels, buckets: buckets,
		series: make(map[string]*series), collect: collect,
	}
	r.families[name] = f
	return f
}

// seriesKey joins label values with an unprintable separator so
// distinct value tuples can never collide.
func seriesKey(values []string) string { return strings.Join(values, "\x00") }

func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		own := make([]string, len(values))
		copy(own, values)
		s = &series{values: own}
		if f.kind == "histogram" {
			s.hist = NewHistogram(f.buckets)
		}
		f.series[key] = s
	}
	return s
}

// Counter registers a counter family with the given label keys.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", labels, nil, nil)}
}

// Gauge registers a gauge family with the given label keys.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, "gauge", labels, nil, nil)}
}

// Histogram registers a histogram family over the given bucket bounds
// (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.register(name, help, "histogram", labels, buckets, nil)}
}

// CounterFunc registers an unlabeled counter whose value is read at
// scrape time — the bridge for subsystems that already keep their own
// monotone counters (cache hits, WAL appends).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", nil, nil, func(emit func([]string, float64)) {
		emit(nil, fn())
	})
}

// GaugeFunc registers an unlabeled gauge read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, nil, func(emit func([]string, float64)) {
		emit(nil, fn())
	})
}

// Collect registers a scrape-time family with a dynamic series set:
// fn is called per scrape and emits one sample per label-value tuple.
// It is how per-session accountant gauges surface sessions that are
// minted and named at runtime.
func (r *Registry) Collect(name, help, kind string, labels []string, fn func(emit func(labelValues []string, value float64))) {
	if kind != "counter" && kind != "gauge" {
		panic("obs: Collect supports counter and gauge families, got " + kind)
	}
	r.register(name, help, kind, labels, nil, fn)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{v.f.get(values)} }

// Counter is one monotonically increasing series.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.s.num.Add(1) }

// Add adds d (must be ≥ 0; counters only go up).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("obs: counter decremented")
	}
	c.s.num.Add(d)
}

// Value returns the current value.
func (c *Counter) Value() float64 { return c.s.num.Load() }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{v.f.get(values)} }

// Gauge is one settable series.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.num.Store(v) }

// Add adds d (may be negative).
func (g *Gauge) Add(d float64) { g.s.num.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.s.num.Load() }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).hist }

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only (quotes
// are legal there).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value; +Inf/-Inf spell the exposition
// forms.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k1="v1",k2="v2"}; extra appends pre-rendered
// pairs (the histogram le label). Empty label sets render nothing.
func labelString(keys, values []string, extra ...string) string {
	if len(keys) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	for i, e := range extra {
		if i > 0 || len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e)
	}
	b.WriteByte('}')
	return b.String()
}

// Expose writes the whole registry in the Prometheus text format.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.expose(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) expose(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	if f.collect != nil {
		type sample struct {
			values []string
			v      float64
		}
		var samples []sample
		f.collect(func(values []string, v float64) {
			if len(values) != len(f.labels) {
				panic(fmt.Sprintf("obs: collected metric %s wants %d label values, got %d",
					f.name, len(f.labels), len(values)))
			}
			samples = append(samples, sample{values: values, v: v})
		})
		sort.Slice(samples, func(i, j int) bool {
			return seriesKey(samples[i].values) < seriesKey(samples[j].values)
		})
		for _, s := range samples {
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.values), formatValue(s.v))
		}
		return
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ss := make([]*series, len(keys))
	for i, k := range keys {
		ss[i] = f.series[k]
	}
	f.mu.Unlock()
	for _, s := range ss {
		if f.kind != "histogram" {
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.values), formatValue(s.num.Load()))
			continue
		}
		snap := s.hist.Snapshot()
		var cum uint64
		for i, bound := range snap.Bounds {
			cum += snap.Counts[i]
			le := `le="` + formatValue(bound) + `"`
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.values, le), cum)
		}
		cum += snap.Counts[len(snap.Counts)-1]
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.values, `le="+Inf"`), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, s.values), formatValue(snap.Sum))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, s.values), cum)
	}
}

// Handler returns the GET /metrics exposition handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Expose(w) //nolint:errcheck // the scraper went away; nothing to do
	})
}
