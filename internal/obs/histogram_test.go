package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketSemantics(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// le semantics: a value equal to a bound lands in that bound's
	// bucket, one ulp above spills into the next.
	h.Observe(1)
	h.Observe(math.Nextafter(1, 2))
	h.Observe(2)
	h.Observe(4)
	h.Observe(100) // +Inf bucket
	s := h.Snapshot()
	want := []uint64{1, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Errorf("count %d", s.Count)
	}
	if s.Max != 100 {
		t.Errorf("max %v", s.Max)
	}
	if got := 1 + math.Nextafter(1, 2) + 2 + 4 + 100; s.Sum != got {
		t.Errorf("sum %v want %v", s.Sum, got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	// 100 observations uniform in (0, 0.1]: p50 interpolates inside the
	// (0.01, 0.1] bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.001)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 0.03 || p50 > 0.07 {
		t.Errorf("p50 = %v, want ≈ 0.05", p50)
	}
	if p100 := s.Quantile(1); p100 != s.Max {
		t.Errorf("p100 = %v, want exact max %v", p100, s.Max)
	}
	if q := s.Quantile(0.99); q > s.Max {
		t.Errorf("p99 %v exceeds max %v", q, s.Max)
	}
	// Values beyond the last bound: the +Inf bucket reports the exact max.
	h2 := NewHistogram([]float64{1})
	h2.Observe(50)
	if q := h2.Snapshot().Quantile(0.9); q != 50 {
		t.Errorf("+Inf bucket quantile = %v, want the tracked max 50", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v", q)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Errorf("count %d want %d", s.Count, workers*per)
	}
	var cum uint64
	for _, c := range s.Counts {
		cum += c
	}
	if cum != s.Count {
		t.Errorf("bucket sum %d != count %d", cum, s.Count)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	mustPanic(t, "empty", func() { NewHistogram([]float64{}) })
	mustPanic(t, "unsorted", func() { NewHistogram([]float64{2, 1}) })
	mustPanic(t, "inf", func() { NewHistogram([]float64{1, math.Inf(1)}) })
}
