// Package obs is the zero-dependency observability layer shared by the
// serving stack and the bench tooling: a metrics registry (atomic
// counters, gauges, and fixed-bucket histograms) with a Prometheus
// text-format exposition handler, and a lightweight request-scoped
// span API feeding a bounded in-memory trace ring. Everything here is
// stdlib-only and safe for concurrent use; the hot-path cost of an
// Observe or Inc is a couple of atomic operations, so instrumentation
// never needs to be stripped for performance.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are the default latency buckets, in seconds: a roughly
// log-spaced ladder from 100µs to 10s that covers everything from a
// cache-hit release (sub-millisecond) to a cold k=51 exact sweep
// (~100ms) with headroom for pathological requests.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// atomicFloat is a float64 updated with CAS loops so histograms and
// gauges never take a lock on the observation path.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// max raises the stored value to v if v is larger.
func (f *atomicFloat) max(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Histogram is a fixed-bucket histogram with atomic counters: the type
// behind the registry's histogram families and, standalone, behind the
// pufferbench serve latency report — the bench and the server measure
// with identical bucket semantics (Prometheus le: an observation lands
// in the first bucket whose upper bound is ≥ the value). The exact
// maximum is tracked alongside the buckets so tail percentiles beyond
// the last finite bound stay meaningful.
type Histogram struct {
	bounds []float64       // strictly increasing finite upper bounds
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomicFloat
	maxv   atomicFloat
}

// NewHistogram returns a histogram over the given upper bounds (nil
// means DefBuckets). Bounds must be finite and strictly increasing.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i, b := range own {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: non-finite histogram bound %v", b))
		}
		if i > 0 && own[i-1] >= b {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %v", b))
		}
	}
	h := &Histogram{bounds: own, counts: make([]atomic.Uint64, len(own)+1)}
	h.maxv.Store(math.Inf(-1))
	return h
}

// Observe records one value. Nil histograms drop it, so optional
// instrumentation hooks need no branching at the call site.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bucket whose bound is ≥ v (the le contract); everything past
	// the last finite bound lands in the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.maxv.max(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram. Count is
// derived from the bucket counts (not a separate counter), so a
// snapshot is always self-consistent: the +Inf cumulative bucket in
// the exposition equals Count by construction even while observations
// land concurrently.
type HistogramSnapshot struct {
	Bounds []float64 // finite upper bounds
	Counts []uint64  // per-bucket counts; len(Bounds)+1, last is +Inf
	Count  uint64    // total observations (sum of Counts)
	Sum    float64
	Max    float64 // exact largest observation (0 when empty)
}

// Snapshot copies the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	if m := h.maxv.Load(); !math.IsInf(m, -1) {
		s.Max = m
	}
	return s
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation within the covering bucket — the same estimate a
// Prometheus histogram_quantile() gives — except that the open +Inf
// bucket and q == 1 report the exact tracked maximum instead of an
// unbounded guess. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		return s.Max
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < target || c == 0 {
			continue
		}
		if i == len(s.Bounds) {
			return s.Max // +Inf bucket: the max is the best finite answer
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		est := lower + (upper-lower)*(target-prev)/float64(c)
		return math.Min(est, s.Max)
	}
	return s.Max
}
