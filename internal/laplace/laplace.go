// Package laplace implements the Laplace distribution Lap(σ) used by
// every mechanism in the paper: zero mean, scale parameter σ, density
// h(x) = exp(−|x|/σ)/(2σ) (Section 2.4).
package laplace

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Dist is a zero-mean Laplace distribution with scale Scale.
type Dist struct {
	Scale float64
}

// New returns Lap(scale). It panics if scale is not positive and
// finite, which is always a caller bug (mechanisms verify ε and
// sensitivity before constructing their noise source).
func New(scale float64) Dist {
	if !(scale > 0) || math.IsInf(scale, 1) {
		panic(fmt.Sprintf("laplace: invalid scale %v", scale))
	}
	return Dist{Scale: scale}
}

// PDF returns the density at x.
func (d Dist) PDF(x float64) float64 {
	return math.Exp(-math.Abs(x)/d.Scale) / (2 * d.Scale)
}

// LogPDF returns the log density at x.
func (d Dist) LogPDF(x float64) float64 {
	return -math.Abs(x)/d.Scale - math.Log(2*d.Scale)
}

// CDF returns P(X ≤ x).
func (d Dist) CDF(x float64) float64 {
	if x < 0 {
		return 0.5 * math.Exp(x/d.Scale)
	}
	return 1 - 0.5*math.Exp(-x/d.Scale)
}

// MeanAbs returns E|X| = σ, the expected absolute deviation. Every
// "expected L1 error" formula in EXPERIMENTS.md comes from this.
func (d Dist) MeanAbs() float64 { return d.Scale }

// Variance returns Var X = 2σ².
func (d Dist) Variance() float64 { return 2 * d.Scale * d.Scale }

// Sample draws one variate by inverse-CDF: with U uniform on
// (−1/2, 1/2), X = −σ·sign(U)·ln(1−2|U|).
func (d Dist) Sample(rng *rand.Rand) float64 {
	u := rng.Float64() - 0.5
	// Guard the boundary where log would blow up. Float64 is in [0, 1),
	// so u is in [-0.5, 0.5): only the lower endpoint is reachable, and
	// it is hit exactly when Float64 returns bit-exact 0.
	//privlint:allow floatcompare guarding the exact u = -0.5 boundary before log(1+2u)
	for u == -0.5 {
		u = rng.Float64() - 0.5
	}
	if u < 0 {
		return d.Scale * math.Log(1+2*u)
	}
	return -d.Scale * math.Log(1-2*u)
}

// SampleVec draws n independent variates.
func (d Dist) SampleVec(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// AddNoise returns value + Lap(scale) noise for each coordinate,
// leaving the input slice untouched.
func AddNoise(values []float64, scale float64, rng *rand.Rand) []float64 {
	d := New(scale)
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v + d.Sample(rng)
	}
	return out
}
