package laplace

import (
	"math"
	"math/rand/v2"
	"testing"

	"pufferfish/internal/floats"
)

func TestNewPanicsOnBadScale(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	d := New(1.5)
	// Trapezoid over [-30, 30].
	var sum float64
	h := 0.001
	for x := -30.0; x <= 30; x += h {
		sum += d.PDF(x) * h
	}
	if !floats.Eq(sum, 1, 1e-3) {
		t.Errorf("PDF integral = %v", sum)
	}
}

func TestCDF(t *testing.T) {
	d := New(2)
	if !floats.Eq(d.CDF(0), 0.5, 1e-12) {
		t.Errorf("CDF(0) = %v", d.CDF(0))
	}
	if !floats.Eq(d.CDF(2)+d.CDF(-2), 1, 1e-12) {
		t.Error("CDF not symmetric")
	}
	if d.CDF(50) < 0.999999 || d.CDF(-50) > 1e-6 {
		t.Error("CDF tails wrong")
	}
}

func TestLogPDFMatchesPDF(t *testing.T) {
	d := New(0.7)
	for _, x := range []float64{-3, -0.5, 0, 1, 10} {
		if !floats.Eq(math.Exp(d.LogPDF(x)), d.PDF(x), 1e-12) {
			t.Errorf("LogPDF mismatch at %v", x)
		}
	}
}

func TestSampleMoments(t *testing.T) {
	d := New(3)
	rng := rand.New(rand.NewPCG(7, 8))
	n := 400000
	var sum, sumAbs, sumSq float64
	for i := 0; i < n; i++ {
		x := d.Sample(rng)
		sum += x
		sumAbs += math.Abs(x)
		sumSq += x * x
	}
	mean := sum / float64(n)
	meanAbs := sumAbs / float64(n)
	variance := sumSq / float64(n)
	if math.Abs(mean) > 0.05 {
		t.Errorf("sample mean = %v, want ≈0", mean)
	}
	if !floats.Eq(meanAbs, d.MeanAbs(), 0.02) {
		t.Errorf("sample E|X| = %v, want %v", meanAbs, d.MeanAbs())
	}
	if math.Abs(variance-d.Variance()) > 0.3 {
		t.Errorf("sample variance = %v, want %v", variance, d.Variance())
	}
}

// TestSampleLikelihoodRatio checks the core DP property of the noise
// source directly: for outputs w, the density ratio
// PDF(w−f1)/PDF(w−f2) is within exp(|f1−f2|/σ).
func TestSampleLikelihoodRatio(t *testing.T) {
	d := New(2)
	f1, f2 := 1.0, 2.5
	bound := math.Exp(math.Abs(f1-f2) / d.Scale)
	for _, w := range floats.Linspace(-10, 10, 101) {
		ratio := d.PDF(w-f1) / d.PDF(w-f2)
		if ratio > bound+1e-9 || 1/ratio > bound+1e-9 {
			t.Fatalf("likelihood ratio %v at w=%v exceeds bound %v", ratio, w, bound)
		}
	}
}

func TestAddNoise(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	in := []float64{1, 2, 3}
	out := AddNoise(in, 0.5, rng)
	if len(out) != 3 {
		t.Fatal("wrong length")
	}
	if !floats.EqSlices(in, []float64{1, 2, 3}, 0) {
		t.Error("input mutated")
	}
	same := true
	for i := range in {
		if in[i] != out[i] {
			same = false
		}
	}
	if same {
		t.Error("no noise added")
	}
}

func TestSampleDeterministicWithSeed(t *testing.T) {
	a := New(1).SampleVec(5, rand.New(rand.NewPCG(1, 2)))
	b := New(1).SampleVec(5, rand.New(rand.NewPCG(1, 2)))
	if !floats.EqSlices(a, b, 0) {
		t.Error("same seed should give identical samples")
	}
}
