package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	auto := runtime.GOMAXPROCS(0)
	if got := New(0).Workers(); got != auto {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, auto)
	}
	if got := New(-3).Workers(); got != auto {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, auto)
	}
	if got := New(1).Workers(); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	if got := New(7).Workers(); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
	if got := (Pool{}).Workers(); got != auto {
		t.Errorf("zero-value Workers = %d, want GOMAXPROCS", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 0} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			counts := make([]int32, n)
			New(workers).ForEach(n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForChunksPartitions(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 3, 17, 64, 1001} {
			nc := p.ChunkCount(n)
			if n == 0 {
				if nc != 0 {
					t.Fatalf("ChunkCount(0) = %d", nc)
				}
				continue
			}
			if nc < 1 || nc > n {
				t.Fatalf("workers=%d: ChunkCount(%d) = %d outside [1,%d]", workers, n, nc, n)
			}
			covered := make([]int32, n)
			var seenChunks atomic.Int32
			p.ForChunks(n, func(chunk, start, end int) {
				seenChunks.Add(1)
				if chunk < 0 || chunk >= nc {
					t.Errorf("chunk index %d outside [0,%d)", chunk, nc)
				}
				if start >= end {
					t.Errorf("empty chunk %d: [%d,%d)", chunk, start, end)
				}
				for i := start; i < end; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			if int(seenChunks.Load()) != nc {
				t.Fatalf("workers=%d n=%d: %d chunks ran, ChunkCount says %d", workers, n, seenChunks.Load(), nc)
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestSplitBoundsTotalWorkers(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		for _, outerN := range []int{1, 2, 3, 8, 100} {
			outer, inner := New(w).Split(outerN)
			if outer.Workers() > w {
				t.Errorf("w=%d outerN=%d: outer %d > budget", w, outerN, outer.Workers())
			}
			if got := outer.Workers() * inner.Workers(); got > w {
				t.Errorf("w=%d outerN=%d: outer×inner = %d exceeds budget", w, outerN, got)
			}
			if inner.Workers() < 1 || outer.Workers() < 1 {
				t.Errorf("w=%d outerN=%d: degenerate pools %d/%d", w, outerN, outer.Workers(), inner.Workers())
			}
		}
	}
	// Singleton outer loop hands the whole budget to the inner pool.
	outer, inner := New(8).Split(1)
	if outer.Workers() != 1 || inner.Workers() != 8 {
		t.Errorf("Split(1) = %d/%d, want 1/8", outer.Workers(), inner.Workers())
	}
}

func TestReduceChunksMatchesSerial(t *testing.T) {
	n := 300
	vals := make([]int, n)
	for i := range vals {
		vals[i] = (i * 131) % 97
	}
	serialBest, serialIdx := -1, -1
	for i, v := range vals {
		if v > serialBest {
			serialBest, serialIdx = v, i
		}
	}
	type best struct{ v, idx int }
	for _, w := range []int{1, 2, 8, 0} {
		got := ReduceChunks(New(w), n, best{v: -1, idx: -1},
			func(start, end int) best {
				b := best{v: -1, idx: -1}
				for i := start; i < end; i++ {
					if vals[i] > b.v {
						b = best{v: vals[i], idx: i}
					}
				}
				return b
			},
			func(acc, v best) best {
				if v.v > acc.v {
					return v
				}
				return acc
			})
		if got.v != serialBest || got.idx != serialIdx {
			t.Errorf("w=%d: ReduceChunks (%d,%d) != serial (%d,%d)", w, got.v, got.idx, serialBest, serialIdx)
		}
	}
	if got := ReduceChunks(New(4), 0, 42, func(int, int) int { return 0 }, func(a, b int) int { return a + b }); got != 42 {
		t.Errorf("empty ReduceChunks = %d, want zero value 42", got)
	}
}

// TestForChunksOrderedMergeMatchesSerial checks the engine's core
// determinism argument: a chunk-local first-max merged in chunk order
// equals the serial first-max.
func TestForChunksOrderedMergeMatchesSerial(t *testing.T) {
	n := 500
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64((i * 7919) % 101) // repeated maxima on purpose
	}
	serialBest, serialIdx := -1.0, -1
	for i, v := range vals {
		if v > serialBest {
			serialBest, serialIdx = v, i
		}
	}
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		type best struct {
			v   float64
			idx int
		}
		bests := make([]best, p.ChunkCount(n))
		p.ForChunks(n, func(chunk, start, end int) {
			b := best{v: -1, idx: -1}
			for i := start; i < end; i++ {
				if vals[i] > b.v {
					b = best{v: vals[i], idx: i}
				}
			}
			bests[chunk] = b
		})
		mergedBest, mergedIdx := -1.0, -1
		for _, b := range bests {
			if b.v > mergedBest {
				mergedBest, mergedIdx = b.v, b.idx
			}
		}
		if mergedBest != serialBest || mergedIdx != serialIdx {
			t.Errorf("workers=%d: merged (%v,%d) != serial (%v,%d)", workers, mergedBest, mergedIdx, serialBest, serialIdx)
		}
	}
}
