// Package sched is the shared worker pool of the scoring engine. It
// fans index loops across a bounded number of goroutines while keeping
// every reduction deterministic: work is split into contiguous chunks,
// each chunk produces a slot-indexed partial result, and callers merge
// the slots in chunk order. Because the engine only performs max-style
// reductions (never floating-point sums across chunks), the merged
// result is bit-for-bit identical to the serial loop at every
// parallelism level.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// chunksPerWorker oversubscribes the chunk count so that uneven chunk
// costs (e.g. quilt sweeps near the chain boundary are cheaper than
// interior ones) still balance across workers.
const chunksPerWorker = 8

// Pool bounds the number of concurrent workers. The zero value uses
// every CPU; Pool{}.With(1) (or New(1)) runs loops inline with no
// goroutines at all.
type Pool struct {
	workers int
}

// New returns a pool with the given parallelism: n ≤ 0 means every
// available CPU (GOMAXPROCS, which respects cgroup/env constraints),
// 1 means strictly serial (loops run inline on the caller's
// goroutine), n > 1 bounds the worker count to n.
func New(parallelism int) Pool {
	return Pool{workers: parallelism}
}

// Workers returns the effective worker bound.
func (p Pool) Workers() int {
	if p.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.workers
}

// ForEach invokes fn(i) for every i in [0, n), distributing indices
// across at most Workers() goroutines, and returns when every call has
// completed. fn must not panic across goroutines with shared state;
// indices are claimed atomically so each runs exactly once.
func (p Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ChunkCount returns how many contiguous chunks ForChunks will split n
// items into. Callers size their slot arrays with it.
func (p Pool) ChunkCount(n int) int {
	if n <= 0 {
		return 0
	}
	w := p.Workers()
	if w <= 1 {
		return 1
	}
	nc := w * chunksPerWorker
	if nc > n {
		nc = n
	}
	return nc
}

// ForChunks partitions [0, n) into ChunkCount(n) contiguous chunks and
// invokes fn(chunk, start, end) for each, concurrently on at most
// Workers() goroutines. Chunk c covers a half-open index range; chunks
// are disjoint, ordered, and cover [0, n) exactly, so a slot array
// indexed by chunk and merged in increasing chunk order yields the same
// reduction the serial loop would.
func (p Pool) ForChunks(n int, fn func(chunk, start, end int)) {
	nc := p.ChunkCount(n)
	if nc == 0 {
		return
	}
	if nc == 1 {
		fn(0, 0, n)
		return
	}
	// Balanced partition: the first rem chunks get size+1 items.
	size, rem := n/nc, n%nc
	p.ForEach(nc, func(c int) {
		start := c*size + min(c, rem)
		end := start + size
		if c < rem {
			end++
		}
		fn(c, start, end)
	})
}

// ReduceChunks partitions [0, n) exactly like Pool.ForChunks, computes
// one value per chunk with fn (run concurrently), and folds the chunk
// values in increasing chunk order with merge, starting from zero.
// With a first-wins merge (strict inequality) over contiguous ordered
// chunks this reproduces the serial loop's reduction bit-for-bit at
// every parallelism level — it is the single implementation of the
// engine's determinism contract.
func ReduceChunks[T any](p Pool, n int, zero T, fn func(start, end int) T, merge func(acc, v T) T) T {
	nc := p.ChunkCount(n)
	if nc == 0 {
		return zero
	}
	slots := make([]T, nc)
	p.ForChunks(n, func(chunk, start, end int) {
		slots[chunk] = fn(start, end)
	})
	acc := zero
	for _, v := range slots {
		acc = merge(acc, v)
	}
	return acc
}

// Split divides this pool's worker budget between an outer loop of
// outerN items and the inner loops each item runs: the outer pool gets
// min(outerN, Workers()) workers and the inner pool the remaining
// budget per outer worker, so nesting outer.ForEach around
// inner.ForChunks keeps total concurrency within Workers().
func (p Pool) Split(outerN int) (outer, inner Pool) {
	w := p.Workers()
	ow := outerN
	if ow > w {
		ow = w
	}
	if ow < 1 {
		ow = 1
	}
	return New(ow), New(w / ow)
}
