// Package flu implements the paper's Example 2 substrate: flu status
// over a social network whose interaction graph G_θ is a union of
// cliques, with a per-clique distribution p_θ over the number of
// infected members (Section 2.2). Within a clique the infected set is
// exchangeable, which yields closed-form conditional distributions of
// the infected count given one person's status — the ingredients the
// Wasserstein Mechanism needs (Section 3.1's worked example).
package flu

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"pufferfish/internal/core"
	"pufferfish/internal/dist"
)

// Clique is one fully-connected component: Size people and a
// distribution over how many of them are infected.
type Clique struct {
	Size int
	// Count is the distribution of N ∈ {0, …, Size}, the number of
	// infected members.
	Count dist.Discrete
}

// FromProbs builds a clique from the probabilities of N = 0..len−1
// infected (so Size = len(probs)−1), e.g. the Section 3.1 example
// [0.1, 0.15, 0.5, 0.15, 0.1] for a 4-clique.
func FromProbs(probs []float64) (Clique, error) {
	if len(probs) < 2 {
		return Clique{}, errors.New("flu: need at least probabilities for N=0 and N=1")
	}
	xs := make([]float64, len(probs))
	for i := range xs {
		xs[i] = float64(i)
	}
	d, err := dist.New(xs, probs)
	if err != nil {
		return Clique{}, err
	}
	return Clique{Size: len(probs) - 1, Count: d}, nil
}

// Exponential builds the Section 2.2 example clique distribution
// P(N = j) ∝ e^{λ·j} for j = 0..size.
func Exponential(size int, lambda float64) (Clique, error) {
	if size < 1 {
		return Clique{}, fmt.Errorf("flu: invalid clique size %d", size)
	}
	probs := make([]float64, size+1)
	var tot float64
	for j := range probs {
		probs[j] = math.Exp(lambda * float64(j))
		tot += probs[j]
	}
	for j := range probs {
		probs[j] /= tot
	}
	return FromProbs(probs)
}

// Model is one θ: a union of cliques.
type Model struct {
	Cliques []Clique
}

// NewModel validates the cliques.
func NewModel(cliques []Clique) (*Model, error) {
	if len(cliques) == 0 {
		return nil, errors.New("flu: no cliques")
	}
	for i, c := range cliques {
		if c.Size < 1 {
			return nil, fmt.Errorf("flu: clique %d has size %d", i, c.Size)
		}
		if c.Count.Len() == 0 || c.Count.Support()[c.Count.Len()-1] > float64(c.Size) {
			return nil, fmt.Errorf("flu: clique %d count distribution exceeds its size", i)
		}
	}
	return &Model{Cliques: cliques}, nil
}

// N returns the total number of people.
func (m *Model) N() int {
	var n int
	for _, c := range m.Cliques {
		n += c.Size
	}
	return n
}

// LargestClique returns the size of the largest clique — the group-DP
// sensitivity scale for the infected-count query.
func (m *Model) LargestClique() int {
	var mx int
	for _, c := range m.Cliques {
		if c.Size > mx {
			mx = c.Size
		}
	}
	return mx
}

// TotalInfectedDist returns the exact distribution of F = Σ_i X_i,
// the convolution of the per-clique counts.
func (m *Model) TotalInfectedDist() dist.Discrete {
	ds := make([]dist.Discrete, len(m.Cliques))
	for i, c := range m.Cliques {
		ds[i] = c.Count
	}
	return dist.ConvolveAll(ds)
}

// memberProb returns P(X = 1) for a member of clique c: E[N]/size, by
// exchangeability.
func memberProb(c Clique) float64 {
	return c.Count.Mean() / float64(c.Size)
}

// ConditionalCountDist returns the distribution of a clique's infected
// count N given that one fixed member has status value ∈ {0, 1}:
// P(N = j | X = 1) ∝ P(N = j)·j/size and
// P(N = j | X = 0) ∝ P(N = j)·(1 − j/size), again by exchangeability.
// It errors when the conditioning status has probability zero.
func ConditionalCountDist(c Clique, value int) (dist.Discrete, error) {
	p1 := memberProb(c)
	var denom float64
	if value == 1 {
		denom = p1
	} else {
		denom = 1 - p1
	}
	if denom <= 0 {
		return dist.Discrete{}, fmt.Errorf("flu: status %d has probability zero in this clique", value)
	}
	size := float64(c.Size)
	xs := make([]float64, 0, c.Count.Len())
	ps := make([]float64, 0, c.Count.Len())
	for i := 0; i < c.Count.Len(); i++ {
		j, pj := c.Count.Atom(i)
		var w float64
		if value == 1 {
			w = j / size
		} else {
			w = 1 - j/size
		}
		if pj*w <= 0 {
			continue
		}
		xs = append(xs, j)
		ps = append(ps, pj*w/denom)
	}
	return dist.New(xs, ps)
}

// ConditionalTotalDist returns the distribution of the total infected
// count F given that one member of clique idx has status value.
func (m *Model) ConditionalTotalDist(idx, value int) (dist.Discrete, error) {
	if idx < 0 || idx >= len(m.Cliques) {
		return dist.Discrete{}, fmt.Errorf("flu: clique index %d out of range", idx)
	}
	cond, err := ConditionalCountDist(m.Cliques[idx], value)
	if err != nil {
		return dist.Discrete{}, err
	}
	others := make([]dist.Discrete, 0, len(m.Cliques))
	others = append(others, cond)
	for i, c := range m.Cliques {
		if i != idx {
			others = append(others, c.Count)
		}
	}
	return dist.ConvolveAll(others), nil
}

// Sample draws one database: per clique, a count N from its
// distribution, then a uniformly random infected subset of that size.
// Records are concatenated clique by clique.
func (m *Model) Sample(rng *rand.Rand) []int {
	out := make([]int, 0, m.N())
	for _, c := range m.Cliques {
		n := int(c.Count.Sample(rng))
		status := make([]int, c.Size)
		for i := 0; i < n; i++ {
			status[i] = 1
		}
		rng.Shuffle(len(status), func(i, j int) { status[i], status[j] = status[j], status[i] })
		out = append(out, status...)
	}
	return out
}

// Instance adapts a class Θ of flu models to the Wasserstein
// Mechanism: the secrets are each person's status, the query is the
// total infected count. By exchangeability only one secret pair per
// clique per model is needed.
type Instance struct {
	Models []*Model
}

// ConditionalPairs implements core.WassersteinInstance.
func (in Instance) ConditionalPairs() ([]core.DistributionPair, error) {
	if len(in.Models) == 0 {
		return nil, errors.New("flu: empty model class")
	}
	var pairs []core.DistributionPair
	for t, m := range in.Models {
		for idx := range m.Cliques {
			mu, err0 := m.ConditionalTotalDist(idx, 0)
			nu, err1 := m.ConditionalTotalDist(idx, 1)
			if err0 != nil || err1 != nil {
				// A status with probability zero has no secret pair
				// (Definition 2.1).
				continue
			}
			pairs = append(pairs, core.DistributionPair{
				Mu:    mu,
				Nu:    nu,
				Label: fmt.Sprintf("clique %d @ θ%d", idx, t+1),
			})
		}
	}
	if len(pairs) == 0 {
		return nil, errors.New("flu: no admissible secret pairs")
	}
	return pairs, nil
}
