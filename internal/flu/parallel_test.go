package flu

import (
	"testing"

	"pufferfish/internal/core"
)

// TestWassersteinScaleParallelGolden pins the engine's determinism
// promise on the flu substrate: the Algorithm 1 scale and worst pair
// are identical at every parallelism level.
func TestWassersteinScaleParallelGolden(t *testing.T) {
	clique, err := FromProbs([]float64{0.1, 0.15, 0.5, 0.15, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewModel([]Clique{clique, clique, clique})
	if err != nil {
		t.Fatal(err)
	}
	inst := Instance{Models: []*Model{model}}
	wSerial, worstSerial, err := core.WassersteinScaleOpt(inst, core.WassersteinOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if wSerial != 2 {
		t.Errorf("serial W = %v, want the Section 3.1 value 2", wSerial)
	}
	for _, par := range []int{4, 0} {
		w, worst, err := core.WassersteinScaleOpt(inst, core.WassersteinOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if w != wSerial || worst.Label != worstSerial.Label {
			t.Errorf("par=%d: (W=%v, worst=%q) != serial (W=%v, worst=%q)",
				par, w, worst.Label, wSerial, worstSerial.Label)
		}
	}
}
