package flu

import (
	"math"
	"math/rand/v2"
	"testing"

	"pufferfish/internal/core"
	"pufferfish/internal/floats"
)

// section31Clique is the paper's Section 3.1 worked example: a
// 4-clique with P(N = j) = [0.1, 0.15, 0.5, 0.15, 0.1].
func section31Clique(t *testing.T) Clique {
	t.Helper()
	c, err := FromProbs([]float64{0.1, 0.15, 0.5, 0.15, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSection31Conditionals reproduces the paper's printed conditional
// distributions: P(N|X_i=0) = [0.2, 0.225, 0.5, 0.075, 0] and
// P(N|X_i=1) = [0, 0.075, 0.5, 0.225, 0.2].
func TestSection31Conditionals(t *testing.T) {
	c := section31Clique(t)
	d0, err := ConditionalCountDist(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	want0 := map[float64]float64{0: 0.2, 1: 0.225, 2: 0.5, 3: 0.075}
	for j, p := range want0 {
		if !floats.Eq(d0.Prob(j), p, 1e-9) {
			t.Errorf("P(N=%v|X=0) = %v, want %v", j, d0.Prob(j), p)
		}
	}
	if d0.Prob(4) != 0 {
		t.Error("P(N=4|X=0) should be 0")
	}
	d1, err := ConditionalCountDist(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	want1 := map[float64]float64{1: 0.075, 2: 0.5, 3: 0.225, 4: 0.2}
	for j, p := range want1 {
		if !floats.Eq(d1.Prob(j), p, 1e-9) {
			t.Errorf("P(N=%v|X=1) = %v, want %v", j, d1.Prob(j), p)
		}
	}
	if d1.Prob(0) != 0 {
		t.Error("P(N=0|X=1) should be 0")
	}
}

// TestSection31WassersteinScale reproduces the headline of the worked
// example: W = 2, so the Wasserstein Mechanism adds Lap(2/ε) while
// GroupDP adds Lap(4/ε).
func TestSection31WassersteinScale(t *testing.T) {
	m, err := NewModel([]Clique{section31Clique(t)})
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := core.WassersteinScale(Instance{Models: []*Model{m}})
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(w, 2, 1e-9) {
		t.Errorf("W = %v, want 2", w)
	}
	if m.LargestClique() != 4 {
		t.Errorf("group sensitivity = %d, want 4", m.LargestClique())
	}
}

func TestExponentialClique(t *testing.T) {
	// The Section 2.2 example: P(N=j) ∝ e^{2j} on a clique.
	c, err := Exponential(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Ratio of consecutive masses must be e².
	for j := 0; j < 3; j++ {
		r := c.Count.Prob(float64(j+1)) / c.Count.Prob(float64(j))
		if !floats.Eq(r, math.Exp(2), 1e-9) {
			t.Errorf("mass ratio at %d = %v, want e²", j, r)
		}
	}
	if _, err := Exponential(0, 1); err == nil {
		t.Error("size-0 clique accepted")
	}
}

func TestTotalInfectedDist(t *testing.T) {
	c := section31Clique(t)
	m, err := NewModel([]Clique{c, c})
	if err != nil {
		t.Fatal(err)
	}
	total := m.TotalInfectedDist()
	if !floats.Eq(total.Mean(), 4, 1e-9) { // 2 cliques × mean 2
		t.Errorf("mean total = %v, want 4", total.Mean())
	}
	if total.Support()[0] != 0 || total.Support()[total.Len()-1] != 8 {
		t.Errorf("support = %v", total.Support())
	}
	if m.N() != 8 {
		t.Errorf("N = %d", m.N())
	}
}

// TestConditionalMixture: mixing the conditionals with the member
// marginal recovers the unconditional count (Bayes consistency).
func TestConditionalMixture(t *testing.T) {
	c := section31Clique(t)
	p1 := c.Count.Mean() / 4
	d0, _ := ConditionalCountDist(c, 0)
	d1, _ := ConditionalCountDist(c, 1)
	for j := 0.0; j <= 4; j++ {
		mix := (1-p1)*d0.Prob(j) + p1*d1.Prob(j)
		if !floats.Eq(mix, c.Count.Prob(j), 1e-9) {
			t.Errorf("mixture at %v = %v, want %v", j, mix, c.Count.Prob(j))
		}
	}
}

func TestSampleMatchesModel(t *testing.T) {
	c := section31Clique(t)
	m, _ := NewModel([]Clique{c, c, c})
	rng := rand.New(rand.NewPCG(21, 22))
	trials := 60000
	var sum float64
	for i := 0; i < trials; i++ {
		data := m.Sample(rng)
		if len(data) != 12 {
			t.Fatalf("sample length %d", len(data))
		}
		for _, x := range data {
			sum += float64(x)
		}
	}
	mean := sum / float64(trials)
	if math.Abs(mean-6) > 0.05 { // 3 cliques × mean 2
		t.Errorf("empirical mean infected = %v, want 6", mean)
	}
}

func TestDeterministicStatusSkipped(t *testing.T) {
	// Everyone always infected: X=0 has probability zero, so there is
	// no admissible secret pair and the instance must say so.
	all, err := FromProbs([]float64{0, 0, 1}) // N=2 surely on a 2-clique
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel([]Clique{all})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Instance{Models: []*Model{m}}).ConditionalPairs(); err == nil {
		t.Error("expected no-admissible-pairs error")
	}
}

func TestWassersteinBeatsGroupDPOnFluExample(t *testing.T) {
	// Theorem 3.3 instantiated: W ≤ largest-clique sensitivity, with
	// strict advantage in the worked example (2 < 4).
	m, _ := NewModel([]Clique{section31Clique(t)})
	w, _, err := core.WassersteinScale(Instance{Models: []*Model{m}})
	if err != nil {
		t.Fatal(err)
	}
	if w >= float64(m.LargestClique()) {
		t.Errorf("W = %v not better than group sensitivity %d", w, m.LargestClique())
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(nil); err == nil {
		t.Error("empty model accepted")
	}
	bad := Clique{Size: 1, Count: section31Clique(t).Count} // support up to 4 > size 1
	if _, err := NewModel([]Clique{bad}); err == nil {
		t.Error("count distribution exceeding clique size accepted")
	}
	if _, err := FromProbs([]float64{1}); err == nil {
		t.Error("single-probability clique accepted")
	}
}
