// Package dist implements finitely-supported probability distributions
// on ℝ and the two divergences the paper's mechanisms are built from:
// the ∞-Wasserstein distance W∞ (Definition 3.1, the noise parameter of
// the Wasserstein Mechanism) and the max-divergence D∞ (Definition 2.3,
// the currency of the Pufferfish guarantee itself).
//
// Distributions are stored sorted by support point with strictly
// positive masses, so W∞ admits the O(n) quantile-coupling computation
// and D∞ a single merge pass.
package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"pufferfish/internal/floats"
)

// cumTol is the tolerance used when comparing cumulative masses: two
// CDF levels closer than this are treated as the same quantile
// breakpoint (roundoff from summing masses).
const cumTol = 1e-12

// Discrete is a finitely-supported distribution on ℝ: support points in
// strictly increasing order, each with positive mass, masses summing to
// one. The zero value is the empty distribution (Len() == 0).
type Discrete struct {
	xs, ps []float64
}

// New builds a distribution from support points and masses. Points may
// arrive in any order; duplicates are merged and zero-mass atoms
// dropped. The masses must be non-negative and sum to 1 within 1e-6
// (they are renormalized exactly).
func New(xs, ps []float64) (Discrete, error) {
	if len(xs) != len(ps) {
		return Discrete{}, fmt.Errorf("dist: %d support points but %d masses", len(xs), len(ps))
	}
	if len(xs) == 0 {
		return Discrete{}, errors.New("dist: empty distribution")
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	outX := make([]float64, 0, len(xs))
	outP := make([]float64, 0, len(ps))
	var total float64
	for _, i := range idx {
		x, p := xs[i], ps[i]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Discrete{}, fmt.Errorf("dist: invalid support point %v", x)
		}
		if p < 0 || math.IsNaN(p) {
			return Discrete{}, fmt.Errorf("dist: invalid mass %v at %v", p, x)
		}
		//privlint:allow floatcompare exact-zero mass is dropped from the support
		if p == 0 {
			continue
		}
		total += p
		//privlint:allow floatcompare atoms merge only on bit-identical support points
		if n := len(outX); n > 0 && outX[n-1] == x {
			outP[n-1] += p
		} else {
			outX = append(outX, x)
			outP = append(outP, p)
		}
	}
	if len(outX) == 0 {
		return Discrete{}, errors.New("dist: all masses are zero")
	}
	if math.Abs(total-1) > 1e-6 {
		return Discrete{}, fmt.Errorf("dist: masses sum to %v, want 1", total)
	}
	for i := range outP {
		outP[i] /= total
	}
	return Discrete{xs: outX, ps: outP}, nil
}

// FromSorted builds a distribution from support points that are
// already strictly increasing, each with positive mass summing to 1
// within 1e-6. It performs the same validation and renormalization as
// New (bit-identically: the mass total accumulates in the same
// support order) but skips the sort and merge, and it takes ownership
// of xs and ps without copying — callers on the hot path (the
// count-distribution dynamic programs) must not modify them after.
func FromSorted(xs, ps []float64) (Discrete, error) {
	if len(xs) != len(ps) {
		return Discrete{}, fmt.Errorf("dist: %d support points but %d masses", len(xs), len(ps))
	}
	if len(xs) == 0 {
		return Discrete{}, errors.New("dist: empty distribution")
	}
	var total float64
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Discrete{}, fmt.Errorf("dist: invalid support point %v", x)
		}
		if i > 0 && xs[i-1] >= x {
			return Discrete{}, fmt.Errorf("dist: support not strictly increasing at %v", x)
		}
		p := ps[i]
		if !(p > 0) || math.IsNaN(p) {
			return Discrete{}, fmt.Errorf("dist: invalid mass %v at %v", p, x)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-6 {
		return Discrete{}, fmt.Errorf("dist: masses sum to %v, want 1", total)
	}
	for i := range ps {
		ps[i] /= total
	}
	return Discrete{xs: xs, ps: ps}, nil
}

// MustNew is New that panics on error, for tests and fixtures.
func MustNew(xs, ps []float64) Discrete {
	d, err := New(xs, ps)
	if err != nil {
		panic(err)
	}
	return d
}

// PointMass returns the distribution concentrated at x.
func PointMass(x float64) Discrete {
	return Discrete{xs: []float64{x}, ps: []float64{1}}
}

// Len returns the number of atoms.
func (d Discrete) Len() int { return len(d.xs) }

// Support returns the support points in increasing order (a copy).
func (d Discrete) Support() []float64 {
	out := make([]float64, len(d.xs))
	copy(out, d.xs)
	return out
}

// Masses returns the atom masses aligned with Support (a copy).
func (d Discrete) Masses() []float64 {
	out := make([]float64, len(d.ps))
	copy(out, d.ps)
	return out
}

// Atom returns the i-th atom (in support order) and its mass.
func (d Discrete) Atom(i int) (x, p float64) { return d.xs[i], d.ps[i] }

// Prob returns the mass at x (zero when x is not an atom).
func (d Discrete) Prob(x float64) float64 {
	i := sort.SearchFloat64s(d.xs, x)
	//privlint:allow floatcompare atom lookup is bit-exact by construction
	if i < len(d.xs) && d.xs[i] == x {
		return d.ps[i]
	}
	return 0
}

// Mean returns E[X].
func (d Discrete) Mean() float64 {
	var s float64
	for i, x := range d.xs {
		s += x * d.ps[i]
	}
	return s
}

// Sample draws one value by inverse-CDF sampling.
func (d Discrete) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	var cum float64
	for i, p := range d.ps {
		cum += p
		if u < cum {
			return d.xs[i]
		}
	}
	return d.xs[len(d.xs)-1]
}

// sortPairs co-sorts a support/mass pair by support point. It is used
// with sort.Stable so that contributions to a duplicate support point
// keep their generation order, which keeps Convolve's duplicate
// accumulation order (and hence its bits) identical to the previous
// insertion-ordered implementation.
type sortPairs struct{ xs, ps []float64 }

func (s sortPairs) Len() int           { return len(s.xs) }
func (s sortPairs) Less(i, j int) bool { return s.xs[i] < s.xs[j] }
func (s sortPairs) Swap(i, j int) {
	s.xs[i], s.xs[j] = s.xs[j], s.xs[i]
	s.ps[i], s.ps[j] = s.ps[j], s.ps[i]
}

// Convolve returns the distribution of X + Y for independent X ~ d,
// Y ~ e. The pairwise sums are generated into pooled buffers, stably
// sorted, and merged, so the only retained allocation is the result.
func Convolve(d, e Discrete) Discrete {
	if d.Len() == 0 {
		return e
	}
	if e.Len() == 0 {
		return d
	}
	n := d.Len() * e.Len()
	sx := floats.GetBuffer(n)
	sp := floats.GetBuffer(n)
	idx := 0
	for i, x := range d.xs {
		for j, y := range e.xs {
			sx[idx] = x + y
			sp[idx] = d.ps[i] * e.ps[j]
			idx++
		}
	}
	sort.Stable(sortPairs{xs: sx, ps: sp})
	distinct := 1
	for i := 1; i < n; i++ {
		//privlint:allow floatcompare dedup of sorted support points is bit-exact by design
		if sx[i] != sx[i-1] {
			distinct++
		}
	}
	buf := make([]float64, 2*distinct)
	xs, ps := buf[:distinct:distinct], buf[distinct:]
	oi := 0
	xs[0], ps[0] = sx[0], sp[0]
	for i := 1; i < n; i++ {
		//privlint:allow floatcompare dedup of sorted support points is bit-exact by design
		if sx[i] != xs[oi] {
			oi++
			xs[oi] = sx[i]
			ps[oi] = 0
		}
		ps[oi] += sp[i]
	}
	floats.PutBuffer(sx)
	floats.PutBuffer(sp)
	return Discrete{xs: xs, ps: ps}
}

// ConvolveAll returns the distribution of the sum of independent draws
// from each distribution. The empty list yields the empty distribution.
func ConvolveAll(ds []Discrete) Discrete {
	var out Discrete
	for _, d := range ds {
		out = Convolve(out, d)
	}
	return out
}

// WassersteinInf returns the ∞-Wasserstein distance W∞(µ, ν)
// (Definition 3.1): the smallest d such that some coupling moves every
// unit of mass by at most d. On ℝ the optimal coupling is the quantile
// (monotone) coupling, so W∞ = max over common CDF levels of the
// distance between the two quantile functions — an O(n) merge over the
// sorted supports.
func WassersteinInf(mu, nu Discrete) float64 {
	if mu.Len() == 0 || nu.Len() == 0 {
		return math.NaN()
	}
	var w, cmu, cnu float64
	i, j := 0, 0
	for i < mu.Len() && j < nu.Len() {
		if d := math.Abs(mu.xs[i] - nu.xs[j]); d > w {
			w = d
		}
		a, b := cmu+mu.ps[i], cnu+nu.ps[j]
		switch {
		case math.Abs(a-b) <= cumTol:
			cmu, cnu = a, b
			i++
			j++
		case a < b:
			cmu = a
			i++
		default:
			cnu = b
			j++
		}
	}
	return w
}

// Wasserstein1 returns the 1-Wasserstein (Kantorovich) distance
// W₁(µ, ν) = inf over couplings of E|X − Y|. On ℝ it equals the L1
// distance between the CDFs, ∫|F_µ(x) − F_ν(x)| dx, so one merge over
// the two sorted supports computes it exactly in O(n): between
// consecutive support points the CDF gap is constant and contributes
// |F_µ − F_ν| times the gap width.
//
// W₁ ≤ W∞ always; the Kantorovich mechanism reports both, and the
// ratio quantifies how conservative the ∞-Wasserstein calibration of
// Algorithm 1 is on a given instantiation (Ding, "Kantorovich
// Mechanism for Pufferfish Privacy").
func Wasserstein1(mu, nu Discrete) float64 {
	if mu.Len() == 0 || nu.Len() == 0 {
		return math.NaN()
	}
	var w, cmu, cnu, prev float64
	i, j := 0, 0
	started := false
	for i < mu.Len() || j < nu.Len() {
		var x float64
		switch {
		case i >= mu.Len():
			x = nu.xs[j]
		case j >= nu.Len():
			x = mu.xs[i]
		default:
			x = math.Min(mu.xs[i], nu.xs[j])
		}
		if started {
			w += math.Abs(cmu-cnu) * (x - prev)
		}
		//privlint:allow floatcompare merged-sweep atom match is bit-exact by construction
		for i < mu.Len() && mu.xs[i] == x {
			cmu += mu.ps[i]
			i++
		}
		//privlint:allow floatcompare merged-sweep atom match is bit-exact by construction
		for j < nu.Len() && nu.xs[j] == x {
			cnu += nu.ps[j]
			j++
		}
		prev = x
		started = true
	}
	return w
}

// WassersteinInfFlow computes W∞ by the definition instead of the
// quantile coupling: binary search over candidate distances with a
// transportation-feasibility check. Kept as the ablation baseline for
// the quantile computation (they agree on every input; the flow check
// is O(n² log n)).
func WassersteinInfFlow(mu, nu Discrete) float64 {
	if mu.Len() == 0 || nu.Len() == 0 {
		return math.NaN()
	}
	// Candidate distances: every |x_i − y_j| (pooled scratch).
	cands := floats.GetBuffer(mu.Len() * nu.Len())
	idx := 0
	for _, x := range mu.xs {
		for _, y := range nu.xs {
			cands[idx] = math.Abs(x - y)
			idx++
		}
	}
	sort.Float64s(cands)
	lo, hi := 0, len(cands)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if flowFeasible(mu, nu, cands[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	w := cands[lo]
	floats.PutBuffer(cands)
	return w
}

// flowFeasible reports whether a coupling of µ and ν exists that moves
// every unit of mass a distance at most d. With both supports sorted,
// each µ-atom's admissible ν-atoms form a contiguous window that only
// moves right, so the greedy left-to-right assignment is exact.
func flowFeasible(mu, nu Discrete, d float64) bool {
	const slack = 1e-12
	remaining := floats.GetBuffer(nu.Len())
	defer floats.PutBuffer(remaining)
	copy(remaining, nu.ps)
	j := 0
	for i, x := range mu.xs {
		need := mu.ps[i]
		for need > slack {
			for j < nu.Len() && (remaining[j] <= slack || nu.xs[j] < x-d-slack) {
				j++
			}
			if j >= nu.Len() || nu.xs[j] > x+d+slack {
				return false
			}
			moved := math.Min(need, remaining[j])
			need -= moved
			remaining[j] -= moved
		}
	}
	return true
}

// MaxDivergence returns D∞(p‖q) = max over the support of p of
// log p(x)/q(x) (Definition 2.3); +Inf when p puts mass where q has
// none.
func MaxDivergence(p, q Discrete) float64 {
	best := math.Inf(-1)
	j := 0
	for i, x := range p.xs {
		for j < q.Len() && q.xs[j] < x {
			j++
		}
		//privlint:allow floatcompare support mismatch is bit-exact; any q-gap makes the divergence infinite
		if j >= q.Len() || q.xs[j] != x {
			return math.Inf(1)
		}
		if r := math.Log(p.ps[i] / q.ps[j]); r > best {
			best = r
		}
	}
	return best
}

// SymMaxDivergence returns max(D∞(p‖q), D∞(q‖p)), the symmetrized
// divergence Theorem 2.4's robustness bound is stated in.
func SymMaxDivergence(p, q Discrete) float64 {
	return math.Max(MaxDivergence(p, q), MaxDivergence(q, p))
}
