package dist

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNewValidatesAndNormalizes(t *testing.T) {
	// Unsorted input with a duplicate and a zero atom.
	d, err := New([]float64{3, 1, 2, 1, 4}, []float64{0.25, 0.2, 0.25, 0.3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (merged duplicate, dropped zero)", d.Len())
	}
	wantX := []float64{1, 2, 3}
	wantP := []float64{0.5, 0.25, 0.25}
	for i := 0; i < d.Len(); i++ {
		x, p := d.Atom(i)
		if x != wantX[i] || math.Abs(p-wantP[i]) > 1e-12 {
			t.Errorf("atom %d = (%v,%v), want (%v,%v)", i, x, p, wantX[i], wantP[i])
		}
	}
	if d.Prob(2) != 0.25 || d.Prob(5) != 0 {
		t.Errorf("Prob lookup wrong: %v %v", d.Prob(2), d.Prob(5))
	}

	for name, args := range map[string][2][]float64{
		"length mismatch": {{1, 2}, {1}},
		"empty":           {{}, {}},
		"negative mass":   {{1, 2}, {1.5, -0.5}},
		"bad sum":         {{1, 2}, {0.5, 0.1}},
		"all zero":        {{1, 2}, {0, 0}},
		"NaN point":       {{math.NaN(), 2}, {0.5, 0.5}},
	} {
		if _, err := New(args[0], args[1]); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPointMassAndMeanAndSample(t *testing.T) {
	p := PointMass(3.5)
	if p.Len() != 1 || p.Mean() != 3.5 {
		t.Fatalf("PointMass: Len=%d Mean=%v", p.Len(), p.Mean())
	}
	d := MustNew([]float64{0, 10}, []float64{0.25, 0.75})
	if d.Mean() != 7.5 {
		t.Errorf("Mean = %v", d.Mean())
	}
	rng := rand.New(rand.NewPCG(1, 2))
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	if math.Abs(sum/float64(n)-7.5) > 0.2 {
		t.Errorf("sample mean %v far from 7.5", sum/float64(n))
	}
}

func TestConvolveAll(t *testing.T) {
	d := MustNew([]float64{0, 1}, []float64{0.5, 0.5})
	tot := ConvolveAll([]Discrete{d, d, d})
	if tot.Len() != 4 {
		t.Fatalf("support size %d, want 4", tot.Len())
	}
	// Binomial(3, 1/2).
	wantP := []float64{0.125, 0.375, 0.375, 0.125}
	for i := 0; i < 4; i++ {
		x, p := tot.Atom(i)
		if x != float64(i) || math.Abs(p-wantP[i]) > 1e-12 {
			t.Errorf("atom %d = (%v,%v), want (%d,%v)", i, x, p, i, wantP[i])
		}
	}
	if math.Abs(tot.Mean()-1.5) > 1e-12 {
		t.Errorf("Mean = %v", tot.Mean())
	}
	if empty := ConvolveAll(nil); empty.Len() != 0 {
		t.Errorf("empty convolution has %d atoms", empty.Len())
	}
}

func TestWassersteinInfFluExample(t *testing.T) {
	// Section 3.1 worked example: W∞ = 2.
	mu := MustNew([]float64{0, 1, 2, 3}, []float64{0.2, 0.225, 0.5, 0.075})
	nu := MustNew([]float64{1, 2, 3, 4}, []float64{0.075, 0.5, 0.225, 0.2})
	if w := WassersteinInf(mu, nu); w != 2 {
		t.Errorf("W∞ = %v, want 2", w)
	}
	if w := WassersteinInfFlow(mu, nu); w != 2 {
		t.Errorf("flow W∞ = %v, want 2", w)
	}
	// Symmetry and identity.
	if WassersteinInf(nu, mu) != 2 {
		t.Error("W∞ not symmetric")
	}
	if WassersteinInf(mu, mu) != 0 {
		t.Error("W∞(µ,µ) != 0")
	}
}

// TestWassersteinQuantileMatchesFlow cross-validates the O(n) quantile
// computation against the definitional feasibility search on random
// pairs.
func TestWassersteinQuantileMatchesFlow(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 200; trial++ {
		mk := func(n int) Discrete {
			xs := make([]float64, n)
			ps := make([]float64, n)
			var tot float64
			for i := range xs {
				xs[i] = math.Round(rng.Float64()*20) / 2
				ps[i] = rng.Float64() + 0.05
				tot += ps[i]
			}
			for i := range ps {
				ps[i] /= tot
			}
			return MustNew(xs, ps)
		}
		mu := mk(2 + rng.IntN(8))
		nu := mk(2 + rng.IntN(8))
		q := WassersteinInf(mu, nu)
		f := WassersteinInfFlow(mu, nu)
		if math.Abs(q-f) > 1e-9 {
			t.Fatalf("trial %d: quantile %v != flow %v (mu=%v/%v nu=%v/%v)",
				trial, q, f, mu.Support(), mu.Masses(), nu.Support(), nu.Masses())
		}
	}
}

func TestMaxDivergence(t *testing.T) {
	// The Definition 2.3 worked example: D∞ = log 2.
	p := MustNew([]float64{1, 2, 3}, []float64{1.0 / 3, 0.5, 1.0 / 6})
	q := MustNew([]float64{1, 2, 3}, []float64{0.5, 0.25, 0.25})
	if got := MaxDivergence(p, q); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Errorf("D∞ = %v, want log 2", got)
	}
	if got := MaxDivergence(p, p); got != 0 {
		t.Errorf("D∞(p‖p) = %v", got)
	}
	// Mass outside q's support → +Inf.
	wide := MustNew([]float64{1, 4}, []float64{0.5, 0.5})
	if !math.IsInf(MaxDivergence(wide, q), 1) {
		t.Error("missing support should give +Inf")
	}
	// Symmetrized version takes the max of both directions.
	s := SymMaxDivergence(p, q)
	if s != math.Max(MaxDivergence(p, q), MaxDivergence(q, p)) {
		t.Errorf("SymMaxDivergence = %v", s)
	}
}

// wasserstein1Greedy computes W₁ exactly via the quantile coupling:
// with both supports sorted, the optimal transport on ℝ pairs mass
// monotonically, so a two-pointer greedy matching yields E|X − Y|.
func wasserstein1Greedy(mu, nu Discrete) float64 {
	i, j := 0, 0
	remMu, remNu := mu.ps[0], nu.ps[0]
	var w float64
	for {
		moved := math.Min(remMu, remNu)
		w += moved * math.Abs(mu.xs[i]-nu.xs[j])
		remMu -= moved
		remNu -= moved
		if remMu <= 1e-15 {
			i++
			if i >= mu.Len() {
				return w
			}
			remMu = mu.ps[i]
		}
		if remNu <= 1e-15 {
			j++
			if j >= nu.Len() {
				return w
			}
			remNu = nu.ps[j]
		}
	}
}

func TestWasserstein1MatchesGreedyCoupling(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 200; trial++ {
		mk := func() Discrete {
			n := 1 + rng.IntN(6)
			xs := make([]float64, n)
			ps := make([]float64, n)
			var tot float64
			for i := range xs {
				xs[i] = float64(rng.IntN(12)) - 3
				ps[i] = rng.Float64() + 0.01
				tot += ps[i]
			}
			for i := range ps {
				ps[i] /= tot
			}
			return MustNew(xs, ps)
		}
		mu, nu := mk(), mk()
		got := Wasserstein1(mu, nu)
		want := wasserstein1Greedy(mu, nu)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Wasserstein1 = %v, greedy coupling = %v", trial, got, want)
		}
		if winf := WassersteinInf(mu, nu); got > winf+1e-9 {
			t.Fatalf("trial %d: W1 = %v > W∞ = %v", trial, got, winf)
		}
		if sym := Wasserstein1(nu, mu); math.Abs(got-sym) > 1e-12 {
			t.Fatalf("trial %d: asymmetric W1: %v vs %v", trial, got, sym)
		}
	}
}

func TestWasserstein1Basics(t *testing.T) {
	if w := Wasserstein1(PointMass(2), PointMass(5)); w != 3 {
		t.Errorf("point masses: W1 = %v, want 3", w)
	}
	d := MustNew([]float64{0, 1}, []float64{0.5, 0.5})
	if w := Wasserstein1(d, d); w != 0 {
		t.Errorf("identical: W1 = %v, want 0", w)
	}
	// (1−p)δ0 + pδM vs δ0: W1 = p·M but W∞ = M — the gap the
	// Kantorovich diagnostics report.
	spike := MustNew([]float64{0, 10}, []float64{0.9, 0.1})
	if w := Wasserstein1(spike, PointMass(0)); math.Abs(w-1) > 1e-12 {
		t.Errorf("spike: W1 = %v, want 1", w)
	}
	if w := WassersteinInf(spike, PointMass(0)); w != 10 {
		t.Errorf("spike: W∞ = %v, want 10", w)
	}
	if !math.IsNaN(Wasserstein1(Discrete{}, d)) {
		t.Error("empty distribution: want NaN")
	}
}
