package privlint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// privacyPathSuffixes marks the packages whose code sits on the
// privacy path: anything these packages release has (ε, δ) semantics,
// so every random draw must come from a calibrated sampler. The match
// is on import-path suffix so analyzer fixtures can impersonate the
// real layout.
var privacyPathSuffixes = []string{
	"internal/release",
	"internal/server",
	"internal/kantorovich",
	"internal/accounting",
	"internal/accounting/wal",
}

// isPrivacyPath reports whether an import path is on the privacy path.
func isPrivacyPath(path string) bool {
	for _, s := range privacyPathSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// randConstructors are the math/rand/v2 package-level functions a
// privacy-path package may call: constructing and seeding a generator
// to hand to internal/noise or internal/laplace is plumbing, drawing
// from it is sampling.
var randConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewSource":  true, // v1 compatibility; the import itself is flagged
	"NewChaCha8": true,
	"NewZipf":    true,
}

// NoiseSource flags randomness drawn outside the calibrated samplers
// on privacy-path packages: any math/rand(/v2) draw — package-level or
// a method on a generator value — that is not a generator constructor.
// An ad-hoc rng.ExpFloat64() in release code is exactly the bug class
// that silently breaks the (ε, δ) guarantee: the draw happens, the
// ledger never hears about it, and no test can tell the difference.
var NoiseSource = &Analyzer{
	Name: "noisesource",
	Doc: "privacy-path packages may draw noise only through internal/noise " +
		"and internal/laplace; math/rand draws are flagged (generator " +
		"construction is allowed, v1 math/rand is rejected outright)",
	Run: runNoiseSource,
}

func runNoiseSource(pass *Pass) error {
	if !isPrivacyPath(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == "math/rand" {
				pass.Reportf(imp.Pos(), "import of math/rand (v1) on a privacy path; use math/rand/v2 for generator plumbing and internal/noise for draws")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			sig := fn.Type().(*types.Signature)
			if sig.Recv() == nil {
				if randConstructors[fn.Name()] {
					return true
				}
				pass.Reportf(call.Pos(), "noise drawn from %s.%s on a privacy path; draw through internal/noise or internal/laplace samplers", fn.Pkg().Path(), fn.Name())
				return true
			}
			// Every method on a generator value (rand.Rand, rand.Zipf,
			// rand.Source) produces or perturbs variates.
			pass.Reportf(call.Pos(), "noise drawn via (%s).%s on a privacy path; draw through internal/noise or internal/laplace samplers", types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg)), fn.Name())
			return true
		})
	}
	return nil
}
