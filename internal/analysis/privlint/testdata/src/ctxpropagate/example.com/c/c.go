// Package c is the ctxpropagate fixture.
package c

import "context"

func Dropped(ctx context.Context, n int) int { // want `Dropped never uses its context\.Context parameter ctx`
	return n
}

func Unnamed(context.Context) {} // want `Unnamed discards its context\.Context parameter \(unnamed\)`

func Blank(_ context.Context) {} // want `Blank discards its context\.Context parameter`

func Fresh(ctx context.Context) error {
	_ = ctx
	return work(context.Background()) // want `Fresh has a context parameter but derives a fresh context\.Background`
}

func Good(ctx context.Context) error {
	return work(ctx)
}

// work is unexported: internal helpers are the callee side of the
// chain and are not checked.
func work(ctx context.Context) error { return ctx.Err() }

func Suppressed(ctx context.Context, n int) int { //privlint:allow ctxpropagate fixture documents the deliberate drop
	return n
}
