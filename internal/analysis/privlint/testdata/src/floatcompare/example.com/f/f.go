// Package f is the floatcompare fixture.
package f

func Eq(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func Ne(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

func MixedConst(a float64) bool {
	return a == 0 // want `floating-point == comparison`
}

// Ints compare exactly; not flagged.
func Ints(a, b int) bool { return a == b }

// Ordered comparisons are fine; only ==/!= are bit-identity traps.
func Less(a, b float64) bool { return a < b }

func Acknowledged(a, b float64) bool {
	//privlint:allow floatcompare fixture justifies the exact compare
	return a == b
}
