// Package b exercises the cross-package half of the guardedfield
// contract: annotations on example.com/a's exported fields bind here
// too, because the loader carries a's syntax alongside its types.
package b

import "example.com/a"

func Read(s *a.Shared) int {
	s.Mu.RLock()
	defer s.Mu.RUnlock()
	return s.Val
}

func Write(s *a.Shared, v int) {
	s.Mu.Lock()
	s.Val = v
	s.Mu.Unlock()
}

func TornRead(s *a.Shared) int {
	return s.Val // want `s\.Val is accessed without holding s\.Mu`
}

// readLocked relies on the caller's lock (naming convention).
func readLocked(s *a.Shared) int {
	return s.Val
}
