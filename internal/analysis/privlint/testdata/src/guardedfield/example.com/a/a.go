// Package a defines annotated structs for the guardedfield fixture.
package a

import "sync"

// Counter has an unexported mutex: in-package discipline.
type Counter struct {
	mu sync.Mutex
	// N is the running total.
	// guarded by mu
	N int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.N++
	c.mu.Unlock()
}

func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.N
}

func (c *Counter) Torn() int {
	return c.N // want `c\.N is accessed without holding c\.mu`
}

// UnlockedThenRead closes the lock window before the access.
func (c *Counter) UnlockedThenRead() int {
	c.mu.Lock()
	c.N = 1
	c.mu.Unlock()
	return c.N // want `c\.N is accessed without holding c\.mu`
}

// addLocked asserts its caller holds the lock (naming convention).
func (c *Counter) addLocked(d int) {
	c.N += d
}

// NewCounter initializes a not-yet-published value lock-free.
func NewCounter() *Counter {
	c := &Counter{}
	c.N = 1
	return c
}

func (c *Counter) acknowledged() int {
	return c.N //privlint:allow guardedfield fixture acknowledges the unlocked read
}

// Shared exports both the mutex and the field so other packages can
// participate in the contract.
type Shared struct {
	Mu sync.RWMutex
	// guarded by Mu
	Val int
}

// Bad carries an annotation naming a mutex the struct does not have.
type Bad struct {
	// guarded by missing
	X int // want `field is guarded by "missing", but the struct has no sync\.Mutex/RWMutex field of that name`
}
