// Package release impersonates a privacy-path package for the
// noisesource fixture.
package release

import (
	"math/rand" // want `import of math/rand \(v1\) on a privacy path`
	randv2 "math/rand/v2"
)

// Plumb constructs a seeded generator — allowed: construction is
// plumbing, not sampling.
func Plumb(seed uint64) *randv2.Rand {
	return randv2.New(randv2.NewPCG(seed, 1))
}

func drawPackageLevel() float64 {
	return randv2.Float64() // want `noise drawn from math/rand/v2\.Float64 on a privacy path`
}

func drawMethod(rng *randv2.Rand) float64 {
	return rng.ExpFloat64() // want `noise drawn via \(\*math/rand/v2\.Rand\)\.ExpFloat64 on a privacy path`
}

func drawV1() float64 {
	return rand.Float64() // want `noise drawn from math/rand\.Float64 on a privacy path`
}

func acknowledged(rng *randv2.Rand) float64 {
	//privlint:allow noisesource fixture demonstrates an acknowledged draw
	return rng.Float64()
}
