// Package markov is off the privacy path: draws here are model
// machinery, not released noise, and must not be flagged.
package markov

import randv2 "math/rand/v2"

func Walk(rng *randv2.Rand, steps int) float64 {
	var x float64
	for i := 0; i < steps; i++ {
		x += rng.Float64()
	}
	return x
}
