// Package s exercises the malformed-directive half of the suppression
// contract: a broken //privlint:allow is a diagnostic and suppresses
// nothing. The directive-line findings are asserted by wants on the
// code line below (a comment line cannot carry a second comment).
package s

func NoReason(a, b float64) bool {
	//privlint:allow floatcompare
	return a == b // want `floating-point == comparison` `privlint:allow floatcompare has no reason`
}

func UnknownAnalyzer(a, b float64) bool {
	//privlint:allow nosuchcheck because reasons
	return a == b // want `floating-point == comparison` `privlint:allow names unknown analyzer "nosuchcheck"`
}

func NoAnalyzer(a, b float64) bool {
	//privlint:allow
	return a == b // want `floating-point == comparison` `privlint:allow directive names no analyzer`
}

func BadVerb(a, b float64) bool {
	//privlint:deny floatcompare wrong verb
	return a == b // want `floating-point == comparison` `malformed privlint directive`
}

func Working(a, b float64) bool {
	//privlint:allow floatcompare a valid directive with a reason suppresses
	return a == b
}
