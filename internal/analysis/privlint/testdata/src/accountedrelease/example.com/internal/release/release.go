// Package release impersonates the staged release pipeline for the
// accountedrelease fixture.
package release

import "example.com/internal/noise"

// applyNoise is the sanctioned noise stage: it and its transitive
// callees may sample.
func applyNoise(out []float64) {
	noise.AddVec(out)
	helper(out)
}

// helper is reached from applyNoise, so it inherits the right.
func helper(out []float64) {
	_ = noise.Sample()
}

// Rogue samples outside the pipeline stage.
func Rogue(out []float64) {
	noise.AddVec(out) // want `noise sampled in Rogue, outside the applyNoise pipeline stage`
}

func acknowledged(out []float64) {
	noise.AddVec(out) //privlint:allow accountedrelease fixture acknowledges the out-of-stage draw
}
