// Package server impersonates the serving layer for the
// accountedrelease fixture: handlers never sample, staged path or not.
package server

import "example.com/internal/noise"

func Handle(out []float64) {
	noise.AddVec(out) // want `noise sampled directly in Handle; the serving layer must go through the staged release pipeline`
}

// applyNoise in the serving layer earns no exemption: the stage name
// is only sanctioned inside internal/release.
func applyNoise(out []float64) {
	_ = noise.Sample() // want `noise sampled directly in applyNoise`
}
