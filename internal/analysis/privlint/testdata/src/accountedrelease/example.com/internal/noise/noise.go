// Package noise impersonates the calibrated-sampler package for the
// accountedrelease fixture.
package noise

// AddVec stands in for the additive-noise vector sampler.
func AddVec(out []float64) {}

// Sample stands in for a single draw.
func Sample() float64 { return 0 }
