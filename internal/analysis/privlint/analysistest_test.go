package privlint

// This file is the suite's mini-analysistest: fixtures live under
// testdata/src/<fixture>/<import/path>/ and carry golang.org/x/tools
// style "// want `regex`" comments on the lines an analyzer must flag.
// The harness loads each fixture package through the real Loader (so
// fixtures can impersonate privacy-path import paths via SrcRoots),
// runs the analyzers under test, and requires an exact match: every
// diagnostic must satisfy a want on its line, every want must be hit.

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantArgRE extracts one backquoted or double-quoted pattern from the
// tail of a "// want" comment.
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// runFixture loads pkgPaths from testdata/src/<fixture> and checks the
// analyzers' diagnostics against the fixtures' want comments.
func runFixture(t *testing.T, analyzers []*Analyzer, fixture string, pkgPaths ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	ld.SrcRoots = []string{root}
	pkgs, err := ld.Load(pkgPaths...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, analyzers)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		checkExpectations(t, pkg, diags)
	}
}

// collectWants parses the package's "// want" comments into line-keyed
// expectations.
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimPrefix(c.Text, "// "), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantArgRE.FindAllStringSubmatch(rest, -1)
				if len(matches) == 0 {
					t.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, m := range matches {
					pat := m[1]
					if m[2] != "" {
						unq, err := strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[2], err)
							continue
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return wants
}

// checkExpectations requires a one-to-one match between diagnostics
// and want comments: each diagnostic consumes one matching unmet want
// on its line.
func checkExpectations(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	// A want matches a diagnostic on its own line, or on the line
	// directly above it — the latter so directive-line diagnostics
	// (whose line cannot carry a second comment) can be asserted from
	// the code line below.
	for _, d := range diags {
		matched := false
		for _, wantLine := range [...]int{d.Pos.Line, d.Pos.Line + 1} {
			for _, w := range wants {
				if w.hit || w.file != d.Pos.Filename || w.line != wantLine {
					continue
				}
				if w.re.MatchString(d.Message) || w.re.MatchString(d.Analyzer+": "+d.Message) {
					w.hit = true
					matched = true
					break
				}
			}
			if matched {
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

func TestNoiseSource(t *testing.T) {
	runFixture(t, []*Analyzer{NoiseSource}, "noisesource",
		"example.com/internal/release", "example.com/internal/markov")
}

func TestAccountedRelease(t *testing.T) {
	runFixture(t, []*Analyzer{AccountedRelease}, "accountedrelease",
		"example.com/internal/release", "example.com/internal/server")
}

func TestGuardedField(t *testing.T) {
	runFixture(t, []*Analyzer{GuardedField}, "guardedfield",
		"example.com/a", "example.com/b")
}

func TestFloatCompare(t *testing.T) {
	runFixture(t, []*Analyzer{FloatCompare}, "floatcompare", "example.com/f")
}

func TestCtxPropagate(t *testing.T) {
	runFixture(t, []*Analyzer{CtxPropagate}, "ctxpropagate", "example.com/c")
}

// TestSuppressionContract exercises the //privlint:allow escape hatch:
// malformed directives (no analyzer, unknown analyzer, missing reason)
// are diagnostics themselves and do not suppress the finding.
func TestSuppressionContract(t *testing.T) {
	runFixture(t, []*Analyzer{FloatCompare}, "suppression", "example.com/s")
}

// TestRepoClean runs the full suite over the whole module, the same
// gate CI applies: the tree must be free of unacknowledged findings.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load(ld.ModulePath + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
