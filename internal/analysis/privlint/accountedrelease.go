package privlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AccountedRelease enforces the charge-before-release pipeline shape:
// the additive-noise samplers (noise.AddVec, Additive.Sample,
// laplace.AddNoise/Sample/SampleVec, the core DP baselines, the
// exponential mechanism's Sample) may be called
//
//   - inside internal/release only from applyNoise or a function
//     applyNoise (transitively) calls — the one stage that runs after
//     the accounting entry is computed and before it is journaled;
//   - never from internal/server or cmd binaries, whose job is to
//     route requests into the staged pipeline, not to draw noise.
//
// A handler that samples directly produces a release the WAL
// charge-ahead never saw: a privacy spend with no audit trail.
var AccountedRelease = &Analyzer{
	Name: "accountedrelease",
	Doc: "additive-noise samplers must be reachable only from the staged " +
		"release.Finish/applyNoise path, never directly from server " +
		"handlers or cmd binaries",
	Run: runAccountedRelease,
}

// noiseRoot is the release-pipeline function from which sampling is
// legitimate; its transitive intra-package callees inherit the right.
const noiseRoot = "applyNoise"

// isSampler reports whether fn draws (or adds) additive noise.
func isSampler(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	suffix := func(s string) bool { return path == s || strings.HasSuffix(path, "/"+s) }
	switch {
	case suffix("internal/noise"):
		return name == "AddVec" || name == "Sample"
	case suffix("internal/laplace"):
		return name == "AddNoise" || name == "Sample" || name == "SampleVec"
	case suffix("internal/core"):
		return name == "LaplaceDP" || name == "GroupDP"
	case suffix("internal/kantorovich"):
		return name == "Sample"
	}
	return false
}

func runAccountedRelease(pass *Pass) error {
	path := pass.Pkg.Path()
	var inRelease bool
	switch {
	case path == "internal/release" || strings.HasSuffix(path, "/internal/release"):
		inRelease = true
	case path == "internal/server" || strings.HasSuffix(path, "/internal/server"),
		strings.Contains(path+"/", "/cmd/"):
	default:
		return nil
	}

	// Index the package's function declarations by their object so the
	// intra-package call graph can be walked statically.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	allowed := map[*types.Func]bool{}
	if inRelease {
		// Seed with every function named applyNoise, then close over
		// intra-package callees: a helper applyNoise delegates to is part
		// of the noise stage.
		var stack []*types.Func
		for fn := range decls {
			if fn.Name() == noiseRoot {
				allowed[fn] = true
				stack = append(stack, fn)
			}
		}
		for len(stack) > 0 {
			fn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass, call)
				if callee == nil || callee.Pkg() != pass.Pkg || allowed[callee] {
					return true
				}
				if _, ok := decls[callee]; ok {
					allowed[callee] = true
					stack = append(stack, callee)
				}
				return true
			})
		}
	}

	for fn, fd := range decls {
		fn, fd := fn, fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil || !isSampler(callee) {
				return true
			}
			if inRelease {
				if allowed[fn] {
					return true
				}
				pass.Reportf(call.Pos(), "noise sampled in %s, outside the %s pipeline stage; only the staged noise path may draw (it runs after the charge is journaled)", fn.Name(), noiseRoot)
				return true
			}
			pass.Reportf(call.Pos(), "noise sampled directly in %s; the serving layer must go through the staged release pipeline so every draw is accounted", fn.Name())
			return true
		})
	}
	return nil
}

// calleeFunc resolves a call's static callee, nil for indirect calls
// through plain function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
