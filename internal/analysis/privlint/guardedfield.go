package privlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// GuardedField checks the "// guarded by <mu>" field-annotation
// contract: a struct field carrying the annotation may be read or
// written only while the named sibling mutex is held in the enclosing
// function. The check is lexical, not a proof — it is exactly strong
// enough to catch the torn-read class of regression (a counter read
// added outside the lock window) while staying predictable:
//
//   - an access is "held" when a <base>.<mu>.Lock() or RLock() on the
//     same base expression precedes it in the function with no
//     non-deferred Unlock in between;
//   - functions whose name ends in "Locked" assert that their caller
//     holds the lock (the repo's existing convention, e.g.
//     checkCeilingLocked) and are exempt;
//   - accesses on a value the function itself just constructed from a
//     composite literal (the not-yet-published receiver inside a
//     constructor) are exempt.
//
// Annotations on fields whose struct has no such mutex sibling are
// themselves diagnostics, so the contract cannot rot silently.
// Annotated fields of imported packages are checked too when their
// source was loaded (standalone privlint mode).
var GuardedField = &Analyzer{
	Name: "guardedfield",
	Doc: "fields annotated \"// guarded by <mu>\" must only be accessed " +
		"with that mutex held in the enclosing function",
	Run: runGuardedField,
}

var guardedByRE = regexp.MustCompile(`(?i)\bguarded by (\w+)\b`)

// guardedInfo is one annotated field: the sibling mutex field that
// protects it.
type guardedInfo struct {
	mutex string
}

// collectGuarded parses "guarded by" annotations from one package's
// syntax, reporting malformed ones when report is non-nil (only the
// defining package reports, so cross-package checks never duplicate).
func collectGuarded(fset *token.FileSet, files []*ast.File, info *types.Info, report func(token.Pos, string, ...any)) map[*types.Var]guardedInfo {
	out := map[*types.Var]guardedInfo{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := annotationMutex(field)
				if mu == "" {
					continue
				}
				if !structHasMutex(st, info, mu) {
					if report != nil {
						report(field.Pos(), "field is guarded by %q, but the struct has no sync.Mutex/RWMutex field of that name", mu)
					}
					continue
				}
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						out[v] = guardedInfo{mutex: mu}
					}
				}
			}
			return true
		})
	}
	return out
}

// annotationMutex extracts the guarded-by mutex name from a field's
// doc or line comment, "" when unannotated.
func annotationMutex(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// structHasMutex reports whether the struct literally declares a
// field of the given name whose type is sync.Mutex or sync.RWMutex
// (possibly a pointer).
func structHasMutex(st *ast.StructType, info *types.Info, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name != name {
				continue
			}
			t := info.TypeOf(field.Type)
			if t == nil {
				return false
			}
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return false
			}
			obj := named.Obj()
			if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
				return false
			}
			return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
		}
	}
	return false
}

// lockOp is one mutex operation found in a function body.
type lockOp struct {
	lock     bool // Lock/RLock vs Unlock/RUnlock
	deferred bool
	mutex    string // mutex field name
	base     string // printed base expression ("s", "b.inner", ...)
	pos      token.Pos
}

func runGuardedField(pass *Pass) error {
	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, format, args...)
	}
	guarded := collectGuarded(pass.Fset, pass.Files, pass.TypesInfo, report)

	// Fold in annotations from directly imported packages whose source
	// is available (exported guarded fields accessed cross-package).
	if pass.Imported != nil {
		for _, imp := range pass.Pkg.Imports() {
			if dep := pass.Imported(imp.Path()); dep != nil {
				for v, g := range collectGuarded(dep.Fset, dep.Files, dep.Info, nil) {
					guarded[v] = g
				}
			}
		}
	}
	if len(guarded) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedFunc(pass, fd, guarded)
		}
	}
	return nil
}

func checkGuardedFunc(pass *Pass, fd *ast.FuncDecl, guarded map[*types.Var]guardedInfo) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	ops := collectLockOps(pass, fd.Body)
	fresh := freshLocals(pass, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selInfo, ok := pass.TypesInfo.Selections[sel]
		if !ok || selInfo.Kind() != types.FieldVal {
			return true
		}
		v, ok := selInfo.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, ok := guarded[v]
		if !ok {
			return true
		}
		base := types.ExprString(ast.Unparen(sel.X))
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && fresh[obj] {
				return true // not yet published: constructed in this function
			}
		}
		if !heldAt(ops, g.mutex, base, sel.Pos()) {
			pass.Reportf(sel.Pos(), "%s.%s is accessed without holding %s.%s (field is guarded by %s); lock it, rename the function *Locked if the caller holds it, or annotate //privlint:allow guardedfield", base, v.Name(), base, g.mutex, g.mutex)
		}
		return true
	})
}

// collectLockOps gathers every <base>.<mu>.Lock/RLock/Unlock/RUnlock
// call in the body, noting deferred ones.
func collectLockOps(pass *Pass, body *ast.BlockStmt) []lockOp {
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		return true
	})
	var ops []lockOp
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var lock bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
			lock = true
		case "Unlock", "RUnlock":
		default:
			return true
		}
		mu, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ops = append(ops, lockOp{
			lock:     lock,
			deferred: deferred[call],
			mutex:    mu.Sel.Name,
			base:     types.ExprString(ast.Unparen(mu.X)),
			pos:      call.Pos(),
		})
		return true
	})
	return ops
}

// heldAt replays the lock operations on (base, mutex) that precede
// pos in source order: the mutex is held when the last effective op
// was a Lock. Deferred Unlocks run at function exit and never end the
// window. This is a straight-line approximation — branches that
// unlock early are out of scope for a lint — and it is conservative
// in the direction that matters: a path with no Lock before the
// access is always reported.
func heldAt(ops []lockOp, mutex, base string, pos token.Pos) bool {
	held := false
	for _, op := range ops {
		if op.pos >= pos || op.mutex != mutex || op.base != base {
			continue
		}
		if op.deferred {
			continue
		}
		held = op.lock
	}
	return held
}

// freshLocals returns local variables initialized from a composite
// literal, &composite, or new(T) in this function — values that
// cannot yet be shared with another goroutine at the point they are
// accessed, which is what makes lock-free constructor initialization
// sound.
func freshLocals(pass *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	fresh := map[*types.Var]bool{}
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		v, ok := pass.TypesInfo.Defs[id].(*types.Var)
		if !ok {
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.CompositeLit:
			fresh[v] = true
		case *ast.UnaryExpr:
			if r.Op == token.AND {
				if _, ok := ast.Unparen(r.X).(*ast.CompositeLit); ok {
					fresh[v] = true
				}
			}
		case *ast.CallExpr:
			if fn, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && fn.Name == "new" {
				if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); isBuiltin {
					fresh[v] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			mark(as.Lhs[i], as.Rhs[i])
		}
		return true
	})
	return fresh
}
