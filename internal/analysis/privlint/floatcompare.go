package privlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCompare flags == and != between floating-point operands in
// non-test code. The repo's correctness story leans on bit-identity —
// but as a *test* contract (golden comparisons in _test.go files,
// which this suite exempts wholesale). In production code a float
// equality is almost always a latent bug: it encodes an assumption
// about exact arithmetic that a reordered reduction or a different
// optimization level silently invalidates. The rare legitimate exact
// comparison (a sentinel the code itself stored, a measure-zero
// boundary guard) carries a //privlint:allow floatcompare with its
// justification.
var FloatCompare = &Analyzer{
	Name: "floatcompare",
	Doc: "no ==/!= on floating-point operands outside the bit-identity " +
		"test suites; justify exact sentinels with //privlint:allow",
	Run: runFloatCompare,
}

func runFloatCompare(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if isFloat(pass.TypesInfo.TypeOf(bin.X)) || isFloat(pass.TypesInfo.TypeOf(bin.Y)) {
				pass.Reportf(bin.OpPos, "floating-point %s comparison; compare with a tolerance, use math.Signbit/IsNaN helpers, or justify the exact compare with //privlint:allow floatcompare", bin.Op)
			}
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
