package privlint

import (
	"go/ast"
	"go/types"
)

// CtxPropagate protects the deadline-propagation chain through the
// staged release pipeline: an exported function that accepts a
// context.Context must actually consult it — pass it down, check
// ctx.Err, select on Done — and must not shadow it by minting a fresh
// context.Background()/TODO() for downstream calls. A dropped ctx
// compiles, passes every unit test, and quietly severs the
// -request-timeout enforcement: a doomed release runs (and charges)
// to completion instead of aborting at the next stage boundary.
var CtxPropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc: "exported functions taking a context.Context must use it and " +
		"must not replace it with context.Background/TODO",
	Run: runCtxPropagate,
}

func runCtxPropagate(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkCtxFunc(pass, fd)
		}
	}
	return nil
}

func checkCtxFunc(pass *Pass, fd *ast.FuncDecl) {
	// Find context.Context parameters.
	var ctxParams []*types.Var
	dropped := false
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if !isContext(t) {
			continue
		}
		if len(field.Names) == 0 {
			// Unnamed parameter: the ctx cannot even be referenced.
			pass.Reportf(field.Pos(), "%s discards its context.Context parameter (unnamed); name it and thread it through the pipeline stages", fd.Name.Name)
			dropped = true
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				pass.Reportf(name.Pos(), "%s discards its context.Context parameter; thread it through the pipeline stages so deadlines propagate", fd.Name.Name)
				dropped = true
				continue
			}
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				ctxParams = append(ctxParams, v)
			}
		}
	}
	if len(ctxParams) == 0 && !dropped {
		return
	}

	used := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok {
				used[v] = true
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "context" &&
				(fn.Name() == "Background" || fn.Name() == "TODO") {
				pass.Reportf(n.Pos(), "%s has a context parameter but derives a fresh context.%s; pass the caller's ctx so cancellation and deadlines propagate", fd.Name.Name, fn.Name())
			}
		}
		return true
	})
	for _, v := range ctxParams {
		if !used[v] {
			pass.Reportf(v.Pos(), "%s never uses its context.Context parameter %s; thread it through the pipeline stages so deadlines propagate", fd.Name.Name, v.Name())
		}
	}
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
