// Package privlint is a suite of static analyzers that machine-check
// the privacy and concurrency invariants this codebase otherwise
// enforces only by convention and review:
//
//   - noisesource: on privacy-path packages, randomness may be drawn
//     only through the calibrated samplers in internal/noise and
//     internal/laplace — a stray math/rand draw silently voids the
//     (ε, δ) guarantee.
//   - accountedrelease: additive-noise samplers are reachable only
//     from the staged release.Finish/applyNoise path, never directly
//     from server handlers — noise that bypasses the pipeline bypasses
//     the accounting ledger and the WAL charge-ahead.
//   - guardedfield: struct fields annotated "// guarded by <mu>" are
//     accessed only with that mutex held in the enclosing function —
//     the class of torn-read bug fixed in the /v1/stats snapshot path.
//   - floatcompare: no ==/!= on floating-point operands in non-test
//     code — bit-identity is a test-suite contract, not a production
//     control-flow primitive.
//   - ctxpropagate: exported functions taking a context.Context use
//     it — a dropped ctx severs the deadline propagation the serving
//     layer relies on to abort doomed releases before they charge.
//
// The suite mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, "// want" test fixtures) but is implemented on the
// standard library alone, because this module deliberately has no
// third-party dependencies. cmd/privlint drives it both standalone
// (privlint ./...) and as a go vet -vettool.
//
// # Suppression contract
//
// A finding can be acknowledged in place with
//
//	//privlint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory: an allow directive without one is itself a diagnostic.
// Directives naming an unknown analyzer are diagnostics too, so typos
// cannot silently disable a check.
package privlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //privlint:allow directives.
	Name string
	// Doc is the one-paragraph description shown by privlint -help and
	// the README table.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoiseSource,
		AccountedRelease,
		GuardedField,
		FloatCompare,
		CtxPropagate,
	}
}

// byName indexes All for directive validation.
func byName() map[string]*Analyzer {
	m := make(map[string]*Analyzer)
	for _, a := range All() {
		m[a.Name] = a
	}
	return m
}

// Pass carries one analyzer's view of one type-checked package,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Imported returns the loaded source package for an import path,
	// or nil when only export data is available (vettool mode, stdlib).
	// guardedfield uses it to read annotations on fields of imported
	// structs.
	Imported func(path string) *Package

	diags    *[]Diagnostic
	suppress suppressionIndex
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless it is suppressed by a
// //privlint:allow directive or sits in a _test.go file. Test files
// are exempt by design: the golden/bit-identity suites compare floats
// exactly and draw seeded randomness as their contract, and the lint
// gate protects production paths.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.suppress.allows(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowRE matches the suppression directive. The directive must be a
// single comment of the form "//privlint:allow <analyzer> <reason>".
var allowRE = regexp.MustCompile(`^//privlint:allow(?:\s+(\S+))?(?:\s+(.*\S))?\s*$`)

// allowDirective is one parsed //privlint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Position
}

// suppressionIndex maps file name → line → directives effective on
// that line. A directive suppresses findings on its own line and on
// the line directly below it (comment-above style).
type suppressionIndex map[string]map[int][]allowDirective

func (s suppressionIndex) allows(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	for _, line := range [...]int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.analyzer == analyzer && d.reason != "" {
				return true
			}
		}
	}
	return false
}

// buildSuppressions scans a package's comments for allow directives
// and returns the index plus the diagnostics for malformed ones: a
// missing reason or an unknown analyzer name is an error, never a
// silent no-op.
func buildSuppressions(fset *token.FileSet, files []*ast.File) (suppressionIndex, []Diagnostic) {
	idx := suppressionIndex{}
	var bad []Diagnostic
	known := byName()
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//privlint:") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "privlint",
						Message: "malformed privlint directive; want //privlint:allow <analyzer> <reason>"})
					continue
				}
				d := allowDirective{analyzer: m[1], reason: m[2], pos: pos}
				switch {
				case d.analyzer == "":
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "privlint",
						Message: "privlint:allow directive names no analyzer"})
					continue
				case known[d.analyzer] == nil:
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "privlint",
						Message: fmt.Sprintf("privlint:allow names unknown analyzer %q", d.analyzer)})
					continue
				case d.reason == "":
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "privlint",
						Message: fmt.Sprintf("privlint:allow %s has no reason; a suppression must justify itself", d.analyzer)})
					continue
				}
				byFile := idx[pos.Filename]
				if byFile == nil {
					byFile = map[int][]allowDirective{}
					idx[pos.Filename] = byFile
				}
				byFile[pos.Line] = append(byFile[pos.Line], d)
			}
		}
	}
	return idx, bad
}

// RunPackage runs the analyzers over one loaded package and returns
// the surviving diagnostics sorted by position. Malformed suppression
// directives are included (in _test.go files too: a broken directive
// is a broken contract wherever it sits).
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	suppress, bad := buildSuppressions(pkg.Fset, pkg.Files)
	diags := bad
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Imported:  pkg.imported,
			diags:     &diags,
			suppress:  suppress,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
