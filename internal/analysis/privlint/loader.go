package privlint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package with its syntax, the unit every
// analyzer runs over.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	loader *Loader
}

// imported returns the loaded source package for an import path, nil
// when the dependency was resolved from export data only.
func (p *Package) imported(path string) *Package {
	if p.loader == nil {
		return nil
	}
	return p.loader.pkgs[path]
}

// NewPackage wraps an externally type-checked package (the go vet
// -vettool unit, whose dependencies exist only as export data) so
// RunPackage can analyze it. Cross-package syntax lookups are
// unavailable in this mode.
func NewPackage(path string, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Package {
	return &Package{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}
}

// Loader type-checks this module's packages from source. Imports that
// resolve inside the module (or inside SrcRoots, the analysistest
// fixture mechanism) are loaded recursively from source so analyzers
// can see their syntax; everything else — the standard library — comes
// from the toolchain's export data via importer.Default, which needs
// no network and no GOPATH.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string
	// SrcRoots are extra resolution roots searched before the module
	// mapping: import path p maps to root/p. Analyzer tests point one
	// at their testdata/src directory so fixtures can impersonate
	// privacy-path import paths.
	SrcRoots []string

	ctxt    build.Context
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	// The module is pure Go; disabling cgo keeps go/build from
	// offering cgo files we could not type-check without running cgo.
	ctxt.CgoEnabled = false
	l := &Loader{
		Fset:       token.NewFileSet(),
		ModulePath: modPath,
		ModuleDir:  root,
		ctxt:       ctxt,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
	std, ok := importer.Default().(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("privlint: toolchain importer does not support ImportFrom")
	}
	l.std = std
	return l, nil
}

// findModule walks up from dir to the nearest go.mod and returns its
// directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("privlint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("privlint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Load resolves the given patterns ("./...", "./internal/release", a
// plain directory, or an import path) and type-checks each matched
// package. Dependencies are loaded as needed but only matches are
// returned.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var paths []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, p := range expanded {
			if !seen[p] {
				seen[p] = true
				paths = append(paths, p)
			}
		}
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Import(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// expand turns one pattern into import paths.
func (l *Loader) expand(pat string) ([]string, error) {
	rec := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		rec = true
		pat = rest
		if pat == "" || pat == "." {
			pat = "."
		}
	}
	// Map the pattern onto a directory inside the module.
	var dir string
	switch {
	case pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") || filepath.IsAbs(pat):
		dir = pat
	case pat == l.ModulePath:
		dir = l.ModuleDir
	case strings.HasPrefix(pat, l.ModulePath+"/"):
		dir = filepath.Join(l.ModuleDir, strings.TrimPrefix(pat, l.ModulePath+"/"))
	default:
		// A plain import path that resolves via SrcRoots (fixtures) or
		// the module mapping is used as-is; otherwise it is a directory.
		if !rec {
			if _, ok := l.resolveDir(pat); ok {
				return []string{pat}, nil
			}
		}
		dir = pat
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if !rec {
		path, err := l.dirToImportPath(abs)
		if err != nil {
			return nil, err
		}
		return []string{path}, nil
	}
	var out []string
	err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != abs && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := l.ctxt.ImportDir(p, 0); err != nil {
			return nil // no buildable non-test Go files here
		}
		path, err := l.dirToImportPath(p)
		if err != nil {
			return err
		}
		out = append(out, path)
		return nil
	})
	return out, err
}

// dirToImportPath maps a directory inside the module to its import
// path.
func (l *Loader) dirToImportPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("privlint: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// Import loads (or returns the cached) source package for an import
// path the loader owns.
func (l *Loader) Import(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := l.resolveDir(path)
	if !ok {
		return nil, fmt.Errorf("privlint: %s does not resolve inside the module or src roots", path)
	}
	return l.loadDir(path, dir)
}

// resolveDir maps an import path to a source directory: SrcRoots
// first (so test fixtures can impersonate real paths), then the
// module tree.
func (l *Loader) resolveDir(path string) (string, bool) {
	for _, root := range l.SrcRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
	}
	switch {
	case path == l.ModulePath:
		return l.ModuleDir, true
	case strings.HasPrefix(path, l.ModulePath+"/"):
		return filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/"))), true
	}
	return "", false
}

// loadDir parses and type-checks one directory as one package.
func (l *Loader) loadDir(path, dir string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("privlint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("privlint: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("privlint: %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{
		Importer: (*loaderImporter)(l),
		Sizes:    types.SizesFor(l.ctxt.Compiler, l.ctxt.GOARCH),
	}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("privlint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:   path,
		Dir:    dir,
		Fset:   l.Fset,
		Files:  files,
		Pkg:    tpkg,
		Info:   info,
		loader: l,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter adapts the Loader to types.ImporterFrom: module and
// src-root imports load from source, everything else falls through to
// the toolchain's export data.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.resolveDir(path); ok {
		pkg, err := l.Import(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
