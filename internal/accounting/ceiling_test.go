package accounting

import (
	"errors"
	"fmt"
	"testing"
)

// fakeJournal records appends and scripted failures, standing in for
// the WAL in ledger-level tests.
type fakeJournal struct {
	appends []Entry
	applied []uint64
	fail    error
	seq     uint64
}

func (j *fakeJournal) Append(session string, e Entry) (uint64, error) {
	if j.fail != nil {
		return 0, j.fail
	}
	j.seq++
	j.appends = append(j.appends, e)
	return j.seq, nil
}

func (j *fakeJournal) Applied(seq uint64) { j.applied = append(j.applied, seq) }

// TestCeilingRefusesOverBudget: charges under the ceiling pass, the
// first charge that would breach it is refused with
// ErrCeilingExceeded and leaves no trace, and exact-hit charges are
// allowed (the ceiling is an inclusive bound).
func TestCeilingRefusesOverBudget(t *testing.T) {
	l := NewLedger(1e-5)
	if err := l.SetCeiling(2.5, 1e-5); err != nil {
		t.Fatal(err)
	}
	// Two pure ε=1 releases: linear bound 2 ≤ 2.5.
	for i := 0; i < 2; i++ {
		if err := l.AddPure("mqm-exact", 1); err != nil {
			t.Fatalf("release %d under ceiling refused: %v", i, err)
		}
	}
	// The third would reach linear 3 (and the RDP curve is above 2.5
	// too at this δ): refused, nothing recorded.
	err := l.AddPure("mqm-exact", 1)
	if !errors.Is(err, ErrCeilingExceeded) {
		t.Fatalf("over-ceiling charge: %v", err)
	}
	if l.Count() != 2 {
		t.Fatalf("refused charge mutated the ledger: %d entries", l.Count())
	}
	if got := l.TotalEpsilon(); got > 2.5 {
		t.Fatalf("ledger over its own ceiling: ε = %v", got)
	}

	// Exactly hitting the ceiling is allowed: fresh ledger, ceiling 2.
	l2 := NewLedger(1e-5)
	if err := l2.SetCeiling(2, 1e-5); err != nil {
		t.Fatal(err)
	}
	if err := l2.AddPure("", 1); err != nil {
		t.Fatal(err)
	}
	if err := l2.AddPure("", 1); err != nil {
		t.Fatalf("exact-ceiling charge refused: %v", err)
	}
	if err := l2.AddPure("", 1); !errors.Is(err, ErrCeilingExceeded) {
		t.Fatalf("past-exact charge: %v", err)
	}
}

// TestCheckChargeSimulation: CheckCharge answers exactly as Add would,
// without mutating; multi-entry checks are cumulative (a batch of
// three ε=1 entries breaches a ceiling of 2.5 even though each alone
// would not).
func TestCheckChargeSimulation(t *testing.T) {
	l := NewLedger(1e-5)
	if err := l.SetCeiling(2.5, 1e-5); err != nil {
		t.Fatal(err)
	}
	one := Entry{Kind: KindPure, Eps: 1}
	if err := l.CheckCharge(one); err != nil {
		t.Fatalf("single charge refused: %v", err)
	}
	if err := l.CheckCharge(one, one); err != nil {
		t.Fatalf("two charges refused: %v", err)
	}
	if err := l.CheckCharge(one, one, one); !errors.Is(err, ErrCeilingExceeded) {
		t.Fatalf("cumulative batch check: %v", err)
	}
	if l.Count() != 0 {
		t.Fatalf("CheckCharge mutated the ledger: %d entries", l.Count())
	}
	// CheckCharge then Add agree: everything CheckCharge admits, Add
	// admits, and vice versa (same state, same helper).
	for i := 0; i < 3; i++ {
		pre := l.CheckCharge(one)
		err := l.Add(one)
		if (pre == nil) != (err == nil) {
			t.Fatalf("charge %d: CheckCharge %v vs Add %v", i, pre, err)
		}
	}
	// No ceiling → always nil.
	free := NewLedger(1e-5)
	if err := free.CheckCharge(one, one, one); err != nil {
		t.Fatalf("uncapped CheckCharge: %v", err)
	}
}

// TestCeilingRestoredOverBudget: installing a ceiling a ledger already
// exceeds (a crash-recovered overshoot) is not an error; it refuses
// every further charge while keeping the recorded history intact.
func TestCeilingRestoredOverBudget(t *testing.T) {
	l := NewLedger(1e-5)
	for i := 0; i < 5; i++ {
		if err := l.AddPure("", 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.SetCeiling(2, 1e-5); err != nil {
		t.Fatalf("installing an already-breached ceiling: %v", err)
	}
	if err := l.AddPure("", 0.001); !errors.Is(err, ErrCeilingExceeded) {
		t.Fatalf("charge on an exhausted session: %v", err)
	}
	if l.Count() != 5 {
		t.Fatalf("history changed: %d entries", l.Count())
	}
}

// TestSetCeilingValidation: bad parameters are rejected, 0 clears.
func TestSetCeilingValidation(t *testing.T) {
	l := NewLedger(1e-5)
	for _, bad := range [][2]float64{{-1, 1e-5}, {1, 2}} {
		if err := l.SetCeiling(bad[0], bad[1]); err == nil {
			t.Errorf("SetCeiling(%v, %v) accepted", bad[0], bad[1])
		}
	}
	if err := l.SetCeiling(1, 0); err != nil { // δ ≤ 0 → headline δ
		t.Fatal(err)
	}
	if eps, delta := l.Ceiling(); eps != 1 || delta != 1e-5 {
		t.Fatalf("ceiling = (%v, %v)", eps, delta)
	}
	if err := l.SetCeiling(0, 0); err != nil {
		t.Fatal(err)
	}
	if eps, _ := l.Ceiling(); eps != 0 {
		t.Fatal("ceiling not cleared")
	}
	if err := l.AddPure("", 100); err != nil {
		t.Fatalf("uncapped charge refused: %v", err)
	}
}

// TestJournalChargeAhead: every applied entry went through the
// journal first; a journal failure aborts the charge with no state
// change; a refused (over-ceiling) charge never reaches the journal.
func TestJournalChargeAhead(t *testing.T) {
	j := &fakeJournal{}
	l := NewLedger(1e-5)
	l.SetJournal(j, "s")
	if err := l.SetCeiling(2, 1e-5); err != nil {
		t.Fatal(err)
	}
	if err := l.AddPure("", 1); err != nil {
		t.Fatal(err)
	}
	if len(j.appends) != 1 || len(j.applied) != 1 || j.applied[0] != 1 {
		t.Fatalf("journal traffic: %d appends, applied %v", len(j.appends), j.applied)
	}

	// Journal failure: charge refused, nothing recorded anywhere.
	j.fail = fmt.Errorf("disk gone")
	if err := l.AddPure("", 0.5); !errors.Is(err, ErrJournal) {
		t.Fatalf("journal-failure charge: %v", err)
	}
	if l.Count() != 1 || len(j.appends) != 1 {
		t.Fatalf("failed journal append left state: count %d, appends %d", l.Count(), len(j.appends))
	}
	j.fail = nil

	// Over-ceiling: refused before the journal sees it.
	if err := l.AddPure("", 5); !errors.Is(err, ErrCeilingExceeded) {
		t.Fatalf("over-ceiling: %v", err)
	}
	if len(j.appends) != 1 {
		t.Fatalf("refused charge was journaled: %d appends", len(j.appends))
	}
}
