package accounting

import (
	"encoding/json"
	"math"
	"testing"
)

func mustEpsilon(t *testing.T, l *Ledger, delta float64) float64 {
	t.Helper()
	eps, err := l.Epsilon(delta)
	if err != nil {
		t.Fatal(err)
	}
	return eps
}

// TestSinglePureReleaseIsLinear: the degenerate case of Theorem 4.4 —
// one pure release at ε must report exactly ε at every δ.
func TestSinglePureReleaseIsLinear(t *testing.T) {
	for _, eps := range []float64{0.1, 1, 2.5} {
		l := NewLedger(1e-5)
		if err := l.AddPure("mqm-exact", eps); err != nil {
			t.Fatal(err)
		}
		for _, delta := range []float64{1e-9, 1e-5, 1e-2} {
			if got := mustEpsilon(t, l, delta); got != eps {
				t.Errorf("ε = %v at δ = %v: got %v, want exactly ε", eps, delta, got)
			}
		}
		if got := l.LinearEpsilon(); got != eps {
			t.Errorf("linear ε = %v, want %v", got, eps)
		}
		if got := l.TotalEpsilon(); got != eps {
			t.Errorf("TotalEpsilon = %v, want %v", got, eps)
		}
	}
}

// TestEmptyAndInvalid: an empty ledger reports 0; invalid δ and
// invalid entries are rejected without changing state.
func TestEmptyAndInvalid(t *testing.T) {
	l := NewLedger(0) // 0 selects the default δ
	if l.Delta() != DefaultDelta {
		t.Fatalf("default δ = %v", l.Delta())
	}
	if got := mustEpsilon(t, l, 1e-5); got != 0 {
		t.Errorf("empty ledger ε = %v", got)
	}
	if _, err := l.Epsilon(0); err == nil {
		t.Error("δ = 0 accepted")
	}
	if _, err := l.Epsilon(1); err == nil {
		t.Error("δ = 1 accepted")
	}
	bad := []Entry{
		{Kind: KindPure, Eps: 0},
		{Kind: KindPure, Eps: math.Inf(1)},
		{Kind: KindPure, Eps: math.NaN()},
		{Kind: KindPure, Eps: 1, Rho: 0.5},
		{Kind: KindPure, Eps: 1, Delta: 1e-5},
		{Kind: KindGaussian, Eps: 1, Delta: 1e-5, Rho: 0},
		{Kind: KindGaussian, Eps: 1, Delta: 1e-5, Rho: math.NaN()},
		{Kind: KindGaussian, Eps: 1, Delta: 0, Rho: 0.1},
		{Kind: KindGaussian, Eps: 1, Delta: 1.5, Rho: 0.1},
		{Kind: "mystery", Eps: 1},
	}
	for _, e := range bad {
		if err := l.Add(e); err == nil {
			t.Errorf("invalid entry accepted: %+v", e)
		}
	}
	if l.Count() != 0 {
		t.Fatalf("rejected entries changed state: count = %d", l.Count())
	}
}

// TestGaussianCompositionBeatsLinear: K repeated Gaussian releases
// compose at ~K·ρ + 2√(K·ρ·log(1/δ)), strictly below the linear K·ε
// once K grows — the whole point of the ledger.
func TestGaussianCompositionBeatsLinear(t *testing.T) {
	const eps, delta = 1.0, 1e-5
	// ρ of the analytic Gaussian calibration at (ε, δ):
	// σ = W∞√(2 ln(1.25/δ))/ε ⇒ ρ = W∞²/(2σ²) = ε²/(4 ln(1.25/δ)).
	rho := eps * eps / (4 * math.Log(1.25/delta))
	l := NewLedger(delta)
	prev := 0.0
	for k := 1; k <= 32; k++ {
		if err := l.AddGaussian("kantorovich", rho, eps, delta); err != nil {
			t.Fatal(err)
		}
		got := mustEpsilon(t, l, delta)
		linear := l.LinearEpsilon()
		if linear != float64(k)*eps {
			t.Fatalf("K = %d: linear = %v", k, linear)
		}
		if got > linear {
			t.Errorf("K = %d: RDP ε %v exceeds linear %v", k, got, linear)
		}
		if k >= 4 && got >= linear {
			t.Errorf("K = %d: RDP ε %v not strictly below linear %v", k, got, linear)
		}
		// The accumulated guarantee can only degrade with more releases.
		if got < prev {
			t.Errorf("K = %d: ε decreased %v → %v", k, prev, got)
		}
		prev = got
		// Sanity against the closed-form zCDP conversion at this K: the
		// grid minimum can't beat the continuous optimum K·ρ + 2√(K·ρ·
		// ln(1/δ)) by more than grid slack, and must be within 5% above.
		analytic := float64(k)*rho + 2*math.Sqrt(float64(k)*rho*math.Log(1/delta))
		if got > 1.05*analytic && got > linear {
			t.Errorf("K = %d: grid ε %v far above analytic %v", k, got, analytic)
		}
	}
	if got, want := l.Rho(), 32*rho; math.Abs(got-want) > 1e-12 {
		t.Errorf("accumulated ρ = %v, want %v", got, want)
	}
	if got, want := l.DeltaSum(), 32*delta; math.Abs(got-want) > 1e-12 {
		t.Errorf("ΔSum = %v, want %v", got, want)
	}
}

// TestPureCompositionNeverWorseThanLinear: homogeneous pure releases —
// the Theorem 4.4 regime — must stay at or below K·ε, and beat it
// clearly for many small-ε releases (the ½ε²-zCDP branch).
func TestPureCompositionNeverWorseThanLinear(t *testing.T) {
	const eps, delta = 0.1, 1e-6
	l := NewLedger(delta)
	for k := 1; k <= 100; k++ {
		if err := l.AddPure("", eps); err != nil {
			t.Fatal(err)
		}
		if got, linear := mustEpsilon(t, l, delta), l.LinearEpsilon(); got > linear {
			t.Fatalf("K = %d: RDP ε %v exceeds linear %v", k, got, linear)
		}
	}
	// 100 releases at ε = 0.1: linear says 10; the Rényi curve (ρ =
	// K·ε²/2 = 0.5) lands around ρ + 2√(ρ·ln 1e6) ≈ 5.76.
	if got := mustEpsilon(t, l, delta); got >= 6 {
		t.Errorf("100×ε=0.1: RDP ε = %v, want < 6 (linear 10)", got)
	}
}

// TestHeterogeneousMaxTracking: the linear bound is K·max ε over a
// mixed sequence, matching core.LinearAccountant's arithmetic.
func TestHeterogeneousMaxTracking(t *testing.T) {
	l := NewLedger(1e-5)
	for _, e := range []float64{0.5, 2, 1} {
		if err := l.AddPure("", e); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.LinearEpsilon(); got != 6 {
		t.Errorf("linear = %v, want 3·2 = 6", got)
	}
	if l.Count() != 3 {
		t.Errorf("count = %d", l.Count())
	}
}

// TestEpsilonMemoization: repeated queries at one δ must hit the memo
// (same value back), and an Add must invalidate it.
func TestEpsilonMemoization(t *testing.T) {
	l := NewLedger(1e-5)
	if err := l.AddGaussian("", 0.02, 1, 1e-5); err != nil {
		t.Fatal(err)
	}
	a := mustEpsilon(t, l, 1e-5)
	if b := mustEpsilon(t, l, 1e-5); b != a {
		t.Errorf("memoized query changed: %v != %v", b, a)
	}
	if err := l.AddGaussian("", 0.02, 1, 1e-5); err != nil {
		t.Fatal(err)
	}
	if c := mustEpsilon(t, l, 1e-5); c <= a {
		t.Errorf("ε did not grow after Add: %v <= %v", c, a)
	}
}

// TestCurveAndEntries: the accumulated curve is the pointwise sum of
// the per-entry curves, and Entries returns an isolated copy.
func TestCurveAndEntries(t *testing.T) {
	l := NewLedger(1e-5)
	if err := l.AddPure("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := l.AddGaussian("b", 0.1, 1, 1e-5); err != nil {
		t.Fatal(err)
	}
	entries := l.Entries()
	if len(entries) != 2 || entries[0].Mechanism != "a" || entries[1].Mechanism != "b" {
		t.Fatalf("entries = %+v", entries)
	}
	for _, pt := range l.Curve(ReportAlphas) {
		want := entries[0].EpsAlpha(pt.Alpha) + entries[1].EpsAlpha(pt.Alpha)
		if pt.Eps != want {
			t.Errorf("curve(%v) = %v, want %v", pt.Alpha, pt.Eps, want)
		}
	}
	entries[0].Eps = 99 // mutating the copy must not touch the ledger
	if l.Entries()[0].Eps != 1 {
		t.Error("Entries returned shared storage")
	}
}

// TestSnapshotRoundTrip: Snapshot → JSON → Restore reproduces the
// ledger's accounting exactly; corrupted snapshots are rejected.
func TestSnapshotRoundTrip(t *testing.T) {
	l := NewLedger(1e-6)
	if err := l.AddPure("mqm-exact", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := l.AddGaussian("kantorovich", 0.03, 1, 1e-5); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(l.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delta() != l.Delta() || r.Count() != l.Count() {
		t.Fatalf("restored (δ=%v, K=%d), want (δ=%v, K=%d)", r.Delta(), r.Count(), l.Delta(), l.Count())
	}
	for _, delta := range []float64{1e-6, 1e-5, 1e-3} {
		if a, b := mustEpsilon(t, l, delta), mustEpsilon(t, r, delta); a != b {
			t.Errorf("δ = %v: restored ε %v != original %v", delta, b, a)
		}
	}

	corrupt := snap
	corrupt.Entries = append([]Entry{}, snap.Entries...)
	corrupt.Entries[1].Rho = math.NaN()
	if _, err := Restore(corrupt); err == nil {
		t.Error("NaN ρ snapshot accepted")
	}
}

// TestRecordPureAccountantContract: RecordPure matches the Accountant
// interface semantics (record + headline reporting) and panics on an
// ε no release path could have validated.
func TestRecordPureAccountantContract(t *testing.T) {
	l := NewLedger(1e-5)
	l.RecordPure(1)
	if l.Count() != 1 || l.TotalEpsilon() != 1 {
		t.Errorf("after RecordPure(1): count %d, total %v", l.Count(), l.TotalEpsilon())
	}
	defer func() {
		if recover() == nil {
			t.Error("RecordPure(-1) did not panic")
		}
	}()
	l.RecordPure(-1)
}
