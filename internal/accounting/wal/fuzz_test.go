package wal

import (
	"os"
	"path/filepath"
	"testing"

	"pufferfish/internal/accounting"
)

// seedJournal builds a valid two-record journal and returns its bytes.
func seedJournal(f *testing.F) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.wal")
	w, _, err := Recover(nil, nil, path, 0)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range []accounting.Entry{
		{Kind: accounting.KindPure, Eps: 0.5},
		{Kind: accounting.KindGaussian, Eps: 1, Delta: 1e-6, Rho: 0.02},
	} {
		if _, err := w.Append("fuzz", e); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return blob
}

// FuzzRecover throws arbitrary bytes at the journal recovery path.
// Whatever the input, Recover must never panic, every replayed record
// must validate, and — the repair invariant — a second Recover over
// the repaired file must be clean and reproduce the same records.
func FuzzRecover(f *testing.F) {
	valid := seedJournal(f)
	f.Add([]byte{}, uint64(0))
	f.Add([]byte(magic), uint64(5))
	f.Add(valid, uint64(0))
	// Torn tail: the crash-mid-append shape recovery must repair.
	f.Add(valid[:len(valid)-3], uint64(0))
	// Mid-file damage: must be refused, not skipped.
	flipped := append([]byte(nil), valid...)
	flipped[len(magic)+2] ^= 0xff
	f.Add(flipped, uint64(0))

	f.Fuzz(func(t *testing.T, data []byte, lastSeq uint64) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, res, err := Recover(nil, nil, path, lastSeq)
		if err != nil {
			if w != nil {
				t.Fatal("Recover returned both a writer and an error")
			}
			return
		}
		for _, rec := range res.Records {
			if rec.Seq == 0 {
				t.Fatal("replayed record with zero sequence")
			}
			if err := rec.Entry.Validate(); err != nil {
				t.Fatalf("replayed record fails validation: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("closing recovered writer: %v", err)
		}
		w2, res2, err := Recover(nil, nil, path, lastSeq)
		if err != nil {
			t.Fatalf("re-recover after repair: %v", err)
		}
		if res2.Torn {
			t.Fatal("repair left a torn tail behind")
		}
		if len(res2.Records) != len(res.Records) {
			t.Fatalf("repair changed the record count: %d then %d", len(res.Records), len(res2.Records))
		}
		for i := range res2.Records {
			if res2.Records[i].Seq != res.Records[i].Seq {
				t.Fatalf("repair changed record %d sequence: %d then %d", i, res.Records[i].Seq, res2.Records[i].Seq)
			}
		}
		w2.Close()
	})
}
