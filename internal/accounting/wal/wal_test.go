package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"testing"
	"time"

	"pufferfish/internal/accounting"
	"pufferfish/internal/faultfs"
)

const walPath = "/d/ledger.wal"

func testClock() *faultfs.FixedClock {
	return &faultfs.FixedClock{At: time.Unix(1700000000, 0), Step: time.Millisecond}
}

func mustRecover(t *testing.T, fsys faultfs.FS, lastSeq uint64) (*Writer, *RecoverResult) {
	t.Helper()
	w, res, err := Recover(fsys, testClock(), walPath, lastSeq)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return w, res
}

func append3(t *testing.T, w *Writer) {
	t.Helper()
	for i, e := range []accounting.Entry{
		{Kind: accounting.KindPure, Mechanism: "mqm-exact", Eps: 1},
		{Kind: accounting.KindGaussian, Mechanism: "kantorovich", Eps: 0.5, Delta: 1e-5, Rho: 0.01},
		{Kind: accounting.KindPure, Mechanism: "dp", Eps: 2},
	} {
		seq, err := w.Append("s", e)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		w.Applied(seq)
	}
}

// TestAppendReplayRoundTrip: records come back exactly, in order,
// with strictly increasing sequences, after a crash that loses
// nothing (every append fsyncs before returning).
func TestAppendReplayRoundTrip(t *testing.T) {
	c := faultfs.NewCrashFS()
	w, res := mustRecover(t, c, 0)
	if len(res.Records) != 0 || res.Torn {
		t.Fatalf("fresh journal: %+v", res)
	}
	append3(t, w)
	if w.LastSeq() != 3 || w.LowWater() != 3 {
		t.Fatalf("seq %d, low water %d", w.LastSeq(), w.LowWater())
	}

	c.Crash()
	c.Restart()
	w2, res2 := mustRecover(t, c, 0)
	defer w2.Close()
	if len(res2.Records) != 3 || res2.Torn {
		t.Fatalf("after crash: %d records, torn %v", len(res2.Records), res2.Torn)
	}
	for i, rec := range res2.Records {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		if rec.Time == 0 {
			t.Fatalf("record %d missing audit timestamp", i)
		}
	}
	if res2.Records[1].Entry.Rho != 0.01 || res2.Records[2].Entry.Eps != 2 {
		t.Fatalf("entries mangled: %+v", res2.Records)
	}
	// The recovered writer continues the sequence.
	seq, err := w2.Append("s", accounting.Entry{Kind: accounting.KindPure, Eps: 1})
	if err != nil || seq != 4 {
		t.Fatalf("post-recovery append: seq %d, %v", seq, err)
	}
}

// TestTruncatedTail: a record cut anywhere — short header, short
// payload — is dropped and the rest recovered; the file is repaired
// so future appends stay parseable.
func TestTruncatedTail(t *testing.T) {
	for _, cut := range []int{1, 4, 9, 12} { // into header and into payload
		c := faultfs.NewCrashFS()
		w, _ := mustRecover(t, c, 0)
		append3(t, w)
		w.Close()
		blob, err := c.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		// Find the last frame's start to cut inside it.
		lastStart := frameStart(t, blob, 2)
		trunc := blob[:lastStart+cut]
		writeRaw(t, c, walPath, trunc)

		w2, res := mustRecover(t, c, 0)
		if len(res.Records) != 2 || !res.Torn || res.DroppedBytes != cut {
			t.Fatalf("cut %d: %d records, torn %v, dropped %d",
				cut, len(res.Records), res.Torn, res.DroppedBytes)
		}
		// Appends after the repair recover cleanly again.
		if _, err := w2.Append("s", accounting.Entry{Kind: accounting.KindPure, Eps: 1}); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		w2.Close()
		_, res3 := mustRecover(t, c, 0)
		if len(res3.Records) != 3 || res3.Torn {
			t.Fatalf("cut %d: re-recovery: %d records, torn %v", cut, len(res3.Records), res3.Torn)
		}
	}
}

// TestTornMidRecordWrite: a crash torn halfway through an append
// (faultfs makes the torn prefix durable — the worst writeback case)
// loses exactly that record and nothing else.
func TestTornMidRecordWrite(t *testing.T) {
	c := faultfs.NewCrashFS()
	w, _ := mustRecover(t, c, 0)
	append3(t, w)
	c.FailAt(faultfs.OpWrite, 1, faultfs.ModeCrash)
	if _, err := w.Append("s", accounting.Entry{Kind: accounting.KindPure, Eps: 9}); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("append during crash: %v", err)
	}
	c.Restart()
	w2, res := mustRecover(t, c, 0)
	defer w2.Close()
	if len(res.Records) != 3 || !res.Torn {
		t.Fatalf("after torn append: %d records, torn %v", len(res.Records), res.Torn)
	}
	for _, rec := range res.Records {
		if rec.Entry.Eps == 9 {
			t.Fatal("torn record replayed")
		}
	}
}

// TestCRCMismatch: a flipped payload byte in the tail frame is
// dropped like any torn write; the same flip mid-file — with valid
// records after it — fails loudly with ErrCorrupt, because silently
// skipping a damaged record would under-account.
func TestCRCMismatch(t *testing.T) {
	c := faultfs.NewCrashFS()
	w, _ := mustRecover(t, c, 0)
	append3(t, w)
	w.Close()
	blob, _ := c.ReadFile(walPath)

	// Tail flip: inside the last record's payload.
	tail := append([]byte(nil), blob...)
	tail[frameStart(t, blob, 2)+frameHeader+3] ^= 0xff
	writeRaw(t, c, walPath, tail)
	_, res := mustRecover(t, c, 0)
	if len(res.Records) != 2 || !res.Torn {
		t.Fatalf("tail CRC flip: %d records, torn %v", len(res.Records), res.Torn)
	}

	// Mid-file flip: inside the first record, valid frames after it.
	mid := append([]byte(nil), blob...)
	mid[frameStart(t, blob, 0)+frameHeader+3] ^= 0xff
	writeRaw(t, c, walPath, mid)
	if _, _, err := Recover(c, testClock(), walPath, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file corruption: %v", err)
	}

	// Non-WAL garbage fails loudly too.
	writeRaw(t, c, walPath, []byte("{\"not\": \"a wal\"}"))
	if _, _, err := Recover(c, testClock(), walPath, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage file: %v", err)
	}
}

// TestDuplicateReplayAfterSnapshotRotate: the snapshot + rotate
// protocol dedupes by sequence. A crash *between* snapshot and rotate
// leaves the full journal next to a snapshot that already includes
// it; replaying only seq > snapshot.walSeq recovers exactly the
// post-snapshot records, and never drops one that raced the cut.
func TestDuplicateReplayAfterSnapshotRotate(t *testing.T) {
	c := faultfs.NewCrashFS()
	w, _ := mustRecover(t, c, 0)
	append3(t, w)

	// "Snapshot" at low water 3, then crash before Rotate: the
	// journal still holds seq 1..3.
	snapSeq := w.LowWater()
	c.Crash()
	c.Restart()
	w2, res := mustRecover(t, c, snapSeq)
	replayed := 0
	for _, rec := range res.Records {
		if rec.Seq > snapSeq {
			replayed++
		}
	}
	if replayed != 0 {
		t.Fatalf("records ≤ snapshot seq replayed: %d", replayed)
	}
	// Recovery seeded with the snapshot seq continues numbering past
	// both the snapshot and the journal.
	seq, err := w2.Append("s", accounting.Entry{Kind: accounting.KindPure, Eps: 1})
	if err != nil || seq != 4 {
		t.Fatalf("append after dedup: seq %d, %v", seq, err)
	}

	// Now the rotate completes: seq ≤ 3 dropped, 4 carried forward.
	if err := w2.Rotate(snapSeq); err != nil {
		t.Fatal(err)
	}
	seq5, err := w2.Append("s", accounting.Entry{Kind: accounting.KindPure, Eps: 1})
	if err != nil || seq5 != 5 {
		t.Fatalf("append after rotate: seq %d, %v", seq5, err)
	}
	w2.Close()
	_, res2 := mustRecover(t, c, snapSeq)
	if len(res2.Records) != 2 || res2.Records[0].Seq != 4 || res2.Records[1].Seq != 5 {
		t.Fatalf("rotated journal: %+v", res2.Records)
	}
}

// TestRotateCrashPoints: sweeping a crash into every filesystem
// operation of Rotate always leaves a journal that either still holds
// all records or holds exactly the carried set — recovery plus
// sequence dedup never loses a post-snapshot record at any point.
func TestRotateCrashPoints(t *testing.T) {
	// Count the ops of a clean rotate.
	prep := func() (*faultfs.CrashFS, *Writer) {
		c := faultfs.NewCrashFS()
		w, _ := mustRecover(t, c, 0)
		append3(t, w)
		return c, w
	}
	c0, w0 := prep()
	before := c0.Ops()
	if err := w0.Rotate(2); err != nil {
		t.Fatal(err)
	}
	total := c0.Ops() - before

	for n := 1; n <= total; n++ {
		c, w := prep()
		c.CrashAtOp(n)  // counted from arming: n ops into the rotate
		_ = w.Rotate(2) // may fail — that's the point
		c.Restart()
		_, res, err := Recover(c, testClock(), walPath, 2)
		if err != nil {
			t.Fatalf("crash at rotate op %d: recovery failed: %v", n, err)
		}
		// Seq 3 (the record past the snapshot cut) must survive.
		found := false
		for _, rec := range res.Records {
			if rec.Seq == 3 {
				found = true
			}
		}
		if !found {
			t.Fatalf("crash at rotate op %d lost the post-snapshot record: %+v", n, res.Records)
		}
	}
}

// TestLowWaterWithOutstanding: an appended-but-unapplied record keeps
// the low-water mark below it, so a racing snapshot can only
// over-count.
func TestLowWaterWithOutstanding(t *testing.T) {
	c := faultfs.NewCrashFS()
	w, _ := mustRecover(t, c, 0)
	defer w.Close()
	e := accounting.Entry{Kind: accounting.KindPure, Eps: 1}
	s1, _ := w.Append("a", e)
	w.Applied(s1)
	s2, err := w.Append("a", e)
	if err != nil {
		t.Fatal(err)
	}
	if w.LowWater() != s2-1 {
		t.Fatalf("low water %d with seq %d outstanding", w.LowWater(), s2)
	}
	w.Applied(s2)
	if w.LowWater() != s2 {
		t.Fatalf("low water %d after apply", w.LowWater())
	}
}

// TestInvalidEntriesNeverReplay: a frame whose payload validates the
// CRC but holds an impossible accounting entry (hand-crafted) is
// rejected as damage, not replayed into a ledger.
func TestInvalidEntriesNeverReplay(t *testing.T) {
	c := faultfs.NewCrashFS()
	w, _ := mustRecover(t, c, 0)
	seq, _ := w.Append("s", accounting.Entry{Kind: accounting.KindPure, Eps: 1})
	w.Applied(seq)
	w.Close()

	// Craft a frame with a negative ε and a valid CRC, append raw.
	blob, _ := c.ReadFile(walPath)
	payload := []byte(`{"seq":2,"session":"s","entry":{"kind":"pure","eps":-1}}`)
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32Of(payload))
	frame = append(frame, payload...)
	writeRaw(t, c, walPath, append(append([]byte(nil), blob...), frame...))

	_, res := mustRecover(t, c, 0)
	if len(res.Records) != 1 || !res.Torn {
		t.Fatalf("invalid entry handled as: %d records, torn %v", len(res.Records), res.Torn)
	}
}

// frameStart returns the byte offset of the idx-th frame (0-based).
func frameStart(t *testing.T, blob []byte, idx int) int {
	t.Helper()
	off := len(magic)
	for i := 0; i < idx; i++ {
		if off+frameHeader > len(blob) {
			t.Fatalf("frame %d out of range", idx)
		}
		plen := int(binary.LittleEndian.Uint32(blob[off : off+4]))
		off += frameHeader + plen
	}
	return off
}

func writeRaw(t *testing.T, c *faultfs.CrashFS, name string, blob []byte) {
	t.Helper()
	f, err := c.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(blob); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func crc32Of(p []byte) uint32 {
	return crc32.Checksum(p, castagnoli)
}
