// Package wal is the append-only write-ahead journal beneath the
// accounting ledgers: the durability layer that makes cumulative
// privacy spend survive kill -9, OOM, and power loss.
//
// # Why a WAL
//
// The pufferd snapshot is written only at clean shutdown. Without a
// journal, a crash silently forgets every release since boot and the
// restarted server under-reports privacy spend — the one failure mode
// a privacy system must never have. The WAL closes the hole with the
// charge-ahead invariant: a record is appended and fsync'd *before*
// the ledger mutates and long before the noisy histogram leaves the
// process. A crash at any point can therefore only over-count spend
// on replay (a record whose response never went out), never
// under-count it.
//
// # Format
//
// A WAL file is an 8-byte magic header followed by framed records:
//
//	"PFWAL01\n"
//	repeat: uint32 LE payload length | uint32 LE CRC-32C of payload |
//	        payload (JSON Record)
//
// Each Append is a single Write of one whole frame followed by Sync.
// Records carry a strictly increasing sequence number; the snapshot
// stores the low-water sequence it includes, so replay after a crash
// between snapshot and rotation skips exactly the records the
// snapshot already holds (duplicate replay cannot double-count).
//
// # Recovery rules
//
//   - A truncated or torn tail frame (short header, short payload,
//     CRC mismatch, or garbage at the end) is dropped: the append's
//     fsync never completed, so by charge-ahead ordering the response
//     it guarded was never sent, and dropping it cannot under-count.
//   - Corruption *followed by more valid frames* cannot be produced
//     by crashed appends — it means the file was damaged or edited.
//     Recovery fails loudly and the server refuses to start, because
//     skipping a damaged record would silently under-account.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pufferfish/internal/accounting"
	"pufferfish/internal/faultfs"
	"pufferfish/internal/obs"
)

// magic identifies (and versions) a WAL file.
const magic = "PFWAL01\n"

// maxPayload bounds a record frame; an accounting entry is a few
// hundred bytes, so anything near this is corruption, not data.
const maxPayload = 1 << 20

// frameHeader is payload length + CRC-32C.
const frameHeader = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a WAL that cannot be trusted: damage in the middle
// of the file with valid records after it. Recovery refuses to
// proceed — see the package comment.
var ErrCorrupt = errors.New("wal: corrupt journal")

// Record is one journaled charge.
type Record struct {
	// Seq is the strictly increasing record sequence, global across
	// sessions and preserved across rotations.
	Seq uint64 `json:"seq"`
	// Time is a wall-clock audit stamp (UnixNano); it does not affect
	// replay.
	Time int64 `json:"time,omitempty"`
	// Session names the accountant session charged.
	Session string `json:"session"`
	// Entry is the ledger entry exactly as the session recorded it.
	Entry accounting.Entry `json:"entry"`
}

// Writer is an open WAL accepting appends. It implements
// accounting.Journal, so it plugs directly into Ledger.SetJournal.
type Writer struct {
	mu    sync.Mutex
	fsys  faultfs.FS
	clock faultfs.Clock
	path  string
	f     faultfs.File // guarded by mu
	buf   []byte       // guarded by mu

	lastSeq     uint64              // guarded by mu
	outstanding map[uint64]struct{} // guarded by mu; appended, not yet Applied
	appends     int64               // guarded by mu

	// appendLat/fsyncLat, when set via Instrument, record per-append
	// latency: fsyncLat times the Sync alone (the durability cost every
	// charge pays), appendLat the whole frame write + fsync. Both are
	// nil-safe no-ops when uninstrumented.
	appendLat *obs.Histogram // guarded by mu
	fsyncLat  *obs.Histogram // guarded by mu
}

// Instrument attaches latency histograms to the journal: appendLat
// observes each Append end to end (frame encode + write + fsync),
// fsyncLat the fsync alone. Pass nil to leave a hook unobserved.
func (w *Writer) Instrument(appendLat, fsyncLat *obs.Histogram) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.appendLat = appendLat
	w.fsyncLat = fsyncLat
}

// RecoverResult is what Recover found on disk.
type RecoverResult struct {
	// Records are the valid journal records, in order.
	Records []Record
	// Torn reports that a torn/truncated tail frame was dropped.
	Torn bool
	// DroppedBytes is the size of the dropped tail (0 when clean).
	DroppedBytes int
}

// Recover replays the WAL at path (a missing file is an empty
// journal), repairs a torn tail by rewriting the valid prefix, and
// returns an open Writer positioned after the last valid record.
// lastSeq seeds the sequence counter when the journal is empty (the
// snapshot's low-water mark); otherwise the last record's sequence
// wins if larger. Mid-file corruption returns ErrCorrupt and no
// Writer.
func Recover(fsys faultfs.FS, clock faultfs.Clock, path string, lastSeq uint64) (*Writer, *RecoverResult, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	if clock == nil {
		clock = faultfs.WallClock{}
	}
	res := &RecoverResult{}
	blob, err := fsys.ReadFile(path)
	exists := true
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, nil, fmt.Errorf("wal: read %s: %w", path, err)
		}
		exists = false
		blob = nil
	}
	validLen := 0
	if exists {
		var records []Record
		records, validLen, err = parse(blob, path)
		if err != nil {
			return nil, nil, err
		}
		res.Records = records
		res.Torn = validLen < len(blob)
		res.DroppedBytes = len(blob) - validLen
		if n := len(records); n > 0 && records[n-1].Seq > lastSeq {
			lastSeq = records[n-1].Seq
		}
	}
	w := &Writer{
		fsys: fsys, clock: clock, path: path,
		lastSeq:     lastSeq,
		outstanding: map[uint64]struct{}{},
	}
	switch {
	case !exists:
		// Fresh journal: start it atomically.
		if err := w.reset(nil); err != nil {
			return nil, nil, err
		}
	case res.Torn || validLen < len(magic):
		// Drop the torn tail (or the torn header of a journal that
		// crashed at birth) by rewriting the valid records into a
		// fresh file swapped in atomically; appending after garbage
		// would poison every future recovery.
		if err := w.reset(res.Records); err != nil {
			return nil, nil, err
		}
	default:
		f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
		}
		w.f = f
	}
	return w, res, nil
}

// parse walks the frames of blob, returning the valid records and the
// byte length of the valid prefix. Mid-file corruption (a bad frame
// with a valid frame somewhere after it) is ErrCorrupt.
func parse(blob []byte, path string) ([]Record, int, error) {
	if len(blob) < len(magic) {
		// Shorter than the header: a journal that crashed at birth.
		// A strict prefix of the magic (including empty) is the torn
		// header; anything else is not a WAL at all.
		if string(blob) == magic[:len(blob)] {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	if string(blob[:len(magic)]) != magic {
		return nil, 0, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	var records []Record
	off := len(magic)
	var lastSeq uint64
	for off < len(blob) {
		rec, n, ok := parseFrame(blob[off:])
		if !ok {
			break
		}
		if rec.Seq <= lastSeq {
			// Sequence must be strictly increasing; a regression is
			// structural damage, not a torn tail.
			return nil, 0, fmt.Errorf("%w: %s: sequence %d after %d at offset %d",
				ErrCorrupt, path, rec.Seq, lastSeq, off)
		}
		lastSeq = rec.Seq
		records = append(records, rec)
		off += n
	}
	if off < len(blob) {
		// Bad frame. If any complete valid frame parses anywhere in
		// the remainder, this is mid-file damage, not a torn append.
		rest := blob[off:]
		for i := 1; i+frameHeader <= len(rest); i++ {
			if _, _, ok := parseFrame(rest[i:]); ok {
				return nil, 0, fmt.Errorf("%w: %s: damaged frame at offset %d with valid records after it",
					ErrCorrupt, path, off)
			}
		}
	}
	return records, off, nil
}

// parseFrame decodes one frame from the head of b, returning the
// record, the frame's total size, and whether it was valid.
func parseFrame(b []byte) (Record, int, bool) {
	var rec Record
	if len(b) < frameHeader {
		return rec, 0, false
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	crc := binary.LittleEndian.Uint32(b[4:8])
	if plen == 0 || plen > maxPayload || frameHeader+int(plen) > len(b) {
		return rec, 0, false
	}
	payload := b[frameHeader : frameHeader+int(plen)]
	if crc32.Checksum(payload, castagnoli) != crc {
		return rec, 0, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, 0, false
	}
	if err := rec.Entry.Validate(); err != nil || rec.Seq == 0 {
		return rec, 0, false
	}
	return rec, frameHeader + int(plen), true
}

// frameLocked encodes one record into buf (reused across appends);
// the caller must hold w.mu.
func (w *Writer) frameLocked(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: marshal record: %w", err)
	}
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds the frame limit", len(payload))
	}
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.Checksum(payload, castagnoli))
	w.buf = append(w.buf, payload...)
	return w.buf, nil
}

// Append journals one charge: frame, write, fsync. It returns only
// after the record is durable — the accounting.Journal contract the
// charge-ahead invariant rests on.
func (w *Writer) Append(session string, e accounting.Entry) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, errors.New("wal: writer is closed")
	}
	rec := Record{
		Seq:     w.lastSeq + 1,
		Time:    w.clock.Now().UnixNano(),
		Session: session,
		Entry:   e,
	}
	frame, err := w.frameLocked(rec)
	if err != nil {
		return 0, err
	}
	// Latency is measured with the real clock, not w.clock: the clock
	// seam exists so fault-injection tests control the *audit stamps*,
	// while the histograms measure actual wall time spent in the
	// filesystem.
	start := time.Now()
	if _, err := w.f.Write(frame); err != nil {
		// The file now may hold a torn frame; recovery truncates it.
		// Appending more after a failed write would risk mid-file
		// garbage, so the writer shuts itself down.
		w.closeLocked()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	syncStart := time.Now()
	if err := w.f.Sync(); err != nil {
		w.closeLocked()
		return 0, fmt.Errorf("wal: fsync: %w", err)
	}
	now := time.Now()
	w.fsyncLat.Observe(now.Sub(syncStart).Seconds())
	w.appendLat.Observe(now.Sub(start).Seconds())
	w.lastSeq = rec.Seq
	w.outstanding[rec.Seq] = struct{}{}
	w.appends++
	return rec.Seq, nil
}

// Applied acknowledges that the in-memory ledger state reflects the
// record (accounting.Journal).
func (w *Writer) Applied(seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.outstanding, seq)
}

// LowWater returns the highest sequence S such that every record with
// seq ≤ S has been Applied — the only sequence a snapshot may safely
// claim to include. With appends in flight it trails LastSeq, so a
// racing snapshot over-counts on replay rather than under-counts.
func (w *Writer) LowWater() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	low := w.lastSeq
	for seq := range w.outstanding {
		if seq-1 < low {
			low = seq - 1
		}
	}
	return low
}

// LastSeq returns the sequence of the newest durable record.
func (w *Writer) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// Appends returns the number of records appended by this writer since
// open (stats; replayed records are not included).
func (w *Writer) Appends() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends
}

// Path returns the journal's file path.
func (w *Writer) Path() string { return w.path }

// Rotate truncates the journal after a snapshot: records with
// seq ≤ keepAfter (the snapshot's low-water mark) are dropped and any
// newer records are carried into a fresh file, swapped in atomically
// (temp + rename + parent-directory fsync). A crash at any point
// leaves either the old journal (replay dedups by sequence against
// the snapshot) or the new one — never a torn mixture.
func (w *Writer) Rotate(keepAfter uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("wal: writer is closed")
	}
	blob, err := w.fsys.ReadFile(w.path)
	if err != nil {
		return fmt.Errorf("wal: rotate read: %w", err)
	}
	records, _, err := parse(blob, w.path)
	if err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	var keep []Record
	for _, rec := range records {
		if rec.Seq > keepAfter {
			keep = append(keep, rec)
		}
	}
	return w.resetLocked(keep)
}

// reset writes a fresh journal holding records and reopens the writer
// on it (atomic swap).
func (w *Writer) reset(records []Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.resetLocked(records)
}

func (w *Writer) resetLocked(records []Record) error {
	w.closeLocked()
	tmp := w.path + ".tmp"
	f, err := w.fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	write := func() error {
		if _, err := f.Write([]byte(magic)); err != nil {
			return err
		}
		for _, rec := range records {
			frame, err := w.frameLocked(rec)
			if err != nil {
				return err
			}
			if _, err := f.Write(frame); err != nil {
				return err
			}
		}
		return f.Sync()
	}
	if err := write(); err != nil {
		f.Close()
		w.fsys.Remove(tmp)
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := f.Close(); err != nil {
		w.fsys.Remove(tmp)
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := w.fsys.Rename(tmp, w.path); err != nil {
		w.fsys.Remove(tmp)
		return fmt.Errorf("wal: reset: %w", err)
	}
	// Sync the parent directory so the swap itself survives a crash;
	// without it the rename can roll back and resurrect dropped
	// records — an over-count, but a needless one.
	if err := w.fsys.SyncDir(filepath.Dir(w.path)); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	nf, err := w.fsys.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reset reopen: %w", err)
	}
	w.f = nf
	return nil
}

func (w *Writer) closeLocked() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
}

// Close releases the file handle; further appends fail.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closeLocked()
	return nil
}
