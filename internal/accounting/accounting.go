// Package accounting is an RDP/zCDP privacy ledger for sequences of
// Pufferfish releases, following Pierquin, Bellet, Tommasi, Boussard,
// "Rényi Pufferfish Privacy" (arXiv:2312.13985).
//
// # Why a ledger
//
// Theorem 4.4 of Song–Wang–Chaudhuri only gives linear composition: K
// releases at ε_1 … ε_K (same active quilts) satisfy K·max_k ε_k
// Pufferfish privacy. Pierquin et al. show the same W∞ shift-reduction
// bound that calibrates the Gaussian backend of internal/noise also
// yields a Rényi guarantee
//
//	ε_α = α·W∞² / (2σ²)                       (Gaussian, every α > 1)
//
// that composes *additively in the α-divergence*: the accumulated
// curve of K releases is the pointwise sum of the per-release curves,
// and converts back to an (ε, δ) statement via
//
//	ε(δ) = min_α [ ε_α + log(1/δ)/(α − 1) ].
//
// For K homogeneous Gaussian releases this grows like K·ρ + 2√(K·ρ·
// log(1/δ)) — √K-ish, quadratically tighter than the linear K·ε of
// Theorem 4.4 once K is large.
//
// Pure-ε releases (the Laplace quilt mechanisms) enter the same curve
// through the standard pure-ε → RDP conversion
//
//	ε_α = min(ε, α·ε²/2)
//
// (the α·ε²/2 branch is the ½ε²-zCDP bound of Bun–Steinke,
// Proposition 1.4; the ε branch is D_α ≤ D_∞, both per secret-pair
// direction, which the symmetric Pufferfish guarantee provides). On
// top of the curve the ledger always retains the linear Theorem 4.4
// statement (K·max ε at δ = Σδ_i), and Epsilon reports the smaller of
// the two applicable bounds — so linear accounting is the exact
// degenerate case: for a single pure release, Epsilon(δ) = ε.
//
// # Composition caveat
//
// Pufferfish in general does not compose (Section 4.3 of the source
// paper). Every composition statement here — linear and Rényi alike —
// inherits Theorem 4.4's shared-active-quilt hypothesis: all releases
// must use the same quilt sets (core.Composition enforces this) or be
// calibrated by a W∞ bound over the same instantiation (the
// Kantorovich releases). The ledger records what its caller feeds it;
// upholding the hypothesis is the caller's contract, exactly as for
// Composition.TotalEpsilon.
//
// # Mechanics
//
// The accumulated curve is maintained on a fixed α-grid, updated in
// O(grid) per Add; Epsilon(δ) is an O(grid) scan whose result is
// memoized per δ and invalidated on Add, so the optimization runs once
// per (ledger state, δ). The Ledger is safe for concurrent use — it is
// the per-session object a long-lived server keeps across requests —
// and serializes losslessly through Snapshot/Restore (entries only;
// the grid vector is recomputed).
package accounting

import (
	"fmt"
	"math"
	"sync"
)

// Entry kinds.
const (
	// KindPure is an ε-Pufferfish release (Laplace noise, exponential
	// mechanism, or any pure-ε quilt release).
	KindPure = "pure"
	// KindGaussian is an (ε, δ)-style Gaussian release whose Rényi
	// curve ε_α = α·ρ is exact (ρ = Σ_coords W∞²/(2σ²)).
	KindGaussian = "gaussian"
)

// DefaultDelta is the δ at which ledgers report their headline (ε, δ)
// statement when the caller does not configure one.
const DefaultDelta = 1e-5

// Entry is one recorded release: the validated inputs of Add, and the
// unit of Snapshot persistence.
type Entry struct {
	// Kind is KindPure or KindGaussian.
	Kind string `json:"kind"`
	// Mechanism optionally labels the release ("mqm-exact",
	// "kantorovich", …) for reports; it does not affect accounting.
	Mechanism string `json:"mechanism,omitempty"`
	// Eps is the release's configured privacy parameter ε.
	Eps float64 `json:"eps"`
	// Delta is the release's configured δ (0 for pure releases).
	Delta float64 `json:"delta,omitempty"`
	// Rho is the release's zCDP parameter (Gaussian only): the Rényi
	// curve is ε_α = α·Rho.
	Rho float64 `json:"rho,omitempty"`
}

// EpsAlpha evaluates the entry's Rényi curve at order α > 1.
func (e Entry) EpsAlpha(alpha float64) float64 {
	switch e.Kind {
	case KindGaussian:
		return alpha * e.Rho
	default: // KindPure — validate rejects anything else
		return math.Min(e.Eps, alpha*e.Eps*e.Eps/2)
	}
}

// validate rejects entries that no release path could have produced.
func (e Entry) validate() error {
	switch e.Kind {
	case KindPure:
		if e.Rho != 0 {
			return fmt.Errorf("accounting: pure entry carries ρ = %v", e.Rho)
		}
		if e.Delta != 0 {
			return fmt.Errorf("accounting: pure entry carries δ = %v", e.Delta)
		}
	case KindGaussian:
		if !(e.Rho > 0) || math.IsInf(e.Rho, 1) {
			return fmt.Errorf("accounting: gaussian entry has invalid ρ = %v", e.Rho)
		}
		if !(e.Delta > 0 && e.Delta < 1) {
			return fmt.Errorf("accounting: gaussian entry has invalid δ = %v", e.Delta)
		}
	default:
		return fmt.Errorf("accounting: unknown entry kind %q", e.Kind)
	}
	if !(e.Eps > 0) || math.IsInf(e.Eps, 1) {
		return fmt.Errorf("accounting: entry has invalid ε = %v", e.Eps)
	}
	return nil
}

// CurvePoint is one sample of a Rényi curve, for reports.
type CurvePoint struct {
	Alpha float64 `json:"alpha"`
	Eps   float64 `json:"eps"`
}

// ReportAlphas is the small α sample reports attach per release; the
// conversion itself runs on the much finer internal grid.
var ReportAlphas = []float64{2, 4, 8, 16, 32, 64}

// EntryCurve samples an entry's Rényi curve at the given orders.
func EntryCurve(e Entry, alphas []float64) []CurvePoint {
	pts := make([]CurvePoint, len(alphas))
	for i, a := range alphas {
		pts[i] = CurvePoint{Alpha: a, Eps: e.EpsAlpha(a)}
	}
	return pts
}

// defaultAlphas is the conversion grid: dense where the Gaussian
// optimum usually lands (small α), geometric beyond so pure-dominated
// curves (capped at Σε) can ride log(1/δ)/(α−1) down to nothing.
var defaultAlphas = func() []float64 {
	var as []float64
	for a := 1.25; a <= 10; a += 0.25 {
		as = append(as, a)
	}
	for a := 10.5; a <= 64; a += 0.5 {
		as = append(as, a)
	}
	for a := 96.0; a <= 1<<20; a *= 1.5 {
		as = append(as, a)
	}
	return as
}()

// Ledger accumulates per-release Rényi curves and answers (ε, δ)
// queries against the running total. The zero value is not usable;
// construct with NewLedger.
//
// The ledger retains one Entry per release so snapshots are a faithful
// audit trail (Restore re-validates and replays them). Memory and
// snapshot size therefore grow by a few words per release; a session
// expected to account millions of releases should be rotated (snapshot
// + fresh ledger) rather than grown forever.
type Ledger struct {
	mu       sync.Mutex
	delta    float64 // headline δ for TotalEpsilon
	entries  []Entry
	epsAlpha []float64 // accumulated curve on defaultAlphas
	maxEps   float64
	deltaSum float64
	memo     map[float64]float64 // δ → optimized ε, cleared on Add
}

// NewLedger returns an empty ledger whose headline TotalEpsilon
// reports ε at the given δ (δ <= 0 selects DefaultDelta).
func NewLedger(delta float64) *Ledger {
	if !(delta > 0 && delta < 1) {
		delta = DefaultDelta
	}
	return &Ledger{
		delta:    delta,
		epsAlpha: make([]float64, len(defaultAlphas)),
		memo:     map[float64]float64{},
	}
}

// Add records one release. Invalid entries are rejected before any
// state changes, so a ledger never holds a partially applied release.
func (l *Ledger) Add(e Entry) error {
	if err := e.validate(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
	for i, a := range defaultAlphas {
		l.epsAlpha[i] += e.EpsAlpha(a)
	}
	if e.Eps > l.maxEps {
		l.maxEps = e.Eps
	}
	l.deltaSum += e.Delta
	clear(l.memo)
	return nil
}

// AddPure records an ε-Pufferfish release.
func (l *Ledger) AddPure(mechanism string, eps float64) error {
	return l.Add(Entry{Kind: KindPure, Mechanism: mechanism, Eps: eps})
}

// AddGaussian records a Gaussian release with zCDP parameter rho
// (noise.GaussianRho per coordinate, summed over coordinates) that was
// calibrated to the per-release target (eps, delta).
func (l *Ledger) AddGaussian(mechanism string, rho, eps, delta float64) error {
	return l.Add(Entry{Kind: KindGaussian, Mechanism: mechanism, Eps: eps, Delta: delta, Rho: rho})
}

// Count returns the number of recorded releases.
func (l *Ledger) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Delta returns the ledger's headline δ.
func (l *Ledger) Delta() float64 { return l.delta }

// LinearEpsilon returns the Theorem 4.4 linear bound K·max_k ε_k over
// the recorded releases (0 before any). For ledgers holding Gaussian
// entries the bound's δ side is DeltaSum.
func (l *Ledger) LinearEpsilon() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.linearLocked()
}

func (l *Ledger) linearLocked() float64 {
	return float64(len(l.entries)) * l.maxEps
}

// DeltaSum returns Σ_k δ_k over the recorded releases — the δ at which
// the linear bound holds.
func (l *Ledger) DeltaSum() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.deltaSum
}

// Rho returns the accumulated zCDP parameter of the Gaussian entries
// (the slope of their joint curve).
func (l *Ledger) Rho() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var rho float64
	for _, e := range l.entries {
		rho += e.Rho
	}
	return rho
}

// Entries returns a copy of the recorded releases in order.
func (l *Ledger) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Curve samples the accumulated Rényi curve at the given orders (the
// pointwise sum of the per-release curves).
func (l *Ledger) Curve(alphas []float64) []CurvePoint {
	l.mu.Lock()
	defer l.mu.Unlock()
	pts := make([]CurvePoint, len(alphas))
	for i, a := range alphas {
		var sum float64
		for _, e := range l.entries {
			sum += e.EpsAlpha(a)
		}
		pts[i] = CurvePoint{Alpha: a, Eps: sum}
	}
	return pts
}

// Epsilon converts the accumulated curve to an ε valid at the given δ:
// the α-grid minimum of ε_α + log(1/δ)/(α−1), further capped by the
// linear Theorem 4.4 bound whenever that bound's δ budget (DeltaSum)
// fits under δ — which makes a single pure release report exactly its
// ε, the linear degenerate case. Results are memoized per δ until the
// next Add. An empty ledger reports 0; an invalid δ reports an error.
func (l *Ledger) Epsilon(delta float64) (float64, error) {
	if !(delta > 0 && delta < 1) {
		return 0, fmt.Errorf("accounting: δ = %v outside (0, 1)", delta)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 {
		return 0, nil
	}
	if eps, ok := l.memo[delta]; ok {
		return eps, nil
	}
	logInvDelta := math.Log(1 / delta)
	eps := math.Inf(1)
	for i, a := range defaultAlphas {
		if v := l.epsAlpha[i] + logInvDelta/(a-1); v < eps {
			eps = v
		}
	}
	if l.deltaSum <= delta {
		eps = math.Min(eps, l.linearLocked())
	}
	l.memo[delta] = eps
	return eps, nil
}

// TotalEpsilon reports Epsilon at the ledger's headline δ, satisfying
// core.Accountant so a Ledger plugs into core.Composition. The
// error-free signature is safe: the headline δ is validated at
// construction.
func (l *Ledger) TotalEpsilon() float64 {
	eps, _ := l.Epsilon(l.delta)
	return eps
}

// RecordPure satisfies core.Accountant. The caller (Composition)
// records only releases that already passed ε validation and
// succeeded; an entry the ledger would reject at that point is a
// caller bug, reported by panic like any other broken invariant.
func (l *Ledger) RecordPure(eps float64) {
	if err := l.AddPure("", eps); err != nil {
		panic(fmt.Sprintf("accounting: RecordPure(%v): %v", eps, err))
	}
}

// Snapshot is the JSON image of a ledger: the headline δ and the
// entries, from which the curve state is reconstructed on Restore.
type Snapshot struct {
	Delta   float64 `json:"delta"`
	Entries []Entry `json:"entries,omitempty"`
}

// Snapshot captures the ledger's state.
func (l *Ledger) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	entries := make([]Entry, len(l.entries))
	copy(entries, l.entries)
	return Snapshot{Delta: l.delta, Entries: entries}
}

// Restore rebuilds a ledger from a snapshot, re-validating every entry
// so a corrupted or hand-edited file cannot plant accounting state no
// release path could have produced.
func Restore(s Snapshot) (*Ledger, error) {
	l := NewLedger(s.Delta)
	for i, e := range s.Entries {
		if err := l.Add(e); err != nil {
			return nil, fmt.Errorf("accounting: snapshot entry %d: %w", i, err)
		}
	}
	return l, nil
}
