// Package accounting is an RDP/zCDP privacy ledger for sequences of
// Pufferfish releases, following Pierquin, Bellet, Tommasi, Boussard,
// "Rényi Pufferfish Privacy" (arXiv:2312.13985).
//
// # Why a ledger
//
// Theorem 4.4 of Song–Wang–Chaudhuri only gives linear composition: K
// releases at ε_1 … ε_K (same active quilts) satisfy K·max_k ε_k
// Pufferfish privacy. Pierquin et al. show the same W∞ shift-reduction
// bound that calibrates the Gaussian backend of internal/noise also
// yields a Rényi guarantee
//
//	ε_α = α·W∞² / (2σ²)                       (Gaussian, every α > 1)
//
// that composes *additively in the α-divergence*: the accumulated
// curve of K releases is the pointwise sum of the per-release curves,
// and converts back to an (ε, δ) statement via
//
//	ε(δ) = min_α [ ε_α + log(1/δ)/(α − 1) ].
//
// For K homogeneous Gaussian releases this grows like K·ρ + 2√(K·ρ·
// log(1/δ)) — √K-ish, quadratically tighter than the linear K·ε of
// Theorem 4.4 once K is large.
//
// Pure-ε releases (the Laplace quilt mechanisms) enter the same curve
// through the standard pure-ε → RDP conversion
//
//	ε_α = min(ε, α·ε²/2)
//
// (the α·ε²/2 branch is the ½ε²-zCDP bound of Bun–Steinke,
// Proposition 1.4; the ε branch is D_α ≤ D_∞, both per secret-pair
// direction, which the symmetric Pufferfish guarantee provides). On
// top of the curve the ledger always retains the linear Theorem 4.4
// statement (K·max ε at δ = Σδ_i), and Epsilon reports the smaller of
// the two applicable bounds — so linear accounting is the exact
// degenerate case: for a single pure release, Epsilon(δ) = ε.
//
// # Composition caveat
//
// Pufferfish in general does not compose (Section 4.3 of the source
// paper). Every composition statement here — linear and Rényi alike —
// inherits Theorem 4.4's shared-active-quilt hypothesis: all releases
// must use the same quilt sets (core.Composition enforces this) or be
// calibrated by a W∞ bound over the same instantiation (the
// Kantorovich releases). The ledger records what its caller feeds it;
// upholding the hypothesis is the caller's contract, exactly as for
// Composition.TotalEpsilon.
//
// # Mechanics
//
// The accumulated curve is maintained on a fixed α-grid, updated in
// O(grid) per Add; Epsilon(δ) is an O(grid) scan whose result is
// memoized per δ and invalidated on Add, so the optimization runs once
// per (ledger state, δ). The Ledger is safe for concurrent use — it is
// the per-session object a long-lived server keeps across requests —
// and serializes losslessly through Snapshot/Restore (entries only;
// the grid vector is recomputed).
package accounting

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Entry kinds.
const (
	// KindPure is an ε-Pufferfish release (Laplace noise, exponential
	// mechanism, or any pure-ε quilt release).
	KindPure = "pure"
	// KindGaussian is an (ε, δ)-style Gaussian release whose Rényi
	// curve ε_α = α·ρ is exact (ρ = Σ_coords W∞²/(2σ²)).
	KindGaussian = "gaussian"
)

// DefaultDelta is the δ at which ledgers report their headline (ε, δ)
// statement when the caller does not configure one.
const DefaultDelta = 1e-5

// Entry is one recorded release: the validated inputs of Add, and the
// unit of Snapshot persistence.
type Entry struct {
	// Kind is KindPure or KindGaussian.
	Kind string `json:"kind"`
	// Mechanism optionally labels the release ("mqm-exact",
	// "kantorovich", …) for reports; it does not affect accounting.
	Mechanism string `json:"mechanism,omitempty"`
	// Eps is the release's configured privacy parameter ε.
	Eps float64 `json:"eps"`
	// Delta is the release's configured δ (0 for pure releases).
	Delta float64 `json:"delta,omitempty"`
	// Rho is the release's zCDP parameter (Gaussian only): the Rényi
	// curve is ε_α = α·Rho.
	Rho float64 `json:"rho,omitempty"`
}

// EpsAlpha evaluates the entry's Rényi curve at order α > 1.
func (e Entry) EpsAlpha(alpha float64) float64 {
	switch e.Kind {
	case KindGaussian:
		return alpha * e.Rho
	default: // KindPure — validate rejects anything else
		return math.Min(e.Eps, alpha*e.Eps*e.Eps/2)
	}
}

// Validate rejects entries that no release path could have produced —
// the guard Restore and the WAL replay share so corrupted or
// hand-edited persistence can never plant impossible accounting state.
func (e Entry) Validate() error { return e.validate() }

// validate rejects entries that no release path could have produced.
func (e Entry) validate() error {
	switch e.Kind {
	case KindPure:
		//privlint:allow floatcompare zero is the exact unset sentinel for a pure entry
		if e.Rho != 0 {
			return fmt.Errorf("accounting: pure entry carries ρ = %v", e.Rho)
		}
		//privlint:allow floatcompare zero is the exact unset sentinel for a pure entry
		if e.Delta != 0 {
			return fmt.Errorf("accounting: pure entry carries δ = %v", e.Delta)
		}
	case KindGaussian:
		if !(e.Rho > 0) || math.IsInf(e.Rho, 1) {
			return fmt.Errorf("accounting: gaussian entry has invalid ρ = %v", e.Rho)
		}
		if !(e.Delta > 0 && e.Delta < 1) {
			return fmt.Errorf("accounting: gaussian entry has invalid δ = %v", e.Delta)
		}
	default:
		return fmt.Errorf("accounting: unknown entry kind %q", e.Kind)
	}
	if !(e.Eps > 0) || math.IsInf(e.Eps, 1) {
		return fmt.Errorf("accounting: entry has invalid ε = %v", e.Eps)
	}
	return nil
}

// CurvePoint is one sample of a Rényi curve, for reports.
type CurvePoint struct {
	Alpha float64 `json:"alpha"`
	Eps   float64 `json:"eps"`
}

// ReportAlphas is the small α sample reports attach per release; the
// conversion itself runs on the much finer internal grid.
var ReportAlphas = []float64{2, 4, 8, 16, 32, 64}

// EntryCurve samples an entry's Rényi curve at the given orders.
func EntryCurve(e Entry, alphas []float64) []CurvePoint {
	pts := make([]CurvePoint, len(alphas))
	for i, a := range alphas {
		pts[i] = CurvePoint{Alpha: a, Eps: e.EpsAlpha(a)}
	}
	return pts
}

// defaultAlphas is the conversion grid: dense where the Gaussian
// optimum usually lands (small α), geometric beyond so pure-dominated
// curves (capped at Σε) can ride log(1/δ)/(α−1) down to nothing.
var defaultAlphas = func() []float64 {
	var as []float64
	for a := 1.25; a <= 10; a += 0.25 {
		as = append(as, a)
	}
	for a := 10.5; a <= 64; a += 0.5 {
		as = append(as, a)
	}
	for a := 96.0; a <= 1<<20; a *= 1.5 {
		as = append(as, a)
	}
	return as
}()

// ErrCeilingExceeded marks a charge refused by a budget ceiling: the
// release, had it been recorded, would have pushed the ledger's
// cumulative ε past the configured maximum. Callers match it with
// errors.Is to map the refusal onto a distinct status (the serving
// layer returns 403, never 500: the request was understood and is
// permanently refused — retrying cannot help).
var ErrCeilingExceeded = errors.New("accounting: budget ceiling exceeded")

// ErrJournal marks a charge refused because the write-ahead journal
// could not make it durable. The safe direction: a charge that cannot
// be journaled is not applied and the release must not go out.
var ErrJournal = errors.New("accounting: journal append failed")

// Journal is the write-ahead hook a Ledger charges through. Append
// must make (session, entry) durable — fsync'd — before returning;
// the ledger mutates its state only after Append succeeds, so a crash
// at any point can over-count spend but never under-count it (the
// charge-ahead invariant). Applied(seq) acknowledges that the
// in-memory state now reflects the appended record; journals use it
// to track the low-water sequence a snapshot may safely truncate to.
type Journal interface {
	Append(session string, e Entry) (seq uint64, err error)
	Applied(seq uint64)
}

// Ledger accumulates per-release Rényi curves and answers (ε, δ)
// queries against the running total. The zero value is not usable;
// construct with NewLedger.
//
// The ledger retains one Entry per release so snapshots are a faithful
// audit trail (Restore re-validates and replays them). Memory and
// snapshot size therefore grow by a few words per release; a session
// expected to account millions of releases should be rotated (snapshot
// + fresh ledger) rather than grown forever.
type Ledger struct {
	mu       sync.Mutex
	delta    float64             // headline δ for TotalEpsilon; fixed at construction
	entries  []Entry             // guarded by mu
	epsAlpha []float64           // guarded by mu; accumulated curve on defaultAlphas
	maxEps   float64             // guarded by mu
	deltaSum float64             // guarded by mu
	memo     map[float64]float64 // guarded by mu; δ → optimized ε, cleared on Add

	// ceilEps/ceilDelta, when ceilEps > 0, are the hard budget
	// ceiling: Add refuses (ErrCeilingExceeded) any entry that would
	// push Epsilon(ceilDelta) past ceilEps. The check runs before the
	// journal append and before any mutation, so a refused release is
	// never charged anywhere.
	ceilEps   float64 // guarded by mu
	ceilDelta float64 // guarded by mu

	// journal, when set, receives every entry before it is applied
	// (charge-ahead; see Journal). session labels the records.
	journal Journal // guarded by mu
	session string  // guarded by mu
}

// NewLedger returns an empty ledger whose headline TotalEpsilon
// reports ε at the given δ (δ <= 0 selects DefaultDelta).
func NewLedger(delta float64) *Ledger {
	if !(delta > 0 && delta < 1) {
		delta = DefaultDelta
	}
	return &Ledger{
		delta:    delta,
		epsAlpha: make([]float64, len(defaultAlphas)),
		memo:     map[float64]float64{},
	}
}

// SetCeiling installs a hard budget ceiling: every later Add (and
// CheckCharge) refuses entries that would push the cumulative
// Epsilon(delta) past eps. eps = 0 clears the ceiling; delta <= 0
// selects the ledger's headline δ. Installing a ceiling the ledger
// already exceeds is not an error — it simply refuses all further
// charges, which is exactly what a restored-after-crash session that
// overshot its budget must do.
func (l *Ledger) SetCeiling(eps, delta float64) error {
	//privlint:allow floatcompare eps = 0 is the exact clear-the-ceiling sentinel
	if eps == 0 {
		l.mu.Lock()
		defer l.mu.Unlock()
		l.ceilEps, l.ceilDelta = 0, 0
		return nil
	}
	if !(eps > 0) || math.IsInf(eps, 1) {
		return fmt.Errorf("accounting: invalid ceiling ε = %v", eps)
	}
	if delta <= 0 {
		delta = l.delta
	}
	if !(delta > 0 && delta < 1) {
		return fmt.Errorf("accounting: invalid ceiling δ = %v", delta)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ceilEps, l.ceilDelta = eps, delta
	return nil
}

// Ceiling returns the configured ceiling (0, 0 when none).
func (l *Ledger) Ceiling() (eps, delta float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ceilEps, l.ceilDelta
}

// SetJournal routes every subsequent charge through the write-ahead
// journal under the given session label (see Journal). It must be
// installed before the ledger starts taking live traffic — typically
// right after construction or Restore.
func (l *Ledger) SetJournal(j Journal, session string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.journal = j
	l.session = session
}

// CheckCharge simulates recording the given entries on top of the
// current state and reports ErrCeilingExceeded if the result would
// breach the ceiling (nil when no ceiling is set). It never mutates
// the ledger — the serving layer runs it before any scoring work so a
// doomed release is refused before it costs anything. Concurrent
// charges can still win the race between CheckCharge and Add; Add
// re-checks authoritatively.
func (l *Ledger) CheckCharge(entries ...Entry) error {
	for _, e := range entries {
		if err := e.validate(); err != nil {
			return err
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkCeilingLocked(entries...)
}

// checkCeilingLocked simulates entries against the ceiling without
// mutating state.
func (l *Ledger) checkCeilingLocked(entries ...Entry) error {
	if !(l.ceilEps > 0) {
		return nil
	}
	cand := make([]float64, len(defaultAlphas))
	copy(cand, l.epsAlpha)
	n, maxEps, deltaSum := len(l.entries), l.maxEps, l.deltaSum
	for _, e := range entries {
		for i, a := range defaultAlphas {
			cand[i] += e.EpsAlpha(a)
		}
		if e.Eps > maxEps {
			maxEps = e.Eps
		}
		deltaSum += e.Delta
		n++
	}
	if eps := epsilonOf(cand, n, maxEps, deltaSum, l.ceilDelta); eps > l.ceilEps {
		return fmt.Errorf("%w: charge would raise ε(δ=%g) to %g over ceiling %g (%d releases recorded)",
			ErrCeilingExceeded, l.ceilDelta, eps, l.ceilEps, len(l.entries))
	}
	return nil
}

// Add records one release. Invalid entries and entries over the
// configured ceiling are rejected before any state changes — and
// before the journal append — so a ledger never holds (or journals) a
// partially applied or refused release. When a journal is installed,
// the entry is made durable first and the in-memory state mutates
// only after the append succeeds: a crash between the two over-counts
// the spend on replay, never under-counts it.
func (l *Ledger) Add(e Entry) error {
	if err := e.validate(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkCeilingLocked(e); err != nil {
		return err
	}
	var seq uint64
	if l.journal != nil {
		var err error
		seq, err = l.journal.Append(l.session, e)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	l.entries = append(l.entries, e)
	for i, a := range defaultAlphas {
		l.epsAlpha[i] += e.EpsAlpha(a)
	}
	if e.Eps > l.maxEps {
		l.maxEps = e.Eps
	}
	l.deltaSum += e.Delta
	clear(l.memo)
	if l.journal != nil {
		l.journal.Applied(seq)
	}
	return nil
}

// AddPure records an ε-Pufferfish release.
func (l *Ledger) AddPure(mechanism string, eps float64) error {
	return l.Add(Entry{Kind: KindPure, Mechanism: mechanism, Eps: eps})
}

// AddGaussian records a Gaussian release with zCDP parameter rho
// (noise.GaussianRho per coordinate, summed over coordinates) that was
// calibrated to the per-release target (eps, delta).
func (l *Ledger) AddGaussian(mechanism string, rho, eps, delta float64) error {
	return l.Add(Entry{Kind: KindGaussian, Mechanism: mechanism, Eps: eps, Delta: delta, Rho: rho})
}

// Count returns the number of recorded releases.
func (l *Ledger) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Delta returns the ledger's headline δ.
func (l *Ledger) Delta() float64 { return l.delta }

// LinearEpsilon returns the Theorem 4.4 linear bound K·max_k ε_k over
// the recorded releases (0 before any). For ledgers holding Gaussian
// entries the bound's δ side is DeltaSum.
func (l *Ledger) LinearEpsilon() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.linearLocked()
}

func (l *Ledger) linearLocked() float64 {
	return float64(len(l.entries)) * l.maxEps
}

// DeltaSum returns Σ_k δ_k over the recorded releases — the δ at which
// the linear bound holds.
func (l *Ledger) DeltaSum() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.deltaSum
}

// Rho returns the accumulated zCDP parameter of the Gaussian entries
// (the slope of their joint curve).
func (l *Ledger) Rho() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var rho float64
	for _, e := range l.entries {
		rho += e.Rho
	}
	return rho
}

// Entries returns a copy of the recorded releases in order.
func (l *Ledger) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Curve samples the accumulated Rényi curve at the given orders (the
// pointwise sum of the per-release curves).
func (l *Ledger) Curve(alphas []float64) []CurvePoint {
	l.mu.Lock()
	defer l.mu.Unlock()
	pts := make([]CurvePoint, len(alphas))
	for i, a := range alphas {
		var sum float64
		for _, e := range l.entries {
			sum += e.EpsAlpha(a)
		}
		pts[i] = CurvePoint{Alpha: a, Eps: sum}
	}
	return pts
}

// Epsilon converts the accumulated curve to an ε valid at the given δ:
// the α-grid minimum of ε_α + log(1/δ)/(α−1), further capped by the
// linear Theorem 4.4 bound whenever that bound's δ budget (DeltaSum)
// fits under δ — which makes a single pure release report exactly its
// ε, the linear degenerate case. Results are memoized per δ until the
// next Add. An empty ledger reports 0; an invalid δ reports an error.
func (l *Ledger) Epsilon(delta float64) (float64, error) {
	if !(delta > 0 && delta < 1) {
		return 0, fmt.Errorf("accounting: δ = %v outside (0, 1)", delta)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 {
		return 0, nil
	}
	if eps, ok := l.memo[delta]; ok {
		return eps, nil
	}
	eps := epsilonOf(l.epsAlpha, len(l.entries), l.maxEps, l.deltaSum, delta)
	l.memo[delta] = eps
	return eps, nil
}

// epsilonOf is the (ε, δ) conversion over an explicit curve state: the
// α-grid minimum of ε_α + log(1/δ)/(α−1), capped by the linear bound
// n·maxEps whenever its δ budget (deltaSum) fits under delta. Shared
// by Epsilon and the ceiling simulation so both answer identically.
func epsilonOf(epsAlpha []float64, n int, maxEps, deltaSum, delta float64) float64 {
	if n == 0 {
		return 0
	}
	logInvDelta := math.Log(1 / delta)
	eps := math.Inf(1)
	for i, a := range defaultAlphas {
		if v := epsAlpha[i] + logInvDelta/(a-1); v < eps {
			eps = v
		}
	}
	if deltaSum <= delta {
		eps = math.Min(eps, float64(n)*maxEps)
	}
	return eps
}

// TotalEpsilon reports Epsilon at the ledger's headline δ, satisfying
// core.Accountant so a Ledger plugs into core.Composition. The
// error-free signature is safe: the headline δ is validated at
// construction.
func (l *Ledger) TotalEpsilon() float64 {
	eps, _ := l.Epsilon(l.delta)
	return eps
}

// RecordPure satisfies core.Accountant. The caller (Composition)
// records only releases that already passed ε validation and
// succeeded; an entry the ledger would reject at that point is a
// caller bug, reported by panic like any other broken invariant.
func (l *Ledger) RecordPure(eps float64) {
	if err := l.AddPure("", eps); err != nil {
		panic(fmt.Sprintf("accounting: RecordPure(%v): %v", eps, err))
	}
}

// Snapshot is the JSON image of a ledger: the headline δ and the
// entries, from which the curve state is reconstructed on Restore.
type Snapshot struct {
	Delta   float64 `json:"delta"`
	Entries []Entry `json:"entries,omitempty"`
}

// Snapshot captures the ledger's state.
func (l *Ledger) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	entries := make([]Entry, len(l.entries))
	copy(entries, l.entries)
	return Snapshot{Delta: l.delta, Entries: entries}
}

// Restore rebuilds a ledger from a snapshot, re-validating every entry
// so a corrupted or hand-edited file cannot plant accounting state no
// release path could have produced.
func Restore(s Snapshot) (*Ledger, error) {
	l := NewLedger(s.Delta)
	for i, e := range s.Entries {
		if err := l.Add(e); err != nil {
			return nil, fmt.Errorf("accounting: snapshot entry %d: %w", i, err)
		}
	}
	return l, nil
}
