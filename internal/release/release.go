// Package release implements the end-to-end pipeline behind
// cmd/privrelease — the shape in which a downstream user consumes this
// library: parse a discrete time series (possibly split into
// independent sessions), fit the empirical chain as the model class Θ,
// compute the chosen mechanism's noise scale, and release the
// relative-frequency histogram with a machine-readable report.
package release

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"strconv"
	"strings"

	"pufferfish/internal/core"
	"pufferfish/internal/laplace"
	"pufferfish/internal/markov"
	"pufferfish/internal/query"
)

// Mechanism names accepted by Config.
const (
	MechMQMExact  = "mqm-exact"
	MechMQMApprox = "mqm-approx"
	MechGroupDP   = "group-dp"
	MechDP        = "dp"
)

// Config selects the release parameters.
type Config struct {
	// Epsilon is the Pufferfish/DP privacy parameter.
	Epsilon float64
	// K is the number of states; 0 infers max(data)+1.
	K int
	// Mechanism is one of the Mech* constants.
	Mechanism string
	// Smoothing is the additive smoothing for the empirical chain.
	Smoothing float64
	// Seed drives the Laplace noise.
	Seed uint64
	// Parallelism bounds the score computation's worker count
	// (0 = all CPUs, 1 = serial); the release is identical either way.
	Parallelism int
	// Cache optionally memoizes quilt scores by (class fingerprint, ε,
	// options). Long-lived callers that Run many releases over stable
	// models pay each scoring sweep once; nil disables memoization. The
	// released values are bit-identical either way.
	Cache *ScoreCache
}

// ScoreCache re-exports the engine's score cache so CLI callers can
// construct one without importing internal/core.
type ScoreCache = core.ScoreCache

// NewScoreCache returns an empty score cache.
func NewScoreCache() *ScoreCache { return core.NewScoreCache() }

// Report is the JSON-serializable release record.
type Report struct {
	Mechanism    string        `json:"mechanism"`
	Epsilon      float64       `json:"epsilon"`
	K            int           `json:"k"`
	Observations int           `json:"observations"`
	Sessions     int           `json:"sessions"`
	Sigma        float64       `json:"sigma,omitempty"`
	NoiseScale   float64       `json:"noise_scale"`
	ActiveQuilt  string        `json:"active_quilt,omitempty"`
	Histogram    []float64     `json:"histogram"`
	Model        *markov.Chain `json:"model,omitempty"`
	// Cache reports the score cache's cumulative hit/miss counters as
	// of the end of this run. They are cache-wide: a cache shared
	// across many runs (the intended long-lived-caller setup)
	// aggregates their traffic. Nil exactly when Config.Cache is
	// unset.
	Cache *CacheReport `json:"cache,omitempty"`
}

// CacheReport is the Report's score-cache traffic snapshot.
type CacheReport struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// ParseSeries reads a series of non-negative integer states. Values
// are separated by whitespace or commas; a blank line starts a new
// independent session (the gap-split convention of the activity
// experiments).
func ParseSeries(r io.Reader) ([][]int, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var sessions [][]int
	var cur []int
	flush := func() {
		if len(cur) > 0 {
			sessions = append(sessions, cur)
			cur = nil
		}
	}
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			flush()
			continue
		}
		for _, field := range strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		}) {
			v, err := strconv.Atoi(field)
			if err != nil {
				return nil, fmt.Errorf("release: bad value %q: %w", field, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("release: negative state %d", v)
			}
			cur = append(cur, v)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	flush()
	if len(sessions) == 0 {
		return nil, errors.New("release: no data")
	}
	return sessions, nil
}

// Run executes the pipeline on parsed sessions.
func Run(sessions [][]int, cfg Config) (*Report, error) {
	if cfg.Epsilon <= 0 {
		return nil, fmt.Errorf("release: invalid ε = %v", cfg.Epsilon)
	}
	k := cfg.K
	var n, longest int
	var lengths []int
	for _, s := range sessions {
		n += len(s)
		lengths = append(lengths, len(s))
		if len(s) > longest {
			longest = len(s)
		}
		for _, v := range s {
			if cfg.K > 0 && v >= cfg.K {
				return nil, fmt.Errorf("release: state %d outside configured k = %d", v, cfg.K)
			}
			if v >= k {
				k = v + 1
			}
		}
	}
	if k < 2 {
		k = 2
	}

	flat := make([]int, 0, n)
	for _, s := range sessions {
		flat = append(flat, s...)
	}
	q := query.RelFreqHistogram{K: k, N: n}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7f4a7c15))

	report := &Report{
		Mechanism:    cfg.Mechanism,
		Epsilon:      cfg.Epsilon,
		K:            k,
		Observations: n,
		Sessions:     len(sessions),
	}

	switch cfg.Mechanism {
	case MechDP:
		rel, err := core.LaplaceDP(flat, q, cfg.Epsilon, rng)
		if err != nil {
			return nil, err
		}
		report.Histogram = rel.Values
		report.NoiseScale = rel.NoiseScale
		return report, nil
	case MechGroupDP:
		rel, err := core.GroupDP(flat, q, longest, cfg.Epsilon, rng)
		if err != nil {
			return nil, err
		}
		report.Histogram = rel.Values
		report.NoiseScale = rel.NoiseScale
		return report, nil
	case MechMQMExact, MechMQMApprox:
		chain, err := markov.EstimateStationary(sessions, k, cfg.Smoothing)
		if err != nil {
			return nil, err
		}
		class, err := markov.NewSingleton(chain, longest)
		if err != nil {
			return nil, err
		}
		// cfg.Cache's methods degrade to the direct scorers when nil.
		var score core.ChainScore
		if cfg.Mechanism == MechMQMExact {
			score, err = cfg.Cache.ExactScoreMulti(class, cfg.Epsilon, core.ExactOptions{Parallelism: cfg.Parallelism}, lengths)
		} else {
			score, err = cfg.Cache.ApproxScoreMulti(class, cfg.Epsilon, core.ApproxOptions{Parallelism: cfg.Parallelism}, lengths)
		}
		if err != nil {
			return nil, err
		}
		if cfg.Cache != nil {
			stats := cfg.Cache.Stats()
			report.Cache = &CacheReport{Hits: stats.Hits, Misses: stats.Misses}
		}
		exact, err := q.Evaluate(flat)
		if err != nil {
			return nil, err
		}
		scale := q.Lipschitz() * score.Sigma
		noisy := laplace.AddNoise(exact, scale, rng)
		report.Histogram = noisy
		report.NoiseScale = scale
		report.Sigma = score.Sigma
		report.ActiveQuilt = fmt.Sprintf("%v @ node %d", score.Quilt, score.Node)
		report.Model = &chain
		return report, nil
	default:
		return nil, fmt.Errorf("release: unknown mechanism %q (want %s|%s|%s|%s)",
			cfg.Mechanism, MechMQMExact, MechMQMApprox, MechGroupDP, MechDP)
	}
}
