// Package release implements the end-to-end pipeline behind
// cmd/privrelease — the shape in which a downstream user consumes this
// library: parse a discrete time series (possibly split into
// independent sessions), fit the empirical chain as the model class Θ,
// compute the chosen mechanism's noise scale, and release the
// relative-frequency histogram with a machine-readable report.
package release

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"slices"
	"strconv"
	"strings"

	"pufferfish/internal/accounting"
	"pufferfish/internal/bayes"
	"pufferfish/internal/core"
	"pufferfish/internal/kantorovich"
	"pufferfish/internal/laplace"
	"pufferfish/internal/markov"
	"pufferfish/internal/noise"
	"pufferfish/internal/obs"
	"pufferfish/internal/query"
)

// Mechanism names accepted by Config.
const (
	MechMQMExact    = "mqm-exact"
	MechMQMApprox   = "mqm-approx"
	MechGroupDP     = "group-dp"
	MechDP          = "dp"
	MechKantorovich = "kantorovich"
)

// Mechanisms returns every mechanism name Prepare accepts, in a
// stable order. It is the single source of truth the validation
// switch, the serving layer's per-mechanism counters, and the load
// smokes all consume, so a new mechanism cannot be wired in without
// its traffic being visible in /v1/stats.
func Mechanisms() []string {
	return []string{MechMQMExact, MechMQMApprox, MechKantorovich, MechGroupDP, MechDP}
}

// Noise backend names accepted by Config.Noise.
const (
	NoiseLaplace  = "laplace"
	NoiseGaussian = "gaussian"
)

// Substrate kinds accepted by Config.Substrate.
const (
	SubstrateChain   = "chain"
	SubstrateNetwork = "network"
)

// Substrates returns every substrate kind Prepare accepts, in a stable
// order — the source of truth for the serving layer's per-substrate
// counters, mirroring Mechanisms.
func Substrates() []string {
	return []string{SubstrateChain, SubstrateNetwork}
}

// Config selects the release parameters.
type Config struct {
	// Epsilon is the Pufferfish/DP privacy parameter.
	Epsilon float64
	// Delta is the δ of the (ε, δ) guarantee when Noise is "gaussian"
	// (required there, in (0, 1)); it must be 0 for the pure-ε Laplace
	// backend.
	Delta float64
	// K is the number of states; 0 infers max(data)+1.
	K int
	// Mechanism is one of the Mech* constants.
	Mechanism string
	// Substrate selects the secret model: "" or "chain" fits an
	// empirical Markov chain from the data (the classic pipeline);
	// "network" scores the Bayesian network in Network through the
	// generic substrate pipeline instead of fitting anything. The
	// network substrate is Kantorovich-only: the quilt mechanisms'
	// chain-specialized dynamic programs have no network analogue here.
	Substrate string
	// Network is the secret model for Substrate == "network": a
	// polytree Bayesian network with one node per observation and a
	// uniform state cardinality (the release's k). The data must be a
	// single session of exactly N() observations — observation t is the
	// realized value of node t.
	Network *bayes.Network
	// Noise selects the additive backend for MechKantorovich: ""
	// or "laplace" releases with per-coordinate Laplace noise at
	// k·W∞max/ε (pure ε), "gaussian" with per-coordinate Gaussian
	// noise at the per-cell (ε/k, δ/k) analytic calibration (the
	// Pierquin et al. shift-reduction route; its Rényi curve is what
	// the accounting ledger composes). The quilt and DP mechanisms are
	// Laplace-only — their σ is a Laplace scale by construction.
	Noise string
	// Smoothing is the additive smoothing for the empirical chain.
	Smoothing float64
	// Seed drives the Laplace noise.
	Seed uint64
	// Parallelism bounds the score computation's worker count
	// (0 = all CPUs, 1 = serial); the release is identical either way.
	Parallelism int
	// Cache optionally memoizes quilt scores by (class fingerprint, ε,
	// options). Long-lived callers that Run many releases over stable
	// models pay each scoring sweep once; nil disables memoization. The
	// released values are bit-identical either way.
	Cache *ScoreCache
	// Accountant, when set, records this release into the given Rényi
	// ledger and attaches an Accounting block to the report (the
	// cumulative (ε, δ) next to the linear Theorem 4.4 bound). It is
	// purely observational: releases are bit-identical with or without
	// an accountant for a fixed seed.
	Accountant *accounting.Ledger
	// AccountantName labels the report's Accounting block with the
	// ledger's session name (the serving layer's named accountant
	// sessions); it does not affect accounting.
	AccountantName string
}

// ScoreCache re-exports the engine's score cache so CLI callers can
// construct one without importing internal/core.
type ScoreCache = core.ScoreCache

// NewScoreCache returns an empty score cache.
func NewScoreCache() *ScoreCache { return core.NewScoreCache() }

// TableCacheStats re-exports the influence-table layer's counters so
// the server can surface them in /v1/stats.
type TableCacheStats = core.TableCacheStats

// Report is the JSON-serializable release record.
type Report struct {
	Mechanism string `json:"mechanism"`
	// Substrate is the secret model kind the release was scored under
	// ("chain" or "network").
	Substrate string  `json:"substrate"`
	Epsilon   float64 `json:"epsilon"`
	// Delta is the δ of the (ε, δ) guarantee (Gaussian noise only).
	Delta        float64 `json:"delta,omitempty"`
	K            int     `json:"k"`
	Observations int     `json:"observations"`
	Sessions     int     `json:"sessions"`
	Sigma        float64 `json:"sigma,omitempty"`
	NoiseScale   float64 `json:"noise_scale"`
	// Noise names the additive backend ("laplace", "gaussian"); empty
	// for the DP baselines, whose noise is definitionally Laplace.
	Noise       string        `json:"noise,omitempty"`
	ActiveQuilt string        `json:"active_quilt,omitempty"`
	Histogram   []float64     `json:"histogram"`
	Model       *markov.Chain `json:"model,omitempty"`
	// Kantorovich carries the transport diagnostics of MechKantorovich
	// releases (nil for every other mechanism).
	Kantorovich *KantorovichReport `json:"kantorovich,omitempty"`
	// Accounting carries the Rényi ledger's view of this release and
	// of the cumulative budget. Nil exactly when Config.Accountant is
	// unset.
	Accounting *AccountingReport `json:"accounting,omitempty"`
	// Cache reports the score cache's cumulative hit/miss counters as
	// of the end of this run. They are cache-wide: a cache shared
	// across many runs (the intended long-lived-caller setup)
	// aggregates their traffic. Nil exactly when Config.Cache is
	// unset.
	Cache *CacheReport `json:"cache,omitempty"`
}

// CacheReport is the Report's score-cache traffic snapshot.
type CacheReport struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// AccountingReport is the Report's privacy-ledger block: how this
// release entered the Rényi accountant, and where the cumulative
// budget stands afterwards — the RDP-optimized (ε, δ) next to the
// linear Theorem 4.4 bound it improves on.
type AccountingReport struct {
	// Accountant is the ledger's session name (empty for anonymous
	// per-run ledgers).
	Accountant string `json:"accountant,omitempty"`
	// Kind is how this release entered the ledger: "pure" (Laplace
	// noise, ε_α = min(ε, αε²/2)) or "gaussian" (ε_α = α·ρ).
	Kind string `json:"kind"`
	// Rho is this release's zCDP parameter (Gaussian only).
	Rho float64 `json:"rho,omitempty"`
	// Curve samples this release's Rényi curve at accounting.ReportAlphas.
	Curve []accounting.CurvePoint `json:"curve"`
	// Releases is the ledger's release count including this one.
	Releases int `json:"releases"`
	// LinearEpsilon is the Theorem 4.4 bound K·max_k ε_k, valid at
	// δ = DeltaSum.
	LinearEpsilon float64 `json:"linear_epsilon"`
	// DeltaSum is Σ per-release δ — the linear bound's δ cost.
	DeltaSum float64 `json:"delta_sum,omitempty"`
	// Delta is the ledger's headline δ at which RDPEpsilon holds.
	Delta float64 `json:"delta"`
	// RDPEpsilon is the accumulated curve's optimized ε at Delta —
	// never worse than LinearEpsilon where the latter applies, and
	// quadratically tighter over many Gaussian releases.
	RDPEpsilon float64 `json:"rdp_epsilon"`
}

// KantorovichReport is the Report's transport-diagnostics block for
// the Kantorovich mechanism: the worst histogram cell and its two
// Wasserstein suprema. W₁/W∞ ≤ 1 quantifies how conservative the
// worst-case calibration is on this database's fitted model.
type KantorovichReport struct {
	// Cell is the 0-based histogram cell (state) with the largest W∞.
	Cell int `json:"cell"`
	// WInf is that cell's sup ∞-Wasserstein distance; the count-level
	// Laplace scale is k·WInf/ε.
	WInf float64 `json:"w_inf"`
	// W1 is the cell's sup 1-Wasserstein (Kantorovich) distance.
	W1 float64 `json:"w1"`
}

// ParseSeries reads a series of non-negative integer states. Values
// are separated by whitespace or commas; a blank line starts a new
// independent session (the gap-split convention of the activity
// experiments).
func ParseSeries(r io.Reader) ([][]int, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var sessions [][]int
	var cur []int
	flush := func() {
		if len(cur) > 0 {
			sessions = append(sessions, cur)
			cur = nil
		}
	}
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			flush()
			continue
		}
		for _, field := range strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		}) {
			v, err := strconv.Atoi(field)
			if err != nil {
				return nil, fmt.Errorf("release: bad value %q: %w", field, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("release: negative state %d", v)
			}
			cur = append(cur, v)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	flush()
	if len(sessions) == 0 {
		return nil, errors.New("release: no data")
	}
	return sessions, nil
}

// Prepared is a validated release whose inputs are parsed and whose
// model (for the quilt mechanisms) is fitted, but whose score and noise
// have not yet been computed. It is the seam a long-lived server uses:
// Prepare many requests, schedule their scoring together (e.g. through
// core.ExactScoreMultiBatch over Class/Lengths), then Finish each with
// its externally computed score. Run is exactly Prepare + Score +
// Finish, so the two routes release bit-identical histograms.
type Prepared struct {
	cfg      Config
	sessions [][]int
	flat     []int
	lengths  []int
	k        int
	n        int
	longest  int
	chain    markov.Chain   // chain substrate, scored mechanisms only
	class    markov.Class   // chain substrate, scored mechanisms only
	sub      core.Substrate // network substrate only
}

// PrepareContext is Prepare with a cancellation check up front, so a
// request whose deadline already passed does no parsing or model
// fitting at all. When the context carries an obs trace the stage is
// recorded as a "prepare" span.
func PrepareContext(ctx context.Context, sessions [][]int, cfg Config) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, sp := obs.StartSpan(ctx, "prepare")
	p, err := Prepare(sessions, cfg)
	sp.EndErr(err)
	return p, err
}

// Prepare validates cfg and sessions, infers the state space, and fits
// the empirical chain for the quilt mechanisms.
func Prepare(sessions [][]int, cfg Config) (*Prepared, error) {
	if !slices.Contains(Mechanisms(), cfg.Mechanism) {
		return nil, fmt.Errorf("release: unknown mechanism %q (want %s)",
			cfg.Mechanism, strings.Join(Mechanisms(), "|"))
	}
	if !(cfg.Epsilon > 0) || math.IsInf(cfg.Epsilon, 1) {
		return nil, fmt.Errorf("release: invalid ε = %v", cfg.Epsilon)
	}
	if cfg.Epsilon < 0x1p-1022 { // subnormal: even σ = T/ε overflows
		return nil, fmt.Errorf("release: ε = %v is too small; noise scales overflow", cfg.Epsilon)
	}
	switch cfg.Noise {
	case "", NoiseLaplace:
		//privlint:allow floatcompare zero is the exact unset sentinel for δ
		if cfg.Delta != 0 {
			return nil, fmt.Errorf("release: δ = %v set, but the Laplace backend is pure-ε (δ must be 0)", cfg.Delta)
		}
	case NoiseGaussian:
		if cfg.Mechanism != MechKantorovich {
			return nil, fmt.Errorf("release: gaussian noise requires mechanism %s (the quilt/DP σ is a Laplace scale)", MechKantorovich)
		}
		if !(cfg.Delta > 0 && cfg.Delta < 1) || math.IsNaN(cfg.Delta) {
			return nil, fmt.Errorf("release: gaussian noise needs δ ∈ (0, 1), got %v", cfg.Delta)
		}
	default:
		return nil, fmt.Errorf("release: unknown noise backend %q (want %s|%s)", cfg.Noise, NoiseLaplace, NoiseGaussian)
	}
	if cfg.K != 0 && cfg.K < 2 {
		return nil, fmt.Errorf("release: configured k = %d, but a state space needs at least 2 states (0 infers from data)", cfg.K)
	}
	switch cfg.Substrate {
	case "", SubstrateChain:
		if cfg.Network != nil {
			return nil, fmt.Errorf("release: network model set without substrate %q", SubstrateNetwork)
		}
	case SubstrateNetwork:
		if cfg.Network == nil {
			return nil, fmt.Errorf("release: substrate %q needs a network model", SubstrateNetwork)
		}
		if cfg.Mechanism != MechKantorovich {
			return nil, fmt.Errorf("release: substrate %q supports only mechanism %s (the quilt mechanisms are chain-specialized)",
				SubstrateNetwork, MechKantorovich)
		}
	default:
		return nil, fmt.Errorf("release: unknown substrate %q (want %s)",
			cfg.Substrate, strings.Join(Substrates(), "|"))
	}
	if len(sessions) == 0 {
		return nil, errors.New("release: no data")
	}
	k := cfg.K
	var n, longest int
	var lengths []int
	for i, s := range sessions {
		if len(s) == 0 {
			return nil, fmt.Errorf("release: session %d is empty", i)
		}
		n += len(s)
		lengths = append(lengths, len(s))
		if len(s) > longest {
			longest = len(s)
		}
		for _, v := range s {
			if v < 0 {
				return nil, fmt.Errorf("release: negative state %d", v)
			}
			if cfg.K > 0 && v >= cfg.K {
				return nil, fmt.Errorf("release: state %d outside configured k = %d", v, cfg.K)
			}
			if v >= k {
				k = v + 1
			}
		}
	}
	if k < 2 {
		k = 2
	}
	var sub core.Substrate
	if cfg.Substrate == SubstrateNetwork {
		// The network is the authority on the state space and the
		// series shape: one session, one observation per node.
		s, err := core.NewNetworkSubstrate([]*bayes.Network{cfg.Network})
		if err != nil {
			return nil, err
		}
		if len(sessions) != 1 || longest != s.Len() {
			return nil, fmt.Errorf("release: substrate %q needs exactly one session of %d observations (one per network node), got %d session(s) totalling %d",
				SubstrateNetwork, s.Len(), len(sessions), n)
		}
		if cfg.K != 0 && cfg.K != s.K() {
			return nil, fmt.Errorf("release: configured k = %d, but the network's cardinality is %d", cfg.K, s.K())
		}
		if k > s.K() {
			return nil, fmt.Errorf("release: data has states up to %d, but the network's cardinality is %d", k-1, s.K())
		}
		k = s.K()
		sub = s
	}
	flat := make([]int, 0, n)
	for _, s := range sessions {
		flat = append(flat, s...)
	}
	p := &Prepared{
		cfg:      cfg,
		sessions: sessions,
		flat:     flat,
		lengths:  lengths,
		k:        k,
		n:        n,
		longest:  longest,
		sub:      sub,
	}
	if p.NeedsScore() && sub == nil {
		chain, err := markov.EstimateStationary(sessions, k, cfg.Smoothing)
		if err != nil {
			return nil, err
		}
		class, err := markov.NewSingleton(chain, longest)
		if err != nil {
			return nil, err
		}
		p.chain = chain
		p.class = class
	}
	return p, nil
}

// NeedsScore reports whether the mechanism requires a scoring sweep
// over the fitted model (a quilt score for the MQM variants, a
// transport profile for the Kantorovich mechanism); the DP baselines
// go straight to Finish with a zero ChainScore.
func (p *Prepared) NeedsScore() bool {
	switch p.cfg.Mechanism {
	case MechMQMExact, MechMQMApprox, MechKantorovich:
		return true
	}
	return false
}

// Class returns the fitted model class (nil for the DP baselines and
// for network-substrate releases, which carry no chain model). It is
// the MultiSpec input for batched scoring.
func (p *Prepared) Class() markov.Class { return p.class }

// SubstrateKind returns the validated substrate kind ("chain" or
// "network") — the key a serving layer uses for per-substrate traffic
// counters.
func (p *Prepared) SubstrateKind() string {
	if p.sub != nil {
		return SubstrateNetwork
	}
	return SubstrateChain
}

// Lengths returns the session-length multiset, aligned with the
// sessions passed to Prepare.
func (p *Prepared) Lengths() []int { return p.lengths }

// Epsilon returns the validated privacy parameter.
func (p *Prepared) Epsilon() float64 { return p.cfg.Epsilon }

// Mechanism returns the validated mechanism name.
func (p *Prepared) Mechanism() string { return p.cfg.Mechanism }

// SetParallelism overrides Config.Parallelism for the scoring stage —
// the hook a serving layer uses to map a granted worker budget onto the
// engine's pool. The released values are identical at every setting.
func (p *Prepared) SetParallelism(n int) { p.cfg.Parallelism = n }

// SetAccountant attaches a Rényi ledger (and its session name) after
// Prepare has validated the request — the hook a serving layer uses so
// accountant sessions are only ever created for requests that passed
// validation. Equivalent to setting Config.Accountant/AccountantName
// up front; the released values are identical either way.
func (p *Prepared) SetAccountant(led *accounting.Ledger, name string) {
	p.cfg.Accountant = led
	p.cfg.AccountantName = name
}

// PlannedEntry returns the exact accounting entry Finish will charge
// for this release, before any scoring work runs — the hook a serving
// layer uses to refuse a budget-exceeding release up front via
// Ledger.CheckCharge. The Laplace paths charge a pure-ε entry that
// depends only on validated config. The Gaussian Kantorovich entry's
// ρ looks like it needs the scored W∞, but W∞ cancels: σ scales
// linearly in W∞, so ρ = W∞²/(2σ²) is a function of (ε, δ, k) alone.
// Finish computes its charge through the same helper, so the planned
// and charged entries are equal bit for bit.
func (p *Prepared) PlannedEntry() (accounting.Entry, error) {
	if p.cfg.Mechanism == MechKantorovich && p.cfg.Noise == NoiseGaussian {
		rho, err := gaussianEntryRho(p.cfg.Epsilon, p.cfg.Delta, p.k)
		if err != nil {
			return accounting.Entry{}, err
		}
		return accounting.Entry{
			Kind: accounting.KindGaussian, Mechanism: p.cfg.Mechanism,
			Eps: p.cfg.Epsilon, Delta: p.cfg.Delta, Rho: rho,
		}, nil
	}
	return accounting.Entry{
		Kind: accounting.KindPure, Mechanism: p.cfg.Mechanism, Eps: p.cfg.Epsilon,
	}, nil
}

// gaussianEntryRho is the zCDP charge of a Gaussian Kantorovich
// release: per-coordinate ρ at the unit shift bound (W∞ cancels
// against the σ calibration), summed over the k cells.
func gaussianEntryRho(eps, delta float64, k int) (float64, error) {
	sigmaUnit, err := kantorovich.GaussianCountScale(1, eps, delta, k)
	if err != nil {
		return 0, err
	}
	rhoCoord, err := noise.GaussianRho(1, sigmaUnit)
	if err != nil {
		return 0, err
	}
	return float64(k) * rhoCoord, nil
}

// Score computes the mechanism's chain score, consulting cfg.Cache
// (whose methods degrade to the direct scorers when nil). ctx is
// checked before the sweep starts; a sweep already running is never
// abandoned half-way, matching the drain semantics of graceful
// shutdown.
func (p *Prepared) Score(ctx context.Context) (core.ChainScore, error) {
	if !p.NeedsScore() {
		return core.ChainScore{}, nil
	}
	if err := ctx.Err(); err != nil {
		return core.ChainScore{}, err
	}
	switch p.cfg.Mechanism {
	case MechMQMExact:
		return p.cfg.Cache.ExactScoreMulti(p.class, p.cfg.Epsilon, core.ExactOptions{Parallelism: p.cfg.Parallelism}, p.lengths)
	case MechKantorovich:
		if p.sub != nil {
			return kantorovich.ScoreSubstrate(p.cfg.Cache, p.sub, p.cfg.Epsilon, kantorovich.Options{Parallelism: p.cfg.Parallelism})
		}
		return kantorovich.ScoreMulti(p.cfg.Cache, p.class, p.cfg.Epsilon, kantorovich.Options{Parallelism: p.cfg.Parallelism}, p.lengths)
	}
	return p.cfg.Cache.ApproxScoreMulti(p.class, p.cfg.Epsilon, core.ApproxOptions{Parallelism: p.cfg.Parallelism}, p.lengths)
}

// FinishContext is Finish with a cancellation check first — the last
// point a release can be abandoned. Past it the charge is recorded and
// the noisy histogram exists, so cancellation must not interrupt: the
// finish stage itself never checks the context. When ctx carries an
// obs trace, the stage is recorded as "finish"/"noise"/"journal"
// spans.
func (p *Prepared) FinishContext(ctx context.Context, score core.ChainScore) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.finish(ctx, score)
}

// Finish adds the mechanism's noise and assembles the report. For the
// quilt mechanisms score must come from Score (or an equivalent batched
// computation over Class/Lengths); the DP baselines ignore it.
func (p *Prepared) Finish(score core.ChainScore) (*Report, error) {
	return p.finish(context.Background(), score)
}

// finish is the shared Finish body; ctx is consulted only for span
// recording, never for cancellation.
func (p *Prepared) finish(ctx context.Context, score core.ChainScore) (*Report, error) {
	_, fsp := obs.StartSpan(ctx, "finish")
	q := query.RelFreqHistogram{K: p.k, N: p.n}
	rng := rand.New(rand.NewPCG(p.cfg.Seed, 0x7f4a7c15))
	report := &Report{
		Mechanism:    p.cfg.Mechanism,
		Substrate:    p.SubstrateKind(),
		Epsilon:      p.cfg.Epsilon,
		K:            p.k,
		Observations: p.n,
		Sessions:     len(p.sessions),
	}
	defer p.snapshotCache(report)

	_, nsp := obs.StartSpan(ctx, "noise")
	entry, err := p.applyNoise(report, score, q, rng)
	nsp.EndErr(err)
	if err != nil {
		fsp.EndErr(err)
		return nil, err
	}
	_, jsp := obs.StartSpan(ctx, "journal")
	err = p.account(report, entry)
	jsp.EndErr(err)
	fsp.EndErr(err)
	if err != nil {
		return nil, err
	}
	return report, nil
}

// applyNoise evaluates the query, draws the mechanism's noise into
// report, and returns the accounting entry the release charges — the
// "noise" stage of the pipeline, split out of finish so the span
// boundaries match the stage boundaries exactly.
func (p *Prepared) applyNoise(report *Report, score core.ChainScore, q query.RelFreqHistogram, rng *rand.Rand) (accounting.Entry, error) {
	// Every Laplace path is a pure-ε release in the ledger; the
	// Gaussian branch below replaces this with its Rényi curve entry.
	entry := accounting.Entry{
		Kind: accounting.KindPure, Mechanism: p.cfg.Mechanism, Eps: p.cfg.Epsilon,
	}
	switch p.cfg.Mechanism {
	case MechDP:
		rel, err := core.LaplaceDP(p.flat, q, p.cfg.Epsilon, rng)
		if err != nil {
			return entry, err
		}
		report.Histogram = rel.Values
		report.NoiseScale = rel.NoiseScale
	case MechGroupDP:
		rel, err := core.GroupDP(p.flat, q, p.longest, p.cfg.Epsilon, rng)
		if err != nil {
			return entry, err
		}
		report.Histogram = rel.Values
		report.NoiseScale = rel.NoiseScale
	case MechKantorovich:
		exact, err := q.Evaluate(p.flat)
		if err != nil {
			return entry, err
		}
		// W∞ is reconstructed from σ = k·W∞/ε; the max with W₁ absorbs
		// the one-ulp rounding of the round trip so the reported ratio
		// W₁/W∞ never exceeds 1 (its documented contract).
		wInf := math.Max(score.Sigma*p.cfg.Epsilon/float64(p.k), score.Influence)
		if p.cfg.Noise == NoiseGaussian {
			// Per-coordinate Gaussian noise at the per-cell budget
			// (ε/k, δ/k); the count-level σ divides by n alongside the
			// released relative frequencies, exactly like the Laplace
			// path below.
			sigmaCount, err := kantorovich.GaussianCountScale(wInf, p.cfg.Epsilon, p.cfg.Delta, p.k)
			if err != nil {
				return entry, err
			}
			scale := sigmaCount / float64(p.n)
			if err := core.ValidateNoiseScale(scale, sigmaCount, p.cfg.Epsilon); err != nil {
				return entry, err
			}
			g, err := noise.Gaussian(scale)
			if err != nil {
				return entry, err
			}
			report.Histogram = noise.AddVec(exact, g, rng)
			report.NoiseScale = scale
			report.Sigma = sigmaCount
			report.Noise = NoiseGaussian
			report.Delta = p.cfg.Delta
			// The charge goes through the same W∞-free helper as
			// PlannedEntry, so a pre-scoring ceiling check and the
			// actual charge can never disagree.
			entry, err = p.PlannedEntry()
			if err != nil {
				return entry, err
			}
		} else {
			// Count-level per-coordinate scale is σ = k·W∞max/ε (ε/k
			// per cell, composed); the released values are relative
			// frequencies (counts / n), so the scale divides by n
			// alongside them.
			scale := score.Sigma / float64(p.n)
			if err := core.ValidateNoiseScale(scale, score.Sigma, p.cfg.Epsilon); err != nil {
				return entry, err
			}
			lap, err := noise.Laplace(scale)
			if err != nil {
				return entry, err
			}
			report.Histogram = noise.AddVec(exact, lap, rng)
			report.NoiseScale = scale
			report.Sigma = score.Sigma
			report.Noise = NoiseLaplace
		}
		if p.sub == nil {
			report.Model = &p.chain // network releases carry no chain model
		}
		report.Kantorovich = &KantorovichReport{
			Cell: score.Node,
			WInf: wInf,
			W1:   score.Influence,
		}
	default: // MechMQMExact, MechMQMApprox — Prepare validated the name
		exact, err := q.Evaluate(p.flat)
		if err != nil {
			return entry, err
		}
		scale := q.Lipschitz() * score.Sigma
		if err := core.ValidateNoiseScale(scale, score.Sigma, p.cfg.Epsilon); err != nil {
			return entry, err
		}
		report.Histogram = laplace.AddNoise(exact, scale, rng)
		report.NoiseScale = scale
		report.Sigma = score.Sigma
		report.Noise = NoiseLaplace
		report.ActiveQuilt = fmt.Sprintf("%v @ node %d", score.Quilt, score.Node)
		report.Model = &p.chain
	}
	return entry, nil
}

// account records the finished release into cfg.Accountant and fills
// the report's Accounting block. It runs after the noise is drawn and
// never touches the rng, so accounted and unaccounted releases are
// bit-identical for a fixed seed.
func (p *Prepared) account(report *Report, entry accounting.Entry) error {
	led := p.cfg.Accountant
	if led == nil {
		return nil
	}
	if err := led.Add(entry); err != nil {
		return err
	}
	rdp, err := led.Epsilon(led.Delta())
	if err != nil {
		return err
	}
	report.Accounting = &AccountingReport{
		Accountant:    p.cfg.AccountantName,
		Kind:          entry.Kind,
		Rho:           entry.Rho,
		Curve:         accounting.EntryCurve(entry, accounting.ReportAlphas),
		Releases:      led.Count(),
		LinearEpsilon: led.LinearEpsilon(),
		DeltaSum:      led.DeltaSum(),
		Delta:         led.Delta(),
		RDPEpsilon:    rdp,
	}
	return nil
}

// snapshotCache fills the report's cache block from cfg.Cache,
// upholding the Report.Cache contract for every mechanism: nil exactly
// when Config.Cache is unset.
func (p *Prepared) snapshotCache(report *Report) {
	if p.cfg.Cache == nil {
		return
	}
	stats := p.cfg.Cache.Stats()
	report.Cache = &CacheReport{Hits: stats.Hits, Misses: stats.Misses}
}

// Run executes the pipeline on parsed sessions.
func Run(sessions [][]int, cfg Config) (*Report, error) {
	return RunContext(context.Background(), sessions, cfg)
}

// RunContext is Run with cancellation between the pipeline stages: a
// context cancelled before scoring starts aborts the release, while a
// scoring sweep already in flight drains to completion.
func RunContext(ctx context.Context, sessions [][]int, cfg Config) (*Report, error) {
	p, err := PrepareContext(ctx, sessions, cfg)
	if err != nil {
		return nil, err
	}
	score, err := p.Score(ctx)
	if err != nil {
		return nil, err
	}
	return p.FinishContext(ctx, score)
}
