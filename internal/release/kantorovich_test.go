package release

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
)

// kantSessions keeps the transport sweeps small enough for the race
// detector: the per-pair dynamic programs are O(T²k²) each.
func kantSessions(t *testing.T) [][]int {
	t.Helper()
	rng := rand.New(rand.NewPCG(21, 22))
	truth := markov.BinaryChain(0.5, 0.85, 0.8)
	var sessions [][]int
	for i := 0; i < 3; i++ {
		sessions = append(sessions, truth.Sample(40+10*i, rng))
	}
	return sessions
}

func TestRunKantorovich(t *testing.T) {
	sessions := kantSessions(t)
	report, err := Run(sessions, Config{Epsilon: 1, Mechanism: MechKantorovich, Smoothing: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if report.Mechanism != MechKantorovich || report.K != 2 || report.Observations != 150 {
		t.Fatalf("report header wrong: %+v", report)
	}
	if len(report.Histogram) != report.K {
		t.Fatalf("histogram has %d cells, want %d", len(report.Histogram), report.K)
	}
	if !(report.Sigma > 0) {
		t.Fatalf("σ = %v", report.Sigma)
	}
	if want := report.Sigma / float64(report.Observations); report.NoiseScale != want {
		t.Errorf("noise scale %v, want σ/n = %v", report.NoiseScale, want)
	}
	kr := report.Kantorovich
	if kr == nil {
		t.Fatal("missing kantorovich diagnostics block")
	}
	if kr.Cell < 0 || kr.Cell >= report.K {
		t.Errorf("worst cell %d outside [0,%d)", kr.Cell, report.K)
	}
	if !(kr.W1 > 0) || kr.W1 > kr.WInf+1e-12 {
		t.Errorf("transport profile out of order: W1 = %v, W∞ = %v", kr.W1, kr.WInf)
	}
	// σ = k·W∞/ε up to the float round-trip in the report block.
	if got := float64(report.K) * kr.WInf / report.Epsilon; math.Abs(got-report.Sigma) > 1e-9*report.Sigma {
		t.Errorf("σ = %v inconsistent with k·W∞/ε = %v", report.Sigma, got)
	}
	if report.Model == nil {
		t.Error("missing fitted model")
	}
	if report.Cache != nil {
		t.Error("cache block present without Config.Cache")
	}
	// Other mechanisms never grow the diagnostics block.
	for _, mech := range allMechanisms {
		rep, err := Run(sessions, Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Kantorovich != nil {
			t.Errorf("%s: unexpected kantorovich block", mech)
		}
	}
}

// TestRunKantorovichCachedBitIdentical: nil cache, cold cache, warm
// cache and the staged Prepare/Score/Finish pipeline all release the
// same bits, and the Report.Cache contract holds.
func TestRunKantorovichCachedBitIdentical(t *testing.T) {
	sessions := kantSessions(t)
	cfg := Config{Epsilon: 0.8, Mechanism: MechKantorovich, Smoothing: 0.5, Seed: 11}
	want, err := Run(sessions, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewScoreCache()
	cached := cfg
	cached.Cache = cache
	cold, err := Run(sessions, cached)
	if err != nil {
		t.Fatal(err)
	}
	missesAfterCold := cache.Stats().Misses
	if missesAfterCold == 0 {
		t.Fatal("cold run recorded no misses")
	}
	warm, err := Run(sessions, cached)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Misses != missesAfterCold {
		t.Errorf("warm run re-swept: misses %d -> %d", missesAfterCold, cache.Stats().Misses)
	}
	for name, got := range map[string]*Report{"cold": cold, "warm": warm} {
		if !floats.EqSlices(got.Histogram, want.Histogram, 0) || got.Sigma != want.Sigma || got.NoiseScale != want.NoiseScale {
			t.Errorf("%s cached release diverges from uncached", name)
		}
		if got.Cache == nil {
			t.Errorf("%s: Report.Cache nil with Config.Cache set", name)
		}
		if *got.Kantorovich != *want.Kantorovich {
			t.Errorf("%s: diagnostics diverge: %+v vs %+v", name, got.Kantorovich, want.Kantorovich)
		}
	}

	// Staged pipeline == Run, bit for bit.
	p, err := Prepare(sessions, cached)
	if err != nil {
		t.Fatal(err)
	}
	score, err := p.Score(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	staged, err := p.Finish(score)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(staged.Histogram, want.Histogram, 0) || staged.Sigma != want.Sigma {
		t.Error("staged pipeline diverges from Run")
	}
}

// TestRunKantorovichParallelIdentical pins the engine determinism
// contract through the release pipeline.
func TestRunKantorovichParallelIdentical(t *testing.T) {
	sessions := kantSessions(t)
	cfg := Config{Epsilon: 1.5, Mechanism: MechKantorovich, Smoothing: 0.5, Seed: 3, Parallelism: 1}
	serial, err := Run(sessions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 2, 7} {
		cfg.Parallelism = par
		got, err := Run(sessions, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !floats.EqSlices(got.Histogram, serial.Histogram, 0) || got.Sigma != serial.Sigma {
			t.Errorf("parallelism %d diverges from serial", par)
		}
	}
}
