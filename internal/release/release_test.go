package release

import (
	"encoding/json"
	"math/rand/v2"
	"strings"
	"testing"

	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
)

func TestParseSeries(t *testing.T) {
	in := "0 1 1,2\n2\t0\n\n1 1 1\n\n\n0\n"
	sessions, err := ParseSeries(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 3 {
		t.Fatalf("sessions = %v", sessions)
	}
	if len(sessions[0]) != 6 || sessions[0][3] != 2 {
		t.Errorf("session 0 = %v", sessions[0])
	}
	if len(sessions[1]) != 3 || len(sessions[2]) != 1 {
		t.Errorf("sessions = %v", sessions)
	}
}

func TestParseSeriesErrors(t *testing.T) {
	if _, err := ParseSeries(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ParseSeries(strings.NewReader("1 x 2")); err == nil {
		t.Error("non-integer accepted")
	}
	if _, err := ParseSeries(strings.NewReader("1 -2")); err == nil {
		t.Error("negative state accepted")
	}
}

func sampleSessions(t *testing.T) [][]int {
	t.Helper()
	rng := rand.New(rand.NewPCG(81, 82))
	truth := markov.BinaryChain(0.5, 0.9, 0.85)
	var sessions [][]int
	for i := 0; i < 6; i++ {
		sessions = append(sessions, truth.Sample(400, rng))
	}
	return sessions
}

func TestRunMQMExact(t *testing.T) {
	sessions := sampleSessions(t)
	report, err := Run(sessions, Config{Epsilon: 1, Mechanism: MechMQMExact, Smoothing: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if report.K != 2 || report.Sessions != 6 || report.Observations != 2400 {
		t.Errorf("report metadata wrong: %+v", report)
	}
	if !(report.Sigma > 0) || !(report.NoiseScale > 0) || report.ActiveQuilt == "" {
		t.Errorf("score fields missing: %+v", report)
	}
	if len(report.Histogram) != 2 {
		t.Errorf("histogram = %v", report.Histogram)
	}
	// Roughly normalized (noise perturbs, but at these sizes mildly).
	if s := floats.Sum(report.Histogram); s < 0.5 || s > 1.5 {
		t.Errorf("histogram sums to %v", s)
	}
	// JSON round-trip, including the embedded model.
	blob, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Sigma != report.Sigma || back.Model.K() != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if !floats.EqSlices(back.Model.Init, report.Model.Init, 1e-12) {
		t.Error("model init lost in round trip")
	}
}

func TestRunAllMechanisms(t *testing.T) {
	sessions := sampleSessions(t)
	for _, mech := range []string{MechMQMExact, MechMQMApprox, MechGroupDP, MechDP} {
		report, err := Run(sessions, Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if report.NoiseScale <= 0 {
			t.Errorf("%s: scale %v", mech, report.NoiseScale)
		}
	}
	// Noise ordering: DP < MQM (exact ≤ approx) < GroupDP on this
	// sticky chain.
	get := func(mech string) float64 {
		r, err := Run(sessions, Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return r.NoiseScale
	}
	dp, ex, ap, gd := get(MechDP), get(MechMQMExact), get(MechMQMApprox), get(MechGroupDP)
	if !(dp < ex && ex <= ap && ap < gd) {
		t.Errorf("scale ordering violated: dp=%v exact=%v approx=%v group=%v", dp, ex, ap, gd)
	}
}

func TestRunValidation(t *testing.T) {
	sessions := [][]int{{0, 1, 0}}
	if _, err := Run(sessions, Config{Epsilon: 0, Mechanism: MechDP}); err == nil {
		t.Error("ε=0 accepted")
	}
	if _, err := Run(sessions, Config{Epsilon: 1, Mechanism: "bogus"}); err == nil {
		t.Error("unknown mechanism accepted")
	}
	if _, err := Run([][]int{{0, 5}}, Config{Epsilon: 1, K: 3, Mechanism: MechDP}); err == nil {
		t.Error("state above configured k accepted")
	}
}

// TestRunCachedBitIdentical checks a cached pipeline run releases
// exactly what the uncached run does, and that a second run over the
// same data is served from the cache.
func TestRunCachedBitIdentical(t *testing.T) {
	sessions := sampleSessions(t)
	for _, mech := range []string{MechMQMExact, MechMQMApprox} {
		cfg := Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: 44}
		plain, err := Run(sessions, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = NewScoreCache()
		cold, err := Run(sessions, cfg)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := Run(sessions, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for name, got := range map[string]*Report{"cold": cold, "warm": warm} {
			if got.NoiseScale != plain.NoiseScale || got.Sigma != plain.Sigma {
				t.Fatalf("%s %s: scale (%v, %v) != uncached (%v, %v)",
					mech, name, got.NoiseScale, got.Sigma, plain.NoiseScale, plain.Sigma)
			}
			if !floats.EqSlices(got.Histogram, plain.Histogram, 0) {
				t.Fatalf("%s %s: released histogram differs from uncached run", mech, name)
			}
		}
		if plain.Cache != nil {
			t.Fatalf("%s uncached run reports cache stats %+v", mech, plain.Cache)
		}
		if cold.Cache == nil || cold.Cache.Misses == 0 || cold.Cache.Hits != 0 {
			t.Fatalf("%s cold run: cache stats %+v, want misses > 0 and no hits", mech, cold.Cache)
		}
		// The counters are cumulative cache-wide: the warm run's hits
		// equal the cold run's misses, whose count carries over.
		if warm.Cache == nil || warm.Cache.Hits != cold.Cache.Misses || warm.Cache.Misses != cold.Cache.Misses {
			t.Fatalf("%s warm run: cache stats %+v, want %d hits and %d cumulative misses",
				mech, warm.Cache, cold.Cache.Misses, cold.Cache.Misses)
		}
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	sessions := sampleSessions(t)
	cfg := Config{Epsilon: 1, Mechanism: MechMQMApprox, Smoothing: 0.5, Seed: 33}
	a, err := Run(sessions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sessions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(a.Histogram, b.Histogram, 0) {
		t.Error("same seed should reproduce the release")
	}
}
