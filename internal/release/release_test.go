package release

import (
	"context"
	"encoding/json"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
)

var allMechanisms = []string{MechMQMExact, MechMQMApprox, MechGroupDP, MechDP}

func TestParseSeries(t *testing.T) {
	in := "0 1 1,2\n2\t0\n\n1 1 1\n\n\n0\n"
	sessions, err := ParseSeries(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 3 {
		t.Fatalf("sessions = %v", sessions)
	}
	if len(sessions[0]) != 6 || sessions[0][3] != 2 {
		t.Errorf("session 0 = %v", sessions[0])
	}
	if len(sessions[1]) != 3 || len(sessions[2]) != 1 {
		t.Errorf("sessions = %v", sessions)
	}
}

func TestParseSeriesErrors(t *testing.T) {
	if _, err := ParseSeries(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ParseSeries(strings.NewReader("1 x 2")); err == nil {
		t.Error("non-integer accepted")
	}
	if _, err := ParseSeries(strings.NewReader("1 -2")); err == nil {
		t.Error("negative state accepted")
	}
}

func sampleSessions(t *testing.T) [][]int {
	t.Helper()
	rng := rand.New(rand.NewPCG(81, 82))
	truth := markov.BinaryChain(0.5, 0.9, 0.85)
	var sessions [][]int
	for i := 0; i < 6; i++ {
		sessions = append(sessions, truth.Sample(400, rng))
	}
	return sessions
}

func TestRunMQMExact(t *testing.T) {
	sessions := sampleSessions(t)
	report, err := Run(sessions, Config{Epsilon: 1, Mechanism: MechMQMExact, Smoothing: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if report.K != 2 || report.Sessions != 6 || report.Observations != 2400 {
		t.Errorf("report metadata wrong: %+v", report)
	}
	if !(report.Sigma > 0) || !(report.NoiseScale > 0) || report.ActiveQuilt == "" {
		t.Errorf("score fields missing: %+v", report)
	}
	if len(report.Histogram) != 2 {
		t.Errorf("histogram = %v", report.Histogram)
	}
	// Roughly normalized (noise perturbs, but at these sizes mildly).
	if s := floats.Sum(report.Histogram); s < 0.5 || s > 1.5 {
		t.Errorf("histogram sums to %v", s)
	}
	// JSON round-trip, including the embedded model.
	blob, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Sigma != report.Sigma || back.Model.K() != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if !floats.EqSlices(back.Model.Init, report.Model.Init, 1e-12) {
		t.Error("model init lost in round trip")
	}
}

func TestRunAllMechanisms(t *testing.T) {
	sessions := sampleSessions(t)
	for _, mech := range []string{MechMQMExact, MechMQMApprox, MechGroupDP, MechDP} {
		report, err := Run(sessions, Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if report.NoiseScale <= 0 {
			t.Errorf("%s: scale %v", mech, report.NoiseScale)
		}
	}
	// Noise ordering: DP < MQM (exact ≤ approx) < GroupDP on this
	// sticky chain.
	get := func(mech string) float64 {
		r, err := Run(sessions, Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return r.NoiseScale
	}
	dp, ex, ap, gd := get(MechDP), get(MechMQMExact), get(MechMQMApprox), get(MechGroupDP)
	if !(dp < ex && ex <= ap && ap < gd) {
		t.Errorf("scale ordering violated: dp=%v exact=%v approx=%v group=%v", dp, ex, ap, gd)
	}
}

func TestRunValidation(t *testing.T) {
	sessions := [][]int{{0, 1, 0}}
	if _, err := Run(sessions, Config{Epsilon: 0, Mechanism: MechDP}); err == nil {
		t.Error("ε=0 accepted")
	}
	if _, err := Run(sessions, Config{Epsilon: 1, Mechanism: "bogus"}); err == nil {
		t.Error("unknown mechanism accepted")
	}
	if _, err := Run([][]int{{0, 5}}, Config{Epsilon: 1, K: 3, Mechanism: MechDP}); err == nil {
		t.Error("state above configured k accepted")
	}
	if _, err := Run(nil, Config{Epsilon: 1, Mechanism: MechDP}); err == nil {
		t.Error("no sessions accepted")
	}
	if _, err := Run([][]int{{0, -1}}, Config{Epsilon: 1, Mechanism: MechDP}); err == nil {
		t.Error("negative state accepted")
	}
}

// TestRunRejectsDegenerateInputs pins the remote-panic fixes flushed
// out by the serving layer: all-empty or partially-empty sessions and
// overflowing noise scales used to reach laplace.New's panic instead of
// returning an error — a dropped connection for an HTTP client.
func TestRunRejectsDegenerateInputs(t *testing.T) {
	for _, mech := range allMechanisms {
		if _, err := Run([][]int{{}}, Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5}); err == nil {
			t.Errorf("%s: all-empty sessions accepted", mech)
		}
		if _, err := Run([][]int{{0, 1}, {}}, Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5}); err == nil {
			t.Errorf("%s: empty session among non-empty accepted", mech)
		}
		// Subnormal ε: σ = T/ε overflows before any noise is drawn.
		if _, err := Run([][]int{{0, 1, 0, 1}}, Config{Epsilon: 5e-324, Mechanism: mech, Smoothing: 0.5}); err == nil {
			t.Errorf("%s: subnormal ε accepted", mech)
		}
		if _, err := Run([][]int{{0, 1, 0, 1}}, Config{Epsilon: math.NaN(), Mechanism: mech, Smoothing: 0.5}); err == nil {
			t.Errorf("%s: NaN ε accepted", mech)
		}
		if _, err := Run([][]int{{0, 1, 0, 1}}, Config{Epsilon: math.Inf(1), Mechanism: mech, Smoothing: 0.5}); err == nil {
			t.Errorf("%s: +Inf ε accepted", mech)
		}
	}
	// A normal-but-tiny ε still overflows σ = T/ε after scoring (40
	// observations at ε = 1e-307 put T/ε past MaxFloat64); that must be
	// an error from Finish, not a panic. Kept tiny: the quilt sweep's
	// auto width grows as ε shrinks, so a long series here would crawl.
	long := make([]int, 40)
	for i := range long {
		long[i] = i % 2
	}
	if _, err := Run([][]int{long}, Config{Epsilon: 1e-307, Mechanism: MechMQMExact, Smoothing: 0.5}); err == nil {
		t.Error("overflowing MQM noise scale accepted")
	}
}

// TestRunRejectsDegenerateK pins the configured-K fix: cfg.K == 1 used
// to pass validation and then be silently bumped to 2, so Report.K
// disagreed with the configuration. Any explicit K < 2 is now an error.
func TestRunRejectsDegenerateK(t *testing.T) {
	sessions := [][]int{{0, 0, 0}}
	for _, mech := range allMechanisms {
		for _, k := range []int{1, -1, -5} {
			_, err := Run(sessions, Config{Epsilon: 1, K: k, Mechanism: mech, Smoothing: 0.5})
			if err == nil {
				t.Errorf("%s: configured k = %d accepted", mech, k)
			} else if !strings.Contains(err.Error(), "at least 2 states") {
				t.Errorf("%s k=%d: unhelpful error %v", mech, k, err)
			}
		}
	}
	// K = 0 still infers and K = 2 is still honored verbatim.
	rep, err := Run(sessions, Config{Epsilon: 1, K: 2, Mechanism: MechDP})
	if err != nil || rep.K != 2 {
		t.Fatalf("explicit k = 2: report %+v, err %v", rep, err)
	}
	rep, err = Run(sessions, Config{Epsilon: 1, Mechanism: MechDP})
	if err != nil || rep.K != 2 {
		t.Fatalf("inferred k: report %+v, err %v", rep, err)
	}
}

// TestRunCacheReportAllMechanisms pins the Report.Cache contract for
// every mechanism: nil exactly when Config.Cache is unset. The DP
// baselines never touch the cache, so a fresh cache reports zeros —
// but the block must be present.
func TestRunCacheReportAllMechanisms(t *testing.T) {
	sessions := sampleSessions(t)
	for _, mech := range allMechanisms {
		plain, err := Run(sessions, Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Cache != nil {
			t.Errorf("%s: cache block present without Config.Cache: %+v", mech, plain.Cache)
		}
		cached, err := Run(sessions, Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: 5, Cache: NewScoreCache()})
		if err != nil {
			t.Fatal(err)
		}
		if cached.Cache == nil {
			t.Fatalf("%s: Config.Cache set but report cache block nil", mech)
		}
		if mech == MechDP || mech == MechGroupDP {
			if cached.Cache.Hits != 0 || cached.Cache.Misses != 0 {
				t.Errorf("%s: baseline touched the score cache: %+v", mech, cached.Cache)
			}
		} else if cached.Cache.Misses == 0 {
			t.Errorf("%s: cold cache reports no misses: %+v", mech, cached.Cache)
		}
	}
}

// TestRunSingleObservationSessions is the degenerate-session
// regression test: a length-1 session feeds lengths=[1] into the
// multi-length scorers (where the only quilt is the trivial one,
// σ = T/ε = 1/ε) and contributes no transitions to the fit. The
// pipeline must release, not crash, for every mechanism.
func TestRunSingleObservationSessions(t *testing.T) {
	cases := map[string][][]int{
		"solo":  {{1}},
		"mixed": {{0, 1, 0, 1, 1}, {1}},
	}
	for name, sessions := range cases {
		for _, mech := range allMechanisms {
			cfg := Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: 3}
			rep, err := Run(sessions, cfg)
			if err != nil {
				t.Fatalf("%s %s: %v", name, mech, err)
			}
			if rep.K != 2 || len(rep.Histogram) != 2 || rep.NoiseScale <= 0 {
				t.Errorf("%s %s: degenerate report %+v", name, mech, rep)
			}
			if (mech == MechMQMExact || mech == MechMQMApprox) && rep.Sigma <= 0 {
				t.Errorf("%s %s: σ = %v", name, mech, rep.Sigma)
			}
			again, err := Run(sessions, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !floats.EqSlices(rep.Histogram, again.Histogram, 0) {
				t.Errorf("%s %s: not deterministic", name, mech)
			}
		}
	}
	// The solo session's exact score is the trivial quilt: σ = T/ε = 1.
	rep, err := Run(cases["solo"], Config{Epsilon: 1, Mechanism: MechMQMExact, Smoothing: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sigma != 1 {
		t.Errorf("solo session σ = %v, want trivial-quilt 1", rep.Sigma)
	}
}

// TestPrepareScoreFinishMatchesRun pins the seam the serving layer
// depends on: staging the pipeline by hand releases bit-identical
// reports to Run.
func TestPrepareScoreFinishMatchesRun(t *testing.T) {
	sessions := sampleSessions(t)
	for _, mech := range allMechanisms {
		cfg := Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: 21}
		want, err := Run(sessions, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Prepare(sessions, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if p.NeedsScore() != (mech == MechMQMExact || mech == MechMQMApprox) {
			t.Errorf("%s: NeedsScore = %v", mech, p.NeedsScore())
		}
		score, err := p.Score(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Finish(score)
		if err != nil {
			t.Fatal(err)
		}
		if !floats.EqSlices(got.Histogram, want.Histogram, 0) || got.NoiseScale != want.NoiseScale || got.Sigma != want.Sigma {
			t.Errorf("%s: staged pipeline diverges from Run:\n  staged %+v\n  run    %+v", mech, got, want)
		}
	}
}

// TestRunContextCancelled: a context cancelled before scoring aborts
// the release.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sessions := [][]int{{0, 1, 0, 1}}
	for _, mech := range allMechanisms {
		if _, err := RunContext(ctx, sessions, Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5}); err == nil {
			t.Errorf("%s: cancelled context released anyway", mech)
		}
	}
}

// TestRunCachedBitIdentical checks a cached pipeline run releases
// exactly what the uncached run does, and that a second run over the
// same data is served from the cache.
func TestRunCachedBitIdentical(t *testing.T) {
	sessions := sampleSessions(t)
	for _, mech := range []string{MechMQMExact, MechMQMApprox} {
		cfg := Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: 44}
		plain, err := Run(sessions, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = NewScoreCache()
		cold, err := Run(sessions, cfg)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := Run(sessions, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for name, got := range map[string]*Report{"cold": cold, "warm": warm} {
			if got.NoiseScale != plain.NoiseScale || got.Sigma != plain.Sigma {
				t.Fatalf("%s %s: scale (%v, %v) != uncached (%v, %v)",
					mech, name, got.NoiseScale, got.Sigma, plain.NoiseScale, plain.Sigma)
			}
			if !floats.EqSlices(got.Histogram, plain.Histogram, 0) {
				t.Fatalf("%s %s: released histogram differs from uncached run", mech, name)
			}
		}
		if plain.Cache != nil {
			t.Fatalf("%s uncached run reports cache stats %+v", mech, plain.Cache)
		}
		if cold.Cache == nil || cold.Cache.Misses == 0 || cold.Cache.Hits != 0 {
			t.Fatalf("%s cold run: cache stats %+v, want misses > 0 and no hits", mech, cold.Cache)
		}
		// The counters are cumulative cache-wide: the warm run's hits
		// equal the cold run's misses, whose count carries over.
		if warm.Cache == nil || warm.Cache.Hits != cold.Cache.Misses || warm.Cache.Misses != cold.Cache.Misses {
			t.Fatalf("%s warm run: cache stats %+v, want %d hits and %d cumulative misses",
				mech, warm.Cache, cold.Cache.Misses, cold.Cache.Misses)
		}
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	sessions := sampleSessions(t)
	cfg := Config{Epsilon: 1, Mechanism: MechMQMApprox, Smoothing: 0.5, Seed: 33}
	a, err := Run(sessions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sessions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(a.Histogram, b.Histogram, 0) {
		t.Error("same seed should reproduce the release")
	}
}
