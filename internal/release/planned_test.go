package release

import (
	"context"
	"testing"

	"pufferfish/internal/accounting"
	"pufferfish/internal/core"
)

// TestPlannedEntryMatchesCharge: for every mechanism and noise backend
// the entry PlannedEntry computes before scoring equals — bit for
// bit — the entry Finish actually charges into the ledger. This is
// what lets the server refuse a ceiling-exceeding release before any
// scoring work with no risk of the pre-check and the charge drifting
// apart.
func TestPlannedEntryMatchesCharge(t *testing.T) {
	cases := []Config{
		{Epsilon: 1, Mechanism: MechMQMExact, Smoothing: 0.5, Seed: 3},
		{Epsilon: 0.7, Mechanism: MechMQMApprox, Smoothing: 0.5, Seed: 3},
		{Epsilon: 2, Mechanism: MechDP, Seed: 3},
		{Epsilon: 2, Mechanism: MechGroupDP, Seed: 3},
		{Epsilon: 1, Mechanism: MechKantorovich, Smoothing: 0.5, Seed: 3},
		{Epsilon: 0.9, Delta: 1e-6, Mechanism: MechKantorovich, Noise: NoiseGaussian, Smoothing: 0.5, Seed: 3},
	}
	for _, cfg := range cases {
		led := accounting.NewLedger(1e-5)
		cfg.Accountant = led
		p, err := Prepare(gaussSessions(), cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", cfg.Mechanism, cfg.Noise, err)
		}
		planned, err := p.PlannedEntry()
		if err != nil {
			t.Fatalf("%s/%s: planned entry: %v", cfg.Mechanism, cfg.Noise, err)
		}
		score, err := p.Score(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Finish(score); err != nil {
			t.Fatal(err)
		}
		charged := led.Entries()
		if len(charged) != 1 {
			t.Fatalf("%s/%s: %d entries charged", cfg.Mechanism, cfg.Noise, len(charged))
		}
		if charged[0] != planned {
			t.Errorf("%s/%s: planned %+v != charged %+v", cfg.Mechanism, cfg.Noise, planned, charged[0])
		}
	}
}

// TestPrepareFinishContext: an expired deadline stops the pipeline at
// the stage boundaries — before Prepare does any work, and before
// Finish charges the ledger or draws noise.
func TestPrepareFinishContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Epsilon: 1, Mechanism: MechDP, Seed: 1}
	if _, err := PrepareContext(ctx, gaussSessions(), cfg); err != context.Canceled {
		t.Fatalf("PrepareContext on a dead context: %v", err)
	}
	led := accounting.NewLedger(1e-5)
	cfg.Accountant = led
	p, err := Prepare(gaussSessions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.FinishContext(ctx, core.ChainScore{}); err != context.Canceled {
		t.Fatalf("FinishContext on a dead context: %v", err)
	}
	if led.Count() != 0 {
		t.Fatalf("cancelled Finish charged the ledger: %d entries", led.Count())
	}
}
