package release

import (
	"testing"

	"pufferfish/internal/accounting"
	"pufferfish/internal/kantorovich"
)

// gaussSessions is a small two-session substrate the Gaussian release
// tests share; kept short so the per-cell transport sweeps stay fast.
func gaussSessions() [][]int {
	return [][]int{
		{0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 0},
		{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1},
	}
}

// TestRunKantorovichGaussian: the Gaussian backend releases with the
// per-cell (ε/k, δ/k) calibration, reports the backend and δ, and is
// seed-deterministic and distinct from the Laplace release.
func TestRunKantorovichGaussian(t *testing.T) {
	cfg := Config{
		Epsilon: 1, Delta: 1e-5, Mechanism: MechKantorovich,
		Noise: NoiseGaussian, Smoothing: 0.5, Seed: 7,
	}
	report, err := Run(gaussSessions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Noise != NoiseGaussian || report.Delta != 1e-5 {
		t.Errorf("report backend (%q, δ=%v), want (gaussian, 1e-5)", report.Noise, report.Delta)
	}
	if report.Kantorovich == nil {
		t.Fatal("no kantorovich diagnostics block")
	}
	w, n := report.Kantorovich.WInf, float64(report.Observations)
	if !(w > 0) {
		t.Fatalf("W∞ = %v", w)
	}
	// σ must match the analytic per-cell (ε/k, δ/k) calibration.
	wantSigma, err := kantorovich.GaussianCountScale(w, report.Epsilon, report.Delta, report.K)
	if err != nil {
		t.Fatal(err)
	}
	if report.Sigma != wantSigma || report.NoiseScale != report.Sigma/n {
		t.Errorf("σ = %v (want %v), scale = %v (want σ/n)", report.Sigma, wantSigma, report.NoiseScale)
	}

	again, err := Run(gaussSessions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range report.Histogram {
		if report.Histogram[i] != again.Histogram[i] {
			t.Fatal("gaussian release not seed-deterministic")
		}
	}
	lapCfg := cfg
	lapCfg.Noise, lapCfg.Delta = NoiseLaplace, 0
	lap, err := Run(gaussSessions(), lapCfg)
	if err != nil {
		t.Fatal(err)
	}
	if lap.Noise != NoiseLaplace {
		t.Errorf("laplace report backend %q", lap.Noise)
	}
	same := true
	for i := range report.Histogram {
		if report.Histogram[i] != lap.Histogram[i] {
			same = false
		}
	}
	if same {
		t.Error("gaussian and laplace releases identical")
	}
}

// TestAccountingIsObservational: attaching a ledger must not change a
// single released value, for both backends — the accountant only
// watches.
func TestAccountingIsObservational(t *testing.T) {
	for _, noiseKind := range []string{NoiseLaplace, NoiseGaussian} {
		cfg := Config{
			Epsilon: 1, Mechanism: MechKantorovich, Noise: noiseKind,
			Smoothing: 0.5, Seed: 11,
		}
		if noiseKind == NoiseGaussian {
			cfg.Delta = 1e-5
		}
		plain, err := Run(gaussSessions(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Accounting != nil {
			t.Fatalf("%s: Accounting block without an accountant", noiseKind)
		}
		cfg.Accountant = accounting.NewLedger(1e-5)
		cfg.AccountantName = "sess"
		accounted, err := Run(gaussSessions(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain.Histogram {
			if plain.Histogram[i] != accounted.Histogram[i] {
				t.Fatalf("%s: accounted release differs at cell %d", noiseKind, i)
			}
		}
		acc := accounted.Accounting
		if acc == nil {
			t.Fatalf("%s: no Accounting block", noiseKind)
		}
		if acc.Accountant != "sess" || acc.Releases != 1 {
			t.Errorf("%s: accounting block %+v", noiseKind, acc)
		}
		wantKind := accounting.KindPure
		if noiseKind == NoiseGaussian {
			wantKind = accounting.KindGaussian
			if !(acc.Rho > 0) {
				t.Errorf("gaussian entry ρ = %v", acc.Rho)
			}
		}
		if acc.Kind != wantKind {
			t.Errorf("%s: entry kind %q, want %q", noiseKind, acc.Kind, wantKind)
		}
		// K = 1: the ledger's (ε, δ) never exceeds the linear bound; a
		// pure release reports exactly ε (the Theorem 4.4 degenerate
		// case), while the Gaussian entry's Rényi curve may land below
		// ε — the per-cell (ε/k, δ/k) calibration is conservative
		// relative to its own curve.
		if acc.RDPEpsilon > acc.LinearEpsilon {
			t.Errorf("%s: K=1 RDP ε %v above linear %v", noiseKind, acc.RDPEpsilon, acc.LinearEpsilon)
		}
		if acc.LinearEpsilon != 1 {
			t.Errorf("%s: K=1 linear ε = %v", noiseKind, acc.LinearEpsilon)
		}
		if noiseKind == NoiseLaplace && acc.RDPEpsilon != 1 {
			t.Errorf("%s: K=1 RDP ε = %v, want exactly ε", noiseKind, acc.RDPEpsilon)
		}
		if !(acc.RDPEpsilon > 0) {
			t.Errorf("%s: K=1 RDP ε = %v", noiseKind, acc.RDPEpsilon)
		}
		if len(acc.Curve) != len(accounting.ReportAlphas) {
			t.Errorf("%s: curve has %d points", noiseKind, len(acc.Curve))
		}
	}
}

// TestRepeatedGaussianReleasesBeatLinear is the acceptance-criteria
// workload: ≥ 10 Gaussian releases over one class must give the RDP
// accountant a strictly smaller ε at δ = 1e-5 than the linear K·max ε
// bound, while every release stays bit-identical to the unaccounted
// path.
func TestRepeatedGaussianReleasesBeatLinear(t *testing.T) {
	const releases = 12
	led := accounting.NewLedger(1e-5)
	cache := NewScoreCache()
	for i := 0; i < releases; i++ {
		cfg := Config{
			Epsilon: 1, Delta: 1e-5, Mechanism: MechKantorovich,
			Noise: NoiseGaussian, Smoothing: 0.5, Seed: uint64(i),
			Cache: cache, Accountant: led,
		}
		accounted, err := Run(gaussSessions(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		plain := cfg
		plain.Accountant = nil
		unaccounted, err := Run(gaussSessions(), plain)
		if err != nil {
			t.Fatal(err)
		}
		for j := range accounted.Histogram {
			if accounted.Histogram[j] != unaccounted.Histogram[j] {
				t.Fatalf("release %d: accounted path differs", i)
			}
		}
		if accounted.Accounting.Releases != i+1 {
			t.Fatalf("release %d: ledger count %d", i, accounted.Accounting.Releases)
		}
	}
	rdp, err := led.Epsilon(1e-5)
	if err != nil {
		t.Fatal(err)
	}
	linear := led.LinearEpsilon()
	if linear != releases {
		t.Fatalf("linear = %v, want %d", linear, releases)
	}
	if !(rdp < linear) {
		t.Fatalf("RDP ε %v not strictly below linear %v after %d gaussian releases", rdp, linear, releases)
	}
	t.Logf("K=%d gaussian releases: RDP ε(1e-5) = %.3f vs linear %.0f", releases, rdp, linear)
}

// TestGaussianValidation: the Gaussian backend is rejected everywhere
// it is unsound — non-kantorovich mechanisms, missing or out-of-range
// δ, δ on the pure backend, unknown backend names.
func TestGaussianValidation(t *testing.T) {
	sessions := gaussSessions()
	cases := map[string]Config{
		"gaussian quilt":   {Epsilon: 1, Delta: 1e-5, Mechanism: MechMQMExact, Noise: NoiseGaussian},
		"gaussian dp":      {Epsilon: 1, Delta: 1e-5, Mechanism: MechDP, Noise: NoiseGaussian},
		"missing delta":    {Epsilon: 1, Mechanism: MechKantorovich, Noise: NoiseGaussian},
		"delta too big":    {Epsilon: 1, Delta: 1, Mechanism: MechKantorovich, Noise: NoiseGaussian},
		"negative delta":   {Epsilon: 1, Delta: -0.5, Mechanism: MechKantorovich, Noise: NoiseGaussian},
		"delta on laplace": {Epsilon: 1, Delta: 1e-5, Mechanism: MechKantorovich, Noise: NoiseLaplace},
		"delta default":    {Epsilon: 1, Delta: 1e-5, Mechanism: MechMQMExact},
		"unknown noise":    {Epsilon: 1, Mechanism: MechKantorovich, Noise: "cauchy"},
	}
	for name, cfg := range cases {
		cfg.Smoothing = 0.5
		if _, err := Run(sessions, cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestAccountantLedgerAcrossMechanisms: one ledger shared across
// mechanisms accumulates pure and gaussian entries together, and its
// (ε, δ) never exceeds the linear bound on any prefix.
func TestAccountantLedgerAcrossMechanisms(t *testing.T) {
	led := accounting.NewLedger(1e-5)
	sessions := gaussSessions()
	runs := []Config{
		{Epsilon: 0.5, Mechanism: MechMQMExact, Smoothing: 0.5, Seed: 1},
		{Epsilon: 1, Mechanism: MechDP, Seed: 2},
		{Epsilon: 1, Delta: 1e-5, Mechanism: MechKantorovich, Noise: NoiseGaussian, Smoothing: 0.5, Seed: 3},
		{Epsilon: 0.25, Mechanism: MechKantorovich, Smoothing: 0.5, Seed: 4},
	}
	for i, cfg := range runs {
		cfg.Accountant = led
		report, err := Run(sessions, cfg)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		acc := report.Accounting
		if acc == nil || acc.Releases != i+1 {
			t.Fatalf("run %d: accounting block %+v", i, acc)
		}
		if acc.RDPEpsilon > acc.LinearEpsilon && acc.DeltaSum <= acc.Delta {
			t.Errorf("run %d: RDP ε %v above applicable linear %v", i, acc.RDPEpsilon, acc.LinearEpsilon)
		}
	}
	entries := led.Entries()
	if len(entries) != 4 || entries[0].Mechanism != MechMQMExact || entries[2].Kind != accounting.KindGaussian {
		t.Errorf("entries = %+v", entries)
	}
}
