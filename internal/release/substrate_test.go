package release

import (
	"math"
	"strings"
	"testing"

	"pufferfish/internal/accounting"
	"pufferfish/internal/bayes"
)

// epidemicTree is a small household-infection polytree: node 0 is the
// index case, nodes 1–2 its contacts, nodes 3–4 contacts of node 1.
// Binary states (healthy/infected), spread probability 0.65.
func epidemicTree(t *testing.T) *bayes.Network {
	t.Helper()
	spread := []float64{0.9, 0.1, 0.35, 0.65}
	nw, err := bayes.New([]bayes.Node{
		{Name: "p0", Card: 2, CPT: []float64{0.8, 0.2}},
		{Name: "p1", Card: 2, Parents: []int{0}, CPT: spread},
		{Name: "p2", Card: 2, Parents: []int{0}, CPT: spread},
		{Name: "p3", Card: 2, Parents: []int{1}, CPT: spread},
		{Name: "p4", Card: 2, Parents: []int{1}, CPT: spread},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestNetworkSubstrateRelease: a Bayesian-network release runs the
// full Kantorovich pipeline — substrate scoring, cache reuse, noise,
// report assembly — end to end.
func TestNetworkSubstrateRelease(t *testing.T) {
	nw := epidemicTree(t)
	cache := NewScoreCache()
	cfg := Config{
		Epsilon: 1, Mechanism: MechKantorovich,
		Substrate: SubstrateNetwork, Network: nw,
		Seed: 42, Cache: cache,
	}
	sessions := [][]int{{0, 1, 0, 1, 1}}
	rep, err := Run(sessions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Substrate != SubstrateNetwork || rep.Mechanism != MechKantorovich {
		t.Fatalf("report tags: substrate %q mechanism %q", rep.Substrate, rep.Mechanism)
	}
	if rep.Model != nil {
		t.Error("network release carries a chain model")
	}
	if rep.Kantorovich == nil {
		t.Fatal("network release missing transport diagnostics")
	}
	if rep.K != 2 || len(rep.Histogram) != 2 || rep.Observations != 5 {
		t.Fatalf("shape: k=%d hist=%d n=%d", rep.K, len(rep.Histogram), rep.Observations)
	}
	// σ = k·W∞/ε, released at the count level divided by n.
	wantSigma := 2 * rep.Kantorovich.WInf / cfg.Epsilon
	if math.Abs(rep.Sigma-wantSigma) > 1e-12*wantSigma {
		t.Errorf("σ = %v, want k·W∞/ε = %v", rep.Sigma, wantSigma)
	}
	if math.Abs(rep.NoiseScale-rep.Sigma/5) > 1e-15 {
		t.Errorf("noise scale %v, want σ/n = %v", rep.NoiseScale, rep.Sigma/5)
	}
	if rep.Cache == nil || rep.Cache.Misses != 2 || rep.Cache.Hits != 0 {
		t.Fatalf("cold run cache block: %+v", rep.Cache)
	}

	// A second run over the same network is fully cache-served and
	// bit-identical for the same seed.
	rep2, err := Run(sessions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Cache.Hits != 2 || rep2.Cache.Misses != 2 {
		t.Fatalf("warm run cache block: %+v", rep2.Cache)
	}
	for i := range rep.Histogram {
		if rep.Histogram[i] != rep2.Histogram[i] {
			t.Fatalf("cell %d: %v != %v across cache-warm replay", i, rep.Histogram[i], rep2.Histogram[i])
		}
	}
}

// TestNetworkSubstrateGaussianAccounting: the Gaussian noise backend
// and the Rényi ledger work unchanged under the network substrate.
func TestNetworkSubstrateGaussianAccounting(t *testing.T) {
	rep, err := Run([][]int{{0, 1, 0, 1, 1}}, Config{
		Epsilon: 1, Delta: 1e-5, Noise: NoiseGaussian,
		Mechanism: MechKantorovich, Substrate: SubstrateNetwork,
		Network: epidemicTree(t), Seed: 7, Accountant: accounting.NewLedger(1e-5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accounting == nil || rep.Accounting.Kind != "gaussian" || rep.Accounting.Releases != 1 {
		t.Fatalf("accounting block: %+v", rep.Accounting)
	}
	if !(rep.Accounting.Rho > 0) {
		t.Errorf("ρ = %v, want > 0", rep.Accounting.Rho)
	}
}

// TestNetworkSubstrateValidation: malformed substrate configs are
// rejected with messages naming the constraint.
func TestNetworkSubstrateValidation(t *testing.T) {
	nw := epidemicTree(t)
	ok := [][]int{{0, 1, 0, 1, 1}}
	cases := []struct {
		name     string
		sessions [][]int
		cfg      Config
		want     string
	}{
		{"missing network", ok,
			Config{Epsilon: 1, Mechanism: MechKantorovich, Substrate: SubstrateNetwork},
			"needs a network model"},
		{"network without substrate", ok,
			Config{Epsilon: 1, Mechanism: MechKantorovich, Network: nw},
			"without substrate"},
		{"unknown substrate", ok,
			Config{Epsilon: 1, Mechanism: MechKantorovich, Substrate: "tree", Network: nw},
			"unknown substrate"},
		{"quilt mechanism", ok,
			Config{Epsilon: 1, Mechanism: MechMQMExact, Smoothing: 0.5, Substrate: SubstrateNetwork, Network: nw},
			"supports only mechanism"},
		{"short session", [][]int{{0, 1}},
			Config{Epsilon: 1, Mechanism: MechKantorovich, Substrate: SubstrateNetwork, Network: nw},
			"one session of 5 observations"},
		{"split sessions", [][]int{{0, 1, 0}, {1, 1}},
			Config{Epsilon: 1, Mechanism: MechKantorovich, Substrate: SubstrateNetwork, Network: nw},
			"one session of 5 observations"},
		{"state out of range", [][]int{{0, 1, 0, 1, 2}},
			Config{Epsilon: 1, Mechanism: MechKantorovich, Substrate: SubstrateNetwork, Network: nw},
			"cardinality is 2"},
		{"k mismatch", ok,
			Config{Epsilon: 1, K: 3, Mechanism: MechKantorovich, Substrate: SubstrateNetwork, Network: nw},
			"cardinality is 2"},
	}
	for _, tc := range cases {
		if _, err := Run(tc.sessions, tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
