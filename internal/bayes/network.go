// Package bayes implements discrete Bayesian networks: directed
// acyclic graphs of finite-domain variables with conditional
// probability tables, exact inference by enumeration, d-separation,
// Markov blankets, and the Markov-quilt machinery of Definition 4.2.
//
// The networks in this reproduction are small (the generic Markov
// Quilt Mechanism of Algorithm 2 targets them; the chain-specialized
// MQMExact/MQMApprox handle the large instances), so inference by
// enumeration over the joint is the honest, easily-audited choice.
package bayes

import (
	"errors"
	"fmt"
	"math"

	"pufferfish/internal/floats"
)

// maxJointSize bounds enumeration: networks whose joint assignment
// space exceeds this return ErrTooLarge rather than silently burning
// CPU. Large correlated-data instances should use the Markov chain
// specializations.
const maxJointSize = 1 << 22

// ErrTooLarge is returned when exact enumeration would be intractable.
var ErrTooLarge = errors.New("bayes: joint space too large for enumeration")

// Node is one variable of the network.
type Node struct {
	// Name is a human-readable label.
	Name string
	// Card is the domain size; values are {0, …, Card−1}.
	Card int
	// Parents lists the indices of the parent nodes.
	Parents []int
	// CPT holds P(node = v | parents = u) at index
	// rowIndex(u)*Card + v, where rowIndex enumerates parent
	// assignments in row-major order (first parent most significant).
	CPT []float64
}

// Network is a validated Bayesian network.
type Network struct {
	nodes []Node
	topo  []int // topological order of node indices
}

// New validates nodes (acyclic graph, well-formed CPTs) and returns a
// network.
func New(nodes []Node) (*Network, error) {
	n := len(nodes)
	if n == 0 {
		return nil, errors.New("bayes: empty network")
	}
	for i, nd := range nodes {
		if nd.Card < 1 {
			return nil, fmt.Errorf("bayes: node %d (%s) has cardinality %d", i, nd.Name, nd.Card)
		}
		rows := 1
		for _, p := range nd.Parents {
			if p < 0 || p >= n {
				return nil, fmt.Errorf("bayes: node %d (%s) has out-of-range parent %d", i, nd.Name, p)
			}
			if p == i {
				return nil, fmt.Errorf("bayes: node %d (%s) is its own parent", i, nd.Name)
			}
			rows *= nodes[p].Card
		}
		if len(nd.CPT) != rows*nd.Card {
			return nil, fmt.Errorf("bayes: node %d (%s) CPT has %d entries, want %d", i, nd.Name, len(nd.CPT), rows*nd.Card)
		}
		for r := 0; r < rows; r++ {
			row := nd.CPT[r*nd.Card : (r+1)*nd.Card]
			if !floats.IsProbVector(row, 1e-8) {
				return nil, fmt.Errorf("bayes: node %d (%s) CPT row %d is not a probability vector: %v", i, nd.Name, r, row)
			}
		}
	}
	topo, err := topoSort(nodes)
	if err != nil {
		return nil, err
	}
	return &Network{nodes: nodes, topo: topo}, nil
}

// MustNew is New that panics on error, for fixtures.
func MustNew(nodes []Node) *Network {
	nw, err := New(nodes)
	if err != nil {
		panic(err)
	}
	return nw
}

func topoSort(nodes []Node) ([]int, error) {
	n := len(nodes)
	indeg := make([]int, n)
	children := make([][]int, n)
	for i, nd := range nodes {
		indeg[i] = len(nd.Parents)
		for _, p := range nd.Parents {
			children[p] = append(children[p], i)
		}
	}
	var queue, order []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, c := range children[u] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("bayes: graph has a cycle")
	}
	return order, nil
}

// N returns the number of nodes.
func (nw *Network) N() int { return len(nw.nodes) }

// Card returns the domain size of node i.
func (nw *Network) Card(i int) int { return nw.nodes[i].Card }

// Parents returns the parent indices of node i (not a copy; treat as
// read-only).
func (nw *Network) Parents(i int) []int { return nw.nodes[i].Parents }

// Name returns the label of node i.
func (nw *Network) Name(i int) string { return nw.nodes[i].Name }

// CPT returns node i's conditional probability table (not a copy;
// treat as read-only), indexed as documented on Node.CPT. Substrate
// fingerprinting streams it canonically.
func (nw *Network) CPT(i int) []float64 { return nw.nodes[i].CPT }

// Children returns the child indices of node i.
func (nw *Network) Children(i int) []int {
	var out []int
	for j, nd := range nw.nodes {
		for _, p := range nd.Parents {
			if p == i {
				out = append(out, j)
				break
			}
		}
	}
	return out
}

// CondProb returns P(node i = v | parents as in assign). assign must
// cover at least node i's parents.
func (nw *Network) CondProb(i, v int, assign []int) float64 {
	nd := nw.nodes[i]
	row := 0
	for _, p := range nd.Parents {
		row = row*nw.nodes[p].Card + assign[p]
	}
	return nd.CPT[row*nd.Card+v]
}

// JointProb returns P(X = assign) = Π_i P(x_i | parents).
func (nw *Network) JointProb(assign []int) float64 {
	p := 1.0
	for i := range nw.nodes {
		p *= nw.CondProb(i, assign[i], assign)
		//privlint:allow floatcompare exact zero short-circuits the product; no rounding involved
		if p == 0 {
			return 0
		}
	}
	return p
}

// jointSize returns the number of joint assignments, or an error when
// enumeration would exceed maxJointSize.
func (nw *Network) jointSize() (int, error) {
	size := 1
	for _, nd := range nw.nodes {
		size *= nd.Card
		if size > maxJointSize {
			return 0, ErrTooLarge
		}
	}
	return size, nil
}

// Enumerate calls f with every full assignment and its joint
// probability. Iteration stops early if f returns false.
func (nw *Network) Enumerate(f func(assign []int, p float64) bool) error {
	if _, err := nw.jointSize(); err != nil {
		return err
	}
	n := len(nw.nodes)
	assign := make([]int, n)
	for {
		if !f(assign, nw.JointProb(assign)) {
			return nil
		}
		// Mixed-radix increment.
		i := n - 1
		for ; i >= 0; i-- {
			assign[i]++
			if assign[i] < nw.nodes[i].Card {
				break
			}
			assign[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}

// Marginal returns the joint distribution of the listed variables as a
// dense table in row-major order over vars (first var most
// significant).
func (nw *Network) Marginal(vars []int) ([]float64, error) {
	size := 1
	for _, v := range vars {
		if v < 0 || v >= len(nw.nodes) {
			return nil, fmt.Errorf("bayes: variable %d out of range", v)
		}
		size *= nw.nodes[v].Card
	}
	out := make([]float64, size)
	err := nw.Enumerate(func(assign []int, p float64) bool {
		idx := 0
		for _, v := range vars {
			idx = idx*nw.nodes[v].Card + assign[v]
		}
		out[idx] += p
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// NodeMarginal returns P(X_i = ·).
func (nw *Network) NodeMarginal(i int) ([]float64, error) {
	return nw.Marginal([]int{i})
}

// MaxInfluence returns the max-influence e_{θ}(X_A | X_i) of node i on
// the node set A under this network (Definition 4.1 for a singleton
// class):
//
//	max_{a,b,x_A} log P(X_A = x_A | X_i = a) / P(X_A = x_A | X_i = b)
//
// Pairs (a, b) where either conditioning value has zero probability
// are skipped per Definition 2.1; outcomes x_A with zero mass under
// one conditional but not the other yield +Inf.
func (nw *Network) MaxInfluence(A []int, i int) (float64, error) {
	if len(A) == 0 {
		return 0, nil
	}
	for _, v := range A {
		if v == i {
			return 0, fmt.Errorf("bayes: quilt contains the protected node %d", i)
		}
	}
	joint, err := nw.Marginal(append(append([]int{}, A...), i))
	if err != nil {
		return 0, err
	}
	ci := nw.nodes[i].Card
	rows := len(joint) / ci
	// Marginal of X_i.
	pi := make([]float64, ci)
	for r := 0; r < rows; r++ {
		for a := 0; a < ci; a++ {
			pi[a] += joint[r*ci+a]
		}
	}
	worst := 0.0
	for a := 0; a < ci; a++ {
		if pi[a] <= 0 {
			continue
		}
		for b := 0; b < ci; b++ {
			if b == a || pi[b] <= 0 {
				continue
			}
			for r := 0; r < rows; r++ {
				pa := joint[r*ci+a] / pi[a]
				pb := joint[r*ci+b] / pi[b]
				switch {
				//privlint:allow floatcompare exact-zero mass decides between -Inf and +Inf ratios
				case pa == 0:
					// log 0/x = −Inf; the (b, a) direction covers it.
				//privlint:allow floatcompare exact-zero mass decides between -Inf and +Inf ratios
				case pb == 0:
					return math.Inf(1), nil
				default:
					if v := math.Log(pa / pb); v > worst {
						worst = v
					}
				}
			}
		}
	}
	return worst, nil
}
