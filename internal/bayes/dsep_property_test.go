package bayes

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// randomDAG builds a random binary-CPT network on n nodes with edges
// only from lower to higher indices.
func randomDAG(r *rand.Rand, n int) *Network {
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		var parents []int
		for j := 0; j < i; j++ {
			if r.Float64() < 0.4 {
				parents = append(parents, j)
			}
		}
		rows := 1 << len(parents)
		cpt := make([]float64, 2*rows)
		for rIdx := 0; rIdx < rows; rIdx++ {
			p := 0.05 + 0.9*r.Float64()
			cpt[rIdx*2] = p
			cpt[rIdx*2+1] = 1 - p
		}
		nodes[i] = Node{Name: "n", Card: 2, Parents: parents, CPT: cpt}
	}
	return MustNew(nodes)
}

// conditionallyIndependent checks X ⊥ Y | Z numerically:
// P(x, y | z) = P(x | z) · P(y | z) for every assignment with
// P(z) > 0.
func conditionallyIndependent(nw *Network, x, y int, z []int, tol float64) (bool, error) {
	vars := append([]int{x, y}, z...)
	joint, err := nw.Marginal(vars)
	if err != nil {
		return false, err
	}
	// joint is indexed row-major over (x, y, z...); fold out the z
	// block index.
	zSize := 1
	for range z {
		zSize *= 2
	}
	for zi := 0; zi < zSize; zi++ {
		var pz, px1z, py1z, pxy11 float64
		for xi := 0; xi < 2; xi++ {
			for yi := 0; yi < 2; yi++ {
				v := joint[(xi*2+yi)*zSize+zi]
				pz += v
				if xi == 1 {
					px1z += v
				}
				if yi == 1 {
					py1z += v
				}
				if xi == 1 && yi == 1 {
					pxy11 += v
				}
			}
		}
		if pz <= 1e-12 {
			continue
		}
		if math.Abs(pxy11/pz-(px1z/pz)*(py1z/pz)) > tol {
			return false, nil
		}
	}
	return true, nil
}

// TestDSeparationSoundness: whenever the graph algorithm declares
// d-separation, the distribution must factorize — for every random
// parameterization. (The converse can fail only on measure-zero
// parameterizations, so it is not asserted.)
func TestDSeparationSoundness(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 151))
		n := 4 + r.IntN(2)
		nw := randomDAG(r, n)
		x := r.IntN(n)
		y := r.IntN(n)
		if x == y {
			return true
		}
		var z []int
		for v := 0; v < n; v++ {
			if v != x && v != y && r.Float64() < 0.4 {
				z = append(z, v)
			}
		}
		if !nw.DSeparated(x, []int{y}, z) {
			return true // nothing to check
		}
		ok, err := conditionallyIndependent(nw, x, y, z, 1e-9)
		if err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestDSeparationDetectsDependence: in the common-cause network
// X1 ← X0 → X2, d-connection (no conditioning) coincides with real
// numerical dependence, and conditioning on the cause removes it.
func TestDSeparationDetectsDependence(t *testing.T) {
	nw := MustNew([]Node{
		{Name: "cause", Card: 2, CPT: []float64{0.5, 0.5}},
		{Name: "a", Card: 2, Parents: []int{0}, CPT: []float64{0.9, 0.1, 0.2, 0.8}},
		{Name: "b", Card: 2, Parents: []int{0}, CPT: []float64{0.8, 0.2, 0.3, 0.7}},
	})
	if nw.DSeparated(1, []int{2}, nil) {
		t.Error("children of a common cause are dependent")
	}
	ind, err := conditionallyIndependent(nw, 1, 2, nil, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if ind {
		t.Error("numerical check should detect marginal dependence")
	}
	if !nw.DSeparated(1, []int{2}, []int{0}) {
		t.Error("conditioning on the cause should separate")
	}
	ind, err = conditionallyIndependent(nw, 1, 2, []int{0}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !ind {
		t.Error("numerical check should confirm conditional independence")
	}
}
