package bayes

import "fmt"

// DSeparated reports whether every node in ys is d-separated from x
// given the evidence set z, using the reachable-by-active-trail
// procedure (Koller & Friedman, Algorithm 3.1).
func (nw *Network) DSeparated(x int, ys, z []int) bool {
	reach := nw.reachable(x, z)
	inZ := toSet(z, nw.N())
	for _, y := range ys {
		if y == x {
			return false
		}
		if inZ[y] {
			continue // observed nodes are vacuously separated
		}
		if reach[y] {
			return false
		}
	}
	return true
}

// reachable returns the set of nodes connected to x by an active trail
// given evidence z.
func (nw *Network) reachable(x int, z []int) []bool {
	n := nw.N()
	inZ := toSet(z, n)

	// Ancestors of Z (including Z).
	anc := make([]bool, n)
	stack := append([]int{}, z...)
	for _, v := range z {
		anc[v] = true
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range nw.nodes[v].Parents {
			if !anc[p] {
				anc[p] = true
				stack = append(stack, p)
			}
		}
	}

	children := make([][]int, n)
	for i := range nw.nodes {
		for _, p := range nw.nodes[i].Parents {
			children[p] = append(children[p], i)
		}
	}

	const (
		up   = 0 // trail arrived from a child (moving toward parents)
		down = 1 // trail arrived from a parent (moving toward children)
	)
	type state struct{ node, dir int }
	visited := make([][2]bool, n)
	reach := make([]bool, n)
	queue := []state{{x, up}}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if visited[s.node][s.dir] {
			continue
		}
		visited[s.node][s.dir] = true
		if !inZ[s.node] {
			reach[s.node] = true
		}
		if s.dir == up && !inZ[s.node] {
			for _, p := range nw.nodes[s.node].Parents {
				queue = append(queue, state{p, up})
			}
			for _, c := range children[s.node] {
				queue = append(queue, state{c, down})
			}
		} else if s.dir == down {
			if !inZ[s.node] {
				for _, c := range children[s.node] {
					queue = append(queue, state{c, down})
				}
			}
			if anc[s.node] {
				for _, p := range nw.nodes[s.node].Parents {
					queue = append(queue, state{p, up})
				}
			}
		}
	}
	return reach
}

// MarkovBlanket returns the Markov blanket of node i: its parents,
// children, and the children's other parents, sorted ascending.
func (nw *Network) MarkovBlanket(i int) []int {
	n := nw.N()
	in := make([]bool, n)
	for _, p := range nw.nodes[i].Parents {
		in[p] = true
	}
	for _, c := range nw.Children(i) {
		in[c] = true
		for _, p := range nw.nodes[c].Parents {
			if p != i {
				in[p] = true
			}
		}
	}
	var out []int
	for v := 0; v < n; v++ {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}

// Quilt is a Markov quilt (Definition 4.2) for a protected node:
// deleting Q partitions the nodes into the "nearby" set N (containing
// the protected node) and the "remote" set R, with R independent of
// the protected node given Q.
type Quilt struct {
	// Node is the protected node index.
	Node int
	// Q is the quilt (separating) set, sorted ascending. Empty means
	// the trivial quilt with N = all nodes, R = ∅.
	Q []int
	// N is the nearby set, including Node.
	N []int
	// R is the remote set.
	R []int
}

// CardN returns card(X_N), the quantity the quilt score multiplies.
func (q Quilt) CardN() int { return len(q.N) }

// QuiltFor builds the Markov quilt for node i induced by the
// separating set q: R is everything d-separated from i given q, N is
// the rest. It errors if q contains i.
func (nw *Network) QuiltFor(i int, q []int) (Quilt, error) {
	for _, v := range q {
		if v == i {
			return Quilt{}, fmt.Errorf("bayes: quilt set contains protected node %d", i)
		}
		if v < 0 || v >= nw.N() {
			return Quilt{}, fmt.Errorf("bayes: quilt node %d out of range", v)
		}
	}
	reach := nw.reachable(i, q)
	inQ := toSet(q, nw.N())
	quilt := Quilt{Node: i, Q: append([]int{}, q...)}
	for v := 0; v < nw.N(); v++ {
		switch {
		case inQ[v]:
			// quilt member
		case v == i || reach[v]:
			quilt.N = append(quilt.N, v)
		default:
			quilt.R = append(quilt.R, v)
		}
	}
	return quilt, nil
}

// TrivialQuilt returns the quilt with Q = ∅, N = all nodes, R = ∅,
// which every quilt set must contain for Theorem 4.3 to apply.
func (nw *Network) TrivialQuilt(i int) Quilt {
	q := Quilt{Node: i}
	for v := 0; v < nw.N(); v++ {
		q.N = append(q.N, v)
	}
	return q
}

// AllQuilts enumerates the quilts induced by every subset of
// V \ {i} of size at most maxSize, plus the trivial quilt. Exponential
// in maxSize; intended for the small networks Algorithm 2 targets.
func (nw *Network) AllQuilts(i, maxSize int) []Quilt {
	n := nw.N()
	var others []int
	for v := 0; v < n; v++ {
		if v != i {
			others = append(others, v)
		}
	}
	quilts := []Quilt{nw.TrivialQuilt(i)}
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			if q, err := nw.QuiltFor(i, cur); err == nil {
				quilts = append(quilts, q)
			}
		}
		if len(cur) == maxSize {
			return
		}
		for j := start; j < len(others); j++ {
			rec(j+1, append(cur, others[j]))
		}
	}
	rec(0, nil)
	return quilts
}

func toSet(xs []int, n int) []bool {
	s := make([]bool, n)
	for _, x := range xs {
		if x >= 0 && x < n {
			s[x] = true
		}
	}
	return s
}
