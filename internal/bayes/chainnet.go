package bayes

import (
	"fmt"

	"pufferfish/internal/markov"
)

// FromChain converts a Markov chain of length T into the equivalent
// Bayesian network X_1 → X_2 → … → X_T, which is how the Section 4.1
// framework subsumes Example 1. It lets the generic Algorithm 2 and
// the chain-specialized Algorithms 3–4 be cross-checked on the same
// model.
func FromChain(c markov.Chain, T int) (*Network, error) {
	if T < 1 {
		return nil, fmt.Errorf("bayes: chain length %d < 1", T)
	}
	k := c.K()
	nodes := make([]Node, T)
	nodes[0] = Node{
		Name: "X1",
		Card: k,
		CPT:  append([]float64{}, c.Init...),
	}
	// Shared CPT content for the homogeneous transitions.
	trans := make([]float64, k*k)
	for x := 0; x < k; x++ {
		copy(trans[x*k:(x+1)*k], c.P.RawRow(x))
	}
	for t := 1; t < T; t++ {
		nodes[t] = Node{
			Name:    fmt.Sprintf("X%d", t+1),
			Card:    k,
			Parents: []int{t - 1},
			CPT:     trans,
		}
	}
	return New(nodes)
}
