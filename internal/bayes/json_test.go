package bayes

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestJSONRoundTrip: marshal → parse reproduces the network and the
// round-tripped copy answers queries identically.
func TestJSONRoundTrip(t *testing.T) {
	nw := MustNew([]Node{
		{Name: "root", Card: 2, CPT: []float64{0.3, 0.7}},
		{Name: "leaf", Card: 2, Parents: []int{0}, CPT: []float64{0.9, 0.1, 0.2, 0.8}},
	})
	data, err := json.Marshal(nw)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatalf("ParseJSON: %v", err)
	}
	if back.N() != nw.N() || back.Name(1) != "leaf" || back.Card(0) != 2 {
		t.Fatalf("round trip changed structure: %d nodes", back.N())
	}
	d1, err := nw.CountDistGiven([]int{0, 1}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := back.CountDistGiven([]int{0, 1}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Len() != d2.Len() {
		t.Fatalf("round trip changed the count distribution: %d vs %d atoms", d1.Len(), d2.Len())
	}
	for i := 0; i < d1.Len(); i++ {
		x1, p1 := d1.Atom(i)
		x2, p2 := d2.Atom(i)
		if x1 != x2 || p1 != p2 {
			t.Errorf("atom %d: (%v, %v) vs (%v, %v)", i, x1, p1, x2, p2)
		}
	}
}

// TestParseJSONRejects: malformed payloads fail with clear errors and
// invalid networks are refused by the same validation as New.
func TestParseJSONRejects(t *testing.T) {
	if _, err := ParseJSON([]byte(`{"not": "an array"}`)); err == nil || !strings.Contains(err.Error(), "parsing network JSON") {
		t.Errorf("non-array payload: err = %v", err)
	}
	if _, err := ParseJSON([]byte(`[]`)); err == nil || !strings.Contains(err.Error(), "no nodes") {
		t.Errorf("empty array: err = %v", err)
	}
	bad := `[{"name": "A", "card": 2, "cpt": [0.5, 0.6]}]`
	if _, err := ParseJSON([]byte(bad)); err == nil || !strings.Contains(err.Error(), "probability vector") {
		t.Errorf("invalid CPT: err = %v", err)
	}
}
