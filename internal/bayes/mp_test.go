package bayes

import (
	"errors"
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"pufferfish/internal/markov"
)

// randomPolytree builds a random polytree (possibly a forest) on n
// nodes of uniform cardinality card: a random undirected tree skeleton
// with an occasional edge dropped (forests are legal polytrees), each
// kept edge oriented at random, and strictly positive random CPTs.
func randomPolytree(r *rand.Rand, n, card int) *Network {
	parents := make([][]int, n)
	for i := 1; i < n; i++ {
		if r.Float64() < 0.15 {
			continue // leave i in its own component
		}
		j := r.IntN(i)
		if r.Float64() < 0.5 {
			parents[i] = append(parents[i], j)
		} else {
			parents[j] = append(parents[j], i)
		}
	}
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		rows := 1
		for range parents[i] {
			rows *= card
		}
		cpt := make([]float64, rows*card)
		for rIdx := 0; rIdx < rows; rIdx++ {
			row := cpt[rIdx*card : (rIdx+1)*card]
			var tot float64
			for v := range row {
				row[v] = 0.05 + r.Float64()
				tot += row[v]
			}
			for v := range row {
				row[v] /= tot
			}
		}
		nodes[i] = Node{Name: "n", Card: card, Parents: parents[i], CPT: cpt}
	}
	return MustNew(nodes)
}

// TestMarginalsMPMatchesEnumeration: on random polytrees, the
// message-passing marginals agree with brute-force joint enumeration.
func TestMarginalsMPMatchesEnumeration(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 271))
		n := 2 + r.IntN(6)
		card := 2 + r.IntN(2)
		nw := randomPolytree(r, n, card)
		mp, err := nw.MarginalsMP()
		if err != nil {
			t.Logf("seed %d: MarginalsMP: %v", seed, err)
			return false
		}
		for i := 0; i < n; i++ {
			want, err := nw.NodeMarginal(i)
			if err != nil {
				t.Logf("seed %d: NodeMarginal(%d): %v", seed, i, err)
				return false
			}
			for x := range want {
				if math.Abs(mp[i][x]-want[x]) > 1e-9 {
					t.Logf("seed %d: node %d state %d: mp %v, enum %v", seed, i, x, mp[i][x], want[x])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestCountDistGivenMatchesEnumeration: on random polytrees with
// random integer weights and a random conditioning event, the
// sum-augmented message passing reproduces the brute-force conditional
// distribution of Σ_i w[X_i] atom for atom.
func TestCountDistGivenMatchesEnumeration(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 443))
		n := 2 + r.IntN(6)
		card := 2 + r.IntN(2)
		nw := randomPolytree(r, n, card)
		w := make([]int, card)
		for v := range w {
			w[v] = r.IntN(5) - 2
		}
		cond, condState := -1, 0
		if r.Float64() < 0.7 {
			cond = r.IntN(n)
			condState = r.IntN(card)
		}
		sums := map[int]float64{}
		var condMass float64
		err := nw.Enumerate(func(assign []int, p float64) bool {
			if cond >= 0 && assign[cond] != condState {
				return true
			}
			s := 0
			for _, v := range assign {
				s += w[v]
			}
			sums[s] += p
			condMass += p
			return true
		})
		if err != nil {
			t.Logf("seed %d: Enumerate: %v", seed, err)
			return false
		}
		d, err := nw.CountDistGiven(w, cond, condState)
		if err != nil {
			t.Logf("seed %d: CountDistGiven: %v", seed, err)
			return false
		}
		if d.Len() != len(sums) {
			t.Logf("seed %d: %d atoms, enumeration found %d sums", seed, d.Len(), len(sums))
			return false
		}
		for i := 0; i < d.Len(); i++ {
			x, p := d.Atom(i)
			want := sums[int(x)] / condMass
			if math.Abs(p-want) > 1e-9 {
				t.Logf("seed %d: P(F=%v) = %v, enum %v", seed, x, p, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestCountDistGivenMatchesChain: FromChain networks agree with the
// chain's own forward dynamic program at every conditioning position,
// with the 0-based/−1 network convention mapped onto the chain's
// 1-based/0 one.
func TestCountDistGivenMatchesChain(t *testing.T) {
	const T = 7
	chain := markov.BinaryChain(0.3, 0.8, 0.6)
	nw, err := FromChain(chain, T)
	if err != nil {
		t.Fatal(err)
	}
	w := []int{0, 1}
	for cond := -1; cond < T; cond++ {
		for condState := 0; condState < 2; condState++ {
			if cond == -1 && condState > 0 {
				continue
			}
			got, err := nw.CountDistGiven(w, cond, condState)
			if err != nil {
				t.Fatalf("network cond=%d state=%d: %v", cond, condState, err)
			}
			want, err := chain.CountDistGiven(T, w, cond+1, condState)
			if err != nil {
				t.Fatalf("chain cond=%d state=%d: %v", cond, condState, err)
			}
			if got.Len() != want.Len() {
				t.Fatalf("cond=%d state=%d: %d atoms vs chain's %d", cond, condState, got.Len(), want.Len())
			}
			for i := 0; i < got.Len(); i++ {
				gx, gp := got.Atom(i)
				wx, wp := want.Atom(i)
				if gx != wx || math.Abs(gp-wp) > 1e-12 {
					t.Errorf("cond=%d state=%d atom %d: (%v, %v) vs chain (%v, %v)", cond, condState, i, gx, gp, wx, wp)
				}
			}
		}
	}
}

// TestPolytreeRejection: the diamond A→B, A→C, B→D, C→D is a DAG but
// not a polytree; every message-passing entry point must refuse it
// with ErrNotPolytree.
func TestPolytreeRejection(t *testing.T) {
	diamond := MustNew([]Node{
		{Name: "A", Card: 2, CPT: []float64{0.4, 0.6}},
		{Name: "B", Card: 2, Parents: []int{0}, CPT: []float64{0.7, 0.3, 0.2, 0.8}},
		{Name: "C", Card: 2, Parents: []int{0}, CPT: []float64{0.6, 0.4, 0.1, 0.9}},
		{Name: "D", Card: 2, Parents: []int{1, 2}, CPT: []float64{
			0.5, 0.5, 0.3, 0.7, 0.8, 0.2, 0.25, 0.75,
		}},
	})
	if err := diamond.Polytree(); !errors.Is(err, ErrNotPolytree) {
		t.Fatalf("Polytree() = %v, want ErrNotPolytree", err)
	}
	if _, err := diamond.MarginalsMP(); !errors.Is(err, ErrNotPolytree) {
		t.Errorf("MarginalsMP() error = %v, want ErrNotPolytree", err)
	}
	if _, err := diamond.CountDistGiven([]int{0, 1}, -1, 0); !errors.Is(err, ErrNotPolytree) {
		t.Errorf("CountDistGiven error = %v, want ErrNotPolytree", err)
	}
}

// TestCountDistGivenValidation covers the remaining refusal paths:
// zero-probability evidence, mixed cardinalities, and a wrong-length
// weight vector.
func TestCountDistGivenValidation(t *testing.T) {
	point := MustNew([]Node{{Name: "A", Card: 2, CPT: []float64{1, 0}}})
	if _, err := point.CountDistGiven([]int{0, 1}, 0, 1); err == nil || !strings.Contains(err.Error(), "probability zero") {
		t.Errorf("zero-probability evidence: err = %v", err)
	}
	mixed := MustNew([]Node{
		{Name: "A", Card: 2, CPT: []float64{0.5, 0.5}},
		{Name: "B", Card: 3, Parents: []int{0}, CPT: []float64{0.2, 0.3, 0.5, 0.4, 0.4, 0.2}},
	})
	if _, err := mixed.CountDistGiven([]int{0, 1}, -1, 0); err == nil || !strings.Contains(err.Error(), "cardinality") {
		t.Errorf("mixed cardinality: err = %v", err)
	}
	uniform := MustNew([]Node{{Name: "A", Card: 2, CPT: []float64{0.5, 0.5}}})
	if _, err := uniform.CountDistGiven([]int{0, 1, 2}, -1, 0); err == nil || !strings.Contains(err.Error(), "weight vector") {
		t.Errorf("weight length: err = %v", err)
	}
	if _, err := uniform.CountDistGiven([]int{0, 1}, 3, 0); err == nil {
		t.Error("out-of-range conditioning index accepted")
	}
	if _, err := uniform.CountDistGiven([]int{0, 1}, 0, 5); err == nil {
		t.Error("out-of-range conditioning state accepted")
	}
}
