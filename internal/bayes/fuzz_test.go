package bayes

import (
	"encoding/json"
	"testing"
)

// FuzzParseJSON throws arbitrary bytes at the network wire codec: it
// must never panic, and any network it accepts must survive a
// marshal/parse round trip with its structure intact — the property
// the pufferd -network flag and the server's network request field
// both rest on.
func FuzzParseJSON(f *testing.F) {
	f.Add([]byte(`[{"name":"root","card":2,"cpt":[0.3,0.7]},{"name":"leaf","card":2,"parents":[0],"cpt":[0.9,0.1,0.2,0.8]}]`))
	f.Add([]byte(`[{"name": "A", "card": 2, "cpt": [0.5, 0.6]}]`))
	f.Add([]byte(`[{"name":"x","card":1,"cpt":[1]}]`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"name":"loop","card":2,"parents":[0],"cpt":[0.5,0.5,0.5,0.5]}]`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		nw, err := ParseJSON(data)
		if err != nil {
			if nw != nil {
				t.Fatal("ParseJSON returned both a network and an error")
			}
			return
		}
		out, err := json.Marshal(nw)
		if err != nil {
			t.Fatalf("accepted network does not marshal: %v", err)
		}
		back, err := ParseJSON(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.N() != nw.N() {
			t.Fatalf("round trip changed node count: %d then %d", nw.N(), back.N())
		}
		for i := 0; i < nw.N(); i++ {
			if back.Card(i) != nw.Card(i) {
				t.Fatalf("round trip changed node %d cardinality", i)
			}
		}
	})
}
