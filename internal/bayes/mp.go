package bayes

import (
	"errors"
	"fmt"

	"pufferfish/internal/dist"
)

// ErrNotPolytree marks networks whose undirected skeleton contains a
// cycle: the exact message-passing routines below are only correct on
// polytrees (directed graphs whose skeleton is a forest), so they
// refuse such inputs instead of returning silently wrong numbers.
// Loopy networks remain serviceable through the enumeration routines
// (Marginal, MaxInfluence), which are exact on any DAG.
var ErrNotPolytree = errors.New("bayes: network is not a polytree")

// Polytree reports whether the network is a polytree — its undirected
// skeleton (one edge per parent-child arc) is a forest. It returns nil
// for polytrees and an ErrNotPolytree-wrapped error naming the arc
// that closes a cycle otherwise.
func (nw *Network) Polytree() error {
	n := len(nw.nodes)
	root := make([]int, n)
	for i := range root {
		root[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for root[x] != x {
			root[x] = root[root[x]]
			x = root[x]
		}
		return x
	}
	for i, nd := range nw.nodes {
		for _, p := range nd.Parents {
			ri, rp := find(i), find(p)
			if ri == rp {
				return fmt.Errorf("%w: arc %d→%d closes an undirected cycle", ErrNotPolytree, p, i)
			}
			root[ri] = rp
		}
	}
	return nil
}

// components groups the nodes into skeleton-connected components,
// each sorted ascending, ordered by smallest member.
func (nw *Network) components() [][]int {
	n := len(nw.nodes)
	adj := make([][]int, n)
	for i, nd := range nw.nodes {
		for _, p := range nd.Parents {
			adj[i] = append(adj[i], p)
			adj[p] = append(adj[p], i)
		}
	}
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, u := range adj[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// mpMsg is one sum-augmented message of the factor-graph belief
// propagation: vals[x*width + s] is the joint probability mass of the
// message's subtree taking an assignment consistent with the message
// variable at value x whose weight sum over the subtree's count
// variables is s + count·wMin. Marginal queries (no weights) use
// width 1 and count 0 throughout, so one engine serves both.
type mpMsg struct {
	vals  []float64
	width int
	count int
}

// mpEngine runs exact belief propagation on the factor graph of a
// polytree (one factor per node, scope {node} ∪ parents; the factor
// graph of a polytree is a tree, so a single inward pass per query is
// exact). Message order is deterministic — factors ascending, scope in
// (node, parents...) order — so results are bit-identical run to run.
type mpEngine struct {
	nw         *Network
	w          []int // nil for marginal queries
	wMin, span int   // weight range (span = wMax − wMin; 0 when w == nil)
	cond       int   // conditioning node, −1 for none
	condState  int
	varFactors [][]int // variable → factors whose scope contains it
}

func newMPEngine(nw *Network, w []int, cond, condState int) *mpEngine {
	e := &mpEngine{nw: nw, w: w, cond: cond, condState: condState}
	if w != nil {
		e.wMin = w[0]
		wMax := w[0]
		for _, v := range w[1:] {
			if v < e.wMin {
				e.wMin = v
			}
			if v > wMax {
				wMax = v
			}
		}
		e.span = wMax - e.wMin
	}
	n := nw.N()
	e.varFactors = make([][]int, n)
	for f, nd := range nw.nodes {
		e.varFactors[f] = append(e.varFactors[f], f)
		for _, p := range nd.Parents {
			e.varFactors[p] = append(e.varFactors[p], f)
		}
	}
	return e
}

// width is the s-axis length of a message covering count weighted
// variables.
func (e *mpEngine) width(count int) int { return count*e.span + 1 }

// varMsg returns µ_{v→from}: v's own weight atom combined (by
// convolution over the sum axis) with the messages of every adjacent
// factor except from. from = −1 reads the root message.
func (e *mpEngine) varMsg(v, from int) mpMsg {
	card := e.nw.nodes[v].Card
	count := 0
	if e.w != nil {
		count = 1
	}
	m := mpMsg{count: count, width: e.width(count)}
	m.vals = make([]float64, card*m.width)
	for x := 0; x < card; x++ {
		if v == e.cond && x != e.condState {
			continue
		}
		s := 0
		if e.w != nil {
			s = e.w[x] - e.wMin
		}
		m.vals[x*m.width+s] = 1
	}
	for _, g := range e.varFactors[v] {
		if g == from {
			continue
		}
		m = mulConv(m, e.factorMsg(g, v), card)
	}
	return m
}

// mulConv multiplies two messages over the same variable: pointwise in
// x, convolution along the sum axis.
func mulConv(a, b mpMsg, card int) mpMsg {
	out := mpMsg{count: a.count + b.count, width: a.width + b.width - 1}
	out.vals = make([]float64, card*out.width)
	for x := 0; x < card; x++ {
		ar := a.vals[x*a.width : (x+1)*a.width]
		br := b.vals[x*b.width : (x+1)*b.width]
		or := out.vals[x*out.width : (x+1)*out.width]
		for i, av := range ar {
			//privlint:allow floatcompare structural-zero sparsity skip; only exact zeros carry no mass
			if av == 0 {
				continue
			}
			for j, bv := range br {
				or[i+j] += av * bv
			}
		}
	}
	return out
}

// factorMsg returns µ_{f→to}: the factor's CPT folded with the
// messages of its other scope variables, enumerated jointly (scope
// sizes are 1 + parent count — small on the tree-structured networks
// this targets).
func (e *mpEngine) factorMsg(f, to int) mpMsg {
	nd := e.nw.nodes[f]
	scope := make([]int, 0, 1+len(nd.Parents))
	scope = append(scope, f)
	scope = append(scope, nd.Parents...)
	others := make([]int, 0, len(scope))
	for _, u := range scope {
		if u != to {
			others = append(others, u)
		}
	}
	msgs := make([]mpMsg, len(others))
	count := 0
	for i, u := range others {
		msgs[i] = e.varMsg(u, f)
		count += msgs[i].count
	}
	cardTo := e.nw.nodes[to].Card
	out := mpMsg{count: count, width: e.width(count)}
	out.vals = make([]float64, cardTo*out.width)
	assign := make([]int, e.nw.N())
	for {
		// Convolve the selected rows of the other variables' messages.
		conv := []float64{1}
		for i, u := range others {
			m := msgs[i]
			row := m.vals[assign[u]*m.width : (assign[u]+1)*m.width]
			next := make([]float64, len(conv)+m.width-1)
			for i2, cv := range conv {
				//privlint:allow floatcompare structural-zero sparsity skip
				if cv == 0 {
					continue
				}
				for j, rv := range row {
					next[i2+j] += cv * rv
				}
			}
			conv = next
		}
		for xt := 0; xt < cardTo; xt++ {
			assign[to] = xt
			p := e.nw.CondProb(f, assign[f], assign)
			//privlint:allow floatcompare exact-zero conditional probability contributes nothing
			if p == 0 {
				continue
			}
			row := out.vals[xt*out.width : (xt+1)*out.width]
			for s, v := range conv {
				row[s] += p * v
			}
		}
		// Mixed-radix increment over the other variables.
		i := len(others) - 1
		for ; i >= 0; i-- {
			u := others[i]
			assign[u]++
			if assign[u] < e.nw.nodes[u].Card {
				break
			}
			assign[u] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// MarginalsMP returns every node's marginal distribution, computed
// exactly by message passing — O(n) messages per node instead of the
// exponential joint enumeration of NodeMarginal, so it scales to
// polytrees far past maxJointSize. Non-polytree networks return
// ErrNotPolytree.
func (nw *Network) MarginalsMP() ([][]float64, error) {
	if err := nw.Polytree(); err != nil {
		return nil, err
	}
	out := make([][]float64, nw.N())
	for j := range nw.nodes {
		e := newMPEngine(nw, nil, -1, 0)
		m := e.varMsg(j, -1)
		row := make([]float64, nw.nodes[j].Card)
		var total float64
		for x := range row {
			row[x] = m.vals[x]
			total += row[x]
		}
		for x := range row {
			row[x] /= total
		}
		out[j] = row
	}
	return out, nil
}

// CountDist returns the exact distribution of N = Σ_i w[X_i] over the
// network's nodes, by sum-augmented message passing (polytrees only).
func (nw *Network) CountDist(w []int) (dist.Discrete, error) {
	return nw.CountDistGiven(w, -1, 0)
}

// CountDistGiven returns the exact distribution of N = Σ_i w[X_i]
// conditioned on X_cond = condState, where cond is a 0-based node
// index; cond == −1 means no conditioning. All nodes must share one
// cardinality (the count query's weight vector indexes values), the
// network must be a polytree (ErrNotPolytree otherwise), and a
// zero-probability conditioning event is an error.
//
// This is the distribution oracle the network Substrate feeds to the
// count-distribution → W∞ → noise pipeline: the polytree analogue of
// markov.Chain.CountDistGiven, running in O(n · card^(maxParents+1) ·
// range²) instead of joint enumeration.
func (nw *Network) CountDistGiven(w []int, cond, condState int) (dist.Discrete, error) {
	n := nw.N()
	card := nw.nodes[0].Card
	for i, nd := range nw.nodes {
		if nd.Card != card {
			return dist.Discrete{}, fmt.Errorf("bayes: count query needs uniform cardinality; node %d has %d states, want %d", i, nd.Card, card)
		}
	}
	if len(w) != card {
		return dist.Discrete{}, fmt.Errorf("bayes: weight vector has length %d, want %d", len(w), card)
	}
	if cond < -1 || cond >= n {
		return dist.Discrete{}, fmt.Errorf("bayes: conditioning index %d outside [-1,%d)", cond, n)
	}
	if cond >= 0 && (condState < 0 || condState >= card) {
		return dist.Discrete{}, fmt.Errorf("bayes: conditioning state %d outside [0,%d)", condState, card)
	}
	if err := nw.Polytree(); err != nil {
		return dist.Discrete{}, err
	}
	e := newMPEngine(nw, w, cond, condState)
	// Each skeleton component contributes an independent sum; the full
	// distribution is their convolution. The conditioned component is
	// read at the evidence value, the rest summed over their root.
	total := []float64{1}
	for _, comp := range nw.components() {
		rootVar := comp[0]
		inComp := false
		for _, v := range comp {
			if v == cond {
				inComp = true
				break
			}
		}
		if inComp {
			rootVar = cond
		}
		m := e.varMsg(rootVar, -1)
		vec := make([]float64, m.width)
		if inComp {
			copy(vec, m.vals[condState*m.width:(condState+1)*m.width])
		} else {
			cardRoot := nw.nodes[rootVar].Card
			for x := 0; x < cardRoot; x++ {
				for s, v := range m.vals[x*m.width : (x+1)*m.width] {
					vec[s] += v
				}
			}
		}
		next := make([]float64, len(total)+len(vec)-1)
		for i, tv := range total {
			//privlint:allow floatcompare structural-zero sparsity skip
			if tv == 0 {
				continue
			}
			for j, vv := range vec {
				next[i+j] += tv * vv
			}
		}
		total = next
	}
	var mass float64
	for _, v := range total {
		mass += v
	}
	if mass <= 1e-300 {
		return dist.Discrete{}, fmt.Errorf("bayes: conditioning event X_%d=%d has probability zero", cond, condState)
	}
	atoms := 0
	for _, p := range total {
		if p > 0 {
			atoms++
		}
	}
	buf := make([]float64, 2*atoms)
	xs, ps := buf[:atoms:atoms], buf[atoms:]
	i := 0
	for s, p := range total {
		if p <= 0 {
			continue
		}
		xs[i] = float64(s + n*e.wMin)
		ps[i] = p / mass
		i++
	}
	return dist.FromSorted(xs, ps)
}
