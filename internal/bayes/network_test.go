package bayes

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
)

// figure2Network builds the paper's Figure 2 network
// X1 → {X2, X3} → X4 with the given binary CPTs.
func figure2Network() *Network {
	return MustNew([]Node{
		{Name: "X1", Card: 2, CPT: []float64{0.6, 0.4}},
		{Name: "X2", Card: 2, Parents: []int{0}, CPT: []float64{
			0.7, 0.3, // X1=0
			0.2, 0.8, // X1=1
		}},
		{Name: "X3", Card: 2, Parents: []int{0}, CPT: []float64{
			0.5, 0.5,
			0.9, 0.1,
		}},
		{Name: "X4", Card: 2, Parents: []int{1, 2}, CPT: []float64{
			0.99, 0.01, // X2=0, X3=0
			0.4, 0.6, // X2=0, X3=1
			0.3, 0.7, // X2=1, X3=0
			0.05, 0.95, // X2=1, X3=1
		}},
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := New([]Node{{Name: "A", Card: 2, CPT: []float64{0.5, 0.4}}}); err == nil {
		t.Error("non-stochastic CPT accepted")
	}
	if _, err := New([]Node{{Name: "A", Card: 2, CPT: []float64{0.5}}}); err == nil {
		t.Error("short CPT accepted")
	}
	if _, err := New([]Node{{Name: "A", Card: 2, Parents: []int{0}, CPT: []float64{1, 0, 0, 1}}}); err == nil {
		t.Error("self-parent accepted")
	}
	// Cycle: A→B→A.
	_, err := New([]Node{
		{Name: "A", Card: 2, Parents: []int{1}, CPT: []float64{1, 0, 0, 1}},
		{Name: "B", Card: 2, Parents: []int{0}, CPT: []float64{1, 0, 0, 1}},
	})
	if err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestJointFactorization(t *testing.T) {
	nw := figure2Network()
	// P(0,1,0,1) = P(X1=0)·P(X2=1|0)·P(X3=0|0)·P(X4=1|X2=1,X3=0)
	want := 0.6 * 0.3 * 0.5 * 0.7
	if got := nw.JointProb([]int{0, 1, 0, 1}); !floats.Eq(got, want, 1e-12) {
		t.Errorf("JointProb = %v, want %v", got, want)
	}
}

func TestEnumerateSumsToOne(t *testing.T) {
	nw := figure2Network()
	var total float64
	count := 0
	err := nw.Enumerate(func(assign []int, p float64) bool {
		total += p
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 16 {
		t.Errorf("enumerated %d assignments, want 16", count)
	}
	if !floats.Eq(total, 1, 1e-12) {
		t.Errorf("total mass = %v", total)
	}
}

func TestMarginalConsistency(t *testing.T) {
	nw := figure2Network()
	m1, err := nw.NodeMarginal(0)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(m1, []float64{0.6, 0.4}, 1e-12) {
		t.Errorf("P(X1) = %v", m1)
	}
	// P(X2): 0.6·0.7 + 0.4·0.2 = 0.5.
	m2, _ := nw.NodeMarginal(1)
	if !floats.EqSlices(m2, []float64{0.5, 0.5}, 1e-12) {
		t.Errorf("P(X2) = %v", m2)
	}
	// Joint marginal over (X2,X3) must renormalize to the product of
	// sums across X4.
	m23, _ := nw.Marginal([]int{1, 2})
	if !floats.Eq(floats.Sum(m23), 1, 1e-12) {
		t.Errorf("joint marginal sums to %v", floats.Sum(m23))
	}
}

func TestDSeparationFigure2(t *testing.T) {
	nw := figure2Network()
	// X2 ⊥ X3 | X1 (common cause blocked, collider X4 unobserved).
	if !nw.DSeparated(1, []int{2}, []int{0}) {
		t.Error("X2 should be d-separated from X3 given X1")
	}
	// Conditioning on the collider X4 opens the path.
	if nw.DSeparated(1, []int{2}, []int{0, 3}) {
		t.Error("X2 should NOT be d-separated from X3 given {X1, X4}")
	}
	// X1 ⊥ X4 | {X2, X3}.
	if !nw.DSeparated(0, []int{3}, []int{1, 2}) {
		t.Error("X1 should be d-separated from X4 given {X2,X3}")
	}
	// Unconditionally, X1 and X4 are dependent.
	if nw.DSeparated(0, []int{3}, nil) {
		t.Error("X1 and X4 should be connected unconditionally")
	}
}

func TestDSeparationChain(t *testing.T) {
	c := markov.MustNew([]float64{0.5, 0.5}, matrix.FromRows([][]float64{{0.9, 0.1}, {0.4, 0.6}}))
	nw, err := FromChain(c, 6)
	if err != nil {
		t.Fatal(err)
	}
	// X1 ⊥ X6 | X3.
	if !nw.DSeparated(0, []int{5}, []int{2}) {
		t.Error("chain: X1 ⊥ X6 | X3 should hold")
	}
	if nw.DSeparated(0, []int{5}, nil) {
		t.Error("chain: X1 and X6 dependent unconditionally")
	}
	// Two-sided separation around X3: {X2, X4} separates it from the rest.
	if !nw.DSeparated(2, []int{0, 5}, []int{1, 3}) {
		t.Error("chain: {X2,X4} should separate X3 from {X1,X6}")
	}
}

func TestMarkovBlanket(t *testing.T) {
	nw := figure2Network()
	if got := nw.MarkovBlanket(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("MB(X1) = %v, want [1 2]", got)
	}
	if got := nw.MarkovBlanket(1); !reflect.DeepEqual(got, []int{0, 2, 3}) {
		t.Errorf("MB(X2) = %v, want [0 2 3]", got)
	}
	// Blanket property: node ⊥ rest | blanket.
	for i := 0; i < nw.N(); i++ {
		mb := nw.MarkovBlanket(i)
		inMB := map[int]bool{i: true}
		for _, v := range mb {
			inMB[v] = true
		}
		var rest []int
		for v := 0; v < nw.N(); v++ {
			if !inMB[v] {
				rest = append(rest, v)
			}
		}
		if len(rest) > 0 && !nw.DSeparated(i, rest, mb) {
			t.Errorf("node %d not separated from %v by blanket %v", i, rest, mb)
		}
	}
}

func TestQuiltFor(t *testing.T) {
	c := markov.MustNew([]float64{0.5, 0.5}, matrix.FromRows([][]float64{{0.9, 0.1}, {0.4, 0.6}}))
	nw, err := FromChain(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Quilt {X3, X7} for X5 (0-based: {2, 6} for 4):
	q, err := nw.QuiltFor(4, []int{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.N, []int{3, 4, 5}) {
		t.Errorf("N = %v, want [3 4 5]", q.N)
	}
	if !reflect.DeepEqual(q.R, []int{0, 1, 7}) {
		t.Errorf("R = %v, want [0 1 7]", q.R)
	}
	if q.CardN() != 3 {
		t.Errorf("CardN = %d", q.CardN())
	}
	// Remote set must be d-separated given the quilt.
	if !nw.DSeparated(4, q.R, q.Q) {
		t.Error("R not d-separated from node given Q")
	}
	// Quilt containing the node itself errors.
	if _, err := nw.QuiltFor(4, []int{4}); err == nil {
		t.Error("quilt containing protected node accepted")
	}
}

func TestTrivialQuilt(t *testing.T) {
	nw := figure2Network()
	q := nw.TrivialQuilt(2)
	if len(q.Q) != 0 || len(q.R) != 0 || q.CardN() != 4 {
		t.Errorf("trivial quilt wrong: %+v", q)
	}
}

func TestAllQuiltsContainsBlanketAndTrivial(t *testing.T) {
	nw := figure2Network()
	quilts := nw.AllQuilts(0, 2)
	foundTrivial, foundBlanket := false, false
	for _, q := range quilts {
		if len(q.Q) == 0 && len(q.R) == 0 {
			foundTrivial = true
		}
		if reflect.DeepEqual(q.Q, []int{1, 2}) && reflect.DeepEqual(q.R, []int{3}) {
			foundBlanket = true
		}
	}
	if !foundTrivial || !foundBlanket {
		t.Errorf("quilts missing trivial (%v) or blanket (%v)", foundTrivial, foundBlanket)
	}
}

// TestMaxInfluenceSection43 reproduces the Section 4.3 worked example:
// chain T=3, q=[0.8, 0.2], P=[[0.9,0.1],[0.4,0.6]]. The quilts
// ∅, {X1}, {X3}, {X1,X3} for X2 have max-influence 0, log 6, log 6,
// log 36.
func TestMaxInfluenceSection43(t *testing.T) {
	c := markov.MustNew([]float64{0.8, 0.2}, matrix.FromRows([][]float64{{0.9, 0.1}, {0.4, 0.6}}))
	nw, err := FromChain(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		A    []int
		want float64
	}{
		{nil, 0},
		{[]int{0}, math.Log(6)},
		{[]int{2}, math.Log(6)},
		{[]int{0, 2}, math.Log(36)},
	}
	for _, cse := range cases {
		got, err := nw.MaxInfluence(cse.A, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !floats.Eq(got, cse.want, 1e-9) {
			t.Errorf("MaxInfluence(%v | X2) = %v, want %v", cse.A, got, cse.want)
		}
	}
}

func TestMaxInfluenceIndependent(t *testing.T) {
	// Two independent coins: influence must be zero.
	nw := MustNew([]Node{
		{Name: "A", Card: 2, CPT: []float64{0.3, 0.7}},
		{Name: "B", Card: 2, CPT: []float64{0.6, 0.4}},
	})
	got, err := nw.MaxInfluence([]int{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-12 {
		t.Errorf("influence between independent nodes = %v", got)
	}
}

func TestMaxInfluenceDeterministicIsInf(t *testing.T) {
	// B copies A: conditionals have disjoint support → +Inf.
	nw := MustNew([]Node{
		{Name: "A", Card: 2, CPT: []float64{0.5, 0.5}},
		{Name: "B", Card: 2, Parents: []int{0}, CPT: []float64{1, 0, 0, 1}},
	})
	got, err := nw.MaxInfluence([]int{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("influence of deterministic copy = %v, want +Inf", got)
	}
}

// Property: max-influence from the network enumeration equals the
// value computed from the chain's own conditional marginals for
// single-node quilts on random chains.
func TestMaxInfluenceMatchesChainConditionals(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 83))
		p0 := 0.15 + 0.7*r.Float64()
		p1 := 0.15 + 0.7*r.Float64()
		q0 := 0.1 + 0.8*r.Float64()
		c := markov.BinaryChain(q0, p0, p1)
		T := 4
		nw, err := FromChain(c, T)
		if err != nil {
			return false
		}
		i := 1 + r.IntN(T) // protected node, 1-based
		j := 1 + r.IntN(T) // quilt node, 1-based
		if i == j {
			return true
		}
		got, err := nw.MaxInfluence([]int{j - 1}, i-1)
		if err != nil {
			return false
		}
		// Direct computation from conditionals.
		want := 0.0
		for a := 0; a < 2; a++ {
			pa, errA := c.NodeMarginalGiven(T, j, i, a)
			if errA != nil {
				continue
			}
			for b := 0; b < 2; b++ {
				pb, errB := c.NodeMarginalGiven(T, j, i, b)
				if errB != nil {
					continue
				}
				for y := 0; y < 2; y++ {
					if pa[y] > 0 && pb[y] > 0 {
						if v := math.Log(pa[y] / pb[y]); v > want {
							want = v
						}
					}
				}
			}
		}
		return floats.Eq(got, want, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFromChainMatchesMarginals(t *testing.T) {
	c := markov.MustNew([]float64{0.8, 0.2}, matrix.FromRows([][]float64{{0.9, 0.1}, {0.4, 0.6}}))
	T := 5
	nw, err := FromChain(c, T)
	if err != nil {
		t.Fatal(err)
	}
	marg := c.Marginals(T)
	for i := 0; i < T; i++ {
		m, err := nw.NodeMarginal(i)
		if err != nil {
			t.Fatal(err)
		}
		if !floats.EqSlices(m, marg[i], 1e-10) {
			t.Errorf("node %d marginal %v vs chain %v", i, m, marg[i])
		}
	}
}

func TestEnumerateTooLarge(t *testing.T) {
	// 23 binary nodes exceed the enumeration cap.
	nodes := make([]Node, 23)
	for i := range nodes {
		nodes[i] = Node{Name: "n", Card: 2, CPT: []float64{0.5, 0.5}}
	}
	nw := MustNew(nodes)
	if err := nw.Enumerate(func([]int, float64) bool { return true }); err == nil {
		t.Error("expected ErrTooLarge")
	}
}
