package bayes

import (
	"encoding/json"
	"fmt"
)

// NodeJSON is the wire form of one network node. It mirrors Node with
// lowercase keys so release configs, server requests, and CLI network
// files share one schema:
//
//	{"name": "X1", "card": 2, "parents": [], "cpt": [0.4, 0.6]}
type NodeJSON struct {
	Name    string    `json:"name"`
	Card    int       `json:"card"`
	Parents []int     `json:"parents,omitempty"`
	CPT     []float64 `json:"cpt"`
}

// ParseJSON decodes a network from its wire form — a JSON array of
// NodeJSON objects — and validates it through New, so a decoded
// network carries the same guarantees as one built in process.
func ParseJSON(data []byte) (*Network, error) {
	var raw []NodeJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("bayes: parsing network JSON: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("bayes: network JSON has no nodes")
	}
	nodes := make([]Node, len(raw))
	for i, nj := range raw {
		nodes[i] = Node{Name: nj.Name, Card: nj.Card, Parents: nj.Parents, CPT: nj.CPT}
	}
	return New(nodes)
}

// MarshalJSON renders the network in the ParseJSON wire form.
func (nw *Network) MarshalJSON() ([]byte, error) {
	out := make([]NodeJSON, len(nw.nodes))
	for i, nd := range nw.nodes {
		out[i] = NodeJSON{Name: nd.Name, Card: nd.Card, Parents: nd.Parents, CPT: nd.CPT}
	}
	return json.Marshal(out)
}
