package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"pufferfish/internal/accounting"
	"pufferfish/internal/faultfs"
	"pufferfish/internal/release"
)

const (
	snapPath = "/data/snapshot.json"
	dwalPath = "/data/accounting.wal"
)

// deltaGrid is the report grid the crash-safety property is asserted
// on: at every δ here, the recovered cumulative ε must dominate the
// spend of the releases that were actually delivered.
var deltaGrid = []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3}

func durClock() *faultfs.FixedClock {
	return &faultfs.FixedClock{At: time.Unix(1700000000, 0), Step: time.Millisecond}
}

// bootDurable opens the durable state and builds a server on it.
func bootDurable(t *testing.T, c *faultfs.CrashFS) (*Server, *DurableState) {
	t.Helper()
	st, err := OpenDurable(c, durClock(), snapPath, dwalPath)
	if err != nil {
		t.Fatalf("open durable state: %v", err)
	}
	s := New(Config{Cache: st.Cache, Accountants: st.Accountants, WAL: st.WAL})
	return s, st
}

// driveScenario replays the fixed request sequence against a freshly
// booted server, returning the entries of every release whose noisy
// histogram was actually returned (HTTP 200), keyed by session. A
// request failing (because the injected crash killed the journal) is
// recorded as undelivered — exactly the accounting outcome the
// charge-ahead invariant is allowed to over-count.
func driveScenario(t *testing.T, c *faultfs.CrashFS, s *Server) map[string][]accounting.Entry {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	delivered := map[string][]accounting.Entry{}

	reqs := []ReleaseRequest{
		{Series: accountantSeries, Epsilon: 0.5, Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: 1, Accountant: "a"},
		{Series: accountantSeries, Epsilon: 0.5, Delta: 1e-6, Mechanism: release.MechKantorovich,
			Noise: release.NoiseGaussian, Smoothing: 0.5, Seed: 2, Accountant: "a"},
		{Series: accountantSeries, Epsilon: 1, Mechanism: release.MechDP, Seed: 3, Accountant: "b"},
		{Series: accountantSeries, Epsilon: 0.25, Mechanism: release.MechDP, Seed: 4, Accountant: "a"},
	}
	checkpointAfter := 1 // run a Checkpoint mid-scenario: snapshot + rotate crash points
	for i, req := range reqs {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req)
		if resp.StatusCode == http.StatusOK {
			var report release.Report
			mustUnmarshal(t, body, &report)
			if report.Accounting == nil {
				t.Fatalf("request %d: delivered release without accounting block", i)
			}
			e := accounting.Entry{Kind: report.Accounting.Kind, Mechanism: req.Mechanism, Eps: req.Epsilon}
			if e.Kind == accounting.KindGaussian {
				e.Delta, e.Rho = req.Delta, report.Accounting.Rho
			}
			delivered[req.Accountant] = append(delivered[req.Accountant], e)
		}
		if i == checkpointAfter {
			// Errors are expected when the sweep crashes inside the
			// checkpoint; the invariant check below is what matters.
			_ = Checkpoint(c, snapPath, s, s.wal)
		}
	}
	return delivered
}

// assertRecoveredDominates checks the crash-safety property: for every
// session, the recovered ledger's ε at every δ on the grid is at least
// the ε of the releases that were actually delivered.
func assertRecoveredDominates(t *testing.T, tag string, recovered map[string]*accounting.Ledger, delivered map[string][]accounting.Entry) {
	t.Helper()
	for session, entries := range delivered {
		led, ok := recovered[session]
		if !ok {
			t.Fatalf("%s: session %q delivered %d releases but was not recovered", tag, session, len(entries))
		}
		want := accounting.NewLedger(accounting.DefaultDelta)
		for _, e := range entries {
			if err := want.Add(e); err != nil {
				t.Fatalf("%s: rebuild delivered ledger: %v", tag, err)
			}
		}
		if led.Count() < want.Count() {
			t.Fatalf("%s: session %q recovered %d releases, delivered %d",
				tag, session, led.Count(), want.Count())
		}
		for _, delta := range deltaGrid {
			got, err := led.Epsilon(delta)
			if err != nil {
				t.Fatalf("%s: recovered ε(%g): %v", tag, delta, err)
			}
			min, err := want.Epsilon(delta)
			if err != nil {
				t.Fatalf("%s: delivered ε(%g): %v", tag, delta, err)
			}
			// Strict ≥: both sides are computed by the same code over
			// supersets/subsets of the same entries, so no float slack
			// is needed — a superset's curve dominates pointwise.
			if got < min {
				t.Fatalf("%s: session %q under-accounted: recovered ε(δ=%g) = %v < delivered %v",
					tag, session, delta, got, min)
			}
		}
	}
}

// TestDurableRoundTrip: a clean boot → traffic → checkpoint → crash →
// reboot cycle recovers exactly the accounted state: nothing torn,
// post-checkpoint records replayed, warm cache loaded, and the
// recovered spend dominating the delivered spend at every δ.
func TestDurableRoundTrip(t *testing.T) {
	c := faultfs.NewCrashFS()
	s, st := bootDurable(t, c)
	if st.Replayed != 0 || st.Torn {
		t.Fatalf("fresh boot: %+v", st)
	}
	delivered := driveScenario(t, c, s)
	if n := len(delivered["a"]) + len(delivered["b"]); n != 4 {
		t.Fatalf("clean run delivered %d/4 releases", n)
	}
	if stats := s.Stats(); stats.WAL == nil || stats.WAL.Appends != 4 {
		t.Fatalf("wal stats: %+v", stats.WAL)
	}

	c.Crash()
	c.Restart()
	s2, st2 := bootDurable(t, c)
	// The checkpoint ran after release 1 (sequence 2 was mid-flight on
	// session "a" when the snapshot cut), so at least the two
	// post-checkpoint records replay from the journal.
	if st2.Replayed == 0 {
		t.Fatalf("no journal records replayed: %+v", st2)
	}
	if st2.Torn {
		t.Fatal("clean shutdown left a torn journal")
	}
	assertRecoveredDominates(t, "round trip", s2.accountants, delivered)
	// The checkpoint-time warm cache survived the crash.
	if s2.Cache().Len() == 0 {
		t.Fatal("cache not restored")
	}
}

// TestLegacySnapshotNextToWAL: a pre-accounting cache-only snapshot
// file (bare core.CacheSnapshot, no wal_seq) sitting next to a journal
// replays the WHOLE journal — with no low-water mark to trust, the only
// safe direction is to over-count every journaled charge.
func TestLegacySnapshotNextToWAL(t *testing.T) {
	c := faultfs.NewCrashFS()
	s, _ := bootDurable(t, c)
	delivered := driveScenario(t, c, s)
	if n := len(delivered["a"]) + len(delivered["b"]); n != 4 {
		t.Fatalf("clean run delivered %d/4 releases", n)
	}
	// Overwrite the snapshot with a legacy cache-only file: what an
	// operator upgrading from a pre-WAL pufferd would have on disk.
	blob := []byte(`{"version": 1, "scores": []}` + "\n")
	f, err := c.OpenFile(snapPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(blob); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncDir("/data"); err != nil {
		t.Fatal(err)
	}

	c.Crash()
	c.Restart()
	st, err := OpenDurable(c, durClock(), snapPath, dwalPath)
	if err != nil {
		t.Fatalf("recovery over legacy snapshot: %v", err)
	}
	defer st.WAL.Close()
	// The mid-scenario checkpoint rotated records 1–2 out of the
	// journal, so the legacy boot replays the two post-checkpoint
	// records — and, with no wal_seq to skip by, every record it finds.
	if st.Replayed == 0 {
		t.Fatal("legacy snapshot replayed nothing from the journal")
	}
	post := map[string][]accounting.Entry{}
	for sess, entries := range delivered {
		for i, e := range entries {
			// Sessions "a" delivered 3 releases (indices 0–2), "b" one.
			// Releases after the checkpoint (a's last, b's only) must be
			// recovered from the journal alone.
			if (sess == "a" && i >= 2) || sess == "b" {
				post[sess] = append(post[sess], e)
			}
		}
	}
	assertRecoveredDominates(t, "legacy snapshot", st.Accountants, post)
}

// TestCrashPointSweep is the fault-injection acceptance test: a crash
// injected at EVERY filesystem operation of the traffic scenario —
// mid-WAL-append, mid-snapshot, mid-rotate — must leave a state from
// which recovery (a) succeeds, and (b) accounts at least the spend of
// every release whose noise was actually returned, at every δ on the
// report grid.
func TestCrashPointSweep(t *testing.T) {
	// First, count the filesystem operations of a clean scenario.
	clean := faultfs.NewCrashFS()
	sClean, _ := bootDurable(t, clean)
	base := clean.Ops()
	driveScenario(t, clean, sClean)
	total := clean.Ops() - base
	if total < 10 {
		t.Fatalf("scenario only performs %d fs ops; sweep would be vacuous", total)
	}

	for n := 1; n <= total; n++ {
		c := faultfs.NewCrashFS()
		s, _ := bootDurable(t, c)
		c.CrashAtOp(n)
		delivered := driveScenario(t, c, s)

		c.Restart()
		st, err := OpenDurable(c, durClock(), snapPath, dwalPath)
		if err != nil {
			t.Fatalf("crash at op %d: recovery failed: %v", n, err)
		}
		recovered := st.Accountants
		if recovered == nil {
			recovered = map[string]*accounting.Ledger{}
		}
		tag := fmt.Sprintf("crash at op %d", n)
		assertRecoveredDominates(t, tag, recovered, delivered)
		st.WAL.Close()
	}
}
