package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// errShed marks an acquire refused because the waiter queue was full;
// handlers map it to 429 + Retry-After so well-behaved clients back
// off instead of deepening the pile-up.
var errShed = errors.New("server: scoring queue is full; retry later")

// budget is the process-wide scoring-worker semaphore. Each release
// request asks for a parallelism and is granted what the host can
// spare: at least one worker (so no request starves behind a greedy
// one forever), at most the request's ask, never more than the free
// budget. Mapping grants onto sched pool sizes keeps total scoring
// concurrency at or below the host budget no matter how many requests
// are in flight — the released values are identical at every grant.
type budget struct {
	mu   sync.Mutex
	cond *sync.Cond
	// total and maxQueue are fixed at construction and read lock-free.
	total int
	avail int // guarded by mu
	// maxQueue bounds the number of goroutines blocked in acquire
	// (0 = unbounded); waiting is the current count. When the queue is
	// full a saturated acquire returns errShed immediately instead of
	// joining the pile — bounded load shedding beats unbounded latency.
	maxQueue int
	waiting  int // guarded by mu
}

func newBudget(total, maxQueue int) *budget {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	b := &budget{total: total, avail: total, maxQueue: maxQueue}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// acquire blocks until at least one worker is free or ctx is done, and
// grants min(want, free); want <= 0 asks for everything free. When the
// pool is saturated and maxQueue waiters are already queued it returns
// errShed without blocking. The caller must release the grant.
func (b *budget) acquire(ctx context.Context, want int) (int, error) {
	if want <= 0 || want > b.total {
		want = b.total
	}
	stop := context.AfterFunc(ctx, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.cond.Broadcast()
	})
	defer stop()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.avail == 0 && b.maxQueue > 0 && b.waiting >= b.maxQueue {
		return 0, errShed
	}
	b.waiting++
	for b.avail == 0 {
		if err := ctx.Err(); err != nil {
			b.waiting--
			return 0, err
		}
		b.cond.Wait()
	}
	b.waiting--
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	g := min(want, b.avail)
	b.avail -= g
	return g, nil
}

// release returns a grant to the pool and wakes waiters. Returning
// more workers than were ever granted is a double-release accounting
// bug in a handler; clamping it silently would mask the bug (and let
// the semaphore oversubscribe the host on the next acquire), so it
// panics instead.
func (b *budget) release(n int) {
	if n <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	outstanding := b.total - b.avail
	if n > outstanding {
		panic(fmt.Sprintf("server: budget released %d workers but only %d were granted (double release)",
			n, outstanding))
	}
	b.avail += n
	b.cond.Broadcast()
}

// inUse returns the number of currently granted workers.
func (b *budget) inUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total - b.avail
}

// queued returns the number of goroutines blocked in acquire — the
// wait-queue depth behind the pufferd_workers_queued gauge.
func (b *budget) queued() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waiting
}
