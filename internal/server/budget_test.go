package server

import (
	"context"
	"runtime"
	"testing"
	"time"
)

func TestBudgetGrants(t *testing.T) {
	b := newBudget(4, 0)
	ctx := context.Background()

	g, err := b.acquire(ctx, 0) // unbounded ask takes everything free
	if err != nil || g != 4 {
		t.Fatalf("acquire(0) = (%d, %v), want (4, nil)", g, err)
	}
	b.release(g)

	g1, err := b.acquire(ctx, 3)
	if err != nil || g1 != 3 {
		t.Fatalf("acquire(3) = (%d, %v)", g1, err)
	}
	g2, err := b.acquire(ctx, 3) // only 1 free: granted 1, not blocked
	if err != nil || g2 != 1 {
		t.Fatalf("acquire(3) with 1 free = (%d, %v), want (1, nil)", g2, err)
	}
	if b.inUse() != 4 {
		t.Fatalf("inUse = %d", b.inUse())
	}

	// A third acquire blocks until something frees, then gets a grant.
	got := make(chan int, 1)
	go func() {
		g, err := b.acquire(ctx, 2)
		if err != nil {
			got <- -1
			return
		}
		got <- g
	}()
	select {
	case g := <-got:
		t.Fatalf("acquire on an empty budget returned %d immediately", g)
	case <-time.After(50 * time.Millisecond):
	}
	b.release(g1)
	select {
	case g := <-got:
		if g != 2 {
			t.Fatalf("unblocked grant = %d, want 2", g)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acquire never unblocked after release")
	}

	// Over-ask is clamped to the total.
	b.release(2)
	b.release(g2)
	g, err = b.acquire(ctx, 99)
	if err != nil || g != 4 {
		t.Fatalf("acquire(99) = (%d, %v), want (4, nil)", g, err)
	}
	b.release(g)
}

func TestBudgetContextCancel(t *testing.T) {
	b := newBudget(1, 0)
	g, err := b.acquire(context.Background(), 1)
	if err != nil || g != 1 {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := b.acquire(ctx, 1)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled acquire succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled acquire never returned")
	}
	b.release(g)
	// The budget is intact after the cancelled waiter.
	if g, err := b.acquire(context.Background(), 1); err != nil || g != 1 {
		t.Fatalf("post-cancel acquire = (%d, %v)", g, err)
	}
}

// TestBudgetDoubleReleasePanics: returning more workers than were
// granted is a handler accounting bug and must fail loudly, not be
// clamped into silence.
func TestBudgetDoubleReleasePanics(t *testing.T) {
	b := newBudget(4, 0)
	g, err := b.acquire(context.Background(), 2)
	if err != nil || g != 2 {
		t.Fatalf("acquire(2) = (%d, %v)", g, err)
	}
	b.release(g) // legitimate
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double release did not panic")
			}
		}()
		b.release(g) // the same grant again: avail would exceed total
	}()
	// A single extra worker over the grant must panic too.
	g, err = b.acquire(context.Background(), 3)
	if err != nil || g != 3 {
		t.Fatalf("acquire(3) = (%d, %v)", g, err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("over-release did not panic")
			}
		}()
		b.release(g + 1)
	}()
}

func TestBudgetDefaultsToGOMAXPROCS(t *testing.T) {
	b := newBudget(0, 0)
	if b.total != runtime.GOMAXPROCS(0) {
		t.Errorf("total = %d, want GOMAXPROCS %d", b.total, runtime.GOMAXPROCS(0))
	}
}
