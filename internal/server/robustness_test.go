package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pufferfish/internal/release"
)

// TestSessionCapConfigurable: Config.MaxAccountants bounds the session
// map at exactly the configured value; the first request past it gets
// 403 (not a generic 400) and shows up in the session_refusals
// counter, while established sessions keep working.
func TestSessionCapConfigurable(t *testing.T) {
	s := New(Config{MaxAccountants: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := ReleaseRequest{
		Series: accountantSeries, Epsilon: 1,
		Mechanism: release.MechDP, Seed: 1,
	}
	for i := 0; i < 2; i++ {
		req.Accountant = fmt.Sprintf("tenant-%d", i)
		if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("session %d under the cap: %d %s", i, resp.StatusCode, body)
		}
	}
	// The boundary: session 3 on a cap of 2.
	req.Accountant = "tenant-2"
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("session over the cap: %d %s", resp.StatusCode, body)
	}
	// Established sessions are unaffected.
	req.Accountant = "tenant-0"
	if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("existing session at the cap: %d %s", resp.StatusCode, body)
	}
	st := getStats(t, ts.Client(), ts.URL)
	if st.SessionRefusals != 1 {
		t.Fatalf("session_refusals = %d, want 1", st.SessionRefusals)
	}
	if len(st.Accountants) != 2 {
		t.Fatalf("%d sessions minted under a cap of 2", len(st.Accountants))
	}
}

// TestCeilingRefusedBeforeScoring: a release that would breach the
// session ceiling is refused with 403 before any scoring work runs
// (the scoring hook fires only for admitted requests), the refusal is
// counted, and the session's recorded spend never moves.
func TestCeilingRefusedBeforeScoring(t *testing.T) {
	s := New(Config{CeilingEps: 2.5, CeilingDelta: 1e-5})
	var scored atomic.Int64
	s.scoringHook = func() { scored.Add(1) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := ReleaseRequest{
		Series: accountantSeries, Epsilon: 1,
		Mechanism: release.MechMQMExact, Smoothing: 0.5, Accountant: "capped",
	}
	for i := 0; i < 2; i++ {
		req.Seed = uint64(i)
		if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("release %d under the ceiling: %d %s", i, resp.StatusCode, body)
		}
	}
	admitted := scored.Load()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("over-ceiling release: %d %s", resp.StatusCode, body)
	}
	if scored.Load() != admitted {
		t.Fatal("refused release reached the scoring stage")
	}
	st := getStats(t, ts.Client(), ts.URL)
	if st.BudgetRefusals != 1 {
		t.Fatalf("budget_refusals = %d, want 1", st.BudgetRefusals)
	}
	if got := st.Accountants["capped"].Releases; got != 2 {
		t.Fatalf("refused release charged the session: %d releases", got)
	}

	// A batch that jointly breaches the ceiling is refused whole, up
	// front — no member is scored or charged.
	batch := BatchRequest{Requests: []ReleaseRequest{req}}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/release/batch", batch)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("over-ceiling batch: %d %s", resp.StatusCode, body)
	}
	if scored.Load() != admitted {
		t.Fatal("refused batch reached the scoring stage")
	}
	if st := getStats(t, ts.Client(), ts.URL); st.Accountants["capped"].Releases != 2 {
		t.Fatal("refused batch charged the session")
	}
}

// TestCeilingGaussianExactPrecheck: the Gaussian pre-scoring check
// uses the exact entry Finish would charge (W∞ cancels out of ρ), so
// admission and the eventual charge agree: a request admitted by the
// check completes, and the first one refused is refused consistently.
func TestCeilingGaussianExactPrecheck(t *testing.T) {
	s := New(Config{CeilingEps: 0.6, CeilingDelta: 1e-5})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req := ReleaseRequest{
		Series: accountantSeries, Epsilon: 0.5, Delta: 1e-6,
		Mechanism: release.MechKantorovich, Noise: release.NoiseGaussian,
		Smoothing: 0.5, Accountant: "gauss",
	}
	okCount := 0
	for i := 0; i < 8; i++ {
		req.Seed = uint64(i)
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req)
		switch resp.StatusCode {
		case http.StatusOK:
			okCount++
		case http.StatusForbidden:
			// Once refused, every identical follow-up is refused too.
			if i == 0 {
				t.Fatalf("first release refused: %s", body)
			}
			st := getStats(t, ts.Client(), ts.URL)
			if got := st.Accountants["gauss"].Releases; got != okCount {
				t.Fatalf("session charged %d releases, %d admitted", got, okCount)
			}
			return
		default:
			t.Fatalf("release %d: %d %s", i, resp.StatusCode, body)
		}
	}
	t.Fatal("ceiling never engaged over 8 Gaussian releases")
}

// TestQueueShedding: with the worker pool saturated and the wait queue
// full, a scoring request is shed with 429 + Retry-After instead of
// piling up, and the shed shows in stats. Draining the pool lets the
// queued request complete normally.
func TestQueueShedding(t *testing.T) {
	s := New(Config{Workers: 1, MaxQueue: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Saturate the pool out-of-band.
	grant, err := s.budget.acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	req := ReleaseRequest{
		Series: accountantSeries, Epsilon: 1,
		Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: 1,
	}
	// One request may wait (queue depth 1)...
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req)
		done <- result{resp.StatusCode, body}
	}()
	waitFor(t, "queued waiter", func() bool {
		s.budget.mu.Lock()
		defer s.budget.mu.Unlock()
		return s.budget.waiting == 1
	})
	// ...the next is shed immediately.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	s.budget.release(grant)
	if r := <-done; r.status != http.StatusOK {
		t.Fatalf("queued request after drain: %d %s", r.status, r.body)
	}
	if st := getStats(t, ts.Client(), ts.URL); st.ShedTotal != 1 {
		t.Fatalf("shed_total = %d, want 1", st.ShedTotal)
	}
}

// TestRequestTimeout: the configured deadline propagates through the
// pipeline; a request that outlives it aborts with 503 at the next
// stage boundary, for both the scoring and the no-scoring paths.
func TestRequestTimeout(t *testing.T) {
	s := New(Config{RequestTimeout: 20 * time.Millisecond})
	s.scoringHook = func() { time.Sleep(60 * time.Millisecond) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	scoring := ReleaseRequest{
		Series: accountantSeries, Epsilon: 1,
		Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: 1,
	}
	if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", scoring); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out scoring request: %d %s", resp.StatusCode, body)
	}
	direct := ReleaseRequest{
		Series: accountantSeries, Epsilon: 1,
		Mechanism: release.MechDP, Seed: 1, Accountant: "late",
	}
	if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", direct); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out direct request: %d %s", resp.StatusCode, body)
	}
	// The aborted request never charged its session.
	if st := getStats(t, ts.Client(), ts.URL); st.Accountants["late"].Releases != 0 {
		t.Fatal("timed-out request charged the ledger")
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
