package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"pufferfish/internal/accounting"
	"pufferfish/internal/core"
	"pufferfish/internal/faultfs"
	"pufferfish/internal/release"
)

// snapshotFile is the pufferd -cache-file layout since the accounting
// ledger landed: the score-cache snapshot next to the named accountant
// sessions, so a restart resumes both the warm scores and the
// cumulative privacy budgets. Older files that are a bare
// core.CacheSnapshot (top-level "version"/"scores" keys) still load —
// they simply carry no accountants. WalSeq ties the snapshot to the
// accounting journal: every WAL record with seq ≤ WalSeq is already
// folded into the Accountants ledgers, so recovery replays only the
// records after it (and a crash between snapshot and WAL rotation
// cannot double-count).
type snapshotFile struct {
	Cache       core.CacheSnapshot             `json:"cache"`
	Accountants map[string]accounting.Snapshot `json:"accountants,omitempty"`
	WalSeq      uint64                         `json:"wal_seq,omitempty"`
}

// LoadSnapshotFile reads a snapshot written by SaveSnapshotFile (or a
// pre-accounting cache-only file) and returns a warmed cache plus the
// restored accountant sessions, ready for Config. A missing file is
// not an error: it returns a fresh empty cache and no accountants
// (first boot).
func LoadSnapshotFile(path string) (*release.ScoreCache, map[string]*accounting.Ledger, error) {
	cache, accountants, _, err := LoadSnapshotFS(faultfs.OS, path)
	return cache, accountants, err
}

// LoadSnapshotFS is LoadSnapshotFile against an explicit filesystem
// (the fault-injection seam), also returning the snapshot's WAL
// low-water sequence for journal replay.
func LoadSnapshotFS(fsys faultfs.FS, path string) (*release.ScoreCache, map[string]*accounting.Ledger, uint64, error) {
	cache := release.NewScoreCache()
	blob, err := fsys.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return cache, nil, 0, nil
	}
	if err != nil {
		return nil, nil, 0, fmt.Errorf("server: read cache file: %w", err)
	}
	var sf snapshotFile
	if err := json.Unmarshal(blob, &sf); err != nil {
		return nil, nil, 0, fmt.Errorf("server: parse cache file %s: %w", path, err)
	}
	if sf.Cache.Version == 0 {
		// Legacy layout: the whole file is the cache snapshot.
		if err := json.Unmarshal(blob, &sf.Cache); err != nil {
			return nil, nil, 0, fmt.Errorf("server: parse cache file %s: %w", path, err)
		}
		sf.Accountants = nil
		sf.WalSeq = 0
	}
	if err := cache.Restore(sf.Cache); err != nil {
		// A legacy-version cache (pre kind-tag fingerprints) is expected
		// across upgrades: its entries are keyed in a dead fingerprint
		// domain, so start the score cache cold — but never discard the
		// accountants, which carry cumulative privacy spend a restart
		// must not forget. Restore rejects before merging, so the cache
		// is still empty here.
		if !errors.Is(err, core.ErrLegacySnapshot) {
			return nil, nil, 0, fmt.Errorf("server: restore cache file %s: %w", path, err)
		}
	}
	var accountants map[string]*accounting.Ledger
	if len(sf.Accountants) > 0 {
		accountants = make(map[string]*accounting.Ledger, len(sf.Accountants))
		for name, snap := range sf.Accountants {
			led, err := accounting.Restore(snap)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("server: restore accountant %q from %s: %w", name, path, err)
			}
			accountants[name] = led
		}
	}
	return cache, accountants, sf.WalSeq, nil
}

// SaveSnapshotFile writes the cache and the accountant sessions as one
// JSON snapshot, atomically (temp file + rename + parent-directory
// fsync), so a crash mid-write can never truncate a snapshot a future
// boot would trust.
func SaveSnapshotFile(path string, cache *release.ScoreCache, accountants map[string]accounting.Snapshot) error {
	return SaveSnapshotFS(faultfs.OS, path, cache, accountants, 0)
}

// SaveSnapshotFS is SaveSnapshotFile against an explicit filesystem,
// recording walSeq as the journal low-water mark the snapshot folds
// in. Callers pairing the snapshot with a WAL must pass the journal's
// LowWater() taken *before* the accountant snapshots, so an append
// racing the save replays as an over-count, never an under-count.
func SaveSnapshotFS(fsys faultfs.FS, path string, cache *release.ScoreCache, accountants map[string]accounting.Snapshot, walSeq uint64) error {
	blob, err := json.MarshalIndent(snapshotFile{
		Cache:       cache.Snapshot(),
		Accountants: accountants,
		WalSeq:      walSeq,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("server: marshal cache snapshot: %w", err)
	}
	return writeFileAtomic(fsys, path, blob)
}

// LoadCacheFile is LoadSnapshotFile without the accountant sessions,
// kept for callers that only care about the warm score cache.
func LoadCacheFile(path string) (*release.ScoreCache, error) {
	cache, _, err := LoadSnapshotFile(path)
	return cache, err
}

// SaveCacheFile writes a cache-only snapshot (no accountants).
func SaveCacheFile(path string, cache *release.ScoreCache) error {
	return SaveSnapshotFile(path, cache, nil)
}

// writeFileAtomic writes blob via a synced temp file + rename + parent
// directory fsync.
func writeFileAtomic(fsys faultfs.FS, path string, blob []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("server: write cache file: %w", err)
	}
	_, werr := f.Write(append(blob, '\n'))
	// Flush to disk before the rename: an unsynced rename can survive
	// a crash with empty data blocks, and a truncated snapshot blocks
	// the next boot (load failures are deliberately fatal).
	if werr == nil {
		werr = f.Sync()
	}
	cerr := f.Close()
	if werr != nil || cerr != nil {
		fsys.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("server: write cache file: %w", errors.Join(werr, cerr))
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("server: write cache file: %w", err)
	}
	// Fsync the parent directory after the rename: the rename itself is
	// a directory-entry update, and on a crash before the directory
	// metadata reaches disk the swap can roll back to the old snapshot
	// (or, for a first write, to no file at all). The data blocks were
	// synced above, so after this the new snapshot is the one a reboot
	// sees.
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("server: write cache file: sync dir: %w", err)
	}
	return nil
}
