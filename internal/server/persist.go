package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"pufferfish/internal/core"
	"pufferfish/internal/release"
)

// LoadCacheFile reads a score-cache snapshot written by SaveCacheFile
// and returns a warmed cache ready for Config.Cache, so a restarted
// pufferd skips the cold start. A missing file is not an error: it
// returns a fresh empty cache (first boot).
func LoadCacheFile(path string) (*release.ScoreCache, error) {
	cache := release.NewScoreCache()
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return cache, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: read cache file: %w", err)
	}
	var snap core.CacheSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		return nil, fmt.Errorf("server: parse cache file %s: %w", path, err)
	}
	if err := cache.Restore(snap); err != nil {
		return nil, fmt.Errorf("server: restore cache file %s: %w", path, err)
	}
	return cache, nil
}

// SaveCacheFile writes the cache's snapshot as JSON, atomically (temp
// file + rename), so a crash mid-write can never truncate a snapshot
// a future boot would trust.
func SaveCacheFile(path string, cache *release.ScoreCache) error {
	blob, err := json.MarshalIndent(cache.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("server: marshal cache snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("server: write cache file: %w", err)
	}
	_, werr := tmp.Write(append(blob, '\n'))
	// Flush to disk before the rename: an unsynced rename can survive
	// a crash with empty data blocks, and a truncated snapshot blocks
	// the next boot (load failures are deliberately fatal).
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: write cache file: %w", errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: write cache file: %w", err)
	}
	return nil
}
