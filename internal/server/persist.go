package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"pufferfish/internal/accounting"
	"pufferfish/internal/core"
	"pufferfish/internal/release"
)

// snapshotFile is the pufferd -cache-file layout since the accounting
// ledger landed: the score-cache snapshot next to the named accountant
// sessions, so a restart resumes both the warm scores and the
// cumulative privacy budgets. Older files that are a bare
// core.CacheSnapshot (top-level "version"/"scores" keys) still load —
// they simply carry no accountants.
type snapshotFile struct {
	Cache       core.CacheSnapshot             `json:"cache"`
	Accountants map[string]accounting.Snapshot `json:"accountants,omitempty"`
}

// LoadSnapshotFile reads a snapshot written by SaveSnapshotFile (or a
// pre-accounting cache-only file) and returns a warmed cache plus the
// restored accountant sessions, ready for Config. A missing file is
// not an error: it returns a fresh empty cache and no accountants
// (first boot).
func LoadSnapshotFile(path string) (*release.ScoreCache, map[string]*accounting.Ledger, error) {
	cache := release.NewScoreCache()
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return cache, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("server: read cache file: %w", err)
	}
	var sf snapshotFile
	if err := json.Unmarshal(blob, &sf); err != nil {
		return nil, nil, fmt.Errorf("server: parse cache file %s: %w", path, err)
	}
	if sf.Cache.Version == 0 {
		// Legacy layout: the whole file is the cache snapshot.
		if err := json.Unmarshal(blob, &sf.Cache); err != nil {
			return nil, nil, fmt.Errorf("server: parse cache file %s: %w", path, err)
		}
		sf.Accountants = nil
	}
	if err := cache.Restore(sf.Cache); err != nil {
		return nil, nil, fmt.Errorf("server: restore cache file %s: %w", path, err)
	}
	var accountants map[string]*accounting.Ledger
	if len(sf.Accountants) > 0 {
		accountants = make(map[string]*accounting.Ledger, len(sf.Accountants))
		for name, snap := range sf.Accountants {
			led, err := accounting.Restore(snap)
			if err != nil {
				return nil, nil, fmt.Errorf("server: restore accountant %q from %s: %w", name, path, err)
			}
			accountants[name] = led
		}
	}
	return cache, accountants, nil
}

// SaveSnapshotFile writes the cache and the accountant sessions as one
// JSON snapshot, atomically (temp file + rename), so a crash mid-write
// can never truncate a snapshot a future boot would trust.
func SaveSnapshotFile(path string, cache *release.ScoreCache, accountants map[string]accounting.Snapshot) error {
	blob, err := json.MarshalIndent(snapshotFile{
		Cache:       cache.Snapshot(),
		Accountants: accountants,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("server: marshal cache snapshot: %w", err)
	}
	return writeFileAtomic(path, blob)
}

// LoadCacheFile is LoadSnapshotFile without the accountant sessions,
// kept for callers that only care about the warm score cache.
func LoadCacheFile(path string) (*release.ScoreCache, error) {
	cache, _, err := LoadSnapshotFile(path)
	return cache, err
}

// SaveCacheFile writes a cache-only snapshot (no accountants).
func SaveCacheFile(path string, cache *release.ScoreCache) error {
	return SaveSnapshotFile(path, cache, nil)
}

// writeFileAtomic writes blob via a synced temp file + rename.
func writeFileAtomic(path string, blob []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("server: write cache file: %w", err)
	}
	_, werr := tmp.Write(append(blob, '\n'))
	// Flush to disk before the rename: an unsynced rename can survive
	// a crash with empty data blocks, and a truncated snapshot blocks
	// the next boot (load failures are deliberately fatal).
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: write cache file: %w", errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: write cache file: %w", err)
	}
	return nil
}
