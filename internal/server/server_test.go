package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
	"pufferfish/internal/release"
)

func sampleSessions(t *testing.T) [][]int {
	t.Helper()
	rng := rand.New(rand.NewPCG(81, 82))
	truth := markov.BinaryChain(0.5, 0.9, 0.85)
	var sessions [][]int
	for i := 0; i < 4; i++ {
		sessions = append(sessions, truth.Sample(300, rng))
	}
	return sessions
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getStats(t *testing.T, client *http.Client, base string) Stats {
	t.Helper()
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestReleaseBitIdenticalToRunAndCacheWarm is the acceptance test: N
// concurrent POST /v1/release requests over the same model release
// bit-identical histograms to release.Run with the same seed, and the
// stats endpoint shows cache hits > 0 from the second request on.
func TestReleaseBitIdenticalToRunAndCacheWarm(t *testing.T) {
	sessions := sampleSessions(t)
	for _, mech := range []string{release.MechMQMExact, release.MechMQMApprox} {
		t.Run(mech, func(t *testing.T) {
			s := New(Config{})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			cfg := release.Config{Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: 7}
			want, err := release.Run(sessions, cfg)
			if err != nil {
				t.Fatal(err)
			}
			req := ReleaseRequest{Sessions: sessions, Epsilon: 1, Mechanism: mech, Smoothing: 0.5, Seed: 7}

			check := func(body []byte) {
				t.Helper()
				var got release.Report
				if err := json.Unmarshal(body, &got); err != nil {
					t.Fatalf("bad response %s: %v", body, err)
				}
				if !floats.EqSlices(got.Histogram, want.Histogram, 0) {
					t.Fatalf("histogram differs from release.Run:\n  server %v\n  run    %v", got.Histogram, want.Histogram)
				}
				if got.Sigma != want.Sigma || got.NoiseScale != want.NoiseScale || got.K != want.K {
					t.Fatalf("report differs from release.Run:\n  server %+v\n  run    %+v", got, want)
				}
				if got.Cache == nil {
					t.Fatal("server report missing the shared-cache stats block")
				}
			}

			// First request: cold cache.
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			check(body)
			cold := getStats(t, ts.Client(), ts.URL)
			if cold.Cache.Misses == 0 || cold.Cache.Entries == 0 {
				t.Fatalf("cold stats show no cache fill: %+v", cold)
			}

			// N concurrent repeats: warm, all bit-identical.
			const n = 8
			var wg sync.WaitGroup
			bodies := make([][]byte, n)
			codes := make([]int, n)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					r := req
					r.Parallelism = 1 + i%3 // mixed worker asks; results identical
					resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", r)
					codes[i], bodies[i] = resp.StatusCode, body
				}(i)
			}
			wg.Wait()
			for i := 0; i < n; i++ {
				if codes[i] != http.StatusOK {
					t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
				}
				check(bodies[i])
			}
			warm := getStats(t, ts.Client(), ts.URL)
			if warm.Cache.Hits == 0 {
				t.Fatalf("repeated model produced no cache hits: %+v", warm)
			}
			if warm.Cache.Misses != cold.Cache.Misses {
				t.Errorf("warm requests re-scored a cached model: %+v -> %+v", cold, warm)
			}
			if warm.RequestsTotal != n+1 || warm.ReleasesTotal != n+1 {
				t.Errorf("request accounting off: %+v", warm)
			}
		})
	}
}

// TestSeriesBody: the raw-text input format of privrelease works over
// HTTP too and matches the parsed-sessions route bit for bit.
func TestSeriesBody(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	series := "0 1 0 1 1\n\n1 0 0\n"
	sessions, err := release.ParseSeries(strings.NewReader(series))
	if err != nil {
		t.Fatal(err)
	}
	want, err := release.Run(sessions, release.Config{Epsilon: 1, Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release",
		ReleaseRequest{Series: series, Epsilon: 1, Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: 9})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got release.Report
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(got.Histogram, want.Histogram, 0) {
		t.Errorf("series body diverges from parsed sessions: %v vs %v", got.Histogram, want.Histogram)
	}
}

// TestBatchEndpoint: a mixed batch matches per-request release.Run
// bit for bit, and duplicate fitted models are scored once.
func TestBatchEndpoint(t *testing.T) {
	sessions := sampleSessions(t)
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var reqs []ReleaseRequest
	for i := 0; i < 4; i++ { // four duplicates of one model
		reqs = append(reqs, ReleaseRequest{Sessions: sessions, Epsilon: 1, Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: uint64(10 + i)})
	}
	reqs = append(reqs,
		ReleaseRequest{Sessions: sessions, Epsilon: 1, Mechanism: release.MechMQMApprox, Smoothing: 0.5, Seed: 20},
		ReleaseRequest{Sessions: sessions, Epsilon: 2, Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: 21},
		ReleaseRequest{Sessions: sessions, Epsilon: 1, Mechanism: release.MechDP, Seed: 22},
		ReleaseRequest{Sessions: sessions, Epsilon: 1, Mechanism: release.MechGroupDP, Seed: 23},
	)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release/batch", BatchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got BatchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Reports) != len(reqs) {
		t.Fatalf("got %d reports for %d requests", len(got.Reports), len(reqs))
	}
	for i, req := range reqs {
		want, err := release.Run(sessions, release.Config{
			Epsilon: req.Epsilon, Mechanism: req.Mechanism, Smoothing: req.Smoothing, Seed: req.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !floats.EqSlices(got.Reports[i].Histogram, want.Histogram, 0) || got.Reports[i].Sigma != want.Sigma {
			t.Errorf("batch report %d diverges from release.Run:\n  batch %+v\n  run   %+v", i, got.Reports[i], want)
		}
	}
	// Four identical mqm-exact requests at ε=1 dedupe to one scoring
	// unit before the cache is even consulted, so the cold batch pays
	// one miss per distinct (mechanism, ε, model) — 3 here — and zero
	// per-duplicate traffic.
	st := getStats(t, ts.Client(), ts.URL)
	if st.Cache.Misses != 3 {
		t.Errorf("cold batch misses = %d, want 3 distinct scoring units: %+v", st.Cache.Misses, st)
	}
	if st.ReleasesTotal != int64(len(reqs)) || st.RequestsTotal != 1 {
		t.Errorf("batch accounting off: %+v", st)
	}

	// A second identical batch is served fully from the warm cache.
	before := s.Cache().Stats()
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/release/batch", BatchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	after := s.Cache().Stats()
	if after.Misses != before.Misses {
		t.Errorf("warm batch re-scored: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Hits <= before.Hits {
		t.Errorf("warm batch hit nothing: hits %d -> %d", before.Hits, after.Hits)
	}
}

// TestBadRequests: every malformed body is a 400 with a JSON error,
// including the degenerate configured-K regression.
func TestBadRequests(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := map[string]string{
		"malformed":        `{"epsilon": `,
		"unknown field":    `{"epsilon": 1, "mechanism": "dp", "series": "0 1", "bogus": 3}`,
		"no data":          `{"epsilon": 1, "mechanism": "dp"}`,
		"both inputs":      `{"epsilon": 1, "mechanism": "dp", "series": "0 1", "sessions": [[0,1]]}`,
		"bad mechanism":    `{"epsilon": 1, "mechanism": "nope", "series": "0 1"}`,
		"bad epsilon":      `{"epsilon": -1, "mechanism": "dp", "series": "0 1"}`,
		"degenerate k":     `{"epsilon": 1, "k": 1, "mechanism": "dp", "series": "0 0"}`,
		"state above k":    `{"epsilon": 1, "k": 2, "mechanism": "dp", "series": "0 5"}`,
		"bad series value": `{"epsilon": 1, "mechanism": "dp", "series": "0 x"}`,
		"empty session":    `{"epsilon": 1, "mechanism": "dp", "sessions": [[0,1],[]]}`,
		"all empty":        `{"epsilon": 1, "mechanism": "dp", "sessions": [[]]}`,
		"subnormal eps":    `{"epsilon": 5e-324, "mechanism": "mqm-exact", "smoothing": 0.5, "sessions": [[0,1,0,1]]}`,
		"trailing data":    `{"epsilon": 1, "mechanism": "dp", "series": "0 1"}{"epsilon": 99}`,
	}
	for name, body := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/release", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, out)
		}
		var msg map[string]string
		if err := json.Unmarshal(out, &msg); err != nil || msg["error"] == "" {
			t.Errorf("%s: error body %q not JSON {error}", name, out)
		}
	}
	// A request that parses but cannot be released — a normal-but-tiny
	// ε whose noise scale overflows after scoring — is the client's
	// fault: 422, never a 500 (and never a handler panic).
	resp422, body422 := postJSON(t, ts.Client(), ts.URL+"/v1/release", ReleaseRequest{
		Series: strings.Repeat("0 1 ", 20), Epsilon: 1e-307, Mechanism: release.MechMQMExact, Smoothing: 0.5,
	})
	if resp422.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("overflowing noise scale: status %d, want 422 (%s)", resp422.StatusCode, body422)
	}

	// A batch fails whole with the offending index.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release/batch", BatchRequest{Requests: []ReleaseRequest{
		{Series: "0 1 0", Epsilon: 1, Mechanism: release.MechDP},
		{Series: "0 1 0", Epsilon: 0, Mechanism: release.MechDP},
	}})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "request 1") {
		t.Errorf("batch error: status %d body %s, want 400 naming request 1", resp.StatusCode, body)
	}
}

// TestGracefulShutdownDrains: Shutdown returns only after an in-flight
// release finishes, and that release still gets its full response.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Config{})
	started := make(chan struct{})
	unblock := make(chan struct{})
	var once sync.Once
	s.scoringHook = func() {
		once.Do(func() { close(started) })
		<-unblock
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Shutdown

	base := "http://" + ln.Addr().String()
	type result struct {
		code int
		body []byte
	}
	done := make(chan result, 1)
	go func() {
		blob, _ := json.Marshal(ReleaseRequest{Series: "0 1 0 1 1 0", Epsilon: 1, Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: 3})
		resp, err := http.Post(base+"/v1/release", "application/json", bytes.NewReader(blob))
		if err != nil {
			done <- result{code: -1, body: []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		done <- result{code: resp.StatusCode, body: body}
	}()

	<-started // the release is now in flight
	if got := s.Stats().InFlight; got != 1 {
		t.Errorf("in_flight = %d with a blocked release", got)
	}
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(t.Context()) }()
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with a release still in flight", err)
	case <-time.After(150 * time.Millisecond):
	}
	close(unblock)
	res := <-done
	if res.code != http.StatusOK {
		t.Fatalf("drained release: status %d: %s", res.code, res.body)
	}
	var rep release.Report
	if err := json.Unmarshal(res.body, &rep); err != nil || len(rep.Histogram) == 0 {
		t.Fatalf("drained release body %s: %v", res.body, err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestWorkerBudgetNeverOversubscribed: with a budget of 2, concurrent
// greedy requests are each granted at most the whole budget and the
// in-use gauge never exceeds it.
func TestWorkerBudgetNeverOversubscribed(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	monitorDone := make(chan struct{})
	var overshoot atomic.Int64
	go func() {
		defer close(monitorDone)
		ticker := time.NewTicker(100 * time.Microsecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			if u := int64(s.budget.inUse()); u > 2 && u > overshoot.Load() {
				overshoot.Store(u)
			}
		}
	}()

	sessions := sampleSessions(t)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := ReleaseRequest{Sessions: sessions, Epsilon: 1 + float64(i)*0.25, Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: uint64(i)}
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	<-monitorDone
	if got := overshoot.Load(); got != 0 {
		t.Errorf("worker budget oversubscribed: %d in use with budget 2", got)
	}
	st := getStats(t, ts.Client(), ts.URL)
	if st.Workers.Budget != 2 || st.Workers.InUse != 0 {
		t.Errorf("workers gauge after drain: %+v", st.Workers)
	}
}

func TestStatsShape(t *testing.T) {
	s := New(Config{Workers: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	st := getStats(t, ts.Client(), ts.URL)
	if st.Workers.Budget != 3 || st.UptimeSeconds < 0 || st.RequestsTotal != 0 || st.InFlight != 0 {
		t.Errorf("fresh stats: %+v", st)
	}
	// Wrong method on a known route.
	resp, err := ts.Client().Get(ts.URL + "/v1/release")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/release: status %d, want 405", resp.StatusCode)
	}
}

// TestInfluenceTableStats: /v1/stats surfaces the per-matrix
// influence-table layer beneath the score cache. Two exact-scored
// releases over one model at different ε miss the score cache twice
// (ε is part of the score fingerprint) but share the matrix's warmed
// log-ratio tables, so the block must show exactly one table miss, at
// least one hit, one matrix, and a nonzero cached power count.
func TestInfluenceTableStats(t *testing.T) {
	sessions := sampleSessions(t)
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, eps := range []float64{1, 1.5} {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release",
			ReleaseRequest{Sessions: sessions, Epsilon: eps, Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: 7})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ε=%g: status %d: %s", eps, resp.StatusCode, body)
		}
	}
	st := getStats(t, ts.Client(), ts.URL)
	it := st.InfluenceTables
	if it.Misses != 1 || it.Hits < 1 || it.Matrices != 1 || it.Powers < 1 {
		t.Errorf("influence table stats after two ε over one model: %+v", it)
	}
}

// TestPreWarmedCache: a server constructed around an existing cache
// starts warm — the restart story for long-lived deployments.
func TestPreWarmedCache(t *testing.T) {
	sessions := sampleSessions(t)
	cache := release.NewScoreCache()
	if _, err := release.Run(sessions, release.Config{Epsilon: 1, Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: 7, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	missesBefore := cache.Stats().Misses

	s := New(Config{Cache: cache})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release",
		ReleaseRequest{Sessions: sessions, Epsilon: 1, Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	st := s.Stats()
	if st.Cache.Misses != missesBefore {
		t.Errorf("pre-warmed server re-scored: misses %d -> %d", missesBefore, st.Cache.Misses)
	}
	if st.Cache.Hits == 0 {
		t.Errorf("pre-warmed server hit nothing: %+v", st.Cache)
	}
}

func ExampleServer() {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	blob := `{"series": "0 1 0 1 1 0 1 0", "epsilon": 1, "mechanism": "mqm-exact", "smoothing": 0.5, "seed": 4}`
	resp, err := http.Post(ts.URL+"/v1/release", "application/json", strings.NewReader(blob))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	var rep release.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("mechanism=%s k=%d sessions=%d σ=%g\n", rep.Mechanism, rep.K, rep.Sessions, rep.Sigma)
	// Output: mechanism=mqm-exact k=2 sessions=1 σ=8
}
