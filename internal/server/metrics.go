package server

import (
	"time"

	"pufferfish/internal/accounting"
	"pufferfish/internal/obs"
)

// stageNames pins the release pipeline's stage vocabulary. Handlers
// record spans with exactly these names (release owns prepare, noise,
// finish, journal; the server owns ceiling, wait, score), and the
// stage-latency histogram pre-creates every series so a scrape sees
// all stages from the first request, zero-valued until traffic
// exercises them.
var stageNames = []string{"prepare", "ceiling", "wait", "score", "noise", "finish", "journal"}

// serverMetrics holds the hot-path instrumented families; everything
// that already has a counter elsewhere (cache, budget, ledgers, WAL)
// is bridged with scrape-time collectors in newServerMetrics instead,
// so no subsystem keeps books twice.
type serverMetrics struct {
	// requests counts HTTP requests by endpoint and numeric status.
	requests *obs.CounterVec
	// releases counts successful releases by mechanism and substrate;
	// its sum tracks the releases_total stats counter.
	releases *obs.CounterVec
	// reqDur is end-to-end handler latency per endpoint.
	reqDur *obs.HistogramVec
	// stageDur is per-stage latency from trace spans; failed spans are
	// excluded, so a stage's _count equals its successes — in
	// particular, finish's _count equals pufferd_releases_total once
	// traffic quiesces.
	stageDur *obs.HistogramVec
}

// newServerMetrics registers the full pufferd metric catalogue on reg
// and wires the scrape-time bridges into s. It runs last in New, when
// every subsystem the collectors read is in place.
func newServerMetrics(s *Server, reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{
		requests: reg.Counter("pufferd_requests_total",
			"HTTP requests by endpoint and status code.", "endpoint", "status"),
		releases: reg.Counter("pufferd_releases_total",
			"Successful releases by mechanism and substrate.", "mechanism", "substrate"),
		reqDur: reg.Histogram("pufferd_request_duration_seconds",
			"End-to-end request latency by endpoint.", nil, "endpoint"),
		stageDur: reg.Histogram("pufferd_stage_duration_seconds",
			"Release pipeline stage latency (successful stages only).", nil, "stage"),
	}
	// Pre-create the enumerable series so ratios computed from a scrape
	// never miss a zero-valued term.
	for _, mech := range mechanisms {
		for _, sub := range substrates {
			m.releases.With(mech, sub)
		}
	}
	for _, stage := range stageNames {
		m.stageDur.With(stage)
	}

	reg.GaugeFunc("pufferd_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })
	reg.GaugeFunc("pufferd_in_flight",
		"Requests currently being handled.",
		func() float64 { return float64(s.inFlight.Load()) })

	reg.CounterFunc("pufferd_score_cache_hits_total",
		"Score cache lookups served from cache.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("pufferd_score_cache_misses_total",
		"Score cache lookups that computed fresh.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.GaugeFunc("pufferd_score_cache_entries",
		"Entries held by the score cache.",
		func() float64 { return float64(s.cache.Len()) })
	reg.CounterFunc("pufferd_influence_table_hits_total",
		"Influence-table lookups that reused warmed log-ratio tables.",
		func() float64 { return float64(s.cache.TableStats().Hits) })
	reg.CounterFunc("pufferd_influence_table_misses_total",
		"Influence-table lookups that built tables fresh.",
		func() float64 { return float64(s.cache.TableStats().Misses) })
	reg.GaugeFunc("pufferd_influence_matrices",
		"Distinct transition matrices with cached influence tables.",
		func() float64 { return float64(s.cache.TableStats().Matrices) })
	reg.GaugeFunc("pufferd_influence_table_rows",
		"Cached influence-table rows across all matrices.",
		func() float64 { return float64(s.cache.TableStats().Powers) })

	reg.GaugeFunc("pufferd_workers_budget",
		"Global scoring-worker budget.",
		func() float64 { return float64(s.budget.total) })
	reg.GaugeFunc("pufferd_workers_in_use",
		"Scoring workers currently granted.",
		func() float64 { return float64(s.budget.inUse()) })
	reg.GaugeFunc("pufferd_workers_queued",
		"Requests blocked waiting for a scoring worker.",
		func() float64 { return float64(s.budget.queued()) })

	reg.CounterFunc("pufferd_budget_refusals_total",
		"Releases refused by an accountant session's budget ceiling.",
		func() float64 { return float64(s.budgetRefusals.Load()) })
	reg.CounterFunc("pufferd_session_refusals_total",
		"Requests refused by the accountant-session cap.",
		func() float64 { return float64(s.sessionRefusals.Load()) })
	reg.CounterFunc("pufferd_shed_total",
		"Scoring requests shed because the worker queue was full.",
		func() float64 { return float64(s.shedTotal.Load()) })

	if s.wal != nil {
		// The Writer observes into these histograms inside Append, so
		// the unlabeled series must exist before traffic; GaugeFunc
		// bridges cover the cheap monotone state.
		appendLat := reg.Histogram("pufferd_wal_append_seconds",
			"WAL record append latency (encode + write + fsync).", nil)
		fsyncLat := reg.Histogram("pufferd_wal_fsync_seconds",
			"WAL fsync latency within each append.", nil)
		s.wal.Instrument(appendLat.With(), fsyncLat.With())
		reg.GaugeFunc("pufferd_wal_last_seq",
			"Sequence number of the newest durable WAL record.",
			func() float64 { return float64(s.wal.LastSeq()) })
		reg.CounterFunc("pufferd_wal_appends_total",
			"WAL records journaled since this process opened the log.",
			func() float64 { return float64(s.wal.Appends()) })
	}

	reg.Collect("pufferd_accountant_epsilon",
		"Cumulative RDP-optimized ε per accountant session.", "gauge",
		[]string{"session"}, func(emit func([]string, float64)) {
			for _, a := range s.accountantSamples() {
				emit([]string{a.name}, a.eps)
			}
		})
	reg.Collect("pufferd_accountant_delta",
		"The δ at which each session's ε is quoted.", "gauge",
		[]string{"session"}, func(emit func([]string, float64)) {
			for _, a := range s.accountantSamples() {
				emit([]string{a.name}, a.delta)
			}
		})
	reg.Collect("pufferd_accountant_releases_total",
		"Releases charged to each accountant session.", "counter",
		[]string{"session"}, func(emit func([]string, float64)) {
			for _, a := range s.accountantSamples() {
				emit([]string{a.name}, a.releases)
			}
		})
	return m
}

// accountantSample is one session's scrape-time reading.
type accountantSample struct {
	name       string
	eps, delta float64
	releases   float64
}

// accountantSamples snapshots every named session for the accountant
// collectors, sorted by name. Ledger pointers are copied under amu and
// the ε conversions run outside it — each ledger is internally
// synchronized and a cold conversion can do an α-grid scan.
func (s *Server) accountantSamples() []accountantSample {
	s.amu.Lock()
	names := make([]string, 0, len(s.accountants))
	for name := range s.accountants {
		names = append(names, name)
	}
	leds := make([]*accounting.Ledger, 0, len(names))
	for _, name := range names {
		leds = append(leds, s.accountants[name])
	}
	s.amu.Unlock()
	out := make([]accountantSample, len(names))
	for i, led := range leds {
		out[i] = accountantSample{
			name:     names[i],
			eps:      led.TotalEpsilon(),
			delta:    led.Delta(),
			releases: float64(led.Count()),
		}
	}
	return out
}
