// Durable state: the boot and shutdown halves of crash-safe privacy
// accounting. OpenDurable loads the snapshot, recovers the accounting
// WAL, and replays every journaled charge the snapshot does not
// already fold in; Checkpoint writes a fresh snapshot and truncates
// the journal behind it. Between the two, the Server appends to the
// WAL before every ledger charge (charge-ahead), so at every crash
// point the recovered spend is ≥ the spend of every release whose
// noise actually left the process.
package server

import (
	"fmt"

	"pufferfish/internal/accounting"
	"pufferfish/internal/accounting/wal"
	"pufferfish/internal/faultfs"
	"pufferfish/internal/release"
)

// DurableState is what OpenDurable recovered: plug Cache, Accountants
// and WAL straight into Config.
type DurableState struct {
	Cache       *release.ScoreCache
	Accountants map[string]*accounting.Ledger
	// WAL is the recovered journal, open for appends.
	WAL *wal.Writer
	// Replayed counts journal records folded into the ledgers at boot
	// (records the snapshot already held are skipped by sequence).
	Replayed int
	// Torn reports that recovery dropped a torn tail record — by the
	// charge-ahead ordering, a charge whose response never went out.
	Torn bool
}

// OpenDurable restores the serving state from snapPath and walPath.
// The snapshot carries the ledgers up to its recorded WAL sequence;
// any journal records after it (charges made durable but not yet
// snapshotted when the process died) are replayed into the ledgers,
// minting sessions as needed. Replay happens before the server binds
// ceilings and journal to the ledgers, so recovered history is never
// re-journaled and a recovered overshoot is preserved, not refused. A
// legacy cache-only snapshot next to a journal replays the whole
// journal — over-counting is the safe direction; silently dropping
// records is the failure mode this subsystem exists to prevent, and a
// corrupt journal refuses boot loudly (wal.ErrCorrupt).
func OpenDurable(fsys faultfs.FS, clock faultfs.Clock, snapPath, walPath string) (*DurableState, error) {
	cache, accountants, walSeq, err := LoadSnapshotFS(fsys, snapPath)
	if err != nil {
		return nil, err
	}
	w, res, err := wal.Recover(fsys, clock, walPath, walSeq)
	if err != nil {
		return nil, err
	}
	st := &DurableState{
		Cache:       cache,
		Accountants: accountants,
		WAL:         w,
		Torn:        res.Torn,
	}
	for _, rec := range res.Records {
		if rec.Seq <= walSeq {
			continue // already folded into the snapshot
		}
		led, ok := st.Accountants[rec.Session]
		if !ok {
			led = accounting.NewLedger(accounting.DefaultDelta)
			if st.Accountants == nil {
				st.Accountants = map[string]*accounting.Ledger{}
			}
			st.Accountants[rec.Session] = led
		}
		if err := led.Add(rec.Entry); err != nil {
			w.Close()
			return nil, fmt.Errorf("server: replay wal record %d into session %q: %w", rec.Seq, rec.Session, err)
		}
		st.Replayed++
	}
	return st, nil
}

// Checkpoint persists the current serving state and truncates the
// journal behind it. The order is load-bearing: the low-water mark is
// read *before* the ledger snapshots, so a charge racing the
// checkpoint is either inside the snapshots with its record dropped by
// Rotate, or past the mark with its record kept — replayed on the next
// boot as, at worst, an over-count. Rotation failure is not fatal: the
// snapshot is already durable and the oversized journal merely replays
// records the next boot will skip by sequence.
func Checkpoint(fsys faultfs.FS, snapPath string, srv *Server, w *wal.Writer) error {
	if w == nil {
		return SaveSnapshotFS(fsys, snapPath, srv.Cache(), srv.AccountantSnapshots(), 0)
	}
	low := w.LowWater()
	if err := SaveSnapshotFS(fsys, snapPath, srv.Cache(), srv.AccountantSnapshots(), low); err != nil {
		return err
	}
	if err := w.Rotate(low); err != nil {
		return fmt.Errorf("server: rotate wal after snapshot: %w", err)
	}
	return nil
}
