package server

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"pufferfish/internal/release"
)

// FuzzReleaseRequestDecode drives arbitrary bytes through the exact
// request-parsing path the POST /v1/release handler runs before any
// scoring: the strict JSON decode, session extraction, and config
// mapping (including the embedded Bayesian-network parse). None of it
// may panic, whatever the body.
func FuzzReleaseRequestDecode(f *testing.F) {
	for _, body := range []string{
		`{"epsilon": 1, "mechanism": "dp", "sessions": [[0, 1, 0]]}`,
		`{"epsilon": 1, "mechanism": "mqm-exact", "smoothing": 0.5, "series": "0 1\n1 0"}`,
		`{"epsilon": 1, "mechanism": "dp", "series": "0 1", "sessions": [[0,1]]}`,
		`{"epsilon": 5e-324, "mechanism": "mqm-exact", "smoothing": 0.5, "sessions": [[0,1,0,1]]}`,
		`{"epsilon": 1, "mechanism": "kantorovich", "substrate": "network", "accountant": "s",
		  "network": [{"name":"root","card":2,"cpt":[0.3,0.7]},{"name":"leaf","card":2,"parents":[0],"cpt":[0.9,0.1,0.2,0.8]}],
		  "sessions": [[0, 1]]}`,
		`{"epsilon": 1, "mechanism": "dp", "sessions": [[0,1]]}{"epsilon": 2}`,
		`{"unknown_field": true}`,
		`not json`,
	} {
		f.Add([]byte(body))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest("POST", "/v1/release", bytes.NewReader(data))
		w := httptest.NewRecorder()
		var body ReleaseRequest
		if err := decodeJSON(w, req, &body); err != nil {
			return
		}
		sessions, serr := body.sessions()
		if serr == nil && sessions == nil {
			t.Fatal("sessions() returned nil sessions without an error")
		}
		cfg, cerr := body.config(release.NewScoreCache())
		if cerr == nil && len(body.Network) > 0 && cfg.Network == nil {
			t.Fatal("config() accepted a network body but attached no network")
		}
	})
}
