// Package server is the long-lived serving layer around
// internal/release: a process-wide warmed ScoreCache shared by every
// request, a global worker budget that maps per-request parallelism
// onto the scoring engine's pool without oversubscribing the host, and
// a small JSON-over-HTTP surface:
//
//	POST /v1/release        one release (sessions or raw series text)
//	POST /v1/release/batch  many releases, scored through one batched
//	                        engine pass that dedupes identical fitted
//	                        models across requests
//	GET  /v1/stats          cache traffic, worker budget, uptime
//
// Responses are exactly release.Run's Report: N concurrent requests
// with the same seed and config release bit-identical histograms to
// the one-shot CLI, warm or cold. Graceful shutdown is plain
// http.Server.Shutdown — in-flight releases drain to completion
// because a scoring sweep, once started, is never abandoned.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pufferfish/internal/accounting"
	"pufferfish/internal/core"
	"pufferfish/internal/kantorovich"
	"pufferfish/internal/release"
)

// mechanisms is the canonical mechanism list; the per-mechanism stats
// counters carry exactly these keys so load smokes can assert their
// traffic mix, and a mechanism added to internal/release gains a
// counter automatically.
var mechanisms = release.Mechanisms()

// Cache re-exports the shared score cache type so cmd/pufferd can
// thread a pre-warmed (or to-be-persisted) cache without importing
// the internal release package.
type Cache = release.ScoreCache

// Config tunes a Server.
type Config struct {
	// Workers is the global scoring-worker budget shared by all
	// requests (0 = GOMAXPROCS). No matter how many releases are in
	// flight, at most this many scoring workers run at once.
	Workers int
	// Cache is the shared score cache; nil constructs a fresh one.
	// Passing a pre-warmed cache lets a restart skip the cold start.
	Cache *release.ScoreCache
	// Accountants pre-seeds the named accountant sessions (restored
	// from a pufferd snapshot); nil starts with none. Sessions are
	// created on demand when a request names a new accountant.
	Accountants map[string]*accounting.Ledger
}

// Server carries the shared state of the serving layer. Create one
// with New and mount Handler on an http.Server.
type Server struct {
	cache    *release.ScoreCache
	budget   *budget
	started  time.Time
	inFlight atomic.Int64
	requests atomic.Int64
	releases atomic.Int64
	// byMech counts successful releases per mechanism name; the keys
	// are fixed at construction (one per supported mechanism), so the
	// map itself is read-only and the values are atomics.
	byMech map[string]*atomic.Int64

	// accountants holds the named Rényi ledger sessions, created on
	// first use and kept across requests (and, through the pufferd
	// snapshot, across restarts). amu guards the map only — each
	// Ledger is internally synchronized.
	amu         sync.Mutex
	accountants map[string]*accounting.Ledger

	// scoringHook, when set, runs after Prepare and before scoring on
	// every release request. Tests use it to hold a request in flight
	// deterministically.
	scoringHook func()
}

// New returns a Server with an empty (or the given pre-warmed) cache.
func New(cfg Config) *Server {
	cache := cfg.Cache
	if cache == nil {
		cache = release.NewScoreCache()
	}
	byMech := make(map[string]*atomic.Int64, len(mechanisms))
	for _, m := range mechanisms {
		byMech[m] = new(atomic.Int64)
	}
	accountants := make(map[string]*accounting.Ledger, len(cfg.Accountants))
	for name, led := range cfg.Accountants {
		if led != nil {
			accountants[name] = led
		}
	}
	return &Server{
		cache:       cache,
		budget:      newBudget(cfg.Workers),
		started:     time.Now(),
		byMech:      byMech,
		accountants: accountants,
	}
}

// maxAccountantSessions bounds the named-session map: sessions are
// never pruned (they are durable privacy budgets), so without a cap a
// client could grow server memory and the persisted snapshot without
// bound by minting fresh names.
const maxAccountantSessions = 1024

// accountantFor returns the named ledger session, creating it at the
// default δ on first use. Callers resolve sessions only for requests
// that already passed Prepare validation, so a rejected request can
// never mint one.
func (s *Server) accountantFor(name string) (*accounting.Ledger, error) {
	s.amu.Lock()
	defer s.amu.Unlock()
	led, ok := s.accountants[name]
	if !ok {
		if len(s.accountants) >= maxAccountantSessions {
			return nil, fmt.Errorf("accountant session limit (%d) reached; reuse an existing session name", maxAccountantSessions)
		}
		led = accounting.NewLedger(accounting.DefaultDelta)
		s.accountants[name] = led
	}
	return led, nil
}

// AccountantSnapshots captures every named accountant session for
// persistence, keyed by session name.
func (s *Server) AccountantSnapshots() map[string]accounting.Snapshot {
	s.amu.Lock()
	defer s.amu.Unlock()
	if len(s.accountants) == 0 {
		return nil
	}
	out := make(map[string]accounting.Snapshot, len(s.accountants))
	for name, led := range s.accountants {
		out[name] = led.Snapshot()
	}
	return out
}

// Cache returns the server's shared score cache.
func (s *Server) Cache() *release.ScoreCache { return s.cache }

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/release", s.handleRelease)
	mux.HandleFunc("POST /v1/release/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// ReleaseRequest is the JSON body of POST /v1/release (and one element
// of a batch). Exactly one of Sessions and Series must be set; Series
// is the privrelease input format (whitespace/comma-separated states,
// blank line = new session). The remaining fields mirror
// release.Config; the shared cache is always used, and Parallelism is
// the request's worker ask, granted subject to the global budget (the
// released values are identical at every grant).
type ReleaseRequest struct {
	Sessions  [][]int `json:"sessions,omitempty"`
	Series    string  `json:"series,omitempty"`
	Epsilon   float64 `json:"epsilon"`
	Delta     float64 `json:"delta,omitempty"`
	K         int     `json:"k,omitempty"`
	Mechanism string  `json:"mechanism"`
	// Noise selects the additive backend for the kantorovich
	// mechanism: "laplace" (default) or "gaussian" (requires delta).
	Noise       string  `json:"noise,omitempty"`
	Smoothing   float64 `json:"smoothing,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	Parallelism int     `json:"parallelism,omitempty"`
	// Accountant names a server-side Rényi ledger session. All
	// releases naming the same session share one cumulative budget,
	// surfaced on GET /v1/stats and persisted in the pufferd snapshot;
	// the response's accounting block reports the session's (ε, δ)
	// after this release. Empty means unaccounted.
	Accountant string `json:"accountant,omitempty"`
}

// BatchRequest is the JSON body of POST /v1/release/batch. The
// requests are prepared together and their quilt scores computed in
// one batched engine pass per (mechanism, ε) group, so identical
// fitted models — across requests, not just within one — are scored
// once. Any invalid request fails the whole batch with its index.
type BatchRequest struct {
	Requests []ReleaseRequest `json:"requests"`
}

// BatchResponse carries the reports, aligned with the requests.
type BatchResponse struct {
	Reports []*release.Report `json:"reports"`
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	RequestsTotal int64   `json:"requests_total"`
	ReleasesTotal int64   `json:"releases_total"`
	InFlight      int64   `json:"in_flight"`
	// ReleasesByMechanism breaks ReleasesTotal down per mechanism name
	// (every supported mechanism is present, zero-valued when unused),
	// so load smokes can assert the traffic mix they drove.
	ReleasesByMechanism map[string]int64 `json:"releases_by_mechanism"`
	Cache               struct {
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Entries int   `json:"entries"`
	} `json:"cache"`
	// InfluenceTables is the per-transition-matrix influence-table
	// layer beneath the score cache: a hit means a request reused
	// another's warmed log-ratio tables (so growing a chain by one
	// observation re-scores nearly for free), Matrices counts distinct
	// transition matrices held, and Powers the total cached table rows
	// across them.
	InfluenceTables struct {
		Hits     int64 `json:"hits"`
		Misses   int64 `json:"misses"`
		Matrices int   `json:"matrices"`
		Powers   int   `json:"powers"`
	} `json:"influence_tables"`
	Workers struct {
		Budget int `json:"budget"`
		InUse  int `json:"in_use"`
	} `json:"workers"`
	// Accountants surfaces every named Rényi ledger session: its
	// release count and its cumulative budget, the RDP-optimized ε at
	// the session's δ next to the linear Theorem 4.4 bound.
	Accountants map[string]AccountantStats `json:"accountants,omitempty"`
}

// AccountantStats is one named accountant session's /v1/stats entry.
type AccountantStats struct {
	Releases      int     `json:"releases"`
	LinearEpsilon float64 `json:"linear_epsilon"`
	RDPEpsilon    float64 `json:"rdp_epsilon"`
	Delta         float64 `json:"delta"`
	DeltaSum      float64 `json:"delta_sum,omitempty"`
}

// sessions extracts the parsed sessions from the request body.
func (r *ReleaseRequest) sessions() ([][]int, error) {
	switch {
	case len(r.Sessions) > 0 && r.Series != "":
		return nil, errors.New("set exactly one of sessions and series, not both")
	case len(r.Sessions) > 0:
		return r.Sessions, nil
	case r.Series != "":
		return release.ParseSeries(strings.NewReader(r.Series))
	default:
		return nil, errors.New("set one of sessions and series")
	}
}

// config maps the request onto release.Config with the shared cache.
// The accountant session is attached separately, after validation.
func (r *ReleaseRequest) config(cache *release.ScoreCache) release.Config {
	return release.Config{
		Epsilon:     r.Epsilon,
		Delta:       r.Delta,
		K:           r.K,
		Mechanism:   r.Mechanism,
		Noise:       r.Noise,
		Smoothing:   r.Smoothing,
		Seed:        r.Seed,
		Parallelism: r.Parallelism,
		Cache:       cache,
	}
}

// prepare parses and validates one request. The named accountant
// session is resolved (and, on first use, created) only once the
// request is known to be valid, so failed requests can neither mint
// garbage sessions nor bloat the persisted snapshot.
func (s *Server) prepare(req *ReleaseRequest) (*release.Prepared, error) {
	sessions, err := req.sessions()
	if err != nil {
		return nil, err
	}
	p, err := release.Prepare(sessions, req.config(s.cache))
	if err != nil {
		return nil, err
	}
	if req.Accountant != "" {
		led, err := s.accountantFor(req.Accountant)
		if err != nil {
			return nil, err
		}
		p.SetAccountant(led, req.Accountant)
	}
	return p, nil
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.requests.Add(1)

	var req ReleaseRequest
	if err := decodeJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	p, err := s.prepare(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if s.scoringHook != nil {
		s.scoringHook()
	}
	var score core.ChainScore
	if p.NeedsScore() {
		grant, err := s.budget.acquire(r.Context(), req.Parallelism)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		p.SetParallelism(grant)
		score, err = p.Score(r.Context())
		s.budget.release(grant)
		if err != nil {
			httpError(w, scoreErrStatus(err), err)
			return
		}
	}
	report, err := p.Finish(score)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.releases.Add(1)
	s.countRelease(p.Mechanism())
	writeJSON(w, report)
}

// countRelease bumps the per-mechanism counter; mech was validated by
// Prepare, so the lookup never misses.
func (s *Server) countRelease(mech string) {
	if c, ok := s.byMech[mech]; ok {
		c.Add(1)
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.requests.Add(1)

	var batch BatchRequest
	if err := decodeJSON(w, r, &batch); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(batch.Requests) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	prepared := make([]*release.Prepared, len(batch.Requests))
	for i := range batch.Requests {
		p, err := s.prepare(&batch.Requests[i])
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("request %d: %w", i, err))
			return
		}
		prepared[i] = p
	}
	if s.scoringHook != nil {
		s.scoringHook()
	}
	scores, status, err := s.scoreBatch(r, batch.Requests, prepared)
	if err != nil {
		httpError(w, status, err)
		return
	}
	resp := BatchResponse{Reports: make([]*release.Report, len(prepared))}
	for i, p := range prepared {
		report, err := p.Finish(scores[i])
		if err != nil {
			// Earlier members of the batch already charged their
			// accountant sessions. That is deliberate: their noisy
			// histograms were computed, and privacy accounting charges
			// at computation, not delivery — under-counting on a
			// partial failure would be the unsafe direction. A client
			// retrying a failed batch with the same session pays again.
			httpError(w, http.StatusUnprocessableEntity, fmt.Errorf("request %d: %w", i, err))
			return
		}
		resp.Reports[i] = report
	}
	s.releases.Add(int64(len(resp.Reports)))
	for _, p := range prepared {
		s.countRelease(p.Mechanism())
	}
	writeJSON(w, resp)
}

// scoreBatch computes the quilt scores of every prepared request that
// needs one, grouped by (mechanism, ε) and routed through the batched
// multi-length scorers so identical fitted models dedupe across
// requests. One worker grant covers the whole batch: the engine fans
// each group across a single pool of the granted size.
func (s *Server) scoreBatch(r *http.Request, reqs []ReleaseRequest, prepared []*release.Prepared) ([]core.ChainScore, int, error) {
	scores := make([]core.ChainScore, len(prepared))
	type groupKey struct {
		mechanism string
		eps       float64
	}
	groups := map[groupKey][]int{}
	want := 0
	for i, p := range prepared {
		if !p.NeedsScore() {
			continue
		}
		key := groupKey{mechanism: p.Mechanism(), eps: p.Epsilon()}
		groups[key] = append(groups[key], i)
		switch ask := reqs[i].Parallelism; {
		case ask <= 0:
			want = -1 // one unbounded ask claims everything free
		case want >= 0 && ask > want:
			want = ask
		}
	}
	if len(groups) == 0 {
		return scores, 0, nil
	}
	grant, err := s.budget.acquire(r.Context(), want)
	if err != nil {
		return nil, http.StatusServiceUnavailable, err
	}
	defer s.budget.release(grant)
	if err := r.Context().Err(); err != nil {
		return nil, http.StatusServiceUnavailable, err
	}
	for key, members := range groups {
		specs := make([]core.MultiSpec, len(members))
		for j, i := range members {
			specs[j] = core.MultiSpec{Class: prepared[i].Class(), Lengths: prepared[i].Lengths()}
		}
		var got []core.ChainScore
		var err error
		switch key.mechanism {
		case release.MechMQMExact:
			got, err = core.ExactScoreMultiBatch(s.cache, specs, key.eps, core.ExactOptions{Parallelism: grant})
		case release.MechKantorovich:
			got, err = kantorovich.ScoreBatch(s.cache, specs, key.eps, kantorovich.Options{Parallelism: grant})
		default:
			got, err = core.ApproxScoreMultiBatch(s.cache, specs, key.eps, core.ApproxOptions{Parallelism: grant})
		}
		if err != nil {
			return nil, scoreErrStatus(err), err
		}
		for j, i := range members {
			scores[i] = got[j]
		}
	}
	return scores, 0, nil
}

// scoreErrStatus classifies a scoring failure: a cancelled or timed-out
// request is the connection's fault (503, matching a failed budget
// wait), while everything else scoring can return is input-derived —
// Prepare already validated the class shape — so it is the client's
// request (422), not a server fault.
func scoreErrStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	var st Stats
	st.UptimeSeconds = time.Since(s.started).Seconds()
	st.RequestsTotal = s.requests.Load()
	st.ReleasesTotal = s.releases.Load()
	st.InFlight = s.inFlight.Load()
	st.ReleasesByMechanism = make(map[string]int64, len(s.byMech))
	for m, c := range s.byMech {
		st.ReleasesByMechanism[m] = c.Load()
	}
	cs := s.cache.Stats()
	st.Cache.Hits = cs.Hits
	st.Cache.Misses = cs.Misses
	st.Cache.Entries = s.cache.Len()
	ts := s.cache.TableStats()
	st.InfluenceTables.Hits = ts.Hits
	st.InfluenceTables.Misses = ts.Misses
	st.InfluenceTables.Matrices = ts.Matrices
	st.InfluenceTables.Powers = ts.Powers
	st.Workers.Budget = s.budget.total
	st.Workers.InUse = s.budget.inUse()
	s.amu.Lock()
	names := make([]string, 0, len(s.accountants))
	for name := range s.accountants {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		st.Accountants = make(map[string]AccountantStats, len(names))
	}
	leds := make([]*accounting.Ledger, len(names))
	for i, name := range names {
		leds[i] = s.accountants[name]
	}
	s.amu.Unlock()
	// Epsilon conversions run outside amu: they take each ledger's own
	// lock and can do an α-grid scan on a cold memo.
	for i, name := range names {
		led := leds[i]
		st.Accountants[name] = AccountantStats{
			Releases:      led.Count(),
			LinearEpsilon: led.LinearEpsilon(),
			RDPEpsilon:    led.TotalEpsilon(),
			Delta:         led.Delta(),
			DeltaSum:      led.DeltaSum(),
		}
	}
	return st
}

// maxBodyBytes bounds request bodies; it matches ParseSeries's maximum
// input line budget.
const maxBodyBytes = 64 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	// A body must be exactly one JSON value: silently processing only
	// the first of two concatenated requests would drop the second.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return errors.New("bad request body: trailing data after the JSON value")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client went away; nothing to do
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}
