// Package server is the long-lived serving layer around
// internal/release: a process-wide warmed ScoreCache shared by every
// request, a global worker budget that maps per-request parallelism
// onto the scoring engine's pool without oversubscribing the host, and
// a small JSON-over-HTTP surface:
//
//	POST /v1/release        one release (sessions or raw series text)
//	POST /v1/release/batch  many releases, scored through one batched
//	                        engine pass that dedupes identical fitted
//	                        models across requests
//	GET  /v1/stats          cache traffic, worker budget, uptime
//
// Responses are exactly release.Run's Report: N concurrent requests
// with the same seed and config release bit-identical histograms to
// the one-shot CLI, warm or cold. Graceful shutdown is plain
// http.Server.Shutdown — in-flight releases drain to completion
// because a scoring sweep, once started, is never abandoned.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pufferfish/internal/accounting"
	"pufferfish/internal/accounting/wal"
	"pufferfish/internal/bayes"
	"pufferfish/internal/core"
	"pufferfish/internal/kantorovich"
	"pufferfish/internal/obs"
	"pufferfish/internal/release"
)

// mechanisms is the canonical mechanism list; the per-mechanism stats
// counters carry exactly these keys so load smokes can assert their
// traffic mix, and a mechanism added to internal/release gains a
// counter automatically.
var mechanisms = release.Mechanisms()

// substrates is the canonical substrate-kind list; like mechanisms, it
// pins the per-substrate counter keys so new kinds surface in
// /v1/stats automatically.
var substrates = release.Substrates()

// Cache re-exports the shared score cache type so cmd/pufferd can
// thread a pre-warmed (or to-be-persisted) cache without importing
// the internal release package.
type Cache = release.ScoreCache

// Config tunes a Server.
type Config struct {
	// Workers is the global scoring-worker budget shared by all
	// requests (0 = GOMAXPROCS). No matter how many releases are in
	// flight, at most this many scoring workers run at once.
	Workers int
	// Cache is the shared score cache; nil constructs a fresh one.
	// Passing a pre-warmed cache lets a restart skip the cold start.
	Cache *release.ScoreCache
	// Accountants pre-seeds the named accountant sessions (restored
	// from a pufferd snapshot); nil starts with none. Sessions are
	// created on demand when a request names a new accountant.
	Accountants map[string]*accounting.Ledger
	// CeilingEps, when > 0, installs a hard (CeilingEps, CeilingDelta)
	// budget ceiling on every accountant session, pre-seeded and
	// created alike: a release that would push a session past it is
	// refused with 403 before any scoring work, and the refusal is
	// counted in /v1/stats. CeilingDelta ≤ 0 means the ledger's own
	// headline δ. Invalid parameters (ε < 0, δ ≥ 1) panic at
	// construction — a server that silently dropped its configured
	// ceiling would be worse than one that refuses to start.
	CeilingEps   float64
	CeilingDelta float64
	// MaxAccountants caps the named-session map (sessions are durable
	// privacy budgets and never pruned); 0 means the 1024 default. A
	// request naming a fresh session past the cap is refused with 403
	// and counted in /v1/stats.
	MaxAccountants int
	// MaxQueue bounds the number of requests allowed to wait for a
	// scoring worker; when the queue is full further scoring requests
	// are shed with 429 + Retry-After instead of piling up. 0 means
	// unbounded waiting (the pre-shedding behavior).
	MaxQueue int
	// RequestTimeout bounds each request's processing from decode to
	// finish; a request past its deadline aborts at the next stage
	// boundary with 503. 0 means no server-imposed deadline.
	RequestTimeout time.Duration
	// WAL, when set, journals every accountant charge before the
	// ledger mutates (and before any noise leaves the process), making
	// cumulative spend crash-safe. The server binds it to every
	// session; pufferd owns recovery and rotation.
	WAL *wal.Writer
	// Logger receives the server's structured request logs (one record
	// per traced request, slow requests at Warn with per-stage
	// timings); nil discards them. pufferd passes its slog handler so
	// server and daemon logs share one sink and format.
	Logger *slog.Logger
	// SlowRequest, when > 0, logs any traced request slower than this
	// at Warn with its trace id and per-stage durations. 0 disables
	// slow-request logging.
	SlowRequest time.Duration
}

// Server carries the shared state of the serving layer. Create one
// with New and mount Handler on an http.Server.
type Server struct {
	cache    *release.ScoreCache
	budget   *budget
	started  time.Time
	inFlight atomic.Int64
	requests atomic.Int64
	releases atomic.Int64
	// byMech counts successful releases per mechanism name; the keys
	// are fixed at construction (one per supported mechanism), so the
	// map itself is read-only and the values are atomics. bySubstrate
	// is the same breakdown per substrate kind.
	byMech      map[string]*atomic.Int64
	bySubstrate map[string]*atomic.Int64

	// accountants holds the named Rényi ledger sessions, created on
	// first use and kept across requests (and, through the pufferd
	// snapshot, across restarts). amu guards the map only — each
	// Ledger is internally synchronized.
	amu         sync.Mutex
	accountants map[string]*accounting.Ledger // guarded by amu

	// Robustness knobs, fixed at construction (see Config).
	maxAccountants int
	ceilEps        float64
	ceilDelta      float64
	timeout        time.Duration
	wal            *wal.Writer

	// Refusal counters, surfaced in /v1/stats so operators (and the
	// chaos/ceiling smokes) can see enforcement happening.
	budgetRefusals  atomic.Int64
	sessionRefusals atomic.Int64
	shedTotal       atomic.Int64

	// scoringHook, when set, runs after Prepare and before scoring on
	// every release request. Tests use it to hold a request in flight
	// deterministically.
	scoringHook func()

	// Observability: the per-server metrics registry (no process
	// globals, so test servers never collide), the hot-path families,
	// the recent-traces ring, and the structured request logger.
	reg     *obs.Registry
	metrics *serverMetrics
	traces  *obs.TraceRing
	slow    time.Duration
	logger  *slog.Logger
}

// traceRingCapacity bounds GET /v1/traces/recent: enough history to
// inspect a burst, small enough that the ring is never a memory
// concern.
const traceRingCapacity = 256

// New returns a Server with an empty (or the given pre-warmed) cache.
func New(cfg Config) *Server {
	cache := cfg.Cache
	if cache == nil {
		cache = release.NewScoreCache()
	}
	byMech := make(map[string]*atomic.Int64, len(mechanisms))
	for _, m := range mechanisms {
		byMech[m] = new(atomic.Int64)
	}
	bySubstrate := make(map[string]*atomic.Int64, len(substrates))
	for _, sub := range substrates {
		bySubstrate[sub] = new(atomic.Int64)
	}
	s := &Server{
		cache:          cache,
		budget:         newBudget(cfg.Workers, cfg.MaxQueue),
		started:        time.Now(),
		byMech:         byMech,
		bySubstrate:    bySubstrate,
		maxAccountants: cfg.MaxAccountants,
		ceilEps:        cfg.CeilingEps,
		ceilDelta:      cfg.CeilingDelta,
		timeout:        cfg.RequestTimeout,
		wal:            cfg.WAL,
	}
	if s.maxAccountants <= 0 {
		s.maxAccountants = maxAccountantSessions
	}
	s.accountants = make(map[string]*accounting.Ledger, len(cfg.Accountants))
	for name, led := range cfg.Accountants {
		if led != nil {
			// Restored sessions get the same journal and ceiling as
			// fresh ones. A restored session already past the ceiling
			// is legal (SetCeiling never errors for it): it simply
			// refuses every further charge.
			if err := s.bindLedger(led, name); err != nil {
				panic("server: invalid budget ceiling config: " + err.Error())
			}
			s.accountants[name] = led
		}
	}
	//privlint:allow floatcompare zero is the exact unset sentinel for the ceiling flags
	if s.ceilEps == 0 && s.ceilDelta != 0 {
		panic("server: budget ceiling δ set without an ε ceiling")
	}
	//privlint:allow floatcompare zero is the exact unset sentinel for the ceiling flags
	if s.ceilEps != 0 {
		// Validate the ceiling parameters even when no session was
		// restored, so a misconfigured server fails at boot, not at the
		// first charge it was supposed to refuse.
		probe := accounting.NewLedger(accounting.DefaultDelta)
		if err := probe.SetCeiling(s.ceilEps, s.ceilDelta); err != nil {
			panic("server: invalid budget ceiling config: " + err.Error())
		}
	}
	s.logger = cfg.Logger
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	s.slow = cfg.SlowRequest
	s.traces = obs.NewTraceRing(traceRingCapacity)
	// The metric catalogue registers last: its scrape-time collectors
	// read the cache, budget, WAL, and accountant map, all of which
	// must be in place first.
	s.reg = obs.NewRegistry()
	s.metrics = newServerMetrics(s, s.reg)
	return s
}

// bindLedger attaches the server-wide journal and budget ceiling to a
// session ledger; every ledger entering s.accountants passes through
// it, so no session can dodge enforcement or durability.
func (s *Server) bindLedger(led *accounting.Ledger, name string) error {
	if s.wal != nil {
		led.SetJournal(s.wal, name)
	}
	//privlint:allow floatcompare zero is the exact unset sentinel for the ceiling flags
	if s.ceilEps != 0 {
		return led.SetCeiling(s.ceilEps, s.ceilDelta)
	}
	return nil
}

// maxAccountantSessions is the default bound on the named-session map
// (Config.MaxAccountants overrides it): sessions are never pruned
// (they are durable privacy budgets), so without a cap a client could
// grow server memory and the persisted snapshot without bound by
// minting fresh names.
const maxAccountantSessions = 1024

// errSessionLimit marks a refusal to mint a new accountant session;
// handlers map it to 403 (the name is understood, the server will not
// create it — retrying cannot help) rather than a generic 400.
var errSessionLimit = errors.New("accountant session limit reached")

// accountantFor returns the named ledger session, creating it at the
// default δ on first use. Callers resolve sessions only for requests
// that already passed Prepare validation, so a rejected request can
// never mint one.
func (s *Server) accountantFor(name string) (*accounting.Ledger, error) {
	s.amu.Lock()
	defer s.amu.Unlock()
	led, ok := s.accountants[name]
	if !ok {
		if len(s.accountants) >= s.maxAccountants {
			s.sessionRefusals.Add(1)
			return nil, fmt.Errorf("%w (%d); reuse an existing session name", errSessionLimit, s.maxAccountants)
		}
		led = accounting.NewLedger(accounting.DefaultDelta)
		// bindLedger cannot fail here: New validated the ceiling
		// parameters at construction.
		if err := s.bindLedger(led, name); err != nil {
			return nil, err
		}
		s.accountants[name] = led
	}
	return led, nil
}

// AccountantSnapshots captures every named accountant session for
// persistence, keyed by session name.
func (s *Server) AccountantSnapshots() map[string]accounting.Snapshot {
	s.amu.Lock()
	defer s.amu.Unlock()
	if len(s.accountants) == 0 {
		return nil
	}
	out := make(map[string]accounting.Snapshot, len(s.accountants))
	for name, led := range s.accountants {
		out[name] = led.Snapshot()
	}
	return out
}

// Cache returns the server's shared score cache.
func (s *Server) Cache() *release.ScoreCache { return s.cache }

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/release", s.instrument("release", true, s.handleRelease))
	mux.HandleFunc("POST /v1/release/batch", s.instrument("batch", true, s.handleBatch))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", false, s.handleStats))
	mux.HandleFunc("GET /v1/traces/recent", s.instrument("traces", false, s.handleTraces))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", false, s.reg.Handler().ServeHTTP))
	return mux
}

// statusWriter captures the response status code for the request
// counter, the trace's status attribute, and the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the observability envelope: the
// request counter and latency histogram for every endpoint, and — for
// traced endpoints — a fresh obs.Trace on the context whose spans feed
// the per-stage histograms (successful spans only, so a stage's
// _count equals its successes), the recent-traces ring, and the
// structured request log.
func (s *Server) instrument(endpoint string, traced bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		var tr *obs.Trace
		if traced {
			tr = obs.NewTrace(endpoint)
			r = r.WithContext(obs.WithTrace(r.Context(), tr))
		}
		h(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(start)
		status := strconv.Itoa(sw.status)
		s.metrics.requests.With(endpoint, status).Inc()
		s.metrics.reqDur.With(endpoint).Observe(dur.Seconds())
		if tr == nil {
			return
		}
		tr.SetAttr("status", status)
		tr.Finish(dur)
		for _, sp := range tr.Spans() {
			if sp.Err == "" {
				s.metrics.stageDur.With(sp.Name).Observe(sp.Dur.Seconds())
			}
		}
		s.traces.Add(tr)
		s.logRequest(r, tr, status, dur)
	}
}

// logRequest emits the structured per-request log record: every traced
// request at Info with the trace's attributes (mechanism, substrate,
// session, status), slow requests at Warn with per-stage durations
// appended so the offending stage is visible without fetching the
// trace.
func (s *Server) logRequest(r *http.Request, tr *obs.Trace, status string, dur time.Duration) {
	attrs := []slog.Attr{
		slog.String("trace", tr.ID),
		slog.String("endpoint", tr.Name),
		slog.String("status", status),
		slog.Duration("duration", dur),
	}
	for _, a := range tr.Attrs() {
		if a.Key == "status" {
			continue // already present from the response
		}
		attrs = append(attrs, slog.String(a.Key, a.Value))
	}
	level, msg := slog.LevelInfo, "request"
	if s.slow > 0 && dur > s.slow {
		level, msg = slog.LevelWarn, "slow request"
		for _, sp := range tr.Spans() {
			attrs = append(attrs, slog.Duration("stage_"+sp.Name, sp.Dur))
		}
	}
	s.logger.LogAttrs(r.Context(), level, msg, attrs...)
}

// TracesResponse is the GET /v1/traces/recent payload: the newest
// completed request traces, newest first, from a bounded in-memory
// ring (nothing is persisted; a restart clears it).
type TracesResponse struct {
	Traces []obs.TraceSnapshot `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, TracesResponse{Traces: s.traces.Recent()})
}

// ReleaseRequest is the JSON body of POST /v1/release (and one element
// of a batch). Exactly one of Sessions and Series must be set; Series
// is the privrelease input format (whitespace/comma-separated states,
// blank line = new session). The remaining fields mirror
// release.Config; the shared cache is always used, and Parallelism is
// the request's worker ask, granted subject to the global budget (the
// released values are identical at every grant).
type ReleaseRequest struct {
	Sessions  [][]int `json:"sessions,omitempty"`
	Series    string  `json:"series,omitempty"`
	Epsilon   float64 `json:"epsilon"`
	Delta     float64 `json:"delta,omitempty"`
	K         int     `json:"k,omitempty"`
	Mechanism string  `json:"mechanism"`
	// Noise selects the additive backend for the kantorovich
	// mechanism: "laplace" (default) or "gaussian" (requires delta).
	Noise string `json:"noise,omitempty"`
	// Substrate selects the secret model kind: "" or "chain" fits an
	// empirical Markov chain; "network" scores the Bayesian network
	// given in Network (kantorovich mechanism only).
	Substrate string `json:"substrate,omitempty"`
	// Network is the node list of a polytree Bayesian network (the
	// bayes JSON codec: [{"name", "card", "parents", "cpt"}, ...]),
	// required exactly when Substrate is "network".
	Network     json.RawMessage `json:"network,omitempty"`
	Smoothing   float64         `json:"smoothing,omitempty"`
	Seed        uint64          `json:"seed,omitempty"`
	Parallelism int             `json:"parallelism,omitempty"`
	// Accountant names a server-side Rényi ledger session. All
	// releases naming the same session share one cumulative budget,
	// surfaced on GET /v1/stats and persisted in the pufferd snapshot;
	// the response's accounting block reports the session's (ε, δ)
	// after this release. Empty means unaccounted.
	Accountant string `json:"accountant,omitempty"`
}

// BatchRequest is the JSON body of POST /v1/release/batch. The
// requests are prepared together and their quilt scores computed in
// one batched engine pass per (mechanism, ε) group, so identical
// fitted models — across requests, not just within one — are scored
// once. Any invalid request fails the whole batch with its index.
type BatchRequest struct {
	Requests []ReleaseRequest `json:"requests"`
}

// BatchResponse carries the reports, aligned with the requests.
type BatchResponse struct {
	Reports []*release.Report `json:"reports"`
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	RequestsTotal int64   `json:"requests_total"`
	ReleasesTotal int64   `json:"releases_total"`
	InFlight      int64   `json:"in_flight"`
	// ReleasesByMechanism breaks ReleasesTotal down per mechanism name
	// (every supported mechanism is present, zero-valued when unused),
	// so load smokes can assert the traffic mix they drove.
	ReleasesByMechanism map[string]int64 `json:"releases_by_mechanism"`
	// ReleasesBySubstrate breaks ReleasesTotal down per substrate kind
	// ("chain", "network"), each always present.
	ReleasesBySubstrate map[string]int64 `json:"releases_by_substrate"`
	Cache               struct {
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Entries int   `json:"entries"`
	} `json:"cache"`
	// InfluenceTables is the per-transition-matrix influence-table
	// layer beneath the score cache: a hit means a request reused
	// another's warmed log-ratio tables (so growing a chain by one
	// observation re-scores nearly for free), Matrices counts distinct
	// transition matrices held, and Powers the total cached table rows
	// across them.
	InfluenceTables struct {
		Hits     int64 `json:"hits"`
		Misses   int64 `json:"misses"`
		Matrices int   `json:"matrices"`
		Powers   int   `json:"powers"`
	} `json:"influence_tables"`
	Workers struct {
		Budget int `json:"budget"`
		InUse  int `json:"in_use"`
	} `json:"workers"`
	// BudgetRefusals counts releases refused because they would push
	// an accountant session past its configured (ε, δ) ceiling —
	// enforcement working, not an error.
	BudgetRefusals int64 `json:"budget_refusals"`
	// SessionRefusals counts requests refused because minting their
	// accountant session would exceed the session cap.
	SessionRefusals int64 `json:"session_refusals"`
	// ShedTotal counts scoring requests shed with 429 because the
	// worker queue was full.
	ShedTotal int64 `json:"shed_total"`
	// WAL reports the accounting journal when one is configured.
	WAL *WALStats `json:"wal,omitempty"`
	// Accountants surfaces every named Rényi ledger session: its
	// release count and its cumulative budget, the RDP-optimized ε at
	// the session's δ next to the linear Theorem 4.4 bound.
	Accountants map[string]AccountantStats `json:"accountants,omitempty"`
}

// WALStats is the /v1/stats view of the accounting journal.
type WALStats struct {
	Path string `json:"path"`
	// LastSeq is the newest durable record's sequence number.
	LastSeq uint64 `json:"last_seq"`
	// Appends counts records journaled since this process opened the
	// WAL (replayed records are not included).
	Appends int64 `json:"appends"`
}

// AccountantStats is one named accountant session's /v1/stats entry.
type AccountantStats struct {
	Releases      int     `json:"releases"`
	LinearEpsilon float64 `json:"linear_epsilon"`
	RDPEpsilon    float64 `json:"rdp_epsilon"`
	Delta         float64 `json:"delta"`
	DeltaSum      float64 `json:"delta_sum,omitempty"`
}

// sessions extracts the parsed sessions from the request body.
func (r *ReleaseRequest) sessions() ([][]int, error) {
	switch {
	case len(r.Sessions) > 0 && r.Series != "":
		return nil, errors.New("set exactly one of sessions and series, not both")
	case len(r.Sessions) > 0:
		return r.Sessions, nil
	case r.Series != "":
		return release.ParseSeries(strings.NewReader(r.Series))
	default:
		return nil, errors.New("set one of sessions and series")
	}
}

// config maps the request onto release.Config with the shared cache.
// The accountant session is attached separately, after validation. A
// network body that does not parse fails here; whether a network is
// allowed or required for the substrate kind is release.Prepare's
// call.
func (r *ReleaseRequest) config(cache *release.ScoreCache) (release.Config, error) {
	cfg := release.Config{
		Epsilon:     r.Epsilon,
		Delta:       r.Delta,
		K:           r.K,
		Mechanism:   r.Mechanism,
		Noise:       r.Noise,
		Substrate:   r.Substrate,
		Smoothing:   r.Smoothing,
		Seed:        r.Seed,
		Parallelism: r.Parallelism,
		Cache:       cache,
	}
	if len(r.Network) > 0 {
		nw, err := bayes.ParseJSON(r.Network)
		if err != nil {
			return release.Config{}, err
		}
		cfg.Network = nw
	}
	return cfg, nil
}

// prepare parses and validates one request. The named accountant
// session is resolved (and, on first use, created) only once the
// request is known to be valid, so failed requests can neither mint
// garbage sessions nor bloat the persisted snapshot. The resolved
// ledger (nil when unaccounted) is returned so handlers can run the
// pre-scoring ceiling check.
func (s *Server) prepare(ctx context.Context, req *ReleaseRequest) (*release.Prepared, *accounting.Ledger, error) {
	sessions, err := req.sessions()
	if err != nil {
		return nil, nil, err
	}
	cfg, err := req.config(s.cache)
	if err != nil {
		return nil, nil, err
	}
	p, err := release.PrepareContext(ctx, sessions, cfg)
	if err != nil {
		return nil, nil, err
	}
	var led *accounting.Ledger
	if req.Accountant != "" {
		led, err = s.accountantFor(req.Accountant)
		if err != nil {
			return nil, nil, err
		}
		p.SetAccountant(led, req.Accountant)
	}
	return p, led, nil
}

// requestContext derives the handler context, applying the configured
// request timeout so the deadline propagates through every pipeline
// stage (budget wait, scoring, finish).
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(r.Context(), s.timeout)
	}
	return r.Context(), func() {}
}

// checkCeiling runs the pre-scoring budget check for one prepared
// request: the exact entry Finish will charge is simulated against
// the session's ceiling, so a doomed release is refused before any
// scoring work. led may be nil (unaccounted request).
func (s *Server) checkCeiling(p *release.Prepared, led *accounting.Ledger) error {
	if led == nil {
		return nil
	}
	planned, err := p.PlannedEntry()
	if err != nil {
		return err
	}
	if err := led.CheckCharge(planned); err != nil {
		if errors.Is(err, accounting.ErrCeilingExceeded) {
			s.budgetRefusals.Add(1)
		}
		return err
	}
	return nil
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.requests.Add(1)

	ctx, cancel := s.requestContext(r)
	defer cancel()
	var req ReleaseRequest
	if err := decodeJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	p, led, err := s.prepare(ctx, &req)
	if err != nil {
		httpError(w, prepareErrStatus(err), err)
		return
	}
	tr := obs.TraceFrom(ctx)
	tr.SetAttr("mechanism", p.Mechanism())
	tr.SetAttr("substrate", p.SubstrateKind())
	if req.Accountant != "" {
		tr.SetAttr("session", req.Accountant)
	}
	_, csp := obs.StartSpan(ctx, "ceiling")
	err = s.checkCeiling(p, led)
	csp.EndErr(err)
	if err != nil {
		httpError(w, chargeErrStatus(err), err)
		return
	}
	if s.scoringHook != nil {
		s.scoringHook()
	}
	var score core.ChainScore
	if p.NeedsScore() {
		_, wsp := obs.StartSpan(ctx, "wait")
		grant, err := s.budget.acquire(ctx, req.Parallelism)
		wsp.EndErr(err)
		if err != nil {
			s.acquireError(w, err)
			return
		}
		p.SetParallelism(grant)
		_, ssp := obs.StartSpan(ctx, "score")
		score, err = p.Score(ctx)
		ssp.EndErr(err)
		s.budget.release(grant)
		if err != nil {
			httpError(w, scoreErrStatus(err), err)
			return
		}
	}
	report, err := p.FinishContext(ctx, score)
	if err != nil {
		httpError(w, s.finishErrStatus(err), err)
		return
	}
	s.releases.Add(1)
	s.countRelease(p.Mechanism(), p.SubstrateKind())
	writeJSON(w, report)
}

// acquireError writes a failed budget wait: a shed request gets 429
// with Retry-After (the queue was full; backing off helps), a
// cancelled or timed-out wait 503.
func (s *Server) acquireError(w http.ResponseWriter, err error) {
	if errors.Is(err, errShed) {
		s.shedTotal.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
		return
	}
	httpError(w, http.StatusServiceUnavailable, err)
}

// prepareErrStatus classifies a prepare failure: refusing to mint a
// session is enforcement (403), a dead context is the request's
// deadline (503), everything else is a bad request.
func prepareErrStatus(err error) int {
	switch {
	case errors.Is(err, errSessionLimit):
		return http.StatusForbidden
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// chargeErrStatus classifies a refused charge: past the ceiling is a
// hard 403 — the request was understood and is permanently refused;
// retrying cannot help, which is exactly what distinguishes it from
// 429 (shed; retry later) and 503 (deadline; maybe retry).
func chargeErrStatus(err error) int {
	if errors.Is(err, accounting.ErrCeilingExceeded) {
		return http.StatusForbidden
	}
	return http.StatusUnprocessableEntity
}

// finishErrStatus classifies a Finish failure, counting ceiling races
// (a concurrent charge on the same session won between CheckCharge
// and Add) as budget refusals.
func (s *Server) finishErrStatus(err error) int {
	switch {
	case errors.Is(err, accounting.ErrCeilingExceeded):
		s.budgetRefusals.Add(1)
		return http.StatusForbidden
	case errors.Is(err, accounting.ErrJournal):
		// The journal could not make the charge durable, so the charge
		// did not happen and no data was released: a server-side fault.
		return http.StatusInternalServerError
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

// countRelease bumps the per-mechanism and per-substrate counters and
// the labeled release metric; both keys were validated by Prepare, so
// the lookups never miss.
func (s *Server) countRelease(mech, substrate string) {
	if c, ok := s.byMech[mech]; ok {
		c.Add(1)
	}
	if c, ok := s.bySubstrate[substrate]; ok {
		c.Add(1)
	}
	s.metrics.releases.With(mech, substrate).Inc()
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.requests.Add(1)

	ctx, cancel := s.requestContext(r)
	defer cancel()
	var batch BatchRequest
	if err := decodeJSON(w, r, &batch); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(batch.Requests) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	prepared := make([]*release.Prepared, len(batch.Requests))
	ledgers := make([]*accounting.Ledger, len(batch.Requests))
	for i := range batch.Requests {
		p, led, err := s.prepare(ctx, &batch.Requests[i])
		if err != nil {
			httpError(w, prepareErrStatus(err), fmt.Errorf("request %d: %w", i, err))
			return
		}
		prepared[i] = p
		ledgers[i] = led
	}
	obs.TraceFrom(ctx).SetAttr("batch_size", strconv.Itoa(len(batch.Requests)))
	_, csp := obs.StartSpan(ctx, "ceiling")
	err := s.checkBatchCeilings(prepared, ledgers)
	csp.EndErr(err)
	if err != nil {
		httpError(w, chargeErrStatus(err), err)
		return
	}
	if s.scoringHook != nil {
		s.scoringHook()
	}
	scores, status, err := s.scoreBatch(ctx, batch.Requests, prepared)
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, status, err)
		return
	}
	resp := BatchResponse{Reports: make([]*release.Report, len(prepared))}
	for i, p := range prepared {
		report, err := p.FinishContext(ctx, scores[i])
		if err != nil {
			// Earlier members of the batch already charged their
			// accountant sessions. That is deliberate: their noisy
			// histograms were computed, and privacy accounting charges
			// at computation, not delivery — under-counting on a
			// partial failure would be the unsafe direction. A client
			// retrying a failed batch with the same session pays again.
			httpError(w, s.finishErrStatus(err), fmt.Errorf("request %d: %w", i, err))
			return
		}
		resp.Reports[i] = report
	}
	s.releases.Add(int64(len(resp.Reports)))
	for _, p := range prepared {
		s.countRelease(p.Mechanism(), p.SubstrateKind())
	}
	writeJSON(w, resp)
}

// checkBatchCeilings runs the pre-scoring budget check for a whole
// batch, cumulatively per session: a batch whose members individually
// fit the ceiling but jointly breach it is refused up front, because
// Finish would charge them in sequence and strand the batch half-way.
func (s *Server) checkBatchCeilings(prepared []*release.Prepared, ledgers []*accounting.Ledger) error {
	planned := map[*accounting.Ledger][]accounting.Entry{}
	for i, led := range ledgers {
		if led == nil {
			continue
		}
		e, err := prepared[i].PlannedEntry()
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		planned[led] = append(planned[led], e)
	}
	for led, entries := range planned {
		if err := led.CheckCharge(entries...); err != nil {
			if errors.Is(err, accounting.ErrCeilingExceeded) {
				s.budgetRefusals.Add(1)
			}
			return err
		}
	}
	return nil
}

// scoreBatch computes the quilt scores of every prepared request that
// needs one, grouped by (mechanism, ε) and routed through the batched
// multi-length scorers so identical fitted models dedupe across
// requests. One worker grant covers the whole batch: the engine fans
// each group across a single pool of the granted size.
func (s *Server) scoreBatch(ctx context.Context, reqs []ReleaseRequest, prepared []*release.Prepared) ([]core.ChainScore, int, error) {
	scores := make([]core.ChainScore, len(prepared))
	type groupKey struct {
		mechanism string
		eps       float64
	}
	groups := map[groupKey][]int{}
	var individual []int // network-substrate members: no Class to dedupe on
	want := 0
	for i, p := range prepared {
		if !p.NeedsScore() {
			continue
		}
		if p.Class() == nil {
			individual = append(individual, i)
		} else {
			key := groupKey{mechanism: p.Mechanism(), eps: p.Epsilon()}
			groups[key] = append(groups[key], i)
		}
		switch ask := reqs[i].Parallelism; {
		case ask <= 0:
			want = -1 // one unbounded ask claims everything free
		case want >= 0 && ask > want:
			want = ask
		}
	}
	if len(groups) == 0 && len(individual) == 0 {
		return scores, 0, nil
	}
	_, wsp := obs.StartSpan(ctx, "wait")
	grant, err := s.budget.acquire(ctx, want)
	wsp.EndErr(err)
	if err != nil {
		if errors.Is(err, errShed) {
			s.shedTotal.Add(1)
			return nil, http.StatusTooManyRequests, err
		}
		return nil, http.StatusServiceUnavailable, err
	}
	defer s.budget.release(grant)
	if err := ctx.Err(); err != nil {
		return nil, http.StatusServiceUnavailable, err
	}
	// One "score" span covers the whole batch's scoring work — the
	// grouped engine passes dedupe across requests, so per-member
	// attribution would be fiction.
	_, ssp := obs.StartSpan(ctx, "score")
	for key, members := range groups {
		specs := make([]core.MultiSpec, len(members))
		for j, i := range members {
			specs[j] = core.MultiSpec{Class: prepared[i].Class(), Lengths: prepared[i].Lengths()}
		}
		var got []core.ChainScore
		var err error
		switch key.mechanism {
		case release.MechMQMExact:
			got, err = core.ExactScoreMultiBatch(s.cache, specs, key.eps, core.ExactOptions{Parallelism: grant})
		case release.MechKantorovich:
			got, err = kantorovich.ScoreBatch(s.cache, specs, key.eps, kantorovich.Options{Parallelism: grant})
		default:
			got, err = core.ApproxScoreMultiBatch(s.cache, specs, key.eps, core.ApproxOptions{Parallelism: grant})
		}
		if err != nil {
			ssp.EndErr(err)
			return nil, scoreErrStatus(err), err
		}
		for j, i := range members {
			scores[i] = got[j]
		}
	}
	// Network-substrate members score one by one under the same grant:
	// they carry no markov.Class for the multi-length dedupe, but the
	// shared cache still serves repeated networks across requests.
	for _, i := range individual {
		prepared[i].SetParallelism(grant)
		got, err := prepared[i].Score(ctx)
		if err != nil {
			ssp.EndErr(err)
			return nil, scoreErrStatus(err), err
		}
		scores[i] = got
	}
	ssp.End()
	return scores, 0, nil
}

// scoreErrStatus classifies a scoring failure: a cancelled or timed-out
// request is the connection's fault (503, matching a failed budget
// wait), while everything else scoring can return is input-derived —
// Prepare already validated the class shape — so it is the client's
// request (422), not a server fault.
func scoreErrStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	var st Stats
	st.UptimeSeconds = time.Since(s.started).Seconds()
	// The counters are independent atomics, so a scrape during traffic
	// is inherently a torn read — but handlers write in the fixed order
	// requests → releases → per-mechanism/per-substrate parts, so
	// reading in the exact reverse order bounds the tear to one safe
	// direction: sum(by_mechanism) ≤ releases_total ≤ requests_total in
	// every snapshot, and ratios computed from one snapshot never
	// exceed 1. The orderings agree exactly once traffic quiesces.
	st.ReleasesByMechanism = make(map[string]int64, len(s.byMech))
	for m, c := range s.byMech {
		st.ReleasesByMechanism[m] = c.Load()
	}
	st.ReleasesBySubstrate = make(map[string]int64, len(s.bySubstrate))
	for sub, c := range s.bySubstrate {
		st.ReleasesBySubstrate[sub] = c.Load()
	}
	st.ReleasesTotal = s.releases.Load()
	st.RequestsTotal = s.requests.Load()
	st.InFlight = s.inFlight.Load()
	cs := s.cache.Stats()
	st.Cache.Hits = cs.Hits
	st.Cache.Misses = cs.Misses
	st.Cache.Entries = s.cache.Len()
	ts := s.cache.TableStats()
	st.InfluenceTables.Hits = ts.Hits
	st.InfluenceTables.Misses = ts.Misses
	st.InfluenceTables.Matrices = ts.Matrices
	st.InfluenceTables.Powers = ts.Powers
	st.Workers.Budget = s.budget.total
	st.Workers.InUse = s.budget.inUse()
	st.BudgetRefusals = s.budgetRefusals.Load()
	st.SessionRefusals = s.sessionRefusals.Load()
	st.ShedTotal = s.shedTotal.Load()
	if s.wal != nil {
		st.WAL = &WALStats{
			Path:    s.wal.Path(),
			LastSeq: s.wal.LastSeq(),
			Appends: s.wal.Appends(),
		}
	}
	s.amu.Lock()
	names := make([]string, 0, len(s.accountants))
	for name := range s.accountants {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		st.Accountants = make(map[string]AccountantStats, len(names))
	}
	leds := make([]*accounting.Ledger, len(names))
	for i, name := range names {
		leds[i] = s.accountants[name]
	}
	s.amu.Unlock()
	// Epsilon conversions run outside amu: they take each ledger's own
	// lock and can do an α-grid scan on a cold memo.
	for i, name := range names {
		led := leds[i]
		st.Accountants[name] = AccountantStats{
			Releases:      led.Count(),
			LinearEpsilon: led.LinearEpsilon(),
			RDPEpsilon:    led.TotalEpsilon(),
			Delta:         led.Delta(),
			DeltaSum:      led.DeltaSum(),
		}
	}
	return st
}

// maxBodyBytes bounds request bodies; it matches ParseSeries's maximum
// input line budget.
const maxBodyBytes = 64 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	// A body must be exactly one JSON value: silently processing only
	// the first of two concatenated requests would drop the second.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return errors.New("bad request body: trailing data after the JSON value")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client went away; nothing to do
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}
