package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// scrapeMetrics fetches GET /metrics and returns the exposition text.
func scrapeMetrics(t *testing.T, client *http.Client, base string) string {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue finds the sample for the exact series (name plus
// rendered label set) in an exposition and returns its value.
func metricValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("series %s: bad value %q", series, rest)
		}
		return v
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, exposition)
	return 0
}

// TestMetricsEndToEnd drives release traffic (singles, a batch, an
// accounted session) and asserts the /metrics exposition reports it:
// the labeled release counter matches the traffic mix, the finish-stage
// histogram count equals total releases, the request counter carries
// endpoint and status labels, and the accountant collectors surface
// the session.
func TestMetricsEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sessions := sampleSessions(t)

	for i := 0; i < 3; i++ {
		resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/release", ReleaseRequest{
			Sessions: sessions, Epsilon: 1, Mechanism: "dp", Seed: 7,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("release %d: status %d: %s", i, resp.StatusCode, out)
		}
	}
	resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/release", ReleaseRequest{
		Sessions: sessions, Epsilon: 1, Mechanism: "dp", Seed: 7, Accountant: "sess-a",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("accounted release: status %d: %s", resp.StatusCode, out)
	}
	resp, out = postJSON(t, ts.Client(), ts.URL+"/v1/release/batch", BatchRequest{
		Requests: []ReleaseRequest{
			{Sessions: sessions, Epsilon: 1, Mechanism: "dp", Seed: 7},
			{Sessions: sessions, Epsilon: 1, Mechanism: "group-dp", Seed: 7},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, out)
	}
	// One bad request, so the status label has a non-200 series too.
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/release", ReleaseRequest{Epsilon: 1, Mechanism: "dp"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad release: status %d", resp.StatusCode)
	}

	m := scrapeMetrics(t, ts.Client(), ts.URL)
	for _, want := range []string{
		"# HELP pufferd_releases_total ",
		"# TYPE pufferd_releases_total counter",
		"# TYPE pufferd_stage_duration_seconds histogram",
		"# TYPE pufferd_request_duration_seconds histogram",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if got := metricValue(t, m, `pufferd_releases_total{mechanism="dp",substrate="chain"}`); got != 5 {
		t.Errorf("dp releases = %v, want 5", got)
	}
	if got := metricValue(t, m, `pufferd_releases_total{mechanism="group-dp",substrate="chain"}`); got != 1 {
		t.Errorf("group-dp releases = %v, want 1", got)
	}
	// Zero-valued series are pre-created so ratio queries never miss a
	// term.
	if got := metricValue(t, m, `pufferd_releases_total{mechanism="kantorovich",substrate="network"}`); got != 0 {
		t.Errorf("unused release series = %v, want 0", got)
	}
	if got := metricValue(t, m, `pufferd_requests_total{endpoint="release",status="200"}`); got != 4 {
		t.Errorf("release 200s = %v, want 4", got)
	}
	if got := metricValue(t, m, `pufferd_requests_total{endpoint="release",status="400"}`); got != 1 {
		t.Errorf("release 400s = %v, want 1", got)
	}
	if got := metricValue(t, m, `pufferd_requests_total{endpoint="batch",status="200"}`); got != 1 {
		t.Errorf("batch 200s = %v, want 1", got)
	}
	// Every release runs the finish stage exactly once; traffic has
	// quiesced, so the histogram count equals the release total.
	if got := metricValue(t, m, `pufferd_stage_duration_seconds_count{stage="finish"}`); got != 6 {
		t.Errorf("finish stage count = %v, want 6", got)
	}
	if got := metricValue(t, m, `pufferd_accountant_releases_total{session="sess-a"}`); got != 1 {
		t.Errorf("session releases = %v, want 1", got)
	}
	if eps := metricValue(t, m, `pufferd_accountant_epsilon{session="sess-a"}`); eps <= 0 {
		t.Errorf("session ε = %v, want > 0", eps)
	}
	if d := metricValue(t, m, `pufferd_accountant_delta{session="sess-a"}`); d <= 0 {
		t.Errorf("session δ = %v, want > 0", d)
	}
	if b := metricValue(t, m, "pufferd_workers_budget"); b != 2 {
		t.Errorf("workers budget = %v, want 2", b)
	}
	if up := metricValue(t, m, "pufferd_uptime_seconds"); up <= 0 {
		t.Errorf("uptime = %v, want > 0", up)
	}
	misses := metricValue(t, m, "pufferd_score_cache_misses_total")
	hits := metricValue(t, m, "pufferd_score_cache_hits_total")
	if misses < 0 || hits < 0 {
		t.Errorf("cache counters hits=%v misses=%v", hits, misses)
	}
}

// TestMetricsConcurrentScrapes hammers /metrics and /v1/stats while
// release traffic is in flight (the race detector owns the memory
// half), asserts every mid-traffic stats snapshot is consistent enough
// for ratio math, and pins the quiesced histogram counts to the
// request totals.
func TestMetricsConcurrentScrapes(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sessions := sampleSessions(t)

	const releases = 24
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := scrapeMetrics(t, ts.Client(), ts.URL)
				if !strings.Contains(m, "pufferd_releases_total") {
					t.Error("scrape lost the release counter")
				}
				st := getStats(t, ts.Client(), ts.URL)
				var parts int64
				for _, n := range st.ReleasesByMechanism {
					parts += n
				}
				// The read-side ordering guarantee: parts before totals.
				if parts > st.ReleasesTotal {
					t.Errorf("torn stats: sum(by_mechanism)=%d > releases_total=%d", parts, st.ReleasesTotal)
				}
				if st.ReleasesTotal > st.RequestsTotal {
					t.Errorf("torn stats: releases_total=%d > requests_total=%d", st.ReleasesTotal, st.RequestsTotal)
				}
			}
		}()
	}
	var reqWG sync.WaitGroup
	for i := 0; i < releases; i++ {
		reqWG.Add(1)
		go func(i int) {
			defer reqWG.Done()
			resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/release", ReleaseRequest{
				Sessions: sessions, Epsilon: 1, Mechanism: "dp", Seed: uint64(i),
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("release %d: status %d: %s", i, resp.StatusCode, out)
			}
		}(i)
	}
	reqWG.Wait()
	close(stop)
	wg.Wait()

	// Quiesced: the histogram counts must sum to the request totals
	// exactly.
	m := scrapeMetrics(t, ts.Client(), ts.URL)
	if got := metricValue(t, m, `pufferd_releases_total{mechanism="dp",substrate="chain"}`); got != releases {
		t.Errorf("dp releases = %v, want %d", got, releases)
	}
	for _, stage := range []string{"prepare", "ceiling", "noise", "finish", "journal"} {
		series := fmt.Sprintf(`pufferd_stage_duration_seconds_count{stage=%q}`, stage)
		if got := metricValue(t, m, series); got != releases {
			t.Errorf("stage %s count = %v, want %d", stage, got, releases)
		}
	}
	if got := metricValue(t, m, `pufferd_request_duration_seconds_count{endpoint="release"}`); got != releases {
		t.Errorf("release duration count = %v, want %d", got, releases)
	}
	st := getStats(t, ts.Client(), ts.URL)
	if st.ReleasesTotal != releases {
		t.Errorf("stats releases_total = %d, want %d", st.ReleasesTotal, releases)
	}
}

// TestTracesRecent asserts the recent-traces ring serves finished
// request traces newest first, with the pipeline stages as spans and
// the handler's attributes attached.
func TestTracesRecent(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sessions := sampleSessions(t)

	resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/release", ReleaseRequest{
		Sessions: sessions, Epsilon: 1, Mechanism: "mqm-approx", Seed: 3, Accountant: "traced",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release: status %d: %s", resp.StatusCode, out)
	}

	r, err := ts.Client().Get(ts.URL + "/v1/traces/recent")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var tr TracesResponse
	if err := json.NewDecoder(r.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(tr.Traces))
	}
	got := tr.Traces[0]
	if got.Name != "release" || got.ID == "" {
		t.Errorf("trace header: %+v", got)
	}
	if got.DurationMS <= 0 {
		t.Errorf("trace duration_ms = %v", got.DurationMS)
	}
	for k, want := range map[string]string{
		"mechanism": "mqm-approx", "substrate": "chain", "session": "traced", "status": "200",
	} {
		if got.Attrs[k] != want {
			t.Errorf("attr %s = %q, want %q", k, got.Attrs[k], want)
		}
	}
	seen := map[string]bool{}
	for _, sp := range got.Spans {
		seen[sp.Name] = true
		if sp.Error != "" {
			t.Errorf("span %s failed: %s", sp.Name, sp.Error)
		}
	}
	// mqm-approx with an accountant exercises every stage.
	for _, stage := range stageNames {
		if !seen[stage] {
			t.Errorf("trace missing stage %s (saw %v)", stage, seen)
		}
	}
}

// TestSlowRequestLog asserts the structured request log: every traced
// request logs at Info with its trace id and attributes, and a request
// over the slow threshold logs at Warn with per-stage durations.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{
		Workers:     1,
		Logger:      slog.New(slog.NewTextHandler(&buf, nil)),
		SlowRequest: time.Nanosecond, // every request is slow
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/release", ReleaseRequest{
		Sessions: sampleSessions(t), Epsilon: 1, Mechanism: "dp", Seed: 11,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release: status %d: %s", resp.StatusCode, out)
	}
	log := buf.String()
	for _, want := range []string{
		"level=WARN", `msg="slow request"`, "trace=t", "endpoint=release",
		"status=200", "mechanism=dp", "substrate=chain", "stage_finish=",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("slow-request log missing %q:\n%s", want, log)
		}
	}

	// Below the threshold the same request logs at Info without stage
	// timings.
	buf.Reset()
	s2 := New(Config{
		Workers:     1,
		Logger:      slog.New(slog.NewTextHandler(&buf, nil)),
		SlowRequest: time.Hour,
	})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, out = postJSON(t, ts2.Client(), ts2.URL+"/v1/release", ReleaseRequest{
		Sessions: sampleSessions(t), Epsilon: 1, Mechanism: "dp", Seed: 11,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release: status %d: %s", resp.StatusCode, out)
	}
	log = buf.String()
	if !strings.Contains(log, "level=INFO") || !strings.Contains(log, "msg=request") {
		t.Errorf("fast request did not log at Info:\n%s", log)
	}
	if strings.Contains(log, "stage_finish=") {
		t.Errorf("fast request leaked stage timings:\n%s", log)
	}
}
