package server

import (
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"pufferfish/internal/floats"
	"pufferfish/internal/markov"
	"pufferfish/internal/release"
)

// kantSessions keeps the transport sweeps race-detector friendly.
func kantSessions(t *testing.T) [][]int {
	t.Helper()
	rng := rand.New(rand.NewPCG(31, 32))
	truth := markov.BinaryChain(0.5, 0.9, 0.8)
	var sessions [][]int
	for i := 0; i < 3; i++ {
		sessions = append(sessions, truth.Sample(50, rng))
	}
	return sessions
}

// TestKantorovichEndToEnd: the new mechanism is servable through both
// endpoints, bit-identical to release.Run, warm on repeats, and the
// per-mechanism stats counters report the traffic mix.
func TestKantorovichEndToEnd(t *testing.T) {
	sessions := kantSessions(t)
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := release.Config{Epsilon: 1, Mechanism: release.MechKantorovich, Smoothing: 0.5, Seed: 9}
	want, err := release.Run(sessions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := ReleaseRequest{Sessions: sessions, Epsilon: 1, Mechanism: release.MechKantorovich, Smoothing: 0.5, Seed: 9}

	check := func(body []byte) {
		t.Helper()
		var got release.Report
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("bad response %s: %v", body, err)
		}
		if !floats.EqSlices(got.Histogram, want.Histogram, 0) || got.Sigma != want.Sigma || got.NoiseScale != want.NoiseScale {
			t.Fatalf("server release diverges from release.Run:\n  server %+v\n  run    %+v", got, want)
		}
		if got.Kantorovich == nil || *got.Kantorovich != *want.Kantorovich {
			t.Fatalf("diagnostics block diverges: %+v vs %+v", got.Kantorovich, want.Kantorovich)
		}
		if got.Cache == nil {
			t.Fatal("missing shared-cache stats block")
		}
	}

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	check(body)
	cold := getStats(t, ts.Client(), ts.URL)
	if cold.Cache.Misses == 0 {
		t.Fatalf("cold stats show no cache fill: %+v", cold)
	}

	// A warm batch mixing kantorovich (twice, same model) with the
	// other scoring mechanism: the kantorovich entries must come from
	// the cache or intra-batch dedupe, never a re-sweep.
	batch := BatchRequest{Requests: []ReleaseRequest{
		req,
		req,
		{Sessions: sessions, Epsilon: 1, Mechanism: release.MechMQMApprox, Smoothing: 0.5, Seed: 9},
	}}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/release/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var batchResp BatchResponse
	if err := json.Unmarshal(body, &batchResp); err != nil {
		t.Fatal(err)
	}
	if len(batchResp.Reports) != 3 {
		t.Fatalf("batch returned %d reports", len(batchResp.Reports))
	}
	for i := 0; i < 2; i++ {
		blob, err := json.Marshal(batchResp.Reports[i])
		if err != nil {
			t.Fatal(err)
		}
		check(blob)
	}
	warm := getStats(t, ts.Client(), ts.URL)
	// Only the mqm-approx batch member may add misses.
	if warm.Cache.Misses > cold.Cache.Misses+1 {
		t.Errorf("warm batch re-swept kantorovich profiles: misses %d -> %d", cold.Cache.Misses, warm.Cache.Misses)
	}

	mix := warm.ReleasesByMechanism
	for _, mech := range mechanisms {
		if _, ok := mix[mech]; !ok {
			t.Errorf("stats missing counter for %q: %v", mech, mix)
		}
	}
	if mix[release.MechKantorovich] != 3 || mix[release.MechMQMApprox] != 1 || mix[release.MechDP] != 0 {
		t.Errorf("traffic mix wrong: %v", mix)
	}
	var total int64
	for _, n := range mix {
		total += n
	}
	if total != warm.ReleasesTotal {
		t.Errorf("per-mechanism counters sum to %d, releases_total = %d", total, warm.ReleasesTotal)
	}
}

// TestCacheFileRoundTrip: the -cache-file flow — drive traffic, save,
// load into a fresh server, and the same requests are pure hits with
// bit-identical responses.
func TestCacheFileRoundTrip(t *testing.T) {
	sessions := kantSessions(t)
	path := filepath.Join(t.TempDir(), "cache.json")

	// A missing file yields an empty cache, not an error (first boot).
	empty, err := LoadCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("missing file produced %d entries", empty.Len())
	}

	first := New(Config{})
	ts := httptest.NewServer(first.Handler())
	reqs := []ReleaseRequest{
		{Sessions: sessions, Epsilon: 1, Mechanism: release.MechKantorovich, Smoothing: 0.5, Seed: 5},
		{Sessions: sessions, Epsilon: 1, Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: 5},
	}
	bodies := make([][]byte, len(reqs))
	for i, req := range reqs {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		bodies[i] = body
	}
	entries := first.Cache().Len()
	if entries == 0 {
		t.Fatal("no cache entries to persist")
	}
	if err := SaveCacheFile(path, first.Cache()); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	warmCache, err := LoadCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if warmCache.Len() != entries {
		t.Fatalf("restored %d entries, want %d", warmCache.Len(), entries)
	}
	second := New(Config{Cache: warmCache})
	ts2 := httptest.NewServer(second.Handler())
	defer ts2.Close()
	for i, req := range reqs {
		resp, body := postJSON(t, ts2.Client(), ts2.URL+"/v1/release", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm request %d: status %d: %s", i, resp.StatusCode, body)
		}
		var got, want release.Report
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(bodies[i], &want); err != nil {
			t.Fatal(err)
		}
		if !floats.EqSlices(got.Histogram, want.Histogram, 0) || got.Sigma != want.Sigma {
			t.Fatalf("restored-cache release %d diverges from the original", i)
		}
	}
	if misses := second.Cache().Stats().Misses; misses != 0 {
		t.Errorf("restored cache re-scored %d entries; want a fully warm restart", misses)
	}
	if hits := second.Cache().Stats().Hits; hits == 0 {
		t.Error("restored cache recorded no hits")
	}

	// Corrupt files are an explicit error.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCacheFile(bad); err == nil {
		t.Error("corrupt cache file accepted")
	}
}
