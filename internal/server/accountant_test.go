package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"pufferfish/internal/accounting"
	"pufferfish/internal/release"
)

// accountantSeries is a tiny request substrate: short enough that the
// kantorovich profile sweeps stay fast, long enough to fit a model.
const accountantSeries = "0 1 0 1 1 0 1 0 0 1 1 0"

// TestAccountantSessionsAcrossRequests: requests naming the same
// accountant session share one cumulative ledger across single and
// batch endpoints; the session surfaces on /v1/stats; unaccounted
// requests stay out of it.
func TestAccountantSessionsAcrossRequests(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := ReleaseRequest{
		Series: accountantSeries, Epsilon: 1, Delta: 1e-5,
		Mechanism: release.MechKantorovich, Noise: release.NoiseGaussian,
		Smoothing: 0.5, Seed: 7, Accountant: "tenant-a",
	}
	var last *release.Report
	for i := 0; i < 3; i++ {
		req.Seed = uint64(i)
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("release %d: %d %s", i, resp.StatusCode, body)
		}
		var report release.Report
		mustUnmarshal(t, body, &report)
		if report.Accounting == nil || report.Accounting.Releases != i+1 {
			t.Fatalf("release %d: accounting %+v", i, report.Accounting)
		}
		if report.Accounting.Accountant != "tenant-a" {
			t.Fatalf("release %d: session name %q", i, report.Accounting.Accountant)
		}
		last = &report
	}

	// A batch naming the same session keeps accumulating; a request
	// without an accountant does not touch it.
	batch := BatchRequest{Requests: []ReleaseRequest{req, req, {
		Series: accountantSeries, Epsilon: 1,
		Mechanism: release.MechMQMExact, Smoothing: 0.5, Seed: 9,
	}}}
	batch.Requests[0].Seed, batch.Requests[1].Seed = 10, 11
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br BatchResponse
	mustUnmarshal(t, body, &br)
	if br.Reports[0].Accounting.Releases != 4 || br.Reports[1].Accounting.Releases != 5 {
		t.Fatalf("batch accounting counts = %d, %d",
			br.Reports[0].Accounting.Releases, br.Reports[1].Accounting.Releases)
	}
	if br.Reports[2].Accounting != nil {
		t.Fatal("unaccounted batch request got an accounting block")
	}

	st := getStats(t, ts.Client(), ts.URL)
	as, ok := st.Accountants["tenant-a"]
	if !ok {
		t.Fatalf("stats missing session: %+v", st.Accountants)
	}
	if as.Releases != 5 || as.Delta != accounting.DefaultDelta {
		t.Fatalf("session stats %+v", as)
	}
	if as.LinearEpsilon != 5 {
		t.Fatalf("linear ε = %v, want 5", as.LinearEpsilon)
	}
	if !(as.RDPEpsilon > 0 && as.RDPEpsilon <= as.LinearEpsilon) {
		t.Fatalf("RDP ε = %v vs linear %v", as.RDPEpsilon, as.LinearEpsilon)
	}
	if last.Accounting.LinearEpsilon >= as.LinearEpsilon {
		t.Fatalf("per-release block did not trail the session: %v vs %v",
			last.Accounting.LinearEpsilon, as.LinearEpsilon)
	}
}

// TestInvalidRequestsMintNoSessions: a request that fails validation
// must not create (or persist) an accountant session, and the session
// map is capped so fresh names cannot grow it without bound.
func TestInvalidRequestsMintNoSessions(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := ReleaseRequest{
		Series: accountantSeries, Epsilon: -1, // invalid ε: Prepare rejects
		Mechanism: release.MechMQMExact, Smoothing: 0.5, Accountant: "garbage",
	}
	if resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/release", bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid request: %d", resp.StatusCode)
	}
	if st := getStats(t, ts.Client(), ts.URL); len(st.Accountants) != 0 {
		t.Fatalf("invalid request minted sessions: %+v", st.Accountants)
	}
	if snaps := s.AccountantSnapshots(); snaps != nil {
		t.Fatalf("invalid request reached the snapshot: %+v", snaps)
	}

	// The cap refuses fresh names once full, without touching
	// established sessions.
	for i := 0; i < maxAccountantSessions; i++ {
		if _, err := s.accountantFor(fmt.Sprintf("s%d", i)); err != nil {
			t.Fatalf("session %d refused below the cap: %v", i, err)
		}
	}
	if _, err := s.accountantFor("one-too-many"); err == nil {
		t.Fatal("session over the cap accepted")
	}
	if _, err := s.accountantFor("s0"); err != nil {
		t.Fatalf("existing session refused at the cap: %v", err)
	}
}

// TestAccountantSessionPersistenceRoundTrip: the pufferd snapshot
// carries the accountant sessions next to the score tables, and a
// second server restored from it resumes the budgets exactly.
func TestAccountantSessionPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.json")
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())

	for i, name := range []string{"a", "a", "b"} {
		req := ReleaseRequest{
			Series: accountantSeries, Epsilon: 1, Delta: 1e-5,
			Mechanism: release.MechKantorovich, Noise: release.NoiseGaussian,
			Smoothing: 0.5, Seed: uint64(i), Accountant: name,
		}
		if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("release %d: %d %s", i, resp.StatusCode, body)
		}
	}
	before := s.Stats()
	ts.Close()
	if err := SaveSnapshotFile(path, s.Cache(), s.AccountantSnapshots()); err != nil {
		t.Fatal(err)
	}

	cache, accountants, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(accountants) != 2 {
		t.Fatalf("restored %d sessions, want 2", len(accountants))
	}
	restored := New(Config{Cache: cache, Accountants: accountants})
	after := restored.Stats()
	for _, name := range []string{"a", "b"} {
		if after.Accountants[name] != before.Accountants[name] {
			t.Errorf("session %q: restored %+v != original %+v",
				name, after.Accountants[name], before.Accountants[name])
		}
	}

	// The restored session keeps accumulating where it left off.
	ts2 := httptest.NewServer(restored.Handler())
	defer ts2.Close()
	req := ReleaseRequest{
		Series: accountantSeries, Epsilon: 1, Delta: 1e-5,
		Mechanism: release.MechKantorovich, Noise: release.NoiseGaussian,
		Smoothing: 0.5, Seed: 99, Accountant: "a",
	}
	resp, body := postJSON(t, ts2.Client(), ts2.URL+"/v1/release", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restore release: %d %s", resp.StatusCode, body)
	}
	var report release.Report
	mustUnmarshal(t, body, &report)
	if report.Accounting.Releases != 3 {
		t.Fatalf("post-restore session count = %d, want 3 (2 restored + 1)", report.Accounting.Releases)
	}
	// And it was served warm: the restored cache already holds every
	// profile for this model.
	if st := restored.Stats(); st.Cache.Misses != 0 {
		t.Errorf("restored cache missed %d times", st.Cache.Misses)
	}
}

// TestSnapshotFileLegacyFormat: snapshots from before the current
// cache format still load without failing the boot. Version-1 cache
// entries live in the pre-kind-tag fingerprint domain, so they are
// dropped (cold cache) — but accountant ledgers, which carry
// cumulative privacy spend, are always kept.
func TestSnapshotFileLegacyFormat(t *testing.T) {
	// Pre-accounting bare-cache layout, version 1: loads cold, no
	// sessions.
	path := filepath.Join(t.TempDir(), "legacy.json")
	legacy := []byte(`{"version": 1, "scores": [{"fp_hi": 1, "fp_lo": 2, "eps": 1, "exact": true,
		"sigma": 12.5, "node": 3, "quilt_a": 1, "quilt_b": 1, "influence": 0.25, "ell": 2}]}`)
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	cache, accountants, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 || accountants != nil {
		t.Fatalf("legacy bare load: %d entries, %d sessions, want cold and none", cache.Len(), len(accountants))
	}
	// Version-1 cache inside a full snapshot file: the cache starts
	// cold but the accountant budgets survive the upgrade.
	path2 := filepath.Join(t.TempDir(), "legacy2.json")
	withAcct := []byte(`{"cache": {"version": 1, "scores": [{"fp_hi": 1, "fp_lo": 2, "eps": 1, "exact": true,
		"sigma": 12.5, "node": 3, "quilt_a": 1, "quilt_b": 1, "influence": 0.25, "ell": 2}]},
		"accountants": {"a": {"delta": 1e-5, "entries": [{"kind": "gaussian", "eps": 1, "delta": 1e-5, "rho": 0.5}]}}}`)
	if err := os.WriteFile(path2, withAcct, 0o644); err != nil {
		t.Fatal(err)
	}
	cache, accountants, err = LoadSnapshotFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Errorf("legacy cache entries merged: %d resident", cache.Len())
	}
	if len(accountants) != 1 || accountants["a"] == nil {
		t.Fatalf("accountants lost across legacy upgrade: %v", accountants)
	}
}

// TestSnapshotFileRejectsCorruptAccountant: a snapshot whose
// accountant entries could never have been recorded must fail the
// load, exactly like a corrupted score entry.
func TestSnapshotFileRejectsCorruptAccountant(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	bad := []byte(`{"cache": {"version": 1},
		"accountants": {"x": {"delta": 1e-5, "entries": [{"kind": "gaussian", "eps": 1, "delta": 1e-5, "rho": -3}]}}}`)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshotFile(path); err == nil {
		t.Fatal("corrupt accountant snapshot accepted")
	}
}

func mustUnmarshal(t *testing.T, blob []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(blob, v); err != nil {
		t.Fatalf("unmarshal %s: %v", blob, err)
	}
}
