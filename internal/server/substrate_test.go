package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"pufferfish/internal/release"
)

// treeNetworkJSON is a 5-node household polytree in the bayes JSON
// codec — the wire format of ReleaseRequest.Network.
const treeNetworkJSON = `[
	{"name": "p0", "card": 2, "cpt": [0.8, 0.2]},
	{"name": "p1", "card": 2, "parents": [0], "cpt": [0.9, 0.1, 0.35, 0.65]},
	{"name": "p2", "card": 2, "parents": [0], "cpt": [0.9, 0.1, 0.35, 0.65]},
	{"name": "p3", "card": 2, "parents": [1], "cpt": [0.9, 0.1, 0.35, 0.65]},
	{"name": "p4", "card": 2, "parents": [1], "cpt": [0.9, 0.1, 0.35, 0.65]}
]`

func networkRequest(seed uint64) ReleaseRequest {
	return ReleaseRequest{
		Sessions: [][]int{{0, 1, 0, 1, 1}}, Epsilon: 1,
		Mechanism: release.MechKantorovich,
		Substrate: release.SubstrateNetwork,
		Network:   json.RawMessage(treeNetworkJSON),
		Seed:      seed,
	}
}

// TestNetworkSubstrateOverHTTP: a Bayesian-network release served end
// to end — substrate-tagged report, per-substrate stats counter, and a
// fully cache-served repeat.
func TestNetworkSubstrateOverHTTP(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var first release.Report
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", networkRequest(42))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("release %d: %d %s", i, resp.StatusCode, body)
		}
		var report release.Report
		mustUnmarshal(t, body, &report)
		if report.Substrate != release.SubstrateNetwork {
			t.Fatalf("release %d: substrate %q", i, report.Substrate)
		}
		if report.Model != nil || report.Kantorovich == nil {
			t.Fatalf("release %d: model %v, kantorovich %v", i, report.Model, report.Kantorovich)
		}
		if i == 0 {
			first = report
			continue
		}
		for c := range report.Histogram {
			if report.Histogram[c] != first.Histogram[c] {
				t.Fatalf("cell %d: %v != %v across identical requests", c, report.Histogram[c], first.Histogram[c])
			}
		}
	}

	st := getStats(t, ts.Client(), ts.URL)
	if st.ReleasesBySubstrate[release.SubstrateNetwork] != 2 || st.ReleasesBySubstrate[release.SubstrateChain] != 0 {
		t.Errorf("substrate counters: %+v", st.ReleasesBySubstrate)
	}
	// k = 2 cells profiled once, then served warm on the repeat.
	if st.Cache.Misses != 2 || st.Cache.Hits != 2 {
		t.Errorf("cache traffic: %+v", st.Cache)
	}
}

// TestNetworkSubstrateBatch: a batch mixing chain and network
// substrates scores both routes under one worker grant and counts each
// kind.
func TestNetworkSubstrateBatch(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	chainReq := ReleaseRequest{
		Series: accountantSeries, Epsilon: 1,
		Mechanism: release.MechKantorovich, Smoothing: 0.5, Seed: 3,
	}
	batch := BatchRequest{Requests: []ReleaseRequest{networkRequest(1), chainReq, networkRequest(2)}}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br BatchResponse
	mustUnmarshal(t, body, &br)
	wantKinds := []string{release.SubstrateNetwork, release.SubstrateChain, release.SubstrateNetwork}
	for i, rep := range br.Reports {
		if rep.Substrate != wantKinds[i] {
			t.Errorf("report %d: substrate %q, want %q", i, rep.Substrate, wantKinds[i])
		}
	}
	// The two network requests carry the same model: the second is
	// served from the cell profiles the first just stored.
	if br.Reports[0].Histogram[0] == br.Reports[2].Histogram[0] {
		t.Error("different seeds released identical noise")
	}
	st := getStats(t, ts.Client(), ts.URL)
	if st.ReleasesBySubstrate[release.SubstrateNetwork] != 2 || st.ReleasesBySubstrate[release.SubstrateChain] != 1 {
		t.Errorf("substrate counters: %+v", st.ReleasesBySubstrate)
	}
}

// TestNetworkSubstrateRejections: malformed network requests fail with
// 400 before any session or scoring work.
func TestNetworkSubstrateRejections(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := networkRequest(1)
	bad.Network = json.RawMessage(`[{"name": "p0", "card": 2, "cpt": [0.8, 0.7]}]`)
	if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unnormalized CPT: %d %s", resp.StatusCode, body)
	}
	missing := networkRequest(1)
	missing.Network = nil
	if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", missing); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing network: %d %s", resp.StatusCode, body)
	}
	quilt := networkRequest(1)
	quilt.Mechanism = release.MechMQMExact
	quilt.Smoothing = 0.5
	if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/release", quilt); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("quilt mechanism on network: %d %s", resp.StatusCode, body)
	}
	if st := getStats(t, ts.Client(), ts.URL); st.ReleasesTotal != 0 {
		t.Errorf("rejected requests released: %+v", st)
	}
}
