// Package query defines the L1-Lipschitz queries (Definition 2.5) the
// mechanisms release: histograms, relative-frequency histograms,
// single-state frequencies, weighted sums and means over a sequence of
// discrete records.
//
// A query's Lipschitz constant bounds how much the L1 norm of the
// output can change when a single record changes; every mechanism
// multiplies its computed noise scale by this constant (Algorithms
// 1–4 and the vector-valued extension of Section 4.2).
package query

import (
	"fmt"

	"pufferfish/internal/floats"
)

// Query is a vector-valued function of a record sequence with a known
// L1-Lipschitz constant.
type Query interface {
	// Evaluate computes the query on a sequence of records in
	// {0, …, K−1}.
	Evaluate(data []int) ([]float64, error)
	// Lipschitz returns the L1-Lipschitz constant with respect to a
	// change in one record.
	Lipschitz() float64
	// Dim returns the output dimension.
	Dim() int
	// String names the query for reports.
	String() string
}

// Histogram counts occurrences of each state: 2-Lipschitz in L1
// (one record change moves one count down and another up).
type Histogram struct {
	K int
}

// Evaluate implements Query.
func (h Histogram) Evaluate(data []int) ([]float64, error) {
	out := make([]float64, h.K)
	for _, x := range data {
		if x < 0 || x >= h.K {
			return nil, fmt.Errorf("query: state %d out of range [0,%d)", x, h.K)
		}
		out[x]++
	}
	return out, nil
}

// Lipschitz implements Query.
func (h Histogram) Lipschitz() float64 { return 2 }

// Dim implements Query.
func (h Histogram) Dim() int { return h.K }

func (h Histogram) String() string { return fmt.Sprintf("histogram(k=%d)", h.K) }

// RelFreqHistogram reports the fraction of records in each state,
// the query released throughout Section 5: (2/N)-Lipschitz.
type RelFreqHistogram struct {
	K int
	// N is the number of records the query will be evaluated on;
	// the Lipschitz constant depends on it.
	N int
}

// Evaluate implements Query. The data length must equal N.
func (h RelFreqHistogram) Evaluate(data []int) ([]float64, error) {
	if len(data) != h.N {
		return nil, fmt.Errorf("query: got %d records, query constructed for %d", len(data), h.N)
	}
	counts, err := Histogram{K: h.K}.Evaluate(data)
	if err != nil {
		return nil, err
	}
	for i := range counts {
		counts[i] /= float64(h.N)
	}
	return counts, nil
}

// Lipschitz implements Query.
func (h RelFreqHistogram) Lipschitz() float64 { return 2 / float64(h.N) }

// Dim implements Query.
func (h RelFreqHistogram) Dim() int { return h.K }

func (h RelFreqHistogram) String() string {
	return fmt.Sprintf("relfreq-histogram(k=%d,n=%d)", h.K, h.N)
}

// StateFrequency is the scalar fraction of records equal to State —
// the F(X) = (1/T)·ΣX_i query of the synthetic experiments
// (Section 5.2) when State = 1 on binary data: (1/N)-Lipschitz.
type StateFrequency struct {
	State int
	N     int
}

// Evaluate implements Query.
func (s StateFrequency) Evaluate(data []int) ([]float64, error) {
	if len(data) != s.N {
		return nil, fmt.Errorf("query: got %d records, query constructed for %d", len(data), s.N)
	}
	var count float64
	for _, x := range data {
		if x == s.State {
			count++
		}
	}
	return []float64{count / float64(s.N)}, nil
}

// Lipschitz implements Query.
func (s StateFrequency) Lipschitz() float64 { return 1 / float64(s.N) }

// Dim implements Query.
func (s StateFrequency) Dim() int { return 1 }

func (s StateFrequency) String() string {
	return fmt.Sprintf("freq(state=%d,n=%d)", s.State, s.N)
}

// Sum releases Σ Values[x_i], e.g. the number of infected people in
// the flu example with Values = {0, 1}. Its Lipschitz constant is the
// range of Values.
type Sum struct {
	Values []float64
}

// Evaluate implements Query.
func (s Sum) Evaluate(data []int) ([]float64, error) {
	var total float64
	for _, x := range data {
		if x < 0 || x >= len(s.Values) {
			return nil, fmt.Errorf("query: state %d out of range [0,%d)", x, len(s.Values))
		}
		total += s.Values[x]
	}
	return []float64{total}, nil
}

// Lipschitz implements Query.
func (s Sum) Lipschitz() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return floats.Max(s.Values) - floats.Min(s.Values)
}

// Dim implements Query.
func (s Sum) Dim() int { return 1 }

func (s Sum) String() string { return fmt.Sprintf("sum(k=%d)", len(s.Values)) }

// Mean releases the average of Values[x_i]: (range/N)-Lipschitz.
type Mean struct {
	Values []float64
	N      int
}

// Evaluate implements Query.
func (m Mean) Evaluate(data []int) ([]float64, error) {
	if len(data) != m.N {
		return nil, fmt.Errorf("query: got %d records, query constructed for %d", len(data), m.N)
	}
	s, err := Sum{Values: m.Values}.Evaluate(data)
	if err != nil {
		return nil, err
	}
	return []float64{s[0] / float64(m.N)}, nil
}

// Lipschitz implements Query.
func (m Mean) Lipschitz() float64 { return Sum{Values: m.Values}.Lipschitz() / float64(m.N) }

// Dim implements Query.
func (m Mean) Dim() int { return 1 }

func (m Mean) String() string { return fmt.Sprintf("mean(k=%d,n=%d)", len(m.Values), m.N) }
