package query

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pufferfish/internal/floats"
)

func TestHistogram(t *testing.T) {
	h := Histogram{K: 3}
	got, err := h.Evaluate([]int{0, 1, 1, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(got, []float64{1, 2, 3}, 0) {
		t.Errorf("Evaluate = %v", got)
	}
	if h.Lipschitz() != 2 || h.Dim() != 3 {
		t.Error("Lipschitz/Dim wrong")
	}
	if _, err := h.Evaluate([]int{5}); err == nil {
		t.Error("out-of-range state accepted")
	}
}

func TestRelFreqHistogram(t *testing.T) {
	h := RelFreqHistogram{K: 2, N: 4}
	got, err := h.Evaluate([]int{0, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(got, []float64{0.75, 0.25}, 1e-12) {
		t.Errorf("Evaluate = %v", got)
	}
	if !floats.Eq(h.Lipschitz(), 0.5, 1e-12) {
		t.Errorf("Lipschitz = %v", h.Lipschitz())
	}
	if _, err := h.Evaluate([]int{0}); err == nil {
		t.Error("wrong-length data accepted")
	}
}

func TestStateFrequency(t *testing.T) {
	s := StateFrequency{State: 1, N: 5}
	got, err := s.Evaluate([]int{1, 0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(got, []float64{0.6}, 1e-12) {
		t.Errorf("Evaluate = %v", got)
	}
	if !floats.Eq(s.Lipschitz(), 0.2, 1e-12) || s.Dim() != 1 {
		t.Error("Lipschitz/Dim wrong")
	}
}

func TestSumAndMean(t *testing.T) {
	s := Sum{Values: []float64{0, 1, 5}}
	got, err := s.Evaluate([]int{0, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 11 {
		t.Errorf("Sum = %v", got)
	}
	if s.Lipschitz() != 5 {
		t.Errorf("Sum Lipschitz = %v", s.Lipschitz())
	}
	m := Mean{Values: []float64{0, 1, 5}, N: 4}
	gm, err := m.Evaluate([]int{0, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(gm[0], 2.75, 1e-12) {
		t.Errorf("Mean = %v", gm)
	}
	if !floats.Eq(m.Lipschitz(), 1.25, 1e-12) {
		t.Errorf("Mean Lipschitz = %v", m.Lipschitz())
	}
	if _, err := (Sum{Values: []float64{1}}).Evaluate([]int{3}); err == nil {
		t.Error("out-of-range state accepted by Sum")
	}
}

// Property: the declared Lipschitz constants actually bound the L1
// change when one record is modified, for random data and queries.
func TestLipschitzBoundsHold(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 91))
		k := 2 + r.IntN(4)
		n := 2 + r.IntN(30)
		data := make([]int, n)
		for i := range data {
			data[i] = r.IntN(k)
		}
		// Perturb one record.
		perturbed := append([]int{}, data...)
		idx := r.IntN(n)
		perturbed[idx] = (perturbed[idx] + 1 + r.IntN(k-1)) % k

		vals := make([]float64, k)
		for i := range vals {
			vals[i] = r.Float64()*10 - 5
		}
		queries := []Query{
			Histogram{K: k},
			RelFreqHistogram{K: k, N: n},
			StateFrequency{State: r.IntN(k), N: n},
			Sum{Values: vals},
			Mean{Values: vals, N: n},
		}
		for _, q := range queries {
			a, err := q.Evaluate(data)
			if err != nil {
				return false
			}
			b, err := q.Evaluate(perturbed)
			if err != nil {
				return false
			}
			if floats.L1Dist(a, b) > q.Lipschitz()+1e-9 {
				return false
			}
			if len(a) != q.Dim() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
